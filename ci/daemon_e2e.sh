#!/usr/bin/env bash
# daemon-e2e: black-box gate on cmd/tightschedd, holding the daemon to its
# two headline contracts:
#
#   1. Artifact parity — the Table I artifact served by
#      GET /v1/campaigns/{id}/tables/1 is byte-identical to what
#      cmd/tables prints for the same campaign spec.
#   2. Graceful shutdown — SIGTERM mid-campaign exits 0 and leaves a
#      journal that `tables -resume` completes bit-identically to an
#      uninterrupted run.
#
# Plus the binary-journal leg (contract 1a): the same campaign with
# run.format: binary must serve the identical Table I from a journal
# carrying the TSBL binary magic — the artifact is format-independent.
#
# Plus the online extension (contract 1b): a grid campaign submitted as
# a JSON spec must serve a Table IV byte-identical to
# `tables -table 4 -quiet`, and export the tightsched_grid_* metric
# families (gauges drained to zero, a nonzero deadline-miss counter).
#
# Everything (binaries, logs, journals, fetched artifacts) lands in
# E2E_DIR so CI can upload it as a failure artifact. Needs curl and jq.
set -euo pipefail

E2E_DIR=${E2E_DIR:-$(mktemp -d)}
ADDR=${ADDR:-127.0.0.1:8077}
BASE="http://$ADDR"
mkdir -p "$E2E_DIR"
echo "daemon-e2e: working in $E2E_DIR"

DAEMON_PID=""
cleanup() {
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill "$DAEMON_PID" 2>/dev/null || true
    fi
}
trap cleanup EXIT

fail() {
    echo "daemon-e2e: FAIL: $*" >&2
    echo "--- daemon log tail ---" >&2
    tail -50 "$E2E_DIR/daemon.log" >&2 || true
    exit 1
}

# Poll a campaign until it reaches a terminal state; prints the final state.
wait_terminal() {
    local id=$1 deadline=$((SECONDS + 180)) state
    while :; do
        state=$(curl -sf "$BASE/v1/campaigns/$id" | jq -r .state)
        case "$state" in
        succeeded | failed | cancelled) echo "$state"; return 0 ;;
        esac
        [ "$SECONDS" -lt "$deadline" ] || fail "campaign $id still '$state' after 180s"
        sleep 0.2
    done
}

echo "daemon-e2e: building tightschedd and tables"
go build -o "$E2E_DIR/tightschedd" ./cmd/tightschedd
go build -o "$E2E_DIR/tables" ./cmd/tables

"$E2E_DIR/tightschedd" -addr "$ADDR" -data "$E2E_DIR/data" -runners 2 \
    >"$E2E_DIR/daemon.log" 2>&1 &
DAEMON_PID=$!

for i in $(seq 1 50); do
    curl -sf "$BASE/healthz" >/dev/null 2>&1 && break
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died during startup"
    [ "$i" -lt 50 ] || fail "daemon never became healthy on $BASE"
    sleep 0.2
done
echo "daemon-e2e: daemon healthy on $BASE"

# ---- contract 1: artifact parity with cmd/tables --------------------------

cat >"$E2E_DIR/table1.yaml" <<'EOF'
version: 1
name: e2e-table1
sweep:
  m: 5
  ncoms: [5, 10, 20]
  wmins: [1, 2]
  scenarios: 1
  trials: 1
  cap: 50000
  seed: 20130522
EOF

ID=$(curl -sf -X POST -H 'Content-Type: application/yaml' \
    --data-binary @"$E2E_DIR/table1.yaml" "$BASE/v1/campaigns" | jq -r .id)
[ -n "$ID" ] && [ "$ID" != null ] || fail "submit returned no campaign id"
echo "daemon-e2e: submitted campaign $ID"

STATE=$(wait_terminal "$ID")
[ "$STATE" = succeeded ] || fail "campaign $ID ended '$STATE'"
curl -sf "$BASE/v1/campaigns/$ID" | jq . >"$E2E_DIR/status1.json"
echo "daemon-e2e: campaign $ID succeeded ($(jq -r .progress.completed "$E2E_DIR/status1.json") instances)"

curl -sf "$BASE/v1/campaigns/$ID/tables/1" >"$E2E_DIR/daemon_table1.txt"
# cmd/tables with the flag spelling of the same spec; the CLI prefixes the
# artifact with '#' preamble lines, stripped for the byte-compare.
"$E2E_DIR/tables" -table 1 -quiet -scenarios 1 -trials 1 -wmins 1,2 -cap 50000 |
    grep -v '^#' >"$E2E_DIR/cli_table1.txt"
cmp "$E2E_DIR/daemon_table1.txt" "$E2E_DIR/cli_table1.txt" ||
    fail "daemon artifact differs from cmd/tables output (see $E2E_DIR/{daemon,cli}_table1.txt)"
echo "daemon-e2e: Table I artifact is byte-identical to cmd/tables"

# The metrics endpoint reflects the finished campaign.
curl -sf "$BASE/metrics" >"$E2E_DIR/metrics.txt"
grep -q 'tightsched_campaigns{state="succeeded"} 1' "$E2E_DIR/metrics.txt" ||
    fail "metrics do not count the succeeded campaign"
# The cluster lease families are always exported (all-zero here: this
# campaign ran in-process). ci/cluster_chaos.sh asserts their values.
for sample in \
    'tightsched_cluster_units{state="available"} 0' \
    'tightsched_cluster_units{state="leased"} 0' \
    'tightsched_cluster_units{state="done"} 0' \
    'tightsched_cluster_workers 0' \
    'tightsched_cluster_leases_total{event="granted"} 0' \
    'tightsched_cluster_heartbeats_total 0' \
    'tightsched_cluster_uploads_total{outcome="accepted"} 0'; do
    grep -qF "$sample" "$E2E_DIR/metrics.txt" ||
        fail "metrics missing cluster sample: $sample"
done

# ---- contract 1a: binary-journal campaign, same artifact byte for byte ----

# The same campaign journaled in the binary container (run.format:
# binary) must serve a Table I byte-identical to the JSONL-backed run
# above, and the journal on disk must carry the TSBL magic.
cat >"$E2E_DIR/table1_bin.yaml" <<'EOF'
version: 1
name: e2e-table1-binary
sweep:
  m: 5
  ncoms: [5, 10, 20]
  wmins: [1, 2]
  scenarios: 1
  trials: 1
  cap: 50000
  seed: 20130522
run:
  journal: true
  format: binary
EOF

IDB=$(curl -sf -X POST -H 'Content-Type: application/yaml' \
    --data-binary @"$E2E_DIR/table1_bin.yaml" "$BASE/v1/campaigns" | jq -r .id)
[ -n "$IDB" ] && [ "$IDB" != null ] || fail "binary submit returned no campaign id"
echo "daemon-e2e: submitted binary-journal campaign $IDB"

STATEB=$(wait_terminal "$IDB")
[ "$STATEB" = succeeded ] || fail "binary campaign $IDB ended '$STATEB'"

JOURNALB=$(curl -sf "$BASE/v1/campaigns/$IDB" | jq -r .journal)
[ -n "$JOURNALB" ] && [ "$JOURNALB" != null ] || fail "binary campaign reports no journal"
[ "$(head -c 4 "$JOURNALB")" = "TSBL" ] ||
    fail "journal $JOURNALB does not start with the TSBL binary magic"

curl -sf "$BASE/v1/campaigns/$IDB/tables/1" >"$E2E_DIR/daemon_table1_bin.txt"
cmp "$E2E_DIR/daemon_table1_bin.txt" "$E2E_DIR/cli_table1.txt" ||
    fail "binary-journal campaign serves a different Table I (see $E2E_DIR/daemon_table1_bin.txt)"
echo "daemon-e2e: binary-journal campaign serves the identical Table I"

# ---- contract 1b: online grid campaign, Table IV parity + grid metrics ----

# Grid specs ride the same endpoint as sweeps; the quick preset is the
# same campaign `tables -table 4 -quiet` runs, so the served Table IV
# must be byte-identical to the CLI rendering.
cat >"$E2E_DIR/table4.json" <<'EOF'
{"version": 1, "name": "e2e-table4", "preset": "quick", "grid": {}}
EOF

ID4=$(curl -sf -X POST -H 'Content-Type: application/json' \
    --data-binary @"$E2E_DIR/table4.json" "$BASE/v1/campaigns" | jq -r .id)
[ -n "$ID4" ] && [ "$ID4" != null ] || fail "grid submit returned no campaign id"
echo "daemon-e2e: submitted grid campaign $ID4"

STATE4=$(wait_terminal "$ID4")
[ "$STATE4" = succeeded ] || fail "grid campaign $ID4 ended '$STATE4'"

curl -sf "$BASE/v1/campaigns/$ID4/tables/4" >"$E2E_DIR/daemon_table4.txt"
"$E2E_DIR/tables" -table 4 -quiet | grep -v '^#' >"$E2E_DIR/cli_table4.txt"
cmp "$E2E_DIR/daemon_table4.txt" "$E2E_DIR/cli_table4.txt" ||
    fail "daemon Table IV differs from cmd/tables output (see $E2E_DIR/{daemon,cli}_table4.txt)"
echo "daemon-e2e: Table IV artifact is byte-identical to cmd/tables"

# The grid telemetry families: both gauges drained back to zero once the
# campaign finished, and the quick campaign's impossible deadlines left a
# nonzero miss counter.
curl -sf "$BASE/metrics" >"$E2E_DIR/metrics_grid.txt"
grep -qF 'tightsched_grid_queue_depth 0' "$E2E_DIR/metrics_grid.txt" ||
    fail "grid queue-depth gauge missing or not drained"
grep -qF 'tightsched_grid_running_apps 0' "$E2E_DIR/metrics_grid.txt" ||
    fail "grid running-apps gauge missing or not drained"
MISSES=$(awk '$1 == "tightsched_grid_deadline_misses_total" {print $2}' "$E2E_DIR/metrics_grid.txt")
[ -n "$MISSES" ] || fail "metrics missing tightsched_grid_deadline_misses_total"
[ "$MISSES" -gt 0 ] 2>/dev/null ||
    fail "grid deadline-miss counter is '$MISSES', want > 0 for the quick campaign"
echo "daemon-e2e: grid metrics exported (deadline misses: $MISSES)"

# ---- contract 2: SIGTERM mid-campaign, journal resumes bit-identically ----

cat >"$E2E_DIR/slow.yaml" <<'EOF'
version: 1
name: e2e-sigterm
sweep:
  m: 5
  ncoms: [5, 10, 20]
  wmins: [1, 2, 3, 4, 5, 6, 7, 8, 9, 10]
  scenarios: 1
  trials: 1
  cap: 100000
  seed: 777
run:
  workers: 1
EOF

ID2=$(curl -sf -X POST -H 'Content-Type: application/yaml' \
    --data-binary @"$E2E_DIR/slow.yaml" "$BASE/v1/campaigns" | jq -r .id)
[ -n "$ID2" ] && [ "$ID2" != null ] || fail "second submit returned no campaign id"
JOURNAL=$(curl -sf "$BASE/v1/campaigns/$ID2" | jq -r .journal)
[ -n "$JOURNAL" ] && [ "$JOURNAL" != null ] || fail "campaign $ID2 reports no journal"

deadline=$((SECONDS + 60))
while :; do
    DONE=$(curl -sf "$BASE/v1/campaigns/$ID2" | jq -r .progress.completed)
    [ "${DONE:-0}" -ge 5 ] 2>/dev/null && break
    [ "$SECONDS" -lt "$deadline" ] || fail "campaign $ID2 made no progress"
    sleep 0.2
done
echo "daemon-e2e: campaign $ID2 at $DONE instances — sending SIGTERM"

kill -TERM "$DAEMON_PID"
RC=0
wait "$DAEMON_PID" || RC=$?
DAEMON_PID=""
[ "$RC" -eq 0 ] || fail "daemon exited $RC on SIGTERM, want 0"
echo "daemon-e2e: daemon exited 0 on SIGTERM"

[ -s "$JOURNAL" ] || fail "journal $JOURNAL missing or empty after shutdown"

# Resume the interrupted journal through the CLI, and run the identical
# campaign uninterrupted; the two Table I artifacts must match byte for
# byte (the resume contract: bit-identical to a run that never stopped).
"$E2E_DIR/tables" -table 1 -quiet -scenarios 1 -trials 1 -cap 100000 -seed 777 \
    -resume -journal "$JOURNAL" | grep -v '^#' >"$E2E_DIR/resumed_table1.txt"
"$E2E_DIR/tables" -table 1 -quiet -scenarios 1 -trials 1 -cap 100000 -seed 777 |
    grep -v '^#' >"$E2E_DIR/straight_table1.txt"
cmp "$E2E_DIR/resumed_table1.txt" "$E2E_DIR/straight_table1.txt" ||
    fail "resumed journal renders a different Table I than an uninterrupted run"
echo "daemon-e2e: interrupted journal resumed bit-identically"

echo "daemon-e2e: PASS"
