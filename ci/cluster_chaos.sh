#!/usr/bin/env bash
# cluster-chaos: fault-injection gate on the elastic cluster execution
# layer (internal/cluster + cmd/tightschedd + cmd/tightschedw).
#
# A Table I campaign runs as leased work units on a 4-worker fleet while
# the harness injects the two failures the layer exists to survive:
#
#   1. kill -9 a random worker mid-unit — its lease must expire and the
#      unit requeue to the survivors;
#   2. kill -9 the coordinator daemon mid-campaign, then restart it —
#      RecoverClusters must resume the campaign from the lease log and
#      journal on disk, and the surviving workers must reconnect through
#      their retry backoff.
#
# The acceptance bar is byte-identity: after all of that, the Table I
# artifact served by the daemon must equal what cmd/tables prints for
# the same spec sequentially. Everything (binaries, logs, journals,
# artifacts) lands in E2E_DIR so CI can upload it on failure. Needs
# curl and jq.
set -euo pipefail

E2E_DIR=${E2E_DIR:-$(mktemp -d)}
ADDR=${ADDR:-127.0.0.1:8078}
BASE="http://$ADDR"
mkdir -p "$E2E_DIR"
echo "cluster-chaos: working in $E2E_DIR"

DAEMON_PID=""
WORKER_PIDS=()
cleanup() {
    for pid in "${WORKER_PIDS[@]:-}"; do
        [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    done
    if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
        kill "$DAEMON_PID" 2>/dev/null || true
    fi
}
trap cleanup EXIT

fail() {
    echo "cluster-chaos: FAIL: $*" >&2
    echo "--- daemon log tail ---" >&2
    tail -50 "$E2E_DIR/daemon.log" >&2 || true
    echo "--- worker log tails ---" >&2
    tail -20 "$E2E_DIR"/worker*.log >&2 || true
    exit 1
}

start_daemon() {
    "$E2E_DIR/tightschedd" -addr "$ADDR" -data "$E2E_DIR/data" \
        >>"$E2E_DIR/daemon.log" 2>&1 &
    DAEMON_PID=$!
    for i in $(seq 1 50); do
        curl -sf "$BASE/healthz" >/dev/null 2>&1 && return 0
        kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died during startup"
        sleep 0.2
    done
    fail "daemon never became healthy on $BASE"
}

start_worker() {
    local i=$1
    "$E2E_DIR/tightschedw" -coordinator "$BASE" -name "chaos-w$i" \
        -parallel 2 -batch 8 -poll 200ms \
        >>"$E2E_DIR/worker$i.log" 2>&1 &
    WORKER_PIDS[$i]=$!
}

campaign_field() {
    curl -sf "$BASE/v1/campaigns/$1" | jq -r "$2"
}

wait_terminal() {
    local id=$1 deadline=$((SECONDS + 180)) state
    while :; do
        state=$(campaign_field "$id" .state || echo polling)
        case "$state" in
        succeeded | failed | cancelled) echo "$state"; return 0 ;;
        esac
        [ "$SECONDS" -lt "$deadline" ] || fail "campaign $id still '$state' after 180s"
        sleep 0.2
    done
}

metric() {
    grep -F "$1 " "$E2E_DIR/metrics.txt" | awk '{print $2}'
}

echo "cluster-chaos: building tightschedd, tightschedw and tables"
go build -o "$E2E_DIR/tightschedd" ./cmd/tightschedd
go build -o "$E2E_DIR/tightschedw" ./cmd/tightschedw
go build -o "$E2E_DIR/tables" ./cmd/tables

start_daemon
echo "cluster-chaos: daemon healthy on $BASE (pid $DAEMON_PID)"

# A quick-scale Table I grid, leased out in 12 units with a short TTL so
# the killed worker's lease expires within seconds.
cat >"$E2E_DIR/chaos.yaml" <<'EOF'
version: 1
name: chaos-table1
sweep:
  m: 5
  ncoms: [5, 10, 20]
  wmins: [1, 2, 3]
  scenarios: 2
  trials: 3
  cap: 50000
  seed: 20130522
run:
  # The coordinator journal (the dedup and completion authority) rides
  # the binary codec here, so the chaos gate also proves crash recovery
  # over the TSBL container.
  format: binary
  cluster:
    units: 12
    leaseTtl: 3s
    gcInterval: 500ms
    reshard: true
EOF

ID=$(curl -sf -X POST -H 'Content-Type: application/yaml' \
    --data-binary @"$E2E_DIR/chaos.yaml" "$BASE/v1/campaigns" | jq -r .id)
[ -n "$ID" ] && [ "$ID" != null ] || fail "submit returned no campaign id"
TOTAL=$(campaign_field "$ID" .progress.total)
echo "cluster-chaos: submitted cluster campaign $ID ($TOTAL instances)"

for i in 0 1 2 3; do start_worker "$i"; done
echo "cluster-chaos: 4 workers up (pids ${WORKER_PIDS[*]})"

# Let the fleet make real progress before pulling anything out.
deadline=$((SECONDS + 60))
while :; do
    DONE=$(campaign_field "$ID" .progress.completed)
    [ "${DONE:-0}" -ge 10 ] 2>/dev/null && break
    [ "$SECONDS" -lt "$deadline" ] || fail "campaign made no progress (completed=$DONE)"
    sleep 0.2
done

# ---- chaos 1: kill -9 a random worker -------------------------------------
VICTIM=$((RANDOM % 4))
echo "cluster-chaos: $DONE/$TOTAL instances in — kill -9 worker $VICTIM (pid ${WORKER_PIDS[$VICTIM]})"
kill -9 "${WORKER_PIDS[$VICTIM]}" 2>/dev/null || fail "victim worker already gone"
wait "${WORKER_PIDS[$VICTIM]}" 2>/dev/null || true
WORKER_PIDS[$VICTIM]=""

# ---- chaos 2: kill -9 the coordinator, restart it -------------------------
STATE=$(campaign_field "$ID" .state)
[ "$STATE" = running ] || fail "campaign already '$STATE' before the coordinator kill — grow the spec"
echo "cluster-chaos: kill -9 coordinator daemon (pid $DAEMON_PID)"
kill -9 "$DAEMON_PID"
wait "$DAEMON_PID" 2>/dev/null || true
DAEMON_PID=""

sleep 1 # survivors notice and start their retry backoff
start_daemon
echo "cluster-chaos: daemon restarted (pid $DAEMON_PID)"
grep -q "resuming cluster campaign $ID" "$E2E_DIR/daemon.log" ||
    fail "restarted daemon did not resume campaign $ID from its lease log"

STATE=$(wait_terminal "$ID")
[ "$STATE" = succeeded ] || fail "campaign $ID ended '$STATE' after recovery"
curl -sf "$BASE/v1/campaigns/$ID" | jq . >"$E2E_DIR/status.json"
echo "cluster-chaos: campaign $ID succeeded after recovery ($(jq -r .progress.completed "$E2E_DIR/status.json")/$TOTAL instances)"

# ---- acceptance: byte-identical Table I vs the sequential CLI -------------
curl -sf "$BASE/v1/campaigns/$ID/tables/1" >"$E2E_DIR/cluster_table1.txt"
"$E2E_DIR/tables" -table 1 -quiet -scenarios 2 -trials 3 -wmins 1,2,3 \
    -cap 50000 -seed 20130522 | grep -v '^#' >"$E2E_DIR/sequential_table1.txt"
cmp "$E2E_DIR/cluster_table1.txt" "$E2E_DIR/sequential_table1.txt" ||
    fail "cluster artifact differs from sequential cmd/tables output (see $E2E_DIR/{cluster,sequential}_table1.txt)"
echo "cluster-chaos: Table I artifact is byte-identical to the sequential run"

# ---- lease lifecycle is visible in /metrics -------------------------------
curl -sf "$BASE/metrics" >"$E2E_DIR/metrics.txt"
GRANTED=$(metric 'tightsched_cluster_leases_total{event="granted"}')
EXPIRED=$(metric 'tightsched_cluster_leases_total{event="expired"}')
LEASED=$(metric 'tightsched_cluster_units{state="leased"}')
AVAILABLE=$(metric 'tightsched_cluster_units{state="available"}')
UNITS_DONE=$(metric 'tightsched_cluster_units{state="done"}')
[ "${GRANTED:-0}" -ge 1 ] || fail "no leases granted after restart (granted=$GRANTED)"
[ "${EXPIRED:-0}" -ge 1 ] || fail "the killed worker's lease never expired (expired=$EXPIRED)"
[ "${UNITS_DONE:-0}" -ge 12 ] || fail "units done = $UNITS_DONE, want >= 12"
[ "${LEASED:-1}" -eq 0 ] && [ "${AVAILABLE:-1}" -eq 0 ] ||
    fail "terminal campaign still shows leased=$LEASED available=$AVAILABLE units"
echo "cluster-chaos: lease metrics consistent (granted=$GRANTED expired=$EXPIRED done=$UNITS_DONE)"

echo "cluster-chaos: PASS"
