package tightsched_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"tightsched"
	"tightsched/internal/markov"
)

func TestFacadeRun(t *testing.T) {
	sc := tightsched.PaperScenario(4, 10, 1, 5)
	rec := &tightsched.Recorder{}
	res, err := tightsched.Run(sc, "Y-IE", tightsched.Options{Seed: 2, Cap: 100000, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed || res.Completed != 10 {
		t.Fatalf("run: %+v", res)
	}
	if rec.Len() == 0 {
		t.Fatal("no trace recorded")
	}
}

func TestFacadeHeuristics(t *testing.T) {
	paper := tightsched.PaperHeuristics()
	if len(paper) != 17 {
		t.Fatalf("%d paper heuristics", len(paper))
	}
	names := tightsched.Heuristics()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Heuristics() not sorted: %v", names)
	}
	registered := make(map[string]bool, len(names))
	for _, n := range names {
		registered[n] = true
	}
	for _, n := range paper {
		if !registered[n] {
			t.Fatalf("paper heuristic %q missing from registry listing %v", n, names)
		}
	}
	// The listings are defensive copies: scribbling on one must not leak
	// into the registry.
	names[0] = "SCRIBBLED"
	paper[0] = "SCRIBBLED"
	if tightsched.Heuristics()[0] == "SCRIBBLED" || tightsched.PaperHeuristics()[0] == "SCRIBBLED" {
		t.Fatal("heuristic name listing aliases registry state")
	}
}

func TestFacadeStates(t *testing.T) {
	if tightsched.Up != markov.Up || tightsched.Down != markov.Down || tightsched.Reclaimed != markov.Reclaimed {
		t.Fatal("state aliases broken")
	}
}

func TestFacadeCustomScenario(t *testing.T) {
	avail := tightsched.AvailabilityMatrix{
		{0.95, 0.03, 0.02},
		{0.5, 0.48, 0.02},
		{0.5, 0.25, 0.25},
	}
	procs := make([]tightsched.Processor, 6)
	for i := range procs {
		procs[i] = tightsched.Processor{Speed: 1 + i, Capacity: 4, Avail: avail}
	}
	sc := tightsched.Scenario{
		Platform: &tightsched.Platform{Procs: procs, Ncom: 3},
		App:      tightsched.Application{Tasks: 4, Tprog: 3, Tdata: 1, Iterations: 3},
	}
	res, err := tightsched.Run(sc, "E-IAY", tightsched.Options{Seed: 1, Cap: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 3 {
		t.Fatalf("completed %d", res.Completed)
	}
}

func TestFacadeEstimateAndCompare(t *testing.T) {
	sc := tightsched.PaperScenario(3, 10, 1, 8)
	est, err := tightsched.Estimate(sc, []int{0, 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if est.Pplus <= 0 || est.Pplus >= 1 {
		t.Fatalf("estimate: %+v", est)
	}
	sums, err := tightsched.Compare(sc, []string{"IE", "Y-IE"}, 2, 3, tightsched.Options{Cap: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 {
		t.Fatalf("summaries: %+v", sums)
	}
}

func TestFacadeSweep(t *testing.T) {
	sweep := tightsched.QuickSweep(5)
	sweep.Wmins = []int{1}
	sweep.Ncoms = []int{10}
	sweep.Scenarios = 1
	sweep.Trials = 1
	sweep.Heuristics = []string{"IE", "RANDOM"}
	sweep.Cap = 50000
	res, err := tightsched.RunSweep(sweep, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Table("IE")
	if err != nil {
		t.Fatal(err)
	}
	out := tightsched.FormatTable(rows)
	if !strings.Contains(out, "RANDOM") {
		t.Fatalf("table:\n%s", out)
	}
}

func TestFacadeDefaultCap(t *testing.T) {
	if tightsched.DefaultCap != 1_000_000 {
		t.Fatalf("default cap %d", tightsched.DefaultCap)
	}
}

func TestFacadeAvailabilityModels(t *testing.T) {
	names := tightsched.AvailabilityModels()
	if len(names) < 3 {
		t.Fatalf("model names %v", names)
	}
	for _, name := range names {
		m, err := tightsched.ModelByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Name() != name {
			t.Fatalf("ModelByName(%q).Name() = %q", name, m.Name())
		}
	}
	if _, err := tightsched.ModelByName("nope"); err == nil {
		t.Fatal("unknown model accepted")
	}
}

// TestFacadeNonMarkovRun drives a semi-Markov ground truth through the
// façade: Options.Model selects the model, the heuristics believe its
// fitted matrices, and the run still completes.
func TestFacadeNonMarkovRun(t *testing.T) {
	sc := tightsched.PaperScenario(4, 10, 1, 5)
	model := tightsched.NewSemiMarkovModel(0.8)
	model.CalibrationSlots = 2_000
	res, err := tightsched.Run(sc, "Y-IE", tightsched.Options{Seed: 2, Cap: 200_000, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed || res.Completed != 10 {
		t.Fatalf("non-Markov run: %+v", res)
	}
	// The same seed under Markov ground truth is a different realization.
	ref, err := tightsched.Run(sc, "Y-IE", tightsched.Options{Seed: 2, Cap: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Makespan == res.Makespan && ref.Restarts == res.Restarts {
		t.Fatalf("semi-Markov realization identical to Markov: %+v", res)
	}
}

// TestFacadeSweepNonMarkov is the acceptance path at façade level: a
// SemiMarkovModel campaign runs through RunSweep and renders via
// FormatTable.
func TestFacadeSweepNonMarkov(t *testing.T) {
	sweep := tightsched.QuickSweep(5)
	sweep.Wmins = []int{1}
	sweep.Ncoms = []int{10}
	sweep.Scenarios = 1
	sweep.Trials = 1
	sweep.Heuristics = []string{"IE", "RANDOM"}
	sweep.Cap = 50000
	model := tightsched.NewSemiMarkovModel(0.6)
	model.CalibrationSlots = 2_000
	sweep.Models = []tightsched.AvailabilityModel{model}
	res, err := tightsched.RunSweep(sweep, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := res.Table("IE")
	if err != nil {
		t.Fatal(err)
	}
	out := tightsched.FormatTable(rows)
	if !strings.Contains(out, "RANDOM") {
		t.Fatalf("table:\n%s", out)
	}
	for _, inst := range res.Instances {
		if inst.Model != "semimarkov" {
			t.Fatalf("instance model %q", inst.Model)
		}
	}
}

// TestFacadeJournaledShardedSweep drives the campaign-execution surface
// end-to-end through the façade: shard a small campaign into two
// journaled jobs, merge the journals, and resume one journal standalone.
func TestFacadeJournaledShardedSweep(t *testing.T) {
	sweep := tightsched.QuickSweep(5)
	sweep.Wmins = []int{1, 2}
	sweep.Ncoms = []int{10}
	sweep.Scenarios = 1
	sweep.Trials = 1
	sweep.Heuristics = []string{"IE", "RANDOM"}
	sweep.Cap = 50000

	full, err := tightsched.RunSweep(sweep, nil)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	paths := []string{dir + "/shard0.journal", dir + "/shard1.journal"}
	for i, path := range paths {
		shard, err := tightsched.ParseSweepShard(fmt.Sprintf("%d/2", i))
		if err != nil {
			t.Fatal(err)
		}
		j, err := tightsched.CreateSweepJournal(path, sweep, shard)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tightsched.RunSweepWith(sweep, tightsched.SweepOptions{Journal: j, Shard: shard}); err != nil {
			t.Fatal(err)
		}
		j.Close()
	}

	merged, err := tightsched.MergeSweepJournals(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Instances) != len(full.Instances) {
		t.Fatalf("merged %d instances, want %d", len(merged.Instances), len(full.Instances))
	}
	for i := range merged.Instances {
		if merged.Instances[i] != full.Instances[i] {
			t.Fatalf("instance %d differs after façade shard+merge", i)
		}
	}

	// A complete shard journal resumes as pure replay.
	res, err := tightsched.ResumeSweep(paths[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances)*2 != len(full.Instances) {
		t.Fatalf("resumed shard has %d instances, want %d", len(res.Instances), len(full.Instances)/2)
	}
}
