// Package platform models the desktop-grid hardware of Section III.B: a
// set of p volatile processors, each with a compute speed (w_q slots per
// task), a concurrency capacity (µ_q tasks at once), and a 3-state Markov
// availability matrix, plus the master's bounded multi-port communication
// capacity n_com = ⌊BW/bw⌋.
package platform

import (
	"fmt"
	"math"

	"tightsched/internal/avail"
	"tightsched/internal/markov"
	"tightsched/internal/rng"
)

// UnboundedCapacity is the µ_q value for a worker that can execute any
// number of tasks concurrently (µ = +∞ in the paper; µ = m is equivalent).
const UnboundedCapacity = math.MaxInt32

// Processor describes one worker.
type Processor struct {
	// Speed is w_q: the number of time-slots this processor needs per
	// task when continuously UP. Smaller is faster.
	Speed int
	// Capacity is µ_q: the maximum number of tasks the processor can
	// execute concurrently (limited by its memory in the paper's model).
	Capacity int
	// Avail is the 3-state availability transition matrix.
	Avail markov.Matrix
}

// Validate checks the processor's parameters.
func (p Processor) Validate() error {
	if p.Speed <= 0 {
		return fmt.Errorf("platform: speed %d, want positive", p.Speed)
	}
	if p.Capacity <= 0 {
		return fmt.Errorf("platform: capacity %d, want positive", p.Capacity)
	}
	return p.Avail.Validate()
}

// Platform is the full desktop grid.
type Platform struct {
	Procs []Processor
	// Ncom is the master's bounded multi-port constraint: the maximum
	// number of simultaneous worker communications (program or data).
	Ncom int
	// Model, when non-nil, is the ground-truth availability model the
	// processors actually follow; the per-processor Avail matrices are
	// then only the platform's nominal chains (what a Markov model of it
	// would be). When nil the matrices themselves are ground truth
	// (avail.MarkovModel, the paper's Section III.B assumption).
	Model avail.Model
}

// Validate checks the platform's parameters.
func (pl *Platform) Validate() error {
	if len(pl.Procs) == 0 {
		return fmt.Errorf("platform: no processors")
	}
	if pl.Ncom <= 0 {
		return fmt.Errorf("platform: ncom %d, want positive", pl.Ncom)
	}
	for i, p := range pl.Procs {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("processor %d: %w", i, err)
		}
	}
	return nil
}

// Size returns the number of processors.
func (pl *Platform) Size() int { return len(pl.Procs) }

// Matrices returns the availability matrices of all processors, in order,
// in the shape the analytic layer consumes.
func (pl *Platform) Matrices() []markov.Matrix {
	ms := make([]markov.Matrix, len(pl.Procs))
	for i, p := range pl.Procs {
		ms[i] = p.Avail
	}
	return ms
}

// AvailModel returns the platform's ground-truth availability model:
// Model when set, otherwise the paper's Markov chains.
func (pl *Platform) AvailModel() avail.Model {
	if pl.Model != nil {
		return pl.Model
	}
	return avail.MarkovModel{}
}

// BelievedMatrices returns the per-processor Markov matrices the
// Section V estimators should believe under the platform's availability
// model: the nominal matrices themselves for Markov ground truth, fitted
// ("flawed") matrices for model-violating ground truth.
func (pl *Platform) BelievedMatrices() []markov.Matrix {
	return pl.AvailModel().EstimatorMatrices(pl.Matrices())
}

// Speeds returns the w_q vector.
func (pl *Platform) Speeds() []int {
	ws := make([]int, len(pl.Procs))
	for i, p := range pl.Procs {
		ws[i] = p.Speed
	}
	return ws
}

// TotalCapacity returns Σ µ_q, saturating on overflow.
func (pl *Platform) TotalCapacity() int {
	total := 0
	for _, p := range pl.Procs {
		if total > math.MaxInt32-p.Capacity {
			return math.MaxInt32
		}
		total += p.Capacity
	}
	return total
}

// PaperConfig carries the synthetic-scenario parameters of Section VII.A.
type PaperConfig struct {
	P    int // number of processors (the paper uses 20)
	Wmin int // minimum per-task speed; w_q ~ U[Wmin, 10·Wmin]
	Ncom int // master communication capacity
	// StayLo/StayHi bound the per-state self-loop probabilities
	// (the paper uses 0.90 and 0.99).
	StayLo, StayHi float64
}

// DefaultPaperConfig returns the Section VII.A parameters with the given
// sweep coordinates.
func DefaultPaperConfig(wmin, ncom int) PaperConfig {
	return PaperConfig{P: 20, Wmin: wmin, Ncom: ncom, StayLo: 0.90, StayHi: 0.99}
}

// GeneratePaper draws a random platform following Section VII.A: for each
// processor, each self-loop probability P(x,x) is uniform in
// [StayLo, StayHi) and the two out-probabilities split the rest evenly;
// w_q is uniform on the integers [Wmin, 10·Wmin]; capacities are
// unbounded (the paper's experiments set no µ limit).
func GeneratePaper(cfg PaperConfig, stream *rng.Stream) *Platform {
	if cfg.P <= 0 || cfg.Wmin <= 0 || cfg.Ncom <= 0 {
		panic(fmt.Sprintf("platform: invalid paper config %+v", cfg))
	}
	if cfg.StayLo < 0 || cfg.StayHi > 1 || cfg.StayLo > cfg.StayHi {
		panic(fmt.Sprintf("platform: invalid stay bounds %+v", cfg))
	}
	procs := make([]Processor, cfg.P)
	for i := range procs {
		m := markov.PerState(
			stream.Uniform(cfg.StayLo, cfg.StayHi),
			stream.Uniform(cfg.StayLo, cfg.StayHi),
			stream.Uniform(cfg.StayLo, cfg.StayHi),
		)
		procs[i] = Processor{
			Speed:    stream.IntRange(cfg.Wmin, 10*cfg.Wmin),
			Capacity: UnboundedCapacity,
			Avail:    m,
		}
	}
	return &Platform{Procs: procs, Ncom: cfg.Ncom}
}

// SpeedTier is one class of identical-speed processors in a tiered
// heterogeneous grid.
type SpeedTier struct {
	// Count is the number of processors in the tier.
	Count int `json:"count"`
	// Speed is the tier's w_q (slots per task; smaller is faster).
	Speed int `json:"speed"`
}

// TieredConfig describes a heterogeneous grid platform built from
// explicit speed classes — the online-grid counterpart of PaperConfig's
// uniform speed draw, with the speed profile under the experimenter's
// control (e.g. a few fast dedicated hosts amid many slow desktops).
type TieredConfig struct {
	// Tiers lists the speed classes; the platform concatenates them in
	// order, so processor indices are grouped by tier.
	Tiers []SpeedTier
	// Ncom is the master communication capacity.
	Ncom int
	// StayLo/StayHi bound the per-state self-loop probabilities, drawn
	// per processor exactly as GeneratePaper draws them.
	StayLo, StayHi float64
}

// GenerateTiered draws a heterogeneous platform: per processor, the
// availability matrix is random within the stay bounds (one stream draw
// sequence shared with GeneratePaper's idiom, so tiered platforms are as
// reproducible as paper ones) while the speed is the tier's, exactly.
// Capacities are unbounded.
func GenerateTiered(cfg TieredConfig, stream *rng.Stream) *Platform {
	total := 0
	for _, tier := range cfg.Tiers {
		if tier.Count <= 0 || tier.Speed <= 0 {
			panic(fmt.Sprintf("platform: invalid speed tier %+v", tier))
		}
		total += tier.Count
	}
	if total == 0 || cfg.Ncom <= 0 {
		panic(fmt.Sprintf("platform: invalid tiered config %+v", cfg))
	}
	if cfg.StayLo < 0 || cfg.StayHi > 1 || cfg.StayLo > cfg.StayHi {
		panic(fmt.Sprintf("platform: invalid stay bounds %+v", cfg))
	}
	procs := make([]Processor, 0, total)
	for _, tier := range cfg.Tiers {
		for i := 0; i < tier.Count; i++ {
			m := markov.PerState(
				stream.Uniform(cfg.StayLo, cfg.StayHi),
				stream.Uniform(cfg.StayLo, cfg.StayHi),
				stream.Uniform(cfg.StayLo, cfg.StayHi),
			)
			procs = append(procs, Processor{
				Speed:    tier.Speed,
				Capacity: UnboundedCapacity,
				Avail:    m,
			})
		}
	}
	return &Platform{Procs: procs, Ncom: cfg.Ncom}
}

// Homogeneous builds a platform of p identical processors, useful for
// tests and for the off-line problem instances of Section IV (which assume
// w_q = w).
func Homogeneous(p int, speed, capacity, ncom int, avail markov.Matrix) *Platform {
	procs := make([]Processor, p)
	for i := range procs {
		procs[i] = Processor{Speed: speed, Capacity: capacity, Avail: avail}
	}
	return &Platform{Procs: procs, Ncom: ncom}
}
