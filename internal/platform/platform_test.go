package platform

import (
	"testing"
	"testing/quick"

	"tightsched/internal/avail"
	"tightsched/internal/markov"
	"tightsched/internal/rng"
)

func TestProcessorValidate(t *testing.T) {
	good := Processor{Speed: 3, Capacity: 1, Avail: markov.Uniform(0.9)}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Processor{
		{Speed: 0, Capacity: 1, Avail: markov.Uniform(0.9)},
		{Speed: 1, Capacity: 0, Avail: markov.Uniform(0.9)},
		{Speed: 1, Capacity: 1}, // zero-value matrix is invalid
	} {
		if bad.Validate() == nil {
			t.Fatalf("accepted invalid processor %+v", bad)
		}
	}
}

func TestPlatformValidate(t *testing.T) {
	pl := Homogeneous(3, 2, 1, 2, markov.Uniform(0.95))
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if (&Platform{Ncom: 1}).Validate() == nil {
		t.Fatal("accepted empty platform")
	}
	pl.Ncom = 0
	if pl.Validate() == nil {
		t.Fatal("accepted ncom=0")
	}
}

func TestAccessors(t *testing.T) {
	pl := &Platform{
		Procs: []Processor{
			{Speed: 1, Capacity: 2, Avail: markov.Uniform(0.9)},
			{Speed: 5, Capacity: 3, Avail: markov.Uniform(0.95)},
		},
		Ncom: 4,
	}
	if pl.Size() != 2 {
		t.Fatal("size")
	}
	if got := pl.Speeds(); got[0] != 1 || got[1] != 5 {
		t.Fatalf("speeds %v", got)
	}
	if got := pl.Matrices(); got[1] != markov.Uniform(0.95) {
		t.Fatal("matrices")
	}
	if pl.TotalCapacity() != 5 {
		t.Fatalf("total capacity %d", pl.TotalCapacity())
	}
}

func TestTotalCapacitySaturates(t *testing.T) {
	pl := Homogeneous(10, 1, UnboundedCapacity, 1, markov.Uniform(0.9))
	if pl.TotalCapacity() <= 0 {
		t.Fatal("capacity overflowed")
	}
}

func TestGeneratePaperShape(t *testing.T) {
	cfg := DefaultPaperConfig(3, 10)
	pl := GeneratePaper(cfg, rng.New(42))
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if pl.Size() != 20 || pl.Ncom != 10 {
		t.Fatalf("size=%d ncom=%d", pl.Size(), pl.Ncom)
	}
	for i, p := range pl.Procs {
		if p.Speed < 3 || p.Speed > 30 {
			t.Fatalf("proc %d speed %d outside [wmin, 10wmin]", i, p.Speed)
		}
		if p.Capacity != UnboundedCapacity {
			t.Fatalf("proc %d capacity %d", i, p.Capacity)
		}
		for s := 0; s < markov.NumStates; s++ {
			stay := p.Avail[s][s]
			if stay < 0.90 || stay >= 0.99 {
				t.Fatalf("proc %d state %d self-loop %v outside [0.90, 0.99)", i, s, stay)
			}
			// Off-diagonals split the remainder evenly.
			var others []float64
			for j := 0; j < markov.NumStates; j++ {
				if j != s {
					others = append(others, p.Avail[s][j])
				}
			}
			if diff := others[0] - others[1]; diff > 1e-12 || diff < -1e-12 {
				t.Fatalf("proc %d state %d off-diagonals differ: %v", i, s, others)
			}
		}
	}
}

func TestGeneratePaperDeterministic(t *testing.T) {
	cfg := DefaultPaperConfig(2, 5)
	a := GeneratePaper(cfg, rng.New(7))
	b := GeneratePaper(cfg, rng.New(7))
	for i := range a.Procs {
		if a.Procs[i] != b.Procs[i] {
			t.Fatalf("generation not deterministic at proc %d", i)
		}
	}
}

func TestGeneratePaperSpeedsSpanRange(t *testing.T) {
	// Property: across many draws, speeds cover both halves of the range.
	if err := quick.Check(func(seed uint32) bool {
		pl := GeneratePaper(DefaultPaperConfig(1, 5), rng.New(uint64(seed)))
		lo, hi := false, false
		for _, p := range pl.Procs {
			if p.Speed <= 5 {
				lo = true
			}
			if p.Speed >= 6 {
				hi = true
			}
		}
		return lo || hi // any single platform hits at least one half
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratePaperPanics(t *testing.T) {
	for name, cfg := range map[string]PaperConfig{
		"p=0":        {P: 0, Wmin: 1, Ncom: 1, StayLo: 0.9, StayHi: 0.99},
		"wmin=0":     {P: 1, Wmin: 0, Ncom: 1, StayLo: 0.9, StayHi: 0.99},
		"ncom=0":     {P: 1, Wmin: 1, Ncom: 0, StayLo: 0.9, StayHi: 0.99},
		"stay order": {P: 1, Wmin: 1, Ncom: 1, StayLo: 0.99, StayHi: 0.9},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("GeneratePaper(%s) did not panic", name)
				}
			}()
			GeneratePaper(cfg, rng.New(1))
		}()
	}
}

func TestHomogeneous(t *testing.T) {
	pl := Homogeneous(4, 7, 2, 3, markov.Uniform(0.92))
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range pl.Procs {
		if p.Speed != 7 || p.Capacity != 2 {
			t.Fatalf("unexpected processor %+v", p)
		}
	}
}

func TestAvailModelDefaultsToMarkov(t *testing.T) {
	pl := Homogeneous(3, 1, 2, 2, markov.Uniform(0.95))
	if name := pl.AvailModel().Name(); name != "markov" {
		t.Fatalf("default model %q", name)
	}
	believed := pl.BelievedMatrices()
	for q, m := range pl.Matrices() {
		if believed[q] != m {
			t.Fatalf("proc %d: believed %v != nominal %v", q, believed[q], m)
		}
	}
}

func TestAvailModelOverride(t *testing.T) {
	pl := Homogeneous(2, 1, 2, 2, markov.Uniform(0.95))
	model := avail.NewSemiMarkov(0.6)
	model.CalibrationSlots = 2_000
	pl.Model = model
	if name := pl.AvailModel().Name(); name != "semimarkov" {
		t.Fatalf("model %q", name)
	}
	believed := pl.BelievedMatrices()
	if believed[0] == pl.Procs[0].Avail {
		t.Fatal("semi-Markov believed matrices equal the nominal chain exactly")
	}
	if err := believed[0].Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateTieredShape(t *testing.T) {
	cfg := TieredConfig{
		Tiers:  []SpeedTier{{Count: 4, Speed: 1}, {Count: 2, Speed: 4}},
		Ncom:   6,
		StayLo: 0.90, StayHi: 0.99,
	}
	pl := GenerateTiered(cfg, rng.New(42))
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if pl.Size() != 6 || pl.Ncom != 6 {
		t.Fatalf("size=%d ncom=%d", pl.Size(), pl.Ncom)
	}
	// Tiers concatenate in order: indices grouped, speeds exact.
	for i, p := range pl.Procs {
		want := 1
		if i >= 4 {
			want = 4
		}
		if p.Speed != want {
			t.Fatalf("proc %d speed %d, want %d", i, p.Speed, want)
		}
		if p.Capacity != UnboundedCapacity {
			t.Fatalf("proc %d capacity %d", i, p.Capacity)
		}
		for s := 0; s < markov.NumStates; s++ {
			if stay := p.Avail[s][s]; stay < 0.90 || stay >= 0.99 {
				t.Fatalf("proc %d state %d self-loop %v outside [0.90, 0.99)", i, s, stay)
			}
		}
	}
}

func TestGenerateTieredDeterministic(t *testing.T) {
	cfg := TieredConfig{Tiers: []SpeedTier{{Count: 3, Speed: 2}}, Ncom: 5, StayLo: 0.9, StayHi: 0.99}
	a := GenerateTiered(cfg, rng.New(7))
	b := GenerateTiered(cfg, rng.New(7))
	for i := range a.Procs {
		if a.Procs[i] != b.Procs[i] {
			t.Fatalf("generation not deterministic at proc %d", i)
		}
	}
}

func TestGenerateTieredPanics(t *testing.T) {
	cases := []struct {
		name string
		cfg  TieredConfig
	}{
		{"no tiers", TieredConfig{Ncom: 5, StayLo: 0.9, StayHi: 0.99}},
		{"zero count", TieredConfig{Tiers: []SpeedTier{{Count: 0, Speed: 1}}, Ncom: 5, StayLo: 0.9, StayHi: 0.99}},
		{"zero speed", TieredConfig{Tiers: []SpeedTier{{Count: 2, Speed: 0}}, Ncom: 5, StayLo: 0.9, StayHi: 0.99}},
		{"no ncom", TieredConfig{Tiers: []SpeedTier{{Count: 2, Speed: 1}}, StayLo: 0.9, StayHi: 0.99}},
		{"inverted stay bounds", TieredConfig{Tiers: []SpeedTier{{Count: 2, Speed: 1}}, Ncom: 5, StayLo: 0.99, StayHi: 0.9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("no panic")
				}
			}()
			GenerateTiered(tc.cfg, rng.New(1))
		})
	}
}
