package sim

import (
	"context"
	"fmt"

	"tightsched/internal/analytic"
	"tightsched/internal/avail"
	"tightsched/internal/markov"
	"tightsched/internal/sched"
	"tightsched/internal/trace"
)

// This file is the lockstep structure-of-arrays core (AdvanceBatch): all
// instances of one trial — every heuristic sharing a platform,
// application and availability realization — advance through the same
// slots together, and a sweep cell's trial groups run back to back. The
// transition-dense Markov regime defeats the leap core (runs average
// ~1.5 slots, so per-slot structure is exhausted); the structure that
// remains is *across* instances:
//
//   - instances of one trial see the same availability realization, so
//     the batch draws each trial's transitions once per run from that
//     trial's own seeded stream and shares the state vector across the
//     trial group (solo runs re-sample the identical walk once per
//     heuristic, and re-derive the provider's stationary setup with it);
//   - fresh greedy builds are pure functions of (criterion, UP set,
//     retention, elapsed-under-CritY), so instances whose believed views
//     coincide form an equivalence class that pays for one build through
//     the shared sched.DecisionCache, with the analytic SetStats memo
//     (keyed by believed-state SetKey) already shared underneath;
//   - per-instance results accumulate in bulk through the same
//     homogeneous-span arithmetic as the leap core.
//
// Parity is structural: each instance executes exactly the slot/leap
// recurrence via the engine's own decideSpan/executeSpan/handleDowns
// methods over exactly the leap core's homogeneous runs — the shared
// walk realizes the same state sequence a solo run's provider would, and
// the shared caches return values their misses would have computed — so
// Results, traces and events are byte-identical to the other cores
// (batch_diff_test.go, TestBatchGoldenParity).

// BatchInstance names one simulation of a batch: a heuristic (or a
// custom policy) plus the trial seed selecting its availability
// realization. Instances with equal seeds form a trial group and share
// one availability walk.
type BatchInstance struct {
	// Heuristic is one of sched.Names(); ignored when Custom is set.
	Heuristic string
	// Custom, when non-nil, is used instead of building Heuristic by
	// name. Custom policies run unshared (they do not route through the
	// decision cache) but still share their trial's availability walk.
	Custom sched.Heuristic
	// Seed determines the instance's availability realization and any
	// randomized decisions, exactly as Config.Seed does solo.
	Seed uint64
	// Recorder, when non-nil, records this instance's per-slot trace.
	Recorder *trace.Recorder
}

// BatchStats summarizes the cross-instance sharing of one batch.
type BatchStats struct {
	// Memo is the analytic set-statistics memo traffic during the batch
	// (a delta against the platform's counters at entry, so a cache-
	// warmed platform reports only this batch's lookups).
	Memo analytic.MemoStats
	// Decisions is the shared greedy-build cache traffic: every miss is
	// one equivalence-class representative built, every hit a build some
	// instance did not pay for.
	Decisions sched.DecisionStats
}

// batchGroup is one trial's slice of the structure-of-arrays state: the
// shared availability walk and the instances consuming it.
type batchGroup struct {
	rp     avail.RunProvider
	states []markov.State
	// downs is the per-run scratch list of DOWN processors, scanned once
	// from the shared state vector and handed to every instance.
	downs []int
	insts []*batchInst
	live  int
}

// batchInst is one instance's engine plus its lockstep bookkeeping.
type batchInst struct {
	e    *engine
	done bool
}

// RunBatch executes all instances in lockstep under the batch core. The
// shared cell configuration comes from base — Platform, App, Model, Cap,
// InitialAllUp, Eps, Analytic, AnalyticCache, RenewalE, Checkpoint and
// MaxLeap apply to every instance — while base's per-instance fields
// (Heuristic, Custom, Seed, Recorder, Advance) are ignored in favor of
// each BatchInstance. Results are returned in instance order.
//
// Each instance's Result, trace and events are byte-identical to a solo
// Run of the equivalent Config under any advance mode. When base.
// Provider is set it overrides every trial's realization (as it does
// solo) and is consulted once for the whole batch, so it must be
// deterministic by slot (scripted providers are).
//
// Cancellation follows RunContext's contract, checked once per group
// step: completed instances keep their results, live ones return the
// partial Result accumulated so far (zero for trial groups not yet
// started), and the context's error is returned alongside.
func RunBatch(ctx context.Context, base Config, insts []BatchInstance) ([]Result, BatchStats, error) {
	if len(insts) == 0 {
		return nil, BatchStats{}, fmt.Errorf("sim: empty batch")
	}
	if base.AnalyticCache == nil {
		// Instances of a batch share believed matrices; one private
		// cache makes them share the analytic platform (and its memo)
		// even when the caller did not provide one.
		base.AnalyticCache = analytic.NewPlatformCache()
	}
	dc := sched.NewDecisionCache()
	engines := make([]*batchInst, len(insts))
	for i, inst := range insts {
		cfg := base
		cfg.Heuristic = inst.Heuristic
		cfg.Custom = inst.Custom
		cfg.Seed = inst.Seed
		cfg.Recorder = inst.Recorder
		cfg.Advance = AdvanceBatch
		e, err := newEngine(cfg, false)
		if err != nil {
			return nil, BatchStats{}, err
		}
		e.env.Decisions = dc
		engines[i] = &batchInst{e: e}
	}
	apl := engines[0].e.env.Analytic
	memoBefore := apl.MemoStats()

	// Group instances by trial: equal seeds share one availability walk.
	// With an explicit provider the realization is scheduling- and
	// seed-independent, so the whole batch forms a single group.
	model := base.Model
	if model == nil {
		model = base.Platform.AvailModel()
	}
	mats := base.Platform.Matrices()
	var groups []*batchGroup
	p := base.Platform.Size()
	if base.Provider != nil {
		g := &batchGroup{
			rp:     avail.AsRunProvider(base.Provider),
			states: make([]markov.State, p),
		}
		for _, bi := range engines {
			g.insts = append(g.insts, bi)
		}
		groups = []*batchGroup{g}
	} else {
		bySeed := make(map[uint64]*batchGroup, len(insts))
		for i, bi := range engines {
			g := bySeed[insts[i].Seed]
			if g == nil {
				g = &batchGroup{
					rp:     avail.AsRunProvider(model.Provider(mats, insts[i].Seed, base.InitialAllUp)),
					states: make([]markov.State, p),
				}
				bySeed[insts[i].Seed] = g
				groups = append(groups, g)
			}
			g.insts = append(g.insts, bi)
		}
	}
	for _, g := range groups {
		g.live = len(g.insts)
		for _, bi := range g.insts {
			// The engine's state vector aliases the group's: every
			// engine method reads availability through e.states and
			// none writes it.
			bi.e.states = g.states
		}
	}

	err := runBatchLoop(ctx, groups)
	results := make([]Result, len(engines))
	for i, bi := range engines {
		results[i] = bi.e.res
	}
	stats := BatchStats{
		Memo:      apl.MemoStats().Sub(memoBefore),
		Decisions: dc.Stats(),
	}
	return results, stats, err
}

// runBatchLoop advances the trial groups one after the other: groups
// share no runtime state beyond the time-independent caches, so there is
// nothing to synchronize across them, and running each group through its
// own full availability runs keeps every instance's decision epochs at
// exactly the solo leap core's boundaries (a cross-group lockstep would
// chop every run to the shortest live trial's, roughly doubling the
// decision epochs of a two-trial cell without changing any result).
func runBatchLoop(ctx context.Context, groups []*batchGroup) error {
	for _, g := range groups {
		if err := runGroup(ctx, g); err != nil {
			return err
		}
	}
	return nil
}

// runGroup is the lockstep slot walk of one trial group: each step draws
// the trial's next homogeneous run — one RNG block-fill shared by the
// whole group — and advances every live instance through it via the
// engine's own homogeneous-span methods.
func runGroup(ctx context.Context, g *batchGroup) error {
	capSlots := g.insts[0].e.cap
	maxLeap := g.insts[0].e.cfg.MaxLeap
	if maxLeap == 0 {
		maxLeap = DefaultMaxLeap
	}
	done := ctx.Done()
	slot := int64(0)
	for g.live > 0 && slot < capSlots {
		// One context poll per group step, as the leap core polls per
		// macro-step. Instances of groups not yet started keep their
		// zero Result, consistent with the cancellation contract.
		if done != nil {
			select {
			case <-done:
				for _, bi := range g.insts {
					if !bi.done {
						bi.e.res.Makespan = slot
					}
				}
				return ctx.Err()
			default:
			}
		}
		limit := capSlots - slot
		if limit > maxLeap {
			limit = maxLeap
		}
		run := g.rp.StatesRun(slot, g.states, limit)
		if run < 1 {
			run = 1
		} else if run > limit {
			run = limit
		}
		g.downs = g.downs[:0]
		for q, s := range g.states {
			if s == markov.Down {
				g.downs = append(g.downs, q)
			}
		}
		for _, bi := range g.insts {
			if bi.done {
				continue
			}
			e := bi.e
			downEvent := ""
			if len(g.downs) > 0 {
				// New DOWNs appear only at a run's first slot, and
				// handleDowns is idempotent across the rest — exactly
				// the leap core's once-per-run call, with the shared
				// scan skipped when the run has no DOWN at all.
				downEvent = e.handleDownsList(g.downs)
			}
			for off := int64(0); off < run; {
				t := slot + off
				keep, err := e.decideSpan(t, run-off)
				if err != nil {
					return err
				}
				finEvent := ""
				j := e.executeSpan(t, keep, &finEvent)
				e.recordLeap(t, j, downEvent, finEvent)
				downEvent = ""
				if e.res.Completed == e.cfg.App.Iterations {
					e.res.Makespan = t + j
					bi.done = true
					g.live--
					break
				}
				off += j
			}
		}
		slot += run
	}
	for _, bi := range g.insts {
		if !bi.done {
			bi.e.res.Failed = true
			bi.e.res.Makespan = capSlots
		}
	}
	return nil
}
