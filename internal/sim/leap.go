package sim

import (
	"context"

	"tightsched/internal/app"
	"tightsched/internal/avail"
	"tightsched/internal/markov"
	"tightsched/internal/sched"
	"tightsched/internal/trace"
)

// This file is the event-leap (run-length) engine core. Between
// availability transitions and phase events every slot of the
// slot-stepped reference loop is identical, so the leap core advances
// time by macro-steps:
//
//  1. the availability seam (avail.RunProvider) reports the run length
//     of the current state vector — under the default Markov provider it
//     steps the same RNG stream internally, so the realization (and
//     therefore every golden table) is byte-identical to the slot walk;
//  2. the heuristic is consulted once per homogeneous sub-step through
//     sched.SpanDecider, which reports how long its decision is stable
//     (heuristics without the extension are decided every slot);
//  3. the phase mechanics (idle, communication, suspension, checkpoint,
//     coupled compute) are applied in bulk up to the next phase event —
//     the earliest of a message completion, the workload's end, a
//     checkpoint boundary, the availability change and the cap;
//  4. the trace recorder receives one run-length span per sub-step
//     instead of one step per slot.
//
// Parity with runSlot is structural, not approximate: a sub-step ends at
// every slot whose successor the slot engine could treat differently
// (retention-epoch change, phase event, availability change, or a
// heuristic that only vouches for one slot), so each bulk application
// reproduces the per-slot recurrence exactly. The differential tests in
// leap_diff_test.go and TestLeapGoldenParity pin this.

// runLeap executes the simulation with macro-step time advance.
func (e *engine) runLeap(ctx context.Context) (Result, error) {
	done := ctx.Done()
	rp := avail.AsRunProvider(e.prov)
	maxLeap := e.cfg.MaxLeap
	if maxLeap == 0 {
		maxLeap = DefaultMaxLeap
	}
	slot := int64(0)
	for slot < e.cap {
		// One context poll per macro-step: at most maxLeap slots of O(p)
		// bulk work run between polls.
		if done != nil {
			select {
			case <-done:
				e.res.Makespan = slot
				return e.res, ctx.Err()
			default:
			}
		}
		limit := e.cap - slot
		if limit > maxLeap {
			limit = maxLeap
		}
		run := rp.StatesRun(slot, e.states, limit)
		if run < 1 {
			run = 1
		} else if run > limit {
			run = limit
		}
		// New DOWNs can only appear at the first slot of a run (states
		// are constant afterwards, and enrollment requires UP workers);
		// handleDowns is idempotent across the rest.
		downEvent := e.handleDowns()
		for off := int64(0); off < run; {
			t := slot + off
			keep, err := e.decideSpan(t, run-off)
			if err != nil {
				return e.res, err
			}
			finEvent := ""
			j := e.executeSpan(t, keep, &finEvent)
			e.recordLeap(t, j, downEvent, finEvent)
			downEvent = ""
			if e.res.Completed == e.cfg.App.Iterations {
				e.res.Makespan = t + j
				return e.res, nil
			}
			off += j
		}
		slot += run
	}
	e.res.Failed = true
	e.res.Makespan = e.cap
	return e.res, nil
}

// decideSpan consults the heuristic for slot t with a homogeneity horizon
// of n slots, applies the decision, and returns for how many slots
// (1..n) it is committed.
func (e *engine) decideSpan(t, n int64) (int64, error) {
	v := e.view(t)
	var next app.Assignment
	keep := int64(1)
	if sd, ok := e.h.(sched.SpanDecider); ok {
		next, keep = sd.DecideSpan(v, n)
		if keep < 1 {
			keep = 1
		} else if keep > n {
			keep = n
		}
	} else {
		next = e.h.Decide(v)
	}
	return keep, e.apply(next, t)
}

// executeSpan advances the current phase by up to k homogeneous slots,
// mirroring execute()'s per-slot semantics in bulk. It returns the number
// of slots consumed (>= 1) and leaves e.acts holding the activity vector
// shared by all of them; a completed iteration writes its event through
// event.
func (e *engine) executeSpan(slot, k int64, event *string) int64 {
	for q := range e.acts {
		e.acts[q] = trace.NotEnrolled
	}
	if e.current == nil {
		e.res.IdleSlots += k
		return k
	}
	for _, q := range e.enrolled {
		e.acts[q] = trace.Idle
	}

	if e.commOutstanding() {
		return e.communicateSpan(k)
	}

	// Computation phase: all enrolled workers must be UP simultaneously;
	// with any of them RECLAIMED the configuration stays suspended for
	// the rest of the homogeneous span.
	for _, q := range e.enrolled {
		if e.states[q] != markov.Up {
			return k
		}
	}
	for _, q := range e.enrolled {
		e.acts[q] = trace.Compute
	}
	// An in-progress checkpoint consumes all-UP slots without advancing
	// the computation (checkpointing extension).
	if e.ckptPending > 0 {
		j := k
		if int64(e.ckptPending) < j {
			j = int64(e.ckptPending)
		}
		e.ckptPending -= int(j)
		if e.ckptPending == 0 {
			e.commitCheckpoint()
		}
		return j
	}
	j := k
	if rem := int64(e.workload - e.computeDone); rem < j {
		j = rem
	}
	if every := e.cfg.Checkpoint.Every; every > 0 {
		if d := int64(every - e.computeDone%every); d < j {
			j = d
		}
	}
	if j < 1 {
		j = 1
	}
	e.computeDone += int(j)
	e.res.ComputeSlots += j
	if e.computeDone >= e.workload {
		e.finishIteration(slot+j-1, event)
		return j
	}
	if every := e.cfg.Checkpoint.Every; every > 0 && e.computeDone%every == 0 {
		if e.cfg.Checkpoint.Cost == 0 {
			e.commitCheckpoint()
		} else {
			e.ckptPending = e.cfg.Checkpoint.Cost
		}
	}
	return j
}

// communicateSpan is communicate() in bulk: the serviced set — the first
// Ncom needy UP enrolled workers in processor order — is constant until a
// message completes, so the span advances every active transfer by
// j = min(k, earliest completion) slots at once. Completions (and their
// retention-epoch bumps) land in the span's final slot, exactly where the
// per-slot loop puts them.
func (e *engine) communicateSpan(k int64) int64 {
	budget := e.cfg.Platform.Ncom
	j := k
	served := e.commServed[:0]
	for _, q := range e.enrolled {
		if budget == 0 {
			break
		}
		if e.states[q] != markov.Up {
			continue
		}
		w := &e.workers[q]
		var rem int
		switch {
		case !w.HasProgram:
			rem = e.cfg.App.Tprog - w.ProgProgress
		case w.DataHeld < e.current[q]:
			rem = e.cfg.App.Tdata - w.DataProgress
		default:
			continue // fully provisioned; no bandwidth used
		}
		if rem < 1 {
			rem = 1 // zero-cost items complete at adoption; never here
		}
		if int64(rem) < j {
			j = int64(rem)
		}
		served = append(served, q)
		budget--
	}
	e.commServed = served
	for _, q := range served {
		w := &e.workers[q]
		if !w.HasProgram {
			e.acts[q] = trace.Program
			w.ProgProgress += int(j)
			if w.ProgProgress >= e.cfg.App.Tprog {
				w.HasProgram = true
				w.ProgProgress = 0
				e.retEpoch++
			}
		} else {
			e.acts[q] = trace.Data
			w.DataProgress += int(j)
			if w.DataProgress >= e.cfg.App.Tdata {
				w.DataHeld++
				w.DataProgress = 0
				e.retEpoch++
			}
		}
		e.res.CommSlots += j
	}
	return j
}

// recordLeap records one sub-step's span and its events. A restart event
// belongs to the span's first slot and a completion event to its last; when
// both land on the same slot the completion wins, as in the slot engine
// (finishIteration overwrites the handleDowns event).
func (e *engine) recordLeap(t, j int64, downEvent, finEvent string) {
	r := e.cfg.Recorder
	if r == nil {
		return
	}
	if downEvent != "" && !(finEvent != "" && j == 1) {
		r.AddEvent(t, downEvent)
	}
	if finEvent != "" {
		r.AddEvent(t+j-1, finEvent)
	}
	r.RecordSpan(t, j, e.states, e.acts)
}
