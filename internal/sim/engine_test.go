package sim

import (
	"testing"

	"tightsched/internal/app"
	"tightsched/internal/markov"
	"tightsched/internal/platform"
	"tightsched/internal/rng"
	"tightsched/internal/sched"
	"tightsched/internal/trace"
)

// testPlatform draws a small paper-style platform.
func testPlatform(seed uint64, p, ncom, wmin int) *platform.Platform {
	cfg := platform.PaperConfig{P: p, Wmin: wmin, Ncom: ncom, StayLo: 0.90, StayHi: 0.99}
	return platform.GeneratePaper(cfg, rng.New(seed))
}

func testApp(m, wmin int) app.Application {
	return app.Application{Tasks: m, Tprog: 5 * wmin, Tdata: wmin, Iterations: 3}
}

func TestRunAllHeuristicsComplete(t *testing.T) {
	pl := testPlatform(1, 10, 5, 1)
	application := testApp(3, 1)
	for _, name := range sched.Names() {
		res, err := Run(Config{
			Platform:  pl,
			App:       application,
			Heuristic: name,
			Seed:      42,
			Cap:       200000,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Failed {
			t.Fatalf("%s failed to complete: %+v", name, res)
		}
		if res.Completed != application.Iterations {
			t.Fatalf("%s completed %d iterations, want %d", name, res.Completed, application.Iterations)
		}
		if res.Makespan <= 0 {
			t.Fatalf("%s nonpositive makespan: %+v", name, res)
		}
		if res.Heuristic != name {
			t.Fatalf("result heuristic %q, want %q", res.Heuristic, name)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	pl := testPlatform(2, 8, 5, 2)
	application := testApp(4, 2)
	for _, name := range []string{"IE", "Y-IE", "RANDOM", "E-IAY"} {
		a, err := Run(Config{Platform: pl, App: application, Heuristic: name, Seed: 7, Cap: 200000})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(Config{Platform: pl, App: application, Heuristic: name, Seed: 7, Cap: 200000})
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("%s not deterministic: %+v vs %+v", name, a, b)
		}
	}
}

func TestSeedChangesRealization(t *testing.T) {
	pl := testPlatform(3, 8, 5, 1)
	application := testApp(3, 1)
	a, _ := Run(Config{Platform: pl, App: application, Heuristic: "IE", Seed: 1, Cap: 200000})
	b, _ := Run(Config{Platform: pl, App: application, Heuristic: "IE", Seed: 2, Cap: 200000})
	if a.Makespan == b.Makespan && a.CommSlots == b.CommSlots && a.ComputeSlots == b.ComputeSlots {
		t.Fatalf("different seeds produced identical runs: %+v", a)
	}
}

// TestAvailabilityIndependentOfHeuristic verifies the comparability
// guarantee of the harness: the availability realization depends only on
// the seed, not on scheduling decisions.
func TestAvailabilityIndependentOfHeuristic(t *testing.T) {
	pl := testPlatform(4, 6, 5, 1)
	application := testApp(3, 1)
	var recs [2]*trace.Recorder
	for i, name := range []string{"IE", "RANDOM"} {
		recs[i] = &trace.Recorder{}
		if _, err := Run(Config{
			Platform: pl, App: application, Heuristic: name,
			Seed: 99, Cap: 5000, Recorder: recs[i],
		}); err != nil {
			t.Fatal(err)
		}
	}
	n := recs[0].Len()
	if recs[1].Len() < n {
		n = recs[1].Len()
	}
	for s := int64(0); s < int64(n); s++ {
		a, b := recs[0].At(s), recs[1].At(s)
		for q := range a.States {
			if a.States[q] != b.States[q] {
				t.Fatalf("slot %d proc %d: states diverge between heuristics", s, q)
			}
		}
	}
}

// TestModelInvariants replays recorded traces and checks the execution
// rules of Section III: the bounded multi-port constraint, no overlap of
// communication and computation, computation only with every enrolled
// worker UP, and no activity on DOWN processors.
func TestModelInvariants(t *testing.T) {
	pl := testPlatform(5, 10, 2, 1) // tight ncom to stress the allocator
	application := testApp(5, 1)
	for _, name := range []string{"IE", "IP", "IY", "IAY", "Y-IE", "E-IAY", "P-IP", "RANDOM"} {
		rec := &trace.Recorder{}
		if _, err := Run(Config{
			Platform: pl, App: application, Heuristic: name,
			Seed: 11, Cap: 50000, Recorder: rec,
		}); err != nil {
			t.Fatal(err)
		}
		for step := range rec.Steps() {
			comm, compute := 0, 0
			for q, act := range step.Activities {
				switch act {
				case trace.Program, trace.Data:
					comm++
					if step.States[q] != markov.Up {
						t.Fatalf("%s slot %d: proc %d communicates while %v",
							name, step.Slot, q, step.States[q])
					}
				case trace.Compute:
					compute++
					if step.States[q] != markov.Up {
						t.Fatalf("%s slot %d: proc %d computes while %v",
							name, step.Slot, q, step.States[q])
					}
				}
				if step.States[q] == markov.Down && act != trace.NotEnrolled && act != trace.Idle {
					t.Fatalf("%s slot %d: DOWN proc %d has activity %v", name, step.Slot, q, act)
				}
			}
			if comm > pl.Ncom {
				t.Fatalf("%s slot %d: %d simultaneous communications exceed ncom=%d",
					name, step.Slot, comm, pl.Ncom)
			}
			if comm > 0 && compute > 0 {
				t.Fatalf("%s slot %d: communication and computation overlap", name, step.Slot)
			}
		}
	}
}

// TestRandomIsMuchWorse reproduces the paper's headline sanity check:
// RANDOM is drastically worse than IE on data-intensive instances.
func TestRandomIsMuchWorse(t *testing.T) {
	var ieTotal, randTotal int64
	for seed := uint64(0); seed < 5; seed++ {
		pl := testPlatform(100+seed, 20, 5, 3)
		application := app.Application{Tasks: 5, Tprog: 15, Tdata: 3, Iterations: 5}
		ie, err := Run(Config{Platform: pl, App: application, Heuristic: "IE", Seed: seed, Cap: 500000})
		if err != nil {
			t.Fatal(err)
		}
		rd, err := Run(Config{Platform: pl, App: application, Heuristic: "RANDOM", Seed: seed, Cap: 500000})
		if err != nil {
			t.Fatal(err)
		}
		ieTotal += ie.Makespan
		randTotal += rd.Makespan
	}
	if randTotal < 2*ieTotal {
		t.Fatalf("RANDOM (%d) not clearly worse than IE (%d) in aggregate", randTotal, ieTotal)
	}
}

func TestRunFailsAtCap(t *testing.T) {
	// One slow unreliable processor and a heavy workload: with a tiny cap
	// the run must fail and report the cap as makespan.
	pl := testPlatform(6, 3, 5, 10)
	application := app.Application{Tasks: 3, Tprog: 50, Tdata: 10, Iterations: 10}
	res, err := Run(Config{Platform: pl, App: application, Heuristic: "IE", Seed: 1, Cap: 30})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || res.Makespan != 30 {
		t.Fatalf("expected capped failure, got %+v", res)
	}
	if res.Completed >= application.Iterations {
		t.Fatalf("failed run completed everything: %+v", res)
	}
}

func TestRunConfigErrors(t *testing.T) {
	pl := testPlatform(7, 3, 5, 1)
	application := testApp(2, 1)
	cases := []Config{
		{App: application, Heuristic: "IE"},                                        // nil platform
		{Platform: pl, App: app.Application{}, Heuristic: "IE"},                    // invalid app
		{Platform: pl, App: application, Heuristic: "NOPE"},                        // unknown heuristic
		{Platform: pl, App: application, Heuristic: "IE", Cap: -1},                 // bad cap
		{Platform: &platform.Platform{Ncom: 1}, App: application, Heuristic: "IE"}, // invalid platform
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
	// Capacity below m.
	small := platform.Homogeneous(1, 1, 1, 1, markov.Uniform(0.95))
	if _, err := Run(Config{Platform: small, App: testApp(2, 1), Heuristic: "IE"}); err == nil {
		t.Fatal("expected capacity error")
	}
}

func TestInitialAllUp(t *testing.T) {
	pl := testPlatform(8, 5, 5, 1)
	application := testApp(2, 1)
	rec := &trace.Recorder{}
	if _, err := Run(Config{
		Platform: pl, App: application, Heuristic: "IE",
		Seed: 3, Cap: 10000, InitialAllUp: true, Recorder: rec,
	}); err != nil {
		t.Fatal(err)
	}
	for q, s := range rec.At(0).States {
		if s != markov.Up {
			t.Fatalf("InitialAllUp: proc %d starts %v", q, s)
		}
	}
}

func TestParseScriptErrors(t *testing.T) {
	if _, err := ParseScript(nil); err == nil {
		t.Fatal("empty script accepted")
	}
	if _, err := ParseScript([]string{"uu", "u"}); err == nil {
		t.Fatal("ragged script accepted")
	}
	if _, err := ParseScript([]string{"ux"}); err == nil {
		t.Fatal("unknown state accepted")
	}
}

func TestScriptProviderExtendsLastRow(t *testing.T) {
	rows, err := ParseScript([]string{"ud"})
	if err != nil {
		t.Fatal(err)
	}
	sp := &ScriptProvider{Script: rows}
	dst := make([]markov.State, 1)
	sp.States(5, dst) // beyond the script: last row repeats
	if dst[0] != markov.Down {
		t.Fatalf("expected last row to repeat, got %v", dst[0])
	}
}

// TestCustomHeuristicValidation ensures the engine rejects malformed
// assignments from custom heuristics instead of corrupting the run.
func TestCustomHeuristicValidation(t *testing.T) {
	pl := platform.Homogeneous(3, 1, 1, 1, markov.AlwaysUp())
	application := app.Application{Tasks: 2, Iterations: 1}
	bad := &fixedHeuristic{asg: app.Assignment{2, 0, 0}} // exceeds capacity 1
	if _, err := Run(Config{Platform: pl, App: application, Custom: bad, Cap: 10}); err == nil {
		t.Fatal("expected validation error for over-capacity assignment")
	}
}

// TestReliablePlatformMakespan checks the engine's accounting on a fully
// deterministic platform: p identical always-UP workers, so the makespan
// is exactly iterations × (comm phase + compute phase).
func TestReliablePlatformMakespan(t *testing.T) {
	pl := platform.Homogeneous(4, 2, platform.UnboundedCapacity, 2, markov.AlwaysUp())
	application := app.Application{Tasks: 4, Tprog: 2, Tdata: 1, Iterations: 3}
	res, err := Run(Config{Platform: pl, App: application, Heuristic: "IE", Seed: 1, Cap: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("failed on reliable platform: %+v", res)
	}
	// IE on identical always-UP workers spreads 4 tasks over 4 workers
	// (adding a second task to a busy worker doubles E while enrolling an
	// idle one does not). Each worker needs 3 comm slots; 12 units over 2
	// channels = 6 slots; W = 2. First iteration: 8 slots. Later
	// iterations skip the program download: 4 units over 2 channels = 2
	// slots + 2 compute = 4 slots. Total = 8 + 4 + 4 = 16.
	if res.Makespan != 16 {
		t.Fatalf("makespan = %d, want 16 (%+v)", res.Makespan, res)
	}
	if res.Restarts != 0 || res.IdleSlots != 0 {
		t.Fatalf("unexpected restarts/idle on reliable platform: %+v", res)
	}
}
