package sim

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"tightsched/internal/app"
	"tightsched/internal/avail"
	"tightsched/internal/rng"
	"tightsched/internal/trace"
)

// This file is the differential harness pinning the lockstep batch core
// to the slot-stepped reference: every instance of a multi-instance
// RunBatch — heuristics sharing decision equivalence classes, trials
// sharing availability walks — must reproduce the exact Result and trace
// of a solo slot-advance run of the equivalent Config, for scripted and
// Markov availability, semi-Markov and sojourn models, checkpoints, and
// custom non-SpanDecider heuristics.

// runBatchAgainstSlot runs every instance of one cell twice — jointly
// through one RunBatch and solo under the slot reference — and asserts
// each instance's Result and trace are identical.
func runBatchAgainstSlot(t *testing.T, label string, base Config, insts []BatchInstance) {
	t.Helper()
	recs := make([]*trace.Recorder, len(insts))
	batch := make([]BatchInstance, len(insts))
	for i, in := range insts {
		recs[i] = &trace.Recorder{}
		in.Recorder = recs[i]
		batch[i] = in
	}
	results, _, err := RunBatch(context.Background(), base, batch)
	if err != nil {
		t.Fatalf("%s: batch: %v", label, err)
	}
	for i, in := range insts {
		recSlot := &trace.Recorder{}
		cfg := base
		cfg.Heuristic = in.Heuristic
		cfg.Custom = in.Custom
		cfg.Seed = in.Seed
		cfg.Recorder = recSlot
		cfg.Advance = AdvanceSlot
		resSlot, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: slot %s: %v", label, in.Heuristic, err)
		}
		name := in.Heuristic
		if name == "" {
			name = "custom"
		}
		assertIdentical(t, fmt.Sprintf("%s inst=%d %s seed=%d", label, i, name, in.Seed),
			resSlot, results[i], recSlot, recs[i])
	}
}

// cell builds the cross product of heuristics and seeds as one batch —
// the shape a sweep cell dispatches.
func cell(heuristics []string, seeds []uint64) []BatchInstance {
	var insts []BatchInstance
	for _, s := range seeds {
		for _, h := range heuristics {
			insts = append(insts, BatchInstance{Heuristic: h, Seed: s})
		}
	}
	return insts
}

// TestBatchVsSlotScriptedFuzz: randomized scripts, every heuristic class
// batched together (cache-sharing incrementals, proactives, RANDOM and
// static ranks which bypass the decision cache), several max-leap caps.
func TestBatchVsSlotScriptedFuzz(t *testing.T) {
	heuristics := []string{"IE", "IAY", "Y-IE", "P-IP", "E-IY", "RANDOM", "FASTEST"}
	stream := rng.New(0xba7c)
	for trial := 0; trial < 8; trial++ {
		p := 3 + stream.IntN(5)
		stay := 0.5 + 0.45*stream.Float64()
		script := randomScript(stream, p, 200+stream.IntN(400), stay)
		pl := testPlatform(uint64(2000+trial), p, 1+stream.IntN(3), 1)
		application := app.Application{
			Tasks:      1 + stream.IntN(p),
			Tprog:      stream.IntN(6),
			Tdata:      stream.IntN(4),
			Iterations: 1 + stream.IntN(4),
		}
		for _, maxLeap := range []int64{0, 7} {
			base := Config{
				Platform: pl,
				App:      application,
				Cap:      5_000,
				Provider: &ScriptProvider{Script: script},
				MaxLeap:  maxLeap,
			}
			label := fmt.Sprintf("script trial=%d maxleap=%d", trial, maxLeap)
			runBatchAgainstSlot(t, label, base, cell(heuristics, []uint64{uint64(trial), uint64(trial) + 100}))
		}
	}
}

// TestBatchVsSlotMarkovFuzz: the paper's regime — batches mixing several
// heuristics over several trials, each trial group sharing one Markov
// walk that must realize exactly the solo runs' walks.
func TestBatchVsSlotMarkovFuzz(t *testing.T) {
	heuristics := []string{"IE", "IY", "Y-IE", "P-IE", "E-IAY", "RANDOM"}
	for seed := uint64(1); seed <= 4; seed++ {
		base := Config{
			Platform: testPlatform(seed, 8, 4, 1),
			App:      testApp(4, 1),
			Cap:      100_000,
		}
		runBatchAgainstSlot(t, fmt.Sprintf("markov seed=%d", seed), base,
			cell(heuristics, []uint64{seed * 31, seed*31 + 1}))
	}
}

// TestBatchVsSlotSemiMarkov covers the lookahead adapter over a
// non-RunProvider availability process shared across a trial group.
func TestBatchVsSlotSemiMarkov(t *testing.T) {
	base := Config{
		Platform: testPlatform(21, 6, 3, 1),
		App:      testApp(3, 1),
		Cap:      100_000,
		Model:    avail.NewSemiMarkov(0.7),
	}
	runBatchAgainstSlot(t, "semimarkov", base, cell([]string{"IE", "Y-IE", "P-IP"}, []uint64{9, 10}))
}

// TestBatchVsSlotSojourn covers the natively run-length sojourn provider.
func TestBatchVsSlotSojourn(t *testing.T) {
	base := Config{
		Platform: testPlatform(33, 8, 4, 1),
		App:      testApp(3, 1),
		Cap:      200_000,
		Model:    avail.SojournMarkovModel{},
	}
	runBatchAgainstSlot(t, "sojourn", base, cell([]string{"IE", "P-IP", "IAY"}, []uint64{4, 5}))
}

// TestBatchVsSlotCheckpoint exercises the checkpoint sub-phases under the
// batch core, with a custom non-SpanDecider heuristic (which forces
// per-slot decisions and bypasses the decision cache) riding in the same
// batch as cache-sharing incrementals.
func TestBatchVsSlotCheckpoint(t *testing.T) {
	stream := rng.New(0xbc4e)
	pl := testPlatform(55, 5, 2, 2)
	application := app.Application{Tasks: 3, Tprog: 3, Tdata: 2, Iterations: 3}
	for trial := 0; trial < 4; trial++ {
		script := randomScript(stream, 5, 300, 0.92)
		for _, ck := range []Checkpoint{{}, {Every: 3}, {Every: 4, Cost: 2}} {
			base := Config{
				Platform:   pl,
				App:        application,
				Cap:        5_000,
				Provider:   &ScriptProvider{Script: script},
				Checkpoint: ck,
			}
			insts := []BatchInstance{
				{Heuristic: "IE", Seed: uint64(trial)},
				{Heuristic: "Y-IE", Seed: uint64(trial)},
				{Custom: &fixedHeuristic{asg: app.Assignment{1, 1, 1, 0, 0}}, Seed: uint64(trial)},
			}
			label := fmt.Sprintf("checkpoint trial=%d every=%d cost=%d", trial, ck.Every, ck.Cost)
			runBatchAgainstSlot(t, label, base, insts)
		}
	}
}

// TestBatchSoloRunContext: Config.Advance = AdvanceBatch through the
// ordinary Run entry point is a batch of one, byte-identical to slot.
func TestBatchSoloRunContext(t *testing.T) {
	recSlot, recBatch := &trace.Recorder{}, &trace.Recorder{}
	cfg := Config{
		Platform:  testPlatform(7, 6, 3, 1),
		App:       testApp(3, 1),
		Heuristic: "Y-IE",
		Seed:      11,
		Cap:       100_000,
	}
	cfgSlot := cfg
	cfgSlot.Advance = AdvanceSlot
	cfgSlot.Recorder = recSlot
	resSlot, err := Run(cfgSlot)
	if err != nil {
		t.Fatal(err)
	}
	cfgBatch := cfg
	cfgBatch.Advance = AdvanceBatch
	cfgBatch.Recorder = recBatch
	resBatch, err := Run(cfgBatch)
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, "solo batch", resSlot, resBatch, recSlot, recBatch)
}

// TestBatchEmptyAndValidate: an empty batch is an error, and the single
// validation point rejects out-of-range advance modes everywhere — the
// engine, not a silent fallback, is the arbiter.
func TestBatchEmptyAndValidate(t *testing.T) {
	if _, _, err := RunBatch(context.Background(), Config{}, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	for _, a := range []TimeAdvance{AdvanceLeap, AdvanceSlot, AdvanceBatch} {
		if err := a.Validate(); err != nil {
			t.Fatalf("%v rejected: %v", a, err)
		}
	}
	bad := TimeAdvance(99)
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range advance validated")
	}
	cfg := Config{
		Platform:  testPlatform(7, 3, 2, 1),
		App:       testApp(2, 1),
		Heuristic: "IE",
		Cap:       1000,
		Advance:   bad,
	}
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "advance") {
		t.Fatalf("engine accepted invalid advance mode (err=%v)", err)
	}
}

// TestBatchMaxLeapAndCancel: MaxLeap caps every availability request the
// batch core makes, and a pre-cancelled context stops the batch before
// any slot executes while reporting partial makespans.
func TestBatchMaxLeapAndCancel(t *testing.T) {
	script, err := ParseScript([]string{"dd", "dd", "dd"})
	if err != nil {
		t.Fatal(err)
	}
	probe := &limitProbe{inner: &ScriptProvider{Script: script}}
	base := Config{
		Platform: testPlatform(80, 3, 2, 1),
		App:      testApp(2, 1),
		Cap:      100_000,
		Provider: probe,
		MaxLeap:  64,
	}
	insts := []BatchInstance{{Heuristic: "IE", Seed: 1}, {Heuristic: "IY", Seed: 2}}
	results, _, err := RunBatch(context.Background(), base, insts)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if !res.Failed || res.Makespan != 100_000 {
			t.Fatalf("cap-bound instance %d: %+v", i, res)
		}
	}
	if probe.maxAsked > 64 {
		t.Fatalf("batch requested a %d-slot run with MaxLeap 64", probe.maxAsked)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, _, err = RunBatch(ctx, base, insts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch returned %v", err)
	}
	for i, res := range results {
		if res.Makespan != 0 || res.Failed {
			t.Fatalf("cancelled instance %d: %+v", i, res)
		}
	}
}

// TestBatchSharingCounts: a batch of equal-seed incremental heuristics
// must actually share — the decision cache reports hits and more than one
// instance per equivalence class, and the memo delta only counts this
// batch's traffic.
func TestBatchSharingCounts(t *testing.T) {
	base := Config{
		Platform: testPlatform(3, 8, 4, 1),
		App:      testApp(4, 1),
		Cap:      100_000,
	}
	insts := cell([]string{"IP", "P-IP", "E-IP", "Y-IP"}, []uint64{42})
	_, stats, err := RunBatch(context.Background(), base, insts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Decisions.Hits == 0 {
		t.Fatalf("no shared decisions across a CritP class batch: %+v", stats.Decisions)
	}
	if stats.Memo.Hits+stats.Memo.Misses == 0 {
		t.Fatalf("memo delta empty: %+v", stats.Memo)
	}
}
