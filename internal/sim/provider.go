// Package sim implements the discrete-event simulator the paper's
// evaluation (Section VII) is built on, executing the
// application/platform model of Section III exactly — 3-state processor
// availability, the master's bounded multi-port bandwidth, program and
// per-task data downloads, RECLAIMED suspend/resume, DOWN
// restart-from-scratch, and tightly-coupled computation that advances
// only when every enrolled worker is UP.
//
// Two byte-identical time-advance cores execute that model (Config.
// Advance): the event-leap macro-step engine (the default, leap.go),
// whose cost scales with availability transitions and phase events, and
// the reference slot-stepped loop (engine.go), which pays full
// bookkeeping every slot and serves as the differential oracle. See
// DESIGN.md, "Time advance".
package sim

import (
	"tightsched/internal/avail"
	"tightsched/internal/markov"
)

// The engine consumes availability through the avail subsystem: models
// (avail.Model) describe how availability evolves and are resolved into
// per-trial providers at run setup; the aliases below keep the sim-level
// names that tests, examples and external callers use.

// StateProvider feeds the engine the availability state of every
// processor, slot by slot. The engine calls States with consecutive slot
// values starting at 0. Providers let tests and examples script exact
// availability patterns (e.g. the paper's Figure 1) while experiments use
// an avail.Model.
type StateProvider = avail.StateProvider

// ProviderFunc adapts a function to the StateProvider interface, so
// callers can plug arbitrary availability processes into the engine.
type ProviderFunc = avail.ProviderFunc

// ScriptProvider replays a fixed availability script: Script[t][q] is the
// state of processor q at slot t. Slots beyond the script reuse its last
// row.
type ScriptProvider = avail.ScriptProvider

// ParseScript converts a compact textual availability script into rows:
// one string per processor, one character per slot, 'u' = UP,
// 'r' = RECLAIMED, 'd' = DOWN. All strings must have equal length.
func ParseScript(perProc []string) ([][]markov.State, error) {
	return avail.ParseScript(perProc)
}
