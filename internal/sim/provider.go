// Package sim implements the discrete-event simulator the paper's
// evaluation (Section VII) is built on: a slot-synchronous engine that
// executes the application/platform model of Section III exactly —
// 3-state processor availability, the master's bounded multi-port
// bandwidth, program and per-task data downloads, RECLAIMED
// suspend/resume, DOWN restart-from-scratch, and tightly-coupled
// computation that advances only when every enrolled worker is UP.
package sim

import (
	"fmt"

	"tightsched/internal/markov"
	"tightsched/internal/platform"
	"tightsched/internal/rng"
)

// StateProvider feeds the engine the availability state of every
// processor, slot by slot. The engine calls States with consecutive slot
// values starting at 0. Providers let tests and examples script exact
// availability patterns (e.g. the paper's Figure 1) while experiments use
// the Markov provider.
type StateProvider interface {
	States(slot int64, dst []markov.State)
}

// ProviderFunc adapts a function to the StateProvider interface, so
// callers can plug arbitrary availability processes (e.g. the semi-Markov
// traces of the non-Markovian extension) into the engine.
type ProviderFunc func(slot int64, dst []markov.State)

// States implements StateProvider.
func (f ProviderFunc) States(slot int64, dst []markov.State) { f(slot, dst) }

// markovProvider samples each processor's chain independently, exactly as
// Section III.B prescribes. Availability is independent of scheduling
// decisions, so two heuristics run with the same seed see the same
// realization.
type markovProvider struct {
	samplers []*markov.Sampler
}

// newMarkovProvider builds per-processor samplers from a trial seed. When
// allUp is false, initial states are drawn from each chain's stationary
// distribution (the platform is in steady state when the application
// arrives); when true, every processor starts UP.
func newMarkovProvider(pl *platform.Platform, seed uint64, allUp bool) *markovProvider {
	initStream := rng.NewKeyed(seed, 0x1217)
	mp := &markovProvider{samplers: make([]*markov.Sampler, pl.Size())}
	for q, proc := range pl.Procs {
		start := markov.Up
		if !allUp {
			pi := proc.Avail.Stationary()
			start = markov.State(initStream.Categorical(pi[:]))
		}
		mp.samplers[q] = markov.NewSampler(proc.Avail, start, rng.NewKeyed(seed, 0x5107, uint64(q)))
	}
	return mp
}

// States implements StateProvider.
func (mp *markovProvider) States(slot int64, dst []markov.State) {
	for q, s := range mp.samplers {
		if slot == 0 {
			dst[q] = s.State()
		} else {
			dst[q] = s.Step()
		}
	}
}

// ScriptProvider replays a fixed availability script: Script[t][q] is the
// state of processor q at slot t. Slots beyond the script reuse its last
// row. It implements StateProvider and is exported for tests, examples and
// replaying recorded traces.
type ScriptProvider struct {
	Script [][]markov.State
}

// States implements StateProvider.
func (sp *ScriptProvider) States(slot int64, dst []markov.State) {
	if len(sp.Script) == 0 {
		panic("sim: empty script")
	}
	row := sp.Script[len(sp.Script)-1]
	if slot < int64(len(sp.Script)) {
		row = sp.Script[slot]
	}
	if len(row) != len(dst) {
		panic(fmt.Sprintf("sim: script row has %d states, platform has %d", len(row), len(dst)))
	}
	copy(dst, row)
}

// ParseScript converts a compact textual availability script into rows:
// one string per processor, one character per slot, 'u' = UP,
// 'r' = RECLAIMED, 'd' = DOWN. All strings must have equal length.
func ParseScript(perProc []string) ([][]markov.State, error) {
	if len(perProc) == 0 {
		return nil, fmt.Errorf("sim: empty script")
	}
	n := len(perProc[0])
	rows := make([][]markov.State, n)
	for t := range rows {
		rows[t] = make([]markov.State, len(perProc))
	}
	for q, s := range perProc {
		if len(s) != n {
			return nil, fmt.Errorf("sim: processor %d script has length %d, want %d", q, len(s), n)
		}
		for t := 0; t < n; t++ {
			switch s[t] {
			case 'u', 'U':
				rows[t][q] = markov.Up
			case 'r', 'R':
				rows[t][q] = markov.Reclaimed
			case 'd', 'D':
				rows[t][q] = markov.Down
			default:
				return nil, fmt.Errorf("sim: processor %d slot %d: unknown state %q", q, t, s[t])
			}
		}
	}
	return rows, nil
}
