package sim

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"testing"

	"tightsched/internal/app"
	"tightsched/internal/avail"
	"tightsched/internal/markov"
	"tightsched/internal/rng"
	"tightsched/internal/trace"
)

// This file is the differential harness pinning the event-leap engine to
// the slot-stepped reference: for randomized scripted availability and
// random Markov realizations, across passive, proactive, randomized,
// extension and custom (non-SpanDecider) heuristics, checkpoint
// configurations and max-leap caps, the two cores must produce identical
// Results and identical traces — slot by slot, event by event.

// runEngines executes cfg under both time-advance cores with fresh
// recorders and returns (slotResult, leapResult, slotTrace, leapTrace).
func runEngines(t *testing.T, cfg Config) (Result, Result, *trace.Recorder, *trace.Recorder) {
	t.Helper()
	recSlot, recLeap := &trace.Recorder{}, &trace.Recorder{}
	cfgSlot := cfg
	cfgSlot.Advance = AdvanceSlot
	cfgSlot.Recorder = recSlot
	resSlot, err := Run(cfgSlot)
	if err != nil {
		t.Fatalf("slot engine: %v", err)
	}
	cfgLeap := cfg
	cfgLeap.Advance = AdvanceLeap
	cfgLeap.Recorder = recLeap
	resLeap, err := Run(cfgLeap)
	if err != nil {
		t.Fatalf("leap engine: %v", err)
	}
	return resSlot, resLeap, recSlot, recLeap
}

// assertIdentical fails unless results and traces match exactly.
func assertIdentical(t *testing.T, label string, resSlot, resLeap Result, recSlot, recLeap *trace.Recorder) {
	t.Helper()
	if resSlot != resLeap {
		t.Fatalf("%s: results diverge\nslot: %+v\nleap: %+v", label, resSlot, resLeap)
	}
	if recSlot.Len() != recLeap.Len() {
		t.Fatalf("%s: trace lengths diverge: slot %d, leap %d", label, recSlot.Len(), recLeap.Len())
	}
	next, stop := iter.Pull(recLeap.Steps())
	defer stop()
	for a := range recSlot.Steps() {
		b, ok := next()
		if !ok {
			t.Fatalf("%s: leap trace ends early at slot %d", label, a.Slot)
		}
		if a.Slot != b.Slot || a.Event != b.Event {
			t.Fatalf("%s: slot %d: step mismatch (slot %d event %q vs slot %d event %q)",
				label, a.Slot, a.Slot, a.Event, b.Slot, b.Event)
		}
		for q := range a.States {
			if a.States[q] != b.States[q] {
				t.Fatalf("%s: slot %d proc %d: state %v vs %v", label, a.Slot, q, a.States[q], b.States[q])
			}
			if a.Activities[q] != b.Activities[q] {
				t.Fatalf("%s: slot %d proc %d: activity %v vs %v", label, a.Slot, q, a.Activities[q], b.Activities[q])
			}
		}
	}
	if _, ok := next(); ok {
		t.Fatalf("%s: leap trace longer than slot trace", label)
	}
}

// randomScript draws a persistence-biased availability script: each
// processor stays in its state with probability stay, otherwise jumps to
// a uniform other state, giving runs of every length including long ones.
func randomScript(stream *rng.Stream, p, slots int, stay float64) [][]markov.State {
	rows := make([][]markov.State, slots)
	cur := make([]markov.State, p)
	for q := range cur {
		cur[q] = markov.State(stream.IntN(int(markov.NumStates)))
	}
	for t := range rows {
		row := make([]markov.State, p)
		for q := range row {
			if t > 0 && stream.Float64() < stay {
				row[q] = cur[q]
			} else {
				row[q] = markov.State(stream.IntN(int(markov.NumStates)))
			}
			cur[q] = row[q]
		}
		rows[t] = row
	}
	return rows
}

// TestLeapVsSlotScriptedFuzz: randomized scripts, every heuristic class,
// several max-leap caps.
func TestLeapVsSlotScriptedFuzz(t *testing.T) {
	heuristics := []string{"IE", "IAY", "Y-IE", "P-IP", "E-IY", "RANDOM", "FASTEST"}
	stream := rng.New(0xd1ff)
	for trial := 0; trial < 12; trial++ {
		p := 3 + stream.IntN(5)
		stay := 0.5 + 0.45*stream.Float64()
		script := randomScript(stream, p, 200+stream.IntN(400), stay)
		pl := testPlatform(uint64(1000+trial), p, 1+stream.IntN(3), 1)
		application := app.Application{
			Tasks:      1 + stream.IntN(p),
			Tprog:      stream.IntN(6),
			Tdata:      stream.IntN(4),
			Iterations: 1 + stream.IntN(4),
		}
		for _, h := range heuristics {
			for _, maxLeap := range []int64{0, 7} {
				cfg := Config{
					Platform:  pl,
					App:       application,
					Heuristic: h,
					Seed:      uint64(trial),
					Cap:       5_000,
					Provider:  &ScriptProvider{Script: script},
					MaxLeap:   maxLeap,
				}
				label := fmt.Sprintf("script trial=%d %s maxleap=%d", trial, h, maxLeap)
				resSlot, resLeap, recSlot, recLeap := runEngines(t, cfg)
				assertIdentical(t, label, resSlot, resLeap, recSlot, recLeap)
			}
		}
	}
}

// TestLeapVsSlotMarkovFuzz: the default Markov provider must yield
// byte-identical realizations under both engines (the leap run provider
// steps the same RNG stream), and with them identical runs.
func TestLeapVsSlotMarkovFuzz(t *testing.T) {
	heuristics := []string{"IE", "IY", "Y-IE", "P-IE", "E-IAY", "RANDOM", "RELIABLE"}
	for seed := uint64(1); seed <= 6; seed++ {
		pl := testPlatform(seed, 8, 4, 1)
		application := testApp(4, 1)
		for _, h := range heuristics {
			cfg := Config{
				Platform:  pl,
				App:       application,
				Heuristic: h,
				Seed:      seed * 31,
				Cap:       100_000,
			}
			resSlot, resLeap, recSlot, recLeap := runEngines(t, cfg)
			assertIdentical(t, fmt.Sprintf("markov seed=%d %s", seed, h), resSlot, resLeap, recSlot, recLeap)
			if resSlot.Failed {
				t.Fatalf("markov seed=%d %s: run unexpectedly capped", seed, h)
			}
		}
	}
}

// TestLeapVsSlotSemiMarkov covers the lookahead adapter over a
// non-RunProvider availability process (the semi-Markov sampler).
func TestLeapVsSlotSemiMarkov(t *testing.T) {
	model := avail.NewSemiMarkov(0.7)
	pl := testPlatform(21, 6, 3, 1)
	application := testApp(3, 1)
	for _, h := range []string{"IE", "Y-IE"} {
		cfg := Config{
			Platform:  pl,
			App:       application,
			Heuristic: h,
			Seed:      9,
			Cap:       100_000,
			Model:     model,
		}
		resSlot, resLeap, recSlot, recLeap := runEngines(t, cfg)
		assertIdentical(t, "semimarkov "+h, resSlot, resLeap, recSlot, recLeap)
	}
}

// TestLeapVsSlotSojourn covers the natively run-length sojourn provider:
// its States walk and StatesRun view realize the same process, so both
// engines agree.
func TestLeapVsSlotSojourn(t *testing.T) {
	pl := testPlatform(33, 8, 4, 1)
	application := testApp(3, 1)
	for _, h := range []string{"IE", "P-IP"} {
		cfg := Config{
			Platform:  pl,
			App:       application,
			Heuristic: h,
			Seed:      4,
			Cap:       200_000,
			Model:     avail.SojournMarkovModel{},
		}
		resSlot, resLeap, recSlot, recLeap := runEngines(t, cfg)
		assertIdentical(t, "sojourn "+h, resSlot, resLeap, recSlot, recLeap)
	}
}

// TestLeapVsSlotCheckpoint exercises the checkpoint sub-phases (free and
// costly commits, crash resume) under both engines, including a custom
// non-SpanDecider heuristic that forces per-slot decisions.
func TestLeapVsSlotCheckpoint(t *testing.T) {
	stream := rng.New(0xc4e7)
	pl := testPlatform(55, 5, 2, 2)
	application := app.Application{Tasks: 3, Tprog: 3, Tdata: 2, Iterations: 3}
	for trial := 0; trial < 6; trial++ {
		script := randomScript(stream, 5, 300, 0.92)
		for _, ck := range []Checkpoint{{}, {Every: 3}, {Every: 4, Cost: 2}} {
			for _, custom := range []bool{false, true} {
				cfg := Config{
					Platform:   pl,
					App:        application,
					Heuristic:  "IE",
					Seed:       uint64(trial),
					Cap:        5_000,
					Provider:   &ScriptProvider{Script: script},
					Checkpoint: ck,
				}
				if custom {
					cfg.Heuristic = ""
					cfg.Custom = &fixedHeuristic{asg: app.Assignment{1, 1, 1, 0, 0}}
				}
				label := fmt.Sprintf("checkpoint trial=%d every=%d cost=%d custom=%v", trial, ck.Every, ck.Cost, custom)
				resSlot, resLeap, recSlot, recLeap := runEngines(t, cfg)
				assertIdentical(t, label, resSlot, resLeap, recSlot, recLeap)
			}
		}
	}
}

// limitProbe wraps a RunProvider and records the largest limit the
// engine ever requested — the observable form of the MaxLeap bound.
type limitProbe struct {
	inner    avail.RunProvider
	maxAsked int64
}

func (p *limitProbe) States(slot int64, dst []markov.State) { p.inner.States(slot, dst) }

func (p *limitProbe) StatesRun(from int64, dst []markov.State, limit int64) int64 {
	if limit > p.maxAsked {
		p.maxAsked = limit
	}
	return p.inner.StatesRun(from, dst, limit)
}

// TestLeapMaxLeapBoundsMacroSteps: Config.MaxLeap caps every macro-step
// the engine requests (the cancellation-latency bound), and a
// pre-cancelled context stops a leap run before any slot executes.
func TestLeapMaxLeapBoundsMacroSteps(t *testing.T) {
	script, err := ParseScript([]string{"dd", "dd", "dd"})
	if err != nil {
		t.Fatal(err)
	}
	probe := &limitProbe{inner: &ScriptProvider{Script: script}}
	cfg := Config{
		Platform:  testPlatform(80, 3, 2, 1),
		App:       testApp(2, 1),
		Heuristic: "IE",
		Cap:       100_000,
		Provider:  probe,
		MaxLeap:   64,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || res.Makespan != 100_000 {
		t.Fatalf("cap-bound run: %+v", res)
	}
	if probe.maxAsked > 64 {
		t.Fatalf("engine requested a %d-slot macro-step with MaxLeap 64", probe.maxAsked)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err = RunContext(ctx, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled leap run returned %v", err)
	}
	if res.Makespan != 0 || res.Failed {
		t.Fatalf("cancelled run result: %+v", res)
	}
}

// TestLeapCapBoundIdle: a permanently infeasible script must idle to the
// cap under both engines, and the leap trace must stay run-length tiny.
func TestLeapCapBoundIdle(t *testing.T) {
	script, err := ParseScript([]string{"ddd", "ddd", "ddd"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Platform:  testPlatform(77, 3, 2, 1),
		App:       testApp(2, 1),
		Heuristic: "IE",
		Cap:       200_000,
		Provider:  &ScriptProvider{Script: script},
	}
	resSlot, resLeap, recSlot, recLeap := runEngines(t, cfg)
	assertIdentical(t, "cap-bound idle", resSlot, resLeap, recSlot, recLeap)
	if !resLeap.Failed || resLeap.IdleSlots != 200_000 {
		t.Fatalf("cap-bound run: %+v", resLeap)
	}
	if recLeap.SpanCount() > 8 {
		t.Fatalf("leap trace uses %d spans for a homogeneous cap-bound run", recLeap.SpanCount())
	}
	if recSlot.SpanCount() != recLeap.SpanCount() {
		t.Fatalf("span counts differ: slot %d, leap %d (coalescing broken)", recSlot.SpanCount(), recLeap.SpanCount())
	}
}
