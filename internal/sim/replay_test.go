package sim

import (
	"testing"

	"tightsched/internal/trace"
)

// TestRecordedAvailabilityReplays: a realization recorded by one run can
// be exported with AvailabilityScript and replayed under a different
// heuristic; both runs then see identical availability, slot by slot, so
// the makespan difference is attributable to scheduling alone.
func TestRecordedAvailabilityReplays(t *testing.T) {
	pl := testPlatform(70, 8, 5, 1)
	application := testApp(3, 1)

	first := &trace.Recorder{}
	resIE, err := Run(Config{
		Platform: pl, App: application, Heuristic: "IE",
		Seed: 4, Cap: 50000, Recorder: first,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resIE.Failed {
		t.Fatalf("seed run failed: %+v", resIE)
	}

	script, err := ParseScript(first.AvailabilityScript())
	if err != nil {
		t.Fatal(err)
	}
	second := &trace.Recorder{}
	resRandom, err := Run(Config{
		Platform: pl, App: application, Heuristic: "RANDOM",
		Seed: 99, Cap: 50000,
		Provider: &ScriptProvider{Script: script},
		Recorder: second,
	})
	if err != nil {
		t.Fatal(err)
	}

	n := second.Len()
	if first.Len() < n {
		n = first.Len()
	}
	for s := int64(0); s < int64(n); s++ {
		a, b := first.At(s), second.At(s)
		for q := range a.States {
			if a.States[q] != b.States[q] {
				t.Fatalf("replayed availability diverges at slot %d proc %d", s, q)
			}
		}
	}

	// Replaying the same heuristic on its own recorded availability must
	// reproduce the identical makespan.
	resAgain, err := Run(Config{
		Platform: pl, App: application, Heuristic: "IE",
		Seed: 4, Cap: 50000,
		Provider: &ScriptProvider{Script: script},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resAgain.Makespan != resIE.Makespan {
		t.Fatalf("replay makespan %d != original %d", resAgain.Makespan, resIE.Makespan)
	}
	_ = resRandom
}
