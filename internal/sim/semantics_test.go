package sim

import (
	"testing"

	"tightsched/internal/app"
	"tightsched/internal/markov"
	"tightsched/internal/platform"
	"tightsched/internal/sched"
	"tightsched/internal/trace"
)

// switchingHeuristic adopts config A, then switches to config B at a given
// slot, to exercise the reconfiguration retention semantics.
type switchingHeuristic struct {
	a, b     app.Assignment
	switchAt int64
}

func (s *switchingHeuristic) Name() string { return "SWITCHER" }

func (s *switchingHeuristic) Decide(v *sched.View) app.Assignment {
	if v.Slot >= s.switchAt {
		return s.b
	}
	return s.a
}

// TestReconfigKeepsCompletedMessages: a worker enrolled in both the old
// and new configuration keeps its program and completed data messages;
// only in-flight partial messages are lost for workers that drop out.
func TestReconfigKeepsCompletedMessages(t *testing.T) {
	pl := platform.Homogeneous(3, 4, platform.UnboundedCapacity, 3, markov.AlwaysUp())
	application := app.Application{Tasks: 2, Tprog: 2, Tdata: 3, Iterations: 1}
	// Config A: one task each on P0, P1. Config B: both tasks stay, P2
	// replaces nobody — actually keep P0 and P1 but swap task counts.
	h := &switchingHeuristic{
		a:        app.Assignment{1, 1, 0},
		b:        app.Assignment{2, 0, 0}, // P1 dropped, P0 takes both tasks
		switchAt: 6,
	}
	rec := &trace.Recorder{}
	res, err := Run(Config{
		Platform: pl, App: application, Custom: h,
		Provider: allUpProvider(3), Recorder: rec, Cap: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Timeline: slots 0-1 both download program (ncom=3). Slots 2-4: P0
	// and P1 download their data message (3 slots each). Slot 5: both
	// fully provisioned -> compute slot 1 of W=4... wait, W = 1·4 = 4.
	// Slot 5,6? No: switch at slot 6. Compute happens at slot 5 only
	// (computeDone=1), then the switch at slot 6 discards it. P0 keeps
	// its program and its one data message, needs one more (3 slots:
	// slots 6-8), then W = 2·4 = 8 compute slots: 9-16. Makespan 17.
	if res.Failed || res.Completed != 1 {
		t.Fatalf("result %+v\n%s", res, rec.Render())
	}
	if res.Makespan != 17 {
		t.Fatalf("makespan = %d, want 17\n%s", res.Makespan, rec.Render())
	}
	if res.Reconfigs != 1 {
		t.Fatalf("reconfigs = %d, want 1", res.Reconfigs)
	}
	// Comm total: 2+2 program + 3 data (P0) + 3 data (P1) + 3 data (P0
	// second message) = 13.
	if res.CommSlots != 13 {
		t.Fatalf("comm slots = %d, want 13\n%s", res.CommSlots, rec.Render())
	}
	// Compute: 1 discarded + 8 final = 9.
	if res.ComputeSlots != 9 {
		t.Fatalf("compute slots = %d, want 9\n%s", res.ComputeSlots, rec.Render())
	}
}

// allUpProvider scripts permanently-UP availability.
func allUpProvider(p int) StateProvider {
	return ProviderFunc(func(slot int64, dst []markov.State) {
		for i := range dst {
			dst[i] = markov.Up
		}
	})
}

// TestCapacityEnforced: with µ=1 everywhere, every heuristic must spread
// m tasks over m distinct workers.
func TestCapacityEnforced(t *testing.T) {
	pl := platform.Homogeneous(6, 2, 1, 6, markov.Uniform(0.97))
	application := app.Application{Tasks: 4, Tprog: 1, Tdata: 1, Iterations: 2}
	for _, name := range []string{"IE", "IP", "Y-IE", "RANDOM"} {
		rec := &trace.Recorder{}
		res, err := Run(Config{
			Platform: pl, App: application, Heuristic: name,
			Seed: 5, Cap: 100000, Recorder: rec,
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Failed {
			t.Fatalf("%s failed: %+v", name, res)
		}
		// µ=1 means a worker never computes more than one task: with
		// speed 2 the workload phase is exactly 2 coupled slots per
		// iteration, so total compute slots = 2 × iterations.
		if res.ComputeSlots < 4 {
			t.Fatalf("%s compute slots = %d", name, res.ComputeSlots)
		}
	}
}

// TestZeroCommApplication: Tprog = Tdata = 0 (the off-line complexity
// section's regime) must work: iterations need only coupled compute slots.
func TestZeroCommApplication(t *testing.T) {
	pl := platform.Homogeneous(4, 3, platform.UnboundedCapacity, 1, markov.AlwaysUp())
	application := app.Application{Tasks: 4, Iterations: 5}
	res, err := Run(Config{Platform: pl, App: application, Heuristic: "IE", Seed: 1, Cap: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed || res.CommSlots != 0 {
		t.Fatalf("zero-comm run: %+v", res)
	}
	// W = 3 per iteration (one task per worker), 5 iterations = 15.
	if res.Makespan != 15 {
		t.Fatalf("makespan = %d, want 15", res.Makespan)
	}
}

// TestNcomOneSerializesCommunication: with ncom = 1 the master serves one
// worker per slot; the communication phase is fully serial.
func TestNcomOneSerializesCommunication(t *testing.T) {
	pl := platform.Homogeneous(3, 2, platform.UnboundedCapacity, 1, markov.AlwaysUp())
	application := app.Application{Tasks: 3, Tprog: 2, Tdata: 1, Iterations: 1}
	rec := &trace.Recorder{}
	res, err := Run(Config{
		Platform: pl, App: application, Heuristic: "IE",
		Seed: 1, Cap: 100, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Each of 3 workers needs 3 comm slots = 9 serial slots, then W = 2.
	if res.Makespan != 11 {
		t.Fatalf("makespan = %d, want 11\n%s", res.Makespan, rec.Render())
	}
	for step := range rec.Steps() {
		comm := 0
		for _, act := range step.Activities {
			if act == trace.Program || act == trace.Data {
				comm++
			}
		}
		if comm > 1 {
			t.Fatalf("slot %d: %d simultaneous transfers with ncom=1", step.Slot, comm)
		}
	}
}

// TestProgramPersistsAcrossIterations: the program is downloaded once per
// worker; later iterations only pay for data.
func TestProgramPersistsAcrossIterations(t *testing.T) {
	pl := platform.Homogeneous(2, 1, platform.UnboundedCapacity, 2, markov.AlwaysUp())
	application := app.Application{Tasks: 2, Tprog: 4, Tdata: 1, Iterations: 3}
	res, err := Run(Config{Platform: pl, App: application, Heuristic: "IE", Seed: 1, Cap: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Iteration 1: program 4 + data 1 in parallel on both workers = 5
	// slots, compute 1. Iterations 2-3: data 1 + compute 1 = 2 each.
	// Makespan = 6 + 2 + 2 = 10. Comm slots = 2×5 + 2×1 + 2×1 = 14.
	if res.Makespan != 10 || res.CommSlots != 14 {
		t.Fatalf("makespan=%d comm=%d, want 10/14", res.Makespan, res.CommSlots)
	}
}

// TestDataDiscardedBetweenIterations: task data is per-iteration; workers
// must re-download it each time even if idle in between.
func TestDataDiscardedBetweenIterations(t *testing.T) {
	pl := platform.Homogeneous(2, 1, platform.UnboundedCapacity, 2, markov.AlwaysUp())
	application := app.Application{Tasks: 2, Tprog: 0, Tdata: 5, Iterations: 2}
	res, err := Run(Config{Platform: pl, App: application, Heuristic: "IE", Seed: 1, Cap: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Per iteration: 5 data slots (parallel on both) + 1 compute slot.
	if res.Makespan != 12 {
		t.Fatalf("makespan = %d, want 12", res.Makespan)
	}
	if res.CommSlots != 20 {
		t.Fatalf("comm slots = %d, want 20 (data re-downloaded)", res.CommSlots)
	}
}

// TestElapsedNotResetByRestart: the iteration clock (the t in the yield)
// keeps running across DOWN restarts. Observable via the engine view:
// we use a probe heuristic that records Elapsed values.
func TestElapsedNotResetByRestart(t *testing.T) {
	pl := platform.Homogeneous(2, 10, platform.UnboundedCapacity, 2, markov.Uniform(0.9))
	application := app.Application{Tasks: 2, Tprog: 1, Tdata: 1, Iterations: 1}
	script, err := ParseScript([]string{
		"uuuuduuuuuuuuuuuuuuu",
		"uuuuuuuuuuuuuuuuuuuu",
	})
	if err != nil {
		t.Fatal(err)
	}
	probe := &elapsedProbe{}
	if _, err := Run(Config{
		Platform: pl, App: application, Custom: probe,
		Provider: &ScriptProvider{Script: script}, Cap: 50,
	}); err != nil {
		t.Fatal(err)
	}
	// After the DOWN at slot 4 the iteration restarts but Elapsed must
	// keep counting from the iteration's first start (slot 0).
	if probe.elapsedAt5 != 5 {
		t.Fatalf("elapsed at slot 5 = %d, want 5 (not reset by the restart)", probe.elapsedAt5)
	}
}

type elapsedProbe struct {
	elapsedAt5 int64
}

func (p *elapsedProbe) Name() string { return "PROBE" }

func (p *elapsedProbe) Decide(v *sched.View) app.Assignment {
	if v.Slot == 5 {
		p.elapsedAt5 = v.Elapsed
	}
	if v.Current != nil {
		return v.Current
	}
	asg := make(app.Assignment, len(v.States))
	for q := range asg {
		if v.States[q] != markov.Up {
			return nil
		}
		asg[q] = 1
	}
	return asg
}
