package sim

import (
	"strings"
	"testing"

	"tightsched/internal/app"
	"tightsched/internal/avail"
	"tightsched/internal/markov"
	"tightsched/internal/platform"
)

// reclaimedTrace builds a trace model in which every processor is
// permanently RECLAIMED.
func reclaimedTrace(t *testing.T, p int) *avail.TraceModel {
	t.Helper()
	script := make([]string, p)
	for q := range script {
		script[q] = strings.Repeat("r", 4)
	}
	tm, err := avail.NewTraceModel("reclaimed", script)
	if err != nil {
		t.Fatal(err)
	}
	return tm
}

// TestPlatformModelIsGroundTruth attaches a permanently-RECLAIMED trace
// model to a platform whose nominal matrices say "always UP": the run
// must idle to the cap, proving the engine executes the model, not the
// matrices.
func TestPlatformModelIsGroundTruth(t *testing.T) {
	pl := platform.Homogeneous(3, 1, 3, 3, markov.AlwaysUp())
	pl.Model = reclaimedTrace(t, 3)
	res, err := Run(Config{
		Platform:  pl,
		App:       app.Application{Tasks: 2, Tprog: 1, Tdata: 1, Iterations: 1},
		Heuristic: "IE",
		Cap:       50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Failed || res.IdleSlots != 50 {
		t.Fatalf("run against reclaimed ground truth: %+v", res)
	}
}

// TestConfigModelOverridesPlatformModel gives the platform a hostile
// model but overrides it per run with Markov ground truth on always-UP
// chains: the run must now complete.
func TestConfigModelOverridesPlatformModel(t *testing.T) {
	pl := platform.Homogeneous(3, 1, 3, 3, markov.AlwaysUp())
	pl.Model = reclaimedTrace(t, 3)
	res, err := Run(Config{
		Platform:  pl,
		App:       app.Application{Tasks: 2, Tprog: 1, Tdata: 1, Iterations: 1},
		Heuristic: "IE",
		Model:     avail.MarkovModel{},
		Cap:       50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed {
		t.Fatalf("markov override did not take effect: %+v", res)
	}
}

// TestModelSizeMismatchErrors rejects a model whose believed matrices do
// not cover the platform.
func TestModelSizeMismatchErrors(t *testing.T) {
	pl := platform.Homogeneous(3, 1, 3, 3, markov.Uniform(0.95))
	tm, err := avail.NewTraceModel("short", []string{"uu", "uu"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		// The trace model panics on the size mismatch before the
		// engine's own check; either failure mode is acceptable, but it
		// must not run.
		recover()
	}()
	res, err := Run(Config{
		Platform:  pl,
		App:       app.Application{Tasks: 2, Tprog: 1, Tdata: 1, Iterations: 1},
		Heuristic: "IE",
		Model:     tm,
		Cap:       50,
	})
	if err == nil {
		t.Fatalf("mismatched model accepted: %+v", res)
	}
}
