package sim

import (
	"testing"

	"tightsched/internal/app"
	"tightsched/internal/markov"
	"tightsched/internal/platform"
	"tightsched/internal/sched"
	"tightsched/internal/trace"
)

// ckptPlatform: two always-present (per script) workers, speed 10, so one
// task each gives a 10-slot coupled computation.
func ckptPlatform() (*platform.Platform, app.Application, app.Assignment) {
	pl := platform.Homogeneous(2, 10, platform.UnboundedCapacity, 2, markov.Uniform(0.95))
	application := app.Application{Tasks: 2, Tprog: 1, Tdata: 1, Iterations: 1}
	return pl, application, app.Assignment{1, 1}
}

// TestCheckpointResumesAfterDown: without checkpointing a mid-computation
// crash restarts the iteration from scratch; with it, progress resumes
// from the last checkpoint.
func TestCheckpointResumesAfterDown(t *testing.T) {
	pl, application, asg := ckptPlatform()
	// Comm: slots 0 (prog) and 1 (data), both workers in parallel
	// (ncom=2). Compute starts at slot 2; P0 crashes at slot 8 after 6
	// compute slots (2..7), is back at slot 9.
	script, err := ParseScript([]string{
		"uuuuuuuuduuuuuuuuuuuuuuuuuuuuu",
		"uuuuuuuuuuuuuuuuuuuuuuuuuuuuuu",
	})
	if err != nil {
		t.Fatal(err)
	}

	run := func(ck Checkpoint) Result {
		rec := &trace.Recorder{}
		res, err := Run(Config{
			Platform: pl, App: application,
			Custom:   &fixedHeuristic{asg: asg},
			Provider: &ScriptProvider{Script: script},
			Recorder: rec, Cap: 100, Checkpoint: ck,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	plain := run(Checkpoint{})
	// Scratch restart: P0 lost program+data; re-provision at slots 9-10,
	// compute 10 fresh slots 11..20 -> makespan 21.
	if plain.Makespan != 21 || plain.Checkpoints != 0 {
		t.Fatalf("no-checkpoint run: %+v", plain)
	}

	ck := run(Checkpoint{Every: 2})
	// Checkpoints at computeDone 2,4,6 (free). Crash after 6 compute
	// slots -> resume from 6: re-provision slots 9-10, compute slots
	// 11..14 (4 remaining) -> makespan 15. Checkpoint at 8 also fires
	// during the final stretch.
	if ck.Makespan != 15 {
		t.Fatalf("checkpointed makespan = %d, want 15 (%+v)", ck.Makespan, ck)
	}
	if ck.Checkpoints < 3 {
		t.Fatalf("checkpoints = %d, want >= 3", ck.Checkpoints)
	}
	if ck.Makespan >= plain.Makespan {
		t.Fatal("checkpointing did not help after a crash")
	}
}

// TestCheckpointCostSlowsFailureFreeRuns: with no failures, checkpointing
// is pure overhead of Cost slots per checkpoint.
func TestCheckpointCostSlowsFailureFreeRuns(t *testing.T) {
	pl, application, asg := ckptPlatform()
	script, err := ParseScript([]string{
		"uuuuuuuuuuuuuuuuuuuuuuuuuuuuuu",
		"uuuuuuuuuuuuuuuuuuuuuuuuuuuuuu",
	})
	if err != nil {
		t.Fatal(err)
	}
	run := func(ck Checkpoint) Result {
		res, err := Run(Config{
			Platform: pl, App: application,
			Custom:   &fixedHeuristic{asg: asg},
			Provider: &ScriptProvider{Script: script},
			Cap:      100, Checkpoint: ck,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(Checkpoint{})
	if plain.Makespan != 12 { // 2 comm + 10 compute
		t.Fatalf("baseline makespan = %d, want 12", plain.Makespan)
	}
	costly := run(Checkpoint{Every: 3, Cost: 2})
	// Checkpoints fire at computeDone 3, 6, 9 -> 3 checkpoints × 2 slots
	// of overhead each = +6.
	if costly.Makespan != 18 {
		t.Fatalf("costly makespan = %d, want 18 (%+v)", costly.Makespan, costly)
	}
	if costly.Checkpoints != 3 {
		t.Fatalf("checkpoints = %d, want 3", costly.Checkpoints)
	}
}

// TestCheckpointRescalesAcrossConfigurations: progress saved under one
// configuration carries to a different one, rescaled by workload.
func TestCheckpointRescalesAcrossConfigurations(t *testing.T) {
	// P0 speed 10, P1 speed 20: config A = task on P0+P1 (W = 20);
	// config B after the crash = both tasks on P1... P1 speed 20 ->
	// W = 40. Saved fraction 10/20 = 0.5 -> resume at 20.
	pl := &platform.Platform{
		Procs: []platform.Processor{
			{Speed: 10, Capacity: 4, Avail: markov.Uniform(0.95)},
			{Speed: 20, Capacity: 4, Avail: markov.Uniform(0.95)},
		},
		Ncom: 2,
	}
	application := app.Application{Tasks: 2, Tprog: 1, Tdata: 1, Iterations: 1}
	// P0 crashes at slot 12 (after 10 compute slots in 2..11), never
	// returns; the switcher falls back to P1 alone.
	script, err := ParseScript([]string{
		"uuuuuuuuuuuuddddddddddddddddddddddddddddddddddddddddddddddddd",
		"uuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuuu",
	})
	if err != nil {
		t.Fatal(err)
	}
	h := &fallbackHeuristic{
		preferred: app.Assignment{1, 1},
		fallback:  app.Assignment{0, 2},
	}
	res, err := Run(Config{
		Platform: pl, App: application, Custom: h,
		Provider: &ScriptProvider{Script: script},
		Cap:      200, Checkpoint: Checkpoint{Every: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Config A: comm slots 0-1, compute slots 2-11 (10 of W=20;
	// checkpoints at 5 and 10). Crash at slot 12: resume fraction
	// 10/20 under config B (W=40) -> 20 slots done. P1 needs one more
	// data message (slot 12... P1 kept 1 message, needs 2 for x=2):
	// comm slot 12, then 20 remaining compute slots: 13..32 ->
	// makespan 33.
	if res.Failed || res.Completed != 1 {
		t.Fatalf("run failed: %+v", res)
	}
	if res.Makespan != 33 {
		t.Fatalf("makespan = %d, want 33 (%+v)", res.Makespan, res)
	}
}

// fallbackHeuristic uses the preferred assignment while its workers are
// UP and otherwise the fallback.
type fallbackHeuristic struct {
	preferred, fallback app.Assignment
}

func (f *fallbackHeuristic) Name() string { return "FALLBACK" }

func (f *fallbackHeuristic) Decide(v *sched.View) app.Assignment {
	if v.Current != nil {
		return v.Current
	}
	ok := true
	for q, x := range f.preferred {
		if x > 0 && v.States[q] != markov.Up {
			ok = false
		}
	}
	if ok {
		return f.preferred
	}
	for q, x := range f.fallback {
		if x > 0 && v.States[q] != markov.Up {
			return nil
		}
	}
	return f.fallback
}

// TestCheckpointValidation rejects negative configuration.
func TestCheckpointValidation(t *testing.T) {
	pl, application, _ := ckptPlatform()
	if _, err := Run(Config{
		Platform: pl, App: application, Heuristic: "IE",
		Checkpoint: Checkpoint{Every: -1},
	}); err == nil {
		t.Fatal("negative checkpoint period accepted")
	}
}
