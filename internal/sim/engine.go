package sim

import (
	"context"
	"fmt"

	"tightsched/internal/analytic"
	"tightsched/internal/app"
	"tightsched/internal/avail"
	"tightsched/internal/markov"
	"tightsched/internal/platform"
	"tightsched/internal/rng"
	"tightsched/internal/sched"
	"tightsched/internal/trace"
)

// DefaultCap is the paper's makespan limit: a run that has not completed
// its iterations within this many slots is declared failed.
const DefaultCap = 1_000_000

// DefaultEps is the engine's default analytic precision. Heuristics rank
// configurations; they do not need the full reference precision of
// analytic.DefaultEps, and the series horizon scales with log(1/eps).
const DefaultEps = 1e-6

// DefaultMaxLeap caps one macro-step of the event-leap engine. Beyond
// bounding memory per trace span, it bounds cancellation latency: a
// cancellable context is polled at macro-step boundaries, so at most
// MaxLeap slots of O(p) bulk arithmetic run between polls.
const DefaultMaxLeap = 1 << 16

// TimeAdvance selects the engine's time-advance core.
type TimeAdvance int

const (
	// AdvanceLeap (the default) is the run-length macro-step core: at
	// each state change the engine computes the next interesting slot —
	// the earliest of the next availability transition, the current
	// phase's completion (message done, coupled compute done, checkpoint
	// commit), and the cap — and applies the intervening homogeneous
	// slots in O(p) bulk arithmetic. Results and traces are byte-identical
	// to AdvanceSlot (pinned by TestLeapGoldenParity and the differential
	// tests in leap_diff_test.go).
	AdvanceLeap TimeAdvance = iota
	// AdvanceSlot is the reference slot-stepped loop: every slot pays
	// full bookkeeping. It remains as the differential oracle and for
	// per-slot instrumentation of custom providers.
	AdvanceSlot
	// AdvanceBatch is the lockstep structure-of-arrays core (batch.go):
	// all instances of a trial group advance through the same global
	// slots, sharing one availability walk per trial and one greedy
	// build per decision equivalence class. A single Run under
	// AdvanceBatch is a batch of one instance; the mode pays off through
	// RunBatch, where a sweep cell's trials and heuristics run together.
	// Results and traces stay byte-identical to the other cores (pinned
	// by TestBatchGoldenParity and batch_diff_test.go).
	AdvanceBatch
)

// String returns the option-flag spelling of the advance mode.
func (a TimeAdvance) String() string {
	switch a {
	case AdvanceLeap:
		return "leap"
	case AdvanceSlot:
		return "slot"
	case AdvanceBatch:
		return "batch"
	default:
		return fmt.Sprintf("TimeAdvance(%d)", int(a))
	}
}

// ParseTimeAdvance maps the option-flag spelling ("leap", "slot",
// "batch") back onto a TimeAdvance — the inverse of String, shared by the
// command-line tools and the service daemon's campaign specs so every
// front door accepts exactly the same mode names.
func ParseTimeAdvance(name string) (TimeAdvance, error) {
	switch name {
	case "leap":
		return AdvanceLeap, nil
	case "slot":
		return AdvanceSlot, nil
	case "batch":
		return AdvanceBatch, nil
	default:
		return 0, fmt.Errorf("sim: unknown time advance %q (choose leap, slot or batch)", name)
	}
}

// Validate rejects values outside the defined advance modes. It is the
// single validation point shared by the engine, the sweep harness and
// the session options, so an out-of-range mode fails loudly at
// configuration time instead of falling back to a default core.
func (a TimeAdvance) Validate() error {
	switch a {
	case AdvanceLeap, AdvanceSlot, AdvanceBatch:
		return nil
	default:
		return fmt.Errorf("sim: unknown time advance %d", int(a))
	}
}

// Config describes one simulation run.
type Config struct {
	Platform *platform.Platform
	App      app.Application
	// Heuristic is one of sched.Names(). Ignored when Custom is set.
	Heuristic string
	// Custom, when non-nil, is used instead of building Heuristic by
	// name. It lets callers plug in their own scheduling policies.
	Custom sched.Heuristic
	// Seed determines the availability realization and any randomized
	// heuristic decisions. Two runs with the same seed and different
	// heuristics see identical availability (availability is independent
	// of scheduling).
	Seed uint64
	// Cap is the failure limit in slots (DefaultCap when 0).
	Cap int64
	// InitialAllUp starts every processor UP instead of drawing initial
	// states from the stationary distribution.
	InitialAllUp bool
	// Model overrides the platform's availability model for this run.
	// When both Model and Platform.Model are nil the processors' Markov
	// matrices are ground truth (the paper's assumption).
	Model avail.Model
	// Provider overrides the model's per-trial provider entirely
	// (scripted runs); believed matrices still come from the model.
	Provider StateProvider
	// Recorder, when non-nil, records a per-slot trace.
	Recorder *trace.Recorder
	// Eps is the analytic series precision (analytic.DefaultEps when 0).
	Eps float64
	// Analytic tunes the Section V evaluator (see analytic.Options). The
	// zero value memoizes set statistics by membership: every evaluation
	// of a set returns the same canonical (sorted-order) floats, and
	// golden simulations are byte-identical to the memo-disabled path
	// (pinned by TestEvaluationCacheGoldenParity). The spectral
	// closed-form fast path is off; Analytic.Spectral turns it on (exact
	// geometric sums, which agree with the truncated series within eps
	// but may flip heuristic decisions at that precision).
	Analytic analytic.Options
	// AnalyticCache, when non-nil, reuses analytic platforms across runs
	// that share believed matrices (e.g. the trials and heuristics of one
	// sweep point). The cache, like the platforms it holds, must stay
	// confined to a single goroutine; reuse is bit-transparent because
	// memoized statistics are canonical.
	AnalyticCache *analytic.PlatformCache
	// RenewalE switches the heuristics' expected-completion-time metric
	// to the renewal form (see sched.Env.RenewalE). The default (false)
	// uses the formula as printed in the paper, reproducing its
	// published rankings.
	RenewalE bool
	// Checkpoint enables the checkpointing extension (not in the paper's
	// model; see the Checkpoint type). The zero value disables it.
	Checkpoint Checkpoint
	// Advance selects the time-advance core: the event-leap macro-step
	// engine (AdvanceLeap, the zero value), the reference slot-stepped
	// loop (AdvanceSlot), or the lockstep structure-of-arrays core
	// (AdvanceBatch; see RunBatch). All produce byte-identical results
	// and traces.
	Advance TimeAdvance
	// MaxLeap caps one macro-step of the leap engine in slots
	// (DefaultMaxLeap when 0), bounding worst-case cancellation latency.
	// Ignored by AdvanceSlot.
	MaxLeap int64
}

// Checkpoint configures the engine's checkpointing extension, an ablation
// of the paper's restart-from-scratch rule: every Every coupled compute
// slots, the master synchronously saves the iteration's global state,
// paying Cost additional all-UP slots per checkpoint. When an enrolled
// worker goes DOWN (or the configuration changes), the iteration resumes
// from the last checkpointed fraction of progress instead of from
// scratch — the saved state lives at the master, so it survives any
// reconfiguration, with progress rescaled to the new configuration's
// workload. Communication retention is unchanged: a replacement worker
// still needs the program and its task data.
type Checkpoint struct {
	// Every is the checkpoint period in compute slots (0 disables).
	Every int
	// Cost is the number of extra all-UP slots each checkpoint takes.
	Cost int
}

// Result summarizes one run.
type Result struct {
	Heuristic string
	// Completed is the number of iterations finished before the cap.
	Completed int
	// Makespan is the number of slots used to complete all iterations;
	// equal to the cap when Failed.
	Makespan int64
	// Failed reports that the run hit the cap before completing.
	Failed bool
	// Reconfigs counts configuration adoptions that replaced a different
	// live configuration (proactive switches).
	Reconfigs int64
	// Restarts counts iteration restarts forced by an enrolled worker
	// going DOWN.
	Restarts int64
	// IdleSlots counts slots with no feasible configuration.
	IdleSlots int64
	// CommSlots counts worker-slots spent receiving program or data.
	CommSlots int64
	// ComputeSlots counts slots in which the coupled computation advanced.
	ComputeSlots int64
	// Checkpoints counts committed checkpoints (checkpointing extension).
	Checkpoints int64
}

// engine holds the mutable ground-truth state of a run.
type engine struct {
	cfg    Config
	env    *sched.Env
	h      sched.Heuristic
	prov   StateProvider
	cap    int64
	speeds []int

	states  []markov.State
	workers []sched.WorkerInfo
	acts    []trace.Activity
	// commServed is the leap core's scratch for the serviced worker set
	// of one communication sub-step.
	commServed []int

	current     app.Assignment
	enrolled    []int
	workload    int
	computeDone int
	iterStart   int64
	retEpoch    int64

	// Checkpointing extension state: last committed progress (in the
	// scale of the workload it was taken under) and the all-UP slots
	// still owed for an in-progress checkpoint.
	ckptDone    int
	ckptW       int
	ckptPending int

	// viewBuf is the reusable snapshot handed to the heuristic: every
	// consumer reads it synchronously inside Decide/DecideSpan (none
	// retains the pointer), so one buffer per engine avoids an
	// allocation per decision epoch.
	viewBuf sched.View

	res Result
}

// Run executes one simulation and returns its result.
func Run(cfg Config) (Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext is Run under a context: cancellation is checked at every
// macro-step boundary (every slot under AdvanceSlot), so even a run
// heading for a million-slot cap stops promptly — Config.MaxLeap bounds
// a macro-step, so at most MaxLeap slots of O(p) bulk accounting run
// between polls. A cancelled run returns the partial Result accumulated
// so far (Makespan = slots executed, Failed unset) together with the
// context's error. An uncancellable context costs nothing on either loop.
func RunContext(ctx context.Context, cfg Config) (Result, error) {
	if cfg.Advance == AdvanceBatch {
		// A solo batch run: one instance, same lockstep core.
		inst := BatchInstance{
			Heuristic: cfg.Heuristic,
			Custom:    cfg.Custom,
			Seed:      cfg.Seed,
			Recorder:  cfg.Recorder,
		}
		results, _, err := RunBatch(ctx, cfg, []BatchInstance{inst})
		if len(results) != 1 {
			return Result{}, err
		}
		return results[0], err
	}
	e, err := newEngine(cfg, true)
	if err != nil {
		return Result{}, err
	}
	if cfg.Advance == AdvanceSlot {
		return e.runSlot(ctx)
	}
	return e.runLeap(ctx)
}

// newEngine validates the configuration and assembles one instance's
// engine. When needProv is false the availability provider seam is left
// nil — the batch core shares one provider across a trial's instances
// and aliases the engine's state vector to the trial group's.
func newEngine(cfg Config, needProv bool) (*engine, error) {
	if cfg.Platform == nil {
		return nil, fmt.Errorf("sim: nil platform")
	}
	if err := cfg.Platform.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.App.Validate(); err != nil {
		return nil, err
	}
	if cfg.Platform.TotalCapacity() < cfg.App.Tasks {
		return nil, fmt.Errorf("sim: platform capacity %d below %d tasks",
			cfg.Platform.TotalCapacity(), cfg.App.Tasks)
	}
	eps := cfg.Eps
	if eps == 0 {
		eps = DefaultEps
	}
	model := cfg.Model
	if model == nil {
		model = cfg.Platform.AvailModel()
	}
	base := cfg.Platform.Matrices()
	believed := model.EstimatorMatrices(base)
	if len(believed) != cfg.Platform.Size() {
		return nil, fmt.Errorf("sim: model %s believes %d processors, platform has %d",
			model.Name(), len(believed), cfg.Platform.Size())
	}
	var apl *analytic.Platform
	if cfg.AnalyticCache != nil {
		apl = cfg.AnalyticCache.Get(believed, eps, cfg.Analytic)
	} else {
		apl = analytic.NewPlatformWith(believed, eps, cfg.Analytic)
	}
	env := &sched.Env{
		Platform: cfg.Platform,
		App:      cfg.App,
		Believed: believed,
		Analytic: apl,
		Rand:     rng.NewKeyed(cfg.Seed, 0x7a4d),
		RenewalE: cfg.RenewalE,
	}
	h := cfg.Custom
	if h == nil {
		var err error
		h, err = sched.Build(cfg.Heuristic, env)
		if err != nil {
			return nil, err
		}
	}
	var prov StateProvider
	if needProv {
		prov = cfg.Provider
		if prov == nil {
			prov = model.Provider(base, cfg.Seed, cfg.InitialAllUp)
		}
	}
	capSlots := cfg.Cap
	if capSlots == 0 {
		capSlots = DefaultCap
	}
	if capSlots < 0 {
		return nil, fmt.Errorf("sim: negative cap %d", capSlots)
	}
	if cfg.Checkpoint.Every < 0 || cfg.Checkpoint.Cost < 0 {
		return nil, fmt.Errorf("sim: invalid checkpoint config %+v", cfg.Checkpoint)
	}
	if err := cfg.Advance.Validate(); err != nil {
		return nil, err
	}
	if cfg.MaxLeap < 0 {
		return nil, fmt.Errorf("sim: negative max leap %d", cfg.MaxLeap)
	}

	p := cfg.Platform.Size()
	return &engine{
		cfg:     cfg,
		env:     env,
		h:       h,
		prov:    prov,
		cap:     capSlots,
		speeds:  cfg.Platform.Speeds(),
		states:  make([]markov.State, p),
		workers: make([]sched.WorkerInfo, p),
		acts:    make([]trace.Activity, p),
		res:     Result{Heuristic: h.Name()},
	}, nil
}

// runSlot is the reference slot-stepped core: the paper's engine as
// written, one full bookkeeping pass per slot. runLeap (leap.go) must
// stay byte-identical to it.
func (e *engine) runSlot(ctx context.Context) (Result, error) {
	// Done is nil for uncancellable contexts, so the paper-faithful batch
	// path pays nothing; otherwise one non-blocking channel poll per slot
	// bounds cancellation latency to a single slot of work.
	done := ctx.Done()
	for slot := int64(0); slot < e.cap; slot++ {
		if done != nil {
			select {
			case <-done:
				e.res.Makespan = slot
				return e.res, ctx.Err()
			default:
			}
		}
		e.prov.States(slot, e.states)
		event := e.handleDowns()

		if err := e.decide(slot); err != nil {
			return e.res, err
		}

		e.execute(slot, &event)
		e.cfg.Recorder.Record(slot, e.states, e.acts, event)

		if e.res.Completed == e.cfg.App.Iterations {
			e.res.Makespan = slot + 1
			return e.res, nil
		}
	}
	e.res.Failed = true
	e.res.Makespan = e.cap
	return e.res, nil
}

// handleDowns applies the DOWN semantics of Section III.B: a DOWN worker
// loses the program, its data and any partial communication; if it was
// enrolled, the iteration restarts from scratch.
func (e *engine) handleDowns() string {
	event := ""
	broke := false
	for q, s := range e.states {
		if s != markov.Down {
			continue
		}
		w := &e.workers[q]
		if w.HasProgram || w.DataHeld > 0 || w.ProgProgress > 0 || w.DataProgress > 0 {
			*w = sched.WorkerInfo{}
			e.retEpoch++
		}
		if e.current != nil && e.current[q] > 0 {
			broke = true
			if event == "" {
				event = fmt.Sprintf("restart: P%d DOWN", q+1)
			}
		}
	}
	if broke {
		e.res.Restarts++
		e.dropConfiguration()
	}
	return event
}

// handleDownsList is handleDowns restricted to a precomputed ascending
// list of the DOWN processors of the current homogeneous run: the batch
// core scans the shared state vector once per trial group and hands every
// instance the same list, instead of each instance re-scanning all p
// states. Semantics are identical to handleDowns.
func (e *engine) handleDownsList(downs []int) string {
	event := ""
	broke := false
	for _, q := range downs {
		w := &e.workers[q]
		if w.HasProgram || w.DataHeld > 0 || w.ProgProgress > 0 || w.DataProgress > 0 {
			*w = sched.WorkerInfo{}
			e.retEpoch++
		}
		if e.current != nil && e.current[q] > 0 {
			broke = true
			if event == "" {
				event = fmt.Sprintf("restart: P%d DOWN", q+1)
			}
		}
	}
	if broke {
		e.res.Restarts++
		e.dropConfiguration()
	}
	return event
}

// dropConfiguration abandons the current configuration: all enrolled
// workers are "removed", so their in-flight message progress is lost
// (complete messages and the program are kept unless DOWN took them).
func (e *engine) dropConfiguration() {
	for _, q := range e.enrolled {
		e.workers[q].ProgProgress = 0
		e.workers[q].DataProgress = 0
	}
	e.current = nil
	e.enrolled = nil
	e.workload = 0
	e.computeDone = 0
}

// view refreshes the heuristic's per-slot snapshot in the engine's
// reusable buffer (see viewBuf).
func (e *engine) view(slot int64) *sched.View {
	e.viewBuf = sched.View{
		Slot:           slot,
		States:         e.states,
		Workers:        e.workers,
		Current:        e.current,
		RemainingWork:  e.workload - e.computeDone,
		Elapsed:        slot - e.iterStart,
		RetentionEpoch: e.retEpoch,
	}
	return &e.viewBuf
}

// decide asks the heuristic for this slot's configuration and adopts it.
func (e *engine) decide(slot int64) error {
	return e.apply(e.h.Decide(e.view(slot)), slot)
}

// apply adopts (or keeps, or drops) the decision returned for slot: the
// single adoption path shared by the slot and leap cores.
func (e *engine) apply(next app.Assignment, slot int64) error {
	if next == nil {
		if e.current != nil {
			e.res.Reconfigs++
			e.dropConfiguration()
		}
		return nil
	}
	if e.current != nil && next.Equal(e.current) {
		return nil
	}
	// Adopting a new configuration: validate it, then apply the removal
	// semantics to workers that dropped out.
	if err := e.validateNew(next); err != nil {
		return fmt.Errorf("sim: heuristic %s slot %d: %w", e.h.Name(), slot, err)
	}
	if e.current != nil {
		e.res.Reconfigs++
		for _, q := range e.enrolled {
			if next[q] == 0 {
				e.workers[q].ProgProgress = 0
				e.workers[q].DataProgress = 0
			}
		}
	}
	e.current = next.Clone()
	e.enrolled = e.current.Enrolled()
	e.workload = e.current.Workload(e.speeds)
	e.computeDone = e.resumePoint()
	e.ckptPending = 0 // an unfinished checkpoint is abandoned
	// Zero-cost communication items complete instantly.
	for _, q := range e.enrolled {
		w := &e.workers[q]
		if e.cfg.App.Tprog == 0 {
			w.HasProgram = true
		}
		if e.cfg.App.Tdata == 0 && w.DataHeld < e.current[q] {
			w.DataHeld = e.current[q]
		}
	}
	return nil
}

// validateNew enforces the model's enrollment rules on a configuration
// returned by a heuristic: exactly m tasks, capacities respected, and all
// enrolled workers UP at adoption time.
func (e *engine) validateNew(asg app.Assignment) error {
	caps := make([]int, e.cfg.Platform.Size())
	for q, proc := range e.cfg.Platform.Procs {
		caps[q] = proc.Capacity
	}
	if err := asg.Validate(e.cfg.App.Tasks, caps); err != nil {
		return err
	}
	for q, x := range asg {
		if x > 0 && e.states[q] != markov.Up {
			return fmt.Errorf("enrolled processor %d is %v", q, e.states[q])
		}
	}
	return nil
}

// execute advances the configuration by one slot: the communication phase
// under the bounded multi-port constraint, or one coupled compute slot
// when every enrolled worker is UP.
func (e *engine) execute(slot int64, event *string) {
	for q := range e.acts {
		e.acts[q] = trace.NotEnrolled
	}
	if e.current == nil {
		e.res.IdleSlots++
		return
	}
	for _, q := range e.enrolled {
		e.acts[q] = trace.Idle
	}

	if e.commOutstanding() {
		e.communicate()
		return
	}

	// Computation phase: all enrolled workers must be UP simultaneously.
	for _, q := range e.enrolled {
		if e.states[q] != markov.Up {
			return // suspended; activities stay Idle
		}
	}
	for _, q := range e.enrolled {
		e.acts[q] = trace.Compute
	}
	// An in-progress checkpoint consumes this all-UP slot without
	// advancing the computation (checkpointing extension).
	if e.ckptPending > 0 {
		e.ckptPending--
		if e.ckptPending == 0 {
			e.commitCheckpoint()
		}
		return
	}
	e.computeDone++
	e.res.ComputeSlots++
	if e.computeDone >= e.workload {
		e.finishIteration(slot, event)
		return
	}
	if every := e.cfg.Checkpoint.Every; every > 0 && e.computeDone%every == 0 {
		if e.cfg.Checkpoint.Cost == 0 {
			e.commitCheckpoint()
		} else {
			e.ckptPending = e.cfg.Checkpoint.Cost
		}
	}
}

// commitCheckpoint records the iteration's global progress at the master.
func (e *engine) commitCheckpoint() {
	e.ckptDone = e.computeDone
	e.ckptW = e.workload
	e.res.Checkpoints++
}

// resumePoint converts the last committed checkpoint into compute slots
// under the current workload scale (0 when checkpointing is off or no
// checkpoint exists for this iteration).
func (e *engine) resumePoint() int {
	if e.ckptW == 0 || e.workload == 0 {
		return 0
	}
	resumed := e.ckptDone * e.workload / e.ckptW
	if resumed >= e.workload {
		resumed = e.workload - 1
	}
	return resumed
}

// commOutstanding reports whether any enrolled worker still needs master
// communication for the current configuration.
func (e *engine) commOutstanding() bool {
	for _, q := range e.enrolled {
		w := e.workers[q]
		if !w.HasProgram || w.DataHeld < e.current[q] {
			return true
		}
	}
	return false
}

// communicate allocates up to Ncom communication slots to UP enrolled
// workers that still need the program or data, in increasing processor
// order (deterministic tie-breaking; the paper does not prescribe one).
// RECLAIMED workers' transfers are suspended and consume no bandwidth.
func (e *engine) communicate() {
	budget := e.cfg.Platform.Ncom
	for _, q := range e.enrolled {
		if budget == 0 {
			break
		}
		if e.states[q] != markov.Up {
			continue
		}
		w := &e.workers[q]
		switch {
		case !w.HasProgram:
			w.ProgProgress++
			e.acts[q] = trace.Program
			if w.ProgProgress >= e.cfg.App.Tprog {
				w.HasProgram = true
				w.ProgProgress = 0
				e.retEpoch++
			}
		case w.DataHeld < e.current[q]:
			w.DataProgress++
			e.acts[q] = trace.Data
			if w.DataProgress >= e.cfg.App.Tdata {
				w.DataHeld++
				w.DataProgress = 0
				e.retEpoch++
			}
		default:
			continue // fully provisioned; no bandwidth used
		}
		budget--
		e.res.CommSlots++
	}
}

// finishIteration applies the global synchronization: per-iteration data
// is discarded everywhere, the configuration is cleared, and the next
// iteration (if any) starts at the following slot.
func (e *engine) finishIteration(slot int64, event *string) {
	e.res.Completed++
	*event = fmt.Sprintf("iteration %d complete", e.res.Completed)
	for q := range e.workers {
		e.workers[q].DataHeld = 0
		e.workers[q].DataProgress = 0
	}
	e.current = nil
	e.enrolled = nil
	e.workload = 0
	e.computeDone = 0
	e.ckptDone = 0
	e.ckptW = 0
	e.ckptPending = 0
	e.retEpoch++
	e.iterStart = slot + 1
}
