package sim

import (
	"strings"
	"testing"

	"tightsched/internal/app"
	"tightsched/internal/markov"
	"tightsched/internal/platform"
	"tightsched/internal/sched"
	"tightsched/internal/trace"
)

// fixedHeuristic enrolls a fixed assignment whenever asked for a new
// configuration and all its workers are UP; otherwise it waits.
type fixedHeuristic struct {
	asg app.Assignment
}

func (f *fixedHeuristic) Name() string { return "FIXED" }

func (f *fixedHeuristic) Decide(v *sched.View) app.Assignment {
	if v.Current != nil {
		return v.Current
	}
	for q, x := range f.asg {
		if x > 0 && v.States[q] != markov.Up {
			return nil
		}
	}
	return f.asg
}

// figure1Platform is the paper's Figure 1 setting: 5 processors with
// w_i = i, ncom = 2, Tprog = 2, Tdata = 1, m = 5 tasks; the schedule
// assigns two tasks to P2 and P3 and one to P4, for a workload of
// max(2·2, 2·3, 1·4) = 6 coupled compute slots.
func figure1Platform() (*platform.Platform, app.Application, app.Assignment) {
	procs := make([]platform.Processor, 5)
	for i := range procs {
		procs[i] = platform.Processor{
			Speed:    i + 1,
			Capacity: platform.UnboundedCapacity,
			Avail:    markov.Uniform(0.95), // unused under a scripted provider
		}
	}
	pl := &platform.Platform{Procs: procs, Ncom: 2}
	application := app.Application{Tasks: 5, Tprog: 2, Tdata: 1, Iterations: 1}
	return pl, application, app.Assignment{0, 2, 2, 1, 0}
}

// TestFigure1Execution replays a Figure 1-style scenario slot by slot and
// checks the engine against a hand computation:
//
//	needs: P2 = 2 prog + 2 data = 4, P3 = 4, P4 = 2 prog + 1 data = 3
//	(11 communication slot-units over ncom = 2 channels);
//	P3 reclaimed during slots 2-3, P2 during 9-10, P3 again at 11.
//
// Hand schedule (serving UP needy workers in processor order):
//
//	slot 0: P2.prog P3.prog      slot 6:  compute (1/6)
//	slot 1: P2.prog P3.prog      slot 7:  compute (2/6)
//	slot 2: P2.data P4.prog      slot 8:  compute (3/6)
//	slot 3: P2.data P4.prog      slot 9:  suspended (P2 reclaimed)
//	slot 4: P3.data P4.data      slot 10: suspended (P2 reclaimed)
//	slot 5: P3.data              slot 11: suspended (P3 reclaimed)
//	                             slots 12-14: compute (6/6)
//
// so one iteration completes with makespan 15, 11 communication
// worker-slots and 6 compute slots.
func TestFigure1Execution(t *testing.T) {
	pl, application, asg := figure1Platform()
	script, err := ParseScript([]string{
		"ddddddddddddddd",
		"uuuuuuuuurruuuu",
		"uurruuuuuuuruuu",
		"uuuuuuuuuuuuuuu",
		"ddddddddddddddd",
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder{}
	res, err := Run(Config{
		Platform: pl,
		App:      application,
		Custom:   &fixedHeuristic{asg: asg},
		Provider: &ScriptProvider{Script: script},
		Recorder: rec,
		Cap:      100,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed || res.Completed != 1 {
		t.Fatalf("result: %+v", res)
	}
	if res.Makespan != 15 {
		t.Fatalf("makespan = %d, want 15\n%s", res.Makespan, rec.Render())
	}
	if res.CommSlots != 11 {
		t.Fatalf("comm slots = %d, want 11\n%s", res.CommSlots, rec.Render())
	}
	if res.ComputeSlots != 6 {
		t.Fatalf("compute slots = %d, want 6\n%s", res.ComputeSlots, rec.Render())
	}
	if res.Restarts != 0 || res.Reconfigs != 0 {
		t.Fatalf("unexpected restarts/reconfigs: %+v", res)
	}

	// Spot-check recorded activities against the hand schedule.
	wantActs := map[int64][5]trace.Activity{
		0:  {trace.NotEnrolled, trace.Program, trace.Program, trace.Idle, trace.NotEnrolled},
		2:  {trace.NotEnrolled, trace.Data, trace.Idle, trace.Program, trace.NotEnrolled},
		4:  {trace.NotEnrolled, trace.Idle, trace.Data, trace.Data, trace.NotEnrolled},
		5:  {trace.NotEnrolled, trace.Idle, trace.Data, trace.Idle, trace.NotEnrolled},
		6:  {trace.NotEnrolled, trace.Compute, trace.Compute, trace.Compute, trace.NotEnrolled},
		9:  {trace.NotEnrolled, trace.Idle, trace.Idle, trace.Idle, trace.NotEnrolled},
		14: {trace.NotEnrolled, trace.Compute, trace.Compute, trace.Compute, trace.NotEnrolled},
	}
	for slot, want := range wantActs {
		got := rec.At(slot).Activities
		for q := range want {
			if got[q] != want[q] {
				t.Fatalf("slot %d proc %d activity = %v, want %v\n%s",
					slot, q+1, got[q], want[q], rec.Render())
			}
		}
	}

	// The render should carry the completion event.
	if out := rec.Render(); !strings.Contains(out, "iteration 1 complete") {
		t.Fatalf("render missing completion event:\n%s", out)
	}
}

// TestFigure1DownRestart injects a DOWN at the point the paper discusses
// ("if a processor had become DOWN, say, at time 14, all the computation
// would have been lost"): P3 goes DOWN after 3 compute slots. The
// iteration must restart from scratch — P3 re-downloads program and data,
// P2/P4 keep program and data — and still complete.
func TestFigure1DownRestart(t *testing.T) {
	pl, application, asg := figure1Platform()
	// Same prefix as the main scenario through slot 8 (3 compute slots
	// done), then P3 DOWN at slot 9, back UP at slot 10 onward.
	script, err := ParseScript([]string{
		"dddddddddddddddddddddddd",
		"uuuuuuuuuuuuuuuuuuuuuuuu",
		"uuuuuuuuuduuuuuuuuuuuuuu",
		"uuuuuuuuuuuuuuuuuuuuuuuu",
		"dddddddddddddddddddddddd",
	})
	if err != nil {
		t.Fatal(err)
	}
	rec := &trace.Recorder{}
	res, err := Run(Config{
		Platform: pl,
		App:      application,
		Custom:   &fixedHeuristic{asg: asg},
		Provider: &ScriptProvider{Script: script},
		Recorder: rec,
		Cap:      100,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Hand computation: with all workers UP the processor-order master
	// serves P2 and P3 first, so P4 only starts at slot 4 and the
	// communication phase spans slots 0-6 (11 units, slots 4-6 use one
	// channel). Compute runs slots 7-8 (2 of 6 slots). Slot 9: P3 DOWN ->
	// restart; P3 lost program+data, P2/P4 keep theirs. The fixed
	// heuristic re-enrolls at slot 10 (P3 UP again); P3 needs 2+2 = 4
	// comm slots (10-13), then 6 fresh compute slots: 14-19. Makespan 20.
	if res.Failed || res.Completed != 1 {
		t.Fatalf("result: %+v\n%s", res, rec.Render())
	}
	if res.Restarts != 1 {
		t.Fatalf("restarts = %d, want 1\n%s", res.Restarts, rec.Render())
	}
	if res.Makespan != 20 {
		t.Fatalf("makespan = %d, want 20\n%s", res.Makespan, rec.Render())
	}
	if res.CommSlots != 11+4 {
		t.Fatalf("comm slots = %d, want 15\n%s", res.CommSlots, rec.Render())
	}
	if res.ComputeSlots != 2+6 {
		t.Fatalf("compute slots = %d, want 8\n%s", res.ComputeSlots, rec.Render())
	}
}
