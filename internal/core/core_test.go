package core

import (
	"testing"

	"tightsched/internal/app"
	"tightsched/internal/markov"
	"tightsched/internal/platform"
	"tightsched/internal/sched"
	"tightsched/internal/trace"
)

func TestPaperScenarioShape(t *testing.T) {
	sc := PaperScenario(5, 10, 3, 42)
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	if sc.Platform.Size() != 20 || sc.Platform.Ncom != 10 {
		t.Fatalf("platform: %d procs, ncom %d", sc.Platform.Size(), sc.Platform.Ncom)
	}
	if sc.App.Tasks != 5 || sc.App.Tprog != 15 || sc.App.Tdata != 3 || sc.App.Iterations != 10 {
		t.Fatalf("application: %+v", sc.App)
	}
}

func TestScenarioValidate(t *testing.T) {
	if (Scenario{}).Validate() == nil {
		t.Fatal("empty scenario accepted")
	}
	sc := PaperScenario(5, 10, 1, 1)
	sc.App.Tasks = 0
	if sc.Validate() == nil {
		t.Fatal("invalid app accepted")
	}
	tiny := Scenario{
		Platform: platform.Homogeneous(1, 1, 1, 1, markov.Uniform(0.9)),
		App:      app.Application{Tasks: 5, Iterations: 1},
	}
	if tiny.Validate() == nil {
		t.Fatal("under-capacity scenario accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	sc := PaperScenario(3, 10, 1, 7)
	rec := &trace.Recorder{}
	res, err := Run(sc, "Y-IE", Options{Seed: 5, Cap: 100000, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed || res.Completed != 10 {
		t.Fatalf("run: %+v", res)
	}
	if rec.Len() == 0 || int64(rec.Len()) != res.Makespan {
		t.Fatalf("trace length %d vs makespan %d", rec.Len(), res.Makespan)
	}
}

func TestRunRejectsInvalid(t *testing.T) {
	if _, err := Run(Scenario{}, "IE", Options{}); err == nil {
		t.Fatal("invalid scenario accepted")
	}
	sc := PaperScenario(3, 10, 1, 7)
	if _, err := Run(sc, "NOPE", Options{}); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
}

func TestHeuristicsList(t *testing.T) {
	if len(Heuristics()) != 17 {
		t.Fatalf("got %d heuristics", len(Heuristics()))
	}
}

func TestCompare(t *testing.T) {
	sc := PaperScenario(3, 10, 1, 9)
	sums, err := Compare(sc, []string{"IE", "RANDOM"}, 3, 11, Options{Cap: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 || sums[0].Heuristic != "IE" || sums[1].Heuristic != "RANDOM" {
		t.Fatalf("summaries: %+v", sums)
	}
	for _, s := range sums {
		if s.Fails+s.Makespan.N != 3 {
			t.Fatalf("%s: fails %d + makespans %d != trials", s.Heuristic, s.Fails, s.Makespan.N)
		}
	}
	// Deterministic.
	again, err := Compare(sc, []string{"IE", "RANDOM"}, 3, 11, Options{Cap: 100000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range sums {
		if sums[i].Makespan.Mean != again[i].Makespan.Mean {
			t.Fatal("Compare not deterministic")
		}
	}
}

func TestCompareValidation(t *testing.T) {
	sc := PaperScenario(3, 10, 1, 9)
	if _, err := Compare(sc, nil, 0, 1, Options{}); err == nil {
		t.Fatal("0 trials accepted")
	}
	if _, err := Compare(Scenario{}, nil, 1, 1, Options{}); err == nil {
		t.Fatal("invalid scenario accepted")
	}
	if _, err := Compare(sc, []string{"NOPE"}, 1, 1, Options{Cap: 1000}); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
}

func TestCompareDefaultsToAllHeuristics(t *testing.T) {
	sc := PaperScenario(2, 20, 1, 13)
	sums, err := Compare(sc, nil, 1, 3, Options{Cap: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 17 {
		t.Fatalf("got %d summaries, want 17", len(sums))
	}
}

func TestEstimate(t *testing.T) {
	sc := PaperScenario(5, 10, 1, 21)
	est, err := Estimate(sc, []int{0, 1, 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if est.Pplus <= 0 || est.Pplus >= 1 {
		t.Fatalf("Pplus = %v", est.Pplus)
	}
	if est.SuccessProb <= 0 || est.SuccessProb > est.Pplus {
		t.Fatalf("SuccessProb = %v", est.SuccessProb)
	}
	if est.ExpectedDuration < 5 {
		t.Fatalf("ExpectedDuration = %v below workload", est.ExpectedDuration)
	}
}

func TestEstimateValidation(t *testing.T) {
	sc := PaperScenario(5, 10, 1, 21)
	cases := []struct {
		workers []int
		w       int
	}{
		{nil, 5},
		{[]int{0}, 0},
		{[]int{99}, 5},
		{[]int{-1}, 5},
	}
	for i, c := range cases {
		if _, err := Estimate(sc, c.workers, c.w); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
	if _, err := Estimate(Scenario{}, []int{0}, 1); err == nil {
		t.Fatal("invalid scenario accepted")
	}
}

func TestRunWithCustomHeuristic(t *testing.T) {
	sc := Scenario{
		Platform: platform.Homogeneous(3, 1, platform.UnboundedCapacity, 3, markov.AlwaysUp()),
		App:      app.Application{Tasks: 3, Tprog: 1, Tdata: 1, Iterations: 2},
	}
	custom := &everythingOnAll{}
	res, err := Run(sc, "", Options{Custom: custom, Cap: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed || res.Heuristic != "ALL" {
		t.Fatalf("custom run: %+v", res)
	}
}

// everythingOnAll enrolls every processor with one task.
type everythingOnAll struct{}

func (e *everythingOnAll) Name() string { return "ALL" }

func (e *everythingOnAll) Decide(v *sched.View) app.Assignment {
	if v.Current != nil {
		return v.Current
	}
	asg := make(app.Assignment, len(v.States))
	for q := range asg {
		if v.States[q] != markov.Up {
			return nil
		}
		asg[q] = 1
	}
	return asg
}
