// Package core is the high-level API of the tightsched library: it ties
// the platform model, the application model, the Section V analytic
// estimators, the Section VI heuristics and the discrete-event simulator
// into a few one-call entry points used by the command-line tools, the
// examples, and the public tightsched package.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"tightsched/internal/analytic"
	"tightsched/internal/app"
	"tightsched/internal/avail"
	"tightsched/internal/platform"
	"tightsched/internal/rng"
	"tightsched/internal/sched"
	"tightsched/internal/sim"
	"tightsched/internal/stats"
	"tightsched/internal/trace"
)

// Scenario bundles a platform and an application: everything that defines
// a scheduling problem except the availability realization.
type Scenario struct {
	Platform *platform.Platform
	App      app.Application
}

// Validate checks both halves of the scenario.
func (sc Scenario) Validate() error {
	if sc.Platform == nil {
		return fmt.Errorf("core: scenario has no platform")
	}
	if err := sc.Platform.Validate(); err != nil {
		return err
	}
	if err := sc.App.Validate(); err != nil {
		return err
	}
	if sc.Platform.TotalCapacity() < sc.App.Tasks {
		return fmt.Errorf("core: platform capacity below %d tasks", sc.App.Tasks)
	}
	return nil
}

// PaperScenario draws a random scenario with the Section VII.A parameters:
// p = 20 processors, self-loop probabilities uniform in [0.90, 0.99),
// w_q ~ U[wmin, 10·wmin], Tdata = wmin, Tprog = 5·wmin, 10 iterations.
func PaperScenario(m, ncom, wmin int, seed uint64) Scenario {
	pl := platform.GeneratePaper(platform.DefaultPaperConfig(wmin, ncom), rng.New(seed))
	return Scenario{
		Platform: pl,
		App: app.Application{
			Tasks:      m,
			Tprog:      5 * wmin,
			Tdata:      wmin,
			Iterations: 10,
		},
	}
}

// Heuristics returns the names of the paper's 17 heuristics.
func Heuristics() []string { return sched.Names() }

// Options tune a single simulation run.
type Options struct {
	// Seed drives the availability realization and randomized decisions.
	Seed uint64
	// Cap is the failure limit in slots (sim.DefaultCap when 0).
	Cap int64
	// InitialAllUp starts all processors UP instead of at stationarity.
	InitialAllUp bool
	// Model selects the ground-truth availability model, overriding the
	// platform's (the paper's Markov chains when both are nil). See
	// internal/avail for the first-class models.
	Model avail.Model
	// Recorder, when non-nil, captures a per-slot execution trace.
	Recorder *trace.Recorder
	// Custom heuristic to run instead of a named one.
	Custom sched.Heuristic
	// Analytic tunes the Section V evaluator (see analytic.Options): the
	// zero value memoizes set statistics canonically by membership;
	// Analytic.Spectral opts into the exact closed-form fast path, which
	// agrees with the series within the precision eps.
	Analytic analytic.Options
	// Advance selects the simulator's time-advance core: the event-leap
	// macro-step engine (the default), the reference slot-stepped loop, or
	// the lockstep batch core (a solo run is a batch of one; the mode pays
	// off in batched campaigns, see exp.Sweep.Advance). Results and traces
	// are byte-identical across all cores.
	Advance sim.TimeAdvance
	// MaxLeap caps one leap macro-step in slots (sim.DefaultMaxLeap when
	// 0), bounding worst-case cancellation latency.
	MaxLeap int64
}

// Run simulates the scenario under the named heuristic.
func Run(sc Scenario, heuristic string, opt Options) (sim.Result, error) {
	return RunContext(context.Background(), sc, heuristic, opt)
}

// RunContext is Run under a context, checked at every macro-step boundary
// of the simulation (see sim.RunContext; Options.MaxLeap bounds the
// latency).
func RunContext(ctx context.Context, sc Scenario, heuristic string, opt Options) (sim.Result, error) {
	if err := sc.Validate(); err != nil {
		return sim.Result{}, err
	}
	return sim.RunContext(ctx, sim.Config{
		Platform:     sc.Platform,
		App:          sc.App,
		Heuristic:    heuristic,
		Custom:       opt.Custom,
		Seed:         opt.Seed,
		Cap:          opt.Cap,
		InitialAllUp: opt.InitialAllUp,
		Model:        opt.Model,
		Recorder:     opt.Recorder,
		Analytic:     opt.Analytic,
		Advance:      opt.Advance,
		MaxLeap:      opt.MaxLeap,
	})
}

// HeuristicSummary aggregates one heuristic's results over trials.
type HeuristicSummary struct {
	Heuristic string
	// Fails counts trials that hit the cap.
	Fails int
	// Makespan summarizes the makespans of succeeding trials.
	Makespan stats.Summary
	// MeanRestarts and MeanReconfigs average over all trials.
	MeanRestarts  float64
	MeanReconfigs float64
}

// Compare runs several heuristics over the same set of availability
// realizations (one per trial seed) and summarizes each. Runs execute in
// parallel; results are deterministic.
func Compare(sc Scenario, heuristics []string, trials int, baseSeed uint64, opt Options) ([]HeuristicSummary, error) {
	return CompareContext(context.Background(), sc, heuristics, trials, baseSeed, opt)
}

// CompareContext is Compare under a context: cancellation is checked at
// every (heuristic, trial) instance boundary — a cancelled comparison
// starts no new runs — and inside each run at macro-step boundaries.
func CompareContext(ctx context.Context, sc Scenario, heuristics []string, trials int, baseSeed uint64, opt Options) ([]HeuristicSummary, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if trials <= 0 {
		return nil, fmt.Errorf("core: %d trials", trials)
	}
	if len(heuristics) == 0 {
		heuristics = Heuristics()
	}
	type job struct{ h, trial int }
	jobs := make([]job, 0, len(heuristics)*trials)
	for h := range heuristics {
		for tr := 0; tr < trials; tr++ {
			jobs = append(jobs, job{h, tr})
		}
	}
	results := make([]sim.Result, len(jobs))
	errs := make([]error, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			results[i], errs[i] = RunContext(ctx, sc, heuristics[j.h], Options{
				Seed:         rng.NewKeyed(baseSeed, uint64(j.trial)).Uint64(),
				Cap:          opt.Cap,
				InitialAllUp: opt.InitialAllUp,
				Model:        opt.Model,
				Analytic:     opt.Analytic,
				Advance:      opt.Advance,
				MaxLeap:      opt.MaxLeap,
			})
		}(i, j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	out := make([]HeuristicSummary, len(heuristics))
	for h, name := range heuristics {
		var makespans []float64
		fails := 0
		var restarts, reconfigs float64
		for tr := 0; tr < trials; tr++ {
			res := results[h*trials+tr]
			if res.Failed {
				fails++
			} else {
				makespans = append(makespans, float64(res.Makespan))
			}
			restarts += float64(res.Restarts)
			reconfigs += float64(res.Reconfigs)
		}
		out[h] = HeuristicSummary{
			Heuristic:     name,
			Fails:         fails,
			Makespan:      stats.Summarize(makespans),
			MeanRestarts:  restarts / float64(trials),
			MeanReconfigs: reconfigs / float64(trials),
		}
	}
	return out, nil
}

// SetEstimate exposes the Section V approximations for a worker set of a
// scenario: the probability P⁺ that the set is simultaneously UP again
// before a failure, the success probability and conditional expected
// duration of a W-slot coupled computation.
type SetEstimate struct {
	Pplus            float64
	SuccessProb      float64
	ExpectedDuration float64
}

// Estimate computes the Section V quantities for the given workers of the
// scenario's platform executing a workload of w coupled compute slots.
func Estimate(sc Scenario, workers []int, w int) (SetEstimate, error) {
	if err := sc.Validate(); err != nil {
		return SetEstimate{}, err
	}
	if len(workers) == 0 {
		return SetEstimate{}, fmt.Errorf("core: empty worker set")
	}
	for _, q := range workers {
		if q < 0 || q >= sc.Platform.Size() {
			return SetEstimate{}, fmt.Errorf("core: worker %d out of range", q)
		}
	}
	if w <= 0 {
		return SetEstimate{}, fmt.Errorf("core: workload %d", w)
	}
	pl := analytic.NewPlatform(sc.Platform.BelievedMatrices(), analytic.DefaultEps)
	st := pl.StatsOf(workers)
	return SetEstimate{
		Pplus:            st.Pplus,
		SuccessProb:      st.ProbSuccess(w),
		ExpectedDuration: st.ExpectedCompletion(w),
	}, nil
}
