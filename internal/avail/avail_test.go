package avail

import (
	"math"
	"testing"

	"tightsched/internal/markov"
	"tightsched/internal/rng"
)

func paperMatrices(p int, seed uint64) []markov.Matrix {
	stream := rng.New(seed)
	ms := make([]markov.Matrix, p)
	for i := range ms {
		ms[i] = markov.PerState(stream.Uniform(0.90, 0.99),
			stream.Uniform(0.90, 0.99), stream.Uniform(0.90, 0.99))
	}
	return ms
}

func collect(p StateProvider, procs, slots int) [][]markov.State {
	out := make([][]markov.State, slots)
	for t := range out {
		out[t] = make([]markov.State, procs)
		p.States(int64(t), out[t])
	}
	return out
}

func TestMarkovModelReproducible(t *testing.T) {
	ms := paperMatrices(4, 3)
	m := MarkovModel{}
	a := collect(m.Provider(ms, 9, false), 4, 200)
	b := collect(m.Provider(ms, 9, false), 4, 200)
	for tt := range a {
		for q := range a[tt] {
			if a[tt][q] != b[tt][q] {
				t.Fatalf("slot %d proc %d: %v != %v", tt, q, a[tt][q], b[tt][q])
			}
		}
	}
	c := collect(m.Provider(ms, 10, false), 4, 200)
	same := true
	for tt := range a {
		for q := range a[tt] {
			if a[tt][q] != c[tt][q] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical realizations")
	}
}

func TestMarkovModelAllUp(t *testing.T) {
	ms := paperMatrices(6, 1)
	states := make([]markov.State, 6)
	MarkovModel{}.Provider(ms, 5, true).States(0, states)
	for q, s := range states {
		if s != markov.Up {
			t.Fatalf("proc %d starts %v with allUp", q, s)
		}
	}
}

func TestMarkovModelBelievesExactly(t *testing.T) {
	ms := paperMatrices(3, 2)
	got := MarkovModel{}.EstimatorMatrices(ms)
	for q := range ms {
		if got[q] != ms[q] {
			t.Fatalf("proc %d: believed %v != nominal %v", q, got[q], ms[q])
		}
	}
}

func TestDeriveSemiMarkovJumpChain(t *testing.T) {
	m := markov.PerState(0.95, 0.92, 0.90)
	sm := DeriveSemiMarkov(m, [markov.NumStates]HoldingSpec{
		{Dist: DistWeibull, Shape: 0.7},
		{Dist: DistWeibull, Shape: 1},
		{Dist: DistLogNormal, Shape: 0.5},
	})
	for i := 0; i < markov.NumStates; i++ {
		out := 1 - m[i][i]
		for j := 0; j < markov.NumStates; j++ {
			want := 0.0
			if j != i {
				want = m[i][j] / out
			}
			if math.Abs(sm.Jump[i][j]-want) > 1e-12 {
				t.Fatalf("jump[%d][%d] = %v, want %v", i, j, sm.Jump[i][j], want)
			}
		}
	}
}

func TestDeriveSemiMarkovAbsorbingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for absorbing state")
		}
	}()
	DeriveSemiMarkov(markov.AlwaysUp(), [markov.NumStates]HoldingSpec{})
}

// TestGeometricDerivationMatchesChain checks the degeneracy property: a
// semi-Markov process derived with geometric holding times everywhere has
// the chain's one-step statistics, so the fitted believed matrix must be
// close to the nominal one.
func TestGeometricDerivationMatchesChain(t *testing.T) {
	ms := paperMatrices(1, 7)
	model := &SemiMarkovModel{
		Label: "geometric",
		Hold: [markov.NumStates]HoldingSpec{
			{Dist: DistGeometric}, {Dist: DistGeometric}, {Dist: DistGeometric},
		},
		CalibrationSlots: 200_000,
		Smoothing:        0.5,
	}
	fit := model.EstimatorMatrices(ms)
	for i := 0; i < markov.NumStates; i++ {
		for j := 0; j < markov.NumStates; j++ {
			if math.Abs(fit[0][i][j]-ms[0][i][j]) > 0.02 {
				t.Fatalf("fit[%d][%d] = %v, nominal %v", i, j, fit[0][i][j], ms[0][i][j])
			}
		}
	}
}

func TestHoldingSpecMeanMatching(t *testing.T) {
	stream := rng.New(11)
	for _, spec := range []HoldingSpec{
		{Dist: DistWeibull, Shape: 0.6},
		{Dist: DistWeibull, Shape: 2},
		{Dist: DistLogNormal, Shape: 0.5},
	} {
		const mean = 20.0
		h := spec.holdFor(mean)
		total := 0.0
		const n = 200_000
		for i := 0; i < n; i++ {
			total += float64(h.Sample(stream))
		}
		got := total / n
		// Discretization by ceiling shifts the mean up by up to ~0.5.
		if got < mean-1 || got > mean+2 {
			t.Fatalf("%+v: sample mean %v, want ~%v", spec, got, mean)
		}
	}
}

func TestSemiMarkovEstimatorMatricesMemoized(t *testing.T) {
	ms := paperMatrices(2, 5)
	model := NewSemiMarkov(0.6)
	model.CalibrationSlots = 2_000
	a := model.EstimatorMatrices(ms)
	b := model.EstimatorMatrices(ms)
	if &a[0] != &b[0] {
		t.Fatal("fit not memoized for identical platforms")
	}
	other := model.EstimatorMatrices(paperMatrices(2, 6))
	if a[0] == other[0] {
		t.Fatal("distinct platforms share a fit")
	}
}

func TestSemiMarkovProviderSeeded(t *testing.T) {
	ms := paperMatrices(3, 9)
	model := NewSemiMarkov(0.6)
	a := collect(model.Provider(ms, 4, false), 3, 300)
	b := collect(model.Provider(ms, 4, false), 3, 300)
	diff := false
	for tt := range a {
		for q := range a[tt] {
			if a[tt][q] != b[tt][q] {
				t.Fatalf("same seed diverged at slot %d proc %d", tt, q)
			}
		}
	}
	c := collect(model.Provider(ms, 5, false), 3, 300)
	for tt := range a {
		for q := range a[tt] {
			if a[tt][q] != c[tt][q] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical realizations")
	}
}

func TestTraceModelReplayAndFit(t *testing.T) {
	tm, err := NewTraceModel("lab", []string{
		"uuurrduuu",
		"uuuuuuuuu",
	})
	if err != nil {
		t.Fatal(err)
	}
	if tm.Name() != "lab" {
		t.Fatalf("name %q", tm.Name())
	}
	dst := make([]markov.State, 2)
	prov := tm.Provider(nil, 123, true) // seed and allUp are irrelevant
	prov.States(3, dst)
	if dst[0] != markov.Reclaimed || dst[1] != markov.Up {
		t.Fatalf("slot 3: %v", dst)
	}
	prov.States(100, dst) // beyond the script: last row repeats
	if dst[0] != markov.Up || dst[1] != markov.Up {
		t.Fatalf("slot 100: %v", dst)
	}
	fit := tm.EstimatorMatrices(nil)
	if len(fit) != 2 {
		t.Fatalf("%d fitted matrices", len(fit))
	}
	// Processor 1 never leaves UP; with smoothing its believed stay-UP
	// probability must dominate.
	if fit[1][markov.Up][markov.Up] < 0.8 {
		t.Fatalf("proc 1 believed stay-UP %v", fit[1][markov.Up][markov.Up])
	}
	if again := tm.EstimatorMatrices(nil); &again[0] != &fit[0] {
		t.Fatal("trace fit not memoized")
	}
}

func TestTraceModelSizeMismatchPanics(t *testing.T) {
	tm, err := NewTraceModel("", []string{"uu", "uu"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for platform size mismatch")
		}
	}()
	tm.Provider(paperMatrices(3, 1), 0, false)
}

func TestParseScriptErrors(t *testing.T) {
	if _, err := ParseScript(nil); err == nil {
		t.Fatal("empty script accepted")
	}
	if _, err := ParseScript([]string{"uu", "u"}); err == nil {
		t.Fatal("ragged script accepted")
	}
	if _, err := ParseScript([]string{"ux"}); err == nil {
		t.Fatal("unknown state accepted")
	}
}

func TestBuiltinRegistry(t *testing.T) {
	for _, name := range BuiltinNames() {
		m, err := Builtin(name)
		if err != nil {
			t.Fatal(err)
		}
		if m.Name() != name {
			t.Fatalf("Builtin(%q).Name() = %q", name, m.Name())
		}
	}
	if _, err := Builtin("nope"); err == nil {
		t.Fatal("unknown model accepted")
	}
}
