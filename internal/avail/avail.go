// Package avail is the pluggable availability-model subsystem: it decides
// how processor availability evolves slot by slot (the ground truth the
// simulator executes) and which Markov matrices the Section V estimators
// should believe about that evolution.
//
// The paper's model (Section III.B) assumes availability is a 3-state
// Markov chain, but its future-work section (VII.B) observes that real
// desktop-grid availability is not memoryless: production traces suggest
// semi-Markov processes with Weibull or Log-Normal holding times. This
// package makes that distinction a first-class seam with three
// implementations:
//
//   - MarkovModel — the paper's chains; believed matrices are exact.
//   - SemiMarkovModel — non-memoryless holding times; believed matrices
//     are fitted ("flawed") from calibration traces via markov.Fit.
//   - TraceModel — replay of a recorded/scripted availability log;
//     believed matrices are fitted from the log itself.
//
// Every layer above consumes models through the Model interface:
// platform.Platform carries one, sim.Config resolves it into a per-trial
// StateProvider, sched/analytic are built from its believed matrices, and
// exp.Sweep treats models as a campaign axis (see DESIGN.md).
package avail

import (
	"tightsched/internal/markov"
	"tightsched/internal/rng"
)

// StateProvider feeds the engine the availability state of every
// processor, slot by slot. The engine calls States with consecutive slot
// values starting at 0.
type StateProvider interface {
	States(slot int64, dst []markov.State)
}

// ProviderFunc adapts a function to the StateProvider interface.
type ProviderFunc func(slot int64, dst []markov.State)

// States implements StateProvider.
func (f ProviderFunc) States(slot int64, dst []markov.State) { f(slot, dst) }

// Model is a pluggable availability model. A model is platform-generic:
// the per-processor nominal Markov matrices of the concrete platform are
// passed to both methods, so one model value can serve every scenario of
// an experimental sweep.
//
// Implementations must be safe for concurrent use: the experiment harness
// calls Provider and EstimatorMatrices from many goroutines at once.
type Model interface {
	// Name identifies the model in experiment axes and result tables.
	Name() string
	// Provider returns the ground-truth availability process of one
	// trial, keyed by seed, for a platform whose nominal per-processor
	// matrices are base. Equal seeds must yield identical realizations.
	// When allUp is true the trial starts with every processor UP.
	Provider(base []markov.Matrix, seed uint64, allUp bool) StateProvider
	// EstimatorMatrices returns the per-processor Markov matrices the
	// Section V estimators should believe: exact for Markov models,
	// fitted ("flawed") for model-violating ones.
	EstimatorMatrices(base []markov.Matrix) []markov.Matrix
}

// MarkovModel is the paper's availability model: each processor follows
// its nominal 3-state Markov chain, and the believed matrices are exact.
// The zero value is ready to use.
type MarkovModel struct{}

// Name implements Model.
func (MarkovModel) Name() string { return "markov" }

// EstimatorMatrices implements Model: the chains are the ground truth.
func (MarkovModel) EstimatorMatrices(base []markov.Matrix) []markov.Matrix { return base }

// Provider implements Model. Each processor's chain is sampled
// independently, exactly as Section III.B prescribes; availability is
// independent of scheduling decisions, so two heuristics run with the
// same seed see the same realization. When allUp is false, initial states
// are drawn from each chain's stationary distribution (the platform is in
// steady state when the application arrives).
func (MarkovModel) Provider(base []markov.Matrix, seed uint64, allUp bool) StateProvider {
	initStream := rng.NewKeyed(seed, 0x1217)
	samplers := make([]*markov.Sampler, len(base))
	for q, m := range base {
		start := markov.Up
		if !allUp {
			pi := m.Stationary()
			start = markov.State(initStream.Categorical(pi[:]))
		}
		samplers[q] = markov.NewSampler(m, start, rng.NewKeyed(seed, 0x5107, uint64(q)))
	}
	return &chainProvider{samplers: samplers}
}

// chainProvider steps per-processor Markov samplers in lockstep.
type chainProvider struct {
	samplers []*markov.Sampler
}

// States implements StateProvider.
func (cp *chainProvider) States(slot int64, dst []markov.State) {
	for q, s := range cp.samplers {
		if slot == 0 {
			dst[q] = s.State()
		} else {
			dst[q] = s.Step()
		}
	}
}
