// Package avail is the pluggable availability-model subsystem: it decides
// how processor availability evolves slot by slot (the ground truth the
// simulator executes) and which Markov matrices the Section V estimators
// should believe about that evolution.
//
// The paper's model (Section III.B) assumes availability is a 3-state
// Markov chain, but its future-work section (VII.B) observes that real
// desktop-grid availability is not memoryless: production traces suggest
// semi-Markov processes with Weibull or Log-Normal holding times. This
// package makes that distinction a first-class seam with three
// implementations:
//
//   - MarkovModel — the paper's chains; believed matrices are exact.
//   - SemiMarkovModel — non-memoryless holding times; believed matrices
//     are fitted ("flawed") from calibration traces via markov.Fit.
//   - TraceModel — replay of a recorded/scripted availability log;
//     believed matrices are fitted from the log itself.
//
// Every layer above consumes models through the Model interface:
// platform.Platform carries one, sim.Config resolves it into a per-trial
// StateProvider, sched/analytic are built from its believed matrices, and
// exp.Sweep treats models as a campaign axis (see DESIGN.md).
package avail

import (
	"slices"

	"tightsched/internal/markov"
	"tightsched/internal/rng"
)

// StateProvider feeds the engine the availability state of every
// processor, slot by slot. The engine calls States with consecutive slot
// values starting at 0.
type StateProvider interface {
	States(slot int64, dst []markov.State)
}

// ProviderFunc adapts a function to the StateProvider interface.
type ProviderFunc func(slot int64, dst []markov.State)

// States implements StateProvider.
func (f ProviderFunc) States(slot int64, dst []markov.State) { f(slot, dst) }

// RunProvider is the optional StateProvider extension the event-leap
// engine consumes: instead of one vector per slot, it reports how long
// the whole state vector stays constant, so the engine can apply the
// intervening homogeneous slots in bulk. NextChange derives the companion
// "first slot at which anything changes" form from the same method.
//
// Implementations may consume their internal random streams exactly as a
// slot-by-slot States walk would (the Markov chain provider does, which
// is what keeps realizations — and golden tables — byte-identical across
// engines), or sample sojourn lengths directly (SojournMarkovModel).
type RunProvider interface {
	StateProvider
	// StatesRun fills dst with the state vector at slot from and returns
	// n in [1, max(1, limit)]: the vector is constant over the slots
	// from .. from+n-1, and either n == limit or the vector changes at
	// slot from+n. Successive calls must use non-decreasing from values.
	StatesRun(from int64, dst []markov.State, limit int64) int64
}

// NextChange returns the first slot after from at which p's state vector
// changes, capped at horizon: from+n for the n of StatesRun. scratch must
// have the platform's length; it receives the vector at from.
func NextChange(p RunProvider, from, horizon int64, scratch []markov.State) int64 {
	next := from + p.StatesRun(from, scratch, horizon-from)
	if next > horizon {
		next = horizon // degenerate horizons: StatesRun clamps its limit to 1
	}
	return next
}

// AsRunProvider returns a run-length view of p: p itself when it already
// implements RunProvider, otherwise a lookahead adapter that walks p slot
// by slot — consuming any internal randomness exactly as the slot engine
// would, so realizations stay byte-identical — while buffering the first
// differing vector. The adapter inherits StateProvider's sequential
// contract: it fetches consecutive slots starting at 0.
func AsRunProvider(p StateProvider) RunProvider {
	if rp, ok := p.(RunProvider); ok {
		return rp
	}
	return &lookahead{p: p}
}

// lookahead adapts any slot-by-slot provider to RunProvider by fetching
// ahead until the vector changes. cur holds the vector at slot next-1
// (the most recently fetched slot).
type lookahead struct {
	p    StateProvider
	next int64
	cur  []markov.State
	buf  []markov.State
}

// States implements StateProvider by delegation (for callers that mix the
// two views; the engine uses exactly one per run).
func (la *lookahead) States(slot int64, dst []markov.State) { la.p.States(slot, dst) }

// StatesRun implements RunProvider.
func (la *lookahead) StatesRun(from int64, dst []markov.State, limit int64) int64 {
	if limit < 1 {
		limit = 1
	}
	if la.cur == nil {
		la.cur = make([]markov.State, len(dst))
		la.buf = make([]markov.State, len(dst))
	}
	// Catch up to from, fetching each slot exactly once. When the
	// previous call ended at a change, cur already holds slot from.
	for la.next <= from {
		la.p.States(la.next, la.cur)
		la.next++
	}
	copy(dst, la.cur)
	n := int64(1)
	for n < limit {
		la.p.States(la.next, la.buf)
		la.next++
		if !StatesEqual(la.buf, la.cur) {
			la.cur, la.buf = la.buf, la.cur
			return n
		}
		n++
	}
	return n
}

// StatesEqual reports whether two state vectors are identical.
func StatesEqual(a, b []markov.State) bool { return slices.Equal(a, b) }

// Model is a pluggable availability model. A model is platform-generic:
// the per-processor nominal Markov matrices of the concrete platform are
// passed to both methods, so one model value can serve every scenario of
// an experimental sweep.
//
// Implementations must be safe for concurrent use: the experiment harness
// calls Provider and EstimatorMatrices from many goroutines at once.
type Model interface {
	// Name identifies the model in experiment axes and result tables.
	Name() string
	// Provider returns the ground-truth availability process of one
	// trial, keyed by seed, for a platform whose nominal per-processor
	// matrices are base. Equal seeds must yield identical realizations.
	// When allUp is true the trial starts with every processor UP.
	Provider(base []markov.Matrix, seed uint64, allUp bool) StateProvider
	// EstimatorMatrices returns the per-processor Markov matrices the
	// Section V estimators should believe: exact for Markov models,
	// fitted ("flawed") for model-violating ones.
	EstimatorMatrices(base []markov.Matrix) []markov.Matrix
}

// MarkovModel is the paper's availability model: each processor follows
// its nominal 3-state Markov chain, and the believed matrices are exact.
// The zero value is ready to use.
type MarkovModel struct{}

// Name implements Model.
func (MarkovModel) Name() string { return "markov" }

// EstimatorMatrices implements Model: the chains are the ground truth.
func (MarkovModel) EstimatorMatrices(base []markov.Matrix) []markov.Matrix { return base }

// Provider implements Model. Each processor's chain is sampled
// independently, exactly as Section III.B prescribes; availability is
// independent of scheduling decisions, so two heuristics run with the
// same seed see the same realization. When allUp is false, initial states
// are drawn from each chain's stationary distribution (the platform is in
// steady state when the application arrives).
func (MarkovModel) Provider(base []markov.Matrix, seed uint64, allUp bool) StateProvider {
	initStream := rng.NewKeyed(seed, 0x1217)
	samplers := make([]*markov.Sampler, len(base))
	for q, m := range base {
		start := markov.Up
		if !allUp {
			pi := m.Stationary()
			start = markov.State(initStream.Categorical(pi[:]))
		}
		samplers[q] = markov.NewSampler(m, start, rng.NewKeyed(seed, 0x5107, uint64(q)))
	}
	return &chainProvider{samplers: samplers}
}

// chainProvider steps per-processor Markov samplers in lockstep.
type chainProvider struct {
	samplers []*markov.Sampler
}

// States implements StateProvider.
func (cp *chainProvider) States(slot int64, dst []markov.State) {
	for q, s := range cp.samplers {
		if slot == 0 {
			dst[q] = s.State()
		} else {
			dst[q] = s.Step()
		}
	}
}
