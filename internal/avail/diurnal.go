package avail

import (
	"fmt"
	"sync"

	"tightsched/internal/markov"
	"tightsched/internal/rng"
)

// Defaults for the diurnal model (NewDiurnal).
const (
	// DefaultDiurnalPeriod is one simulated day in slots.
	DefaultDiurnalPeriod = 2_000
	// DefaultDayFraction is the portion of each period spent in the
	// volatile day phase.
	DefaultDayFraction = 0.5
	// DefaultDayChurn / DefaultNightChurn scale the state-leaving
	// probabilities during day and night.
	DefaultDayChurn   = 2.5
	DefaultNightChurn = 0.4
)

// DiurnalModel is time-of-day-correlated ground truth: desktop-grid
// hosts churn when their owners are at the keyboard and settle at night,
// and they all share the clock — availability is correlated ACROSS
// processors, which the per-processor-independent Markov and semi-Markov
// models cannot express. Each processor alternates between two chains
// derived from its nominal matrix: a "day" chain whose state-leaving
// probabilities are scaled up by DayChurn and a "night" chain scaled
// down by NightChurn, switching on a shared period. The believed
// matrices are fitted from calibration traces of the true time-varying
// process via markov.Fit, exactly the way SemiMarkovModel's are — one
// time-homogeneous "flawed" chain per processor.
//
// Use by pointer: the fitted believed matrices are memoized internally.
type DiurnalModel struct {
	// Label names the model in experiment output ("diurnal" if empty).
	Label string
	// Period is one simulated day in slots (DefaultDiurnalPeriod when 0).
	Period int64
	// DayFraction is the day phase's share of the period, in (0, 1)
	// (DefaultDayFraction when 0).
	DayFraction float64
	// DayChurn and NightChurn scale each matrix's state-leaving
	// probabilities during the respective phase (defaults when 0).
	// Values > 1 increase churn; the scaled mass is capped below 1.
	DayChurn, NightChurn float64
	// CalibrationSlots is the per-processor calibration-trace length for
	// fitting believed matrices (DefaultCalibrationSlots when 0).
	CalibrationSlots int
	// Smoothing is markov.Fit's additive smoothing (DefaultSmoothing
	// when 0).
	Smoothing float64
	// CalibrationSeed decorrelates calibration traces from trial seeds.
	CalibrationSeed uint64

	mu  sync.Mutex
	fit map[uint64]*fitEntry
}

// NewDiurnal returns the standard diurnal model.
func NewDiurnal() *DiurnalModel { return &DiurnalModel{} }

// Name implements Model.
func (d *DiurnalModel) Name() string {
	if d.Label != "" {
		return d.Label
	}
	return "diurnal"
}

func (d *DiurnalModel) params() (period int64, daySlots int64, dayChurn, nightChurn float64) {
	period = d.Period
	if period <= 0 {
		period = DefaultDiurnalPeriod
	}
	frac := d.DayFraction
	if frac <= 0 {
		frac = DefaultDayFraction
	}
	if frac >= 1 {
		panic(fmt.Sprintf("avail: diurnal day fraction %v, want (0, 1)", frac))
	}
	daySlots = int64(frac * float64(period))
	if daySlots < 1 {
		daySlots = 1
	}
	dayChurn = d.DayChurn
	if dayChurn == 0 {
		dayChurn = DefaultDayChurn
	}
	nightChurn = d.NightChurn
	if nightChurn == 0 {
		nightChurn = DefaultNightChurn
	}
	if dayChurn < 0 || nightChurn < 0 {
		panic(fmt.Sprintf("avail: diurnal churn (%v, %v), want non-negative", dayChurn, nightChurn))
	}
	return period, daySlots, dayChurn, nightChurn
}

// scaleChurn scales every state-leaving probability of m by churn,
// renormalizing the self-loop and capping total leaving mass at 0.999 so
// the result stays a valid stochastic matrix.
func scaleChurn(m markov.Matrix, churn float64) markov.Matrix {
	const maxOut = 0.999
	var out markov.Matrix
	for i := 0; i < markov.NumStates; i++ {
		leave := 1 - m[i][i]
		scaled := leave * churn
		if scaled > maxOut {
			scaled = maxOut
		}
		factor := 0.0
		if leave > 0 {
			factor = scaled / leave
		}
		rowSum := 0.0
		for j := 0; j < markov.NumStates; j++ {
			if j != i {
				out[i][j] = m[i][j] * factor
				rowSum += out[i][j]
			}
		}
		out[i][i] = 1 - rowSum
	}
	if err := out.Validate(); err != nil {
		panic(err) // unreachable: rows renormalize by construction
	}
	return out
}

// diurnalProvider steps each processor with the phase's chain. The
// phase clock is shared: every processor sees day and night together,
// which is what correlates the realization across the platform.
type diurnalProvider struct {
	day, night []markov.Matrix
	streams    []*rng.Stream
	states     []markov.State
	slot       int64
	period     int64
	daySlots   int64
}

// States implements StateProvider for consecutive slots starting at 0.
// The transition out of slot s uses slot s's phase.
func (dp *diurnalProvider) States(slot int64, dst []markov.State) {
	for ; dp.slot < slot; dp.slot++ {
		ms := dp.night
		if dp.slot%dp.period < dp.daySlots {
			ms = dp.day
		}
		for q := range dp.states {
			dp.states[q] = ms[q].Step(dp.states[q], dp.streams[q].Float64())
		}
	}
	copy(dst, dp.states)
}

// Provider implements Model. The initial states are drawn from each
// nominal chain's stationary distribution unless allUp.
func (d *DiurnalModel) Provider(base []markov.Matrix, seed uint64, allUp bool) StateProvider {
	period, daySlots, dayChurn, nightChurn := d.params()
	dp := &diurnalProvider{
		day:      make([]markov.Matrix, len(base)),
		night:    make([]markov.Matrix, len(base)),
		streams:  make([]*rng.Stream, len(base)),
		states:   make([]markov.State, len(base)),
		period:   period,
		daySlots: daySlots,
	}
	init := rng.NewKeyed(seed, 0xd117)
	for q, m := range base {
		dp.day[q] = scaleChurn(m, dayChurn)
		dp.night[q] = scaleChurn(m, nightChurn)
		dp.streams[q] = rng.NewKeyed(seed, 0xd1a1, uint64(q))
		if allUp {
			dp.states[q] = markov.Up
		} else {
			dp.states[q] = drawStationary(m, init.Float64())
		}
	}
	return dp
}

// drawStationary samples a state from m's stationary distribution.
func drawStationary(m markov.Matrix, u float64) markov.State {
	pi := m.Stationary()
	acc := 0.0
	for s := 0; s < markov.NumStates; s++ {
		acc += pi[s]
		if u < acc {
			return markov.State(s)
		}
	}
	return markov.State(markov.NumStates - 1)
}

// EstimatorMatrices implements Model: per processor, a calibration trace
// of the true diurnal process (several full periods long) is recorded
// and one time-homogeneous Markov matrix fitted from its one-step
// transition counts — the best chain a Section V estimator that cannot
// see the clock could believe. Deterministic (keyed by CalibrationSeed)
// and memoized per platform.
func (d *DiurnalModel) EstimatorMatrices(base []markov.Matrix) []markov.Matrix {
	key := hashMatrices(base)
	d.mu.Lock()
	if d.fit == nil {
		d.fit = make(map[uint64]*fitEntry)
	}
	e := d.fit[key]
	if e == nil {
		e = &fitEntry{}
		d.fit[key] = e
	}
	d.mu.Unlock()
	e.once.Do(func() { e.ms = d.calibrate(base) })
	return e.ms
}

func (d *DiurnalModel) calibrate(base []markov.Matrix) []markov.Matrix {
	period, daySlots, dayChurn, nightChurn := d.params()
	slots := d.CalibrationSlots
	if slots == 0 {
		slots = DefaultCalibrationSlots
	}
	// At least four full periods, so the fit sees both phases even when
	// the period is long relative to the default trace.
	if min := int(4 * period); slots < min {
		slots = min
	}
	smoothing := d.Smoothing
	if smoothing == 0 {
		smoothing = DefaultSmoothing
	}
	ms := make([]markov.Matrix, len(base))
	for q, m := range base {
		day, night := scaleChurn(m, dayChurn), scaleChurn(m, nightChurn)
		stream := rng.NewKeyed(d.CalibrationSeed, 0xca1d, uint64(q))
		state := markov.Up
		tr := make([]markov.State, slots)
		for i := range tr {
			phase := night
			if int64(i)%period < daySlots {
				phase = day
			}
			state = phase.Step(state, stream.Float64())
			tr[i] = state
		}
		fitted, err := markov.Fit(tr, smoothing)
		if err != nil {
			panic(err) // unreachable: the trace is non-empty and valid
		}
		ms[q] = fitted
	}
	return ms
}

func init() {
	MustRegister("diurnal", func() Model { return NewDiurnal() })
}
