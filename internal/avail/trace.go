package avail

import (
	"fmt"
	"sync"

	"tightsched/internal/markov"
)

// ScriptProvider replays a fixed availability script: Script[t][q] is the
// state of processor q at slot t. Slots beyond the script reuse its last
// row. It implements StateProvider and is exported for tests, examples
// and replaying recorded traces.
type ScriptProvider struct {
	Script [][]markov.State
}

// States implements StateProvider.
func (sp *ScriptProvider) States(slot int64, dst []markov.State) {
	if len(sp.Script) == 0 {
		panic("avail: empty script")
	}
	row := sp.Script[len(sp.Script)-1]
	if slot < int64(len(sp.Script)) {
		row = sp.Script[slot]
	}
	if len(row) != len(dst) {
		panic(fmt.Sprintf("avail: script row has %d states, platform has %d", len(row), len(dst)))
	}
	copy(dst, row)
}

// StatesRun implements RunProvider natively: rows are compared in place,
// and once the script is exhausted the repeated last row yields the whole
// remaining limit in one run — a cap-bound run over a finished script
// costs O(cap / limit) macro-steps instead of O(cap) row copies.
func (sp *ScriptProvider) StatesRun(from int64, dst []markov.State, limit int64) int64 {
	sp.States(from, dst)
	if limit < 1 {
		return 1
	}
	last := int64(len(sp.Script)) - 1
	if from >= last {
		return limit // the last row repeats forever
	}
	n := int64(1)
	for n < limit {
		idx := from + n
		if !StatesEqual(sp.Script[idx], dst) {
			return n
		}
		if idx == last {
			return limit // reached the repeating tail without a change
		}
		n++
	}
	return n
}

// ParseScript converts a compact textual availability script into rows:
// one string per processor, one character per slot, 'u' = UP,
// 'r' = RECLAIMED, 'd' = DOWN. All strings must have equal length.
func ParseScript(perProc []string) ([][]markov.State, error) {
	if len(perProc) == 0 {
		return nil, fmt.Errorf("avail: empty script")
	}
	n := len(perProc[0])
	rows := make([][]markov.State, n)
	for t := range rows {
		rows[t] = make([]markov.State, len(perProc))
	}
	for q, s := range perProc {
		if len(s) != n {
			return nil, fmt.Errorf("avail: processor %d script has length %d, want %d", q, len(s), n)
		}
		for t := 0; t < n; t++ {
			switch s[t] {
			case 'u', 'U':
				rows[t][q] = markov.Up
			case 'r', 'R':
				rows[t][q] = markov.Reclaimed
			case 'd', 'D':
				rows[t][q] = markov.Down
			default:
				return nil, fmt.Errorf("avail: processor %d slot %d: unknown state %q", q, t, s[t])
			}
		}
	}
	return rows, nil
}

// TraceModel replays a recorded (or scripted) availability log as ground
// truth. Seeds have no effect — a replay is a replay; every trial sees
// the same realization — and the believed matrices are fitted from the
// log itself, exactly the "flawed Markov model based on real-world
// availability traces" of Section VII.B.
//
// Because trials are identical, sweeping a TraceModel with Trials > 1
// only duplicates instances: per-trial statistics (stdv, %wins sample
// counts) then overstate the number of independent observations. Use
// Trials = 1 for trace campaigns.
//
// Use by pointer: the fitted believed matrices are memoized internally.
type TraceModel struct {
	// Label names the model in experiment output ("trace" if empty).
	Label string
	// Script[t][q] is the state of processor q at slot t; slots beyond
	// the script reuse its last row.
	Script [][]markov.State
	// Smoothing is markov.Fit's additive smoothing (DefaultSmoothing
	// when 0).
	Smoothing float64

	once sync.Once
	fit  []markov.Matrix
	err  error
}

// NewTraceModel parses a compact textual script (see ParseScript) into a
// replay model.
func NewTraceModel(label string, perProc []string) (*TraceModel, error) {
	script, err := ParseScript(perProc)
	if err != nil {
		return nil, err
	}
	return &TraceModel{Label: label, Script: script}, nil
}

// Name implements Model.
func (tm *TraceModel) Name() string {
	if tm.Label != "" {
		return tm.Label
	}
	return "trace"
}

// procCount returns the number of processors the script covers.
func (tm *TraceModel) procCount() int {
	if len(tm.Script) == 0 {
		return 0
	}
	return len(tm.Script[0])
}

// Provider implements Model. The seed and allUp arguments are ignored:
// the script is the realization.
func (tm *TraceModel) Provider(base []markov.Matrix, seed uint64, allUp bool) StateProvider {
	if base != nil && len(base) != tm.procCount() {
		panic(fmt.Sprintf("avail: trace model %s covers %d processors, platform has %d",
			tm.Name(), tm.procCount(), len(base)))
	}
	return &ScriptProvider{Script: tm.Script}
}

// EstimatorMatrices implements Model: one matrix per processor, fitted
// from that processor's column of the script. The script must be at
// least two slots long for the fit to exist.
func (tm *TraceModel) EstimatorMatrices(base []markov.Matrix) []markov.Matrix {
	if base != nil && len(base) != tm.procCount() {
		panic(fmt.Sprintf("avail: trace model %s covers %d processors, platform has %d",
			tm.Name(), tm.procCount(), len(base)))
	}
	tm.once.Do(func() {
		smoothing := tm.Smoothing
		if smoothing == 0 {
			smoothing = DefaultSmoothing
		}
		p := tm.procCount()
		tm.fit = make([]markov.Matrix, p)
		for q := 0; q < p; q++ {
			column := make([]markov.State, len(tm.Script))
			for t, row := range tm.Script {
				column[t] = row[q]
			}
			m, err := markov.Fit(column, smoothing)
			if err != nil {
				tm.err = fmt.Errorf("avail: trace model %s: processor %d: %w", tm.Name(), q, err)
				return
			}
			tm.fit[q] = m
		}
	})
	if tm.err != nil {
		panic(tm.err)
	}
	return tm.fit
}
