package avail

import (
	"math"

	"tightsched/internal/markov"
	"tightsched/internal/rng"
)

// SojournMarkovModel is MarkovModel's run-length twin: each processor
// follows the same 3-state Markov chain, but the realization is sampled
// by sojourns — one geometric draw per state visit (the chain's exact
// holding-time law) plus one embedded-jump draw — instead of one uniform
// per slot. The process is distributionally identical to MarkovModel's
// and the believed matrices are exact, but equal seeds produce different
// realizations (the streams are consumed differently), so golden tables
// change; it is opt-in.
//
// Its provider implements RunProvider natively with O(1) work per state
// transition rather than O(1) per slot, which is what makes huge caps
// (10^6-slot idle stretches, week-long sojourns) affordable under the
// event-leap engine: simulation cost becomes proportional to the number
// of availability transitions and phase events, not to elapsed slots.
type SojournMarkovModel struct{}

// Name implements Model.
func (SojournMarkovModel) Name() string { return "markov-sojourn" }

// EstimatorMatrices implements Model: the chains are the ground truth.
func (SojournMarkovModel) EstimatorMatrices(base []markov.Matrix) []markov.Matrix { return base }

// Provider implements Model. Initial states are drawn from each chain's
// stationary distribution unless allUp; by memorylessness, drawing a full
// geometric sojourn for the initial state is exactly the stationary
// process's residual holding time.
func (SojournMarkovModel) Provider(base []markov.Matrix, seed uint64, allUp bool) StateProvider {
	initStream := rng.NewKeyed(seed, 0x5030)
	p := len(base)
	sp := &sojournProvider{
		ms:      base,
		streams: make([]*rng.Stream, p),
		state:   make([]markov.State, p),
		change:  make([]int64, p),
	}
	for q, m := range base {
		if err := m.Validate(); err != nil {
			panic(err)
		}
		start := markov.Up
		if !allUp {
			pi := m.Stationary()
			start = markov.State(initStream.Categorical(pi[:]))
		}
		sp.streams[q] = rng.NewKeyed(seed, 0x5031, uint64(q))
		sp.state[q] = start
		sp.change[q] = addSlots(0, sp.sojournLen(q, start))
	}
	return sp
}

// sojournProvider holds, per processor, the current state and the slot at
// which it next changes; the vector is valid for any slot before the
// earliest pending change.
type sojournProvider struct {
	ms      []markov.Matrix
	streams []*rng.Stream
	state   []markov.State
	change  []int64
}

// sojournLen draws how many slots processor q spends in state s per
// visit: geometric with the chain's exact holding-time law,
// P(L = k) = stay^(k-1)·(1-stay) for k >= 1, via inversion. An absorbing
// state returns math.MaxInt64 (it never leaves).
func (sp *sojournProvider) sojournLen(q int, s markov.State) int64 {
	stay := sp.ms[q][s][s]
	if stay >= 1 {
		return math.MaxInt64
	}
	if stay <= 0 {
		return 1
	}
	u := sp.streams[q].Float64() // < 1 keeps the log finite
	n := 1 + int64(math.Log(1-u)/math.Log(stay))
	if n < 1 {
		n = 1
	}
	return n
}

// addSlots is at+n saturating at math.MaxInt64.
func addSlots(at, n int64) int64 {
	if n >= math.MaxInt64-at {
		return math.MaxInt64
	}
	return at + n
}

// jumpAt moves processor q — whose sojourn expires at slot at — to its
// next state per the embedded jump chain (its matrix row conditioned on
// leaving) and schedules the new sojourn from at.
func (sp *sojournProvider) jumpAt(q int, at int64) {
	s := sp.state[q]
	row := sp.ms[q][s]
	out := 1 - row[s]
	u := sp.streams[q].Float64() * out
	acc := 0.0
	next := s
	for j := 0; j < markov.NumStates; j++ {
		if markov.State(j) == s {
			continue
		}
		acc += row[j]
		if u < acc {
			next = markov.State(j)
			break
		}
	}
	if next == s { // numerical slack: take the last non-self state
		for j := markov.NumStates - 1; j >= 0; j-- {
			if markov.State(j) != s && row[j] > 0 {
				next = markov.State(j)
				break
			}
		}
	}
	sp.state[q] = next
	sp.change[q] = addSlots(at, sp.sojournLen(q, next))
}

// advance moves the provider's clock to target, applying any transitions
// due on the way (each at its own expiry slot, so holding times chain
// exactly).
func (sp *sojournProvider) advance(target int64) {
	for q := range sp.state {
		for sp.change[q] <= target {
			sp.jumpAt(q, sp.change[q])
		}
	}
}

// States implements StateProvider.
func (sp *sojournProvider) States(slot int64, dst []markov.State) {
	sp.advance(slot)
	copy(dst, sp.state)
}

// StatesRun implements RunProvider: the run ends at the earliest pending
// transition, found in O(p) without sampling a single intervening slot.
func (sp *sojournProvider) StatesRun(from int64, dst []markov.State, limit int64) int64 {
	if limit < 1 {
		limit = 1
	}
	sp.advance(from)
	copy(dst, sp.state)
	n := limit
	for q := range sp.change {
		if d := sp.change[q] - from; d < n {
			n = d
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

func init() {
	MustRegister("markov-sojourn", func() Model { return SojournMarkovModel{} })
}
