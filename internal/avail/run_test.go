package avail

import (
	"math"
	"testing"

	"tightsched/internal/markov"
)

// walkStates collects n slots through the plain States interface.
func walkStates(p StateProvider, procs int, n int64) [][]markov.State {
	out := make([][]markov.State, n)
	for t := int64(0); t < n; t++ {
		row := make([]markov.State, procs)
		p.States(t, row)
		out[t] = row
	}
	return out
}

// walkRuns collects the same n slots through StatesRun with the given
// per-call limit.
func walkRuns(rp RunProvider, procs int, n, limit int64) [][]markov.State {
	out := make([][]markov.State, 0, n)
	row := make([]markov.State, procs)
	for t := int64(0); t < n; {
		lim := limit
		if rem := n - t; rem < lim {
			lim = rem
		}
		run := rp.StatesRun(t, row, lim)
		if run < 1 || run > lim {
			panic("run out of contract")
		}
		for i := int64(0); i < run; i++ {
			out = append(out, append([]markov.State(nil), row...))
		}
		t += run
	}
	return out
}

func assertSameRealization(t *testing.T, label string, a, b [][]markov.State) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: lengths %d vs %d", label, len(a), len(b))
	}
	for slot := range a {
		for q := range a[slot] {
			if a[slot][q] != b[slot][q] {
				t.Fatalf("%s: slot %d proc %d: %v vs %v", label, slot, q, a[slot][q], b[slot][q])
			}
		}
	}
}

// TestLookaheadAdapterMatchesStatesWalk: wrapping the Markov chain
// provider in AsRunProvider consumes the RNG stream exactly as the
// slot-by-slot walk — realizations are byte-identical — and the reported
// runs are maximal (each run's successor differs unless the limit cut it).
func TestLookaheadAdapterMatchesStatesWalk(t *testing.T) {
	ms := paperMatrices(6, 5)
	const n = 5_000
	walked := walkStates(MarkovModel{}.Provider(ms, 42, false), 6, n)
	for _, limit := range []int64{1, 3, 64, n} {
		base := MarkovModel{}.Provider(ms, 42, false)
		if _, native := base.(RunProvider); native {
			t.Fatal("test premise broken: chain provider is natively a RunProvider")
		}
		rp := AsRunProvider(base)
		ran := walkRuns(rp, 6, n, limit)
		assertSameRealization(t, "lookahead", walked, ran)
	}
	// Maximality: with an unbounded limit, consecutive runs must differ
	// at their boundary.
	rp := AsRunProvider(MarkovModel{}.Provider(ms, 42, false))
	row := make([]markov.State, 6)
	prev := make([]markov.State, 6)
	slot := int64(0)
	for slot < n-1 {
		run := rp.StatesRun(slot, row, n-slot)
		if slot+run >= n {
			break
		}
		copy(prev, row)
		next := make([]markov.State, 6)
		rp2run := rp.StatesRun(slot+run, next, 1)
		if rp2run != 1 {
			t.Fatalf("limit-1 StatesRun returned %d", rp2run)
		}
		if StatesEqual(prev, next) {
			t.Fatalf("run ending at slot %d is not maximal", slot+run)
		}
		slot += run
	}
}

// TestScriptProviderStatesRun: native runs match the per-slot walk and
// the repeating tail yields whole limits at once.
func TestScriptProviderStatesRun(t *testing.T) {
	rows, err := ParseScript([]string{"uuurrd", "uuuuuu", "ddddru"})
	if err != nil {
		t.Fatal(err)
	}
	sp := &ScriptProvider{Script: rows}
	const n = 40
	walked := walkStates(sp, 3, n)
	for _, limit := range []int64{1, 2, 5, n} {
		assertSameRealization(t, "script", walked, walkRuns(sp, 3, n, limit))
	}
	// Beyond the script the last row repeats: the whole limit comes back
	// in one run.
	dst := make([]markov.State, 3)
	if run := sp.StatesRun(10, dst, 1_000_000); run != 1_000_000 {
		t.Fatalf("tail run = %d, want the full limit", run)
	}
	// NextChange caps at the horizon.
	if next := NextChange(sp, 10, 500, dst); next != 500 {
		t.Fatalf("NextChange on the tail = %d, want horizon 500", next)
	}
	if next := NextChange(sp, 0, 500, dst); next != 3 {
		t.Fatalf("NextChange(0) = %d, want 3 (first change of the script)", next)
	}
}

// TestSojournProviderSelfConsistent: the sojourn provider's States walk
// and StatesRun view are the same realization, and runs are maximal.
func TestSojournProviderSelfConsistent(t *testing.T) {
	ms := paperMatrices(5, 7)
	const n = 20_000
	walked := walkStates(SojournMarkovModel{}.Provider(ms, 13, false), 5, n)
	for _, limit := range []int64{1, 17, n} {
		rp, ok := SojournMarkovModel{}.Provider(ms, 13, false).(RunProvider)
		if !ok {
			t.Fatal("sojourn provider is not a native RunProvider")
		}
		assertSameRealization(t, "sojourn", walked, walkRuns(rp, 5, n, limit))
	}
}

// TestSojournMatchesChainStatistics: the sojourn-sampled process is
// distributionally the Markov chain — long-run state occupancy must match
// the chain's stationary distribution within sampling noise.
func TestSojournMatchesChainStatistics(t *testing.T) {
	ms := paperMatrices(3, 11)
	const n = 200_000
	counts := make([][markov.NumStates]int64, 3)
	prov := SojournMarkovModel{}.Provider(ms, 99, false)
	row := make([]markov.State, 3)
	for slot := int64(0); slot < n; slot++ {
		prov.States(slot, row)
		for q, s := range row {
			counts[q][s]++
		}
	}
	for q, m := range ms {
		pi := m.Stationary()
		for s := 0; s < markov.NumStates; s++ {
			got := float64(counts[q][s]) / n
			if math.Abs(got-pi[s]) > 0.02 {
				t.Fatalf("proc %d state %v occupancy %.4f, stationary %.4f", q, markov.State(s), got, pi[s])
			}
		}
	}
}

// TestSojournModelBasics: exact believed matrices, registry resolution,
// allUp starts.
func TestSojournModelBasics(t *testing.T) {
	ms := paperMatrices(4, 3)
	model := SojournMarkovModel{}
	if model.Name() != "markov-sojourn" {
		t.Fatalf("name = %q", model.Name())
	}
	if got := model.EstimatorMatrices(ms); &got[0] != &ms[0] {
		t.Fatal("believed matrices must be the exact chains")
	}
	resolved, err := Builtin("markov-sojourn")
	if err != nil {
		t.Fatalf("registry: %v", err)
	}
	if resolved.Name() != "markov-sojourn" {
		t.Fatalf("registry resolves %q", resolved.Name())
	}
	row := make([]markov.State, 4)
	model.Provider(ms, 5, true).States(0, row)
	for q, s := range row {
		if s != markov.Up {
			t.Fatalf("allUp: proc %d starts %v", q, s)
		}
	}
}

// TestSojournAbsorbingState: an always-UP chain never transitions and
// yields whole limits in one run.
func TestSojournAbsorbingState(t *testing.T) {
	ms := []markov.Matrix{markov.AlwaysUp()}
	rp := SojournMarkovModel{}.Provider(ms, 1, true).(RunProvider)
	dst := make([]markov.State, 1)
	if run := rp.StatesRun(0, dst, 1_000_000); run != 1_000_000 || dst[0] != markov.Up {
		t.Fatalf("absorbing run = %d state %v", run, dst[0])
	}
}
