package avail

import (
	"testing"

	"tightsched/internal/markov"
)

func TestDiurnalRegistered(t *testing.T) {
	m, err := Builtin("diurnal")
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "diurnal" {
		t.Errorf("Name() = %q, want diurnal", m.Name())
	}
	if _, ok := m.(*DiurnalModel); !ok {
		t.Errorf("registry resolved %T, want *DiurnalModel", m)
	}
}

func TestDiurnalProviderSeeded(t *testing.T) {
	ms := paperMatrices(3, 9)
	model := NewDiurnal()
	a := collect(model.Provider(ms, 4, false), 3, 300)
	b := collect(model.Provider(ms, 4, false), 3, 300)
	for tt := range a {
		for q := range a[tt] {
			if a[tt][q] != b[tt][q] {
				t.Fatalf("same seed diverged at slot %d proc %d", tt, q)
			}
		}
	}
	diff := false
	c := collect(model.Provider(ms, 5, false), 3, 300)
	for tt := range a {
		for q := range a[tt] {
			if a[tt][q] != c[tt][q] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical realizations")
	}

	states := make([]markov.State, 3)
	model.Provider(ms, 4, true).States(0, states)
	for q, s := range states {
		if s != markov.Up {
			t.Fatalf("allUp start: proc %d begins %v", q, s)
		}
	}
}

// TestDiurnalPhasesDiffer: the defining property of the model — churn
// (state changes per slot) is visibly higher during the shared day
// phase than at night. Measured over many periods so the contrast is
// far from noise.
func TestDiurnalPhasesDiffer(t *testing.T) {
	const procs, periods = 4, 30
	model := &DiurnalModel{Period: 200, DayFraction: 0.5}
	ms := paperMatrices(procs, 3)
	states := collect(model.Provider(ms, 9, false), procs, 200*periods)
	var dayChanges, nightChanges int
	for tt := 1; tt < len(states); tt++ {
		day := int64(tt-1)%200 < 100 // the transition out of slot tt-1 uses its phase
		for q := range states[tt] {
			if states[tt][q] != states[tt-1][q] {
				if day {
					dayChanges++
				} else {
					nightChanges++
				}
			}
		}
	}
	if nightChanges == 0 {
		t.Fatal("no churn at night at all; matrices degenerate")
	}
	if dayChanges <= nightChanges {
		t.Fatalf("day churn %d not above night churn %d", dayChanges, nightChanges)
	}
}

func TestDiurnalEstimatorMatricesMemoized(t *testing.T) {
	ms := paperMatrices(2, 5)
	model := NewDiurnal()
	model.CalibrationSlots = 2_000
	a := model.EstimatorMatrices(ms)
	b := model.EstimatorMatrices(ms)
	if &a[0] != &b[0] {
		t.Fatal("fit not memoized for identical platforms")
	}
	other := model.EstimatorMatrices(paperMatrices(2, 6))
	if a[0] == other[0] {
		t.Fatal("distinct platforms share a fit")
	}
	for q, m := range a {
		if err := m.Validate(); err != nil {
			t.Fatalf("fitted matrix %d invalid: %v", q, err)
		}
	}
}

// TestScaleChurn: scaling preserves stochasticity and moves the
// state-leaving mass in the requested direction, capped below 1.
func TestScaleChurn(t *testing.T) {
	m := markov.PerState(0.95, 0.9, 0.92)
	up := scaleChurn(m, 2.5)
	down := scaleChurn(m, 0.4)
	for _, s := range []markov.Matrix{up, down} {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < markov.NumStates; i++ {
		leave := 1 - m[i][i]
		if got := 1 - up[i][i]; got <= leave {
			t.Errorf("state %d: day scaling left leaving mass %v <= nominal %v", i, got, leave)
		}
		if got := 1 - down[i][i]; got >= leave {
			t.Errorf("state %d: night scaling left leaving mass %v >= nominal %v", i, got, leave)
		}
	}
	// Extreme churn saturates rather than breaking the matrix.
	extreme := scaleChurn(m, 1e6)
	if err := extreme.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < markov.NumStates; i++ {
		if extreme[i][i] < 0.0009 {
			t.Errorf("state %d self-loop %v fell below the cap's complement", i, extreme[i][i])
		}
	}
}
