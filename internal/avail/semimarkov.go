package avail

import (
	"fmt"
	"math"
	"sync"

	"tightsched/internal/markov"
	"tightsched/internal/rng"
)

// Defaults for the calibration runs behind SemiMarkovModel's fitted
// ("flawed") believed matrices.
const (
	// DefaultCalibrationSlots is the per-processor calibration-trace
	// length used to fit believed matrices when the model does not set
	// CalibrationSlots.
	DefaultCalibrationSlots = 20_000
	// DefaultSmoothing is the additive smoothing used by markov.Fit when
	// the model does not set Smoothing.
	DefaultSmoothing = 0.5
)

// Dist selects a holding-time distribution family for a derived
// semi-Markov process.
type Dist int

const (
	// DistGeometric holds geometrically — the memoryless case; a derived
	// process with geometric holding times in every state is exactly the
	// nominal Markov chain (useful for degeneracy tests).
	DistGeometric Dist = iota
	// DistWeibull holds for Weibull-distributed durations. Shape < 1
	// gives the heavy-tailed availability intervals observed in desktop
	// grids.
	DistWeibull
	// DistLogNormal holds for Log-Normal durations.
	DistLogNormal
)

// HoldingSpec describes the holding-time distribution of one state in a
// derived semi-Markov process. The distribution's scale is not specified
// here: it is chosen per processor so the mean holding time matches the
// nominal Markov chain's (1/(1−P(x,x))), keeping the derived process
// comparable to the chain it violates.
type HoldingSpec struct {
	// Dist is the distribution family.
	Dist Dist
	// Shape is the Weibull shape (DistWeibull) or the log-normal sigma
	// (DistLogNormal); ignored for DistGeometric.
	Shape float64
}

// holdFor returns the holding-time distribution with the spec's shape and
// the given mean duration in slots.
func (h HoldingSpec) holdFor(mean float64) markov.HoldingTime {
	if mean < 1 {
		mean = 1
	}
	switch h.Dist {
	case DistGeometric:
		return markov.Geometric{Stay: 1 - 1/mean}
	case DistWeibull:
		if h.Shape <= 0 {
			panic(fmt.Sprintf("avail: weibull shape %v, want positive", h.Shape))
		}
		return markov.Weibull{Shape: h.Shape, Scale: mean / math.Gamma(1+1/h.Shape)}
	case DistLogNormal:
		if h.Shape < 0 {
			panic(fmt.Sprintf("avail: lognormal sigma %v, want non-negative", h.Shape))
		}
		return markov.LogNormal{Mu: math.Log(mean) - h.Shape*h.Shape/2, Sigma: h.Shape}
	default:
		panic(fmt.Sprintf("avail: unknown holding distribution %d", int(h.Dist)))
	}
}

// SemiMarkovModel is non-Markovian ground truth: each processor follows a
// 3-state semi-Markov process (Section VII.B's stated future work), while
// the believed matrices are fitted from calibration traces with
// markov.Fit — the "flawed Markov model" the paper proposes to build.
//
// Processes come from one of two sources:
//
//   - Procs, when non-nil, gives one explicit process per processor (the
//     model is then bound to platforms of exactly that size);
//   - otherwise each processor's process is derived from the platform's
//     nominal matrix: the jump chain is the matrix's embedded chain and
//     each state holds per Hold's distribution, scaled to the matrix's
//     mean holding time. Derived models are platform-generic, which is
//     what lets one model value sweep across random scenarios.
//
// Use by pointer: the fitted believed matrices are memoized internally.
type SemiMarkovModel struct {
	// Label names the model in experiment output ("semimarkov" if empty).
	Label string
	// Procs are explicit per-processor processes (optional; see above).
	Procs []*markov.SemiMarkov
	// Hold derives per-state holding times when Procs is nil.
	Hold [markov.NumStates]HoldingSpec
	// CalibrationSlots is the per-processor calibration-trace length for
	// fitting believed matrices (DefaultCalibrationSlots when 0).
	CalibrationSlots int
	// Smoothing is markov.Fit's additive smoothing (DefaultSmoothing
	// when 0).
	Smoothing float64
	// CalibrationSeed decorrelates calibration traces from trial seeds.
	CalibrationSeed uint64

	mu  sync.Mutex
	fit map[uint64]*fitEntry
}

// fitEntry memoizes one platform's fitted matrices. The per-entry Once
// lets distinct platforms calibrate concurrently while the model-wide
// mutex only guards the map itself.
type fitEntry struct {
	once sync.Once
	ms   []markov.Matrix
}

// NewSemiMarkov returns the standard heavy-tailed model: Weibull UP
// holding times with the given shape (shape < 1 means long UP periods
// tend to keep lasting, the regime that most violates memorylessness),
// near-exponential RECLAIMED periods, and Log-Normal DOWN periods.
func NewSemiMarkov(upShape float64) *SemiMarkovModel {
	return &SemiMarkovModel{
		Label: "semimarkov",
		Hold: [markov.NumStates]HoldingSpec{
			markov.Up:        {Dist: DistWeibull, Shape: upShape},
			markov.Reclaimed: {Dist: DistWeibull, Shape: 1},
			markov.Down:      {Dist: DistLogNormal, Shape: 0.5},
		},
	}
}

// Name implements Model.
func (sm *SemiMarkovModel) Name() string {
	if sm.Label != "" {
		return sm.Label
	}
	return "semimarkov"
}

// procsFor resolves the per-processor processes for a platform with the
// given nominal matrices.
func (sm *SemiMarkovModel) procsFor(base []markov.Matrix) []*markov.SemiMarkov {
	if sm.Procs != nil {
		if base != nil && len(base) != len(sm.Procs) {
			panic(fmt.Sprintf("avail: model %s has %d explicit processes, platform has %d processors",
				sm.Name(), len(sm.Procs), len(base)))
		}
		return sm.Procs
	}
	procs := make([]*markov.SemiMarkov, len(base))
	for q, m := range base {
		procs[q] = DeriveSemiMarkov(m, sm.Hold)
	}
	return procs
}

// DeriveSemiMarkov builds the semi-Markov process whose jump chain is the
// matrix's embedded chain and whose state-holding times follow the given
// specs, scaled so each state's mean holding time matches the chain's
// 1/(1−P(x,x)). With geometric specs in every state the derived process
// is distributionally the chain itself. The matrix must have no absorbing
// state (every chain of the paper's scenarios qualifies).
func DeriveSemiMarkov(m markov.Matrix, hold [markov.NumStates]HoldingSpec) *markov.SemiMarkov {
	sm := &markov.SemiMarkov{}
	for i := 0; i < markov.NumStates; i++ {
		out := 1 - m[i][i]
		if out <= 0 {
			panic(fmt.Sprintf("avail: cannot derive a semi-Markov process from absorbing state %v of %v",
				markov.State(i), m))
		}
		for j := 0; j < markov.NumStates; j++ {
			if j != i {
				sm.Jump[i][j] = m[i][j] / out
			}
		}
		sm.Hold[i] = hold[i].holdFor(1 / out)
	}
	if err := sm.Validate(); err != nil {
		panic(err)
	}
	return sm
}

// Provider implements Model. Every trial starts all processors UP: a
// semi-Markov process has no cheap stationary draw, and the paper's
// experiments are insensitive to the initial transient. allUp is
// therefore accepted but has no additional effect.
func (sm *SemiMarkovModel) Provider(base []markov.Matrix, seed uint64, allUp bool) StateProvider {
	procs := sm.procsFor(base)
	samplers := make([]*markov.SemiMarkovSampler, len(procs))
	for q, p := range procs {
		samplers[q] = markov.NewSemiMarkovSampler(p, markov.Up, rng.NewKeyed(seed, 0x5e31, uint64(q)))
	}
	return &semiProvider{samplers: samplers}
}

// semiProvider steps per-processor semi-Markov samplers in lockstep.
type semiProvider struct {
	samplers []*markov.SemiMarkovSampler
}

// States implements StateProvider.
func (sp *semiProvider) States(slot int64, dst []markov.State) {
	for q, s := range sp.samplers {
		if slot == 0 {
			dst[q] = s.State()
		} else {
			dst[q] = s.Step()
		}
	}
}

// EstimatorMatrices implements Model: per processor, a calibration trace
// of the true process is recorded and a Markov matrix fitted from its
// one-step transition counts. The fit is deterministic (keyed by
// CalibrationSeed, not trial seeds) and memoized per platform, so a sweep
// pays for it once per scenario rather than once per simulation.
func (sm *SemiMarkovModel) EstimatorMatrices(base []markov.Matrix) []markov.Matrix {
	key := uint64(1)
	if sm.Procs != nil {
		// Surface an explicit-process size mismatch on every call, not
		// just the calibrating one.
		if base != nil && len(base) != len(sm.Procs) {
			panic(fmt.Sprintf("avail: model %s has %d explicit processes, platform has %d processors",
				sm.Name(), len(sm.Procs), len(base)))
		}
	} else {
		key = hashMatrices(base)
	}
	sm.mu.Lock()
	if sm.fit == nil {
		sm.fit = make(map[uint64]*fitEntry)
	}
	e := sm.fit[key]
	if e == nil {
		e = &fitEntry{}
		sm.fit[key] = e
	}
	sm.mu.Unlock()
	// Deriving the processes is itself linear work, so it stays inside
	// the once: a memoized hit is allocation-free.
	e.once.Do(func() { e.ms = sm.calibrate(sm.procsFor(base)) })
	return e.ms
}

// calibrate records one calibration trace per process and fits a Markov
// matrix from each.
func (sm *SemiMarkovModel) calibrate(procs []*markov.SemiMarkov) []markov.Matrix {
	slots := sm.CalibrationSlots
	if slots == 0 {
		slots = DefaultCalibrationSlots
	}
	smoothing := sm.Smoothing
	if smoothing == 0 {
		smoothing = DefaultSmoothing
	}
	ms := make([]markov.Matrix, len(procs))
	for q, p := range procs {
		sampler := markov.NewSemiMarkovSampler(p, markov.Up, rng.NewKeyed(sm.CalibrationSeed, 0xca11, uint64(q)))
		tr := make([]markov.State, slots)
		for i := range tr {
			tr[i] = sampler.Step()
		}
		m, err := markov.Fit(tr, smoothing)
		if err != nil {
			panic(err) // unreachable: the trace is non-empty and valid
		}
		ms[q] = m
	}
	return ms
}

// hashMatrices returns an FNV-1a hash of the matrices' float bits, the
// memoization key for per-platform fitted matrices.
func hashMatrices(ms []markov.Matrix) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= 1099511628211
			v >>= 8
		}
	}
	for _, m := range ms {
		for i := 0; i < markov.NumStates; i++ {
			for j := 0; j < markov.NumStates; j++ {
				mix(math.Float64bits(m[i][j]))
			}
		}
	}
	return h
}
