package avail

import (
	"fmt"
	"sort"
	"sync"

	"tightsched/internal/markov"
)

// This file is the open availability-model registry: the models resolvable
// by name — in command-line flags, journal headers and the façade — live
// behind one string-keyed table. The three built-ins self-register at
// package init; a Register call from outside this package makes a new
// ground-truth model selectable per run, per platform and per sweep axis,
// and lets journaled campaigns that used it resume headlessly.

// Factory returns a fresh model instance. Builtin calls it once per
// resolution, so stateful models (calibration memos) start clean for every
// caller that resolves the name.
type Factory func() Model

var registry = struct {
	sync.RWMutex
	factories map[string]Factory
}{factories: map[string]Factory{}}

// Register makes a model constructible by name through Builtin (and
// therefore through journal resume and the façade's ModelByName). The
// factory is invoked once immediately: its model's Name() must equal the
// registered name, so that experiment tables, journal specs and resolution
// agree on the label. Duplicate names — built-ins included — error.
func Register(name string, f Factory) error {
	if name == "" {
		return fmt.Errorf("avail: Register with empty model name")
	}
	if f == nil {
		return fmt.Errorf("avail: Register(%q) with nil factory", name)
	}
	m := f()
	if m == nil {
		return fmt.Errorf("avail: Register(%q) factory returned nil", name)
	}
	if got := m.Name(); got != name {
		return fmt.Errorf("avail: Register(%q) factory builds a model named %q", name, got)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.factories[name]; dup {
		return fmt.Errorf("avail: model %q already registered", name)
	}
	registry.factories[name] = f
	return nil
}

// MustRegister is Register that panics on error, for init-time
// registration of a package's own models.
func MustRegister(name string, f Factory) {
	if err := Register(name, f); err != nil {
		panic(err)
	}
}

// Names returns every registered model name, sorted. The slice is a fresh
// copy: callers may mutate it freely.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.factories))
	for name := range registry.factories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BuiltinNames returns the names accepted by Builtin.
//
// Deprecated: it is an alias for Names, which covers registered extras
// too; new code should call Names.
func BuiltinNames() []string { return Names() }

// Builtin returns a fresh registered model by name. Out of the box:
//
//	markov     — the paper's Markov chains (exact believed matrices)
//	semimarkov — heavy-tailed Weibull(0.6) UP holding times with fitted
//	             believed matrices (the Section VII.B future-work model)
//	lognormal  — Log-Normal holding times in every state (sigma 0.75)
//
// Use it to resolve command-line model selections; library callers can
// also construct and tune models directly, or Register their own.
func Builtin(name string) (Model, error) {
	registry.RLock()
	f, ok := registry.factories[name]
	registry.RUnlock()
	if !ok {
		return nil, fmt.Errorf("avail: unknown model %q (have %v)", name, Names())
	}
	return f(), nil
}

func init() {
	MustRegister("markov", func() Model { return MarkovModel{} })
	MustRegister("semimarkov", func() Model { return NewSemiMarkov(0.6) })
	MustRegister("lognormal", func() Model {
		return &SemiMarkovModel{
			Label: "lognormal",
			Hold: [markov.NumStates]HoldingSpec{
				{Dist: DistLogNormal, Shape: 0.75},
				{Dist: DistLogNormal, Shape: 0.75},
				{Dist: DistLogNormal, Shape: 0.75},
			},
		}
	})
}
