package avail

import (
	"fmt"

	"tightsched/internal/markov"
)

// BuiltinNames returns the names accepted by Builtin, in presentation
// order.
func BuiltinNames() []string {
	return []string{"markov", "semimarkov", "lognormal"}
}

// Builtin returns a fresh first-class model by name:
//
//	markov     — the paper's Markov chains (exact believed matrices)
//	semimarkov — heavy-tailed Weibull(0.6) UP holding times with fitted
//	             believed matrices (the Section VII.B future-work model)
//	lognormal  — Log-Normal holding times in every state (sigma 0.75)
//
// Use it to resolve command-line model selections; library callers can
// also construct and tune models directly.
func Builtin(name string) (Model, error) {
	switch name {
	case "markov":
		return MarkovModel{}, nil
	case "semimarkov":
		return NewSemiMarkov(0.6), nil
	case "lognormal":
		return &SemiMarkovModel{
			Label: "lognormal",
			Hold: [markov.NumStates]HoldingSpec{
				{Dist: DistLogNormal, Shape: 0.75},
				{Dist: DistLogNormal, Shape: 0.75},
				{Dist: DistLogNormal, Shape: 0.75},
			},
		}, nil
	default:
		return nil, fmt.Errorf("avail: unknown model %q (have %v)", name, BuiltinNames())
	}
}
