package serve

import (
	"encoding/json"
	"fmt"

	"tightsched"
)

// This file decodes the grid: block — the declarative form of an online
// multi-application campaign (Session.RunOnline), submitted to the same
// POST /v1/campaigns endpoint as offline sweeps. The block mirrors the
// grid journal header's field names, so a spec, its journal and its
// status report speak one format, exactly as the sweep block does:
//
//	version: 1
//	name: quick-grid
//	preset: quick              # optional: quick | full (defaults profile)
//	grid:                      # required block (mutually exclusive with sweep)
//	  trials: 2                # required without preset
//	  horizon: 20000           # required without preset (slots)
//	  appProcs: 4              # required without preset
//	  ncom: 6                  # required without preset
//	  m: 5                     # required without preset
//	  iterations: 5            # required without preset
//	  heuristic: IE            # default IE
//	  model: diurnal           # default diurnal
//	  seed: 20130522           # default 0
//	  tiers:                   # required without preset (JSON specs only:
//	    - {count: 4, speed: 1} #  lists of mappings are outside the YAML subset)
//	  arrivals:                # required without preset (JSON specs only)
//	    - {kind: poisson, meanGap: 250, apps: 12, wminLo: 1, wminHi: 3, deadlineFactor: 30}
//	    - {kind: trace, trace: [{t: 0, app: a0, wmin: 1, deadline: 700}]}
//	  admissions: [fcfs, edf]  # default: every registered admission policy axis of the preset
//	  preemptions: [none]      # default: the preset's preemption axis
//	run:                       # optional; only workers and journal apply
//	  workers: 0
//	  journal: true
//
// The offline-only runtime knobs (advance, maxLeap, shard, cluster) are
// rejected with their paths: the online engine has no batched core, no
// shardable instance grid and no cluster lease decomposition yet.

// gridFromTree builds the online campaign dimensions, defaulting from
// the preset profile when one is named. Without a preset every axis and
// shape field is required — silence would run a campaign the submitter
// never described.
func gridFromTree(m map[string]any, preset string) (tightsched.OnlineSweep, *SpecError) {
	if serr := rejectUnknown(m, "grid.", "tiers", "ncom", "appProcs", "m", "iterations",
		"horizon", "heuristic", "model", "seed", "trials", "arrivals", "admissions", "preemptions"); serr != nil {
		return tightsched.OnlineSweep{}, serr
	}

	var g tightsched.OnlineSweep
	switch preset {
	case "quick":
		g = tightsched.QuickOnlineSweep()
	case "full":
		g = tightsched.PaperOnlineSweep()
	default:
		g = tightsched.OnlineSweep{Heuristic: "IE", Model: "diurnal"}
		for _, req := range []struct {
			key     string
			example string
		}{
			{"tiers", `[{"count": 4, "speed": 1}]`},
			{"ncom", "6"},
			{"appProcs", "4"},
			{"m", "5"},
			{"iterations", "5"},
			{"horizon", "20000"},
			{"trials", "2"},
			{"arrivals", `[{"kind": "poisson", "meanGap": 250, ...}]`},
			{"admissions", `[fcfs, sjf, edf]`},
			{"preemptions", `[none, lowest-priority]`},
		} {
			if _, ok := m[req.key]; !ok {
				return tightsched.OnlineSweep{}, specErr("grid."+req.key,
					"required without a preset (e.g. %s); or set preset: quick|full", req.example)
			}
		}
	}

	if raw, ok := m["tiers"]; ok {
		tiers, serr := tiersFromTree(raw, "grid.tiers")
		if serr != nil {
			return tightsched.OnlineSweep{}, serr
		}
		g.Tiers = tiers
	}
	for _, f := range []struct {
		key  string
		dest *int
	}{
		{"ncom", &g.Ncom},
		{"appProcs", &g.AppProcs},
		{"m", &g.M},
		{"iterations", &g.Iterations},
		{"trials", &g.Trials},
	} {
		if v, present, serr := positiveIntField(m, f.key, "grid."+f.key); serr != nil {
			return tightsched.OnlineSweep{}, serr
		} else if present {
			*f.dest = v
		}
	}
	if v, present, serr := int64Field(m, "horizon", "grid.horizon"); serr != nil {
		return tightsched.OnlineSweep{}, serr
	} else if present {
		if v <= 0 {
			return tightsched.OnlineSweep{}, specErr("grid.horizon", "must be a positive slot count, got %d", v)
		}
		g.Horizon = v
	}
	if v, present, serr := stringField(m, "heuristic", "grid.heuristic"); serr != nil {
		return tightsched.OnlineSweep{}, serr
	} else if present {
		g.Heuristic = v
	}
	if v, present, serr := stringField(m, "model", "grid.model"); serr != nil {
		return tightsched.OnlineSweep{}, serr
	} else if present {
		g.Model = v
	}
	if v, present, serr := uint64Field(m, "seed", "grid.seed"); serr != nil {
		return tightsched.OnlineSweep{}, serr
	} else if present {
		g.Seed = v
	}
	if raw, ok := m["arrivals"]; ok {
		arrivals, serr := arrivalsFromTree(raw, "grid.arrivals")
		if serr != nil {
			return tightsched.OnlineSweep{}, serr
		}
		g.Arrivals = arrivals
	}
	if v, present, serr := stringListField(m, "admissions", "grid.admissions"); serr != nil {
		return tightsched.OnlineSweep{}, serr
	} else if present {
		for i, name := range v {
			if !registeredName(tightsched.AdmissionPolicies(), name) {
				return tightsched.OnlineSweep{}, specErr(fmt.Sprintf("grid.admissions[%d]", i),
					"unknown admission policy %q (choose from %v)", name, tightsched.AdmissionPolicies())
			}
		}
		g.Admissions = v
	}
	if v, present, serr := stringListField(m, "preemptions", "grid.preemptions"); serr != nil {
		return tightsched.OnlineSweep{}, serr
	} else if present {
		for i, name := range v {
			if !registeredName(tightsched.PreemptionPolicies(), name) {
				return tightsched.OnlineSweep{}, specErr(fmt.Sprintf("grid.preemptions[%d]", i),
					"unknown preemption policy %q (choose from %v)", name, tightsched.PreemptionPolicies())
			}
		}
		g.Preemptions = v
	}
	return g, nil
}

// tiersFromTree parses the heterogeneous speed profile: a list of
// {count, speed} mappings.
func tiersFromTree(raw any, path string) ([]tightsched.OnlineSpeedTier, *SpecError) {
	list, ok := raw.([]any)
	if !ok {
		return nil, specErr(path, "must be a list of {count, speed} mappings, got %s", describeValue(raw))
	}
	if len(list) == 0 {
		return nil, specErr(path, "must not be empty")
	}
	tiers := make([]tightsched.OnlineSpeedTier, len(list))
	for i, item := range list {
		ipath := fmt.Sprintf("%s[%d]", path, i)
		tm, ok := item.(map[string]any)
		if !ok {
			return nil, specErr(ipath, "must be a {count, speed} mapping, got %s", describeValue(item))
		}
		if serr := rejectUnknown(tm, ipath+".", "count", "speed"); serr != nil {
			return nil, serr
		}
		for _, f := range []struct {
			key  string
			dest *int
		}{
			{"count", &tiers[i].Count},
			{"speed", &tiers[i].Speed},
		} {
			v, present, serr := positiveIntField(tm, f.key, ipath+"."+f.key)
			if serr != nil {
				return nil, serr
			}
			if !present {
				return nil, specErr(ipath+"."+f.key, "required (positive integer)")
			}
			*f.dest = v
		}
	}
	return tiers, nil
}

// arrivalsFromTree parses the arrival-process axis: a list of mappings,
// each a seeded Poisson stream or an inline recorded trace.
func arrivalsFromTree(raw any, path string) ([]tightsched.OnlineArrival, *SpecError) {
	list, ok := raw.([]any)
	if !ok {
		return nil, specErr(path, "must be a list of arrival-process mappings, got %s", describeValue(raw))
	}
	if len(list) == 0 {
		return nil, specErr(path, "must not be empty")
	}
	arrivals := make([]tightsched.OnlineArrival, len(list))
	for i, item := range list {
		ipath := fmt.Sprintf("%s[%d]", path, i)
		am, ok := item.(map[string]any)
		if !ok {
			return nil, specErr(ipath, "must be a mapping, got %s", describeValue(item))
		}
		if serr := rejectUnknown(am, ipath+".", "kind", "label", "meanGap", "apps",
			"wminLo", "wminHi", "deadlineFactor", "trace"); serr != nil {
			return nil, serr
		}
		a := &arrivals[i]
		kind, present, serr := stringField(am, "kind", ipath+".kind")
		if serr != nil {
			return nil, serr
		}
		if !present {
			return nil, specErr(ipath+".kind", `required ("poisson" or "trace")`)
		}
		a.Kind = kind
		if a.Label, _, serr = stringField(am, "label", ipath+".label"); serr != nil {
			return nil, serr
		}
		if v, present, serr := int64Field(am, "meanGap", ipath+".meanGap"); serr != nil {
			return nil, serr
		} else if present {
			a.MeanGap = v
		}
		for _, f := range []struct {
			key  string
			dest *int
		}{
			{"apps", &a.Apps},
			{"wminLo", &a.WminLo},
			{"wminHi", &a.WminHi},
		} {
			if v, present, serr := intField(am, f.key, ipath+"."+f.key); serr != nil {
				return nil, serr
			} else if present {
				*f.dest = v
			}
		}
		if v, present, serr := floatField(am, "deadlineFactor", ipath+".deadlineFactor"); serr != nil {
			return nil, serr
		} else if present {
			a.DeadlineFactor = v
		}
		if rawTrace, ok := am["trace"]; ok {
			entries, serr := traceFromTree(rawTrace, ipath+".trace")
			if serr != nil {
				return nil, serr
			}
			a.Trace = entries
		}
	}
	return arrivals, nil
}

// traceFromTree parses an inline recorded arrival log: a list of
// {t, app, wmin, deadline} mappings.
func traceFromTree(raw any, path string) ([]tightsched.OnlineEntry, *SpecError) {
	list, ok := raw.([]any)
	if !ok {
		return nil, specErr(path, "must be a list of {t, app, wmin, deadline} mappings, got %s", describeValue(raw))
	}
	if len(list) == 0 {
		return nil, specErr(path, "must not be empty")
	}
	entries := make([]tightsched.OnlineEntry, len(list))
	for i, item := range list {
		ipath := fmt.Sprintf("%s[%d]", path, i)
		em, ok := item.(map[string]any)
		if !ok {
			return nil, specErr(ipath, "must be a mapping, got %s", describeValue(item))
		}
		if serr := rejectUnknown(em, ipath+".", "t", "app", "wmin", "deadline"); serr != nil {
			return nil, serr
		}
		e := &entries[i]
		if v, present, serr := int64Field(em, "t", ipath+".t"); serr != nil {
			return nil, serr
		} else if present {
			e.T = v
		}
		app, present, serr := stringField(em, "app", ipath+".app")
		if serr != nil {
			return nil, serr
		}
		if !present || app == "" {
			return nil, specErr(ipath+".app", "required (non-empty application name)")
		}
		e.App = app
		if v, present, serr := intField(em, "wmin", ipath+".wmin"); serr != nil {
			return nil, serr
		} else if present {
			e.Wmin = v
		}
		if v, present, serr := int64Field(em, "deadline", ipath+".deadline"); serr != nil {
			return nil, serr
		} else if present {
			e.Deadline = v
		}
	}
	return entries, nil
}

// registeredName reports whether name is in the sorted registry listing.
func registeredName(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// floatField types a numeric field as float64 (integers accepted).
func floatField(m map[string]any, key, path string) (float64, bool, *SpecError) {
	raw, ok := m[key]
	if !ok {
		return 0, false, nil
	}
	num, ok := raw.(json.Number)
	if !ok {
		return 0, true, specErr(path, "must be a number, got %s", describeValue(raw))
	}
	v, err := num.Float64()
	if err != nil {
		return 0, true, specErr(path, "must be a number, got %s", num.String())
	}
	return v, true, nil
}
