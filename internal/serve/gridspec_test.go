package serve

import (
	"reflect"
	"strings"
	"testing"

	"tightsched"
)

// TestDecodeGridSpecValidationPaths: every malformed grid spec must be
// rejected at submit time with a structured 400 naming the offending
// path, exactly like the sweep block's validation. Nested lists of
// mappings (tiers, arrivals, trace entries) are JSON-only — the YAML
// subset has no block-list mappings — so most cases here are JSON.
func TestDecodeGridSpecValidationPaths(t *testing.T) {
	cases := []struct {
		name     string
		doc      string
		ct       string
		wantPath string
		wantMsg  string // substring of the message
	}{
		{"grid and sweep together",
			`{"version": 1, "preset": "quick", "sweep": {"m": 5}, "grid": {"trials": 1}}`,
			"application/json", "grid", "mutually exclusive"},
		{"unknown grid field",
			"version: 1\npreset: quick\ngrid:\n  banana: 1\n",
			"application/yaml", "grid.banana", "unknown field"},
		{"missing tiers without preset",
			"version: 1\ngrid:\n  trials: 1\n",
			"application/yaml", "grid.tiers", "required without a preset"},
		{"non-positive horizon",
			"version: 1\npreset: quick\ngrid:\n  horizon: 0\n",
			"application/yaml", "grid.horizon", "positive"},
		{"unknown admission policy",
			"version: 1\npreset: quick\ngrid:\n  admissions: [fcfs, vip-first]\n",
			"application/yaml", "grid.admissions[1]", "unknown admission policy"},
		{"unknown preemption policy",
			"version: 1\npreset: quick\ngrid:\n  preemptions: [chaos]\n",
			"application/yaml", "grid.preemptions[0]", "unknown preemption policy"},
		{"offline advance knob",
			"version: 1\npreset: quick\ngrid:\n  trials: 1\nrun:\n  advance: batch\n",
			"application/yaml", "run.advance", "does not apply to an online grid campaign"},
		{"offline shard knob",
			"version: 1\npreset: quick\ngrid:\n  trials: 1\nrun:\n  shard: 0/2\n",
			"application/yaml", "run.shard", "does not apply to an online grid campaign"},
		{"offline cluster knob",
			"version: 1\npreset: quick\ngrid:\n  trials: 1\nrun:\n  cluster:\n    units: 4\n",
			"application/yaml", "run.cluster", "does not apply to an online grid campaign"},
		{"tier missing speed",
			`{"version": 1, "preset": "quick", "grid": {"tiers": [{"count": 4}]}}`,
			"application/json", "grid.tiers[0].speed", "required"},
		{"tier unknown field",
			`{"version": 1, "preset": "quick", "grid": {"tiers": [{"count": 4, "speed": 1, "flops": 9}]}}`,
			"application/json", "grid.tiers[0].flops", "unknown field"},
		{"arrival missing kind",
			`{"version": 1, "preset": "quick", "grid": {"arrivals": [{"meanGap": 100, "apps": 5, "wminLo": 1, "wminHi": 2}]}}`,
			"application/json", "grid.arrivals[0].kind", "required"},
		{"arrival ill-typed deadlineFactor",
			`{"version": 1, "preset": "quick", "grid": {"arrivals": [{"kind": "poisson", "meanGap": 100, "apps": 5, "wminLo": 1, "wminHi": 2, "deadlineFactor": "soon"}]}}`,
			"application/json", "grid.arrivals[0].deadlineFactor", "must be a number"},
		{"trace entry missing app",
			`{"version": 1, "preset": "quick", "grid": {"arrivals": [{"kind": "trace", "trace": [{"t": 0, "wmin": 1}]}]}}`,
			"application/json", "grid.arrivals[0].trace[0].app", "required"},
		{"semantically invalid grid",
			`{"version": 1, "preset": "quick", "grid": {"appProcs": 1000}}`,
			"application/json", "grid", "exceeds platform size"},
		{"unknown heuristic via validate",
			"version: 1\npreset: quick\ngrid:\n  heuristic: FANCY\n",
			"application/yaml", "grid", "unknown heuristic"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, serr := DecodeSpec([]byte(tc.doc), tc.ct)
			if serr == nil {
				t.Fatalf("spec accepted, want error at %q", tc.wantPath)
			}
			if serr.Path != tc.wantPath {
				t.Errorf("error path = %q, want %q (message %q)", serr.Path, tc.wantPath, serr.Message)
			}
			if !strings.Contains(serr.Message, tc.wantMsg) {
				t.Errorf("message %q does not mention %q", serr.Message, tc.wantMsg)
			}
		})
	}
}

// TestDecodeGridSpecDefaults: the quick preset supplies the library's
// quick online campaign, explicit fields override it, and run.workers
// lands on the runnable sweep without entering the stamped identity.
func TestDecodeGridSpecDefaults(t *testing.T) {
	spec, serr := DecodeSpec([]byte("version: 1\npreset: quick\ngrid:\n  trials: 1\n  seed: 7\nrun:\n  workers: 2\n"), "")
	if serr != nil {
		t.Fatal(serr)
	}
	if spec.Grid == nil || spec.GridStamped == nil {
		t.Fatal("grid spec decoded without a grid campaign")
	}
	want := tightsched.QuickOnlineSweep()
	want.Trials = 1
	want.Seed = 7
	want.Workers = 2
	if !reflect.DeepEqual(*spec.Grid, want) {
		t.Errorf("decoded grid = %+v, want quick preset with overrides %+v", *spec.Grid, want)
	}
	stamped := want.Spec()
	if !reflect.DeepEqual(*spec.GridStamped, stamped) {
		t.Errorf("stamped identity = %+v, want %+v", *spec.GridStamped, stamped)
	}
	if !spec.Journal {
		t.Error("journaling should default on for grid campaigns too")
	}

	// A fully explicit JSON grid spec round-trips through the same walk.
	full := `{
  "version": 1, "name": "custom-grid",
  "grid": {
    "tiers": [{"count": 4, "speed": 1}, {"count": 2, "speed": 3}],
    "ncom": 6, "appProcs": 2, "m": 5, "iterations": 5,
    "horizon": 5000, "trials": 1, "seed": 3,
    "arrivals": [
      {"kind": "poisson", "meanGap": 200, "apps": 4, "wminLo": 1, "wminHi": 2, "deadlineFactor": 20},
      {"kind": "trace", "trace": [{"t": 0, "app": "a0", "wmin": 1, "deadline": 900}]}
    ],
    "admissions": ["fcfs", "edf"],
    "preemptions": ["none"]
  }
}`
	custom, serr := DecodeSpec([]byte(full), "application/json")
	if serr != nil {
		t.Fatal(serr)
	}
	g := custom.Grid
	if g.Heuristic != "IE" || g.Model != "diurnal" {
		t.Errorf("no-preset defaults = heuristic %q model %q, want IE/diurnal", g.Heuristic, g.Model)
	}
	if len(g.Tiers) != 2 || g.Tiers[1].Speed != 3 {
		t.Errorf("tiers = %+v", g.Tiers)
	}
	if len(g.Arrivals) != 2 || g.Arrivals[1].Trace[0].App != "a0" || g.Arrivals[0].DeadlineFactor != 20 {
		t.Errorf("arrivals = %+v", g.Arrivals)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("decoded grid does not validate: %v", err)
	}
}
