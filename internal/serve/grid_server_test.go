package serve

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"

	"tightsched"
)

// tinyGridSpec is a sub-second online campaign: one trace arrival over a
// 4-processor platform, four policy combinations, one trial. Lists of
// mappings sit outside the daemon's YAML subset, so grid specs with
// inline arrivals are JSON.
const tinyGridSpec = `{
  "version": 1, "name": "tiny-grid",
  "grid": {
    "tiers": [{"count": 2, "speed": 1}, {"count": 2, "speed": 2}],
    "ncom": 6, "appProcs": 2, "m": 5, "iterations": 5,
    "horizon": 4000, "trials": 1, "seed": 11,
    "arrivals": [{"kind": "trace", "trace": [
      {"t": 0, "app": "a0", "wmin": 1, "deadline": 700},
      {"t": 50, "app": "a1", "wmin": 1, "deadline": 10},
      {"t": 60, "app": "a2", "wmin": 2, "deadline": 1500},
      {"t": 900, "app": "a3", "wmin": 1}
    ]}],
    "admissions": ["fcfs", "edf"],
    "preemptions": ["none", "lowest-priority"]
  }
}`

// TestGridCampaignLifecycleAndTableParity is the online half of the
// daemon-e2e gate: submit a grid spec → succeed → fetch the Table IV
// artifact, byte-identical to the library rendering of the same
// campaign, with the grid metric families on /metrics.
func TestGridCampaignLifecycleAndTableParity(t *testing.T) {
	_, ts := newTestServer(t)
	st := submit(t, ts, tinyGridSpec, "application/json")
	if st.Grid == nil {
		t.Fatal("grid campaign status carries no grid identity")
	}
	if st.Spec.M != 0 {
		t.Errorf("offline spec identity should stay zero for a grid campaign, got %+v", st.Spec)
	}
	if st.Journal == "" {
		t.Fatal("journaling defaults on; status should name the grid journal file")
	}

	final := waitState(t, ts, st.ID)
	if final.State != StateSucceeded {
		t.Fatalf("grid campaign ended %s (%s)", final.State, final.Error)
	}
	if final.Progress.Completed != final.Progress.Total || final.Progress.Total != 4 {
		t.Errorf("progress = %+v, want 4/4", final.Progress)
	}
	if final.Grid == nil || final.Grid.Trials != 1 || len(final.Grid.Admissions) != 2 {
		t.Errorf("final grid identity = %+v, want the submitted campaign", final.Grid)
	}

	resp, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID + "/tables/4")
	if err != nil {
		t.Fatal(err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tables/4: %s: %s", resp.Status, served)
	}

	// Reference rendering straight through the library.
	spec, serr := DecodeSpec([]byte(tinyGridSpec), "application/json")
	if serr != nil {
		t.Fatal(serr)
	}
	res, err := tightsched.NewSession().RunOnline(context.Background(), *spec.Grid)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tightsched.RenderTableArtifact(res, 4)
	if err != nil {
		t.Fatal(err)
	}
	if string(served) != want {
		t.Errorf("served Table IV differs from library rendering:\n--- served ---\n%s\n--- want ---\n%s", served, want)
	}

	// An offline table of an online campaign is a structured 409.
	resp, err = http.Get(ts.URL + "/v1/campaigns/" + st.ID + "/tables/1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("tables/1 on an online campaign: %s, want 409", resp.Status)
	}

	// The grid families are exposed, fed by the campaign's telemetry: the
	// queue and running gauges have drained back to zero, and the
	// deadline-miss counter kept every miss the engine recorded.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	for _, want := range []string{
		"tightsched_grid_queue_depth 0",
		"tightsched_grid_running_apps 0",
		"tightsched_grid_deadline_misses_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	var missTotal int64
	for _, row := range res.Grid.Instances {
		missTotal += int64(row.Missed)
	}
	if missTotal == 0 {
		t.Fatal("tiny grid campaign recorded no deadline misses; the counter assertion below is vacuous")
	}
	if !strings.Contains(metrics, "tightsched_grid_deadline_misses_total "+itoa(missTotal)) {
		t.Errorf("deadline-miss counter does not read %d:\n%s", missTotal, grepLines(metrics, "tightsched_grid_"))
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
