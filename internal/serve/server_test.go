package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tightsched"
)

// tinySpec is a sub-second campaign: 1 point, 1 trial, three heuristics.
const tinySpec = `
version: 1
name: tiny
sweep:
  m: 5
  ncoms: [5]
  wmins: [1]
  scenarios: 1
  trials: 1
  cap: 50000
  seed: 7
  heuristics: [IE, Y-IE, RANDOM]
`

// slowSpec is big enough to reliably cancel mid-run (255 instances,
// pinned to one worker for predictable pacing) yet cheap enough that the
// resume test can afford to finish it twice.
const slowSpec = `
version: 1
name: slow
sweep:
  m: 5
  ncoms: [5, 10, 20]
  wmins: [1, 2, 3, 4, 5]
  scenarios: 1
  trials: 1
  cap: 100000
  seed: 20130522
run:
  workers: 1
`

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := NewServer(Config{DataDir: t.TempDir(), Runners: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// submit POSTs a spec and decodes the 202 status.
func submit(t *testing.T, ts *httptest.Server, spec, contentType string) Status {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/campaigns", contentType, strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s: %s", resp.Status, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("submit response: %v\n%s", err, body)
	}
	return st
}

// getStatus decodes GET /v1/campaigns/{id}.
func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// waitState polls until the campaign reaches a terminal state.
func waitState(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st := getStatus(t, ts, id)
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s still %s after 60s", id, st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestCampaignLifecycleAndTableParity is the in-tree half of the CI
// daemon-e2e gate: submit → succeed → fetch the Table I artifact, and
// require it byte-identical to what the library (and therefore
// cmd/tables) renders for the same spec.
func TestCampaignLifecycleAndTableParity(t *testing.T) {
	_, ts := newTestServer(t)
	st := submit(t, ts, tinySpec, "application/yaml")
	if st.State != StatePending && st.State != StateRunning {
		t.Fatalf("fresh campaign state = %s", st.State)
	}
	if st.Journal == "" {
		t.Fatal("journaling defaults on; status should name the journal file")
	}

	final := waitState(t, ts, st.ID)
	if final.State != StateSucceeded {
		t.Fatalf("campaign ended %s (%s)", final.State, final.Error)
	}
	if final.Progress.Completed != final.Progress.Total || final.Progress.Total != 3 {
		t.Errorf("progress = %+v, want 3/3", final.Progress)
	}
	if final.WallSeconds <= 0 {
		t.Errorf("wallSeconds = %v, want > 0", final.WallSeconds)
	}

	resp, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID + "/tables/1")
	if err != nil {
		t.Fatal(err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tables/1: %s: %s", resp.Status, served)
	}

	// Reference rendering straight through the library.
	spec, serr := DecodeSpec([]byte(tinySpec), "application/yaml")
	if serr != nil {
		t.Fatal(serr)
	}
	session := tightsched.NewSession()
	res, err := session.RunSweep(context.Background(), spec.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tightsched.RenderTableArtifact(res, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(served) != want {
		t.Errorf("served artifact differs from library rendering:\n--- served ---\n%s\n--- want ---\n%s", served, want)
	}

	// The journal on disk replays to the same result.
	merged, err := tightsched.MergeSweepJournals(final.Journal)
	if err != nil {
		t.Fatal(err)
	}
	fromJournal, err := tightsched.RenderTableArtifact(merged, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fromJournal != want {
		t.Error("journal replay renders a different artifact")
	}

	// Table II needs m = 10; the mismatch is a structured 409, not a 500.
	resp, err = http.Get(ts.URL + "/v1/campaigns/" + st.ID + "/tables/2")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("tables/2 on an m=5 campaign: %s, want 409", resp.Status)
	}
}

// TestSubmitValidationHTTP: the structured 400 contract over the wire —
// each defective spec answers with {"error": {"path", "message"}}.
func TestSubmitValidationHTTP(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name, body, contentType, wantPath string
	}{
		{"unknown field", "version: 1\npreset: quick\nsweep:\n  m: 5\n  turbo: 9\n", "application/yaml", "sweep.turbo"},
		{"bad advance", "version: 1\npreset: quick\nsweep:\n  m: 5\nrun:\n  advance: warp\n", "application/yaml", "run.advance"},
		{"bad shard", `{"version":1,"preset":"quick","sweep":{"m":5},"run":{"shard":"5/2"}}`, "application/json", "run.shard"},
		{"missing axes", "version: 1\nsweep:\n  m: 5\n", "application/yaml", "sweep.ncoms"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/campaigns", tc.contentType, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %s, want 400", resp.Status)
			}
			var envelope struct {
				Error SpecError `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
				t.Fatal(err)
			}
			if envelope.Error.Path != tc.wantPath {
				t.Errorf("error.path = %q, want %q (message %q)", envelope.Error.Path, tc.wantPath, envelope.Error.Message)
			}
		})
	}

	// Unknown campaign and unknown table are 404s.
	for _, path := range []string{"/v1/campaigns/nope", "/v1/campaigns/nope/tables/1"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s = %s, want 404", path, resp.Status)
		}
	}
}

// sseClient consumes one campaign's SSE stream until it closes, counting
// events by name.
type sseClient struct {
	events map[string]int
	final  bool // saw a terminal "state" event as the last message
	err    error
}

// consumeSSE reads the stream until the server closes it, signalling
// ready after the snapshot "state" event proves the subscription is
// live.
func consumeSSE(ts *httptest.Server, id string, ready chan<- struct{}) *sseClient {
	c := &sseClient{events: map[string]int{}}
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + id + "/events")
	if err != nil {
		c.err = err
		close(ready)
		return c
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var event string
	signalled := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
			c.events[event]++
			if !signalled {
				signalled = true
				close(ready)
			}
		case strings.HasPrefix(line, "data: ") && event == "state":
			var st Status
			if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &st) == nil {
				c.final = st.State.Terminal()
			}
		}
	}
	c.err = sc.Err()
	if !signalled {
		close(ready)
	}
	return c
}

// TestSSECancelNoLeak is the daemon's shutdown/cancel leak guard (run
// under -race in CI): N concurrent SSE subscribers on a running
// campaign, DELETE mid-run, and afterwards every subscriber has seen a
// terminal state event and no goroutine survives.
func TestSSECancelNoLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	srv, err := NewServer(Config{DataDir: t.TempDir(), Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	st := submit(t, ts, slowSpec, "application/yaml")

	const subscribers = 4
	var wg sync.WaitGroup
	clients := make([]*sseClient, subscribers)
	readies := make([]chan struct{}, subscribers)
	for i := range clients {
		readies[i] = make(chan struct{})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clients[i] = consumeSSE(ts, st.ID, readies[i])
		}(i)
	}
	for _, ready := range readies {
		select {
		case <-ready:
		case <-time.After(30 * time.Second):
			t.Fatal("subscriber never received its snapshot")
		}
	}

	// Let the campaign complete instances after every subscription is
	// live, so each subscriber observes real instance traffic before the
	// cancel.
	mark := getStatus(t, ts, st.ID).Progress.Completed
	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, ts, st.ID).Progress.Completed < mark+10 {
		if time.Now().After(deadline) {
			t.Fatal("campaign made no progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	final := waitState(t, ts, st.ID)
	if final.State != StateCancelled {
		t.Fatalf("state after DELETE = %s", final.State)
	}
	if final.Progress.Completed == 0 || final.Progress.Completed >= final.Progress.Total {
		t.Errorf("cancel should land mid-run, progress = %+v", final.Progress)
	}
	wg.Wait()
	for i, c := range clients {
		if c.err != nil {
			t.Errorf("subscriber %d: %v", i, c.err)
		}
		if !c.final {
			t.Errorf("subscriber %d: stream ended without a terminal state event (events %v)", i, c.events)
		}
		if c.events["instance"] == 0 {
			t.Errorf("subscriber %d saw no instance events", i)
		}
	}

	// The journal holds exactly the completed instances, ready to resume.
	if merged, err := tightsched.MergeSweepJournals(final.Journal); err == nil {
		t.Errorf("cancelled journal unexpectedly complete (%d instances)", len(merged.Instances))
	}

	ts.Close()
	srv.Close()
	waitForGoroutines(t, base)
}

// TestCancelledCampaignJournalResumes is the acceptance bit-identity
// check: cancel a campaign mid-run, then complete its journal with
// Session.ResumeSweep and require the finished artifact byte-identical
// to an uninterrupted run of the same spec.
func TestCancelledCampaignJournalResumes(t *testing.T) {
	_, ts := newTestServer(t)
	st := submit(t, ts, slowSpec, "application/yaml")

	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, ts, st.ID).Progress.Completed < 10 {
		if time.Now().After(deadline) {
			t.Fatal("campaign made no progress")
		}
		time.Sleep(10 * time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/campaigns/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	final := waitState(t, ts, st.ID)
	if final.State != StateCancelled {
		t.Fatalf("state after DELETE = %s", final.State)
	}

	// Resume the daemon's journal outside the daemon — the same
	// "tables -resume -journal" path an operator would use.
	session := tightsched.NewSession()
	resumed, err := session.ResumeSweep(context.Background(), final.Journal)
	if err != nil {
		t.Fatal(err)
	}
	resumedArtifact, err := tightsched.RenderTableArtifact(resumed, 1)
	if err != nil {
		t.Fatal(err)
	}

	spec, serr := DecodeSpec([]byte(slowSpec), "application/yaml")
	if serr != nil {
		t.Fatal(serr)
	}
	straight, err := session.RunSweep(context.Background(), spec.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	straightArtifact, err := tightsched.RenderTableArtifact(straight, 1)
	if err != nil {
		t.Fatal(err)
	}
	if resumedArtifact != straightArtifact {
		t.Error("resumed campaign renders a different Table I than an uninterrupted run")
	}
}

// TestMetricsAndHealth: the liveness probe and the Prometheus exposition
// carry the campaign counters.
func TestMetricsAndHealth(t *testing.T) {
	_, ts := newTestServer(t)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz = %s %q", resp.Status, body)
	}

	st := submit(t, ts, tinySpec, "")
	waitState(t, ts, st.ID)

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	for _, want := range []string{
		`tightsched_campaigns{state="succeeded"} 1`,
		"tightsched_instances_completed_total 3",
		"tightsched_campaigns_submitted_total 1",
		`tightsched_cache_lookups_total{cache="memo",outcome="hit"}`,
		fmt.Sprintf(`tightsched_campaign_wall_seconds{campaign="%s",state="succeeded"}`, st.ID),
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}

	// The heuristic and model registries are served for spec authors.
	for _, path := range []string{"/v1/heuristics", "/v1/models"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var payload map[string][]string
		err = json.NewDecoder(resp.Body).Decode(&payload)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		for _, names := range payload {
			if len(names) == 0 {
				t.Errorf("GET %s returned no names", path)
			}
		}
	}
}

// waitForGoroutines polls until the goroutine count returns to the
// baseline (the session_test.go leak-guard pattern).
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d, baseline %d\n%s", runtime.NumGoroutine(), base, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerCloseCancelsPending: Close resolves queued campaigns too —
// a pending campaign must terminate "cancelled", not hang.
func TestServerCloseCancelsPending(t *testing.T) {
	srv, err := NewServer(Config{DataDir: t.TempDir(), Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	running := submit(t, ts, slowSpec, "")
	queued := submit(t, ts, tinySpec, "")

	deadline := time.Now().Add(30 * time.Second)
	for getStatus(t, ts, running.ID).State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("first campaign never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st := getStatus(t, ts, queued.ID).State; st != StatePending {
		t.Fatalf("second campaign should queue behind the single runner, got %s", st)
	}

	done := make(chan struct{})
	go func() { srv.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not return")
	}
	if st := getStatus(t, ts, queued.ID).State; st != StateCancelled {
		t.Errorf("pending campaign after Close = %s, want cancelled", st)
	}
	if st := getStatus(t, ts, running.ID).State; st != StateCancelled {
		t.Errorf("running campaign after Close = %s, want cancelled", st)
	}
}
