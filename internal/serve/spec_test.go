package serve

import (
	"reflect"
	"strings"
	"testing"

	"tightsched"
)

// TestDecodeSpecValidationPaths: every malformed spec must be rejected at
// submit time with a structured error naming the offending path — the
// service-layer mirror of the Session options' scope checks. The table
// covers the contract cases: unknown fields at every level, an
// out-of-range advance mode, a shard with index >= count, missing sweep
// axes, version/type defects, and unknown registry names.
func TestDecodeSpecValidationPaths(t *testing.T) {
	cases := []struct {
		name     string
		yaml     string
		wantPath string
		wantMsg  string // substring of the message
	}{
		{"missing version", "sweep:\n  m: 5\n", "version", "required"},
		{"unsupported version", "version: 2\nsweep:\n  m: 5\n", "version", "unsupported spec version 2"},
		{"unknown top-level field", "version: 1\nbanana: 1\nsweep:\n  m: 5\n", "banana", "unknown field"},
		{"unknown sweep field", "version: 1\nsweep:\n  m: 5\n  foo: 3\n", "sweep.foo", "unknown field"},
		{"unknown run field", "version: 1\npreset: quick\nsweep:\n  m: 5\nrun:\n  turbo: true\n", "run.turbo", "unknown field"},
		{"missing sweep", "version: 1\n", "sweep", "required"},
		{"missing m", "version: 1\npreset: quick\nsweep:\n  ncoms: [5]\n", "sweep.m", "required"},
		{"missing ncoms without preset", "version: 1\nsweep:\n  m: 5\n  wmins: [1]\n  scenarios: 1\n  trials: 1\n", "sweep.ncoms", "required without a preset"},
		{"missing wmins without preset", "version: 1\nsweep:\n  m: 5\n  ncoms: [5]\n  scenarios: 1\n  trials: 1\n", "sweep.wmins", "required without a preset"},
		{"missing scenarios without preset", "version: 1\nsweep:\n  m: 5\n  ncoms: [5]\n  wmins: [1]\n  trials: 1\n", "sweep.scenarios", "required without a preset"},
		{"missing trials without preset", "version: 1\nsweep:\n  m: 5\n  ncoms: [5]\n  wmins: [1]\n  scenarios: 1\n", "sweep.trials", "required without a preset"},
		{"bad preset", "version: 1\npreset: medium\nsweep:\n  m: 5\n", "preset", "unknown preset"},
		{"out-of-range advance", "version: 1\npreset: quick\nsweep:\n  m: 5\nrun:\n  advance: warp\n", "run.advance", "unknown time advance"},
		{"shard index >= count", "version: 1\npreset: quick\nsweep:\n  m: 5\nrun:\n  shard: 3/3\n", "run.shard", "invalid shard"},
		{"shard malformed", "version: 1\npreset: quick\nsweep:\n  m: 5\nrun:\n  shard: everything\n", "run.shard", "invalid shard"},
		{"unknown heuristic", "version: 1\npreset: quick\nsweep:\n  m: 5\n  heuristics: [IE, FANCY]\n", "sweep.heuristics[1]", "unknown heuristic"},
		{"unknown model", "version: 1\npreset: quick\nsweep:\n  m: 5\n  models: [quantum]\n", "sweep.models[0]", "unknown availability model"},
		{"negative workers", "version: 1\npreset: quick\nsweep:\n  m: 5\nrun:\n  workers: -1\n", "run.workers", ">= 0"},
		{"negative maxLeap", "version: 1\npreset: quick\nsweep:\n  m: 5\nrun:\n  maxLeap: -5\n", "run.maxLeap", ">= 0"},
		{"non-positive m", "version: 1\npreset: quick\nsweep:\n  m: 0\n", "sweep.m", "positive"},
		{"ill-typed m", "version: 1\npreset: quick\nsweep:\n  m: five\n", "sweep.m", "must be an integer"},
		{"ill-typed ncoms element", "version: 1\npreset: quick\nsweep:\n  m: 5\n  ncoms: [5, many]\n", "sweep.ncoms[1]", "positive integer"},
		{"empty ncoms", "version: 1\npreset: quick\nsweep:\n  m: 5\n  ncoms: []\n", "sweep.ncoms", "must not be empty"},
		{"non-positive cap", "version: 1\npreset: quick\nsweep:\n  m: 5\n  cap: 0\n", "sweep.cap", "positive"},
		{"ill-typed journal flag", "version: 1\npreset: quick\nsweep:\n  m: 5\nrun:\n  journal: maybe\n", "run.journal", "true or false"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, serr := DecodeSpec([]byte(tc.yaml), "application/yaml")
			if serr == nil {
				t.Fatalf("spec accepted, want error at %q", tc.wantPath)
			}
			if serr.Path != tc.wantPath {
				t.Errorf("error path = %q, want %q (message %q)", serr.Path, tc.wantPath, serr.Message)
			}
			if !strings.Contains(serr.Message, tc.wantMsg) {
				t.Errorf("message %q does not mention %q", serr.Message, tc.wantMsg)
			}
		})
	}
}

// TestDecodeSpecFormatsConverge: the same campaign submitted as YAML and
// as JSON must resolve to the identical stamped identity and runtime
// configuration — one schema walk serves both formats.
func TestDecodeSpecFormatsConverge(t *testing.T) {
	yamlDoc := `
version: 1
name: parity
sweep:
  m: 5
  ncoms: [5, 10]     # flow list
  wmins:
    - 1
    - 2
  scenarios: 1
  trials: 1
  cap: 50000
  seed: 7
  heuristics: [IE, Y-IE]
run:
  advance: batch
  workers: 2
  shard: "0/2"
`
	jsonDoc := `{
  "version": 1, "name": "parity",
  "sweep": {"m": 5, "ncoms": [5, 10], "wmins": [1, 2], "scenarios": 1,
            "trials": 1, "cap": 50000, "seed": 7, "heuristics": ["IE", "Y-IE"]},
  "run": {"advance": "batch", "workers": 2, "shard": "0/2"}
}`
	fromYAML, serr := DecodeSpec([]byte(yamlDoc), "application/yaml")
	if serr != nil {
		t.Fatalf("yaml: %v", serr)
	}
	fromJSON, serr := DecodeSpec([]byte(jsonDoc), "application/json")
	if serr != nil {
		t.Fatalf("json: %v", serr)
	}
	if !reflect.DeepEqual(fromYAML.Stamped, fromJSON.Stamped) {
		t.Errorf("stamped identities diverge:\nyaml: %+v\njson: %+v", fromYAML.Stamped, fromJSON.Stamped)
	}
	if fromYAML.Sweep.Advance != fromJSON.Sweep.Advance ||
		fromYAML.Sweep.Workers != fromJSON.Sweep.Workers ||
		fromYAML.Shard != fromJSON.Shard {
		t.Errorf("runtime knobs diverge: yaml %+v/%v, json %+v/%v",
			fromYAML.Sweep.Advance, fromYAML.Shard, fromJSON.Sweep.Advance, fromJSON.Shard)
	}
	// Content-type sniffing: a JSON body with no content type still lands
	// on the JSON path.
	sniffed, serr := DecodeSpec([]byte(jsonDoc), "")
	if serr != nil {
		t.Fatalf("sniffed json: %v", serr)
	}
	if !reflect.DeepEqual(sniffed.Stamped, fromJSON.Stamped) {
		t.Error("content-type sniffing changed the decoded spec")
	}
}

// TestDecodeSpecDefaults: presets supply the paper campaigns; explicit
// fields override; the no-preset path applies the paper's constants for
// the optional knobs.
func TestDecodeSpecDefaults(t *testing.T) {
	spec, serr := DecodeSpec([]byte("version: 1\npreset: quick\nsweep:\n  m: 5\n  trials: 1\n"), "")
	if serr != nil {
		t.Fatal(serr)
	}
	quick := tightsched.QuickSweep(5)
	if !reflect.DeepEqual(spec.Stamped.Ncoms, quick.Ncoms) || !reflect.DeepEqual(spec.Stamped.Wmins, quick.Wmins) {
		t.Errorf("quick preset axes not applied: %+v", spec.Stamped)
	}
	if spec.Stamped.Trials != 1 {
		t.Errorf("explicit trials should override the preset, got %d", spec.Stamped.Trials)
	}
	if spec.Stamped.Scenarios != quick.Scenarios || spec.Stamped.Cap != quick.Cap || spec.Stamped.Seed != quick.Seed {
		t.Errorf("quick preset defaults not applied: %+v", spec.Stamped)
	}
	if !spec.Journal {
		t.Error("journaling should default on")
	}
	wantHeuristics := quick.Spec().Heuristics
	if !reflect.DeepEqual(spec.Stamped.Heuristics, wantHeuristics) {
		t.Errorf("default heuristics = %v, want the library default set %v",
			spec.Stamped.Heuristics, wantHeuristics)
	}

	bare, serr := DecodeSpec([]byte("version: 1\nsweep:\n  m: 5\n  ncoms: [5]\n  wmins: [1]\n  scenarios: 1\n  trials: 1\n"), "")
	if serr != nil {
		t.Fatal(serr)
	}
	if bare.Stamped.P != 20 || bare.Stamped.Iterations != 10 || bare.Stamped.Cap != tightsched.DefaultCap {
		t.Errorf("paper defaults not applied without preset: %+v", bare.Stamped)
	}
}

// TestParseYAMLSubset pins the decoder's contract: the supported subset
// produces exactly the JSON-style generic tree, and out-of-subset input
// fails loudly with a line number.
func TestParseYAMLSubset(t *testing.T) {
	doc := `
# campaign
version: 1
name: "quoted: name"   # trailing comment
label: 'it''s quick'
flag: true
nothing: ~
sweep:
  m: 5
  ncoms: [5, 10, 20]
  wmins:
    - 1
    - 2
`
	tree, err := parseYAML([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	root := tree.(map[string]any)
	if root["name"] != "quoted: name" {
		t.Errorf("double-quoted scalar = %q", root["name"])
	}
	if root["label"] != "it's quick" {
		t.Errorf("single-quoted scalar = %q", root["label"])
	}
	if root["flag"] != true || root["nothing"] != nil {
		t.Errorf("bool/null scalars = %v / %v", root["flag"], root["nothing"])
	}
	sweep := root["sweep"].(map[string]any)
	if got := sweep["ncoms"].([]any); len(got) != 3 {
		t.Errorf("flow list = %v", got)
	}
	if got := sweep["wmins"].([]any); len(got) != 2 {
		t.Errorf("block list = %v", got)
	}

	bad := []struct{ name, doc, want string }{
		{"tab indent", "a: 1\n\tb: 2\n", "tab in indentation"},
		{"duplicate key", "a: 1\na: 2\n", "duplicate key"},
		{"anchor", "a: &x 1\n", "outside the supported YAML subset"},
		{"nested block list", "a:\n  -\n", "nested block list"},
		{"bare text", "not a mapping\n", "key: value"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := parseYAML([]byte(tc.doc)); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("parseYAML(%q) error = %v, want mention of %q", tc.doc, err, tc.want)
			}
		})
	}
}
