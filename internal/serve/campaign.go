package serve

import (
	"context"
	"sync"
	"time"

	"tightsched"
	"tightsched/internal/cluster"
)

// State is a campaign's lifecycle position. Transitions are one-way:
// pending → running → one of the three terminal states.
type State string

const (
	// StatePending: accepted and queued for a runner slot.
	StatePending State = "pending"
	// StateRunning: executing on the runner pool.
	StateRunning State = "running"
	// StateSucceeded: every instance completed; tables are servable.
	StateSucceeded State = "succeeded"
	// StateFailed: a worker reported an error.
	StateFailed State = "failed"
	// StateCancelled: stopped by DELETE or daemon shutdown. The journal
	// (when attached) holds every completed instance and resumes
	// bit-identically.
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCancelled
}

// Campaign is one submitted campaign: its spec, lifecycle state, progress
// counters, event broadcaster and (on success) result. All mutable state
// is guarded by mu; the runner goroutine writes, handlers read.
type Campaign struct {
	ID        string
	Name      string
	Spec      *Spec
	Submitted time.Time

	// cancel stops the campaign's context: DELETE, and daemon shutdown.
	cancel context.CancelFunc
	// events fans the campaign's stream out to SSE subscribers. Closed
	// when the campaign reaches a terminal state.
	events *tightsched.SweepBroadcaster
	// done is closed when the campaign reaches a terminal state — the
	// wake-up for SSE handlers waiting to emit the final state event.
	done chan struct{}

	mu       sync.Mutex
	state    State
	started  time.Time
	finished time.Time
	// progress counters, updated by the run observer.
	completed, total             int
	completedPoints, totalPoints int
	// cache accumulates the batched cells' cross-instance cache counters
	// (nil until a PointDone carries some).
	cache *tightsched.SweepCacheStats
	// cancelRequested marks a DELETE (or shutdown), so the runner can
	// distinguish "cancelled" from a spontaneous context error.
	cancelRequested bool
	errMsg          string
	journalPath     string
	result          *tightsched.SweepResult
	// coord is the live cluster coordinator of a run.cluster campaign
	// (nil for in-process campaigns, and again once terminal);
	// clusterStats freezes its final snapshot for status and metrics.
	coord        *cluster.Coordinator
	clusterStats *cluster.Stats
}

// observer is the campaign's Observer: it keeps the status counters
// current and forwards every event to the SSE broadcaster. Stream calls
// it from a single goroutine; the lock only orders it against handlers.
type observer struct{ c *Campaign }

func (o observer) OnInstanceDone(ev tightsched.InstanceDone) {
	o.c.mu.Lock()
	o.c.completed, o.c.total = ev.Completed, ev.Total
	o.c.mu.Unlock()
	o.c.events.OnInstanceDone(ev)
}

func (o observer) OnPointDone(ev tightsched.PointDone) {
	o.c.mu.Lock()
	o.c.completedPoints, o.c.totalPoints = ev.CompletedPoints, ev.TotalPoints
	if ev.Cache != nil {
		if o.c.cache == nil {
			o.c.cache = &tightsched.SweepCacheStats{}
		}
		o.c.cache.Add(*ev.Cache)
	}
	o.c.mu.Unlock()
	o.c.events.OnPointDone(ev)
}

func (o observer) OnProgress(ev tightsched.Progress) {
	o.c.mu.Lock()
	o.c.completed, o.c.total = ev.Completed, ev.Total
	o.c.mu.Unlock()
	o.c.events.OnProgress(ev)
}

// Status is the wire shape of GET /v1/campaigns/{id} (and of SSE "state"
// events): everything a client needs to follow a campaign without
// scraping logs.
type Status struct {
	ID        string     `json:"id"`
	Name      string     `json:"name,omitempty"`
	State     State      `json:"state"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	// WallSeconds is the campaign's execution wall-clock so far (final
	// once terminal).
	WallSeconds float64  `json:"wallSeconds,omitempty"`
	Progress    Counters `json:"progress"`
	Points      Counters `json:"points"`
	// Spec is the campaign's resolved identity — the same document
	// stamped into its journal header (zero for online grid campaigns,
	// whose identity is Grid).
	Spec tightsched.SweepSpec `json:"spec"`
	// Grid is an online grid campaign's resolved identity — the grid
	// journal header's spec (absent for offline sweeps).
	Grid    *tightsched.OnlineSpec      `json:"grid,omitempty"`
	Advance string                      `json:"advance"`
	Shard   string                      `json:"shard,omitempty"`
	Journal string                      `json:"journal,omitempty"`
	Cache   *tightsched.SweepCacheStats `json:"cache,omitempty"`
	// Cluster carries the lease-lifecycle stats of a run.cluster
	// campaign (absent for in-process campaigns).
	Cluster *cluster.Stats `json:"cluster,omitempty"`
	Error   string         `json:"error,omitempty"`
}

// Counters is a completed/total pair.
type Counters struct {
	Completed int `json:"completed"`
	Total     int `json:"total"`
}

// Status snapshots the campaign for reporting.
func (c *Campaign) Status(now time.Time) Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{
		ID:        c.ID,
		Name:      c.Name,
		State:     c.state,
		Submitted: c.Submitted,
		Progress:  Counters{c.completed, c.total},
		Points:    Counters{c.completedPoints, c.totalPoints},
		Spec:      c.Spec.Stamped,
		Grid:      c.Spec.GridStamped,
		Advance:   c.Spec.Sweep.Advance.String(),
		Journal:   c.journalPath,
		Error:     c.errMsg,
	}
	if c.Spec.Shard.Count > 1 {
		st.Shard = c.Spec.Shard.String()
	}
	if c.cache != nil {
		cache := *c.cache
		st.Cache = &cache
	}
	if stats := c.clusterStatsLocked(); stats != nil {
		st.Cluster = stats
	}
	if !c.started.IsZero() {
		t := c.started
		st.Started = &t
		end := now
		if !c.finished.IsZero() {
			end = c.finished
			t2 := c.finished
			st.Finished = &t2
		}
		st.WallSeconds = end.Sub(c.started).Seconds()
	}
	return st
}

// State returns the current lifecycle state.
func (c *Campaign) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.state
}

// Result returns the campaign's result, present only once succeeded.
func (c *Campaign) Result() *tightsched.SweepResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.result
}

// JournalPath returns the campaign's journal file ("" when journaling is
// off).
func (c *Campaign) JournalPath() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.journalPath
}

// Cancel requests cancellation. The campaign reaches StateCancelled when
// its runner observes the cancelled context (immediately for a pending
// campaign); the journal keeps every instance completed so far.
func (c *Campaign) Cancel() {
	c.mu.Lock()
	c.cancelRequested = true
	c.mu.Unlock()
	c.cancel()
}

// CancelRequested reports whether Cancel was called explicitly (DELETE),
// as opposed to the campaign's context dying with the daemon. Cluster
// campaigns use the distinction to decide whether their lease log ends
// for good or stays live for a restart to resume.
func (c *Campaign) CancelRequested() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cancelRequested
}

// Done returns the channel closed when the campaign reaches a terminal
// state.
func (c *Campaign) Done() <-chan struct{} { return c.done }

// Coordinator returns the campaign's live cluster coordinator (nil for
// in-process campaigns, and for cluster campaigns once terminal).
func (c *Campaign) Coordinator() *cluster.Coordinator {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.coord
}

// setCoordinator publishes the live coordinator to the lease handlers.
func (c *Campaign) setCoordinator(coord *cluster.Coordinator) {
	c.mu.Lock()
	c.coord = coord
	c.mu.Unlock()
}

// finishCluster detaches the live coordinator (lease endpoints answer
// 410 from here on) and freezes its final stats snapshot.
func (c *Campaign) finishCluster(stats cluster.Stats) {
	c.mu.Lock()
	c.coord = nil
	c.clusterStats = &stats
	c.mu.Unlock()
}

// clusterStatsLocked snapshots the cluster stats with c.mu held: live
// coordinator gauges while running, the frozen final once terminal. The
// c.mu → coordinator-mutex lock order is safe — the coordinator never
// calls back into the campaign while holding its own lock (OnInstance
// fires after it unlocks).
func (c *Campaign) clusterStatsLocked() *cluster.Stats {
	if c.coord != nil {
		st := c.coord.Snapshot()
		return &st
	}
	return c.clusterStats
}

// ClusterStats snapshots the campaign's cluster stats (nil for
// in-process campaigns).
func (c *Campaign) ClusterStats() *cluster.Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clusterStatsLocked()
}

// markRunning transitions pending → running.
func (c *Campaign) markRunning(now time.Time) {
	c.mu.Lock()
	c.state = StateRunning
	c.started = now
	c.mu.Unlock()
}

// finish records the terminal state and wakes every waiter. err is the
// run's error; ctx distinguishes cancellation from failure.
func (c *Campaign) finish(ctx context.Context, err error, res *tightsched.SweepResult, now time.Time) {
	c.mu.Lock()
	c.finished = now
	switch {
	case err == nil:
		c.state = StateSucceeded
		c.result = res
	case c.cancelRequested || ctx.Err() != nil:
		c.state = StateCancelled
		if c.journalPath != "" {
			c.errMsg = "cancelled; journal holds completed instances and is resumable"
		} else {
			c.errMsg = "cancelled"
		}
	default:
		c.state = StateFailed
		c.errMsg = err.Error()
	}
	c.mu.Unlock()
	c.events.Close()
	close(c.done)
}
