// Package serve is the campaign service layer behind cmd/tightschedd: a
// long-running HTTP front door over the tightsched Session API. Campaigns
// arrive as versioned declarative specs (YAML or JSON), run on a bounded
// runner pool with journals on disk, stream typed progress events to any
// number of SSE subscribers, and expose Prometheus-style metrics — the
// ROADMAP's "heavy traffic from many users" entry point, grounded in the
// spiderpool daemon shape (serve loop, handler layout, metrics, graceful
// shutdown) and the CAPV API-contract style of explicit, validated
// request documents.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"tightsched"
)

// SpecVersion is the campaign-spec document version this daemon speaks.
const SpecVersion = 1

// SpecError is one structured spec rejection: the path of the offending
// field (empty for document-level failures) and what is wrong with it.
// It is the JSON body of every 400 the submit endpoint returns, so
// clients can point at the exact line of their spec — the service-layer
// mirror of the Session options' scope-check errors, which likewise
// refuse to silently ignore configuration.
type SpecError struct {
	Path    string `json:"path,omitempty"`
	Message string `json:"message"`
}

func (e *SpecError) Error() string {
	if e.Path == "" {
		return "spec: " + e.Message
	}
	return fmt.Sprintf("spec: %s: %s", e.Path, e.Message)
}

func specErr(path, format string, args ...any) *SpecError {
	return &SpecError{Path: path, Message: fmt.Sprintf(format, args...)}
}

// Spec is a validated, defaulted campaign spec: the declarative contract
// of POST /v1/campaigns. Sweep is runnable (models resolved through the
// open registry) and Stamped is its serialized identity — the same
// SweepSpec that journal headers carry, so a spec, its journal and its
// status report all speak one format.
type Spec struct {
	// Name is the submitter's label for the campaign (optional; shown in
	// status listings, never interpreted).
	Name string
	// Preset records the requested defaults profile ("", "quick", "full").
	Preset string
	// Sweep is the runnable campaign (dimensions, heuristics, models,
	// plus the runtime knobs advance/maxLeap/workers already applied).
	Sweep tightsched.Sweep
	// Stamped is Sweep's resolved serialized identity.
	Stamped tightsched.SweepSpec
	// Shard is the grid slice to run (zero value: the whole campaign).
	Shard tightsched.SweepShard
	// Journal selects durable execution: the daemon journals the campaign
	// to its data directory, making cancellation resumable (default true).
	Journal bool
	// Format is the journal's on-disk encoding (run.format: jsonl |
	// binary; default jsonl). Restart sniffs the existing file, so the
	// choice matters only when the journal is first created.
	Format tightsched.JournalFormat
	// Cluster, when set, runs the campaign on external worker processes
	// with crash-tolerant leases (run.cluster block) instead of the
	// in-process runner pool.
	Cluster *ClusterSpec
	// Grid, when set, is a runnable online multi-application campaign
	// (grid block, mutually exclusive with sweep); Sweep is then zero and
	// the campaign runs through Session.RunOnline.
	Grid *tightsched.OnlineSweep
	// GridStamped is Grid's resolved serialized identity — the grid
	// journal header's spec.
	GridStamped *tightsched.OnlineSpec
}

// specDocument is the raw v1 document shape, named here only for
// documentation; decoding walks the generic tree so that every
// unknown or ill-typed field is reported with its exact path:
//
//	version: 1                 # required
//	name: quick-t1             # optional label
//	preset: quick              # optional: quick | full (defaults profile)
//	sweep:                     # required block, journal-header field names
//	  m: 5                     # required always
//	  ncoms: [5, 10, 20]       # required without preset
//	  wmins: [1, 2, 3]         # required without preset
//	  scenarios: 2             # required without preset
//	  trials: 2                # required without preset
//	  p: 20                    # default 20 (paper platform size)
//	  iterations: 10           # default 10
//	  cap: 100000              # default 1,000,000 (paper failure cap)
//	  seed: 20130522           # default 0
//	  heuristics: [IE, Y-IE]   # default: every registered heuristic
//	  models: [markov]         # default: the paper's Markov ground truth
//	  initialAllUp: false
//	run:                       # optional runtime knobs (never in identity)
//	  advance: leap            # leap | slot | batch
//	  maxLeap: 0               # macro-step bound (0 = default)
//	  workers: 0               # per-campaign parallel sims (0 = NumCPU)
//	  journal: true            # journal to the daemon's data dir
//	  format: jsonl            # journal encoding: jsonl | binary
//	  shard: 0/3               # run one slice of the grid
//	  cluster:                 # lease the grid to external workers
//	    units: 8               # initial work-unit decomposition
//	    leaseTtl: 15s          # lease expiry without a heartbeat
//	    gcInterval: 5s         # expired-lease sweep cadence
//	    reshard: true          # split requeued units in half
//
// An online multi-application campaign replaces the sweep block with a
// grid block (see gridspec.go for its schema); the two are mutually
// exclusive, and only run.workers and run.journal of the runtime knobs
// apply to grid campaigns.
//
// DecodeSpec parses, validates and defaults a campaign spec. contentType
// selects the format ("application/json", "application/yaml" or
// "text/yaml"; unset sniffs — documents starting with '{' are JSON).
// Every rejection is a *SpecError naming the offending path: unknown
// fields, an unsupported version, an out-of-range advance mode, a shard
// with index >= count, missing sweep axes, ill-typed values and unknown
// heuristic/model names all fail at submit time, never inside a worker.
func DecodeSpec(data []byte, contentType string) (*Spec, *SpecError) {
	tree, err := decodeTree(data, contentType)
	if err != nil {
		return nil, &SpecError{Message: err.Error()}
	}
	return specFromTree(tree)
}

// decodeTree parses the document into the generic JSON-style tree shared
// by both formats.
func decodeTree(data []byte, contentType string) (any, error) {
	ct := contentType
	if i := strings.Index(ct, ";"); i >= 0 {
		ct = ct[:i]
	}
	ct = strings.TrimSpace(strings.ToLower(ct))
	isJSON := strings.HasSuffix(ct, "json")
	if ct == "" || ct == "application/octet-stream" {
		isJSON = bytes.HasPrefix(bytes.TrimLeft(data, " \t\r\n"), []byte("{"))
	}
	if isJSON {
		dec := json.NewDecoder(bytes.NewReader(data))
		dec.UseNumber()
		var tree any
		if err := dec.Decode(&tree); err != nil {
			return nil, fmt.Errorf("invalid JSON: %v", err)
		}
		var trailing any
		if err := dec.Decode(&trailing); err == nil || !strings.Contains(err.Error(), "EOF") {
			return nil, fmt.Errorf("invalid JSON: trailing content after the spec document")
		}
		return tree, nil
	}
	tree, err := parseYAML(data)
	if err != nil {
		return nil, fmt.Errorf("invalid YAML: %v", err)
	}
	return tree, nil
}

// specFromTree walks the generic tree against the v1 schema.
func specFromTree(tree any) (*Spec, *SpecError) {
	root, ok := tree.(map[string]any)
	if !ok {
		return nil, specErr("", "spec document must be a mapping")
	}
	if serr := rejectUnknown(root, "", "version", "name", "preset", "sweep", "grid", "run"); serr != nil {
		return nil, serr
	}

	version, present, serr := intField(root, "version", "version")
	if serr != nil {
		return nil, serr
	}
	if !present {
		return nil, specErr("version", "required (this daemon speaks spec v%d)", SpecVersion)
	}
	if version != SpecVersion {
		return nil, specErr("version", "unsupported spec version %d (this daemon speaks v%d)", version, SpecVersion)
	}

	spec := &Spec{Journal: true}
	if spec.Name, _, serr = stringField(root, "name", "name"); serr != nil {
		return nil, serr
	}
	if spec.Preset, _, serr = stringField(root, "preset", "preset"); serr != nil {
		return nil, serr
	}
	switch spec.Preset {
	case "", "quick", "full":
	default:
		return nil, specErr("preset", "unknown preset %q (choose quick or full, or omit)", spec.Preset)
	}

	sweepTree, hasSweep := root["sweep"]
	gridTree, hasGrid := root["grid"]
	hasSweep = hasSweep && sweepTree != nil
	hasGrid = hasGrid && gridTree != nil
	if hasSweep && hasGrid {
		return nil, specErr("grid", "mutually exclusive with sweep (a campaign is offline or online, not both)")
	}
	if !hasSweep && !hasGrid {
		return nil, specErr("sweep", "required block (campaign dimensions; or a grid block for an online campaign)")
	}

	if hasGrid {
		gridMap, ok := gridTree.(map[string]any)
		if !ok {
			return nil, specErr("grid", "must be a mapping")
		}
		g, serr := gridFromTree(gridMap, spec.Preset)
		if serr != nil {
			return nil, serr
		}
		spec.Grid = &g
		if runTree, ok := root["run"]; ok && runTree != nil {
			runMap, ok := runTree.(map[string]any)
			if !ok {
				return nil, specErr("run", "must be a mapping")
			}
			rt, serr := runFromTree(runMap, spec)
			if serr != nil {
				return nil, serr
			}
			g.Workers = rt.Workers
		}
		if err := g.Validate(); err != nil {
			return nil, &SpecError{Path: "grid", Message: err.Error()}
		}
		stamped := g.Spec()
		spec.GridStamped = &stamped
		return spec, nil
	}

	sweepMap, ok := sweepTree.(map[string]any)
	if !ok {
		return nil, specErr("sweep", "must be a mapping")
	}
	sweep, serr := sweepFromTree(sweepMap, spec.Preset)
	if serr != nil {
		return nil, serr
	}

	rt := tightsched.SweepRuntime{}
	if runTree, ok := root["run"]; ok && runTree != nil {
		runMap, ok := runTree.(map[string]any)
		if !ok {
			return nil, specErr("run", "must be a mapping")
		}
		if rt, serr = runFromTree(runMap, spec); serr != nil {
			return nil, serr
		}
	}

	built, err := tightsched.SweepFromSpec(sweep.Spec(), rt)
	if err != nil {
		return nil, &SpecError{Path: "sweep", Message: err.Error()}
	}
	spec.Sweep = built
	spec.Stamped = built.Spec()
	return spec, nil
}

// sweepFromTree builds the campaign dimensions, defaulting from the
// preset profile when one is named and from the paper's constants
// otherwise. Axes have no sensible defaults without a preset, so a
// missing axis is a per-path rejection — silence would run a campaign
// the submitter never described.
func sweepFromTree(m map[string]any, preset string) (tightsched.Sweep, *SpecError) {
	if serr := rejectUnknown(m, "sweep.", "m", "ncoms", "wmins", "scenarios", "trials",
		"p", "iterations", "cap", "seed", "heuristics", "models", "initialAllUp"); serr != nil {
		return tightsched.Sweep{}, serr
	}
	tasks, present, serr := positiveIntField(m, "m", "sweep.m")
	if serr != nil {
		return tightsched.Sweep{}, serr
	}
	if !present {
		return tightsched.Sweep{}, specErr("sweep.m", "required (tasks per iteration; the paper uses 5 and 10)")
	}

	var sweep tightsched.Sweep
	switch preset {
	case "quick":
		sweep = tightsched.QuickSweep(tasks)
	case "full":
		sweep = tightsched.PaperSweep(tasks)
	default:
		sweep = tightsched.Sweep{M: tasks, P: 20, Iterations: 10, Cap: tightsched.DefaultCap}
		for _, axis := range []struct {
			key     string
			example string
		}{
			{"ncoms", "[5, 10, 20]"},
			{"wmins", "[1, 2, 3]"},
			{"scenarios", "2"},
			{"trials", "2"},
		} {
			if _, ok := m[axis.key]; !ok {
				return tightsched.Sweep{}, specErr("sweep."+axis.key,
					"required without a preset (e.g. %s); or set preset: quick|full", axis.example)
			}
		}
	}
	sweep.M = tasks

	if v, present, serr := positiveIntListField(m, "ncoms", "sweep.ncoms"); serr != nil {
		return tightsched.Sweep{}, serr
	} else if present {
		sweep.Ncoms = v
	}
	if v, present, serr := positiveIntListField(m, "wmins", "sweep.wmins"); serr != nil {
		return tightsched.Sweep{}, serr
	} else if present {
		sweep.Wmins = v
	}
	for _, f := range []struct {
		key  string
		dest *int
	}{
		{"scenarios", &sweep.Scenarios},
		{"trials", &sweep.Trials},
		{"p", &sweep.P},
		{"iterations", &sweep.Iterations},
	} {
		if v, present, serr := positiveIntField(m, f.key, "sweep."+f.key); serr != nil {
			return tightsched.Sweep{}, serr
		} else if present {
			*f.dest = v
		}
	}
	if v, present, serr := int64Field(m, "cap", "sweep.cap"); serr != nil {
		return tightsched.Sweep{}, serr
	} else if present {
		if v <= 0 {
			return tightsched.Sweep{}, specErr("sweep.cap", "must be a positive slot count, got %d", v)
		}
		sweep.Cap = v
	}
	if v, present, serr := uint64Field(m, "seed", "sweep.seed"); serr != nil {
		return tightsched.Sweep{}, serr
	} else if present {
		sweep.Seed = v
	}
	if v, present, serr := stringListField(m, "heuristics", "sweep.heuristics"); serr != nil {
		return tightsched.Sweep{}, serr
	} else if present {
		known := map[string]bool{}
		for _, h := range tightsched.Heuristics() {
			known[h] = true
		}
		for i, h := range v {
			if !known[h] {
				return tightsched.Sweep{}, specErr(fmt.Sprintf("sweep.heuristics[%d]", i),
					"unknown heuristic %q (see GET /v1/heuristics)", h)
			}
		}
		sweep.Heuristics = v
	}
	if v, present, serr := stringListField(m, "models", "sweep.models"); serr != nil {
		return tightsched.Sweep{}, serr
	} else if present {
		sweep.Models = nil
		for i, name := range v {
			model, err := tightsched.ModelByName(name)
			if err != nil {
				return tightsched.Sweep{}, specErr(fmt.Sprintf("sweep.models[%d]", i),
					"unknown availability model %q (see GET /v1/models)", name)
			}
			sweep.Models = append(sweep.Models, model)
		}
	}
	if v, present, serr := boolField(m, "initialAllUp", "sweep.initialAllUp"); serr != nil {
		return tightsched.Sweep{}, serr
	} else if present {
		sweep.InitialAllUp = v
	}
	return sweep, nil
}

// runFromTree parses the runtime block: the knobs that change speed,
// never results, mirroring the option set of the Session campaign entry
// points. Modes are validated here — at submit time — with the same
// single validation point the WithTimeAdvance option uses.
func runFromTree(m map[string]any, spec *Spec) (tightsched.SweepRuntime, *SpecError) {
	var rt tightsched.SweepRuntime
	if serr := rejectUnknown(m, "run.", "advance", "maxLeap", "workers", "journal", "format", "shard", "cluster"); serr != nil {
		return rt, serr
	}
	if spec.Grid != nil {
		// The online engine has no batched core, shardable instance grid
		// or cluster lease decomposition; refusing beats silently ignoring.
		for _, key := range []string{"advance", "maxLeap", "shard", "cluster"} {
			if _, ok := m[key]; ok {
				return rt, specErr("run."+key, "does not apply to an online grid campaign")
			}
		}
	}
	if v, present, serr := stringField(m, "advance", "run.advance"); serr != nil {
		return rt, serr
	} else if present {
		adv, err := tightsched.ParseTimeAdvance(v)
		if err != nil {
			return rt, specErr("run.advance", "unknown time advance %q (choose leap, slot or batch)", v)
		}
		rt.Advance = adv
	}
	if v, present, serr := int64Field(m, "maxLeap", "run.maxLeap"); serr != nil {
		return rt, serr
	} else if present {
		if v < 0 {
			return rt, specErr("run.maxLeap", "must be >= 0, got %d", v)
		}
		rt.MaxLeap = v
	}
	if v, present, serr := intField(m, "workers", "run.workers"); serr != nil {
		return rt, serr
	} else if present {
		if v < 0 {
			return rt, specErr("run.workers", "must be >= 0, got %d", v)
		}
		rt.Workers = v
	}
	if v, present, serr := boolField(m, "journal", "run.journal"); serr != nil {
		return rt, serr
	} else if present {
		spec.Journal = v
	}
	if v, present, serr := stringField(m, "format", "run.format"); serr != nil {
		return rt, serr
	} else if present {
		format, err := tightsched.ParseJournalFormat(v)
		if err != nil {
			return rt, specErr("run.format", "unknown journal format %q (choose jsonl or binary)", v)
		}
		if !spec.Journal {
			return rt, specErr("run.format", "requires run.journal: true (the format names the journal's encoding)")
		}
		spec.Format = format
	}
	if v, present, serr := stringField(m, "shard", "run.shard"); serr != nil {
		return rt, serr
	} else if present && v != "" {
		shard, err := tightsched.ParseSweepShard(v)
		if err != nil {
			return rt, specErr("run.shard", "invalid shard %q (want 0-based \"i/n\" with i < n)", v)
		}
		spec.Shard = shard
	}
	if raw, ok := m["cluster"]; ok && raw != nil {
		clusterMap, ok := raw.(map[string]any)
		if !ok {
			return rt, specErr("run.cluster", "must be a mapping")
		}
		cs, serr := clusterFromTree(clusterMap)
		if serr != nil {
			return rt, serr
		}
		// Cluster execution owns the whole grid (the coordinator shards
		// it into lease units itself) and lives on its journal.
		if spec.Shard.Count > 1 {
			return rt, specErr("run.cluster", "incompatible with run.shard (the coordinator decomposes the grid itself)")
		}
		if !spec.Journal {
			return rt, specErr("run.cluster", "requires run.journal: true (the journal is the dedup and completion authority)")
		}
		spec.Cluster = cs
	}
	return rt, nil
}

// rejectUnknown fails on any key outside the schema — a typo'd or
// unsupported field must never be silently dropped.
func rejectUnknown(m map[string]any, prefix string, allowed ...string) *SpecError {
	ok := map[string]bool{}
	for _, k := range allowed {
		ok[k] = true
	}
	// Deterministic reporting: complain about the lexically first
	// offender, not a random map-order one.
	var bad []string
	for k := range m {
		if !ok[k] {
			bad = append(bad, k)
		}
	}
	if len(bad) == 0 {
		return nil
	}
	first := bad[0]
	for _, k := range bad[1:] {
		if k < first {
			first = k
		}
	}
	return specErr(prefix+first, "unknown field (allowed: %s)", strings.Join(allowed, ", "))
}

// Field accessors: each returns (value, present, error), typing failures
// as path-specific SpecErrors.

func intField(m map[string]any, key, path string) (int, bool, *SpecError) {
	v, present, serr := int64Field(m, key, path)
	if serr != nil || !present {
		return 0, present, serr
	}
	if int64(int(v)) != v {
		return 0, true, specErr(path, "integer %d overflows", v)
	}
	return int(v), true, nil
}

func positiveIntField(m map[string]any, key, path string) (int, bool, *SpecError) {
	v, present, serr := intField(m, key, path)
	if serr != nil || !present {
		return 0, present, serr
	}
	if v <= 0 {
		return 0, true, specErr(path, "must be a positive integer, got %d", v)
	}
	return v, true, nil
}

func int64Field(m map[string]any, key, path string) (int64, bool, *SpecError) {
	raw, ok := m[key]
	if !ok {
		return 0, false, nil
	}
	num, ok := raw.(json.Number)
	if !ok {
		return 0, true, specErr(path, "must be an integer, got %s", describeValue(raw))
	}
	v, err := num.Int64()
	if err != nil {
		return 0, true, specErr(path, "must be an integer, got %s", num.String())
	}
	return v, true, nil
}

func uint64Field(m map[string]any, key, path string) (uint64, bool, *SpecError) {
	raw, ok := m[key]
	if !ok {
		return 0, false, nil
	}
	num, ok := raw.(json.Number)
	if !ok {
		return 0, true, specErr(path, "must be a non-negative integer, got %s", describeValue(raw))
	}
	v, err := strconv.ParseUint(num.String(), 10, 64)
	if err != nil {
		return 0, true, specErr(path, "must be a non-negative integer, got %s", num.String())
	}
	return v, true, nil
}

func stringField(m map[string]any, key, path string) (string, bool, *SpecError) {
	raw, ok := m[key]
	if !ok {
		return "", false, nil
	}
	v, ok := raw.(string)
	if !ok {
		return "", true, specErr(path, "must be a string, got %s", describeValue(raw))
	}
	return v, true, nil
}

func boolField(m map[string]any, key, path string) (bool, bool, *SpecError) {
	raw, ok := m[key]
	if !ok {
		return false, false, nil
	}
	v, ok := raw.(bool)
	if !ok {
		return false, true, specErr(path, "must be true or false, got %s", describeValue(raw))
	}
	return v, true, nil
}

func positiveIntListField(m map[string]any, key, path string) ([]int, bool, *SpecError) {
	raw, ok := m[key]
	if !ok {
		return nil, false, nil
	}
	list, ok := raw.([]any)
	if !ok {
		return nil, true, specErr(path, "must be a list of positive integers, got %s", describeValue(raw))
	}
	if len(list) == 0 {
		return nil, true, specErr(path, "must not be empty")
	}
	out := make([]int, len(list))
	for i, item := range list {
		num, ok := item.(json.Number)
		if !ok {
			return nil, true, specErr(fmt.Sprintf("%s[%d]", path, i),
				"must be a positive integer, got %s", describeValue(item))
		}
		v, err := num.Int64()
		if err != nil || v <= 0 || int64(int(v)) != v {
			return nil, true, specErr(fmt.Sprintf("%s[%d]", path, i),
				"must be a positive integer, got %s", num.String())
		}
		out[i] = int(v)
	}
	return out, true, nil
}

func stringListField(m map[string]any, key, path string) ([]string, bool, *SpecError) {
	raw, ok := m[key]
	if !ok {
		return nil, false, nil
	}
	list, ok := raw.([]any)
	if !ok {
		return nil, true, specErr(path, "must be a list of strings, got %s", describeValue(raw))
	}
	if len(list) == 0 {
		return nil, true, specErr(path, "must not be empty")
	}
	out := make([]string, len(list))
	for i, item := range list {
		v, ok := item.(string)
		if !ok {
			return nil, true, specErr(fmt.Sprintf("%s[%d]", path, i),
				"must be a string, got %s", describeValue(item))
		}
		out[i] = v
	}
	return out, true, nil
}

// describeValue names a tree value for error messages.
func describeValue(v any) string {
	switch v := v.(type) {
	case nil:
		return "null"
	case bool:
		return fmt.Sprintf("boolean %v", v)
	case string:
		return fmt.Sprintf("string %q", v)
	case json.Number:
		return "number " + v.String()
	case []any:
		return "a list"
	case map[string]any:
		return "a mapping"
	default:
		return fmt.Sprintf("%T", v)
	}
}
