package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"tightsched"
	"tightsched/internal/cluster"
)

// This file is the daemon side of the elastic cluster execution layer
// (internal/cluster): the run.cluster spec block, the coordinator
// lifecycle (including crash recovery from the lease logs on disk), and
// the worker-facing lease endpoints.

// ClusterSpec is the validated run.cluster block: the campaign runs as
// leased work units on external worker processes instead of in-process
// on the runner pool.
type ClusterSpec struct {
	// Units is the initial work-unit decomposition width.
	Units int
	// LeaseTTL is how long a lease survives without a heartbeat.
	LeaseTTL time.Duration
	// GCInterval is the expired-lease sweep cadence.
	GCInterval time.Duration
	// Reshard splits requeued units into their two half-width children.
	Reshard bool
}

// clusterFromTree parses run.cluster. Durations are strings in Go form
// ("15s", "500ms"); zero values select the coordinator's defaults.
func clusterFromTree(m map[string]any) (*ClusterSpec, *SpecError) {
	if serr := rejectUnknown(m, "run.cluster.", "units", "leaseTtl", "gcInterval", "reshard"); serr != nil {
		return nil, serr
	}
	cs := &ClusterSpec{}
	if v, present, serr := positiveIntField(m, "units", "run.cluster.units"); serr != nil {
		return nil, serr
	} else if present {
		cs.Units = v
	}
	for _, f := range []struct {
		key  string
		dest *time.Duration
	}{
		{"leaseTtl", &cs.LeaseTTL},
		{"gcInterval", &cs.GCInterval},
	} {
		v, present, serr := stringField(m, f.key, "run.cluster."+f.key)
		if serr != nil {
			return nil, serr
		}
		if !present || v == "" {
			continue
		}
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return nil, specErr("run.cluster."+f.key, "must be a positive Go duration (e.g. \"15s\"), got %q", v)
		}
		*f.dest = d
	}
	if v, present, serr := boolField(m, "reshard", "run.cluster.reshard"); serr != nil {
		return nil, serr
	} else if present {
		cs.Reshard = v
	}
	return cs, nil
}

// leasePath is the campaign's lease-log file, next to its journal.
func leasePath(journalPath string) string {
	return strings.TrimSuffix(journalPath, ".journal") + ".leases"
}

// openOrCreateJournal resumes an existing campaign journal or starts a
// fresh one — the cluster path's create-or-resume seam, shared by submit
// and daemon-restart recovery. format applies only on creation; an
// existing journal's encoding is sniffed from the file.
func openOrCreateJournal(path string, sweep tightsched.Sweep, format tightsched.JournalFormat) (*tightsched.SweepJournal, error) {
	if _, err := os.Stat(path); err == nil {
		return tightsched.OpenSweepJournal(path)
	}
	return tightsched.CreateSweepJournalFormat(path, sweep, tightsched.SweepShard{}, format)
}

// runClusterCampaign owns one cluster campaign: it starts (or resumes)
// the coordinator, drives the expired-lease GC loop, and resolves the
// campaign when the journal covers the grid, the context is cancelled,
// or the coordinator fails. Cluster campaigns do not consume a runner
// slot — the simulation happens in worker processes; the daemon only
// coordinates.
func (s *Server) runClusterCampaign(ctx context.Context, c *Campaign) {
	defer s.wg.Done()
	c.markRunning(time.Now().UTC())

	journal, err := openOrCreateJournal(c.journalPath, c.Spec.Sweep, c.Spec.Format)
	if err != nil {
		c.finish(ctx, err, nil, time.Now().UTC())
		return
	}
	obs := metricsObserver{observer{c}, &s.metrics}
	cs := c.Spec.Cluster
	coord, err := cluster.Start(cluster.Config{
		Campaign:   c.ID,
		Name:       c.Name,
		Submitted:  c.Submitted,
		Sweep:      c.Spec.Sweep,
		Units:      cs.Units,
		LeaseTTL:   cs.LeaseTTL,
		GCInterval: cs.GCInterval,
		Reshard:    cs.Reshard,
		Journal:    journal,
		StatePath:  leasePath(c.journalPath),
		OnInstance: func(ev tightsched.InstanceDone) {
			obs.OnInstanceDone(ev)
			obs.OnProgress(tightsched.Progress{Completed: ev.Completed, Total: ev.Total})
		},
		Logf: s.logf,
	})
	if err != nil {
		journal.Close()
		c.finish(ctx, err, nil, time.Now().UTC())
		return
	}
	c.setCoordinator(coord)
	done, total := coord.Progress()
	obs.OnProgress(tightsched.Progress{Completed: done, Total: total})

	tick := time.NewTicker(coord.GCInterval())
	defer tick.Stop()
	var runErr error
loop:
	for {
		select {
		case <-ctx.Done():
			// An explicit DELETE ends the campaign for good. A daemon
			// shutdown does NOT write the terminal event — the lease
			// log stays live so RecoverClusters resumes the campaign
			// when the daemon comes back, exactly as it would after a
			// kill -9.
			if c.CancelRequested() {
				coord.End("cancelled")
			}
			runErr = ctx.Err()
			break loop
		case <-coord.Done():
			break loop
		case <-tick.C:
			if _, gcErr := coord.GC(); gcErr != nil {
				coord.End("failed")
				runErr = gcErr
				break loop
			}
		}
	}

	// Freeze the stats for status/metrics, detach the live coordinator
	// (lease endpoints answer 410 from here on), then release the files.
	c.finishCluster(coord.Snapshot())
	coord.Close()
	var res *tightsched.SweepResult
	if runErr == nil {
		res = &tightsched.SweepResult{Sweep: c.Spec.Sweep, Instances: journal.Instances()}
	}
	journal.Close()
	c.finish(ctx, runErr, res, time.Now().UTC())
}

// RecoverClusters rescans the data directory for lease logs of cluster
// campaigns that were live when the daemon last stopped, re-registers
// them and resumes their coordinators. Terminal campaigns (their logs
// end with an "end" event) are left alone. It returns the resumed
// campaign IDs; call it once, after NewServer, before serving traffic.
func (s *Server) RecoverClusters() ([]string, error) {
	if s.cfg.DataDir == "" {
		return nil, nil
	}
	paths, err := filepath.Glob(filepath.Join(s.cfg.DataDir, "*.leases"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var resumed []string
	for _, p := range paths {
		header, terminal, err := cluster.StateCampaignID(p)
		if err != nil {
			s.logf("serve: skipping unreadable lease log %s: %v", p, err)
			continue
		}
		if terminal != "" || header.Campaign == "" {
			continue
		}
		sweep, err := tightsched.SweepFromSpec(header.Spec, tightsched.SweepRuntime{})
		if err != nil {
			s.logf("serve: cannot rebuild campaign %s from %s: %v", header.Campaign, p, err)
			continue
		}
		spec := &Spec{
			Name:    header.Name,
			Sweep:   sweep,
			Stamped: header.Spec,
			Journal: true,
			Cluster: &ClusterSpec{
				Units:      header.Units,
				LeaseTTL:   header.LeaseTTL(),
				GCInterval: header.GCInterval(),
				Reshard:    header.Reshard,
			},
		}
		s.mu.Lock()
		if s.closed || s.campaigns[header.Campaign] != nil {
			s.mu.Unlock()
			continue
		}
		ctx, cancel := context.WithCancel(s.baseCtx)
		c := &Campaign{
			ID:        header.Campaign,
			Name:      header.Name,
			Spec:      spec,
			Submitted: header.Submitted,
			cancel:    cancel,
			events:    tightsched.NewSweepBroadcaster(0),
			done:      make(chan struct{}),
			state:     StatePending,
		}
		c.journalPath = strings.TrimSuffix(p, ".leases") + ".journal"
		s.campaigns[c.ID] = c
		s.order = append(s.order, c.ID)
		s.wg.Add(1)
		s.mu.Unlock()
		go s.runClusterCampaign(ctx, c)
		resumed = append(resumed, c.ID)
		s.logf("serve: resuming cluster campaign %s from %s", c.ID, p)
	}
	return resumed, nil
}

// handleClusterClaim leases the next available work unit from any live
// cluster campaign, oldest submission first. 204 means nothing to do
// right now (no cluster campaigns, or all units leased or done) — the
// worker polls again.
func (s *Server) handleClusterClaim(w http.ResponseWriter, r *http.Request) {
	var req cluster.ClaimRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "", "invalid claim body: "+err.Error())
		return
	}
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	table := make(map[string]*Campaign, len(ids))
	for id, c := range s.campaigns {
		table[id] = c
	}
	s.mu.Unlock()
	for _, id := range ids {
		coord := table[id].Coordinator()
		if coord == nil {
			continue
		}
		grant, err := coord.Claim(req.Worker)
		if err != nil {
			if errors.Is(err, cluster.ErrCampaignDone) {
				continue
			}
			writeError(w, http.StatusInternalServerError, "", err.Error())
			return
		}
		if grant != nil {
			writeJSON(w, http.StatusOK, grant)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

// leaseCoordinator resolves {id} to a campaign with a live coordinator,
// or answers the request itself: 404 for an unknown campaign, 410 for a
// campaign that is not (or no longer) running in cluster mode — in
// either case the worker should abandon the lease and claim fresh work.
func (s *Server) leaseCoordinator(w http.ResponseWriter, r *http.Request) *cluster.Coordinator {
	c := s.campaign(w, r)
	if c == nil {
		return nil
	}
	coord := c.Coordinator()
	if coord == nil {
		writeError(w, http.StatusGone, "", fmt.Sprintf("campaign %s has no live cluster coordinator", c.ID))
		return nil
	}
	return coord
}

func (s *Server) handleLeaseHeartbeat(w http.ResponseWriter, r *http.Request) {
	coord := s.leaseCoordinator(w, r)
	if coord == nil {
		return
	}
	deadline, err := coord.Heartbeat(r.PathValue("lease"))
	if err != nil {
		writeError(w, http.StatusGone, "", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, cluster.HeartbeatResponse{Deadline: deadline})
}

func (s *Server) handleLeaseResults(w http.ResponseWriter, r *http.Request) {
	coord := s.leaseCoordinator(w, r)
	if coord == nil {
		return
	}
	var req cluster.UploadRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "", "invalid upload body: "+err.Error())
		return
	}
	resp, err := coord.Ingest(r.PathValue("lease"), req.Instances)
	if err != nil {
		writeError(w, http.StatusBadRequest, "", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleLeaseComplete(w http.ResponseWriter, r *http.Request) {
	coord := s.leaseCoordinator(w, r)
	if coord == nil {
		return
	}
	switch err := coord.Complete(r.PathValue("lease")); {
	case err == nil:
		writeJSON(w, http.StatusOK, cluster.CompleteResponse{Done: true})
	case errors.Is(err, cluster.ErrLeaseGone):
		writeError(w, http.StatusGone, "", err.Error())
	case errors.Is(err, cluster.ErrUnitIncomplete):
		writeError(w, http.StatusConflict, "", err.Error())
	default:
		writeError(w, http.StatusInternalServerError, "", err.Error())
	}
}

// clusterMetrics aggregates lease-lifecycle stats across every cluster
// campaign (live coordinators and frozen finals alike) for /metrics.
func (s *Server) clusterMetrics() cluster.Stats {
	s.mu.Lock()
	campaigns := make([]*Campaign, 0, len(s.order))
	for _, id := range s.order {
		campaigns = append(campaigns, s.campaigns[id])
	}
	s.mu.Unlock()
	var agg cluster.Stats
	for _, c := range campaigns {
		st := c.ClusterStats()
		if st == nil {
			continue
		}
		agg.Units += st.Units
		agg.UnitsDone += st.UnitsDone
		agg.Leased += st.Leased
		agg.Available += st.Available
		agg.Workers += st.Workers
		agg.Granted += st.Granted
		agg.Expired += st.Expired
		agg.Requeued += st.Requeued
		agg.Resharded += st.Resharded
		agg.Heartbeats += st.Heartbeats
		agg.Accepted += st.Accepted
		agg.Duplicates += st.Duplicates
		agg.Conflicts += st.Conflicts
	}
	return agg
}
