package serve

import (
	"encoding/json"
	"fmt"
	"strings"
)

// This file is a deliberately small YAML decoder for campaign specs. The
// module takes no dependencies, so rather than importing a YAML library
// the daemon accepts the subset specs actually use — nested maps by
// two-or-more-space indentation, block lists ("- item"), flow lists
// ("[a, b]"), quoted and bare scalars, comments — and produces exactly
// the generic tree encoding/json produces for the equivalent JSON
// document (map[string]any, []any, string, json.Number, bool, nil).
// Everything downstream (schema walk, unknown-field rejection, path
// reporting) is therefore format-agnostic: YAML and JSON submissions
// flow through one validation path.
//
// Out-of-subset constructs (anchors, multi-line scalars, tabs in
// indentation, nested lists) fail loudly with a line number instead of
// being misparsed.

// yamlLine is one significant (non-blank, non-comment) line of input.
type yamlLine struct {
	indent int
	text   string // content after indentation, comment stripped, trimmed right
	num    int    // 1-based source line
}

// parseYAML parses a YAML-subset document into a generic JSON-style tree.
func parseYAML(data []byte) (any, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(string(data), "\n") {
		line, err := lexYAMLLine(raw, i+1)
		if err != nil {
			return nil, err
		}
		if line.text != "" {
			lines = append(lines, line)
		}
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("empty document")
	}
	p := &yamlParser{lines: lines}
	v, err := p.parseBlock(lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		l := p.lines[p.pos]
		return nil, fmt.Errorf("line %d: unexpected de-indented content %q", l.num, l.text)
	}
	return v, nil
}

// lexYAMLLine strips the comment and measures indentation.
func lexYAMLLine(raw string, num int) (yamlLine, error) {
	indent := 0
	for indent < len(raw) && raw[indent] == ' ' {
		indent++
	}
	if indent < len(raw) && raw[indent] == '\t' {
		return yamlLine{}, fmt.Errorf("line %d: tab in indentation (use spaces)", num)
	}
	text := stripYAMLComment(raw[indent:])
	text = strings.TrimRight(text, " \t")
	if strings.HasPrefix(text, "---") && strings.TrimSpace(text[3:]) == "" {
		text = "" // document marker: ignore
	}
	return yamlLine{indent: indent, text: text, num: num}, nil
}

// stripYAMLComment removes a trailing "#" comment, respecting quotes.
func stripYAMLComment(s string) string {
	inSingle, inDouble := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '#':
			if !inSingle && !inDouble && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t') {
				return s[:i]
			}
		}
	}
	return s
}

type yamlParser struct {
	lines []yamlLine
	pos   int
}

// parseBlock parses the run of lines at exactly the given indentation —
// either a map (key: ...) or a list (- item) — until a shallower line.
func (p *yamlParser) parseBlock(indent int) (any, error) {
	l := p.lines[p.pos]
	if l.indent != indent {
		return nil, fmt.Errorf("line %d: inconsistent indentation", l.num)
	}
	if l.text == "-" || strings.HasPrefix(l.text, "- ") {
		return p.parseList(indent)
	}
	return p.parseMap(indent)
}

func (p *yamlParser) parseList(indent int) (any, error) {
	items := []any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indentation inside list", l.num)
		}
		if l.text != "-" && !strings.HasPrefix(l.text, "- ") {
			return nil, fmt.Errorf("line %d: expected list item, got %q", l.num, l.text)
		}
		rest := strings.TrimSpace(strings.TrimPrefix(l.text, "-"))
		if rest == "" {
			return nil, fmt.Errorf("line %d: nested block list items are outside the supported YAML subset", l.num)
		}
		v, err := parseYAMLScalar(rest, l.num)
		if err != nil {
			return nil, err
		}
		items = append(items, v)
		p.pos++
	}
	return items, nil
}

func (p *yamlParser) parseMap(indent int) (any, error) {
	m := map[string]any{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, fmt.Errorf("line %d: unexpected indentation", l.num)
		}
		key, rest, err := splitYAMLKey(l.text, l.num)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, fmt.Errorf("line %d: duplicate key %q", l.num, key)
		}
		p.pos++
		if rest == "" {
			// Block value: everything more deeply indented; nothing
			// following means an explicit null.
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				v, err := p.parseBlock(p.lines[p.pos].indent)
				if err != nil {
					return nil, err
				}
				m[key] = v
			} else {
				m[key] = nil
			}
			continue
		}
		v, err := parseYAMLScalar(rest, l.num)
		if err != nil {
			return nil, err
		}
		m[key] = v
	}
	return m, nil
}

// splitYAMLKey splits "key: value" (or "key:") on the first colon.
// Campaign-spec keys are plain identifiers, so quoted keys are out of
// subset.
func splitYAMLKey(text string, num int) (key, rest string, err error) {
	i := strings.Index(text, ":")
	if i <= 0 {
		return "", "", fmt.Errorf("line %d: expected \"key: value\", got %q", num, text)
	}
	key = strings.TrimSpace(text[:i])
	rest = strings.TrimSpace(text[i+1:])
	if key == "" || strings.ContainsAny(key, "\"'{}[],&*!|>%@`") {
		return "", "", fmt.Errorf("line %d: unsupported key %q", num, text[:i])
	}
	return key, rest, nil
}

// parseYAMLScalar parses a scalar or flow list.
func parseYAMLScalar(s string, num int) (any, error) {
	switch {
	case strings.HasPrefix(s, "[") && strings.HasSuffix(s, "]"):
		inner := strings.TrimSpace(s[1 : len(s)-1])
		items := []any{}
		if inner == "" {
			return items, nil
		}
		for _, part := range splitFlowList(inner) {
			part = strings.TrimSpace(part)
			if part == "" {
				return nil, fmt.Errorf("line %d: empty element in flow list %q", num, s)
			}
			v, err := parseYAMLScalar(part, num)
			if err != nil {
				return nil, err
			}
			items = append(items, v)
		}
		return items, nil
	case strings.HasPrefix(s, "\"") && strings.HasSuffix(s, "\"") && len(s) >= 2:
		var out string
		if err := json.Unmarshal([]byte(s), &out); err != nil {
			return nil, fmt.Errorf("line %d: bad quoted string %s: %v", num, s, err)
		}
		return out, nil
	case strings.HasPrefix(s, "'") && strings.HasSuffix(s, "'") && len(s) >= 2:
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	case s == "true":
		return true, nil
	case s == "false":
		return false, nil
	case s == "null" || s == "~":
		return nil, nil
	case strings.ContainsAny(s, "{}&*!|>%@`"):
		return nil, fmt.Errorf("line %d: %q is outside the supported YAML subset", num, s)
	default:
		if isJSONNumber(s) {
			return json.Number(s), nil
		}
		return s, nil
	}
}

// splitFlowList splits a flow-list body on top-level commas (quotes
// respected; flow lists of scalars only, so no bracket nesting).
func splitFlowList(s string) []string {
	var parts []string
	start, inSingle, inDouble := 0, false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case ',':
			if !inSingle && !inDouble {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	return append(parts, s[start:])
}

// isJSONNumber reports whether s is a valid JSON number literal, so YAML
// numbers surface as json.Number exactly like the JSON decode path's.
func isJSONNumber(s string) bool {
	var n json.Number
	return json.Unmarshal([]byte(s), &n) == nil
}
