package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tightsched"
)

// clusterSpec is a small campaign leased to external workers: 4 work
// units over 8 coordinates / 16 instances.
const clusterSpec = `
version: 1
name: cluster-tiny
sweep:
  m: 5
  ncoms: [5]
  wmins: [1, 2]
  scenarios: 2
  trials: 2
  cap: 50000
  seed: 7
  heuristics: [IE, RANDOM]
run:
  cluster:
    units: 4
    leaseTtl: 2s
    gcInterval: 100ms
`

// startWorkers runs n in-process cluster workers against the daemon's
// URL and returns a stop function that kills and joins them.
func startWorkers(t *testing.T, url string, n int) func() {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tightsched.RunClusterWorker(ctx, tightsched.ClusterWorkerOptions{
				Coordinator: url,
				Name:        fmt.Sprintf("test-w%d", i),
				Parallelism: 2,
				UploadBatch: 4,
				IdlePoll:    20 * time.Millisecond,
				Backoff:     tightsched.RetryPolicy{Initial: 10 * time.Millisecond, Max: 200 * time.Millisecond},
			})
		}(i)
	}
	return func() {
		cancel()
		wg.Wait()
	}
}

// metricValue extracts one sample ("name{labels} 42") from a /metrics
// body.
func metricValue(t *testing.T, body, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, sample+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: unparseable value %q", sample, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in /metrics", sample)
	return 0
}

// TestClusterCampaignEndToEnd is the full worker-facing contract over
// real HTTP: submit a run.cluster spec, let in-process workers drain it,
// and require the Table I artifact byte-identical to the library's
// sequential rendering, with the lease lifecycle visible in the status
// and /metrics.
func TestClusterCampaignEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)
	st := submit(t, ts, clusterSpec, "application/yaml")

	stop := startWorkers(t, ts.URL, 2)
	defer stop()

	final := waitState(t, ts, st.ID)
	if final.State != StateSucceeded {
		t.Fatalf("cluster campaign ended %s (%s)", final.State, final.Error)
	}
	if final.Progress.Completed != 16 || final.Progress.Total != 16 {
		t.Errorf("progress = %+v, want 16/16", final.Progress)
	}
	if final.Cluster == nil {
		t.Fatal("terminal cluster campaign reports no cluster stats")
	}
	if final.Cluster.UnitsDone != 4 || final.Cluster.Granted < 4 || final.Cluster.Accepted != 16 {
		t.Errorf("cluster stats = %+v", final.Cluster)
	}

	// Byte parity with the sequential library path — the acceptance bar.
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID + "/tables/1")
	if err != nil {
		t.Fatal(err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tables/1: %s: %s", resp.Status, served)
	}
	spec, serr := DecodeSpec([]byte(clusterSpec), "application/yaml")
	if serr != nil {
		t.Fatal(serr)
	}
	res, err := tightsched.NewSession().RunSweep(context.Background(), spec.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tightsched.RenderTableArtifact(res, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(served) != want {
		t.Errorf("cluster artifact differs from sequential rendering:\n--- served ---\n%s\n--- want ---\n%s", served, want)
	}

	// The lease lifecycle shows up in /metrics (frozen stats included).
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	metrics := string(body)
	if v := metricValue(t, metrics, `tightsched_cluster_units{state="done"}`); v != 4 {
		t.Errorf("units done = %v, want 4", v)
	}
	if v := metricValue(t, metrics, `tightsched_cluster_leases_total{event="granted"}`); v < 4 {
		t.Errorf("leases granted = %v, want >= 4", v)
	}
	if v := metricValue(t, metrics, `tightsched_cluster_uploads_total{outcome="accepted"}`); v != 16 {
		t.Errorf("uploads accepted = %v, want 16", v)
	}
	if v := metricValue(t, metrics, `tightsched_cluster_uploads_total{outcome="conflict"}`); v != 0 {
		t.Errorf("conflicts = %v, want 0", v)
	}

	// Lease endpoints answer 410 once the campaign is terminal.
	resp, err = http.Post(ts.URL+"/v1/campaigns/"+st.ID+"/cluster/leases/l1/heartbeat",
		"application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Errorf("heartbeat on finished campaign: %s, want 410", resp.Status)
	}
}

// TestClusterRecovery is the coordinator-restart half of the acceptance
// bar: a daemon that dies mid-campaign (graceful or kill -9 — neither
// writes a terminal lease-log event) resumes the campaign on the next
// start, while an explicitly DELETEd campaign stays dead.
func TestClusterRecovery(t *testing.T) {
	dir := t.TempDir()
	srv1, err := NewServer(Config{DataDir: dir, Runners: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(srv1.Handler())

	// Campaign A is cancelled explicitly: its lease log ends for good.
	stA := submit(t, ts1, clusterSpec, "application/yaml")
	req, _ := http.NewRequest(http.MethodDelete, ts1.URL+"/v1/campaigns/"+stA.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	if st := waitState(t, ts1, stA.ID); st.State != StateCancelled {
		t.Fatalf("deleted campaign ended %s", st.State)
	}

	// Campaign B is mid-flight (no workers attached) when the daemon
	// stops.
	stB := submit(t, ts1, clusterSpec, "application/yaml")
	ts1.Close()
	srv1.Close()

	srv2, err := NewServer(Config{DataDir: dir, Runners: 2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := srv2.RecoverClusters()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 1 || resumed[0] != stB.ID {
		t.Fatalf("resumed %v, want exactly [%s] (A was DELETEd)", resumed, stB.ID)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		srv2.Close()
	})

	// The resumed campaign keeps its identity and finishes normally.
	stop := startWorkers(t, ts2.URL, 2)
	defer stop()
	final := waitState(t, ts2, stB.ID)
	if final.State != StateSucceeded {
		t.Fatalf("resumed campaign ended %s (%s)", final.State, final.Error)
	}

	resp, err := http.Get(ts2.URL + "/v1/campaigns/" + stB.ID + "/tables/1")
	if err != nil {
		t.Fatal(err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	spec, serr := DecodeSpec([]byte(clusterSpec), "application/yaml")
	if serr != nil {
		t.Fatal(serr)
	}
	res, err := tightsched.NewSession().RunSweep(context.Background(), spec.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tightsched.RenderTableArtifact(res, 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(served) != want {
		t.Error("resumed campaign's artifact differs from sequential rendering")
	}

	// A third recovery pass finds nothing live.
	if again, err := srv2.RecoverClusters(); err != nil || len(again) != 0 {
		t.Fatalf("second recovery pass: %v, %v", again, err)
	}
}

// TestClusterSpecValidation covers the run.cluster spec surface: the
// structured 400s and the no-data-dir refusal.
func TestClusterSpecValidation(t *testing.T) {
	base := `
version: 1
sweep:
  m: 5
  ncoms: [5]
  wmins: [1]
  scenarios: 1
  trials: 1
  cap: 50000
  seed: 7
run:
`
	cases := []struct {
		name, run, wantPath string
	}{
		{"with shard", "  shard: 0/2\n  cluster:\n    units: 2", "run.cluster"},
		{"without journal", "  journal: false\n  cluster:\n    units: 2", "run.cluster"},
		{"unknown key", "  cluster:\n    bogus: 1", "run.cluster.bogus"},
		{"bad ttl", "  cluster:\n    leaseTtl: fast", "run.cluster.leaseTtl"},
		{"negative units", "  cluster:\n    units: -1", "run.cluster.units"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, serr := DecodeSpec([]byte(base+tc.run), "application/yaml")
			if serr == nil {
				t.Fatal("defective spec accepted")
			}
			if serr.Path != tc.wantPath {
				t.Fatalf("error path %q, want %q (%s)", serr.Path, tc.wantPath, serr.Message)
			}
		})
	}

	// A daemon without a data directory cannot host cluster campaigns.
	srv, err := NewServer(Config{Runners: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/yaml", strings.NewReader(clusterSpec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("cluster submit without data dir: %s: %s", resp.Status, body)
	}
	var e struct {
		Error struct{ Path, Message string }
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error.Path != "run.cluster" {
		t.Fatalf("error body: %s", body)
	}
}
