package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"tightsched"
)

// Config sizes a Server.
type Config struct {
	// DataDir holds campaign journals (<id>.journal). Created if absent.
	DataDir string
	// Runners bounds concurrently executing campaigns (default 1):
	// campaigns beyond the bound queue in StatePending. Each campaign's
	// own worker pool parallelizes inside its runner slot.
	Runners int
	// Workers is the default per-campaign worker count applied when a
	// spec leaves run.workers at 0 (0: NumCPU).
	Workers int
	// MaxSpecBytes bounds a submitted spec document (default 1 MiB).
	MaxSpecBytes int64
	// Heartbeat is the SSE keep-alive comment interval (default 15s).
	Heartbeat time.Duration
	// Logf, when set, receives operational log lines (cluster
	// coordinator activity, recovery). Nil discards them.
	Logf func(format string, args ...any)
}

// Server is the campaign service: it owns the campaign table, the
// bounded runner pool and the metrics counters behind the HTTP API that
// cmd/tightschedd serves.
type Server struct {
	cfg Config
	// slots is the runner pool: one token per concurrently running
	// campaign.
	slots chan struct{}

	// baseCtx parents every campaign; Close cancels it.
	baseCtx context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup

	mu        sync.Mutex
	campaigns map[string]*Campaign
	order     []string // submission order, for stable listings
	seq       int
	closed    bool

	metrics serverMetrics
}

// serverMetrics are the daemon-lifetime counters behind GET /metrics.
// Campaign-state gauges are derived from the campaign table on scrape.
type serverMetrics struct {
	campaignsSubmitted atomic.Uint64
	instancesCompleted atomic.Uint64
	memoHits           atomic.Uint64
	memoMisses         atomic.Uint64
	decisionHits       atomic.Uint64
	decisionMisses     atomic.Uint64
	sseSubscribed      atomic.Uint64
	sseDropped         atomic.Uint64
	// Online grid live telemetry, summed across running grid campaigns:
	// admission-queue depth, running applications, and deadline misses.
	gridQueueDepth     atomic.Int64
	gridRunning        atomic.Int64
	gridDeadlineMisses atomic.Uint64
}

// gridTelemetry adapts the daemon metrics to the online engine's
// telemetry hook (tightsched.GridTelemetry): the grid event loops call
// these from inside running simulations.
type gridTelemetry struct{ m *serverMetrics }

func (t gridTelemetry) GridQueued(delta int)  { t.m.gridQueueDepth.Add(int64(delta)) }
func (t gridTelemetry) GridRunning(delta int) { t.m.gridRunning.Add(int64(delta)) }
func (t gridTelemetry) GridDeadlineMiss()     { t.m.gridDeadlineMisses.Add(1) }

// NewServer builds a Server and its data directory.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Runners <= 0 {
		cfg.Runners = 1
	}
	if cfg.MaxSpecBytes <= 0 {
		cfg.MaxSpecBytes = 1 << 20
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 15 * time.Second
	}
	if cfg.DataDir != "" {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: data dir: %w", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:       cfg,
		slots:     make(chan struct{}, cfg.Runners),
		baseCtx:   ctx,
		stop:      cancel,
		campaigns: map[string]*Campaign{},
	}, nil
}

// logf writes one operational log line through Config.Logf.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// Close stops the server: every pending and running campaign is
// cancelled (journals stay flushed and resumable) and Close blocks until
// all runners have exited. It is the daemon's SIGTERM path, after the
// HTTP listener has drained.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.stop()
	s.wg.Wait()
}

// Handler returns the HTTP API:
//
//	POST   /v1/campaigns              submit a spec (YAML or JSON) → 202 + status
//	GET    /v1/campaigns              list campaign statuses
//	GET    /v1/campaigns/{id}         one campaign's status
//	DELETE /v1/campaigns/{id}         cancel (journal stays resumable)
//	GET    /v1/campaigns/{id}/events  live SSE event stream
//	GET    /v1/campaigns/{id}/tables/{table}   Table I/II/III/IV artifact
//	GET    /v1/heuristics             registered heuristic names
//	GET    /v1/models                 registered availability models
//	GET    /healthz                   liveness probe
//	GET    /metrics                   Prometheus-style exposition
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/campaigns/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/campaigns/{id}/tables/{table}", s.handleTable)
	mux.HandleFunc("POST /v1/cluster/claim", s.handleClusterClaim)
	mux.HandleFunc("POST /v1/campaigns/{id}/cluster/leases/{lease}/heartbeat", s.handleLeaseHeartbeat)
	mux.HandleFunc("POST /v1/campaigns/{id}/cluster/leases/{lease}/results", s.handleLeaseResults)
	mux.HandleFunc("POST /v1/campaigns/{id}/cluster/leases/{lease}/complete", s.handleLeaseComplete)
	mux.HandleFunc("GET /v1/heuristics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"heuristics": tightsched.Heuristics()})
	})
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"models": tightsched.AvailabilityModels()})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// handleSubmit validates the spec and enqueues the campaign. Every spec
// defect is a structured 400 naming the offending path; a valid spec is
// answered 202 with the initial status (including the campaign ID and
// journal path).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "", "reading request body: "+err.Error())
		return
	}
	if int64(len(body)) > s.cfg.MaxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "",
			fmt.Sprintf("spec exceeds %d bytes", s.cfg.MaxSpecBytes))
		return
	}
	spec, serr := DecodeSpec(body, r.Header.Get("Content-Type"))
	if serr != nil {
		writeJSON(w, http.StatusBadRequest, map[string]any{"error": serr})
		return
	}
	if spec.Sweep.Workers == 0 && s.cfg.Workers > 0 {
		spec.Sweep.Workers = s.cfg.Workers
	}
	if spec.Grid != nil && spec.Grid.Workers == 0 && s.cfg.Workers > 0 {
		spec.Grid.Workers = s.cfg.Workers
	}
	if spec.Cluster != nil && s.cfg.DataDir == "" {
		writeError(w, http.StatusBadRequest, "run.cluster",
			"cluster execution needs a durable journal, but this daemon has no data directory")
		return
	}

	now := time.Now().UTC()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "", "server is shutting down")
		return
	}
	s.seq++
	id := fmt.Sprintf("c%s-%04d", now.Format("20060102-150405"), s.seq)
	ctx, cancel := context.WithCancel(s.baseCtx)
	c := &Campaign{
		ID:        id,
		Name:      spec.Name,
		Spec:      spec,
		Submitted: now,
		cancel:    cancel,
		events:    tightsched.NewSweepBroadcaster(0),
		done:      make(chan struct{}),
		state:     StatePending,
	}
	if spec.Journal && s.cfg.DataDir != "" {
		c.journalPath = filepath.Join(s.cfg.DataDir, id+".journal")
	}
	s.campaigns[id] = c
	s.order = append(s.order, id)
	s.metrics.campaignsSubmitted.Add(1)
	s.wg.Add(1)
	s.mu.Unlock()

	switch {
	case spec.Cluster != nil:
		go s.runClusterCampaign(ctx, c)
	case spec.Grid != nil:
		go s.runGridCampaign(ctx, c)
	default:
		go s.runCampaign(ctx, c)
	}
	writeJSON(w, http.StatusAccepted, c.Status(time.Now().UTC()))
}

// runCampaign executes one campaign on the runner pool.
func (s *Server) runCampaign(ctx context.Context, c *Campaign) {
	defer s.wg.Done()
	// Queue for a runner slot; cancellation while pending (DELETE or
	// shutdown) resolves the campaign without running anything.
	select {
	case s.slots <- struct{}{}:
		defer func() { <-s.slots }()
	case <-ctx.Done():
		c.finish(ctx, ctx.Err(), nil, time.Now().UTC())
		return
	}
	if ctx.Err() != nil {
		c.finish(ctx, ctx.Err(), nil, time.Now().UTC())
		return
	}
	c.markRunning(time.Now().UTC())

	opts := []tightsched.Option{
		tightsched.WithObserver(metricsObserver{observer{c}, &s.metrics}),
	}
	if c.Spec.Shard.Count > 1 {
		opts = append(opts, tightsched.WithShard(c.Spec.Shard))
	}
	var journal *tightsched.SweepJournal
	if c.journalPath != "" {
		var err error
		journal, err = tightsched.CreateSweepJournalFormat(c.journalPath, c.Spec.Sweep, c.Spec.Shard, c.Spec.Format)
		if err != nil {
			c.finish(ctx, err, nil, time.Now().UTC())
			return
		}
		opts = append(opts, tightsched.WithJournal(journal))
	}

	session := tightsched.NewSession()
	res, err := session.RunSweep(ctx, c.Spec.Sweep, opts...)
	if journal != nil {
		if cerr := journal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	c.finish(ctx, err, res, time.Now().UTC())
}

// runGridCampaign executes one online grid campaign on the runner pool:
// the grid-journal mirror of runCampaign, with progress forwarded to the
// SSE broadcaster and live engine telemetry feeding the daemon's
// tightsched_grid_* metric families.
func (s *Server) runGridCampaign(ctx context.Context, c *Campaign) {
	defer s.wg.Done()
	select {
	case s.slots <- struct{}{}:
		defer func() { <-s.slots }()
	case <-ctx.Done():
		c.finish(ctx, ctx.Err(), nil, time.Now().UTC())
		return
	}
	if ctx.Err() != nil {
		c.finish(ctx, ctx.Err(), nil, time.Now().UTC())
		return
	}
	c.markRunning(time.Now().UTC())

	g := *c.Spec.Grid
	obs := observer{c}
	opts := []tightsched.Option{
		tightsched.WithProgress(func(done, total int) {
			obs.OnProgress(tightsched.Progress{Completed: done, Total: total})
		}),
		tightsched.WithGridTelemetry(gridTelemetry{&s.metrics}),
	}
	var journal *tightsched.OnlineJournal
	if c.journalPath != "" {
		var err error
		journal, err = tightsched.CreateOnlineJournalFormat(c.journalPath, g, c.Spec.Format)
		if err != nil {
			c.finish(ctx, err, nil, time.Now().UTC())
			return
		}
		opts = append(opts, tightsched.WithOnlineJournal(journal))
	}

	session := tightsched.NewSession()
	res, err := session.RunOnline(ctx, g, opts...)
	if journal != nil {
		if cerr := journal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	c.finish(ctx, err, res, time.Now().UTC())
}

// metricsObserver layers the daemon-lifetime counters on top of the
// campaign's own observer.
type metricsObserver struct {
	observer
	m *serverMetrics
}

func (o metricsObserver) OnInstanceDone(ev tightsched.InstanceDone) {
	if !ev.Replayed {
		o.m.instancesCompleted.Add(1)
	}
	o.observer.OnInstanceDone(ev)
}

func (o metricsObserver) OnPointDone(ev tightsched.PointDone) {
	if ev.Cache != nil {
		o.m.memoHits.Add(ev.Cache.MemoHits)
		o.m.memoMisses.Add(ev.Cache.MemoMisses)
		o.m.decisionHits.Add(ev.Cache.DecisionHits)
		o.m.decisionMisses.Add(ev.Cache.DecisionMisses)
	}
	o.observer.OnPointDone(ev)
}

// campaign resolves {id} or writes a 404.
func (s *Server) campaign(w http.ResponseWriter, r *http.Request) *Campaign {
	id := r.PathValue("id")
	s.mu.Lock()
	c := s.campaigns[id]
	s.mu.Unlock()
	if c == nil {
		writeError(w, http.StatusNotFound, "", fmt.Sprintf("no campaign %q", id))
		return nil
	}
	return c
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	now := time.Now().UTC()
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	table := make(map[string]*Campaign, len(s.campaigns))
	for id, c := range s.campaigns {
		table[id] = c
	}
	s.mu.Unlock()
	statuses := make([]Status, 0, len(ids))
	for _, id := range ids {
		statuses = append(statuses, table[id].Status(now))
	}
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": statuses})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if c := s.campaign(w, r); c != nil {
		writeJSON(w, http.StatusOK, c.Status(time.Now().UTC()))
	}
}

// handleCancel stops a campaign. Cancellation is asymptotic — the
// response reports the state observed after the request; poll status (or
// watch the SSE stream's final state event) for the terminal state. The
// journal keeps every completed instance: resuming it completes the
// campaign bit-identically to an uninterrupted run.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(w, r)
	if c == nil {
		return
	}
	if c.State().Terminal() {
		writeJSON(w, http.StatusOK, c.Status(time.Now().UTC()))
		return
	}
	c.Cancel()
	// Give a fast campaign a moment to resolve so small cancels read
	// back terminal immediately; slow ones report their in-flight state.
	select {
	case <-c.Done():
	case <-time.After(200 * time.Millisecond):
	}
	writeJSON(w, http.StatusAccepted, c.Status(time.Now().UTC()))
}

// handleTable serves a finished campaign's Table artifact — byte-for-byte
// the text cmd/tables prints for the same spec (both render through
// tightsched.RenderTableArtifact).
func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(w, r)
	if c == nil {
		return
	}
	table, err := strconv.Atoi(r.PathValue("table"))
	if err != nil || table < 1 || table > 4 {
		writeError(w, http.StatusNotFound, "", fmt.Sprintf("no table %q (tables are 1, 2, 3 and 4)", r.PathValue("table")))
		return
	}
	res := c.Result()
	if res == nil {
		writeError(w, http.StatusConflict, "",
			fmt.Sprintf("campaign %s is %s; tables are available once succeeded", c.ID, c.State()))
		return
	}
	artifact, err := tightsched.RenderTableArtifact(res, table)
	if err != nil {
		writeError(w, http.StatusConflict, "", err.Error())
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, artifact)
}

// handleEvents streams the campaign over SSE: a "state" snapshot on
// subscribe, then live "instance" / "point" / "progress" events, then a
// final "state" event when the campaign resolves. Subscribing to a
// finished campaign yields the final state immediately. Slow consumers
// are dropped (the campaign is never backpressured); the drop is visible
// as an unclean connection close and in the sse_dropped metric.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	c := s.campaign(w, r)
	if c == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "", "streaming unsupported by this connection")
		return
	}
	// Subscribe before the snapshot: events arriving between the two are
	// buffered, so the client misses nothing (duplicates resolve by
	// last-write-wins on counters).
	sub := c.events.Subscribe()
	defer sub.Cancel()
	s.metrics.sseSubscribed.Add(1)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	if !writeSSE(w, flusher, "state", c.Status(time.Now().UTC())) {
		return
	}

	heartbeat := time.NewTicker(s.cfg.Heartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				// Broadcaster closed (campaign resolved) or this
				// subscriber lagged out.
				if sub.Lagged() {
					s.metrics.sseDropped.Add(1)
					return
				}
				writeSSE(w, flusher, "state", c.Status(time.Now().UTC()))
				return
			}
			if !writeSSEEvent(w, flusher, ev) {
				return
			}
		case <-c.Done():
			// Drain events already buffered, then emit the final state.
			for {
				ev, ok := <-sub.Events()
				if !ok {
					break
				}
				if !writeSSEEvent(w, flusher, ev) {
					return
				}
			}
			if sub.Lagged() {
				s.metrics.sseDropped.Add(1)
				return
			}
			writeSSE(w, flusher, "state", c.Status(time.Now().UTC()))
			return
		case <-heartbeat.C:
			if _, err := io.WriteString(w, ": keep-alive\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSEEvent renders one campaign event as a named SSE message.
func writeSSEEvent(w io.Writer, flusher http.Flusher, ev tightsched.SweepEvent) bool {
	switch ev := ev.(type) {
	case tightsched.InstanceDone:
		return writeSSE(w, flusher, "instance", map[string]any{
			"model":     ev.Instance.Model,
			"ncom":      ev.Instance.Point.Ncom,
			"wmin":      ev.Instance.Point.Wmin,
			"scenario":  ev.Instance.Point.Scenario,
			"trial":     ev.Instance.Trial,
			"heuristic": ev.Instance.Heuristic,
			"makespan":  ev.Instance.Makespan,
			"failed":    ev.Instance.Failed,
			"replayed":  ev.Replayed,
			"completed": ev.Completed,
			"total":     ev.Total,
		})
	case tightsched.PointDone:
		body := map[string]any{
			"model":           ev.Model,
			"ncom":            ev.Point.Ncom,
			"wmin":            ev.Point.Wmin,
			"scenario":        ev.Point.Scenario,
			"completedPoints": ev.CompletedPoints,
			"totalPoints":     ev.TotalPoints,
		}
		if ev.Cache != nil {
			body["cache"] = ev.Cache
		}
		return writeSSE(w, flusher, "point", body)
	case tightsched.Progress:
		return writeSSE(w, flusher, "progress", map[string]any{
			"completed": ev.Completed,
			"total":     ev.Total,
		})
	default:
		return true
	}
}

// writeSSE emits one SSE message and reports whether the connection is
// still writable.
func writeSSE(w io.Writer, flusher http.Flusher, event string, payload any) bool {
	data, err := json.Marshal(payload)
	if err != nil {
		return false
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
		return false
	}
	flusher.Flush()
	return true
}

// handleMetrics is the Prometheus-style exposition: hand-rendered text
// format (the module takes no dependencies), one family per line group.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	now := time.Now().UTC()
	s.mu.Lock()
	byState := map[State]int{}
	type wall struct {
		id      string
		state   State
		seconds float64
	}
	walls := make([]wall, 0, len(s.order))
	for _, id := range s.order {
		st := s.campaigns[id].Status(now)
		byState[st.State]++
		walls = append(walls, wall{id, st.State, st.WallSeconds})
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP tightsched_campaigns Campaigns by lifecycle state.\n")
	fmt.Fprintf(w, "# TYPE tightsched_campaigns gauge\n")
	for _, st := range []State{StatePending, StateRunning, StateSucceeded, StateFailed, StateCancelled} {
		fmt.Fprintf(w, "tightsched_campaigns{state=%q} %d\n", st, byState[st])
	}
	fmt.Fprintf(w, "# HELP tightsched_campaigns_submitted_total Campaigns accepted since daemon start.\n")
	fmt.Fprintf(w, "# TYPE tightsched_campaigns_submitted_total counter\n")
	fmt.Fprintf(w, "tightsched_campaigns_submitted_total %d\n", s.metrics.campaignsSubmitted.Load())
	fmt.Fprintf(w, "# HELP tightsched_instances_completed_total Simulated campaign instances completed (journal replays excluded).\n")
	fmt.Fprintf(w, "# TYPE tightsched_instances_completed_total counter\n")
	fmt.Fprintf(w, "tightsched_instances_completed_total %d\n", s.metrics.instancesCompleted.Load())
	fmt.Fprintf(w, "# HELP tightsched_cache_lookups_total Batched-cell cache traffic by cache and outcome.\n")
	fmt.Fprintf(w, "# TYPE tightsched_cache_lookups_total counter\n")
	fmt.Fprintf(w, "tightsched_cache_lookups_total{cache=\"memo\",outcome=\"hit\"} %d\n", s.metrics.memoHits.Load())
	fmt.Fprintf(w, "tightsched_cache_lookups_total{cache=\"memo\",outcome=\"miss\"} %d\n", s.metrics.memoMisses.Load())
	fmt.Fprintf(w, "tightsched_cache_lookups_total{cache=\"decision\",outcome=\"hit\"} %d\n", s.metrics.decisionHits.Load())
	fmt.Fprintf(w, "tightsched_cache_lookups_total{cache=\"decision\",outcome=\"miss\"} %d\n", s.metrics.decisionMisses.Load())
	fmt.Fprintf(w, "# HELP tightsched_grid_queue_depth Applications waiting for admission across running online grid campaigns.\n")
	fmt.Fprintf(w, "# TYPE tightsched_grid_queue_depth gauge\n")
	fmt.Fprintf(w, "tightsched_grid_queue_depth %d\n", s.metrics.gridQueueDepth.Load())
	fmt.Fprintf(w, "# HELP tightsched_grid_running_apps Applications currently holding processor blocks across running online grid campaigns.\n")
	fmt.Fprintf(w, "# TYPE tightsched_grid_running_apps gauge\n")
	fmt.Fprintf(w, "tightsched_grid_running_apps %d\n", s.metrics.gridRunning.Load())
	fmt.Fprintf(w, "# HELP tightsched_grid_deadline_misses_total Applications finished past their deadline (or never finished) in online grid campaigns.\n")
	fmt.Fprintf(w, "# TYPE tightsched_grid_deadline_misses_total counter\n")
	fmt.Fprintf(w, "tightsched_grid_deadline_misses_total %d\n", s.metrics.gridDeadlineMisses.Load())
	fmt.Fprintf(w, "# HELP tightsched_sse_subscriptions_total SSE subscriptions accepted.\n")
	fmt.Fprintf(w, "# TYPE tightsched_sse_subscriptions_total counter\n")
	fmt.Fprintf(w, "tightsched_sse_subscriptions_total %d\n", s.metrics.sseSubscribed.Load())
	fmt.Fprintf(w, "# HELP tightsched_sse_dropped_total SSE subscribers dropped for lagging.\n")
	fmt.Fprintf(w, "# TYPE tightsched_sse_dropped_total counter\n")
	fmt.Fprintf(w, "tightsched_sse_dropped_total %d\n", s.metrics.sseDropped.Load())
	cl := s.clusterMetrics()
	fmt.Fprintf(w, "# HELP tightsched_cluster_units Cluster work units by lease state, across campaigns.\n")
	fmt.Fprintf(w, "# TYPE tightsched_cluster_units gauge\n")
	fmt.Fprintf(w, "tightsched_cluster_units{state=\"available\"} %d\n", cl.Available)
	fmt.Fprintf(w, "tightsched_cluster_units{state=\"leased\"} %d\n", cl.Leased)
	fmt.Fprintf(w, "tightsched_cluster_units{state=\"done\"} %d\n", cl.UnitsDone)
	fmt.Fprintf(w, "# HELP tightsched_cluster_workers Distinct workers holding live leases.\n")
	fmt.Fprintf(w, "# TYPE tightsched_cluster_workers gauge\n")
	fmt.Fprintf(w, "tightsched_cluster_workers %d\n", cl.Workers)
	fmt.Fprintf(w, "# HELP tightsched_cluster_leases_total Lease lifecycle transitions by kind.\n")
	fmt.Fprintf(w, "# TYPE tightsched_cluster_leases_total counter\n")
	fmt.Fprintf(w, "tightsched_cluster_leases_total{event=\"granted\"} %d\n", cl.Granted)
	fmt.Fprintf(w, "tightsched_cluster_leases_total{event=\"expired\"} %d\n", cl.Expired)
	fmt.Fprintf(w, "tightsched_cluster_leases_total{event=\"requeued\"} %d\n", cl.Requeued)
	fmt.Fprintf(w, "tightsched_cluster_leases_total{event=\"resharded\"} %d\n", cl.Resharded)
	fmt.Fprintf(w, "# HELP tightsched_cluster_heartbeats_total Lease heartbeats received.\n")
	fmt.Fprintf(w, "# TYPE tightsched_cluster_heartbeats_total counter\n")
	fmt.Fprintf(w, "tightsched_cluster_heartbeats_total %d\n", cl.Heartbeats)
	fmt.Fprintf(w, "# HELP tightsched_cluster_uploads_total Uploaded instances by ingest outcome.\n")
	fmt.Fprintf(w, "# TYPE tightsched_cluster_uploads_total counter\n")
	fmt.Fprintf(w, "tightsched_cluster_uploads_total{outcome=\"accepted\"} %d\n", cl.Accepted)
	fmt.Fprintf(w, "tightsched_cluster_uploads_total{outcome=\"duplicate\"} %d\n", cl.Duplicates)
	fmt.Fprintf(w, "tightsched_cluster_uploads_total{outcome=\"conflict\"} %d\n", cl.Conflicts)
	fmt.Fprintf(w, "# HELP tightsched_campaign_wall_seconds Per-campaign execution wall clock.\n")
	fmt.Fprintf(w, "# TYPE tightsched_campaign_wall_seconds gauge\n")
	sort.Slice(walls, func(i, j int) bool { return walls[i].id < walls[j].id })
	for _, c := range walls {
		if c.seconds > 0 {
			fmt.Fprintf(w, "tightsched_campaign_wall_seconds{campaign=%q,state=%q} %.3f\n", c.id, c.state, c.seconds)
		}
	}
}

// writeJSON writes a JSON response.
func writeJSON(w http.ResponseWriter, status int, payload any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(payload)
}

// writeError writes the structured error envelope shared with spec
// validation: {"error": {"path": ..., "message": ...}}.
func writeError(w http.ResponseWriter, status int, path, message string) {
	writeJSON(w, status, map[string]any{"error": &SpecError{Path: path, Message: message}})
}
