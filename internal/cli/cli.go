// Package cli holds the few pieces every tightsched command shares: the
// signal-cancelled root context and the conventional exit codes. Keeping
// them in one place makes the exit discipline uniform across cmd/tables,
// cmd/offline, cmd/gridsim and the tightschedd service daemon — a
// SIGINT/SIGTERM anywhere cancels the root context, every layer below
// (campaign worker pools at instance boundaries, simulations at
// macro-step boundaries) winds down promptly, journals are flushed and
// closed before the process exits, and interactive interrupts report the
// conventional 128+SIGINT status.
package cli

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// ExitInterrupted is the conventional exit status of a command stopped by
// SIGINT/SIGTERM mid-work (128 + SIGINT). Daemons exit 0 on a clean
// signal-triggered shutdown instead: being told to stop is their normal
// end of life, not an interruption.
const ExitInterrupted = 130

// SignalContext derives a command's root context from parent: the first
// SIGINT or SIGTERM cancels it (and the returned stop func restores
// default signal behavior, so a second signal kills a wedged process the
// hard way).
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}
