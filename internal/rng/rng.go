// Package rng provides small, deterministic, splittable pseudo-random
// number generators for reproducible simulation experiments.
//
// The experiment harness needs three properties that the global
// math/rand generator does not give directly:
//
//  1. Every trial must be a pure function of a (scenario, trial) seed pair,
//     so that any instance of the 6,000-instance sweep can be re-run in
//     isolation and produce the same availability realization.
//  2. Independent streams must be cheaply derivable from a parent stream
//     (for example, one stream per processor, one for the RANDOM heuristic),
//     without the streams being correlated.
//  3. The generator must be safe to use from many goroutines at once as
//     long as each goroutine owns its own Stream.
//
// The implementation is xoshiro256** seeded through SplitMix64, the
// initialization recommended by the xoshiro authors. Both algorithms are
// public domain and implemented here from the published reference code.
package rng

import "math"

// splitmix64 advances a 64-bit SplitMix64 state and returns the next output.
// It is used for seeding and for deriving child stream seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stream is a deterministic pseudo-random stream (xoshiro256**).
// The zero value is not valid; use New or Stream.Split.
type Stream struct {
	s [4]uint64
}

// New returns a Stream seeded from the given 64-bit seed.
// Distinct seeds yield independent-looking streams.
func New(seed uint64) *Stream {
	var st Stream
	sm := seed
	for i := range st.s {
		st.s[i] = splitmix64(&sm)
	}
	// xoshiro256** must not be seeded with the all-zero state.
	if st.s[0]|st.s[1]|st.s[2]|st.s[3] == 0 {
		st.s[0] = 0x9e3779b97f4a7c15
	}
	return &st
}

// NewKeyed returns a Stream derived from a seed and a sequence of keys.
// It is a convenience for deriving per-(scenario, trial, purpose) streams:
// streams created with different key sequences are decorrelated.
func NewKeyed(seed uint64, keys ...uint64) *Stream {
	sm := seed
	mixed := splitmix64(&sm)
	for _, k := range keys {
		sm ^= k * 0x9e3779b97f4a7c15
		mixed = splitmix64(&sm) ^ (mixed << 1)
	}
	return New(mixed)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 pseudo-random bits.
func (s *Stream) Uint64() uint64 {
	result := rotl(s.s[1]*5, 7) * 9
	t := s.s[1] << 17
	s.s[2] ^= s.s[0]
	s.s[3] ^= s.s[1]
	s.s[1] ^= s.s[2]
	s.s[0] ^= s.s[3]
	s.s[2] ^= t
	s.s[3] = rotl(s.s[3], 45)
	return result
}

// Split returns a new Stream whose future outputs are independent of the
// parent's. The parent stream is advanced.
func (s *Stream) Split() *Stream {
	return New(s.Uint64() ^ 0xd1b54a32d192ed03)
}

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 {
	// 53 high-quality bits -> [0,1) with full double precision.
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform value in [lo, hi).
func (s *Stream) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// IntN returns a uniform integer in [0, n). It panics if n <= 0.
func (s *Stream) IntN(n int) int {
	if n <= 0 {
		panic("rng: IntN called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	v := s.Uint64()
	hi, lo := mul64(v, uint64(n))
	if lo < uint64(n) {
		thresh := uint64(-int64(n)) % uint64(n)
		for lo < thresh {
			v = s.Uint64()
			hi, lo = mul64(v, uint64(n))
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	aLo, aHi := a&mask32, a>>32
	bLo, bHi := b&mask32, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += aLo * bHi
	hi = aHi*bHi + w2 + (w1 >> 32)
	lo = a * b
	return hi, lo
}

// IntRange returns a uniform integer in the inclusive range [lo, hi].
// It panics if hi < lo.
func (s *Stream) IntRange(lo, hi int) int {
	if hi < lo {
		panic("rng: IntRange with hi < lo")
	}
	return lo + s.IntN(hi-lo+1)
}

// Perm returns a pseudo-random permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.IntN(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function, following the Fisher-Yates algorithm.
func (s *Stream) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.IntN(i + 1)
		swap(i, j)
	}
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (s *Stream) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Categorical samples an index i with probability weights[i] / sum(weights).
// It panics if weights is empty, contains a negative or non-finite value,
// or sums to zero.
func (s *Stream) Categorical(weights []float64) int {
	if len(weights) == 0 {
		panic("rng: Categorical with empty weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			panic("rng: Categorical with invalid weight")
		}
		total += w
	}
	if total <= 0 {
		panic("rng: Categorical with zero total weight")
	}
	x := s.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if x < acc {
			return i
		}
	}
	return len(weights) - 1
}
