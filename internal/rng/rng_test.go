package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at step %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("streams with different seeds produced %d identical outputs", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	s := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[s.Uint64()] = true
	}
	if len(seen) < 90 {
		t.Fatalf("zero-seeded stream looks degenerate: %d distinct values of 100", len(seen))
	}
}

func TestNewKeyedIndependence(t *testing.T) {
	a := NewKeyed(7, 1, 2)
	b := NewKeyed(7, 1, 3)
	c := NewKeyed(7, 2, 2)
	ax, bx, cx := a.Uint64(), b.Uint64(), c.Uint64()
	if ax == bx || ax == cx || bx == cx {
		t.Fatalf("keyed streams collided: %x %x %x", ax, bx, cx)
	}
	// Same keys must reproduce.
	if got := NewKeyed(7, 1, 2).Uint64(); got != ax {
		t.Fatalf("NewKeyed not deterministic: %x vs %x", got, ax)
	}
}

func TestSplitDecorrelates(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	matches := 0
	for i := 0; i < 200; i++ {
		if parent.Uint64() == child.Uint64() {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("parent and split child matched %d times", matches)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestUniformRange(t *testing.T) {
	s := New(5)
	for i := 0; i < 10000; i++ {
		v := s.Uniform(0.90, 0.99)
		if v < 0.90 || v >= 0.99 {
			t.Fatalf("Uniform(0.90,0.99) out of range: %v", v)
		}
	}
}

func TestIntNBounds(t *testing.T) {
	s := New(6)
	if err := quick.Check(func(raw uint16) bool {
		n := int(raw%1000) + 1
		v := s.IntN(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntNUniformity(t *testing.T) {
	s := New(7)
	const n = 10
	counts := make([]int, n)
	const draws = 100000
	for i := 0; i < draws; i++ {
		counts[s.IntN(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d count %d deviates from %v by more than 5%%", i, c, want)
		}
	}
}

func TestIntNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntN(0) did not panic")
		}
	}()
	New(1).IntN(0)
}

func TestIntRange(t *testing.T) {
	s := New(8)
	for i := 0; i < 10000; i++ {
		v := s.IntRange(3, 7)
		if v < 3 || v > 7 {
			t.Fatalf("IntRange(3,7) out of range: %d", v)
		}
	}
	// Degenerate single-point range.
	if v := s.IntRange(5, 5); v != 5 {
		t.Fatalf("IntRange(5,5) = %d", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(9)
	for n := 0; n <= 20; n++ {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	s := New(10)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	s.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("Shuffle changed element multiset: %v", xs)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	s := New(11)
	for i := 0; i < 100; i++ {
		if s.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !s.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	s := New(12)
	const p = 0.3
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if s.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("Bernoulli(0.3) empirical rate %v", rate)
	}
}

func TestCategorical(t *testing.T) {
	s := New(13)
	w := []float64{1, 2, 7}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[s.Categorical(w)]++
	}
	for i, want := range []float64{0.1, 0.2, 0.7} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("Categorical bucket %d rate %v, want %v", i, got, want)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	cases := [][]float64{{}, {0, 0}, {-1, 2}, {math.NaN()}}
	for _, w := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Categorical(%v) did not panic", w)
				}
			}()
			New(1).Categorical(w)
		}()
	}
}

func TestMul64(t *testing.T) {
	cases := []struct {
		a, b   uint64
		hi, lo uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64 - 1, 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Fatalf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= s.Uint64()
	}
	_ = sink
}

func BenchmarkIntN(b *testing.B) {
	s := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink ^= s.IntN(20)
	}
	_ = sink
}
