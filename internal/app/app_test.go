package app

import (
	"testing"
	"testing/quick"
)

func TestApplicationValidate(t *testing.T) {
	good := Application{Tasks: 5, Tprog: 10, Tdata: 2, Iterations: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	// Communication-free applications are legal (off-line instances).
	free := Application{Tasks: 1, Iterations: 1}
	if err := free.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Application{
		{Tasks: 0, Iterations: 1},
		{Tasks: 1, Tprog: -1, Iterations: 1},
		{Tasks: 1, Tdata: -1, Iterations: 1},
		{Tasks: 1, Iterations: 0},
	} {
		if bad.Validate() == nil {
			t.Fatalf("accepted invalid application %+v", bad)
		}
	}
}

func TestAssignmentBasics(t *testing.T) {
	as := Assignment{0, 2, 1, 0}
	if as.TaskCount() != 3 {
		t.Fatalf("task count %d", as.TaskCount())
	}
	en := as.Enrolled()
	if len(en) != 2 || en[0] != 1 || en[1] != 2 {
		t.Fatalf("enrolled %v", en)
	}
	c := as.Clone()
	c[1] = 9
	if as[1] != 2 {
		t.Fatal("Clone aliases the original")
	}
	if !as.Equal(Assignment{0, 2, 1, 0}) || as.Equal(c) || as.Equal(Assignment{0, 2, 1}) {
		t.Fatal("Equal misbehaves")
	}
}

func TestWorkload(t *testing.T) {
	speeds := []int{1, 2, 3, 4}
	// Worker 1 runs 2 tasks at speed 2 (4 slots); worker 2 runs 2 at
	// speed 3 (6 slots); worker 3 runs 1 at speed 4. This is the paper's
	// Figure 1 configuration: W = 6.
	as := Assignment{0, 2, 2, 1}
	if w := as.Workload(speeds); w != 6 {
		t.Fatalf("workload %d, want 6", w)
	}
	if w := (Assignment{0, 0, 0, 0}).Workload(speeds); w != 0 {
		t.Fatalf("empty workload %d", w)
	}
}

func TestWorkloadSizeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch did not panic")
		}
	}()
	Assignment{1}.Workload([]int{1, 2})
}

func TestAssignmentValidate(t *testing.T) {
	caps := []int{1, 2, 2}
	if err := (Assignment{1, 2, 1}).Validate(4, caps); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		as Assignment
		m  int
	}{
		{Assignment{1, 1}, 2},     // wrong length
		{Assignment{-1, 2, 3}, 4}, // negative
		{Assignment{2, 0, 0}, 2},  // over capacity
		{Assignment{1, 1, 1}, 4},  // wrong total
	}
	for _, c := range cases {
		if c.as.Validate(c.m, caps) == nil {
			t.Fatalf("accepted invalid assignment %v (m=%d)", c.as, c.m)
		}
	}
}

// Property: workload is monotone — adding a task never decreases W, and
// W is always realized by some enrolled worker.
func TestWorkloadProperties(t *testing.T) {
	if err := quick.Check(func(xsRaw [6]uint8, q uint8, speedsRaw [6]uint8) bool {
		as := make(Assignment, 6)
		speeds := make([]int, 6)
		for i := range as {
			as[i] = int(xsRaw[i] % 4)
			speeds[i] = int(speedsRaw[i]%9) + 1
		}
		w := as.Workload(speeds)
		// Realizability.
		if w != 0 {
			found := false
			for i, x := range as {
				if x > 0 && x*speeds[i] == w {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		// Monotonicity.
		bumped := as.Clone()
		bumped[int(q)%6]++
		return bumped.Workload(speeds) >= w
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAssignmentString(t *testing.T) {
	if (Assignment{1, 0}).String() != "Assignment[1 0]" {
		t.Fatalf("string form %q", Assignment{1, 0}.String())
	}
}
