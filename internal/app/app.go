// Package app models the tightly-coupled iterative application of
// Section III.A: a sequence of iterations, each executing m identical,
// communicating tasks followed by a global synchronization. Before
// computing, every enrolled worker must hold the application program
// (Tprog slots of master communication, needed once per worker unless it
// goes DOWN) and one data message per assigned task (Tdata slots each,
// needed anew every iteration).
package app

import "fmt"

// Application describes one tightly-coupled iterative application in
// time-slot units. Tprog = Vprog/bw and Tdata = Vdata/bw are assumed to be
// integral numbers of slots, as in the paper.
type Application struct {
	// Tasks is m, the number of identical coupled tasks per iteration.
	Tasks int
	// Tprog is the number of communication slots to download the program.
	Tprog int
	// Tdata is the number of communication slots per task-data message.
	Tdata int
	// Iterations is the number of iterations to complete (the paper's
	// experiments fix 10 and measure the makespan).
	Iterations int
}

// Validate checks the application parameters. Tprog and Tdata may be zero
// (the off-line complexity section uses communication-free instances) but
// not negative.
func (a Application) Validate() error {
	if a.Tasks <= 0 {
		return fmt.Errorf("app: %d tasks, want positive", a.Tasks)
	}
	if a.Tprog < 0 || a.Tdata < 0 {
		return fmt.Errorf("app: negative communication times (Tprog=%d, Tdata=%d)", a.Tprog, a.Tdata)
	}
	if a.Iterations <= 0 {
		return fmt.Errorf("app: %d iterations, want positive", a.Iterations)
	}
	return nil
}

// Assignment maps tasks onto processors: Assignment[q] = x_q is the number
// of tasks given to processor q. Its length is the platform size.
type Assignment []int

// Clone returns a copy of the assignment.
func (as Assignment) Clone() Assignment {
	c := make(Assignment, len(as))
	copy(c, as)
	return c
}

// TaskCount returns Σ x_q.
func (as Assignment) TaskCount() int {
	total := 0
	for _, x := range as {
		total += x
	}
	return total
}

// Enrolled returns the indices q with x_q > 0, in increasing order.
func (as Assignment) Enrolled() []int {
	var out []int
	for q, x := range as {
		if x > 0 {
			out = append(out, q)
		}
	}
	return out
}

// Workload returns W = max_q x_q·w_q, the number of simultaneous all-UP
// compute slots the configuration needs to finish an iteration: the tasks
// progress in locked steps at the pace of the most loaded worker.
// speeds[q] is w_q. An empty assignment has workload 0.
func (as Assignment) Workload(speeds []int) int {
	if len(as) != len(speeds) {
		panic(fmt.Sprintf("app: assignment size %d != speeds size %d", len(as), len(speeds)))
	}
	w := 0
	for q, x := range as {
		if x > 0 && x*speeds[q] > w {
			w = x * speeds[q]
		}
	}
	return w
}

// Equal reports whether two assignments give every processor the same
// number of tasks.
func (as Assignment) Equal(other Assignment) bool {
	if len(as) != len(other) {
		return false
	}
	for q := range as {
		if as[q] != other[q] {
			return false
		}
	}
	return true
}

// Validate checks that the assignment carries exactly m tasks and respects
// the capacity vector.
func (as Assignment) Validate(m int, capacities []int) error {
	if len(as) != len(capacities) {
		return fmt.Errorf("app: assignment size %d != platform size %d", len(as), len(capacities))
	}
	total := 0
	for q, x := range as {
		if x < 0 {
			return fmt.Errorf("app: negative task count on processor %d", q)
		}
		if x > capacities[q] {
			return fmt.Errorf("app: processor %d assigned %d tasks, capacity %d", q, x, capacities[q])
		}
		total += x
	}
	if total != m {
		return fmt.Errorf("app: assignment carries %d tasks, want %d", total, m)
	}
	return nil
}

func (as Assignment) String() string {
	return fmt.Sprintf("Assignment%v", []int(as))
}
