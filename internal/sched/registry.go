package sched

import (
	"fmt"
	"sort"
	"sync"
)

// This file is the open heuristic registry: every heuristic the simulator
// can run by name — the paper's 17, the extension baselines, and anything
// a user plugs in — lives behind one string-keyed table. The built-in
// heuristics self-register at package init, so Build, sweep validation
// and the façade's name listings all read the same source of truth, and a
// Register call from outside this package makes a new policy available to
// Run, Compare and every sweep axis without touching internal/sched.

// Factory constructs a heuristic instance over one run's environment. A
// factory is called once per simulation run; the returned heuristic may
// be stateful (most built-ins carry scratch buffers) and is never shared
// across runs.
type Factory func(env *Env) (Heuristic, error)

var registry = struct {
	sync.RWMutex
	factories map[string]Factory
}{factories: map[string]Factory{}}

// Register makes a heuristic constructible by name through Build (and
// therefore through every layer above: simulator configs, sweep axes, the
// façade Session). It errors on an empty name, a nil factory, or a name
// already taken — built-in names included.
func Register(name string, f Factory) error {
	if name == "" {
		return fmt.Errorf("sched: Register with empty heuristic name")
	}
	if f == nil {
		return fmt.Errorf("sched: Register(%q) with nil factory", name)
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.factories[name]; dup {
		return fmt.Errorf("sched: heuristic %q already registered", name)
	}
	registry.factories[name] = f
	return nil
}

// MustRegister is Register that panics on error, for init-time
// registration of a package's own heuristics.
func MustRegister(name string, f Factory) {
	if err := Register(name, f); err != nil {
		panic(err)
	}
}

// Lookup returns the registered factory for the name.
func Lookup(name string) (Factory, bool) {
	registry.RLock()
	defer registry.RUnlock()
	f, ok := registry.factories[name]
	return f, ok
}

// Registered returns the names of every registered heuristic, sorted. The
// slice is a fresh copy: callers may mutate it freely.
func Registered() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.factories))
	for name := range registry.factories {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// init registers the paper's 17 heuristics and the extension baselines,
// so the registry is the single lookup path for every name.
func init() {
	for _, name := range Names() {
		MustRegister(name, builtinFactory(name))
	}
	for _, name := range ExtendedNames() {
		MustRegister(name, builtinFactory(name))
	}
}

// builtinFactory adapts the built-in constructors to the Factory shape.
func builtinFactory(name string) Factory {
	return func(env *Env) (Heuristic, error) { return buildBuiltin(name, env) }
}
