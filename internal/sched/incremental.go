package sched

import (
	"math"

	"tightsched/internal/analytic"
	"tightsched/internal/app"
)

// incremental is a passive heuristic of Section VI.A: it keeps the current
// configuration until the engine clears it (a worker went DOWN or the
// iteration completed), and otherwise builds a configuration by assigning
// the m tasks one at a time, each to the UP worker that optimizes the
// heuristic's criterion over the partial configuration.
//
// The scratch fields are reused across Decide calls; heuristic instances
// are therefore not safe for concurrent use (each simulation builds its
// own, see Build).
type incremental struct {
	env  *Env
	crit Criterion
	name string

	ups     []int
	needs   []int // fresh comm need of each enrolled worker
	expComm []float64
	speeds  []int
	se      *analytic.SetEval
}

// Name implements Heuristic.
func (h *incremental) Name() string { return h.name }

// Decide implements Heuristic.
func (h *incremental) Decide(v *View) app.Assignment {
	if v.Current != nil {
		return v.Current
	}
	return h.build(v)
}

// DecideSpan implements SpanDecider. The heuristic is passive: with a
// configuration in place it always keeps it, and a fresh build depends
// only on the UP set and message-granularity retention — both constant
// over a homogeneous span (a non-nil build is adopted at the span's first
// slot, after which the keep branch applies; a nil build stays nil while
// the UP set stands still, since feasibility does not read Elapsed).
func (h *incremental) DecideSpan(v *View, n int64) (app.Assignment, int64) {
	return h.Decide(v), n
}

// build builds an assignment greedily, consulting the batch decision
// cache first when one is installed: a fresh build is a pure function of
// the cache key (criterion, UP set, fresh-build retention, elapsed under
// CritY), so a hit returns exactly the assignment this instance would
// have built — see DecisionCache.
func (h *incremental) build(v *View) app.Assignment {
	dc := h.env.Decisions
	if dc == nil {
		return h.buildFresh(v)
	}
	if asg, ok := dc.lookup(h.env, h.crit, v); ok {
		return asg
	}
	asg := h.buildFresh(v)
	dc.store(asg)
	return asg
}

// buildFresh builds an assignment greedily. It returns nil when the UP
// workers cannot host m tasks.
//
// Cost: m assignment steps, each scoring at most p candidates. Scoring a
// candidate takes one O(T) series pass for the compute estimate (through
// the incremental SetEval) plus O(|S|) for the communication estimate.
// Only the returned assignment is allocated; everything else lives in the
// heuristic's scratch buffers.
func (h *incremental) buildFresh(v *View) app.Assignment {
	env := h.env
	m := env.App.Tasks
	h.ups = upWorkersInto(h.ups, v.States)
	ups := h.ups
	if capacityOf(env, ups) < m {
		return nil
	}

	p := env.Platform.Size()
	if h.speeds == nil {
		h.speeds = env.Platform.Speeds()
	}
	speeds := h.speeds
	if cap(h.needs) < p {
		h.needs = make([]int, p)
		h.expComm = make([]float64, p)
	}
	needs, expComm := h.needs[:p], h.expComm[:p]
	for i := range needs {
		needs[i] = 0
		expComm[i] = 0
	}
	if h.se == nil {
		h.se = env.Analytic.NewSetEval()
	} else {
		h.se.Reset()
	}
	se := h.se
	asg := make(app.Assignment, p)

	workload := 0
	totalNeed := 0

	for task := 0; task < m; task++ {
		bestQ := -1
		bestScore := math.Inf(-1)
		for _, q := range ups {
			if asg[q] >= env.Platform.Procs[q].Capacity {
				continue
			}
			score := scoreCandidate(env, v, se, asg, q,
				speeds, workload, needs, expComm, totalNeed, h.crit)
			if score > bestScore {
				bestScore = score
				bestQ = q
			}
		}
		if bestQ < 0 {
			return nil
		}
		if !se.Contains(bestQ) {
			se.Add(bestQ)
		}
		asg[bestQ]++
		totalNeed -= needs[bestQ]
		needs[bestQ] = commNeedFresh(env, v.Workers[bestQ], asg[bestQ])
		totalNeed += needs[bestQ]
		expComm[bestQ] = env.expectedComm(bestQ, needs[bestQ])
		if l := asg[bestQ] * speeds[bestQ]; l > workload {
			workload = l
		}
	}
	return asg
}

// capacityOf returns the total task capacity of the given workers, capped
// at the application size to avoid overflow with unbounded capacities.
func capacityOf(env *Env, workers []int) int {
	m := env.App.Tasks
	total := 0
	for _, q := range workers {
		c := env.Platform.Procs[q].Capacity
		if c > m {
			c = m
		}
		total += c
		if total >= m {
			return m
		}
	}
	return total
}

// scoreCandidate evaluates the criterion for assigning one more task to
// worker q on top of the partial configuration (asg, se).
func scoreCandidate(env *Env, v *View, se *analytic.SetEval, asg app.Assignment,
	q int, speeds []int, workload int, needs []int, expComm []float64,
	totalNeed int, crit Criterion) float64 {

	x := asg[q] + 1
	w := workload
	if l := x * speeds[q]; l > w {
		w = l
	}
	needQ := commNeedFresh(env, v.Workers[q], x)
	expQ := env.expectedComm(q, needQ)

	// E_comm over S ∪ {q} with q's need replaced.
	maxSingle := expQ
	for _, mq := range se.Members() {
		if mq != q && expComm[mq] > maxSingle {
			maxSingle = expComm[mq]
		}
	}
	total := totalNeed - needs[q] + needQ
	ecomm := maxSingle
	if agg := float64(total) / float64(env.Platform.Ncom); agg > ecomm {
		ecomm = agg
	}

	// P_comm over S ∪ {q}.
	pcomm := 1.0
	inSet := se.Contains(q)
	if !inSet {
		pcomm = env.Analytic.Procs[q].SurviveQ(ecomm)
	}
	for _, mq := range se.Members() {
		pcomm *= env.Analytic.Procs[mq].SurviveQ(ecomm)
	}

	var st analytic.SetStats
	var powv float64
	if inSet {
		st, powv = se.StatsPow(w)
	} else {
		st, powv = se.CandidateStatsPow(q, w)
	}
	psucc, ecomp := env.successCompletionPow(st, w, powv)
	val := Value{
		P: pcomm * psucc,
		E: ecomm + ecomp,
		T: float64(v.Elapsed),
	}
	return crit.Score(val)
}
