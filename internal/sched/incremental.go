package sched

import (
	"math"

	"tightsched/internal/analytic"
	"tightsched/internal/app"
)

// incremental is a passive heuristic of Section VI.A: it keeps the current
// configuration until the engine clears it (a worker went DOWN or the
// iteration completed), and otherwise builds a configuration by assigning
// the m tasks one at a time, each to the UP worker that optimizes the
// heuristic's criterion over the partial configuration.
type incremental struct {
	env  *Env
	crit Criterion
	name string
}

// Name implements Heuristic.
func (h *incremental) Name() string { return h.name }

// Decide implements Heuristic.
func (h *incremental) Decide(v *View) app.Assignment {
	if v.Current != nil {
		return v.Current
	}
	return buildIncremental(h.env, v, h.crit)
}

// buildIncremental builds an assignment greedily. It returns nil when the
// UP workers cannot host m tasks.
//
// Cost: m assignment steps, each scoring at most p candidates. Scoring a
// candidate takes one O(T) series pass for the compute estimate (through
// the incremental SetEval) plus O(|S|) for the communication estimate.
func buildIncremental(env *Env, v *View, crit Criterion) app.Assignment {
	m := env.App.Tasks
	ups := upWorkers(v.States)
	if capacityOf(env, ups) < m {
		return nil
	}

	p := env.Platform.Size()
	speeds := env.Platform.Speeds()
	asg := make(app.Assignment, p)
	se := env.Analytic.NewSetEval()

	workload := 0
	needs := make([]int, p)       // fresh comm need of each enrolled worker
	expComm := make([]float64, p) // E^(Pq)(needs[q]) of each enrolled worker
	totalNeed := 0

	for task := 0; task < m; task++ {
		bestQ := -1
		bestScore := math.Inf(-1)
		for _, q := range ups {
			if asg[q] >= env.Platform.Procs[q].Capacity {
				continue
			}
			score := scoreCandidate(env, v, se, asg, q,
				speeds, workload, needs, expComm, totalNeed, crit)
			if score > bestScore {
				bestScore = score
				bestQ = q
			}
		}
		if bestQ < 0 {
			return nil
		}
		if !se.Contains(bestQ) {
			se.Add(bestQ)
		}
		asg[bestQ]++
		totalNeed -= needs[bestQ]
		needs[bestQ] = commNeedFresh(env, v.Workers[bestQ], asg[bestQ])
		totalNeed += needs[bestQ]
		expComm[bestQ] = env.expectedComm(bestQ, needs[bestQ])
		if l := asg[bestQ] * speeds[bestQ]; l > workload {
			workload = l
		}
	}
	return asg
}

// capacityOf returns the total task capacity of the given workers, capped
// at the application size to avoid overflow with unbounded capacities.
func capacityOf(env *Env, workers []int) int {
	m := env.App.Tasks
	total := 0
	for _, q := range workers {
		c := env.Platform.Procs[q].Capacity
		if c > m {
			c = m
		}
		total += c
		if total >= m {
			return m
		}
	}
	return total
}

// scoreCandidate evaluates the criterion for assigning one more task to
// worker q on top of the partial configuration (asg, se).
func scoreCandidate(env *Env, v *View, se *analytic.SetEval, asg app.Assignment,
	q int, speeds []int, workload int, needs []int, expComm []float64,
	totalNeed int, crit Criterion) float64 {

	x := asg[q] + 1
	w := workload
	if l := x * speeds[q]; l > w {
		w = l
	}
	needQ := commNeedFresh(env, v.Workers[q], x)
	expQ := env.expectedComm(q, needQ)

	// E_comm over S ∪ {q} with q's need replaced.
	maxSingle := expQ
	for _, mq := range se.Members() {
		if mq != q && expComm[mq] > maxSingle {
			maxSingle = expComm[mq]
		}
	}
	total := totalNeed - needs[q] + needQ
	ecomm := maxSingle
	if agg := float64(total) / float64(env.Platform.Ncom); agg > ecomm {
		ecomm = agg
	}

	// P_comm over S ∪ {q}.
	pcomm := 1.0
	inSet := se.Contains(q)
	if !inSet {
		pcomm = env.Analytic.Procs[q].SurviveQ(ecomm)
	}
	for _, mq := range se.Members() {
		pcomm *= env.Analytic.Procs[mq].SurviveQ(ecomm)
	}

	var st analytic.SetStats
	if inSet {
		st = se.Stats()
	} else {
		st = se.CandidateStats(q)
	}
	val := Value{
		P: pcomm * st.ProbSuccess(w),
		E: ecomm + env.completion(st, w),
		T: float64(v.Elapsed),
	}
	return crit.Score(val)
}
