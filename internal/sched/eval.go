package sched

import (
	"tightsched/internal/analytic"
	"tightsched/internal/app"
)

// commNeedFresh returns the communication slots worker q needs to run x
// tasks in a configuration chosen now, counting retention (program held,
// complete data messages held) but not partial message progress — the
// paper's incremental heuristics reason at message granularity.
func commNeedFresh(env *Env, w WorkerInfo, x int) int {
	need := 0
	if !w.HasProgram {
		need += env.App.Tprog
	}
	if missing := x - w.DataHeld; missing > 0 {
		need += missing * env.App.Tdata
	}
	return need
}

// commNeedCurrent returns the communication slots worker q still needs
// under the current configuration, counting partial in-flight progress
// (the engine's ground truth, used when re-scoring the running
// configuration for proactive comparisons).
func commNeedCurrent(env *Env, w WorkerInfo, x int) int {
	need := 0
	if !w.HasProgram {
		need += env.App.Tprog - w.ProgProgress
	}
	if missing := x - w.DataHeld; missing > 0 {
		need += missing*env.App.Tdata - w.DataProgress
	}
	if need < 0 {
		need = 0
	}
	return need
}

// evalScratch holds the reusable buffers of configuration re-scoring, so
// the per-slot proactive comparison allocates nothing. Set statistics
// themselves are memoized by membership inside analytic.Platform (the
// cache that replaced the old single-entry per-assignment statsCache
// here), so re-scoring any configuration the platform has seen before —
// not just the immediately previous one — costs a key lookup.
type evalScratch struct {
	needs    []analytic.CommNeed
	enrolled []int
	speeds   []int
}

// evalAssignment scores a configuration: the probability the iteration
// completes and its expected remaining duration, per Section V:
//
//	P = P_comm(S) · (P⁺(S))^{W−1},  E = E_comm(S) + E(S)(W)
//
// st holds the configuration's set statistics; needs gives the
// outstanding communication per enrolled worker; wrem is the remaining
// workload in compute slots; elapsed feeds the yield.
func evalAssignment(env *Env, st analytic.SetStats, needs []analytic.CommNeed, wrem int, elapsed int64) Value {
	cs := env.Analytic.CommEstimateForm(needs, env.Platform.Ncom, !env.RenewalE)
	psucc, ecomp := env.successCompletion(st, wrem)
	return Value{
		P: cs.Success * psucc,
		E: cs.Expected + ecomp,
		T: float64(elapsed),
	}
}

// evalCurrent scores the running configuration with progress folded in:
// remaining communication (including partial messages) and remaining
// workload.
func evalCurrent(env *Env, v *View, s *evalScratch) Value {
	s.needs, s.enrolled = s.needs[:0], s.enrolled[:0]
	for q, x := range v.Current {
		if x > 0 {
			s.enrolled = append(s.enrolled, q)
			if n := commNeedCurrent(env, v.Workers[q], x); n > 0 {
				s.needs = append(s.needs, analytic.CommNeed{Proc: q, Slots: n})
			}
		}
	}
	return evalAssignment(env, env.Analytic.StatsOf(s.enrolled), s.needs, v.RemainingWork, v.Elapsed)
}

// evalFresh scores a newly built configuration: full workload, fresh
// communication needs given retention.
func evalFresh(env *Env, v *View, asg app.Assignment, s *evalScratch) Value {
	s.needs, s.enrolled = s.needs[:0], s.enrolled[:0]
	for q, x := range asg {
		if x > 0 {
			s.enrolled = append(s.enrolled, q)
			if n := commNeedFresh(env, v.Workers[q], x); n > 0 {
				s.needs = append(s.needs, analytic.CommNeed{Proc: q, Slots: n})
			}
		}
	}
	if s.speeds == nil {
		s.speeds = env.Platform.Speeds()
	}
	return evalAssignment(env, env.Analytic.StatsOf(s.enrolled), s.needs, asg.Workload(s.speeds), v.Elapsed)
}
