package sched

import (
	"tightsched/internal/analytic"
	"tightsched/internal/app"
)

// commNeedFresh returns the communication slots worker q needs to run x
// tasks in a configuration chosen now, counting retention (program held,
// complete data messages held) but not partial message progress — the
// paper's incremental heuristics reason at message granularity.
func commNeedFresh(env *Env, w WorkerInfo, x int) int {
	need := 0
	if !w.HasProgram {
		need += env.App.Tprog
	}
	if missing := x - w.DataHeld; missing > 0 {
		need += missing * env.App.Tdata
	}
	return need
}

// commNeedCurrent returns the communication slots worker q still needs
// under the current configuration, counting partial in-flight progress
// (the engine's ground truth, used when re-scoring the running
// configuration for proactive comparisons).
func commNeedCurrent(env *Env, w WorkerInfo, x int) int {
	need := 0
	if !w.HasProgram {
		need += env.App.Tprog - w.ProgProgress
	}
	if missing := x - w.DataHeld; missing > 0 {
		need += missing*env.App.Tdata - w.DataProgress
	}
	if need < 0 {
		need = 0
	}
	return need
}

// statsCache memoizes the Section V set statistics of one assignment.
// The statistics depend only on configuration membership, so re-scoring
// the same configuration slot after slot (the proactive comparison) costs
// one Equal check instead of a fresh series evaluation.
type statsCache struct {
	valid bool
	asg   app.Assignment
	stats analytic.SetStats
}

func (c *statsCache) get(env *Env, asg app.Assignment) analytic.SetStats {
	if c.valid && c.asg.Equal(asg) {
		return c.stats
	}
	c.stats = env.Analytic.StatsOf(asg.Enrolled())
	c.asg = asg.Clone()
	c.valid = true
	return c.stats
}

// evalAssignment scores a configuration: the probability the iteration
// completes and its expected remaining duration, per Section V:
//
//	P = P_comm(S) · (P⁺(S))^{W−1},  E = E_comm(S) + E(S)(W)
//
// st holds the configuration's set statistics; needs gives the
// outstanding communication per enrolled worker; wrem is the remaining
// workload in compute slots; elapsed feeds the yield.
func evalAssignment(env *Env, st analytic.SetStats, needs []analytic.CommNeed, wrem int, elapsed int64) Value {
	cs := env.Analytic.CommEstimateForm(needs, env.Platform.Ncom, !env.RenewalE)
	return Value{
		P: cs.Success * st.ProbSuccess(wrem),
		E: cs.Expected + env.completion(st, wrem),
		T: float64(elapsed),
	}
}

// evalCurrent scores the running configuration with progress folded in:
// remaining communication (including partial messages) and remaining
// workload.
func evalCurrent(env *Env, v *View, cache *statsCache) Value {
	var needs []analytic.CommNeed
	for q, x := range v.Current {
		if x > 0 {
			if n := commNeedCurrent(env, v.Workers[q], x); n > 0 {
				needs = append(needs, analytic.CommNeed{Proc: q, Slots: n})
			}
		}
	}
	return evalAssignment(env, cache.get(env, v.Current), needs, v.RemainingWork, v.Elapsed)
}

// evalFresh scores a newly built configuration: full workload, fresh
// communication needs given retention.
func evalFresh(env *Env, v *View, asg app.Assignment, cache *statsCache) Value {
	var needs []analytic.CommNeed
	for q, x := range asg {
		if x > 0 {
			if n := commNeedFresh(env, v.Workers[q], x); n > 0 {
				needs = append(needs, analytic.CommNeed{Proc: q, Slots: n})
			}
		}
	}
	return evalAssignment(env, cache.get(env, asg), needs, asg.Workload(env.Platform.Speeds()), v.Elapsed)
}
