package sched

import (
	"encoding/binary"

	"tightsched/internal/app"
	"tightsched/internal/markov"
)

// DecisionCache shares greedy configuration builds across the simulation
// instances of one lockstep batch (sim.RunBatch). A fresh build by an
// incremental heuristic is a pure function of
//
//   - the base criterion,
//   - the UP set,
//   - the message-granularity retention (HasProgram, DataHeld) of every
//     UP processor — exactly what commNeedFresh reads, and
//   - the iteration's elapsed time, but only under CritY (the one
//     criterion whose Score reads Value.T),
//
// given a shared environment (same platform, application, believed
// matrices, analytic evaluator and E-metric form). Instances whose views
// coincide on that key therefore form an equivalence class that pays for
// one build; everyone else gets the memoized assignment back,
// bit-identical to what their own build would have produced because the
// analytic layer's memoized statistics are canonical.
//
// Infeasible builds (nil: the UP workers cannot host m tasks) are cached
// like any other value. Callers must treat returned assignments as
// immutable — the engine clones on adoption, so sharing one slice across
// instances is safe.
//
// A cache must not outlive the environment family it was built under: it
// is created per batch, and like the heuristics it serves it is confined
// to a single goroutine.
type DecisionCache struct {
	entries map[string]app.Assignment
	key     []byte

	hits   uint64
	misses uint64
}

// decisionCacheLimit bounds the table; on overflow it is cleared, which
// is semantically invisible because entries are pure functions of their
// keys. A quick paper cell peaks around 245k classes (the CritY family
// keys on elapsed time, so its classes accumulate with simulated time),
// so the limit is set just above that knee: one table caps out near
// 65 MB, and larger cells pay an invisible rebuild instead of more
// memory.
const decisionCacheLimit = 1 << 18

// NewDecisionCache returns an empty single-goroutine decision cache.
func NewDecisionCache() *DecisionCache {
	return &DecisionCache{entries: make(map[string]app.Assignment)}
}

// DecisionStats summarizes a cache's traffic. Every miss is one fresh
// greedy build (one equivalence class representative); every hit is a
// build some other instance — or the same instance at a later, equivalent
// epoch — did not pay for. The mean equivalence-class size is
// (Hits+Misses)/Misses.
type DecisionStats struct {
	Hits   uint64
	Misses uint64
	// Classes is the number of distinct decision classes currently held
	// (a gauge: it drops back when the table clears on overflow).
	Classes int
}

// Stats returns the cache's counters.
func (dc *DecisionCache) Stats() DecisionStats {
	return DecisionStats{Hits: dc.hits, Misses: dc.misses, Classes: len(dc.entries)}
}

// lookup returns the memoized build for the view under crit. The
// composed key stays in dc.key so that a following store pays no second
// serialization. The boolean reports a hit (a stored nil assignment is a
// hit with a nil value).
func (dc *DecisionCache) lookup(env *Env, crit Criterion, v *View) (app.Assignment, bool) {
	buf := dc.key[:0]
	buf = append(buf, byte(crit))
	if crit == CritY {
		// Only CritY's score reads Value.T = v.Elapsed; the other
		// criteria share builds across elapsed times.
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.Elapsed))
	}
	for q, s := range v.States {
		if s != markov.Up {
			// DOWN and RECLAIMED are both non-candidates for a fresh
			// build; their retention is unread.
			buf = append(buf, 0)
			continue
		}
		w := v.Workers[q]
		b := byte(1)
		if w.HasProgram {
			b |= 2
		}
		buf = append(buf, b)
		buf = binary.AppendUvarint(buf, uint64(w.DataHeld))
	}
	dc.key = buf
	asg, ok := dc.entries[string(buf)]
	if ok {
		dc.hits++
	} else {
		dc.misses++
	}
	return asg, ok
}

// store records the build for the key composed by the preceding lookup.
func (dc *DecisionCache) store(asg app.Assignment) {
	if len(dc.entries) >= decisionCacheLimit {
		clear(dc.entries)
	}
	dc.entries[string(dc.key)] = asg
}
