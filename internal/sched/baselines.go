package sched

import (
	"sort"

	"tightsched/internal/app"
	"tightsched/internal/markov"
)

// This file adds the static-criterion greedy schedulers that the paper's
// related-work section attributes to earlier desktop-grid systems (Kondo
// et al., Estrada et al.): processors ranked by a static property — clock
// rate or raw availability — with no probabilistic machinery. They are
// not among the paper's 17 heuristics; they serve as additional baselines
// for the library's users and for the extension experiments in
// EXPERIMENTS.md. Both are passive (they keep a configuration until the
// engine clears it).

// ExtendedNames returns the names of the extension baselines accepted by
// Build in addition to Names().
func ExtendedNames() []string {
	return []string{"FASTEST", "RELIABLE"}
}

// staticRank assigns tasks greedily to UP workers in the order of a
// static score (higher first), balancing by the resulting workload: each
// task goes to the best-ranked worker whose marginal workload increase is
// smallest among the top candidates. In practice this reproduces the
// "sort by clock-rate / availability, fill in order" policies of the
// earlier systems.
type staticRank struct {
	env   *Env
	name  string
	score func(env *Env, q int) float64

	ups    []int
	ranked []int
	speeds []int
}

// Name implements Heuristic.
func (h *staticRank) Name() string { return h.name }

// Decide implements Heuristic.
func (h *staticRank) Decide(v *View) app.Assignment {
	if v.Current != nil {
		return v.Current
	}
	m := h.env.App.Tasks
	h.ups = upWorkersInto(h.ups, v.States)
	ups := h.ups
	if capacityOf(h.env, ups) < m {
		return nil
	}
	// Rank the UP workers by static score, best first; ties by index.
	ranked := append(h.ranked[:0], ups...)
	h.ranked = ranked
	sort.SliceStable(ranked, func(a, b int) bool {
		sa, sb := h.score(h.env, ranked[a]), h.score(h.env, ranked[b])
		if sa != sb {
			return sa > sb
		}
		return ranked[a] < ranked[b]
	})
	asg := make(app.Assignment, h.env.Platform.Size())
	if h.speeds == nil {
		h.speeds = h.env.Platform.Speeds()
	}
	speeds := h.speeds
	for task := 0; task < m; task++ {
		// Among the ranked workers, place the task where it increases
		// the workload least, scanning in rank order so equal-increase
		// ties favour better-ranked workers.
		best := -1
		bestLoad := 0
		for _, q := range ranked {
			if asg[q] >= h.env.Platform.Procs[q].Capacity {
				continue
			}
			load := (asg[q] + 1) * speeds[q]
			if best == -1 || load < bestLoad {
				best, bestLoad = q, load
			}
		}
		if best < 0 {
			return nil
		}
		asg[best]++
	}
	return asg
}

// DecideSpan implements sched.SpanDecider: the static-rank baselines are
// passive and their fresh build reads only static scores and the UP set,
// so the decision is stable over any homogeneous span.
func (h *staticRank) DecideSpan(v *View, n int64) (app.Assignment, int64) {
	return h.Decide(v), n
}

// fastestScore ranks by clock rate (lower w_q is faster).
func fastestScore(env *Env, q int) float64 {
	return -float64(env.Platform.Procs[q].Speed)
}

// reliableScore ranks by the one-step probability of staying UP, the
// simplest static availability statistic. Like every heuristic input it
// reads the believed matrix, not the ground-truth availability model.
func reliableScore(env *Env, q int) float64 {
	return env.believedMatrix(q)[markov.Up][markov.Up]
}

// buildExtended constructs an extension baseline, or returns nil if the
// name is not one.
func buildExtended(name string, env *Env) Heuristic {
	switch name {
	case "FASTEST":
		return &staticRank{env: env, name: name, score: fastestScore}
	case "RELIABLE":
		return &staticRank{env: env, name: name, score: reliableScore}
	default:
		return nil
	}
}
