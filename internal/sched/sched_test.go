package sched

import (
	"math"
	"testing"

	"tightsched/internal/analytic"
	"tightsched/internal/app"
	"tightsched/internal/markov"
	"tightsched/internal/platform"
	"tightsched/internal/rng"
)

// testEnv builds a deterministic paper-style environment.
func testEnv(seed uint64, p, ncom, m, wmin int) *Env {
	cfg := platform.PaperConfig{P: p, Wmin: wmin, Ncom: ncom, StayLo: 0.90, StayHi: 0.99}
	pl := platform.GeneratePaper(cfg, rng.New(seed))
	return &Env{
		Platform: pl,
		App:      app.Application{Tasks: m, Tprog: 5 * wmin, Tdata: wmin, Iterations: 10},
		Analytic: analytic.NewPlatform(pl.Matrices(), analytic.DefaultEps),
		Rand:     rng.New(seed + 1),
	}
}

// allUpView returns a fresh-iteration view with every processor UP.
func allUpView(env *Env) *View {
	p := env.Platform.Size()
	states := make([]markov.State, p)
	return &View{
		States:  states,
		Workers: make([]WorkerInfo, p),
	}
}

func TestNamesComplete(t *testing.T) {
	names := Names()
	if len(names) != 17 {
		t.Fatalf("got %d heuristic names, want 17", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
	}
	for _, want := range []string{"IP", "IE", "IY", "IAY", "Y-IE", "P-IE", "E-IAY", "RANDOM"} {
		if !seen[want] {
			t.Fatalf("missing heuristic %q", want)
		}
	}
}

func TestBuildAllNames(t *testing.T) {
	env := testEnv(1, 6, 5, 3, 1)
	for _, name := range Names() {
		h, err := Build(name, env)
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		if h.Name() != name {
			t.Fatalf("Build(%q).Name() = %q", name, h.Name())
		}
	}
}

func TestBuildRejectsUnknown(t *testing.T) {
	env := testEnv(2, 4, 2, 2, 1)
	for _, name := range []string{"", "XX", "Q-IE", "P-XX", "AY-IE", "random"} {
		if _, err := Build(name, env); err == nil {
			t.Fatalf("Build(%q) accepted", name)
		}
	}
}

func TestBuildRandomNeedsStream(t *testing.T) {
	env := testEnv(3, 4, 2, 2, 1)
	env.Rand = nil
	if _, err := Build("RANDOM", env); err == nil {
		t.Fatal("RANDOM without stream accepted")
	}
}

func TestCriterionScores(t *testing.T) {
	v := Value{P: 0.5, E: 10, T: 5}
	if CritP.Score(v) != 0.5 {
		t.Fatal("P score")
	}
	if CritE.Score(v) != -10 {
		t.Fatal("E score")
	}
	if math.Abs(CritY.Score(v)-0.5/15) > 1e-12 {
		t.Fatal("Y score")
	}
	if math.Abs(CritAY.Score(v)-0.05) > 1e-12 {
		t.Fatal("AY score")
	}
	if CritAY.Score(Value{P: 1, E: 0}) != math.Inf(1) {
		t.Fatal("AY with zero E")
	}
	for c, want := range map[Criterion]string{CritP: "P", CritE: "E", CritY: "Y", CritAY: "AY"} {
		if c.String() != want {
			t.Fatalf("criterion %d string %q", int(c), c.String())
		}
	}
}

func TestIncrementalAssignsAllTasks(t *testing.T) {
	env := testEnv(4, 10, 5, 5, 2)
	caps := make([]int, env.Platform.Size())
	for q, proc := range env.Platform.Procs {
		caps[q] = proc.Capacity
	}
	for _, name := range []string{"IP", "IE", "IY", "IAY"} {
		h := MustBuild(name, env)
		asg := h.Decide(allUpView(env))
		if asg == nil {
			t.Fatalf("%s returned nil on an all-UP platform", name)
		}
		if err := asg.Validate(env.App.Tasks, caps); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestIncrementalUsesOnlyUpWorkers(t *testing.T) {
	env := testEnv(5, 8, 5, 4, 1)
	v := allUpView(env)
	v.States[0] = markov.Down
	v.States[3] = markov.Reclaimed
	for _, name := range []string{"IP", "IE", "IY", "IAY", "RANDOM"} {
		asg := MustBuild(name, env).Decide(v)
		if asg == nil {
			t.Fatalf("%s found no configuration", name)
		}
		if asg[0] != 0 || asg[3] != 0 {
			t.Fatalf("%s enrolled a non-UP worker: %v", name, asg)
		}
	}
}

func TestIncrementalInfeasibleReturnsNil(t *testing.T) {
	env := testEnv(6, 4, 2, 3, 1)
	// Capacity 1 per worker, only 2 UP workers, 3 tasks -> infeasible.
	for q := range env.Platform.Procs {
		env.Platform.Procs[q].Capacity = 1
	}
	v := allUpView(env)
	v.States[0] = markov.Down
	v.States[1] = markov.Reclaimed
	for _, name := range []string{"IE", "RANDOM", "Y-IE"} {
		if asg := MustBuild(name, env).Decide(v); asg != nil {
			t.Fatalf("%s returned %v for an infeasible slot", name, asg)
		}
	}
}

func TestPassiveKeepsCurrent(t *testing.T) {
	env := testEnv(7, 6, 5, 3, 1)
	v := allUpView(env)
	cur := app.Assignment{1, 1, 1, 0, 0, 0}
	v.Current = cur
	v.RemainingWork = 5
	for _, name := range []string{"IP", "IE", "IY", "IAY", "RANDOM"} {
		got := MustBuild(name, env).Decide(v)
		if !got.Equal(cur) {
			t.Fatalf("%s changed a live configuration: %v", name, got)
		}
	}
}

func TestIERanksFastReliableWorkerFirst(t *testing.T) {
	// Two workers: one fast and one slow, identical availability. IE must
	// put the single task on the fast one.
	avail := markov.PerState(0.95, 0.95, 0.95)
	pl := &platform.Platform{
		Procs: []platform.Processor{
			{Speed: 10, Capacity: 5, Avail: avail},
			{Speed: 1, Capacity: 5, Avail: avail},
		},
		Ncom: 2,
	}
	env := &Env{
		Platform: pl,
		App:      app.Application{Tasks: 1, Tprog: 2, Tdata: 1, Iterations: 1},
		Analytic: analytic.NewPlatform(pl.Matrices(), analytic.DefaultEps),
	}
	asg := MustBuild("IE", env).Decide(allUpView(env))
	if asg[1] != 1 || asg[0] != 0 {
		t.Fatalf("IE chose %v, want the fast worker", asg)
	}
}

func TestIPPrefersReliableWorker(t *testing.T) {
	// Two workers with equal speed; one is much more failure-prone. IP
	// must choose the reliable one.
	reliable := markov.Matrix{
		{0.98, 0.015, 0.005},
		{0.49, 0.5, 0.01},
		{0.5, 0.25, 0.25},
	}
	flaky := markov.Matrix{
		{0.80, 0.05, 0.15},
		{0.40, 0.4, 0.20},
		{0.5, 0.25, 0.25},
	}
	pl := &platform.Platform{
		Procs: []platform.Processor{
			{Speed: 3, Capacity: 5, Avail: flaky},
			{Speed: 3, Capacity: 5, Avail: reliable},
		},
		Ncom: 2,
	}
	env := &Env{
		Platform: pl,
		App:      app.Application{Tasks: 1, Tprog: 2, Tdata: 1, Iterations: 1},
		Analytic: analytic.NewPlatform(pl.Matrices(), analytic.DefaultEps),
	}
	asg := MustBuild("IP", env).Decide(allUpView(env))
	if asg[1] != 1 {
		t.Fatalf("IP chose %v, want the reliable worker", asg)
	}
}

func TestRandomUniformSpread(t *testing.T) {
	env := testEnv(8, 10, 5, 1, 1)
	h := MustBuild("RANDOM", env)
	counts := make([]int, env.Platform.Size())
	const draws = 5000
	for i := 0; i < draws; i++ {
		asg := h.Decide(allUpView(env))
		for q, x := range asg {
			counts[q] += x
		}
	}
	want := float64(draws) / float64(env.Platform.Size())
	for q, c := range counts {
		if math.Abs(float64(c)-want) > 0.15*want {
			t.Fatalf("RANDOM favoured worker %d: %d of %d draws", q, c, draws)
		}
	}
}

func TestRandomRespectsCapacity(t *testing.T) {
	env := testEnv(9, 3, 5, 6, 1)
	for q := range env.Platform.Procs {
		env.Platform.Procs[q].Capacity = 2
	}
	h := MustBuild("RANDOM", env)
	for i := 0; i < 200; i++ {
		asg := h.Decide(allUpView(env))
		for q, x := range asg {
			if x > 2 {
				t.Fatalf("RANDOM exceeded capacity on worker %d: %v", q, asg)
			}
		}
	}
}

func TestProactiveAdoptsFreshWhenNoCurrent(t *testing.T) {
	env := testEnv(10, 8, 5, 4, 1)
	passive := MustBuild("IE", env).Decide(allUpView(env))
	pro := MustBuild("E-IE", env).Decide(allUpView(env))
	if !pro.Equal(passive) {
		t.Fatalf("E-IE fresh build %v differs from IE %v", pro, passive)
	}
}

// TestProactiveStability is the paper's no-divergence constraint: with a
// live configuration on a static platform and no better workers arriving,
// a proactive heuristic must keep the configuration.
func TestProactiveStability(t *testing.T) {
	env := testEnv(11, 8, 5, 4, 1)
	for _, name := range []string{"P-IE", "E-IE", "Y-IE", "E-IAY", "Y-IAY"} {
		h := MustBuild(name, env)
		v := allUpView(env)
		cur := h.Decide(v) // fresh build adopted at slot 0
		if cur == nil {
			t.Fatalf("%s found nothing", name)
		}
		// Re-offer the exact same situation with progress accrued: the
		// current configuration must stay.
		v.Current = cur
		v.RemainingWork = cur.Workload(env.Platform.Speeds()) - 1
		v.Elapsed = 3
		for slot := 0; slot < 10; slot++ {
			v.Slot = int64(slot)
			got := h.Decide(v)
			if !got.Equal(cur) {
				t.Fatalf("%s slot %d: abandoned a progressing configuration", name, slot)
			}
		}
	}
}

// TestProactiveSwitchesToBetterWorkers puts the current configuration on
// terrible workers while excellent ones just became UP: every proactive
// heuristic should reconfigure onto them.
func TestProactiveSwitchesToBetterWorkers(t *testing.T) {
	bad := markov.Matrix{
		{0.70, 0.10, 0.20},
		{0.40, 0.40, 0.20},
		{0.50, 0.25, 0.25},
	}
	good := markov.PerState(0.99, 0.9, 0.9)
	procs := []platform.Processor{
		{Speed: 10, Capacity: 5, Avail: bad},
		{Speed: 10, Capacity: 5, Avail: bad},
		{Speed: 1, Capacity: 5, Avail: good},
		{Speed: 1, Capacity: 5, Avail: good},
	}
	pl := &platform.Platform{Procs: procs, Ncom: 4}
	env := &Env{
		Platform: pl,
		App:      app.Application{Tasks: 2, Tprog: 1, Tdata: 1, Iterations: 1},
		Analytic: analytic.NewPlatform(pl.Matrices(), analytic.DefaultEps),
	}
	v := allUpView(env)
	v.Current = app.Assignment{1, 1, 0, 0}
	v.RemainingWork = 10
	v.Elapsed = 2
	for _, name := range []string{"P-IE", "E-IE", "Y-IE"} {
		got := MustBuild(name, env).Decide(v)
		if got.Equal(v.Current) {
			t.Fatalf("%s kept the bad configuration", name)
		}
		if got[2] == 0 || got[3] == 0 {
			t.Fatalf("%s switched to %v, want the good workers", name, got)
		}
	}
}

// TestPassiveIgnoresBetterWorkers is the passive/proactive contrast: the
// same situation must leave a passive heuristic unmoved.
func TestPassiveIgnoresBetterWorkers(t *testing.T) {
	env := testEnv(12, 6, 5, 2, 1)
	v := allUpView(env)
	v.Current = app.Assignment{1, 1, 0, 0, 0, 0}
	v.RemainingWork = 20
	for _, name := range []string{"IP", "IE", "IY", "IAY"} {
		if got := MustBuild(name, env).Decide(v); !got.Equal(v.Current) {
			t.Fatalf("%s reconfigured without a failure", name)
		}
	}
}

func TestCommNeedAccounting(t *testing.T) {
	env := testEnv(13, 4, 2, 3, 2) // Tprog=10, Tdata=2
	w := WorkerInfo{}
	if n := commNeedFresh(env, w, 2); n != 10+4 {
		t.Fatalf("fresh need = %d, want 14", n)
	}
	w.HasProgram = true
	if n := commNeedFresh(env, w, 2); n != 4 {
		t.Fatalf("need with program = %d, want 4", n)
	}
	w.DataHeld = 1
	if n := commNeedFresh(env, w, 2); n != 2 {
		t.Fatalf("need with 1 message = %d, want 2", n)
	}
	if n := commNeedFresh(env, w, 1); n != 0 {
		t.Fatalf("need fully held = %d, want 0", n)
	}
	// Current-config accounting counts partial progress.
	w2 := WorkerInfo{ProgProgress: 3, DataProgress: 1}
	if n := commNeedCurrent(env, w2, 1); n != (10-3)+(2-1) {
		t.Fatalf("current need = %d, want 8", n)
	}
	done := WorkerInfo{HasProgram: true, DataHeld: 2}
	if n := commNeedCurrent(env, done, 2); n != 0 {
		t.Fatalf("completed need = %d, want 0", n)
	}
}

// TestYieldDependsOnElapsed distinguishes IY from IAY: with time already
// sunk into the iteration, the yield criterion discounts short remaining
// work differently from apparent yield. At minimum the two heuristics must
// be buildable and produce valid assignments at a late elapsed time.
func TestYieldDependsOnElapsed(t *testing.T) {
	env := testEnv(14, 8, 5, 4, 2)
	v := allUpView(env)
	v.Elapsed = 500
	caps := make([]int, env.Platform.Size())
	for q, proc := range env.Platform.Procs {
		caps[q] = proc.Capacity
	}
	for _, name := range []string{"IY", "IAY"} {
		asg := MustBuild(name, env).Decide(v)
		if err := asg.Validate(env.App.Tasks, caps); err != nil {
			t.Fatalf("%s at elapsed=500: %v", name, err)
		}
	}
}

func TestEnvValidatePanics(t *testing.T) {
	cases := map[string]*Env{
		"nil platform": {Analytic: &analytic.Platform{}},
		"bad app": func() *Env {
			e := testEnv(15, 3, 2, 2, 1)
			e.App.Tasks = 0
			return e
		}(),
		"analytic mismatch": func() *Env {
			e := testEnv(16, 3, 2, 2, 1)
			e.Analytic = analytic.NewPlatform(e.Platform.Matrices()[:2], analytic.DefaultEps)
			return e
		}(),
	}
	for name, env := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: validate did not panic", name)
				}
			}()
			env.validate()
		}()
	}
}

func TestMustBuildPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBuild with bad name did not panic")
		}
	}()
	MustBuild("BOGUS", testEnv(17, 3, 2, 2, 1))
}
