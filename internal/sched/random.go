package sched

import (
	"tightsched/internal/app"
)

// random is the baseline heuristic of Section VI: it behaves passively
// (keeps the configuration until the engine clears it) and, when asked
// for a new configuration, assigns each of the m tasks to a uniformly
// random UP worker with remaining capacity.
type random struct {
	env *Env

	ups  []int
	pool []int
}

// Name implements Heuristic.
func (h *random) Name() string { return "RANDOM" }

// Decide implements Heuristic.
func (h *random) Decide(v *View) app.Assignment {
	if v.Current != nil {
		return v.Current
	}
	m := h.env.App.Tasks
	h.ups = upWorkersInto(h.ups, v.States)
	if capacityOf(h.env, h.ups) < m {
		return nil
	}
	asg := make(app.Assignment, h.env.Platform.Size())
	// Draw among workers with remaining capacity; the pool shrinks as
	// workers fill up. upWorkersInto yields increasing order, keeping
	// draws deterministic for a given stream.
	pool := append(h.pool[:0], h.ups...)
	for task := 0; task < m; task++ {
		i := h.env.Rand.IntN(len(pool))
		q := pool[i]
		asg[q]++
		if asg[q] >= h.env.Platform.Procs[q].Capacity {
			pool = append(pool[:i], pool[i+1:]...)
		}
	}
	h.pool = pool[:0]
	return asg
}

// DecideSpan implements SpanDecider. RANDOM is passive, and its idle
// branch (insufficient UP capacity) consumes no randomness — exactly as
// the per-slot Decide walk would — so decision leaps leave the stream
// byte-identical; a non-nil draw is adopted at the span's first slot and
// then kept.
func (h *random) DecideSpan(v *View, n int64) (app.Assignment, int64) {
	return h.Decide(v), n
}
