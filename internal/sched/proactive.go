package sched

import (
	"tightsched/internal/app"
	"tightsched/internal/markov"
)

// proactive wraps a passive incremental heuristic H with a switch
// criterion C, per Section VI.B: every slot it builds a candidate
// configuration from scratch with H and compares it, under C, against the
// progress-updated value of the running configuration. The candidate is
// adopted only if strictly better (the paper keeps the current
// configuration when c >= c2), which together with the progress update
// realizes the paper's no-divergence constraint: a configuration that has
// run longer scores at least as well as the same configuration started
// fresh, so the scheduler cannot oscillate between configurations.
type proactive struct {
	env  *Env
	base *incremental
	crit Criterion
	name string

	// Candidate cache: the fresh build depends only on which workers are
	// UP and on message-granularity retention, both captured by the
	// engine's retention epoch. Re-scoring a cached candidate is cheap;
	// rebuilding it costs m·p series evaluations.
	cacheValid bool
	cacheUp    []bool
	cacheEpoch int64
	cacheAsg   app.Assignment

	// Reusable buffers for the per-slot re-scoring of the running and
	// candidate configurations; the set statistics themselves come from
	// the platform-level membership memo in analytic.Platform.
	scratch evalScratch
}

// Name implements Heuristic.
func (h *proactive) Name() string { return h.name }

// Decide implements Heuristic: DecideSpan with a one-slot horizon.
func (h *proactive) Decide(v *View) app.Assignment {
	next, _ := h.DecideSpan(v, 1)
	return next
}

// DecideSpan implements SpanDecider — the single home of the proactive
// adoption rule (Decide delegates here). The candidate cache is keyed on
// exactly the quantities that are constant over a homogeneous span (the
// UP set and the retention epoch), so whenever the cached candidate is
// nil, Equal to the running configuration, or adopted at the span's
// first slot, the decision is stable for the whole span. Only a live
// score comparison — a distinct candidate competing against the running
// configuration under Elapsed-driven scores — forces per-slot decisions.
func (h *proactive) DecideSpan(v *View, n int64) (app.Assignment, int64) {
	cand := h.candidate(v)
	if v.Current == nil {
		return cand, n
	}
	if cand == nil || cand.Equal(v.Current) {
		return v.Current, n
	}
	cur := h.crit.Score(evalCurrent(h.env, v, &h.scratch))
	alt := h.crit.Score(evalFresh(h.env, v, cand, &h.scratch))
	if cur >= alt {
		return v.Current, 1
	}
	return cand, 1
}

// candidate returns the fresh configuration H would build now, using the
// (UP set, retention epoch) cache.
func (h *proactive) candidate(v *View) app.Assignment {
	if h.cacheValid && h.cacheEpoch == v.RetentionEpoch && h.sameUp(v) {
		return h.cacheAsg
	}
	cand := h.base.build(v)
	if h.cacheUp == nil {
		h.cacheUp = make([]bool, len(v.States))
	}
	for q, s := range v.States {
		h.cacheUp[q] = s == markov.Up
	}
	h.cacheEpoch = v.RetentionEpoch
	h.cacheAsg = cand
	h.cacheValid = true
	return cand
}

func (h *proactive) sameUp(v *View) bool {
	if h.cacheUp == nil || len(h.cacheUp) != len(v.States) {
		return false
	}
	for q, s := range v.States {
		if (s == markov.Up) != h.cacheUp[q] {
			return false
		}
	}
	return true
}
