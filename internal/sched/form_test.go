package sched

import (
	"testing"

	"tightsched/internal/analytic"
	"tightsched/internal/app"
	"tightsched/internal/markov"
	"tightsched/internal/platform"
)

// TestPaperFormMakesIEReliabilityAware is the regression test for the
// central reproduction finding (DESIGN.md, "Reproduction notes"): with
// the paper's printed E(W) formula, IE avoids loading a long workload
// onto an unreliable worker even when it is nominally faster, because the
// (P⁺)^{W−1} denominator inflates the risky set's expected time. With the
// renewal form, IE is reliability-blind and picks the fast flaky worker.
func TestPaperFormMakesIEReliabilityAware(t *testing.T) {
	// A fast worker that crashes often versus a slightly slower rock.
	flaky := markov.Matrix{
		{0.90, 0.02, 0.08},
		{0.40, 0.40, 0.20},
		{0.50, 0.25, 0.25},
	}
	steady := markov.Matrix{
		{0.995, 0.004, 0.001},
		{0.60, 0.399, 0.001},
		{0.50, 0.25, 0.25},
	}
	pl := &platform.Platform{
		Procs: []platform.Processor{
			{Speed: 10, Capacity: 10, Avail: flaky},
			{Speed: 12, Capacity: 10, Avail: steady},
		},
		Ncom: 2,
	}
	application := app.Application{Tasks: 1, Tprog: 2, Tdata: 1, Iterations: 1}

	build := func(renewal bool) app.Assignment {
		env := &Env{
			Platform: pl,
			App:      application,
			Analytic: analytic.NewPlatform(pl.Matrices(), analytic.DefaultEps),
			RenewalE: renewal,
		}
		v := &View{
			States:  []markov.State{markov.Up, markov.Up},
			Workers: make([]WorkerInfo, 2),
		}
		return MustBuild("IE", env).Decide(v)
	}

	paper := build(false)
	renewal := build(true)

	// Paper form: a 10-slot workload on the flaky worker has a small
	// (P⁺)^{W−1}, so its inflated E loses to the slower steady worker.
	if paper[1] != 1 {
		t.Fatalf("paper-form IE should pick the steady worker: %v", paper)
	}
	// The renewal form, blind to reliability, picks the nominally faster
	// flaky worker.
	if renewal[0] != 1 {
		t.Fatalf("renewal-form IE should pick the fast flaky worker: %v", renewal)
	}
}

// TestFormFieldsPlumbed checks both forms produce valid configurations
// for every heuristic (the plumbing reaches all criteria).
func TestFormFieldsPlumbed(t *testing.T) {
	env := testEnv(40, 8, 5, 4, 2)
	caps := make([]int, env.Platform.Size())
	for q, proc := range env.Platform.Procs {
		caps[q] = proc.Capacity
	}
	for _, renewal := range []bool{false, true} {
		env.RenewalE = renewal
		for _, name := range []string{"IP", "IE", "IY", "IAY", "Y-IE", "E-IAY"} {
			asg := MustBuild(name, env).Decide(allUpView(env))
			if err := asg.Validate(env.App.Tasks, caps); err != nil {
				t.Fatalf("%s (renewal=%v): %v", name, renewal, err)
			}
		}
	}
}
