package sched

import (
	"testing"

	"tightsched/internal/analytic"
	"tightsched/internal/app"
	"tightsched/internal/markov"
	"tightsched/internal/platform"
)

func TestExtendedNamesBuild(t *testing.T) {
	env := testEnv(60, 6, 5, 3, 1)
	for _, name := range ExtendedNames() {
		h, err := Build(name, env)
		if err != nil {
			t.Fatalf("Build(%q): %v", name, err)
		}
		if h.Name() != name {
			t.Fatalf("name %q", h.Name())
		}
		asg := h.Decide(allUpView(env))
		if asg == nil || asg.TaskCount() != env.App.Tasks {
			t.Fatalf("%s produced %v", name, asg)
		}
	}
}

func TestFastestPicksFastWorkers(t *testing.T) {
	avail := markov.Uniform(0.95)
	pl := &platform.Platform{
		Procs: []platform.Processor{
			{Speed: 9, Capacity: 4, Avail: avail},
			{Speed: 1, Capacity: 4, Avail: avail}, // fastest
			{Speed: 5, Capacity: 4, Avail: avail},
		},
		Ncom: 3,
	}
	env := &Env{
		Platform: pl,
		App:      app.Application{Tasks: 2, Tprog: 1, Tdata: 1, Iterations: 1},
		Analytic: analytic.NewPlatform(pl.Matrices(), analytic.DefaultEps),
	}
	asg := MustBuild("FASTEST", env).Decide(allUpView(env))
	// Both tasks land on the fastest worker: 2 tasks × speed 1 = load 2
	// still beats one task on speed 5.
	if asg[1] != 2 {
		t.Fatalf("FASTEST chose %v", asg)
	}
}

func TestFastestBalancesLoad(t *testing.T) {
	avail := markov.Uniform(0.95)
	pl := &platform.Platform{
		Procs: []platform.Processor{
			{Speed: 3, Capacity: 4, Avail: avail},
			{Speed: 4, Capacity: 4, Avail: avail},
		},
		Ncom: 2,
	}
	env := &Env{
		Platform: pl,
		App:      app.Application{Tasks: 2, Tprog: 1, Tdata: 1, Iterations: 1},
		Analytic: analytic.NewPlatform(pl.Matrices(), analytic.DefaultEps),
	}
	asg := MustBuild("FASTEST", env).Decide(allUpView(env))
	// Two tasks on the speed-3 worker would load 6; spreading loads 4.
	if asg[0] != 1 || asg[1] != 1 {
		t.Fatalf("FASTEST should spread: %v", asg)
	}
}

func TestReliablePicksStableWorkers(t *testing.T) {
	flaky := markov.PerState(0.90, 0.9, 0.9)
	steady := markov.PerState(0.98, 0.9, 0.9)
	pl := &platform.Platform{
		Procs: []platform.Processor{
			{Speed: 2, Capacity: 4, Avail: flaky},
			{Speed: 2, Capacity: 4, Avail: steady},
		},
		Ncom: 2,
	}
	env := &Env{
		Platform: pl,
		App:      app.Application{Tasks: 1, Tprog: 1, Tdata: 1, Iterations: 1},
		Analytic: analytic.NewPlatform(pl.Matrices(), analytic.DefaultEps),
	}
	asg := MustBuild("RELIABLE", env).Decide(allUpView(env))
	if asg[1] != 1 {
		t.Fatalf("RELIABLE chose %v", asg)
	}
}

func TestBaselinesArePassive(t *testing.T) {
	env := testEnv(61, 5, 5, 2, 1)
	cur := app.Assignment{1, 1, 0, 0, 0}
	v := allUpView(env)
	v.Current = cur
	for _, name := range ExtendedNames() {
		if got := MustBuild(name, env).Decide(v); !got.Equal(cur) {
			t.Fatalf("%s reconfigured without a failure", name)
		}
	}
}

func TestBaselinesRespectUpAndCapacity(t *testing.T) {
	env := testEnv(62, 6, 5, 4, 1)
	for q := range env.Platform.Procs {
		env.Platform.Procs[q].Capacity = 1
	}
	v := allUpView(env)
	v.States[0] = markov.Down
	v.States[1] = markov.Reclaimed
	for _, name := range ExtendedNames() {
		asg := MustBuild(name, env).Decide(v)
		if asg == nil {
			t.Fatalf("%s found nothing", name)
		}
		if asg[0] != 0 || asg[1] != 0 {
			t.Fatalf("%s enrolled non-UP workers: %v", name, asg)
		}
		for q, x := range asg {
			if x > 1 {
				t.Fatalf("%s exceeded capacity on %d: %v", name, q, asg)
			}
		}
	}
	// Infeasible: only 2 UP workers with capacity 1 for 4 tasks.
	v.States[2] = markov.Down
	v.States[3] = markov.Down
	for _, name := range ExtendedNames() {
		if asg := MustBuild(name, env).Decide(v); asg != nil {
			t.Fatalf("%s returned %v for infeasible slot", name, asg)
		}
	}
}
