// Package sched implements the on-line scheduling heuristics of Section VI:
//
//   - four passive incremental heuristics — IP (probability of success),
//     IE (expected completion time), IY (expected yield), IAY (expected
//     apparent yield) — that assign the m tasks one by one to UP workers,
//     each step maximizing the heuristic's criterion;
//   - twelve proactive heuristics C-H, with switch criterion
//     C ∈ {P, E, Y} and building block H one of the four passive
//     heuristics: every slot a candidate configuration is built from
//     scratch and adopted only if it strictly beats the progress-updated
//     value of the current configuration;
//   - the RANDOM baseline, which assigns tasks to UP workers uniformly.
//
// Heuristics are pure deciders: the simulation engine owns all ground
// truth (worker program/data retention, communication progress, compute
// progress) and presents it through a View each slot; the heuristic
// returns the assignment to use for that slot.
package sched

import (
	"fmt"
	"math"

	"tightsched/internal/analytic"
	"tightsched/internal/app"
	"tightsched/internal/markov"
	"tightsched/internal/platform"
	"tightsched/internal/rng"
)

// WorkerInfo is the per-worker retention state exposed to heuristics. It
// mirrors Section III.C: a worker keeps the program across iterations
// unless it goes DOWN, keeps complete data messages for the current
// iteration unless it goes DOWN, and keeps partial message progress only
// while it stays enrolled and not DOWN.
type WorkerInfo struct {
	// HasProgram reports whether the worker holds the application program
	// (received at some point and not DOWN since).
	HasProgram bool
	// ProgProgress is the number of slots of program download completed
	// in the current attempt (0 if HasProgram or not started).
	ProgProgress int
	// DataHeld is the number of complete task-data messages held for the
	// current iteration.
	DataHeld int
	// DataProgress is the number of slots received of the in-flight data
	// message, if any.
	DataProgress int
}

// View is the per-slot snapshot a heuristic decides on.
type View struct {
	// Slot is the current time-slot index.
	Slot int64
	// States holds each processor's availability state at this slot.
	States []markov.State
	// Workers holds each processor's retention state.
	Workers []WorkerInfo
	// Current is the configuration in effect (nil at iteration start or
	// after a failure forced a restart).
	Current app.Assignment
	// RemainingWork is W minus the compute slots already accumulated by
	// the current configuration (meaningless when Current is nil).
	RemainingWork int
	// Elapsed is the number of slots since the current iteration first
	// started being attempted (not reset by restarts): the paper's t in
	// the yield Y = P/(E+t).
	Elapsed int64
	// RetentionEpoch is a counter the engine bumps whenever any worker's
	// message-granularity retention changes (a program or data message
	// completes, a worker goes DOWN, an iteration ends). Heuristics may
	// use it to cache work that only depends on retention and UP states.
	RetentionEpoch int64
}

// Heuristic decides, every slot, which configuration to run.
type Heuristic interface {
	// Name returns the paper's name for the heuristic (e.g. "Y-IE").
	Name() string
	// Decide returns the assignment to use at this slot. Returning an
	// assignment Equal to v.Current keeps the configuration; returning
	// nil means no feasible configuration exists (the engine idles one
	// slot). The returned assignment must use only UP workers within
	// their capacities and carry exactly m tasks.
	Decide(v *View) app.Assignment
}

// SpanDecider is the optional Heuristic extension the simulator's
// event-leap engine consumes. DecideSpan is Decide plus a homogeneity
// horizon: n >= 1 is the number of upcoming slots (starting at v.Slot)
// over which the engine guarantees the availability vector stays
// constant. The returned keep, clamped by the engine to [1, n], promises
// that — provided the engine applies the returned decision, the
// availability vector and the retention epoch stay unchanged, and no
// phase event clears the configuration — Decide at each of the next
// keep-1 slots would return a value Equal to the then-current
// configuration (or nil while idle). The engine re-decides at every
// retention-epoch change (message completion, DOWN wipe, iteration end)
// regardless of keep, so implementations only reason about Elapsed- and
// Slot-driven drift: passive heuristics return n; proactive ones return
// n when the cached candidate cannot displace the running configuration
// and 1 when a per-slot score comparison is in play.
//
// Heuristics that do not implement SpanDecider are decided every slot
// under both engines, which preserves exact slot-engine behavior for
// arbitrary custom policies (stateful, Slot-dependent, randomized) at
// the cost of the decision leap.
type SpanDecider interface {
	Heuristic
	DecideSpan(v *View, n int64) (app.Assignment, int64)
}

// Env bundles the immutable per-run context heuristics are built from.
// Heuristics reason only over believed state: when the platform's
// availability model is not Markov, Believed and Analytic carry the
// fitted matrices of avail.Model.EstimatorMatrices, never the ground
// truth.
type Env struct {
	Platform *platform.Platform
	App      app.Application
	// Believed holds the per-processor Markov matrices the heuristics
	// should believe (the platform's nominal matrices when nil).
	Believed []markov.Matrix
	// Analytic is the Section V estimator over the believed matrices.
	Analytic *analytic.Platform
	// Rand is the stream randomized heuristics draw from (RANDOM).
	Rand *rng.Stream
	// Decisions, when non-nil, shares fresh greedy builds across the
	// heuristic instances of one lockstep batch (see DecisionCache). It
	// is consulted only by the incremental build path — RANDOM and the
	// static baselines never route through it — and a nil cache restores
	// the solo behavior exactly.
	Decisions *DecisionCache
	// RenewalE switches the expected-completion-time metric from the
	// formula as printed in the paper, 1 + (W−1)·Ec/(P⁺)^{W−1}, to the
	// renewal form 1 + (W−1)·Ec/P⁺.
	//
	// The default (false) reproduces the paper: its (P⁺)^{W−1}
	// denominator makes E explode for unreliable sets with long
	// workloads, which is what makes the IE family robust in the
	// published rankings. The renewal form is the statistically correct
	// conditional expectation (validated by Monte-Carlo in
	// internal/analytic) but, used as a selection metric, it leaves IE
	// reliability-blind. See DESIGN.md ("Reproduction notes").
	RenewalE bool
}

// successCompletion returns (ProbSuccess(w), completion metric) of a set
// under the environment's configured form. Both quantities need the same
// (P⁺)^{W−1}, the hottest exponentiation of a memoized decision; it is
// computed once through the platform's PowPplus memo and shared, which is
// bit-identical to the two independent math.Pow calls it replaces.
func (e *Env) successCompletion(st analytic.SetStats, w int) (psucc, ecomp float64) {
	powv := 1.0
	if w > 1 {
		powv = e.Analytic.PowPplus(st.Pplus, w-1)
	}
	return e.successCompletionPow(st, w, powv)
}

// successCompletionPow is successCompletion with (P⁺)^{W−1} already in
// hand (from a per-set power ring; see analytic.SetEval.StatsPow).
func (e *Env) successCompletionPow(st analytic.SetStats, w int, powv float64) (psucc, ecomp float64) {
	psucc = 1.0
	if w > 1 {
		psucc = powv
	}
	switch {
	case w <= 0:
		ecomp = 0
	case st.Pplus <= 0:
		ecomp = math.Inf(1)
	case e.RenewalE:
		ecomp = 1 + float64(w-1)*st.Ec/st.Pplus
	default:
		ecomp = 1 + float64(w-1)*st.Ec/powv
	}
	return psucc, ecomp
}

// expectedComm returns the single-worker communication estimate under the
// environment's configured form.
func (e *Env) expectedComm(q, n int) float64 {
	if e.RenewalE {
		return e.Analytic.Procs[q].ExpectedComm(n)
	}
	return e.Analytic.Procs[q].ExpectedCommPaper(n)
}

// validate panics on an inconsistent environment; heuristics are built at
// simulation setup where a panic is a programming error, not user input.
func (e *Env) validate() {
	if e.Platform == nil || e.Analytic == nil {
		panic("sched: Env missing platform or analytic state")
	}
	if err := e.Platform.Validate(); err != nil {
		panic(err)
	}
	if err := e.App.Validate(); err != nil {
		panic(err)
	}
	if len(e.Analytic.Procs) != e.Platform.Size() {
		panic("sched: analytic platform size mismatch")
	}
	if e.Believed != nil && len(e.Believed) != e.Platform.Size() {
		panic("sched: believed matrices size mismatch")
	}
}

// believedMatrix returns the availability matrix heuristics should
// believe for processor q.
func (e *Env) believedMatrix(q int) markov.Matrix {
	if e.Believed != nil {
		return e.Believed[q]
	}
	return e.Platform.Procs[q].Avail
}

// Criterion is one of the paper's four configuration metrics.
type Criterion int

const (
	// CritP is the probability of success of the iteration.
	CritP Criterion = iota
	// CritE is the expected completion time of the iteration.
	CritE
	// CritY is the expected yield P/(t+E).
	CritY
	// CritAY is the expected apparent yield P/E.
	CritAY
)

// String returns the paper's letter for the criterion.
func (c Criterion) String() string {
	switch c {
	case CritP:
		return "P"
	case CritE:
		return "E"
	case CritY:
		return "Y"
	case CritAY:
		return "AY"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// Value is the (P, E) estimate of a configuration at elapsed time t,
// from which every criterion's score derives.
type Value struct {
	P float64 // estimated probability the iteration completes
	E float64 // estimated expected remaining completion time in slots
	T float64 // slots already spent in the iteration
}

// Score maps the value to a number where higher is better for the
// criterion (E is negated).
func (c Criterion) Score(v Value) float64 {
	switch c {
	case CritP:
		return v.P
	case CritE:
		return -v.E
	case CritY:
		return v.P / (v.T + v.E)
	case CritAY:
		if v.E <= 0 {
			return math.Inf(1)
		}
		return v.P / v.E
	default:
		panic(fmt.Sprintf("sched: unknown criterion %d", int(c)))
	}
}

// Names returns the names of all 17 heuristics in the paper's order:
// the four passive heuristics, the twelve proactive combinations, and
// RANDOM.
func Names() []string {
	names := []string{"IP", "IE", "IY", "IAY"}
	for _, c := range []string{"P", "E", "Y"} {
		for _, h := range []string{"IP", "IE", "IY", "IAY"} {
			names = append(names, c+"-"+h)
		}
	}
	names = append(names, "RANDOM")
	return names
}

// Build constructs the named heuristic over the environment. Valid names
// are those in the registry: Names(), ExtendedNames(), and anything
// plugged in through Register.
func Build(name string, env *Env) (Heuristic, error) {
	env.validate()
	f, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("sched: unknown heuristic %q (have %v)", name, Registered())
	}
	return f(env)
}

// buildBuiltin constructs one of the package's own heuristics; the
// registry's init wraps it into per-name factories.
func buildBuiltin(name string, env *Env) (Heuristic, error) {
	if name == "RANDOM" {
		if env.Rand == nil {
			return nil, fmt.Errorf("sched: RANDOM requires Env.Rand")
		}
		return &random{env: env}, nil
	}
	if h := buildExtended(name, env); h != nil {
		return h, nil
	}
	base, proCrit, err := parseName(name)
	if err != nil {
		return nil, err
	}
	inc := &incremental{env: env, crit: base, name: baseName(base)}
	if proCrit < 0 {
		return inc, nil
	}
	return &proactive{env: env, base: inc, crit: proCrit, name: name}, nil
}

// MustBuild is Build that panics on error, for tests and examples.
func MustBuild(name string, env *Env) Heuristic {
	h, err := Build(name, env)
	if err != nil {
		panic(err)
	}
	return h
}

// parseName splits "C-H" or "H" into the base incremental criterion and
// the proactive criterion (-1 when passive).
func parseName(name string) (base Criterion, pro Criterion, err error) {
	pro = -1
	rest := name
	for i := 0; i < len(name); i++ {
		if name[i] == '-' {
			switch name[:i] {
			case "P":
				pro = CritP
			case "E":
				pro = CritE
			case "Y":
				pro = CritY
			default:
				return 0, 0, fmt.Errorf("sched: unknown proactive criterion %q in %q", name[:i], name)
			}
			rest = name[i+1:]
			break
		}
	}
	switch rest {
	case "IP":
		base = CritP
	case "IE":
		base = CritE
	case "IY":
		base = CritY
	case "IAY":
		base = CritAY
	default:
		return 0, 0, fmt.Errorf("sched: unknown heuristic %q", name)
	}
	return base, pro, nil
}

func baseName(c Criterion) string {
	switch c {
	case CritP:
		return "IP"
	case CritE:
		return "IE"
	case CritY:
		return "IY"
	case CritAY:
		return "IAY"
	}
	panic("sched: bad base criterion")
}

// upWorkersInto appends the indices of UP processors, in increasing
// order, to dst[:0]. Heuristics own a scratch slice and pass it here so
// the per-slot decision loop does not allocate.
func upWorkersInto(dst []int, states []markov.State) []int {
	dst = dst[:0]
	for q, s := range states {
		if s == markov.Up {
			dst = append(dst, q)
		}
	}
	return dst
}
