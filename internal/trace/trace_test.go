package trace

import (
	"strings"
	"testing"

	"tightsched/internal/markov"
)

func TestActivityString(t *testing.T) {
	cases := map[Activity]string{
		NotEnrolled: ".", Idle: "I", Program: "P", Data: "D", Compute: "C",
		Activity(99): "?",
	}
	for act, want := range cases {
		if act.String() != want {
			t.Fatalf("%d.String() = %q, want %q", act, act.String(), want)
		}
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Record(0, []markov.State{markov.Up}, []Activity{Idle}, "")
	if r.Len() != 0 {
		t.Fatal("nil recorder stored a step")
	}
}

func TestRecordCopies(t *testing.T) {
	r := &Recorder{}
	states := []markov.State{markov.Up}
	acts := []Activity{Program}
	r.Record(0, states, acts, "")
	states[0] = markov.Down
	acts[0] = Compute
	if r.Steps[0].States[0] != markov.Up || r.Steps[0].Activities[0] != Program {
		t.Fatal("Record aliases caller slices")
	}
}

func TestRenderCells(t *testing.T) {
	r := &Recorder{}
	// One slot exercising every cell variant.
	r.Record(0,
		[]markov.State{markov.Up, markov.Up, markov.Up, markov.Up, markov.Up,
			markov.Reclaimed, markov.Reclaimed, markov.Reclaimed, markov.Reclaimed, markov.Down},
		[]Activity{Program, Data, Compute, Idle, NotEnrolled,
			Program, Data, Idle, NotEnrolled, NotEnrolled},
		"boom")
	out := r.Render()
	for _, want := range []string{"P", "D", "C", "I", ".", "p", "d", "i", "~", "#", "boom"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Ten processor rows plus ruler plus event line.
	if lines := strings.Count(out, "\n"); lines < 12 {
		t.Fatalf("render has %d lines:\n%s", lines, out)
	}
}

func TestRenderEmpty(t *testing.T) {
	if out := (&Recorder{}).Render(); !strings.Contains(out, "empty") {
		t.Fatalf("empty render: %q", out)
	}
	var nilRec *Recorder
	if out := nilRec.Render(); !strings.Contains(out, "empty") {
		t.Fatalf("nil render: %q", out)
	}
}

func TestLegendMentionsAllSymbols(t *testing.T) {
	l := Legend()
	for _, sym := range []string{"P/D/C/I", "p/d/i", "~", "#"} {
		if !strings.Contains(l, sym) {
			t.Fatalf("legend missing %q", sym)
		}
	}
}

func TestAvailabilityScript(t *testing.T) {
	r := &Recorder{}
	r.Record(0, []markov.State{markov.Up, markov.Down}, []Activity{Idle, NotEnrolled}, "")
	r.Record(1, []markov.State{markov.Reclaimed, markov.Up}, []Activity{Idle, NotEnrolled}, "")
	got := r.AvailabilityScript()
	if len(got) != 2 || got[0] != "ur" || got[1] != "du" {
		t.Fatalf("script = %v", got)
	}
	if (&Recorder{}).AvailabilityScript() != nil {
		t.Fatal("empty recorder should export nil script")
	}
}

func TestRulerUsesSlotNumbers(t *testing.T) {
	r := &Recorder{}
	for slot := int64(7); slot < 13; slot++ {
		r.Record(slot, []markov.State{markov.Up}, []Activity{Idle}, "")
	}
	out := r.Render()
	if !strings.Contains(out, "789012") {
		t.Fatalf("ruler should show slot digits 789012:\n%s", out)
	}
}
