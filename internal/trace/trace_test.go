package trace

import (
	"strings"
	"testing"

	"tightsched/internal/markov"
)

func TestActivityString(t *testing.T) {
	cases := map[Activity]string{
		NotEnrolled: ".", Idle: "I", Program: "P", Data: "D", Compute: "C",
		Activity(99): "?",
	}
	for act, want := range cases {
		if act.String() != want {
			t.Fatalf("%d.String() = %q, want %q", act, act.String(), want)
		}
	}
}

func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	r.Record(0, []markov.State{markov.Up}, []Activity{Idle}, "")
	r.RecordSpan(0, 5, []markov.State{markov.Up}, []Activity{Idle})
	r.AddEvent(0, "boom")
	if r.Len() != 0 || r.SpanCount() != 0 || r.Events() != nil {
		t.Fatal("nil recorder stored something")
	}
	for range r.Steps() {
		t.Fatal("nil recorder yielded a step")
	}
}

func TestRecordCopies(t *testing.T) {
	r := &Recorder{}
	states := []markov.State{markov.Up}
	acts := []Activity{Program}
	r.Record(0, states, acts, "")
	states[0] = markov.Down
	acts[0] = Compute
	if got := r.At(0); got.States[0] != markov.Up || got.Activities[0] != Program {
		t.Fatal("Record aliases caller slices")
	}
}

// TestRunLengthCoalescing: identical consecutive slots share one span, so
// a long homogeneous stretch costs O(1) memory instead of O(slots·p).
func TestRunLengthCoalescing(t *testing.T) {
	r := &Recorder{}
	states := []markov.State{markov.Up, markov.Down}
	acts := []Activity{Compute, NotEnrolled}
	const n = 100_000
	for slot := int64(0); slot < n; slot++ {
		r.Record(slot, states, acts, "")
	}
	if r.Len() != n {
		t.Fatalf("Len = %d, want %d", r.Len(), n)
	}
	if r.SpanCount() != 1 {
		t.Fatalf("SpanCount = %d, want 1 (run-length encoding broken)", r.SpanCount())
	}
	// A change in either vector starts a new span.
	r.Record(n, states, []Activity{Idle, NotEnrolled}, "")
	if r.SpanCount() != 2 {
		t.Fatalf("SpanCount = %d after activity change, want 2", r.SpanCount())
	}
}

// TestRecordSpanMatchesPerSlotRecording: the bulk path and the per-slot
// path produce identical traces.
func TestRecordSpanMatchesPerSlotRecording(t *testing.T) {
	states := []markov.State{markov.Up, markov.Reclaimed}
	acts := []Activity{Compute, Idle}
	perSlot := &Recorder{}
	for slot := int64(0); slot < 7; slot++ {
		perSlot.Record(slot, states, acts, "")
	}
	perSlot.Record(7, states, acts, "iteration 1 complete")

	bulk := &Recorder{}
	bulk.AddEvent(7, "iteration 1 complete")
	bulk.RecordSpan(0, 8, states, acts)

	if perSlot.Render() != bulk.Render() {
		t.Fatalf("renders differ:\n%s\nvs\n%s", perSlot.Render(), bulk.Render())
	}
	if perSlot.SpanCount() != 1 || bulk.SpanCount() != 1 {
		t.Fatalf("span counts %d/%d, want 1/1", perSlot.SpanCount(), bulk.SpanCount())
	}
}

// TestStepsIterator reconstructs per-slot steps, with events attached to
// their slots.
func TestStepsIterator(t *testing.T) {
	r := &Recorder{}
	r.Record(0, []markov.State{markov.Up}, []Activity{Idle}, "")
	r.Record(1, []markov.State{markov.Up}, []Activity{Idle}, "restart: P1 DOWN")
	r.Record(2, []markov.State{markov.Down}, []Activity{NotEnrolled}, "")
	var slots []int64
	var events []string
	for step := range r.Steps() {
		slots = append(slots, step.Slot)
		if step.Event != "" {
			events = append(events, step.Event)
		}
	}
	if len(slots) != 3 || slots[0] != 0 || slots[2] != 2 {
		t.Fatalf("slots = %v", slots)
	}
	if len(events) != 1 || events[0] != "restart: P1 DOWN" {
		t.Fatalf("events = %v", events)
	}
	if got := r.At(1).Event; got != "restart: P1 DOWN" {
		t.Fatalf("At(1).Event = %q", got)
	}
	// Early break must not panic or loop.
	for range r.Steps() {
		break
	}
}

// TestStepsSkipsOrphanEvents: an event on a slot no span covers must not
// stall the iterator's event cursor and swallow later events.
func TestStepsSkipsOrphanEvents(t *testing.T) {
	r := &Recorder{}
	r.RecordSpan(0, 2, []markov.State{markov.Up}, []Activity{Idle})
	r.AddEvent(2, "orphan") // slot 2 is never recorded
	r.RecordSpan(3, 2, []markov.State{markov.Up}, []Activity{Idle})
	r.AddEvent(4, "real")
	var got []string
	for step := range r.Steps() {
		if step.Event != "" {
			got = append(got, step.Event)
		}
	}
	if len(got) != 1 || got[0] != "real" {
		t.Fatalf("events after orphan = %v, want [real]", got)
	}
	if ev := r.At(4).Event; ev != "real" {
		t.Fatalf("At(4).Event = %q", ev)
	}
}

func TestAtPanicsOnUnrecordedSlot(t *testing.T) {
	r := &Recorder{}
	r.Record(0, []markov.State{markov.Up}, []Activity{Idle}, "")
	defer func() {
		if recover() == nil {
			t.Fatal("At(5) on a 1-slot trace did not panic")
		}
	}()
	r.At(5)
}

func TestRenderCells(t *testing.T) {
	r := &Recorder{}
	// One slot exercising every cell variant.
	r.Record(0,
		[]markov.State{markov.Up, markov.Up, markov.Up, markov.Up, markov.Up,
			markov.Reclaimed, markov.Reclaimed, markov.Reclaimed, markov.Reclaimed, markov.Down},
		[]Activity{Program, Data, Compute, Idle, NotEnrolled,
			Program, Data, Idle, NotEnrolled, NotEnrolled},
		"boom")
	out := r.Render()
	for _, want := range []string{"P", "D", "C", "I", ".", "p", "d", "i", "~", "#", "boom"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Ten processor rows plus ruler plus event line.
	if lines := strings.Count(out, "\n"); lines < 12 {
		t.Fatalf("render has %d lines:\n%s", lines, out)
	}
}

func TestRenderEmpty(t *testing.T) {
	if out := (&Recorder{}).Render(); !strings.Contains(out, "empty") {
		t.Fatalf("empty render: %q", out)
	}
	var nilRec *Recorder
	if out := nilRec.Render(); !strings.Contains(out, "empty") {
		t.Fatalf("nil render: %q", out)
	}
}

func TestLegendMentionsAllSymbols(t *testing.T) {
	l := Legend()
	for _, sym := range []string{"P/D/C/I", "p/d/i", "~", "#"} {
		if !strings.Contains(l, sym) {
			t.Fatalf("legend missing %q", sym)
		}
	}
}

func TestAvailabilityScript(t *testing.T) {
	r := &Recorder{}
	r.Record(0, []markov.State{markov.Up, markov.Down}, []Activity{Idle, NotEnrolled}, "")
	r.Record(1, []markov.State{markov.Reclaimed, markov.Up}, []Activity{Idle, NotEnrolled}, "")
	got := r.AvailabilityScript()
	if len(got) != 2 || got[0] != "ur" || got[1] != "du" {
		t.Fatalf("script = %v", got)
	}
	if (&Recorder{}).AvailabilityScript() != nil {
		t.Fatal("empty recorder should export nil script")
	}
}

func TestRulerUsesSlotNumbers(t *testing.T) {
	r := &Recorder{}
	for slot := int64(7); slot < 13; slot++ {
		r.Record(slot, []markov.State{markov.Up}, []Activity{Idle}, "")
	}
	out := r.Render()
	if !strings.Contains(out, "789012") {
		t.Fatalf("ruler should show slot digits 789012:\n%s", out)
	}
}
