// Package trace records and renders execution traces of the simulator in
// the visual language of the paper's Figure 1: one row per processor, one
// column per time-slot, with the worker's activity (receiving the Program,
// receiving Data, Computing, or Idle while enrolled) drawn over its
// availability state (UP, RECLAIMED, DOWN).
package trace

import (
	"fmt"
	"strings"

	"tightsched/internal/markov"
)

// Activity is what a worker is doing during a slot.
type Activity uint8

const (
	// NotEnrolled marks a worker outside the current configuration.
	NotEnrolled Activity = iota
	// Idle marks an enrolled worker with nothing to do this slot (e.g.
	// waiting for master bandwidth or for peers).
	Idle
	// Program marks a worker receiving the application program.
	Program
	// Data marks a worker receiving a task-data message.
	Data
	// Compute marks a worker computing (all enrolled workers UP).
	Compute
)

// String returns the Figure 1 letter of the activity.
func (a Activity) String() string {
	switch a {
	case NotEnrolled:
		return "."
	case Idle:
		return "I"
	case Program:
		return "P"
	case Data:
		return "D"
	case Compute:
		return "C"
	default:
		return "?"
	}
}

// Step is the recorded state of one time-slot.
type Step struct {
	Slot       int64
	States     []markov.State
	Activities []Activity
	// Event annotates slot-level happenings ("iteration 3 complete",
	// "restart: P4 DOWN", ...). Empty for ordinary slots.
	Event string
}

// Recorder accumulates steps. The zero value is ready to use. A nil
// *Recorder is a valid no-op recorder, so the engine can record
// unconditionally.
type Recorder struct {
	Steps []Step
}

// Record appends one step. The state and activity slices are copied.
// Calling Record on a nil recorder is a no-op.
func (r *Recorder) Record(slot int64, states []markov.State, acts []Activity, event string) {
	if r == nil {
		return
	}
	st := make([]markov.State, len(states))
	copy(st, states)
	ac := make([]Activity, len(acts))
	copy(ac, acts)
	r.Steps = append(r.Steps, Step{Slot: slot, States: st, Activities: ac, Event: event})
}

// Len returns the number of recorded steps.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.Steps)
}

// Render draws the trace as an ASCII Gantt chart. Each processor row shows
// one character per slot:
//
//	P, D, C, I — the activity letter of an enrolled UP worker,
//	p, d, i    — the same worker while RECLAIMED (suspended),
//	.          — UP but not enrolled,
//	~          — RECLAIMED and not enrolled,
//	#          — DOWN.
//
// Events are listed under the chart.
func (r *Recorder) Render() string {
	if r.Len() == 0 {
		return "(empty trace)\n"
	}
	n := len(r.Steps)
	p := len(r.Steps[0].States)
	var b strings.Builder

	// Time ruler (tens digits on one line, units on the next) for traces
	// long enough to need it.
	fmt.Fprintf(&b, "%-5s", "t")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%d", r.Steps[i].Slot%10)
	}
	b.WriteByte('\n')

	for q := 0; q < p; q++ {
		fmt.Fprintf(&b, "P%-4d", q+1)
		for i := 0; i < n; i++ {
			b.WriteByte(cell(r.Steps[i].States[q], r.Steps[i].Activities[q]))
		}
		b.WriteByte('\n')
	}

	for _, s := range r.Steps {
		if s.Event != "" {
			fmt.Fprintf(&b, "t=%-4d %s\n", s.Slot, s.Event)
		}
	}
	return b.String()
}

func cell(st markov.State, act Activity) byte {
	switch st {
	case markov.Down:
		return '#'
	case markov.Reclaimed:
		switch act {
		case Program:
			return 'p'
		case Data:
			return 'd'
		case Idle, Compute:
			return 'i'
		default:
			return '~'
		}
	default: // Up
		switch act {
		case Program:
			return 'P'
		case Data:
			return 'D'
		case Compute:
			return 'C'
		case Idle:
			return 'I'
		default:
			return '.'
		}
	}
}

// AvailabilityScript exports the recorded availability as one string per
// processor ('u'/'r'/'d' per slot), the format sim.ParseScript accepts —
// so a recorded realization can be replayed exactly, e.g. under a
// different heuristic.
func (r *Recorder) AvailabilityScript() []string {
	if r.Len() == 0 {
		return nil
	}
	p := len(r.Steps[0].States)
	out := make([]string, p)
	var b strings.Builder
	for q := 0; q < p; q++ {
		b.Reset()
		for _, step := range r.Steps {
			switch step.States[q] {
			case markov.Up:
				b.WriteByte('u')
			case markov.Reclaimed:
				b.WriteByte('r')
			default:
				b.WriteByte('d')
			}
		}
		out[q] = b.String()
	}
	return out
}

// Legend returns a human-readable key for Render output.
func Legend() string {
	return strings.Join([]string{
		"P/D/C/I  enrolled UP worker: program / data / compute / idle",
		"p/d/i    same worker while RECLAIMED (suspended)",
		".        UP, not enrolled",
		"~        RECLAIMED, not enrolled",
		"#        DOWN",
	}, "\n") + "\n"
}
