// Package trace records and renders execution traces of the simulator in
// the visual language of the paper's Figure 1: one row per processor, one
// column per time-slot, with the worker's activity (receiving the Program,
// receiving Data, Computing, or Idle while enrolled) drawn over its
// availability state (UP, RECLAIMED, DOWN).
//
// Traces are stored run-length encoded: consecutive slots with identical
// state and activity vectors share one Span, and slot-level events live in
// a separate ascending list. A million-slot idle stretch therefore costs
// one span instead of a million p-sized steps — O(runs + events) memory
// rather than O(cap·p) — which is what lets the event-leap engine record
// full cap-bound runs. Per-slot consumers use the Steps iterator or At;
// both reconstruct the classic slot-by-slot view on the fly.
package trace

import (
	"fmt"
	"iter"
	"slices"
	"sort"
	"strings"

	"tightsched/internal/markov"
)

// Activity is what a worker is doing during a slot.
type Activity uint8

const (
	// NotEnrolled marks a worker outside the current configuration.
	NotEnrolled Activity = iota
	// Idle marks an enrolled worker with nothing to do this slot (e.g.
	// waiting for master bandwidth or for peers).
	Idle
	// Program marks a worker receiving the application program.
	Program
	// Data marks a worker receiving a task-data message.
	Data
	// Compute marks a worker computing (all enrolled workers UP).
	Compute
)

// String returns the Figure 1 letter of the activity.
func (a Activity) String() string {
	switch a {
	case NotEnrolled:
		return "."
	case Idle:
		return "I"
	case Program:
		return "P"
	case Data:
		return "D"
	case Compute:
		return "C"
	default:
		return "?"
	}
}

// Step is the reconstructed state of one time-slot, the unit the Steps
// iterator and At yield. The slices alias the recorder's internal span
// storage; treat them as read-only.
type Step struct {
	Slot       int64
	States     []markov.State
	Activities []Activity
	// Event annotates slot-level happenings ("iteration 3 complete",
	// "restart: P4 DOWN", ...). Empty for ordinary slots.
	Event string
}

// Span is one run-length-encoded stretch of the trace: Len consecutive
// slots starting at From over which every processor's state and activity
// are constant.
type Span struct {
	From       int64
	Len        int64
	States     []markov.State
	Activities []Activity
}

// Event annotates one slot of the trace.
type Event struct {
	Slot int64
	Msg  string
}

// Recorder accumulates a run-length-encoded trace. The zero value is
// ready to use. A nil *Recorder is a valid no-op recorder, so the engine
// can record unconditionally.
type Recorder struct {
	spans  []Span
	events []Event
	slots  int64
}

// Record appends one slot, coalescing it into the previous span when the
// state and activity vectors repeat. The slices are copied only when a new
// span starts. Calling Record on a nil recorder is a no-op.
func (r *Recorder) Record(slot int64, states []markov.State, acts []Activity, event string) {
	if r == nil {
		return
	}
	r.RecordSpan(slot, 1, states, acts)
	r.AddEvent(slot, event)
}

// RecordSpan appends n consecutive slots starting at from, all sharing the
// given state and activity vectors (the event-leap engine's bulk path).
// Contiguous spans with identical vectors coalesce. Slots must be appended
// in ascending order; n <= 0 and nil recorders are no-ops.
func (r *Recorder) RecordSpan(from, n int64, states []markov.State, acts []Activity) {
	if r == nil || n <= 0 {
		return
	}
	if k := len(r.spans); k > 0 {
		last := &r.spans[k-1]
		if last.From+last.Len == from && slices.Equal(last.States, states) && slices.Equal(last.Activities, acts) {
			last.Len += n
			r.slots += n
			return
		}
	}
	st := make([]markov.State, len(states))
	copy(st, states)
	ac := make([]Activity, len(acts))
	copy(ac, acts)
	r.spans = append(r.spans, Span{From: from, Len: n, States: st, Activities: ac})
	r.slots += n
}

// AddEvent annotates one slot. Events must be added in ascending slot
// order; empty messages and nil recorders are no-ops.
func (r *Recorder) AddEvent(slot int64, msg string) {
	if r == nil || msg == "" {
		return
	}
	r.events = append(r.events, Event{Slot: slot, Msg: msg})
}

// Len returns the number of recorded slots.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return int(r.slots)
}

// SpanCount returns the number of run-length spans backing the trace —
// the recorder's actual memory footprint, as opposed to Len slots.
func (r *Recorder) SpanCount() int {
	if r == nil {
		return 0
	}
	return len(r.spans)
}

// Events returns the slot-level event annotations in recording order. The
// slice is a copy.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	return append([]Event(nil), r.events...)
}

// Steps iterates the trace slot by slot, reconstructing per-slot Steps
// from the span encoding. Slices inside yielded Steps alias span storage
// and must not be mutated; when one slot carries several events their
// messages are joined with "; ".
func (r *Recorder) Steps() iter.Seq[Step] {
	return func(yield func(Step) bool) {
		if r == nil {
			return
		}
		ei := 0
		for _, sp := range r.spans {
			for i := int64(0); i < sp.Len; i++ {
				slot := sp.From + i
				for ei < len(r.events) && r.events[ei].Slot < slot {
					ei++ // events on unrecorded slots cannot stall the cursor
				}
				ev := ""
				for ei < len(r.events) && r.events[ei].Slot == slot {
					if ev == "" {
						ev = r.events[ei].Msg
					} else {
						ev += "; " + r.events[ei].Msg
					}
					ei++
				}
				if !yield(Step{Slot: slot, States: sp.States, Activities: sp.Activities, Event: ev}) {
					return
				}
			}
		}
	}
}

// At returns the recorded step of one slot (binary search over spans). It
// panics when the slot was never recorded.
func (r *Recorder) At(slot int64) Step {
	if r != nil {
		i := sort.Search(len(r.spans), func(i int) bool {
			return r.spans[i].From+r.spans[i].Len > slot
		})
		if i < len(r.spans) && r.spans[i].From <= slot {
			sp := r.spans[i]
			ev := ""
			// Events are appended in ascending slot order; binary-search
			// the first one at this slot instead of scanning them all.
			ei := sort.Search(len(r.events), func(i int) bool {
				return r.events[i].Slot >= slot
			})
			for ; ei < len(r.events) && r.events[ei].Slot == slot; ei++ {
				if ev == "" {
					ev = r.events[ei].Msg
				} else {
					ev += "; " + r.events[ei].Msg
				}
			}
			return Step{Slot: slot, States: sp.States, Activities: sp.Activities, Event: ev}
		}
	}
	panic(fmt.Sprintf("trace: slot %d not recorded", slot))
}

// Render draws the trace as an ASCII Gantt chart. Each processor row shows
// one character per slot:
//
//	P, D, C, I — the activity letter of an enrolled UP worker,
//	p, d, i    — the same worker while RECLAIMED (suspended),
//	.          — UP but not enrolled,
//	~          — RECLAIMED and not enrolled,
//	#          — DOWN.
//
// Events are listed under the chart.
func (r *Recorder) Render() string {
	if r.Len() == 0 {
		return "(empty trace)\n"
	}
	p := len(r.spans[0].States)
	var b strings.Builder

	// Time ruler (last digit of each slot) for traces long enough to
	// need it.
	fmt.Fprintf(&b, "%-5s", "t")
	for _, sp := range r.spans {
		for i := int64(0); i < sp.Len; i++ {
			fmt.Fprintf(&b, "%d", (sp.From+i)%10)
		}
	}
	b.WriteByte('\n')

	for q := 0; q < p; q++ {
		fmt.Fprintf(&b, "P%-4d", q+1)
		for _, sp := range r.spans {
			c := cell(sp.States[q], sp.Activities[q])
			for i := int64(0); i < sp.Len; i++ {
				b.WriteByte(c)
			}
		}
		b.WriteByte('\n')
	}

	for _, e := range r.events {
		fmt.Fprintf(&b, "t=%-4d %s\n", e.Slot, e.Msg)
	}
	return b.String()
}

func cell(st markov.State, act Activity) byte {
	switch st {
	case markov.Down:
		return '#'
	case markov.Reclaimed:
		switch act {
		case Program:
			return 'p'
		case Data:
			return 'd'
		case Idle, Compute:
			return 'i'
		default:
			return '~'
		}
	default: // Up
		switch act {
		case Program:
			return 'P'
		case Data:
			return 'D'
		case Compute:
			return 'C'
		case Idle:
			return 'I'
		default:
			return '.'
		}
	}
}

// AvailabilityScript exports the recorded availability as one string per
// processor ('u'/'r'/'d' per slot), the format sim.ParseScript accepts —
// so a recorded realization can be replayed exactly, e.g. under a
// different heuristic.
func (r *Recorder) AvailabilityScript() []string {
	if r.Len() == 0 {
		return nil
	}
	p := len(r.spans[0].States)
	out := make([]string, p)
	var b strings.Builder
	for q := 0; q < p; q++ {
		b.Reset()
		for _, sp := range r.spans {
			var c byte
			switch sp.States[q] {
			case markov.Up:
				c = 'u'
			case markov.Reclaimed:
				c = 'r'
			default:
				c = 'd'
			}
			for i := int64(0); i < sp.Len; i++ {
				b.WriteByte(c)
			}
		}
		out[q] = b.String()
	}
	return out
}

// Legend returns a human-readable key for Render output.
func Legend() string {
	return strings.Join([]string{
		"P/D/C/I  enrolled UP worker: program / data / compute / idle",
		"p/d/i    same worker while RECLAIMED (suspended)",
		".        UP, not enrolled",
		"~        RECLAIMED, not enrolled",
		"#        DOWN",
	}, "\n") + "\n"
}
