// Package cluster is the elastic coordinator/worker execution layer: it
// runs one campaign across any number of worker processes that may
// crash, stall, or resurrect at any time — the same volatility the
// paper models in its platforms, survived by the system that simulates
// them.
//
// The durability primitives come from internal/exp: a campaign
// decomposes into disjoint grid slices with Shard(i,n) semantics, every
// instance has a deterministic coordinate key and a coordinate-derived
// seed, and the per-campaign journal dedupes on those keys. On top of
// that, this package adds the fault-tolerance contract:
//
//   - The coordinator leases work units (unit = shard spec + journal
//     offset + deadline) to workers and ingests completed instances
//     streamed back over HTTP into the campaign journal.
//   - Workers heartbeat to keep their lease alive, with jittered
//     exponential backoff (internal/retry) while the coordinator is
//     unreachable; a coordinator restart costs reconnection time, not
//     work.
//   - A GC pass detects expired leases and requeues their units —
//     optionally split in two (shard (i,n) partitions exactly into
//     (i,2n) and (i+n,2n)) so a straggler's remainder spreads across
//     the fleet. A kill -9'd worker costs one lease, never the
//     campaign.
//   - Results are ingested idempotently: a resurrected worker's
//     duplicate uploads dedupe by coordinate key (determinism
//     guarantees the recorded and re-uploaded outcomes agree; a
//     mismatch is counted and refused rather than journaled).
//   - Lease state persists in an append-only JSONL log next to the
//     journal, so the coordinator itself can be killed mid-campaign
//     and resume: grants, requeues, splits and completions replay;
//     in-flight leases are re-armed with a fresh deadline and expire
//     through the normal GC path if their worker also died.
//
// The acceptance bar is the same as every other execution core in this
// repo: the merged result is byte-identical to a sequential run,
// whatever the interleaving of crashes, requeues and duplicates.
package cluster

import (
	"errors"
	"time"

	"tightsched/internal/exp"
)

// Wire types: the JSON bodies of the coordinator's HTTP contract
// (mounted by internal/serve under /v1/cluster and
// /v1/campaigns/{id}/cluster).

// ClaimRequest asks for a lease on any available work unit.
type ClaimRequest struct {
	// Worker names the claiming process (for lease bookkeeping and
	// metrics; uniqueness is recommended, not enforced).
	Worker string `json:"worker"`
}

// LeaseGrant is a successful claim: one work unit, the campaign
// identity needed to run it, and the heartbeat contract.
type LeaseGrant struct {
	// Campaign is the owning campaign's ID (heartbeats, uploads and
	// completion address it).
	Campaign string `json:"campaign"`
	// Lease is the lease ID, unique within the campaign.
	Lease string `json:"lease"`
	// Unit is the leased grid slice in "i/n" shard form.
	Unit string `json:"unit"`
	// Spec is the campaign's serialized identity; the worker
	// reconstructs the runnable sweep from it (models resolve through
	// the open registry).
	Spec exp.SweepSpec `json:"spec"`
	// Deadline is when the lease expires unless renewed; TTLMillis is
	// the renewal budget (heartbeat well inside it).
	Deadline  time.Time `json:"deadline"`
	TTLMillis int64     `json:"ttlMillis"`
	// Done/Total are campaign-wide journaled-instance counts at grant
	// time (Done is the lease's journal offset).
	Done  int `json:"done"`
	Total int `json:"total"`
}

// HeartbeatResponse acknowledges a renewal with the new deadline.
type HeartbeatResponse struct {
	Deadline time.Time `json:"deadline"`
}

// Record is one completed instance on the wire — the same shape as a
// journal entry line, keyed by the deterministic campaign coordinate.
type Record struct {
	Model     string `json:"model"`
	Ncom      int    `json:"ncom"`
	Wmin      int    `json:"wmin"`
	Scenario  int    `json:"scenario"`
	Trial     int    `json:"trial"`
	Heuristic string `json:"heuristic"`
	Makespan  int64  `json:"makespan"`
	Failed    bool   `json:"failed,omitempty"`
}

// RecordOf converts a completed instance to its wire form.
func RecordOf(inst exp.InstanceResult) Record {
	return Record{
		Model:     inst.Model,
		Ncom:      inst.Point.Ncom,
		Wmin:      inst.Point.Wmin,
		Scenario:  inst.Point.Scenario,
		Trial:     inst.Trial,
		Heuristic: inst.Heuristic,
		Makespan:  inst.Makespan,
		Failed:    inst.Failed,
	}
}

// Instance converts the wire record back to an instance result.
func (r Record) Instance() exp.InstanceResult {
	return exp.InstanceResult{
		Point:     exp.Point{Ncom: r.Ncom, Wmin: r.Wmin, Scenario: r.Scenario},
		Trial:     r.Trial,
		Model:     r.Model,
		Heuristic: r.Heuristic,
		Makespan:  r.Makespan,
		Failed:    r.Failed,
	}
}

// UploadRequest streams a batch of completed instances for one lease.
type UploadRequest struct {
	Instances []Record `json:"instances"`
}

// UploadResponse reports what the idempotent ingest did with the batch.
// Uploads are accepted even for a lease that has expired or been
// requeued — the results are valid either way, dedup makes them safe —
// but LeaseLive tells the worker whether continuing the unit is still
// useful.
type UploadResponse struct {
	Accepted   int  `json:"accepted"`
	Duplicates int  `json:"duplicates"`
	Conflicts  int  `json:"conflicts"`
	LeaseLive  bool `json:"leaseLive"`
}

// CompleteResponse acknowledges a unit's completion.
type CompleteResponse struct {
	Done bool `json:"done"`
}

// Sentinel errors of the lease lifecycle, mapped to HTTP statuses by
// the serving layer.
var (
	// ErrLeaseGone: the lease is unknown, expired, requeued or its unit
	// already completed — the worker should abandon the unit and claim
	// fresh work (410 on the wire).
	ErrLeaseGone = errors.New("cluster: lease gone")
	// ErrUnitIncomplete: completion was claimed but the journal does
	// not cover the unit — the lease is requeued (409 on the wire).
	ErrUnitIncomplete = errors.New("cluster: unit incomplete in journal")
	// ErrCampaignDone: the campaign has finished; nothing to claim.
	ErrCampaignDone = errors.New("cluster: campaign complete")
)
