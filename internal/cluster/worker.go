package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tightsched/internal/exp"
	"tightsched/internal/retry"
)

// WorkerConfig shapes one worker process's claim/run/upload loop.
type WorkerConfig struct {
	// Coordinator is the daemon's base URL (e.g. http://127.0.0.1:8080).
	Coordinator string
	// Name identifies this worker in lease bookkeeping (default
	// host:pid).
	Name string
	// Parallelism bounds the simulation pool per leased unit (default
	// GOMAXPROCS).
	Parallelism int
	// UploadBatch is how many completed instances accumulate before a
	// result upload (default 64). Smaller batches lose less to a worker
	// crash; larger batches make fewer requests.
	UploadBatch int
	// Backoff shapes retries of claims, uploads and completions while
	// the coordinator is unreachable. The zero value retries forever
	// with the retry package's defaults — the elastic choice: a
	// coordinator restart costs reconnection time, never the worker.
	Backoff retry.Policy
	// IdlePoll is the pause between claim attempts when no unit is
	// available (default 500ms).
	IdlePoll time.Duration
	// ExitAfterIdle, when positive, makes RunWorker return nil after
	// finding no work for that long continuously — how scripted fleets
	// drain when the campaign ends. Zero polls forever.
	ExitAfterIdle time.Duration
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
}

func (cfg WorkerConfig) withDefaults() WorkerConfig {
	if cfg.Name == "" {
		host, _ := os.Hostname()
		cfg.Name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if cfg.Parallelism <= 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	if cfg.UploadBatch <= 0 {
		cfg.UploadBatch = 64
	}
	if cfg.IdlePoll <= 0 {
		cfg.IdlePoll = 500 * time.Millisecond
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return cfg
}

// RunWorker runs the worker loop: claim a lease, simulate its unit,
// stream results back in batches, complete, repeat. It returns when ctx
// is cancelled, or nil after ExitAfterIdle of continuous idleness. A
// lost lease (expired while computing, coordinator restarted and GC'd
// it) abandons the unit and claims fresh work — the campaign-level
// dedup makes the partial upload harmless.
func RunWorker(ctx context.Context, cfg WorkerConfig) error {
	cfg = cfg.withDefaults()
	var idleSince time.Time
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		grant, err := cfg.claim(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return err
			}
			cfg.Logf("worker %s: claim: %v", cfg.Name, err)
		}
		if grant == nil {
			now := time.Now()
			if idleSince.IsZero() {
				idleSince = now
			} else if cfg.ExitAfterIdle > 0 && now.Sub(idleSince) >= cfg.ExitAfterIdle {
				cfg.Logf("worker %s: idle for %s; exiting", cfg.Name, cfg.ExitAfterIdle)
				return nil
			}
			if err := sleepCtx(ctx, cfg.IdlePoll); err != nil {
				return err
			}
			continue
		}
		idleSince = time.Time{}
		cfg.Logf("worker %s: leased unit %s of campaign %s (lease %s)",
			cfg.Name, grant.Unit, grant.Campaign, grant.Lease)
		if err := cfg.runLease(ctx, grant); err != nil {
			if ctx.Err() != nil {
				return err
			}
			// Unit abandoned (lease lost, run error): the coordinator's
			// GC requeues it; this worker moves on.
			cfg.Logf("worker %s: lease %s abandoned: %v", cfg.Name, grant.Lease, err)
		}
	}
}

// claim asks for a lease, retrying transient failures under the backoff
// policy. nil grant with nil error means no unit is available right now.
func (cfg WorkerConfig) claim(ctx context.Context) (*LeaseGrant, error) {
	var grant *LeaseGrant
	err := retry.Do(ctx, cfg.Backoff, func(ctx context.Context) error {
		var g LeaseGrant
		status, err := cfg.post(ctx, cfg.Coordinator+"/v1/cluster/claim", ClaimRequest{Worker: cfg.Name}, &g)
		switch {
		case err != nil:
			return err // transient: network failure or 5xx
		case status == http.StatusNoContent:
			grant = nil
			return retry.Stop(nil)
		default:
			grant = &g
			return retry.Stop(nil)
		}
	})
	return grant, err
}

// leaseSession is the per-lease shared state between the run and its
// heartbeat goroutine.
type leaseSession struct {
	cfg   WorkerConfig
	grant *LeaseGrant
	// gone flips once the coordinator declared the lease dead (410).
	gone atomic.Bool
	// batch accumulates completed instances between uploads (only the
	// sink goroutine touches it).
	batch []Record
}

var errLeaseLost = errors.New("cluster: lease no longer held")

// runLease simulates one leased unit: a heartbeat goroutine keeps the
// lease alive while the exp worker pool runs the shard, and every
// completed instance streams back through batched uploads.
func (cfg WorkerConfig) runLease(ctx context.Context, grant *LeaseGrant) error {
	sweep, err := grant.Spec.Sweep()
	if err != nil {
		return err
	}
	unit, err := exp.ParseShard(grant.Unit)
	if err != nil {
		return err
	}
	leaseCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ses := &leaseSession{cfg: cfg, grant: grant}

	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		ses.heartbeatLoop(leaseCtx, cancel)
	}()
	defer hb.Wait()
	defer cancel()

	_, err = exp.RunWithContext(leaseCtx, sweep, exp.RunOptions{
		Shard:            unit,
		Workers:          cfg.Parallelism,
		DiscardInstances: true,
		Sink: func(inst exp.InstanceResult) error {
			ses.batch = append(ses.batch, RecordOf(inst))
			if len(ses.batch) >= cfg.UploadBatch {
				return ses.flush(leaseCtx)
			}
			return nil
		},
	})
	if err != nil {
		if ses.gone.Load() {
			return fmt.Errorf("%w (unit %s)", errLeaseLost, grant.Unit)
		}
		return err
	}
	if err := ses.flush(leaseCtx); err != nil {
		return err
	}
	return ses.complete(leaseCtx)
}

// heartbeatLoop renews the lease at a third of its TTL until the lease
// context ends. Transient failures are logged and retried at the next
// tick — the coordinator re-arms resumed leases with a fresh TTL, so a
// restart inside one TTL costs nothing. A 410 means the lease is gone:
// the loop cancels the run.
func (ses *leaseSession) heartbeatLoop(ctx context.Context, cancel context.CancelFunc) {
	ttl := time.Duration(ses.grant.TTLMillis) * time.Millisecond
	interval := ttl / 3
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		var resp HeartbeatResponse
		status, err := ses.cfg.post(ctx, ses.leaseURL("heartbeat"), struct{}{}, &resp)
		switch {
		case err != nil:
			if ctx.Err() == nil {
				ses.cfg.Logf("worker %s: heartbeat %s: %v (will retry)", ses.cfg.Name, ses.grant.Lease, err)
			}
		case status == http.StatusGone:
			ses.cfg.Logf("worker %s: lease %s gone; abandoning unit %s", ses.cfg.Name, ses.grant.Lease, ses.grant.Unit)
			ses.gone.Store(true)
			cancel()
			return
		}
	}
}

// flush uploads the accumulated batch, retrying transient failures. A
// dead lease stops the unit (errLeaseLost) — the upload itself was
// still accepted and journaled, so no work is wasted.
func (ses *leaseSession) flush(ctx context.Context) error {
	if len(ses.batch) == 0 {
		return nil
	}
	req := UploadRequest{Instances: ses.batch}
	var resp UploadResponse
	err := retry.Do(ctx, ses.cfg.Backoff, func(ctx context.Context) error {
		status, err := ses.cfg.post(ctx, ses.leaseURL("results"), req, &resp)
		switch {
		case err != nil:
			return err
		case status == http.StatusGone:
			return retry.Stop(errLeaseLost)
		default:
			return retry.Stop(nil)
		}
	})
	if err != nil {
		return err
	}
	ses.batch = ses.batch[:0]
	if resp.Conflicts > 0 {
		ses.cfg.Logf("worker %s: upload for lease %s had %d conflicting instances (coordinator kept its records)",
			ses.cfg.Name, ses.grant.Lease, resp.Conflicts)
	}
	if !resp.LeaseLive {
		ses.gone.Store(true)
		return errLeaseLost
	}
	return nil
}

// complete reports the unit finished. 410 (lease expired meanwhile) and
// 409 (coverage gap — the coordinator requeued the unit) both mean the
// worker just moves on.
func (ses *leaseSession) complete(ctx context.Context) error {
	return retry.Do(ctx, ses.cfg.Backoff, func(ctx context.Context) error {
		var resp CompleteResponse
		status, err := ses.cfg.post(ctx, ses.leaseURL("complete"), struct{}{}, &resp)
		switch {
		case err != nil:
			return err
		case status == http.StatusGone:
			return retry.Stop(fmt.Errorf("%w at completion", errLeaseLost))
		case status == http.StatusConflict:
			return retry.Stop(fmt.Errorf("%w: coordinator requeued it", ErrUnitIncomplete))
		default:
			ses.cfg.Logf("worker %s: unit %s complete", ses.cfg.Name, ses.grant.Unit)
			return retry.Stop(nil)
		}
	})
}

func (ses *leaseSession) leaseURL(op string) string {
	return fmt.Sprintf("%s/v1/campaigns/%s/cluster/leases/%s/%s",
		ses.cfg.Coordinator, ses.grant.Campaign, ses.grant.Lease, op)
}

// post sends one JSON request and decodes the response into out (when
// non-nil and the body is JSON). It returns a plain (retryable) error
// for network failures and 5xx responses; 4xx responses return their
// status code with a nil error so callers can map lease semantics.
func (cfg WorkerConfig) post(ctx context.Context, url string, body, out any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, retry.Stop(err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		return 0, retry.Stop(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 10<<20))
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode >= 500 {
		return resp.StatusCode, fmt.Errorf("cluster: %s: %s: %s", url, resp.Status, firstLine(data))
	}
	if out != nil && resp.StatusCode >= 200 && resp.StatusCode < 300 && len(data) > 0 {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("cluster: %s: bad response body: %w", url, err)
		}
	}
	return resp.StatusCode, nil
}

func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
