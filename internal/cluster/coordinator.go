package cluster

import (
	"fmt"
	"os"
	"reflect"
	"sort"
	"sync"
	"time"

	"tightsched/internal/exp"
)

// Config assembles a Coordinator.
type Config struct {
	// Campaign is the owning campaign's ID (stamped into the lease log
	// and every grant).
	Campaign string
	// Name is the submitter's campaign label (lease-log header only).
	Name string
	// Submitted is the campaign's submission time (lease-log header).
	Submitted time.Time
	// Sweep is the runnable campaign. Its grid defines the work units.
	Sweep exp.Sweep
	// Units is the initial decomposition width (default 8, clamped to
	// the grid's coordinate count).
	Units int
	// LeaseTTL is how long a lease lives without a heartbeat (default
	// 15s).
	LeaseTTL time.Duration
	// GCInterval is the cadence the owner should call GC at (recorded
	// in the header for restart; default LeaseTTL/3).
	GCInterval time.Duration
	// Reshard splits a requeued unit into its two half-width children,
	// spreading a straggler's remainder across the fleet.
	Reshard bool
	// Journal is the campaign's result journal: the dedup authority and
	// the completion authority. The coordinator appends to it; the
	// caller owns opening and closing it.
	Journal *exp.Journal
	// StatePath is the lease log file. If it exists the coordinator
	// resumes from it; otherwise a fresh log is created.
	StatePath string
	// OnInstance, when set, observes each newly journaled instance
	// (never duplicates), outside the coordinator lock.
	OnInstance func(exp.InstanceDone)
	// Logf, when set, receives operational log lines.
	Logf func(format string, args ...any)
	// Now is the clock (time.Now when nil) — the test seam for expiry.
	Now func() time.Time
}

// lease is one live grant.
type lease struct {
	id       string
	unit     exp.Shard
	worker   string
	deadline time.Time
	offset   int
}

// unitState is a work unit's position in the lease lifecycle.
type unitState int

const (
	unitAvailable unitState = iota
	unitLeased
	unitDone
)

// unit is one grid slice of the campaign.
type unit struct {
	shard    exp.Shard
	state    unitState
	leaseID  string
	requeues int
}

// Stats is a point-in-time snapshot of the coordinator, for status
// reports and the /metrics exposition.
type Stats struct {
	// Unit gauges.
	Units     int `json:"units"`
	UnitsDone int `json:"unitsDone"`
	Leased    int `json:"leased"`
	Available int `json:"available"`
	// Workers is the number of distinct workers holding live leases.
	Workers int `json:"workers"`
	// Lease lifecycle counters (coordinator lifetime).
	Granted   uint64 `json:"granted"`
	Expired   uint64 `json:"expired"`
	Requeued  uint64 `json:"requeued"`
	Resharded uint64 `json:"resharded"`
	// Ingest counters.
	Heartbeats uint64 `json:"heartbeats"`
	Accepted   uint64 `json:"accepted"`
	Duplicates uint64 `json:"duplicates"`
	Conflicts  uint64 `json:"conflicts"`
	// Instance progress.
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Coordinator owns one campaign's lease table. All state transitions
// are serialized under mu and persisted to the lease log before they
// are acknowledged, so a kill -9 at any point loses at most an
// unacknowledged transition — which the affected worker re-drives.
type Coordinator struct {
	cfg        Config
	spec       exp.SweepSpec
	coords     []exp.Coord
	heuristics []string
	total      int
	// validators for ingested coordinates
	validModel, validHeuristic map[string]bool
	validNcom, validWmin       map[int]bool

	mu     sync.Mutex
	log    *exp.JSONLWriter
	units  map[exp.Shard]*unit
	avail  []exp.Shard // claim queue, FIFO
	leases map[string]*lease
	seq    int
	ended  string // terminal state once written ("" while live)
	doneCh chan struct{}

	granted, expired, requeued, resharded uint64
	heartbeats, accepted, dups, conflicts uint64
}

// Start creates a coordinator for the campaign, resuming from an
// existing lease log at StatePath or creating a fresh one. On resume,
// leases that were live when the previous coordinator died are re-armed
// with a fresh deadline: their workers get one TTL of grace to
// reconnect (they retry with backoff while the coordinator is away),
// after which the normal GC expiry requeues the unit.
func Start(cfg Config) (*Coordinator, error) {
	if cfg.Journal == nil {
		return nil, fmt.Errorf("cluster: coordinator needs a journal")
	}
	if cfg.StatePath == "" {
		return nil, fmt.Errorf("cluster: coordinator needs a state path")
	}
	if err := cfg.Sweep.Validate(); err != nil {
		return nil, err
	}
	if got, want := cfg.Journal.Spec(), cfg.Sweep.Spec(); !reflect.DeepEqual(got, want) {
		return nil, fmt.Errorf("cluster: journal %s records a different campaign (spec %+v, want %+v)",
			cfg.Journal.Path(), got, want)
	}
	if cfg.Units <= 0 {
		cfg.Units = 8
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.GCInterval <= 0 {
		cfg.GCInterval = cfg.LeaseTTL / 3
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}

	co := &Coordinator{
		cfg:        cfg,
		spec:       cfg.Sweep.Spec(),
		coords:     cfg.Sweep.Coords(),
		units:      map[exp.Shard]*unit{},
		leases:     map[string]*lease{},
		doneCh:     make(chan struct{}),
		validModel: map[string]bool{}, validHeuristic: map[string]bool{},
		validNcom: map[int]bool{}, validWmin: map[int]bool{},
	}
	co.heuristics = co.spec.Heuristics
	co.total = len(co.coords) * len(co.heuristics)
	if cfg.Units > len(co.coords) {
		cfg.Units = len(co.coords)
		co.cfg.Units = cfg.Units
	}
	for _, m := range co.spec.Models {
		co.validModel[m] = true
	}
	for _, h := range co.heuristics {
		co.validHeuristic[h] = true
	}
	for _, n := range co.spec.Ncoms {
		co.validNcom[n] = true
	}
	for _, w := range co.spec.Wmins {
		co.validWmin[w] = true
	}

	if _, err := os.Stat(cfg.StatePath); err == nil {
		if err := co.resume(); err != nil {
			return nil, err
		}
	} else {
		header := StateHeader{
			V: 1, Campaign: cfg.Campaign, Name: cfg.Name, Submitted: cfg.Submitted,
			Spec: co.spec, Units: cfg.Units,
			LeaseTTLMillis:   cfg.LeaseTTL.Milliseconds(),
			GCIntervalMillis: cfg.GCInterval.Milliseconds(),
			Reshard:          cfg.Reshard,
		}
		w, err := exp.CreateJSONL(cfg.StatePath, header)
		if err != nil {
			return nil, fmt.Errorf("cluster: create lease log: %w", err)
		}
		co.log = w
		for i := 0; i < cfg.Units; i++ {
			sh := exp.Shard{Index: i, Count: cfg.Units}
			co.units[sh] = &unit{shard: sh}
			co.avail = append(co.avail, sh)
		}
	}

	// Units whose instances are already fully journaled (a restart
	// after the journal outran the lease log, or a resubmitted spec
	// over a finished journal) complete without ever being leased.
	co.mu.Lock()
	defer co.mu.Unlock()
	for _, sh := range append([]exp.Shard(nil), co.avail...) {
		if co.unitCovered(sh) {
			if err := co.markUnitDone(sh, ""); err != nil {
				return nil, err
			}
		}
	}
	if err := co.checkCampaignDone(); err != nil {
		return nil, err
	}
	return co, nil
}

// resume rebuilds the unit and lease tables by replaying the lease log.
func (co *Coordinator) resume() error {
	header, events, terminal, validLen, err := ReadState(co.cfg.StatePath)
	if err != nil {
		return err
	}
	if terminal != "" {
		return fmt.Errorf("cluster: campaign %s already ended %q", header.Campaign, terminal)
	}
	if !reflect.DeepEqual(header.Spec, co.spec) {
		return fmt.Errorf("cluster: lease log %s records a different campaign (spec %+v, want %+v)",
			co.cfg.StatePath, header.Spec, co.spec)
	}
	for i := 0; i < header.Units; i++ {
		sh := exp.Shard{Index: i, Count: header.Units}
		co.units[sh] = &unit{shard: sh}
	}
	now := co.cfg.Now()
	for _, ev := range events {
		sh, perr := exp.ParseShard(ev.Unit)
		if ev.Ev != "end" && perr != nil {
			return fmt.Errorf("cluster: lease log %s: bad unit %q in %q event", co.cfg.StatePath, ev.Unit, ev.Ev)
		}
		u := co.units[sh]
		switch ev.Ev {
		case "grant":
			if u == nil || u.state != unitAvailable {
				return fmt.Errorf("cluster: lease log %s: grant of %s in state %v", co.cfg.StatePath, ev.Unit, u)
			}
			u.state = unitLeased
			u.leaseID = ev.Lease
			// Deadlines are volatile: re-arm with one fresh TTL so a
			// surviving worker reconnects before GC claims expiry.
			co.leases[ev.Lease] = &lease{id: ev.Lease, unit: sh, worker: ev.Worker,
				deadline: now.Add(co.cfg.LeaseTTL), offset: ev.Offset}
			var n int
			if _, err := fmt.Sscanf(ev.Lease, "l%d", &n); err == nil && n > co.seq {
				co.seq = n
			}
		case "requeue":
			if u == nil || u.state != unitLeased {
				return fmt.Errorf("cluster: lease log %s: requeue of %s not leased", co.cfg.StatePath, ev.Unit)
			}
			delete(co.leases, u.leaseID)
			if ev.Split {
				delete(co.units, sh)
				for _, child := range splitShard(sh) {
					co.units[child] = &unit{shard: child, requeues: u.requeues + 1}
				}
			} else {
				u.state = unitAvailable
				u.leaseID = ""
				u.requeues++
			}
		case "done":
			if u == nil {
				return fmt.Errorf("cluster: lease log %s: done for unknown unit %s", co.cfg.StatePath, ev.Unit)
			}
			delete(co.leases, u.leaseID)
			u.state = unitDone
			u.leaseID = ""
		case "end":
			// handled by ReadState; unreachable while terminal == ""
		default:
			return fmt.Errorf("cluster: lease log %s: unknown event %q", co.cfg.StatePath, ev.Ev)
		}
	}
	// Rebuild the claim queue in deterministic (count, index) order.
	var avail []exp.Shard
	for sh, u := range co.units {
		if u.state == unitAvailable {
			avail = append(avail, sh)
		}
	}
	sort.Slice(avail, func(i, j int) bool {
		if avail[i].Count != avail[j].Count {
			return avail[i].Count < avail[j].Count
		}
		return avail[i].Index < avail[j].Index
	})
	co.avail = avail

	w, err := exp.OpenJSONLAppend(co.cfg.StatePath, validLen)
	if err != nil {
		return fmt.Errorf("cluster: reopen lease log: %w", err)
	}
	co.log = w
	co.cfg.Logf("cluster: resumed campaign %s: %d units (%d leased, %d available), %d/%d instances journaled",
		co.cfg.Campaign, len(co.units), len(co.leases), len(co.avail), co.cfg.Journal.DoneCount(), co.total)
	return nil
}

// splitShard partitions shard (i, n) into its two exact half-width
// children (i, 2n) and (i+n, 2n): every coordinate index idx with
// idx ≡ i (mod n) satisfies exactly one of idx ≡ i, idx ≡ i+n (mod 2n).
func splitShard(sh exp.Shard) [2]exp.Shard {
	return [2]exp.Shard{
		{Index: sh.Index, Count: sh.Count * 2},
		{Index: sh.Index + sh.Count, Count: sh.Count * 2},
	}
}

// splittable reports whether both children would own at least one
// coordinate of a grid with c coordinates.
func splittable(sh exp.Shard, c int) bool {
	return sh.Index+sh.Count < c
}

// Total returns the campaign's instance count.
func (co *Coordinator) Total() int { return co.total }

// LeaseTTL returns the effective lease TTL (after defaulting).
func (co *Coordinator) LeaseTTL() time.Duration { return co.cfg.LeaseTTL }

// GCInterval returns the effective GC cadence (after defaulting).
func (co *Coordinator) GCInterval() time.Duration { return co.cfg.GCInterval }

// Progress returns (journaled, total) instance counts.
func (co *Coordinator) Progress() (int, int) {
	return co.cfg.Journal.DoneCount(), co.total
}

// Done returns the channel closed when every instance is journaled.
func (co *Coordinator) Done() <-chan struct{} { return co.doneCh }

// Spec returns the campaign's serialized identity.
func (co *Coordinator) Spec() exp.SweepSpec { return co.spec }

// Claim leases the next available work unit to the worker. It returns
// (nil, nil) when no unit is currently available (all leased or done —
// the worker should poll again) and ErrCampaignDone once the campaign
// has completed.
func (co *Coordinator) Claim(worker string) (*LeaseGrant, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.ended != "" {
		return nil, ErrCampaignDone
	}
	for len(co.avail) > 0 {
		sh := co.avail[0]
		co.avail = co.avail[1:]
		u := co.units[sh]
		if u == nil || u.state != unitAvailable {
			continue
		}
		// A unit already fully covered by the journal (duplicates from
		// an earlier incarnation of this unit's lease) completes
		// without a new lease.
		if co.unitCovered(sh) {
			if err := co.markUnitDone(sh, ""); err != nil {
				return nil, err
			}
			if err := co.checkCampaignDone(); err != nil {
				return nil, err
			}
			if co.ended != "" {
				return nil, ErrCampaignDone
			}
			continue
		}
		co.seq++
		l := &lease{
			id:       fmt.Sprintf("l%d", co.seq),
			unit:     sh,
			worker:   worker,
			deadline: co.cfg.Now().Add(co.cfg.LeaseTTL),
			offset:   co.cfg.Journal.DoneCount(),
		}
		if err := co.log.Append(stateEvent{Ev: "grant", Unit: sh.String(), Lease: l.id,
			Worker: worker, Offset: l.offset}); err != nil {
			return nil, fmt.Errorf("cluster: persist grant: %w", err)
		}
		u.state = unitLeased
		u.leaseID = l.id
		co.leases[l.id] = l
		co.granted++
		co.cfg.Logf("cluster: %s leased unit %s to %s (deadline %s)",
			co.cfg.Campaign, sh, worker, l.deadline.Format(time.RFC3339))
		return &LeaseGrant{
			Campaign:  co.cfg.Campaign,
			Lease:     l.id,
			Unit:      sh.String(),
			Spec:      co.spec,
			Deadline:  l.deadline,
			TTLMillis: co.cfg.LeaseTTL.Milliseconds(),
			Done:      l.offset,
			Total:     co.total,
		}, nil
	}
	return nil, nil
}

// Heartbeat renews the lease's deadline. ErrLeaseGone means the lease
// expired, was requeued, or its unit completed: the worker should stop
// working on it and claim fresh work.
func (co *Coordinator) Heartbeat(leaseID string) (time.Time, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	co.heartbeats++
	l, ok := co.leases[leaseID]
	if !ok || co.ended != "" {
		return time.Time{}, ErrLeaseGone
	}
	l.deadline = co.cfg.Now().Add(co.cfg.LeaseTTL)
	return l.deadline, nil
}

// Ingest records a batch of completed instances idempotently: new
// coordinates are journaled (and observed), coordinates already
// journaled with the same outcome count as duplicates, and mismatched
// outcomes are refused and counted as conflicts (an honest worker can
// never produce one — every instance is a deterministic function of its
// coordinate). Ingest accepts batches for dead leases too — the work is
// valid regardless — and reports whether the lease still stands so the
// worker can stop wasting effort when it does not.
func (co *Coordinator) Ingest(leaseID string, recs []Record) (UploadResponse, error) {
	co.mu.Lock()
	var resp UploadResponse
	if co.ended != "" {
		// The campaign is over (and its journal may be closing): nothing
		// to record, and telling the worker its lease is dead stops it.
		co.mu.Unlock()
		return resp, nil
	}
	var observed []exp.InstanceDone
	for _, rec := range recs {
		inst := rec.Instance()
		if !co.validCoordinate(inst) {
			co.mu.Unlock()
			return UploadResponse{}, fmt.Errorf("cluster: instance %+v is not a coordinate of campaign %s", rec, co.cfg.Campaign)
		}
		k := inst.Key()
		if prev, ok := co.cfg.Journal.Done(k); ok {
			if prev != inst {
				resp.Conflicts++
				co.conflicts++
				co.cfg.Logf("cluster: %s: conflicting result for %+v: recorded %+v, upload %+v (keeping recorded)",
					co.cfg.Campaign, k, prev, inst)
				continue
			}
			resp.Duplicates++
			co.dups++
			continue
		}
		if err := co.cfg.Journal.Append(inst); err != nil {
			co.mu.Unlock()
			return UploadResponse{}, err
		}
		resp.Accepted++
		co.accepted++
		if co.cfg.OnInstance != nil {
			observed = append(observed, exp.InstanceDone{
				Instance:  inst,
				Completed: co.cfg.Journal.DoneCount(),
				Total:     co.total,
			})
		}
	}
	_, resp.LeaseLive = co.leases[leaseID]
	err := co.checkCampaignDone()
	co.mu.Unlock()
	if err != nil {
		return UploadResponse{}, err
	}
	for _, ev := range observed {
		co.cfg.OnInstance(ev)
	}
	return resp, nil
}

// validCoordinate checks that the instance is a point of this
// campaign's grid (a malformed upload must not poison the journal).
func (co *Coordinator) validCoordinate(inst exp.InstanceResult) bool {
	return co.validModel[inst.Model] && co.validHeuristic[inst.Heuristic] &&
		co.validNcom[inst.Point.Ncom] && co.validWmin[inst.Point.Wmin] &&
		inst.Point.Scenario >= 0 && inst.Point.Scenario < co.spec.Scenarios &&
		inst.Trial >= 0 && inst.Trial < co.spec.Trials
}

// Complete finishes a lease: if the journal covers the unit, the unit
// is done; if not (results lost in flight, an upload that never
// arrived), the unit is requeued and ErrUnitIncomplete returned.
func (co *Coordinator) Complete(leaseID string) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.ended != "" {
		// The campaign ended while this completion was in flight —
		// typically because this lease's own final upload crossed the
		// finish line inside Ingest, which settles every unit. On
		// success the completion is an acknowledged no-op; on any
		// other end the lease is simply dead.
		if co.ended == "succeeded" {
			return nil
		}
		return ErrLeaseGone
	}
	l, ok := co.leases[leaseID]
	if !ok {
		return ErrLeaseGone
	}
	if !co.unitCovered(l.unit) {
		co.cfg.Logf("cluster: %s: lease %s completed unit %s without full coverage; requeueing",
			co.cfg.Campaign, leaseID, l.unit)
		if err := co.requeueLocked(l); err != nil {
			return err
		}
		return ErrUnitIncomplete
	}
	if err := co.markUnitDone(l.unit, leaseID); err != nil {
		return err
	}
	return co.checkCampaignDone()
}

// GC expires leases whose deadline has passed: a unit whose coverage
// completed anyway (the worker uploaded everything, then died before
// Complete) is marked done; the rest are requeued — split into their
// two half-width children when resharding is on and the unit is wide
// enough. Returns the number of leases expired.
func (co *Coordinator) GC() (int, error) {
	co.mu.Lock()
	defer co.mu.Unlock()
	if co.ended != "" {
		return 0, nil
	}
	now := co.cfg.Now()
	expired := 0
	for _, l := range co.leases {
		if !l.deadline.Before(now) {
			continue
		}
		expired++
		co.expired++
		co.cfg.Logf("cluster: %s: lease %s (unit %s, worker %s) expired", co.cfg.Campaign, l.id, l.unit, l.worker)
		if co.unitCovered(l.unit) {
			if err := co.markUnitDone(l.unit, l.id); err != nil {
				return expired, err
			}
			continue
		}
		if err := co.requeueLocked(l); err != nil {
			return expired, err
		}
	}
	if expired > 0 {
		if err := co.checkCampaignDone(); err != nil {
			return expired, err
		}
	}
	return expired, nil
}

// requeueLocked returns a leased unit to the claim queue (or replaces
// it with its split children), persisting the transition. Caller holds
// mu.
func (co *Coordinator) requeueLocked(l *lease) error {
	u := co.units[l.unit]
	split := co.cfg.Reshard && splittable(l.unit, len(co.coords))
	if err := co.log.Append(stateEvent{Ev: "requeue", Unit: l.unit.String(), Lease: l.id, Split: split}); err != nil {
		return fmt.Errorf("cluster: persist requeue: %w", err)
	}
	delete(co.leases, l.id)
	co.requeued++
	if split {
		co.resharded++
		delete(co.units, l.unit)
		for _, child := range splitShard(l.unit) {
			co.units[child] = &unit{shard: child, requeues: u.requeues + 1}
			co.avail = append(co.avail, child)
		}
		co.cfg.Logf("cluster: %s: unit %s requeued as %s + %s", co.cfg.Campaign, l.unit,
			splitShard(l.unit)[0], splitShard(l.unit)[1])
		return nil
	}
	u.state = unitAvailable
	u.leaseID = ""
	u.requeues++
	co.avail = append(co.avail, l.unit)
	return nil
}

// markUnitDone persists and applies a unit's completion. Caller holds
// mu.
func (co *Coordinator) markUnitDone(sh exp.Shard, leaseID string) error {
	if err := co.log.Append(stateEvent{Ev: "done", Unit: sh.String(), Lease: leaseID}); err != nil {
		return fmt.Errorf("cluster: persist done: %w", err)
	}
	u := co.units[sh]
	u.state = unitDone
	if u.leaseID != "" {
		delete(co.leases, u.leaseID)
		u.leaseID = ""
	}
	return nil
}

// unitCovered reports whether every instance of the unit is journaled.
// Caller holds mu.
func (co *Coordinator) unitCovered(sh exp.Shard) bool {
	for idx, c := range co.coords {
		if !sh.Covers(idx) {
			continue
		}
		for _, h := range co.heuristics {
			if _, ok := co.cfg.Journal.Done(exp.Key{Model: c.Model, Ncom: c.Point.Ncom,
				Wmin: c.Point.Wmin, Scenario: c.Point.Scenario, Trial: c.Trial, Heuristic: h}); !ok {
				return false
			}
		}
	}
	return true
}

// checkCampaignDone ends the campaign once every instance is journaled.
// Caller holds mu.
func (co *Coordinator) checkCampaignDone() error {
	if co.ended != "" || co.cfg.Journal.DoneCount() < co.total {
		return nil
	}
	// Full coverage means every unit is done, including units whose
	// Complete is still in flight (the end usually lands inside the
	// final Ingest, ahead of the worker's completion call). Settle them
	// so the terminal stats and /metrics read done, not leased.
	for sh, u := range co.units {
		if u.state != unitDone {
			if err := co.markUnitDone(sh, u.leaseID); err != nil {
				return err
			}
		}
	}
	if err := co.endLocked("succeeded"); err != nil {
		return err
	}
	close(co.doneCh)
	return nil
}

// End records the campaign's terminal state in the lease log (so a
// daemon restart does not resurrect a cancelled or failed campaign).
// The "succeeded" end is written by the coordinator itself when the
// last instance lands.
func (co *Coordinator) End(state string) error {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.endLocked(state)
}

func (co *Coordinator) endLocked(state string) error {
	if co.ended != "" {
		return nil
	}
	if err := co.log.Append(stateEvent{Ev: "end", State: state}); err != nil {
		return fmt.Errorf("cluster: persist end: %w", err)
	}
	co.ended = state
	co.cfg.Logf("cluster: campaign %s ended %s (%d/%d instances)", co.cfg.Campaign, state,
		co.cfg.Journal.DoneCount(), co.total)
	return nil
}

// Close closes the lease log. The campaign journal belongs to the
// caller.
func (co *Coordinator) Close() error {
	co.mu.Lock()
	defer co.mu.Unlock()
	return co.log.Close()
}

// Snapshot returns current gauges and lifetime counters.
func (co *Coordinator) Snapshot() Stats {
	co.mu.Lock()
	defer co.mu.Unlock()
	st := Stats{
		Units:      len(co.units),
		Granted:    co.granted,
		Expired:    co.expired,
		Requeued:   co.requeued,
		Resharded:  co.resharded,
		Heartbeats: co.heartbeats,
		Accepted:   co.accepted,
		Duplicates: co.dups,
		Conflicts:  co.conflicts,
		Done:       co.cfg.Journal.DoneCount(),
		Total:      co.total,
	}
	workers := map[string]bool{}
	for _, u := range co.units {
		switch u.state {
		case unitDone:
			st.UnitsDone++
		case unitLeased:
			st.Leased++
		case unitAvailable:
			st.Available++
		}
	}
	for _, l := range co.leases {
		workers[l.worker] = true
	}
	st.Workers = len(workers)
	return st
}
