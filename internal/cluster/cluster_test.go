package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"tightsched/internal/exp"
	"tightsched/internal/retry"
)

// tinySweep is a fast campaign with the paper sweep's full shape.
func tinySweep(heuristics []string) exp.Sweep {
	return exp.Sweep{
		M: 3, Ncoms: []int{5}, Wmins: []int{1, 2}, Scenarios: 2, Trials: 2,
		P: 8, Iterations: 2, Cap: 50_000, Seed: 99, Heuristics: heuristics,
	}
}

// fakeClock is the coordinator's injectable time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// testCoordinator builds a coordinator over a fresh journal in dir.
func testCoordinator(t *testing.T, dir string, sweep exp.Sweep, mut func(*Config)) (*Coordinator, *exp.Journal) {
	t.Helper()
	j, err := exp.CreateJournal(filepath.Join(dir, "c.journal"), sweep, exp.Shard{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Campaign:  "ctest",
		Sweep:     sweep,
		Units:     4,
		LeaseTTL:  10 * time.Second,
		Journal:   j,
		StatePath: filepath.Join(dir, "c.leases"),
		Logf:      t.Logf,
	}
	if mut != nil {
		mut(&cfg)
	}
	co, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return co, j
}

// unitRecords simulates one unit's instances out-of-band (no journal)
// and returns them in wire form — what an honest worker would upload.
func unitRecords(t *testing.T, sweep exp.Sweep, unit string) []Record {
	t.Helper()
	sh, err := exp.ParseShard(unit)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exp.RunWithContext(context.Background(), sweep, exp.RunOptions{Shard: sh})
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]Record, 0, len(res.Instances))
	for _, inst := range res.Instances {
		recs = append(recs, RecordOf(inst))
	}
	return recs
}

// assertSameResults compares instance sets by coordinate key.
func assertSameResults(t *testing.T, want, got []exp.InstanceResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("instance count: want %d, got %d", len(want), len(got))
	}
	wm := map[exp.Key]exp.InstanceResult{}
	for _, inst := range want {
		wm[inst.Key()] = inst
	}
	for _, inst := range got {
		ref, ok := wm[inst.Key()]
		if !ok {
			t.Fatalf("unexpected instance %+v", inst)
		}
		if !reflect.DeepEqual(ref, inst) {
			t.Fatalf("instance %+v: want %+v, got %+v", inst.Key(), ref, inst)
		}
	}
}

// drain completes the campaign by honestly working every remaining
// lease, like an idle-polling worker fleet would.
func drain(t *testing.T, co *Coordinator, sweep exp.Sweep) {
	t.Helper()
	for i := 0; i < 1000; i++ {
		grant, err := co.Claim("drain")
		if errors.Is(err, ErrCampaignDone) {
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		if grant == nil {
			t.Fatal("no unit available but campaign not done (leases stuck?)")
		}
		if _, err := co.Ingest(grant.Lease, unitRecords(t, sweep, grant.Unit)); err != nil {
			t.Fatal(err)
		}
		if err := co.Complete(grant.Lease); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatal("campaign did not complete after 1000 leases")
}

func TestLeaseLifecycle(t *testing.T) {
	s := tinySweep([]string{"IE", "RANDOM"})
	clock := newFakeClock()
	co, j := testCoordinator(t, t.TempDir(), s, func(c *Config) { c.Now = clock.Now })
	defer co.Close()
	defer j.Close()

	grant, err := co.Claim("w1")
	if err != nil || grant == nil {
		t.Fatalf("claim: grant=%v err=%v", grant, err)
	}
	if grant.Total != co.Total() || grant.Done != 0 {
		t.Fatalf("grant counters: %+v", grant)
	}

	// Heartbeats extend the deadline by a full TTL from "now".
	clock.Advance(5 * time.Second)
	deadline, err := co.Heartbeat(grant.Lease)
	if err != nil {
		t.Fatal(err)
	}
	if want := clock.Now().Add(10 * time.Second); !deadline.Equal(want) {
		t.Fatalf("renewed deadline %v, want %v", deadline, want)
	}

	// Completing before the journal covers the unit refuses and
	// requeues: the lease dies, the unit becomes claimable again.
	if err := co.Complete(grant.Lease); !errors.Is(err, ErrUnitIncomplete) {
		t.Fatalf("premature complete: %v, want ErrUnitIncomplete", err)
	}
	if _, err := co.Heartbeat(grant.Lease); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("heartbeat after requeue: %v, want ErrLeaseGone", err)
	}
	// Requeued units rejoin the tail of the queue; the next claim
	// simply gets whatever is first in line.
	re, err := co.Claim("w2")
	if err != nil || re == nil {
		t.Fatalf("reclaim: %v, %v", re, err)
	}

	// Honest completion: upload everything, complete, lease resolves.
	recs := unitRecords(t, s, re.Unit)
	resp, err := co.Ingest(re.Lease, recs)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != len(recs) || resp.Duplicates != 0 || resp.Conflicts != 0 || !resp.LeaseLive {
		t.Fatalf("ingest response: %+v", resp)
	}
	if err := co.Complete(re.Lease); err != nil {
		t.Fatal(err)
	}
	st := co.Snapshot()
	if st.UnitsDone != 1 || st.Granted != 2 || st.Requeued != 1 {
		t.Fatalf("stats after one unit: %+v", st)
	}

	drain(t, co, s)
	select {
	case <-co.Done():
	default:
		t.Fatal("Done channel not closed after full coverage")
	}

	ref, err := exp.Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, ref.Instances, j.Instances())
}

func TestGCExpiryRequeueAndReshard(t *testing.T) {
	s := tinySweep([]string{"IE"})
	clock := newFakeClock()
	co, j := testCoordinator(t, t.TempDir(), s, func(c *Config) {
		c.Now = clock.Now
		c.Reshard = true
		c.Units = 2 // 8 coords: units 0/2 and 1/2, both splittable
	})
	defer co.Close()
	defer j.Close()

	grant, err := co.Claim("doomed")
	if err != nil || grant == nil {
		t.Fatalf("claim: %v, %v", grant, err)
	}

	// Within the TTL nothing expires.
	if n, err := co.GC(); err != nil || n != 0 {
		t.Fatalf("early GC: %d, %v", n, err)
	}
	clock.Advance(11 * time.Second)
	n, err := co.GC()
	if err != nil || n != 1 {
		t.Fatalf("GC after TTL: expired %d, %v", n, err)
	}
	if _, err := co.Heartbeat(grant.Lease); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("heartbeat after expiry: %v", err)
	}

	// Resharding replaced 0/2 with 0/4 and 2/4, queued behind 1/2.
	var units []string
	for i := 0; i < 3; i++ {
		g, err := co.Claim("fleet")
		if err != nil || g == nil {
			t.Fatalf("claim %d: %v, %v", i, g, err)
		}
		units = append(units, g.Unit)
	}
	if want := []string{"1/2", "0/4", "2/4"}; !reflect.DeepEqual(units, want) {
		t.Fatalf("post-reshard claim order: %v, want %v", units, want)
	}
	st := co.Snapshot()
	if st.Requeued != 1 || st.Resharded != 1 || st.Expired != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestExpiryDuringUpload is the in-flight-results race: the lease
// expires while the worker is mid-upload. The upload is still accepted
// (the instances are valid — determinism doesn't care who computed
// them) but the response tells the worker to stop; the requeued unit
// then completes instantly on its next claim because the journal
// already covers it.
func TestExpiryDuringUpload(t *testing.T) {
	s := tinySweep([]string{"IE"})
	clock := newFakeClock()
	co, j := testCoordinator(t, t.TempDir(), s, func(c *Config) {
		c.Now = clock.Now
		c.Units = 1
	})
	defer co.Close()
	defer j.Close()

	grant, err := co.Claim("slow")
	if err != nil || grant == nil {
		t.Fatalf("claim: %v, %v", grant, err)
	}
	recs := unitRecords(t, s, grant.Unit)

	clock.Advance(11 * time.Second)
	if n, _ := co.GC(); n != 1 {
		t.Fatalf("expected 1 expiry, got %d", n)
	}

	resp, err := co.Ingest(grant.Lease, recs)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != len(recs) || resp.LeaseLive {
		t.Fatalf("dead-lease ingest: %+v", resp)
	}

	// That upload covered the whole grid, so the campaign ended on the
	// spot — the requeued unit settled without a second lease, and the
	// slow worker's late Complete is acknowledged, not refused.
	if err := co.Complete(grant.Lease); err != nil {
		t.Fatalf("complete after success: %v", err)
	}
	if _, err := co.Claim("next"); !errors.Is(err, ErrCampaignDone) {
		t.Fatalf("claim after success: %v, want ErrCampaignDone", err)
	}
	select {
	case <-co.Done():
	default:
		t.Fatal("campaign not done")
	}
}

func TestIngestDedupAndConflict(t *testing.T) {
	s := tinySweep([]string{"IE", "RANDOM"})
	co, j := testCoordinator(t, t.TempDir(), s, nil)
	defer co.Close()
	defer j.Close()

	grant, err := co.Claim("w")
	if err != nil || grant == nil {
		t.Fatalf("claim: %v, %v", grant, err)
	}
	recs := unitRecords(t, s, grant.Unit)
	if _, err := co.Ingest(grant.Lease, recs); err != nil {
		t.Fatal(err)
	}

	// A resurrected worker re-uploads the identical batch: all dupes.
	resp, err := co.Ingest(grant.Lease, recs)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Duplicates != len(recs) || resp.Accepted != 0 || resp.Conflicts != 0 {
		t.Fatalf("duplicate ingest: %+v", resp)
	}

	// A corrupted record (same coordinate, different outcome) is
	// refused and counted; the journal keeps the original.
	bad := recs[0]
	bad.Makespan += 7
	resp, err = co.Ingest(grant.Lease, []Record{bad})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Conflicts != 1 || resp.Accepted != 0 {
		t.Fatalf("conflict ingest: %+v", resp)
	}
	if got, _ := j.Done(bad.Instance().Key()); got.Makespan != recs[0].Makespan {
		t.Fatalf("conflict overwrote journal: %+v", got)
	}

	// A record off the campaign grid is an error, not a journal entry.
	off := recs[0]
	off.Heuristic = "Y-IE" // not in this campaign's heuristic set
	if _, err := co.Ingest(grant.Lease, []Record{off}); err == nil {
		t.Fatal("off-grid record accepted")
	}
}

// TestCoordinatorRestart kills the coordinator mid-campaign (process
// death: nothing flushed beyond the lease log's acknowledged
// transitions) and restarts it over the same files. Granted leases
// survive with fresh deadlines, expire through GC since their workers
// are gone too, and the campaign completes byte-identically.
func TestCoordinatorRestart(t *testing.T) {
	s := tinySweep([]string{"IE", "RANDOM"})
	dir := t.TempDir()
	clock := newFakeClock()

	co, j := testCoordinator(t, dir, s, func(c *Config) { c.Now = clock.Now })
	g1, err := co.Claim("w1")
	if err != nil || g1 == nil {
		t.Fatalf("claim 1: %v, %v", g1, err)
	}
	g2, err := co.Claim("w2")
	if err != nil || g2 == nil {
		t.Fatalf("claim 2: %v, %v", g2, err)
	}
	// w1 uploaded part of its unit before the coordinator died.
	recs := unitRecords(t, s, g1.Unit)
	if _, err := co.Ingest(g1.Lease, recs[:len(recs)/2]); err != nil {
		t.Fatal(err)
	}
	co.Close()
	j.Close()

	// Restart over the same journal + lease log.
	j2, err := exp.OpenJournal(filepath.Join(dir, "c.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	co2, err := Start(Config{
		Campaign: "ctest", Sweep: s, Units: 4, LeaseTTL: 10 * time.Second,
		Journal: j2, StatePath: filepath.Join(dir, "c.leases"),
		Logf: t.Logf, Now: clock.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer co2.Close()

	st := co2.Snapshot()
	if st.Leased != 2 || st.Done != len(recs)/2 {
		t.Fatalf("resumed stats: %+v", st)
	}
	// The dead workers' leases are re-armed for one TTL of grace, then
	// expire through the normal GC path.
	if n, _ := co2.GC(); n != 0 {
		t.Fatalf("GC inside grace window expired %d", n)
	}
	if _, err := co2.Heartbeat(g1.Lease); err != nil {
		t.Fatalf("surviving worker's heartbeat after restart: %v", err)
	}
	clock.Advance(11 * time.Second)
	if n, _ := co2.GC(); n != 2 {
		t.Fatalf("stale leases expired: %d, want 2", n)
	}

	drain(t, co2, s)
	ref, err := exp.Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, ref.Instances, j2.Instances())

	// The terminal campaign refuses a third incarnation.
	j3, err := exp.OpenJournal(filepath.Join(dir, "c.journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if _, err := Start(Config{
		Campaign: "ctest", Sweep: s, Units: 4, Journal: j3,
		StatePath: filepath.Join(dir, "c.leases"),
	}); err == nil || !strings.Contains(err.Error(), "already ended") {
		t.Fatalf("restarting an ended campaign: %v", err)
	}
}

// TestDoubleClaimRace hammers Claim/Complete from many goroutines under
// the race detector: a unit must never be live-leased twice.
func TestDoubleClaimRace(t *testing.T) {
	s := tinySweep([]string{"IE"})
	co, j := testCoordinator(t, t.TempDir(), s, func(c *Config) { c.Units = 4 })
	defer co.Close()
	defer j.Close()

	var mu sync.Mutex
	live := map[string]string{} // unit -> lease currently held by this test

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			worker := fmt.Sprintf("w%d", w)
			for i := 0; i < 25; i++ {
				grant, err := co.Claim(worker)
				if err != nil || grant == nil {
					continue
				}
				mu.Lock()
				if holder, ok := live[grant.Unit]; ok {
					mu.Unlock()
					t.Errorf("unit %s double-leased (%s and %s)", grant.Unit, holder, grant.Lease)
					return
				}
				live[grant.Unit] = grant.Lease
				mu.Unlock()

				// Completing without coverage requeues the unit; the
				// lease dies first, so the unit is only reclaimable
				// after we drop it from the live set.
				mu.Lock()
				delete(live, grant.Unit)
				err = co.Complete(grant.Lease)
				mu.Unlock()
				if !errors.Is(err, ErrUnitIncomplete) {
					t.Errorf("complete: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := co.Snapshot()
	if st.Granted != st.Requeued {
		t.Fatalf("leaked leases: %+v", st)
	}
}

// clusterTestHandler mounts the coordinator behind the same routes
// internal/serve registers, so RunWorker is exercised over real HTTP.
func clusterTestHandler(co *Coordinator) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/claim", func(w http.ResponseWriter, r *http.Request) {
		grant, err := co.Claim(r.RemoteAddr)
		if err != nil || grant == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		writeTestJSON(w, http.StatusOK, grant)
	})
	mux.HandleFunc("POST /v1/campaigns/{id}/cluster/leases/{lease}/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		deadline, err := co.Heartbeat(r.PathValue("lease"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusGone)
			return
		}
		writeTestJSON(w, http.StatusOK, HeartbeatResponse{Deadline: deadline})
	})
	mux.HandleFunc("POST /v1/campaigns/{id}/cluster/leases/{lease}/results", func(w http.ResponseWriter, r *http.Request) {
		var req UploadRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := co.Ingest(r.PathValue("lease"), req.Instances)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeTestJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/campaigns/{id}/cluster/leases/{lease}/complete", func(w http.ResponseWriter, r *http.Request) {
		switch err := co.Complete(r.PathValue("lease")); {
		case err == nil:
			writeTestJSON(w, http.StatusOK, CompleteResponse{Done: true})
		case errors.Is(err, ErrUnitIncomplete):
			http.Error(w, err.Error(), http.StatusConflict)
		default:
			http.Error(w, err.Error(), http.StatusGone)
		}
	})
	return mux
}

func writeTestJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// TestWorkerFleetWithCrash runs a real worker fleet over HTTP, kills
// one worker mid-campaign, and requires the journal to end up
// byte-identical to a sequential run — the package's acceptance bar.
func TestWorkerFleetWithCrash(t *testing.T) {
	s := tinySweep([]string{"IE", "RANDOM"})
	s.Wmins = []int{1, 2, 3} // 12 coords / 24 instances: room for a mid-flight kill
	co, j := testCoordinator(t, t.TempDir(), s, func(c *Config) {
		c.Units = 6
		c.LeaseTTL = time.Second
		c.Reshard = true
	})
	defer co.Close()
	defer j.Close()

	ts := httptest.NewServer(clusterTestHandler(co))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// GC loop, as the daemon runs it.
	gcCtx, gcStop := context.WithCancel(ctx)
	defer gcStop()
	go func() {
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-gcCtx.Done():
				return
			case <-tick.C:
				co.GC()
			}
		}
	}()

	backoff := retry.Policy{Initial: 10 * time.Millisecond, Max: 200 * time.Millisecond}
	workerCfg := func(name string) WorkerConfig {
		return WorkerConfig{
			Coordinator: ts.URL, Name: name, Parallelism: 2,
			UploadBatch: 2, IdlePoll: 20 * time.Millisecond,
			Backoff: backoff, Logf: t.Logf,
		}
	}

	// The doomed worker dies as soon as it has claimed a lease (its
	// heartbeats stop mid-unit, exactly like kill -9).
	doomedCtx, kill := context.WithCancel(ctx)
	var fleet sync.WaitGroup
	fleet.Add(1)
	go func() {
		defer fleet.Done()
		cfg := workerCfg("doomed")
		cfg.Logf = func(format string, args ...any) {
			t.Logf(format, args...)
			if strings.Contains(format, "leased unit") {
				kill()
			}
		}
		RunWorker(doomedCtx, cfg)
	}()

	for i := 0; i < 2; i++ {
		fleet.Add(1)
		go func(i int) {
			defer fleet.Done()
			RunWorker(ctx, workerCfg(fmt.Sprintf("w%d", i)))
		}(i)
	}

	select {
	case <-co.Done():
	case <-ctx.Done():
		t.Fatalf("campaign did not complete: %+v", co.Snapshot())
	}
	cancel()
	fleet.Wait()

	ref, err := exp.Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResults(t, ref.Instances, j.Instances())

	// The doomed worker's lease must have expired and requeued (unless
	// it died before winning a single claim race, which the kill-on-
	// grant hook rules out).
	st := co.Snapshot()
	if st.Expired == 0 || st.Requeued == 0 {
		t.Fatalf("no lease expired despite the killed worker: %+v", st)
	}
}
