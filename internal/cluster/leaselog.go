package cluster

import (
	"encoding/json"
	"fmt"
	"time"

	"tightsched/internal/exp"
)

// The lease state log is the coordinator's durability: an append-only
// JSONL file (same crash-tolerant substrate as the campaign journal)
// holding one header line — the campaign's full cluster identity — and
// one line per lease-lifecycle transition. Heartbeats are deliberately
// NOT logged: deadlines are volatile state, recomputed on restart, so
// the log grows with decisions (grants, requeues, completions), not
// with time. Replaying the log over the campaign journal reconstructs
// the exact unit/lease state a killed coordinator held, modulo
// deadlines — which is all a correct restart needs, because expired
// leases requeue through the normal GC path and duplicate uploads
// dedupe by coordinate key.

// StateHeader is the lease log's first line: everything needed to
// re-register and resume the campaign after a daemon restart, without
// consulting any other file.
type StateHeader struct {
	V         int           `json:"v"`
	Campaign  string        `json:"campaign"`
	Name      string        `json:"name,omitempty"`
	Submitted time.Time     `json:"submitted"`
	Spec      exp.SweepSpec `json:"spec"`
	// Units is the initial decomposition width (clamped to the grid's
	// coordinate count at creation).
	Units            int   `json:"units"`
	LeaseTTLMillis   int64 `json:"leaseTtlMillis"`
	GCIntervalMillis int64 `json:"gcIntervalMillis"`
	Reshard          bool  `json:"reshard"`
}

// LeaseTTL returns the header's lease TTL as a duration.
func (h StateHeader) LeaseTTL() time.Duration {
	return time.Duration(h.LeaseTTLMillis) * time.Millisecond
}

// GCInterval returns the header's GC cadence as a duration.
func (h StateHeader) GCInterval() time.Duration {
	return time.Duration(h.GCIntervalMillis) * time.Millisecond
}

// stateEvent is one logged transition.
type stateEvent struct {
	// Ev is the transition kind: "grant", "requeue", "done", "end".
	Ev string `json:"ev"`
	// Unit names the affected work unit in "i/n" form.
	Unit string `json:"unit,omitempty"`
	// Lease is the lease the transition belongs to ("" for a done
	// detected from journal coverage alone).
	Lease  string `json:"lease,omitempty"`
	Worker string `json:"worker,omitempty"`
	// Offset is the campaign journal's instance count at grant time.
	Offset int `json:"offset,omitempty"`
	// Split marks a requeue that replaced the unit with its two
	// half-width children.
	Split bool `json:"split,omitempty"`
	// State is the terminal campaign state of an "end" event.
	State string `json:"state,omitempty"`
}

// ReadState reads a lease log without modifying it: the header, the
// decoded events of the intact prefix, the terminal state ("" while the
// campaign is live), and the byte length of the intact prefix for
// appending. A torn tail — the signature of a coordinator killed
// mid-write — is dropped: the transition it would have recorded was
// never acknowledged, so losing it is consistent by construction.
func ReadState(path string) (StateHeader, []stateEvent, string, int64, error) {
	headerLine, records, validLen, err := exp.ReadJSONL(path)
	if err != nil {
		return StateHeader{}, nil, "", 0, fmt.Errorf("cluster: read state %s: %w", path, err)
	}
	var header StateHeader
	if err := json.Unmarshal(headerLine, &header); err != nil {
		return StateHeader{}, nil, "", 0, fmt.Errorf("cluster: state %s header: %w", path, err)
	}
	if header.V != 1 {
		return StateHeader{}, nil, "", 0, fmt.Errorf("cluster: state %s has unknown version %d", path, header.V)
	}
	events := make([]stateEvent, 0, len(records))
	terminal := ""
	for i, line := range records {
		var ev stateEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			if i == len(records)-1 {
				validLen -= int64(len(line)) + 1 // torn tail
				break
			}
			return StateHeader{}, nil, "", 0, fmt.Errorf("cluster: state %s line %d: %w", path, i+2, err)
		}
		if ev.Ev == "end" {
			terminal = ev.State
		}
		events = append(events, ev)
	}
	return header, events, terminal, validLen, nil
}

// StateCampaignID reads just enough of a lease log to identify its
// campaign and terminal state — what the daemon's startup rescan needs
// to decide whether to resume, and what to register it as.
func StateCampaignID(path string) (StateHeader, string, error) {
	header, _, terminal, _, err := ReadState(path)
	return header, terminal, err
}
