package exp

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV dumps the raw instance results as CSV (header row included):
// ncom, wmin, scenario, trial, heuristic, makespan, failed, model. The
// format is meant for external plotting of Figure 2-style series.
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"ncom", "wmin", "scenario", "trial", "heuristic", "makespan", "failed", "model"}); err != nil {
		return err
	}
	for _, inst := range r.Instances {
		rec := []string{
			strconv.Itoa(inst.Point.Ncom),
			strconv.Itoa(inst.Point.Wmin),
			strconv.Itoa(inst.Point.Scenario),
			strconv.Itoa(inst.Trial),
			inst.Heuristic,
			strconv.FormatInt(inst.Makespan, 10),
			strconv.FormatBool(inst.Failed),
			modelName(inst),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses results written by WriteCSV back into a Result (with an
// empty Sweep: the CSV carries instances, not campaign metadata). Legacy
// 7-column files without the model column read back as "markov".
func ReadCSV(r io.Reader) (*Result, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("exp: empty CSV")
	}
	out := &Result{}
	wmins := map[int]bool{}
	for i, row := range rows[1:] {
		if len(row) != 7 && len(row) != 8 {
			return nil, fmt.Errorf("exp: row %d has %d fields, want 7 or 8", i+2, len(row))
		}
		ncom, err1 := strconv.Atoi(row[0])
		wmin, err2 := strconv.Atoi(row[1])
		scen, err3 := strconv.Atoi(row[2])
		trial, err4 := strconv.Atoi(row[3])
		mk, err5 := strconv.ParseInt(row[5], 10, 64)
		failed, err6 := strconv.ParseBool(row[6])
		for _, e := range []error{err1, err2, err3, err4, err5, err6} {
			if e != nil {
				return nil, fmt.Errorf("exp: row %d: %w", i+2, e)
			}
		}
		model := "markov"
		if len(row) == 8 && row[7] != "" {
			model = row[7]
		}
		out.Instances = append(out.Instances, InstanceResult{
			Point:     Point{Ncom: ncom, Wmin: wmin, Scenario: scen},
			Trial:     trial,
			Model:     model,
			Heuristic: row[4],
			Makespan:  mk,
			Failed:    failed,
		})
		wmins[wmin] = true
	}
	for w := range wmins {
		out.Sweep.Wmins = append(out.Sweep.Wmins, w)
	}
	return out, nil
}
