package exp

import (
	"sync"
	"testing"
)

// TestBroadcasterFanOut: every subscriber sees every published event in
// order, and Close ends all streams after the buffered tail.
func TestBroadcasterFanOut(t *testing.T) {
	b := NewBroadcaster(8)
	subA, subB := b.Subscribe(), b.Subscribe()

	events := []Event{
		Progress{Completed: 1, Total: 3},
		InstanceDone{Completed: 1, Total: 3},
		PointDone{Model: "markov", CompletedPoints: 1, TotalPoints: 1},
	}
	for _, ev := range events {
		b.Publish(ev)
	}
	b.Close()

	for name, sub := range map[string]*Subscription{"A": subA, "B": subB} {
		var got []Event
		for ev := range sub.Events() {
			got = append(got, ev)
		}
		if len(got) != len(events) {
			t.Fatalf("subscriber %s received %d events, want %d", name, len(got), len(events))
		}
		for i := range events {
			if got[i] != events[i] {
				t.Errorf("subscriber %s event %d = %#v, want %#v", name, i, got[i], events[i])
			}
		}
		if sub.Lagged() {
			t.Errorf("subscriber %s marked lagged", name)
		}
	}
}

// TestBroadcasterDropsLaggedSubscriber: a consumer that stops reading is
// cut loose — its channel closes with Lagged true — while healthy
// subscribers keep receiving and the publisher never blocks.
func TestBroadcasterDropsLaggedSubscriber(t *testing.T) {
	const buffer = 2
	b := NewBroadcaster(buffer)
	stalled := b.Subscribe()
	healthy := b.Subscribe()

	// The healthy reader acknowledges each event, so the publisher can
	// pace itself: healthy never falls behind, stalled never reads.
	acks := make(chan Event)
	go func() {
		for ev := range healthy.Events() {
			acks <- ev
		}
		close(acks)
	}()

	const published = 50
	for i := 0; i < published; i++ {
		b.Publish(Progress{Completed: i, Total: published})
		if ev := <-acks; ev != (Progress{Completed: i, Total: published}) {
			t.Fatalf("healthy subscriber saw %#v at publish %d", ev, i)
		}
	}
	b.Close()
	if _, ok := <-acks; ok {
		t.Error("healthy stream should close with the broadcaster")
	}

	if !stalled.Lagged() {
		t.Error("stalled subscriber not marked lagged")
	}
	if healthy.Lagged() {
		t.Error("healthy subscriber must not be marked lagged")
	}
	n := 0
	for range stalled.Events() {
		n++
	}
	if n != buffer {
		t.Errorf("stalled subscriber drained %d buffered events, want its buffer size %d", n, buffer)
	}
}

// TestBroadcasterLifecycleEdges: subscribing after Close yields an
// already-closed stream; Cancel and Close are idempotent and safe in any
// order; publishing after Close is a no-op.
func TestBroadcasterLifecycleEdges(t *testing.T) {
	b := NewBroadcaster(0)
	sub := b.Subscribe()
	sub.Cancel()
	sub.Cancel() // idempotent
	b.Close()
	b.Close() // idempotent
	sub.Cancel()
	b.Publish(Progress{}) // no-op, must not panic

	late := b.Subscribe()
	if _, ok := <-late.Events(); ok {
		t.Error("subscription made after Close should start closed")
	}
	if late.Lagged() {
		t.Error("late subscriber is closed, not lagged")
	}
}

// TestBroadcasterConcurrentPublishSubscribe is the -race exercise:
// subscribers attach, read and cancel while the publisher runs.
func TestBroadcasterConcurrentPublishSubscribe(t *testing.T) {
	b := NewBroadcaster(16)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub := b.Subscribe()
			n := 0
			for range sub.Events() {
				if n++; i%2 == 0 && n == 5 {
					sub.Cancel()
					return
				}
			}
		}(i)
	}
	for i := 0; i < 200; i++ {
		b.Publish(Progress{Completed: i, Total: 200})
	}
	b.Close()
	wg.Wait()
}
