package exp

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"tightsched/internal/stats"
)

// Columnar export: one raw little-endian file per instance field, so
// external tooling (numpy.memmap, Arrow, DuckDB) can map a campaign's
// data without parsing it. Low-cardinality string fields (model,
// heuristic) are dictionary-encoded as uint32 indices into dictionaries
// listed in the manifest. The export streams a journal record by record —
// memory stays O(1) in the number of instances; only the dictionaries
// and the running summaries grow, and those are bounded by field
// cardinality.

// columnsManifestName is the manifest filename inside an export dir.
const columnsManifestName = "manifest.json"

// ColumnFile describes one exported column in the manifest.
type ColumnFile struct {
	// Name is the logical field name ("makespan").
	Name string `json:"name"`
	// File is the data file's name inside the export directory.
	File string `json:"file"`
	// Type is the element encoding: "u8", "i32", "i64" or "u32" —
	// little-endian, fixed width, no header or padding.
	Type string `json:"type"`
	// Dictionary, for u32 dictionary-encoded columns, maps index i to
	// Dictionary[i]; nil otherwise.
	Dictionary []string `json:"dictionary,omitempty"`
}

// ColumnsManifest is the manifest.json document of a columnar export.
type ColumnsManifest struct {
	// Rows is the number of elements in every column file.
	Rows int `json:"rows"`
	// Source records the journal the export was produced from.
	Source string `json:"source"`
	// Format is the source journal's encoding ("jsonl" or "binary").
	Format string `json:"format"`
	// Columns lists the exported files in schema order.
	Columns []ColumnFile `json:"columns"`
	// Makespan summarizes the makespan column (all rows, including
	// failed instances, which record the campaign cap): streaming
	// moments plus P² estimates — no second pass over the data.
	Makespan ColumnSummary `json:"makespan"`
}

// ColumnSummary is a streaming numeric summary: exact moments and
// extremes, P² estimates for the quantiles.
type ColumnSummary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Stdev  float64 `json:"stdev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
	Approx bool    `json:"quantiles_approximate"`
}

// columnWriter buffers one column file.
type columnWriter struct {
	f   *os.File
	buf *bufio.Writer
	col ColumnFile
}

func (w *columnWriter) flushClose() error {
	if err := w.buf.Flush(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// columnDict is an order-of-first-appearance string dictionary.
type columnDict struct {
	index map[string]uint32
	names []string
}

func newColumnDict() *columnDict {
	return &columnDict{index: map[string]uint32{}}
}

func (d *columnDict) id(s string) uint32 {
	if i, ok := d.index[s]; ok {
		return i
	}
	i := uint32(len(d.names))
	d.index[s] = i
	d.names = append(d.names, s)
	return i
}

// ExportColumns streams a sweep journal (either format) into dir as a
// columnar dataset: fixed-width little-endian files ncom.i32, wmin.i32,
// scenario.i32, trial.i32, model.u32, heuristic.u32, makespan.i64,
// failed.u8, plus manifest.json describing rows, dictionaries and a
// streaming makespan summary. dir is created; it must not already
// contain a manifest.
func ExportColumns(journalPath, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if _, err := os.Stat(filepath.Join(dir, columnsManifestName)); err == nil {
		return fmt.Errorf("exp: export dir %s already holds a manifest", dir)
	}

	specs := []ColumnFile{
		{Name: "ncom", File: "ncom.i32", Type: "i32"},
		{Name: "wmin", File: "wmin.i32", Type: "i32"},
		{Name: "scenario", File: "scenario.i32", Type: "i32"},
		{Name: "trial", File: "trial.i32", Type: "i32"},
		{Name: "model", File: "model.u32", Type: "u32"},
		{Name: "heuristic", File: "heuristic.u32", Type: "u32"},
		{Name: "makespan", File: "makespan.i64", Type: "i64"},
		{Name: "failed", File: "failed.u8", Type: "u8"},
	}
	writers := make(map[string]*columnWriter, len(specs))
	cleanup := func() {
		for _, w := range writers {
			w.f.Close()
			os.Remove(w.f.Name())
		}
	}
	for _, spec := range specs {
		f, err := os.OpenFile(filepath.Join(dir, spec.File),
			os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			cleanup()
			return err
		}
		writers[spec.Name] = &columnWriter{f: f, buf: bufio.NewWriter(f), col: spec}
	}

	models := newColumnDict()
	heuristics := newColumnDict()
	var (
		rows     int
		format   Format
		welford  stats.Welford
		p50      = stats.NewP2(0.50)
		p95      = stats.NewP2(0.95)
		p99      = stats.NewP2(0.99)
		min, max float64
		scratch  [8]byte
		writeErr error
	)
	intern := map[string]string{}
	put32 := func(name string, v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		if _, err := writers[name].buf.Write(scratch[:4]); err != nil && writeErr == nil {
			writeErr = err
		}
	}
	err := scanRecords(journalPath,
		func(f Format, raw []byte) error {
			format = f
			var probe struct {
				Kind string `json:"kind"`
			}
			if err := json.Unmarshal(raw, &probe); err != nil {
				return fmt.Errorf("exp: export %s: bad journal header: %w", journalPath, err)
			}
			if probe.Kind == gridJournalKind {
				return fmt.Errorf("exp: export %s: grid journals have no instance columns", journalPath)
			}
			_, err := parseJournalHeader(journalPath, raw)
			return err
		},
		func(payload []byte) error {
			e, err := decodeJournalEntry(format, payload, intern)
			if err != nil {
				return err
			}
			put32("ncom", uint32(int32(e.Ncom)))
			put32("wmin", uint32(int32(e.Wmin)))
			put32("scenario", uint32(int32(e.Scenario)))
			put32("trial", uint32(int32(e.Trial)))
			put32("model", models.id(e.Model))
			put32("heuristic", heuristics.id(e.Heuristic))
			binary.LittleEndian.PutUint64(scratch[:8], uint64(e.Makespan))
			if _, err := writers["makespan"].buf.Write(scratch[:8]); err != nil && writeErr == nil {
				writeErr = err
			}
			b := byte(0)
			if e.Failed {
				b = 1
			}
			if err := writers["failed"].buf.WriteByte(b); err != nil && writeErr == nil {
				writeErr = err
			}
			mk := float64(e.Makespan)
			welford.Add(mk)
			p50.Add(mk)
			p95.Add(mk)
			p99.Add(mk)
			if rows == 0 || mk < min {
				min = mk
			}
			if rows == 0 || mk > max {
				max = mk
			}
			rows++
			return writeErr
		})
	if err == nil {
		err = writeErr
	}
	if err != nil {
		cleanup()
		return err
	}
	for _, spec := range specs {
		w := writers[spec.Name]
		if cerr := w.flushClose(); cerr != nil {
			cleanup()
			return cerr
		}
	}

	manifest := ColumnsManifest{
		Rows:   rows,
		Source: filepath.Base(journalPath),
		Format: format.String(),
	}
	for _, spec := range specs {
		switch spec.Name {
		case "model":
			spec.Dictionary = models.names
		case "heuristic":
			spec.Dictionary = heuristics.names
		}
		manifest.Columns = append(manifest.Columns, spec)
	}
	if rows > 0 { // NaN summaries of an empty export are not JSON-encodable
		manifest.Makespan = ColumnSummary{
			N:      welford.N(),
			Mean:   welford.Mean(),
			Stdev:  welford.Stdev(),
			Min:    min,
			Max:    max,
			P50:    p50.Quantile(),
			P95:    p95.Quantile(),
			P99:    p99.Quantile(),
			Approx: rows >= 5,
		}
	}
	doc, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	return os.WriteFile(filepath.Join(dir, columnsManifestName), doc, 0o644)
}
