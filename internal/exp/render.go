package exp

import (
	"fmt"
	"strings"
)

// This file renders campaign results into the paper's table artifacts as
// self-contained byte strings. cmd/tables prints these strings and the
// service daemon serves them over HTTP, so "the daemon's Table I matches
// the CLI's" is true by construction, not by parallel formatting code —
// the daemon-e2e CI job diffs the two byte for byte.

// ArtifactM returns the task count the numbered table artifact requires
// (Tables I and III aggregate the m = 5 campaign, Table II the m = 10
// one; the online Table IV has no m constraint and returns 0), or an
// error for an unknown table number.
func ArtifactM(table int) (int, error) {
	switch table {
	case 1, 3:
		return 5, nil
	case 2:
		return 10, nil
	case 4:
		return 0, nil
	default:
		return 0, fmt.Errorf("exp: no Table %d (choose 1, 2, 3 or 4)", table)
	}
}

// RenderTableArtifact renders the numbered table artifact (1, 2 or the
// cross-model 3) of a completed campaign, exactly as cmd/tables prints it
// after its "# ..." preamble: the title line, the aggregated rows, and —
// for Tables I/II — the robustness observation. It errors when the
// campaign's m does not match the requested table or when the reference
// heuristic is absent from the results.
func RenderTableArtifact(r *Result, table int) (string, error) {
	m, err := ArtifactM(table)
	if err != nil {
		return "", err
	}
	if table == 4 {
		if r.Grid == nil {
			return "", fmt.Errorf("exp: Table IV aggregates an online grid campaign; these results carry none")
		}
		var b strings.Builder
		fmt.Fprintf(&b, "\nTable IV — online grid: per-policy response, slowdown and deadline misses (heuristic: %s, model: %s)\n\n",
			r.Grid.Sweep.Heuristic, r.Grid.Sweep.Model)
		b.WriteString(FormatTableIV(r.Grid.TableIV()))
		return b.String(), nil
	}
	if r.Grid != nil {
		return "", fmt.Errorf("exp: Table %d aggregates an offline sweep; these results are an online grid campaign (Table 4)", table)
	}
	if r.Sweep.M != m {
		return "", fmt.Errorf("exp: Table %d aggregates an m=%d campaign, results are m=%d", table, m, r.Sweep.M)
	}
	var b strings.Builder
	switch table {
	case 1, 2:
		numeral := "I"
		if table == 2 {
			numeral = "II"
		}
		fmt.Fprintf(&b, "\nTable %s — results with m = %d tasks (reference: %s)\n\n", numeral, m, ReferenceHeuristic)
		rows, err := r.Table(ReferenceHeuristic)
		if err != nil {
			return "", err
		}
		b.WriteString(FormatTable(rows))
		if counter := r.RefFailureDominance(ReferenceHeuristic); counter == 0 {
			fmt.Fprintf(&b, "\nrobustness: whenever %s fails, every other heuristic fails too (as in the paper)\n", ReferenceHeuristic)
		} else {
			fmt.Fprintf(&b, "\nrobustness: %d instances where %s failed but another heuristic succeeded\n", counter, ReferenceHeuristic)
		}
	case 3:
		fmt.Fprintf(&b, "\nTable III — results with m = %d tasks per availability model (reference: %s)\n\n", m, ReferenceHeuristic)
		tables, err := r.TableIII(ReferenceHeuristic)
		if err != nil {
			return "", err
		}
		b.WriteString(FormatTableIII(tables))
	}
	return b.String(), nil
}
