package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// This file is the crash-tolerant append-only JSONL substrate shared by
// the campaign journal (journal.go) and sibling commands with their own
// record types (cmd/offline's trial journals): one header line, then one
// record per line, every append flushed. Readers tolerate exactly the
// damage a mid-write crash can cause — a torn final line — and report
// where the intact prefix ends so an appender can truncate it away.

// ReadJSONL reads an append-only JSONL file without touching it: the raw
// header line, the raw record lines, and the byte length of the intact
// prefix (everything up to and including the last complete line). A
// missing trailing newline marks a crash-torn tail, which is excluded;
// corruption elsewhere is the caller's to detect when parsing records.
func ReadJSONL(path string) (header []byte, records [][]byte, validLen int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, 0, err
	}
	if len(data) > 0 && data[len(data)-1] != '\n' {
		cut := bytes.LastIndexByte(data, '\n') + 1
		data = data[:cut]
	}
	validLen = int64(len(data))
	lines := bytes.Split(data, []byte("\n"))
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return nil, nil, 0, fmt.Errorf("%s: no header line", path)
	}
	return lines[0], lines[1:], validLen, nil
}

// JSONLWriter appends newline-terminated JSON records to a journal file,
// one write syscall per record, so a crash loses at most the line being
// written.
type JSONLWriter struct {
	f *os.File
}

// CreateJSONL starts a new journal file with the given header record. It
// refuses to clobber an existing file (append-only history is the whole
// point); reopen existing files with OpenJSONLAppend.
func CreateJSONL(path string, header any) (*JSONLWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	w := &JSONLWriter{f: f}
	if err := w.Append(header); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return w, nil
}

// OpenJSONLAppend opens an existing journal for appending, first
// truncating it to validLen (as reported by ReadJSONL) to drop a
// crash-torn tail.
func OpenJSONLAppend(path string, validLen int64) (*JSONLWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("truncate torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &JSONLWriter{f: f}, nil
}

// Append writes v as one newline-terminated JSON record.
func (w *JSONLWriter) Append(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := w.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("journal append: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (w *JSONLWriter) Close() error { return w.f.Close() }
