// Package exp is the experiment harness for Section VII: it generates the
// paper's synthetic scenario space, runs every (scenario, trial,
// heuristic) instance through the simulator — in parallel across
// goroutines with independent deterministic seeds — and aggregates the
// paper's metrics (#fails, %diff, %wins, %wins30, stdv) into Table I,
// Table II and the Figure 2 series.
package exp

import (
	"context"
	"fmt"
	"sort"

	"tightsched/internal/analytic"
	"tightsched/internal/app"
	"tightsched/internal/avail"
	"tightsched/internal/platform"
	"tightsched/internal/rng"
	"tightsched/internal/sched"
	"tightsched/internal/sim"
)

// Sweep describes one experimental campaign (Section VII.A).
type Sweep struct {
	// M is the number of tasks per iteration (the paper uses 5 and 10).
	M int
	// Ncoms are the master communication capacities to sweep ({5,10,20}).
	Ncoms []int
	// Wmins are the minimum per-task speeds to sweep ({1..10}); for each,
	// w_q ~ U[wmin, 10·wmin], Tdata = wmin, Tprog = 5·wmin.
	Wmins []int
	// Scenarios is the number of random scenarios per (ncom, wmin) point.
	Scenarios int
	// Trials is the number of availability realizations per scenario.
	Trials int
	// P is the platform size (the paper uses 20).
	P int
	// Iterations is the number of application iterations (10).
	Iterations int
	// Cap is the failure limit in slots (the paper uses 1,000,000).
	Cap int64
	// Seed is the master seed; everything else derives from it.
	Seed uint64
	// Heuristics to run (sched.Names() when nil).
	Heuristics []string
	// Models are the ground-truth availability models to sweep (the
	// paper's Markov chains when nil). Every (point, trial, heuristic)
	// instance runs once per model, so one campaign compares heuristics
	// across Markov and model-violating availability; model names must
	// be distinct. Seed-insensitive models (avail.TraceModel) repeat the
	// same realization every trial — use Trials = 1 with those. See
	// internal/avail.
	Models []avail.Model
	// Workers bounds the number of parallel simulations (NumCPU when 0).
	Workers int
	// InitialAllUp starts processors UP instead of at stationarity.
	InitialAllUp bool
	// Advance selects the simulator's time-advance core (the event-leap
	// macro-step engine by default). Like Workers it is a runtime knob,
	// deliberately absent from SweepSpec: both cores produce byte-identical
	// instances, so journals written under either interchange freely.
	Advance sim.TimeAdvance
	// MaxLeap caps one leap macro-step in slots (sim.DefaultMaxLeap when
	// 0). Runtime knob, absent from SweepSpec.
	MaxLeap int64
}

// PaperSweep returns the full Section VII campaign for m tasks:
// 3 ncom × 10 wmin × 10 scenarios × 10 trials = 3,000 instances, each run
// under all 17 heuristics. This is hours of CPU; see QuickSweep.
func PaperSweep(m int) Sweep {
	return Sweep{
		M:          m,
		Ncoms:      []int{5, 10, 20},
		Wmins:      []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10},
		Scenarios:  10,
		Trials:     10,
		P:          20,
		Iterations: 10,
		Cap:        sim.DefaultCap,
		Seed:       20130522, // HCW 2013
	}
}

// QuickSweep returns a reduced campaign that preserves the sweep's shape
// (all three ncom values, the full wmin range) at a fraction of the cost:
// fewer scenarios/trials and a lower failure cap. Rankings of the leading
// heuristics are stable at this scale; absolute %diff values are noisier.
func QuickSweep(m int) Sweep {
	s := PaperSweep(m)
	s.Scenarios = 2
	s.Trials = 2
	s.Cap = 100_000
	return s
}

// Validate checks the campaign parameters.
func (s *Sweep) Validate() error {
	if s.M <= 0 || s.P <= 0 || s.Iterations <= 0 || s.Cap <= 0 {
		return fmt.Errorf("exp: invalid sweep %+v", s)
	}
	if len(s.Ncoms) == 0 || len(s.Wmins) == 0 || s.Scenarios <= 0 || s.Trials <= 0 {
		return fmt.Errorf("exp: empty sweep dimensions %+v", s)
	}
	// Names resolve through the open registry, so heuristics plugged in
	// via sched.Register are first-class sweep axes.
	for _, h := range s.heuristics() {
		if _, ok := sched.Lookup(h); !ok {
			return fmt.Errorf("exp: unknown heuristic %q", h)
		}
	}
	seen := map[string]bool{}
	for i, m := range s.Models {
		if m == nil {
			return fmt.Errorf("exp: nil model at index %d", i)
		}
		if seen[m.Name()] {
			return fmt.Errorf("exp: duplicate model name %q", m.Name())
		}
		seen[m.Name()] = true
	}
	// Advance is a runtime knob, but an out-of-range value must fail here
	// — at campaign validation — rather than on the first instance deep
	// inside a worker (or, worse, fall back to a default core).
	if err := s.Advance.Validate(); err != nil {
		return err
	}
	if s.MaxLeap < 0 {
		return fmt.Errorf("exp: negative max leap %d", s.MaxLeap)
	}
	return nil
}

func (s *Sweep) heuristics() []string {
	if len(s.Heuristics) > 0 {
		return s.Heuristics
	}
	return sched.Names()
}

// models returns the availability-model axis (the implicit Markov ground
// truth when none is set).
func (s *Sweep) models() []avail.Model {
	if len(s.Models) > 0 {
		return s.Models
	}
	return []avail.Model{avail.MarkovModel{}}
}

// InstanceCount returns the number of (model, point, scenario, trial)
// instances, not counting the heuristic dimension.
func (s *Sweep) InstanceCount() int {
	return len(s.models()) * len(s.Ncoms) * len(s.Wmins) * s.Scenarios * s.Trials
}

// Coord identifies one (model, point, trial) instance of the sweep grid:
// the unit of sharding and journal bookkeeping (the heuristic dimension
// fans out within a coordinate, so every shard carries complete
// same-realization heuristic comparisons).
type Coord struct {
	Model string
	Point Point
	Trial int
}

// Coords enumerates the instance grid in canonical order (model, ncom,
// wmin, scenario, trial — model-major in Models order).
func (s *Sweep) Coords() []Coord {
	out := make([]Coord, 0, s.InstanceCount())
	for _, m := range s.models() {
		name := m.Name()
		for _, ncom := range s.Ncoms {
			for _, wmin := range s.Wmins {
				for sc := 0; sc < s.Scenarios; sc++ {
					for tr := 0; tr < s.Trials; tr++ {
						out = append(out, Coord{name, Point{ncom, wmin, sc}, tr})
					}
				}
			}
		}
	}
	return out
}

// Point identifies one scenario draw within the sweep.
type Point struct {
	Ncom     int
	Wmin     int
	Scenario int
}

// InstanceResult is the outcome of one (model, point, trial, heuristic)
// run.
type InstanceResult struct {
	Point Point
	Trial int
	// Model is the availability model's name ("markov" for the implicit
	// default).
	Model     string
	Heuristic string
	Makespan  int64
	Failed    bool
}

// Result holds the raw outcomes of a campaign: offline sweeps fill
// Sweep/Instances, online grid campaigns fill Grid. One result type
// flows through the session, the daemon and the table renderer, so
// Table IV serves from the same pipeline as Tables I–III.
type Result struct {
	Sweep     Sweep
	Instances []InstanceResult
	// Grid carries an online (Table IV) campaign's outcomes; nil for
	// the paper's offline sweeps.
	Grid *GridResult
	// agg memoizes table aggregation (one instance walk serves every
	// table); lazily initialized, shared by value copies. For
	// aggregation-only results (journal replay, DiscardInstances runs)
	// it holds the streaming accumulators and Instances stays nil.
	agg *resultAgg
}

// scenarioPlatform deterministically regenerates the platform of a point.
func (s *Sweep) scenarioPlatform(pt Point) *platform.Platform {
	stream := rng.NewKeyed(s.Seed, uint64(s.M), uint64(pt.Ncom), uint64(pt.Wmin), uint64(pt.Scenario))
	cfg := platform.PaperConfig{P: s.P, Wmin: pt.Wmin, Ncom: pt.Ncom, StayLo: 0.90, StayHi: 0.99}
	return platform.GeneratePaper(cfg, stream)
}

// TrialSeed derives the availability seed of one (point, trial) instance
// from the master seed. It does not depend on the heuristic — every
// heuristic sees the same realization — and it is the single derivation
// the sequential path (runInstance), the batched cell path (runCell) and
// external tooling share, so the batch engine cannot drift from the
// sequential seed schedule.
func (s *Sweep) TrialSeed(pt Point, trial int) uint64 {
	return rng.NewKeyed(s.Seed, 0x7e57, uint64(s.M), uint64(pt.Ncom),
		uint64(pt.Wmin), uint64(pt.Scenario), uint64(trial)).Uint64()
}

// TrialStream returns the deterministic RNG stream of trial i under a
// master seed: the per-trial derivation used outside the sweep grid,
// where there is no Point to key on (cmd/offline's instance generators
// draw from it directly; core.Compare derives its per-trial sim seeds the
// same way).
func TrialStream(master uint64, trial int) *rng.Stream {
	return rng.NewKeyed(master, uint64(trial))
}

// application returns the application of a point (Tdata = wmin,
// Tprog = 5·wmin, so the fastest possible processor has a
// computation-to-communication ratio of 1, per Section VII.A).
func (s *Sweep) application(wmin int) app.Application {
	return app.Application{
		Tasks:      s.M,
		Tprog:      5 * wmin,
		Tdata:      wmin,
		Iterations: s.Iterations,
	}
}

// runInstance executes one simulation of the campaign, checking ctx at
// macro-step boundaries. Model hooks run arbitrary plugged-in code (e.g. a
// TraceModel panicking on a platform size mismatch); a panic is converted
// into an error so the campaign fails cleanly instead of crashing the
// worker pool.
//
// cache is the calling worker's analytic platform cache: the trials and
// heuristics of one sweep point share a believed matrix set, so routing
// them through one goroutine-confined cache reuses eigendecompositions,
// series constants and the whole membership→SetStats memo across runs.
// Memoized statistics are canonical, so results are bit-identical to
// cache-free execution whatever the job interleaving — the cross-worker
// determinism test pins this.
func runInstance(ctx context.Context, s *Sweep, model avail.Model, pt Point, trial int, h string, cache *analytic.PlatformCache) (res sim.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("exp: model %s, point %+v, trial %d, heuristic %s: panic: %v",
				model.Name(), pt, trial, h, p)
		}
	}()
	return sim.RunContext(ctx, sim.Config{
		Platform:      s.scenarioPlatform(pt),
		App:           s.application(pt.Wmin),
		Heuristic:     h,
		Seed:          s.TrialSeed(pt, trial),
		Cap:           s.Cap,
		InitialAllUp:  s.InitialAllUp,
		Model:         model,
		AnalyticCache: cache,
		Advance:       s.Advance,
		MaxLeap:       s.MaxLeap,
	})
}

// cellPair is one live (trial, heuristic) pair of a batched cell job.
type cellPair struct {
	trial int
	h     string
}

// runCell executes every live instance of one (model, point) cell as a
// single lockstep batch (sim.RunBatch): the sweep's batch dispatch unit.
// Seeds come from the same TrialSeed schedule as runInstance, so each
// returned InstanceResult is byte-identical to its sequential
// counterpart; results are returned in pairs order along with the cell's
// cache-effectiveness counters.
func runCell(ctx context.Context, s *Sweep, model avail.Model, modelName string, pt Point, pairs []cellPair, cache *analytic.PlatformCache) (out []InstanceResult, cst *CacheStats, err error) {
	defer func() {
		if p := recover(); p != nil {
			out, cst = nil, nil
			err = fmt.Errorf("exp: model %s, point %+v, batched cell: panic: %v",
				modelName, pt, p)
		}
	}()
	base := sim.Config{
		Platform:      s.scenarioPlatform(pt),
		App:           s.application(pt.Wmin),
		Cap:           s.Cap,
		InitialAllUp:  s.InitialAllUp,
		Model:         model,
		AnalyticCache: cache,
		MaxLeap:       s.MaxLeap,
	}
	insts := make([]sim.BatchInstance, len(pairs))
	for i, pr := range pairs {
		insts[i] = sim.BatchInstance{Heuristic: pr.h, Seed: s.TrialSeed(pt, pr.trial)}
	}
	results, stats, err := sim.RunBatch(ctx, base, insts)
	if err != nil {
		return nil, nil, err
	}
	out = make([]InstanceResult, len(results))
	for i, r := range results {
		out[i] = InstanceResult{
			Point:     pt,
			Trial:     pairs[i].trial,
			Model:     modelName,
			Heuristic: pairs[i].h,
			Makespan:  r.Makespan,
			Failed:    r.Failed,
		}
	}
	return out, newCacheStats(stats), nil
}

// RunOptions tune campaign execution beyond the Sweep itself: journaling,
// resuming, sharding, and streaming consumption. The zero value is a
// plain in-memory run.
//
// The consumption fields (Progress, Sink, Observer, DiscardInstances)
// apply to the RunWith family, which is built on the Stream event
// iterator; Stream itself ignores them — its events are the delivery
// mechanism.
type RunOptions struct {
	// Progress receives (completed, total) counts, including instances
	// skipped because they were already journaled. It is called from a
	// single goroutine.
	Progress func(done, total int)
	// Journal streams every completed instance to an append-only file
	// and skips instances the journal already holds (resume). The
	// journal must have been created or opened for this sweep (and this
	// shard): specs are checked.
	Journal *Journal
	// Shard restricts the run to one deterministic slice of the
	// instance grid (see Sweep.Shard). The zero value runs everything.
	Shard Shard
	// Workers, when positive, overrides the sweep's worker-pool bound —
	// the only way to bound a Resume, whose sweep is rebuilt from the
	// journal spec (which deliberately omits runtime knobs).
	Workers int
	// Sink, when set, receives every completed instance as it finishes
	// (after journaling), in completion order, from a single goroutine.
	// Instances replayed from the journal are not re-delivered. A
	// non-nil error aborts the campaign — already-journaled work
	// survives for a later Resume.
	Sink func(InstanceResult) error
	// Observer, when set, receives every typed campaign event
	// (InstanceDone, PointDone, Progress) from a single goroutine.
	Observer Observer
	// DiscardInstances drops per-instance results after journal/sink
	// delivery instead of collecting them, bounding memory for huge
	// campaigns. The returned Result has nil Instances but still renders
	// Tables I–III, Figure 2 and the failure-dominance check (for
	// ReferenceHeuristic): every instance is folded into streaming
	// accumulators as it completes, holding O(cells) — not O(instances)
	// — in memory.
	DiscardInstances bool
}

// Run executes the campaign in memory. Instances are distributed over a
// worker pool; results are deterministic and order-independent. The
// optional progress callback receives (completed, total) counts.
func Run(sweep Sweep, progress func(done, total int)) (*Result, error) {
	return RunWith(sweep, RunOptions{Progress: progress})
}

// RunWith executes the campaign with journaling, sharding and streaming
// options. Completed instances are streamed — journaled, handed to the
// sink, and (unless discarded) collected — as they finish rather than
// gathered at the end, so an interrupted run loses only in-flight work.
func RunWith(sweep Sweep, opts RunOptions) (*Result, error) {
	return RunWithContext(context.Background(), sweep, opts)
}

// RunWithContext is RunWith under a context, consuming the Stream event
// iterator: cancellation is checked at instance boundaries in the worker
// pool and at macro-step boundaries inside each simulation, every already
// completed instance is journaled before the campaign returns, and the
// returned error is the context's. The journal is left resumable: a later
// Resume re-runs only what was lost in flight and reproduces the
// uninterrupted result bit for bit.
func RunWithContext(ctx context.Context, sweep Sweep, opts RunOptions) (*Result, error) {
	var collected []InstanceResult
	var acc *tableAccumulator
	if opts.DiscardInstances {
		// Streaming aggregation in place of collection: groups close as
		// each coordinate's heuristics complete, keeping memory O(cells).
		acc = newTableAccumulator(ReferenceHeuristic, len(sweep.heuristics()))
	}
	for ev, err := range Stream(ctx, sweep, opts) {
		if err != nil {
			return nil, err
		}
		switch ev := ev.(type) {
		case InstanceDone:
			if acc != nil {
				acc.add(ev.Instance)
			} else {
				collected = append(collected, ev.Instance)
			}
			if !ev.Replayed && opts.Sink != nil {
				if err := opts.Sink(ev.Instance); err != nil {
					return nil, err
				}
			}
			if opts.Observer != nil {
				opts.Observer.OnInstanceDone(ev)
			}
		case PointDone:
			if opts.Observer != nil {
				opts.Observer.OnPointDone(ev)
			}
		case Progress:
			if opts.Progress != nil {
				opts.Progress(ev.Completed, ev.Total)
			}
			if opts.Observer != nil {
				opts.Observer.OnProgress(ev)
			}
		}
	}
	sortInstances(collected)
	res := &Result{Sweep: sweep, Instances: collected}
	if acc != nil {
		res.preseedAgg(ReferenceHeuristic, acc)
	}
	return res, nil
}

// sortInstances orders results by (model name, point, trial, heuristic) —
// a full total order, keeping Instances deterministic regardless of
// worker count, Models ordering, or resume/merge history.
func sortInstances(results []InstanceResult) {
	sort.SliceStable(results, func(a, b int) bool {
		ra, rb := results[a], results[b]
		if ra.Model != rb.Model {
			return ra.Model < rb.Model
		}
		if ra.Point != rb.Point {
			if ra.Point.Ncom != rb.Point.Ncom {
				return ra.Point.Ncom < rb.Point.Ncom
			}
			if ra.Point.Wmin != rb.Point.Wmin {
				return ra.Point.Wmin < rb.Point.Wmin
			}
			return ra.Point.Scenario < rb.Point.Scenario
		}
		if ra.Trial != rb.Trial {
			return ra.Trial < rb.Trial
		}
		return ra.Heuristic < rb.Heuristic
	})
}
