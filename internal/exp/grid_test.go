package exp

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// gridTestSweep shrinks QuickOnlineSweep to test scale while keeping
// every axis: both arrival kinds, all three admission policies, both
// preemption policies, two trials.
func gridTestSweep() GridSweep {
	g := QuickOnlineSweep()
	g.Horizon = 6000
	g.Arrivals[0].MeanGap = 60
	g.Arrivals[0].Apps = 6
	return g
}

// TestGridDeterministicAcrossWorkers: the campaign's instances — and
// the rendered Table IV — must be byte-identical whether one worker or
// eight ran it. This is the online layer's core acceptance property.
func TestGridDeterministicAcrossWorkers(t *testing.T) {
	g := gridTestSweep()
	serial, err := RunGridContext(context.Background(), g, GridRunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunGridContext(context.Background(), g, GridRunOptions{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Instances) != g.InstanceCount() {
		t.Fatalf("serial run produced %d instances, want %d", len(serial.Instances), g.InstanceCount())
	}
	if !reflect.DeepEqual(serial.Instances, parallel.Instances) {
		t.Fatal("instances differ between 1 and 8 workers")
	}
	if a, b := FormatTableIV(serial.TableIV()), FormatTableIV(parallel.TableIV()); a != b {
		t.Fatalf("Table IV differs between worker counts:\n--- 1 worker\n%s--- 8 workers\n%s", a, b)
	}
}

// TestGridArrivalsSharedAcrossPolicies: the (arrival, trial) seed is
// independent of the policy axes, so every policy combination faces the
// same applications — the comparison Table IV draws is between
// policies, never between workloads.
func TestGridArrivalsSharedAcrossPolicies(t *testing.T) {
	g := gridTestSweep()
	res, err := RunGridContext(context.Background(), g, GridRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	apps := map[[2]string]int{} // (arrival, trial-as-string) -> Apps
	for _, in := range res.Instances {
		key := [2]string{in.Arrival, string(rune('0' + in.Trial))}
		if prev, ok := apps[key]; ok {
			if in.Apps != prev {
				t.Fatalf("instance %+v saw %d apps; another policy combo of the same arrival/trial saw %d",
					in.GridKey, in.Apps, prev)
			}
			continue
		}
		apps[key] = in.Apps
	}
}

// TestGridCancelResumeByteIdentical: a journaled campaign cancelled
// partway resumes from the journal alone and reproduces the
// uninterrupted run — instances and rendered bytes — exactly.
func TestGridCancelResumeByteIdentical(t *testing.T) {
	g := gridTestSweep()
	ref, err := RunGridContext(context.Background(), g, GridRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	refTable := FormatTableIV(ref.TableIV())

	path := filepath.Join(t.TempDir(), "grid.journal")
	j, err := CreateGridJournal(path, &g)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	limit := len(ref.Instances) / 3
	_, err = RunGridContext(ctx, g, GridRunOptions{
		Workers: 1,
		Journal: j,
		Progress: func(done, total int) {
			if done >= limit {
				cancel()
			}
		},
	})
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
	journaled := len(j.Done())
	if journaled < limit || journaled >= len(ref.Instances) {
		t.Fatalf("journal holds %d instances, want in [%d, %d)", journaled, limit, len(ref.Instances))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	var firstDone, lastDone, total int
	res, err := ResumeGrid(context.Background(), path, GridRunOptions{
		Progress: func(done, tot int) {
			if firstDone == 0 {
				firstDone = done
			}
			lastDone, total = done, tot
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if firstDone < journaled {
		t.Fatalf("resume re-ran journaled instances: first progress %d, journal had %d", firstDone, journaled)
	}
	if lastDone != total || total != len(ref.Instances) {
		t.Fatalf("resume progress ended %d/%d, want %d/%d", lastDone, total, len(ref.Instances), len(ref.Instances))
	}
	if !reflect.DeepEqual(res.Instances, ref.Instances) {
		t.Fatal("instances differ after cancel + resume")
	}
	if got := FormatTableIV(res.TableIV()); got != refTable {
		t.Fatalf("Table IV differs after resume:\n--- uninterrupted\n%s--- resumed\n%s", refTable, got)
	}

	// A second resume of the now-complete journal is pure replay.
	again, err := ResumeGrid(context.Background(), path, GridRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Instances, ref.Instances) {
		t.Fatal("replay of the complete journal differs")
	}
}

// TestGridJournalSpecMismatch: a journal only resumes the campaign it
// was created for.
func TestGridJournalSpecMismatch(t *testing.T) {
	g := gridTestSweep()
	path := filepath.Join(t.TempDir(), "grid.journal")
	j, err := CreateGridJournal(path, &g)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	other := g
	other.Seed++
	if _, err := OpenGridJournal(path, &other); err == nil {
		t.Fatal("journal of a different campaign opened for appending")
	} else if !strings.Contains(err.Error(), "journal") {
		t.Errorf("mismatch error %q should mention the journal", err)
	}
}

// TestGridSpecRoundTrip: Spec() captures everything that affects
// results, and Sweep() reconstructs an equivalent campaign.
func TestGridSpecRoundTrip(t *testing.T) {
	g := gridTestSweep()
	back := g.Spec().Sweep()
	g.Workers = 0 // execution-only; not part of the identity
	if !reflect.DeepEqual(back, g) {
		t.Fatalf("round trip lost fields:\n%+v\n%+v", back, g)
	}
}
