package exp

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	orig := &Result{
		Instances: []InstanceResult{
			{Point: Point{5, 1, 0}, Trial: 0, Model: "markov", Heuristic: "IE", Makespan: 123},
			{Point: Point{5, 2, 1}, Trial: 1, Model: "semimarkov", Heuristic: "Y-IE", Makespan: 99},
			{Point: Point{10, 1, 0}, Trial: 0, Model: "markov", Heuristic: "RANDOM", Makespan: 100000, Failed: true},
		},
	}
	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Instances) != len(orig.Instances) {
		t.Fatalf("round trip lost instances: %d vs %d", len(back.Instances), len(orig.Instances))
	}
	for i := range orig.Instances {
		if back.Instances[i] != orig.Instances[i] {
			t.Fatalf("instance %d: %+v != %+v", i, back.Instances[i], orig.Instances[i])
		}
	}
	ws := append([]int(nil), back.Sweep.Wmins...)
	sort.Ints(ws)
	if len(ws) != 2 || ws[0] != 1 || ws[1] != 2 {
		t.Fatalf("recovered wmins %v", ws)
	}
}

// TestCSVLegacySevenColumns keeps pre-model-axis CSV files readable: the
// missing model column reads back as "markov".
func TestCSVLegacySevenColumns(t *testing.T) {
	data := "ncom,wmin,scenario,trial,heuristic,makespan,failed\n5,1,0,0,IE,123,false\n"
	back, err := ReadCSV(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Instances) != 1 || back.Instances[0].Model != "markov" {
		t.Fatalf("legacy read: %+v", back.Instances)
	}
}

func TestCSVHeaderAndShape(t *testing.T) {
	res := &Result{Instances: []InstanceResult{{Heuristic: "IE", Makespan: 1}}}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("expected header + 1 row, got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "ncom,wmin,") {
		t.Fatalf("header: %q", lines[0])
	}
}

func TestReadCSVErrors(t *testing.T) {
	for name, data := range map[string]string{
		"empty":      "",
		"bad int":    "ncom,wmin,scenario,trial,heuristic,makespan,failed\nx,1,0,0,IE,5,false\n",
		"bad bool":   "ncom,wmin,scenario,trial,heuristic,makespan,failed\n5,1,0,0,IE,5,maybe\n",
		"bad fields": "ncom,wmin\n5,1\n",
	} {
		if _, err := ReadCSV(strings.NewReader(data)); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
}
