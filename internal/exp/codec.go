package exp

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
)

// This file is the journal codec seam: the Format knob every journal
// creation path threads through (CLI flag, daemon spec, cluster config),
// the compact binary encodings of the two record types, and a streaming
// record scanner shared by aggregation, conversion and columnar export.
//
// The two formats carry the same records under the same coordinate Keys;
// only the framing and per-record encoding differ. The header record is
// the identical JSON document in both, so campaign identity — and every
// spec-equality check built on it (resume, merge, cluster adoption) — is
// format-independent. Readers sniff the container magic, so a journal is
// always opened by content, never by flag.

// Format selects a journal's on-disk encoding.
type Format int

const (
	// FormatJSONL is the interoperable default: one JSON record per line.
	FormatJSONL Format = iota
	// FormatBinary is the compact length-prefixed binary codec
	// (binlog.go): a version byte up front, CRC per record.
	FormatBinary
)

// String renders the format the way specs and flags spell it.
func (f Format) String() string {
	switch f {
	case FormatJSONL:
		return "jsonl"
	case FormatBinary:
		return "binary"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseFormat parses a journal format name. The empty string means the
// default (JSONL), so optional spec fields and flags parse directly.
func ParseFormat(s string) (Format, error) {
	switch s {
	case "", "jsonl":
		return FormatJSONL, nil
	case "binary", "bin":
		return FormatBinary, nil
	default:
		return 0, fmt.Errorf("exp: unknown journal format %q (want jsonl or binary)", s)
	}
}

// recordAppender abstracts the two journal writers behind one append
// seam: a payload in, one flushed write out.
type recordAppender interface {
	AppendRecord(payload []byte) error
	Close() error
}

// AppendRecord writes a pre-encoded JSON payload as one journal line.
func (w *JSONLWriter) AppendRecord(payload []byte) error {
	if _, err := w.f.Write(append(append(make([]byte, 0, len(payload)+1), payload...), '\n')); err != nil {
		return fmt.Errorf("journal append: %w", err)
	}
	return nil
}

// sniffData reports the format of journal bytes: binary by magic,
// JSONL otherwise (its first byte is '{').
func sniffData(data []byte) Format {
	if IsBinaryLog(data) {
		return FormatBinary
	}
	return FormatJSONL
}

// SniffFormat reports a journal file's on-disk format from its leading
// bytes.
func SniffFormat(path string) (Format, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	head := make([]byte, len(binMagic))
	n, err := io.ReadFull(f, head)
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return 0, err
	}
	return sniffData(head[:n]), nil
}

// journalRecord is one record of either format plus the offset just past
// it, so entry-level readers can place a tear precisely.
type journalRecord struct {
	payload []byte
	end     int64
}

// readJournalRecords loads a journal of either format: its format, the
// raw header payload, the records of the intact prefix, and the prefix
// length. Framing-level tears are already excluded; a record that frames
// correctly but fails entry decoding is the caller's to judge (tail =
// tear, earlier = corruption).
func readJournalRecords(path string) (Format, []byte, []journalRecord, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, nil, 0, err
	}
	if sniffData(data) == FormatBinary {
		recs, validLen, err := parseBinaryLog(path, data)
		if err != nil {
			return 0, nil, nil, 0, err
		}
		if len(recs) == 0 {
			return 0, nil, nil, 0, fmt.Errorf("%s: no header record", path)
		}
		out := make([]journalRecord, len(recs)-1)
		for i, r := range recs[1:] {
			out[i] = journalRecord{payload: r.payload, end: r.end}
		}
		return FormatBinary, recs[0].payload, out, validLen, nil
	}
	// JSONL: reuse the line substrate, recovering per-line end offsets.
	if len(data) > 0 && data[len(data)-1] != '\n' {
		data = data[:bytes.LastIndexByte(data, '\n')+1]
	}
	validLen := int64(len(data))
	lines := bytes.Split(data, []byte("\n"))
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return 0, nil, nil, 0, fmt.Errorf("%s: no header line", path)
	}
	off := int64(len(lines[0])) + 1
	out := make([]journalRecord, len(lines)-1)
	for i, line := range lines[1:] {
		off += int64(len(line)) + 1
		out[i] = journalRecord{payload: line, end: off}
	}
	return FormatJSONL, lines[0], out, validLen, nil
}

// openRecordAppender reopens a journal of the given format for appending
// at validLen (the intact prefix), truncating a torn tail.
func openRecordAppender(path string, format Format, validLen int64) (recordAppender, error) {
	if format == FormatBinary {
		return OpenBinaryLogAppend(path, validLen)
	}
	return OpenJSONLAppend(path, validLen)
}

// createRecordLog creates a fresh journal of the given format whose first
// record is the marshaled header document.
func createRecordLog(path string, format Format, header any) (recordAppender, error) {
	hdr, err := json.Marshal(header)
	if err != nil {
		return nil, err
	}
	if format == FormatBinary {
		return CreateBinaryLog(path, hdr)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	w := &JSONLWriter{f: f}
	if err := w.AppendRecord(hdr); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return w, nil
}

// ---- entry encodings -------------------------------------------------------
//
// Binary records are plain field-by-field encodings — varints for the
// integers, uvarint-length-prefixed bytes for the strings, a fixed 8-byte
// IEEE-754 image for the one float — with no per-record schema: the
// journal header pins the record type (sweep vs grid) and the container
// version byte pins the layout.

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// decodeString reads one length-prefixed string, interning the result so
// a replay of a million instances holds one copy of each model and
// heuristic name (the map[string]string lookup on a []byte key does not
// allocate).
func decodeString(b []byte, intern map[string]string) (string, []byte, error) {
	n, w := binary.Uvarint(b)
	if w <= 0 || n > uint64(len(b)-w) {
		return "", nil, fmt.Errorf("truncated string")
	}
	raw := b[w : w+int(n)]
	s, ok := intern[string(raw)]
	if !ok {
		s = string(raw)
		intern[s] = s
	}
	return s, b[w+int(n):], nil
}

func decodeVarint(b []byte) (int64, []byte, error) {
	v, w := binary.Varint(b)
	if w <= 0 {
		return 0, nil, fmt.Errorf("truncated varint")
	}
	return v, b[w:], nil
}

// appendBinaryEntry encodes one sweep journal entry.
func appendBinaryEntry(b []byte, e journalEntry) []byte {
	b = appendString(b, e.Model)
	b = appendString(b, e.Heuristic)
	b = binary.AppendVarint(b, int64(e.Ncom))
	b = binary.AppendVarint(b, int64(e.Wmin))
	b = binary.AppendVarint(b, int64(e.Scenario))
	b = binary.AppendVarint(b, int64(e.Trial))
	b = binary.AppendVarint(b, e.Makespan)
	var flags byte
	if e.Failed {
		flags = 1
	}
	return append(b, flags)
}

// decodeBinaryEntry decodes one sweep journal entry. intern deduplicates
// the model and heuristic strings across records.
func decodeBinaryEntry(b []byte, intern map[string]string) (journalEntry, error) {
	var e journalEntry
	var err error
	if e.Model, b, err = decodeString(b, intern); err != nil {
		return e, err
	}
	if e.Heuristic, b, err = decodeString(b, intern); err != nil {
		return e, err
	}
	var v int64
	if v, b, err = decodeVarint(b); err != nil {
		return e, err
	}
	e.Ncom = int(v)
	if v, b, err = decodeVarint(b); err != nil {
		return e, err
	}
	e.Wmin = int(v)
	if v, b, err = decodeVarint(b); err != nil {
		return e, err
	}
	e.Scenario = int(v)
	if v, b, err = decodeVarint(b); err != nil {
		return e, err
	}
	e.Trial = int(v)
	if e.Makespan, b, err = decodeVarint(b); err != nil {
		return e, err
	}
	if len(b) != 1 {
		return e, fmt.Errorf("bad entry tail (%d bytes)", len(b))
	}
	e.Failed = b[0]&1 != 0
	return e, nil
}

// appendBinaryGridEntry encodes one grid journal instance.
func appendBinaryGridEntry(b []byte, in GridInstance) []byte {
	b = appendString(b, in.Arrival)
	b = appendString(b, in.Admission)
	b = appendString(b, in.Preemption)
	b = binary.AppendVarint(b, int64(in.Trial))
	b = binary.AppendVarint(b, int64(in.Apps))
	b = binary.AppendVarint(b, int64(in.Completed))
	b = binary.AppendVarint(b, int64(in.Missed))
	b = binary.AppendVarint(b, int64(in.Preempted))
	b = binary.AppendVarint(b, in.RespSum)
	b = binary.AppendVarint(b, in.Makespan)
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(in.SlowSum))
}

// decodeBinaryGridEntry decodes one grid journal instance.
func decodeBinaryGridEntry(b []byte, intern map[string]string) (GridInstance, error) {
	var in GridInstance
	var err error
	if in.Arrival, b, err = decodeString(b, intern); err != nil {
		return in, err
	}
	if in.Admission, b, err = decodeString(b, intern); err != nil {
		return in, err
	}
	if in.Preemption, b, err = decodeString(b, intern); err != nil {
		return in, err
	}
	var v int64
	for _, dst := range []*int{&in.Trial, &in.Apps, &in.Completed, &in.Missed, &in.Preempted} {
		if v, b, err = decodeVarint(b); err != nil {
			return in, err
		}
		*dst = int(v)
	}
	if in.RespSum, b, err = decodeVarint(b); err != nil {
		return in, err
	}
	if in.Makespan, b, err = decodeVarint(b); err != nil {
		return in, err
	}
	if len(b) != 8 {
		return in, fmt.Errorf("bad grid entry tail (%d bytes)", len(b))
	}
	in.SlowSum = math.Float64frombits(binary.LittleEndian.Uint64(b))
	return in, nil
}

// ---- streaming scan --------------------------------------------------------

// scanRecords streams a journal's records through fn without loading the
// file into memory: it sniffs the format, hands it with the raw header
// payload to header, then each record payload (valid for the duration of
// the call only) to fn. Torn tails are tolerated exactly as the loading
// readers do: a final damaged record is dropped silently, damage with
// records after it is an error. fn returning an error aborts the scan.
func scanRecords(path string, header func(format Format, payload []byte) error, fn func(payload []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	head, err := br.Peek(len(binMagic))
	if err != nil && err != io.EOF {
		return err
	}
	if sniffData(head) == FormatBinary {
		return scanBinaryRecords(path, br, func(p []byte) error { return header(FormatBinary, p) }, fn)
	}
	return scanJSONLRecords(path, br, func(p []byte) error { return header(FormatJSONL, p) }, fn)
}

// scanJSONLRecords streams line records. Only the final line may be
// damaged (torn tail, reported by fn failing on it); a failing fn on any
// earlier line aborts with that error — matching readJournal's
// tamper-vs-tear policy. A line that the underlying read cuts short
// (no trailing newline) is dropped without ever reaching fn.
func scanJSONLRecords(path string, br *bufio.Reader, header, fn func([]byte) error) error {
	var pending error // fn's error on the previous line, fatal iff more lines follow
	first := true
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			if len(line) > 0 {
				return nil // cut-short final line: torn tail
			}
			return nil
		}
		if err != nil {
			return err
		}
		if pending != nil {
			return pending
		}
		line = line[:len(line)-1]
		if first {
			first = false
			if err := header(line); err != nil {
				return err
			}
			continue
		}
		if err := fn(line); err != nil {
			pending = fmt.Errorf("%s: %w", path, err)
		}
	}
}

// scanBinaryRecords streams CRC-framed records. The first damaged frame
// ends the scan (the torn tail); a CRC-valid record on which fn fails is
// fatal only when records follow it.
func scanBinaryRecords(path string, br *bufio.Reader, header, fn func([]byte) error) error {
	hdr := make([]byte, binHeaderLen)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return fmt.Errorf("%s: truncated binary journal header", path)
	}
	if hdr[4] != binVersion {
		return fmt.Errorf("%s: unknown binary journal version %d", path, hdr[4])
	}
	var pending error
	var buf []byte
	first := true
	for {
		n, err := binary.ReadUvarint(br)
		if err != nil || n > maxBinRecord {
			return nil // torn or garbled length prefix: tear
		}
		need := int(n) + 4
		if cap(buf) < need {
			buf = make([]byte, need)
		}
		buf = buf[:need]
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil // frame runs past EOF: tear
		}
		payload := buf[:n]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(buf[n:]) {
			return nil // damaged payload: tear
		}
		// A full CRC-valid record follows, so a decode failure on the
		// previous record was corruption, not a tear.
		if pending != nil {
			return pending
		}
		if first {
			first = false
			if err := header(payload); err != nil {
				return err
			}
			continue
		}
		if err := fn(payload); err != nil {
			pending = fmt.Errorf("%s: %w", path, err)
		}
	}
}
