package exp

import (
	"context"
	"strings"
	"testing"

	"tightsched/internal/sched"
	"tightsched/internal/sim"
)

// tinySweep is a minimal campaign for fast tests.
func tinySweep(heuristics []string) Sweep {
	return Sweep{
		M:          3,
		Ncoms:      []int{5},
		Wmins:      []int{1, 2},
		Scenarios:  2,
		Trials:     2,
		P:          8,
		Iterations: 2,
		Cap:        50_000,
		Seed:       99,
		Heuristics: heuristics,
	}
}

func TestSweepValidate(t *testing.T) {
	s := tinySweep(nil)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := s
	bad.M = 0
	if bad.Validate() == nil {
		t.Fatal("m=0 accepted")
	}
	bad = s
	bad.Wmins = nil
	if bad.Validate() == nil {
		t.Fatal("empty wmins accepted")
	}
	bad = s
	bad.Heuristics = []string{"NOPE"}
	if bad.Validate() == nil {
		t.Fatal("unknown heuristic accepted")
	}
	bad = s
	bad.Advance = sim.TimeAdvance(99)
	if bad.Validate() == nil {
		t.Fatal("unknown advance mode accepted")
	}
	bad = s
	bad.MaxLeap = -1
	if bad.Validate() == nil {
		t.Fatal("negative max leap accepted")
	}
	ok := s
	ok.Advance = sim.AdvanceBatch
	if err := ok.Validate(); err != nil {
		t.Fatalf("batch advance rejected: %v", err)
	}
}

func TestPaperAndQuickSweeps(t *testing.T) {
	p := PaperSweep(5)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.InstanceCount() != 3*10*10*10 {
		t.Fatalf("paper sweep has %d instances, want 3000", p.InstanceCount())
	}
	q := QuickSweep(10)
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	if q.InstanceCount() >= p.InstanceCount() {
		t.Fatal("quick sweep not smaller than paper sweep")
	}
	if q.M != 10 {
		t.Fatal("quick sweep m")
	}
}

func TestRunSmallSweep(t *testing.T) {
	s := tinySweep([]string{"IE", "RANDOM", "Y-IE"})
	var lastDone, total int
	res, err := Run(s, func(done, tot int) { lastDone, total = done, tot })
	if err != nil {
		t.Fatal(err)
	}
	want := s.InstanceCount() * 3
	if len(res.Instances) != want {
		t.Fatalf("got %d instance results, want %d", len(res.Instances), want)
	}
	if lastDone != want || total != want {
		t.Fatalf("progress reported %d/%d, want %d/%d", lastDone, total, want, want)
	}
	for _, inst := range res.Instances {
		if inst.Makespan <= 0 {
			t.Fatalf("nonpositive makespan: %+v", inst)
		}
		if inst.Failed && inst.Makespan != s.Cap {
			t.Fatalf("failed instance with makespan %d != cap", inst.Makespan)
		}
	}
}

func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	s := tinySweep([]string{"IE", "Y-IE"})
	s.Workers = 1
	a, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Workers = 4
	b, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Instances) != len(b.Instances) {
		t.Fatal("result counts differ")
	}
	for i := range a.Instances {
		if a.Instances[i] != b.Instances[i] {
			t.Fatalf("instance %d differs across worker counts:\n%+v\n%+v",
				i, a.Instances[i], b.Instances[i])
		}
	}
}

func TestTableAggregation(t *testing.T) {
	// Hand-built result: 1 point, 2 trials, two heuristics.
	pt := Point{Ncom: 5, Wmin: 1, Scenario: 0}
	res := &Result{
		Sweep: Sweep{Wmins: []int{1}},
		Instances: []InstanceResult{
			{Point: pt, Trial: 0, Heuristic: "IE", Makespan: 100},
			{Point: pt, Trial: 1, Heuristic: "IE", Makespan: 200},
			{Point: pt, Trial: 0, Heuristic: "X-RAY", Makespan: 120},
			{Point: pt, Trial: 1, Heuristic: "X-RAY", Makespan: 130},
		},
	}
	rows, err := res.Table("IE")
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]TableRow{}
	for _, r := range rows {
		byName[r.Heuristic] = r
	}
	ie := byName["IE"]
	if ie.Diff != 0 || ie.Wins != 100 || ie.Wins30 != 100 || ie.Fails != 0 {
		t.Fatalf("reference row: %+v", ie)
	}
	x := byName["X-RAY"]
	// Mean makespans: X = 125, IE = 150 -> diff = (125-150)/125 = -20%.
	if x.Diff > -19.9 || x.Diff < -20.1 {
		t.Fatalf("X-RAY diff = %v, want -20", x.Diff)
	}
	// Trial 0: 120 > 100 (loss, and above 1.3*100 = 130? no, 120 <= 130
	// so wins30). Trial 1: 130 <= 200 (win).
	if x.Wins != 50 {
		t.Fatalf("X-RAY wins = %v, want 50", x.Wins)
	}
	if x.Wins30 != 100 {
		t.Fatalf("X-RAY wins30 = %v, want 100", x.Wins30)
	}
	// Rows sorted by diff ascending: X-RAY first.
	if rows[0].Heuristic != "X-RAY" {
		t.Fatalf("row order: %+v", rows)
	}
}

func TestTableFailsExcludedFromDiff(t *testing.T) {
	pt := Point{Ncom: 5, Wmin: 1, Scenario: 0}
	res := &Result{
		Sweep: Sweep{Wmins: []int{1}},
		Instances: []InstanceResult{
			{Point: pt, Trial: 0, Heuristic: "IE", Makespan: 100},
			{Point: pt, Trial: 1, Heuristic: "IE", Makespan: 100},
			{Point: pt, Trial: 0, Heuristic: "H", Makespan: 100},
			{Point: pt, Trial: 1, Heuristic: "H", Makespan: 1000000, Failed: true},
		},
	}
	rows, err := res.Table("IE")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Heuristic == "H" {
			if r.Fails != 1 {
				t.Fatalf("H fails = %d", r.Fails)
			}
			// Succeeding trial mean = 100 = reference -> diff 0.
			if r.Diff != 0 {
				t.Fatalf("H diff = %v, want 0 (failed trial excluded)", r.Diff)
			}
			// The failed trial still counts as a loss.
			if r.Wins != 50 {
				t.Fatalf("H wins = %v, want 50", r.Wins)
			}
		}
	}
}

func TestTableUnknownReference(t *testing.T) {
	res := &Result{Instances: []InstanceResult{{Heuristic: "IE", Makespan: 1}}}
	if _, err := res.Table("MISSING"); err == nil {
		t.Fatal("unknown reference accepted")
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable([]TableRow{{Heuristic: "Y-IE", Fails: 2, Diff: -11.82, Wins: 72.58, Wins30: 92.09, Stdv: 0.42}})
	if !strings.Contains(out, "Y-IE") || !strings.Contains(out, "-11.82") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestFigure2Shape(t *testing.T) {
	s := tinySweep([]string{"IE", "RANDOM"})
	res, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	series, err := res.Figure2("IE")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"IE", "RANDOM"} {
		pts := series[name]
		if len(pts) != len(s.Wmins) {
			t.Fatalf("%s has %d points, want %d", name, len(pts), len(s.Wmins))
		}
		for i, pt := range pts {
			if pt.Wmin != s.Wmins[i] {
				t.Fatalf("%s point %d wmin %d", name, i, pt.Wmin)
			}
		}
	}
	// IE's own curve is identically zero.
	for _, pt := range series["IE"] {
		if pt.Diff != 0 {
			t.Fatalf("reference curve not zero: %+v", pt)
		}
	}
	out := FormatFigure2(series, []string{"IE", "RANDOM"})
	if !strings.Contains(out, "wmin") || !strings.Contains(out, "RANDOM") {
		t.Fatalf("figure format:\n%s", out)
	}
	// Nil name list renders all heuristics.
	if all := FormatFigure2(series, nil); !strings.Contains(all, "IE") {
		t.Fatalf("figure format nil names:\n%s", all)
	}
}

func TestRefFailureDominance(t *testing.T) {
	pt := Point{Ncom: 5, Wmin: 1, Scenario: 0}
	res := &Result{
		Instances: []InstanceResult{
			{Point: pt, Trial: 0, Heuristic: "IE", Makespan: 10, Failed: true},
			{Point: pt, Trial: 0, Heuristic: "A", Makespan: 10, Failed: true},
			{Point: pt, Trial: 0, Heuristic: "B", Makespan: 10, Failed: false},
		},
	}
	if got := res.RefFailureDominance("IE"); got != 1 {
		t.Fatalf("dominance counterexamples = %d, want 1", got)
	}
	res.Instances[2].Failed = true
	if got := res.RefFailureDominance("IE"); got != 0 {
		t.Fatalf("dominance counterexamples = %d, want 0", got)
	}
}

func TestScenarioPlatformDeterministic(t *testing.T) {
	s := tinySweep(nil)
	a := s.scenarioPlatform(Point{5, 1, 0})
	b := s.scenarioPlatform(Point{5, 1, 0})
	for q := range a.Procs {
		if a.Procs[q] != b.Procs[q] {
			t.Fatal("platform generation not deterministic")
		}
	}
	c := s.scenarioPlatform(Point{5, 1, 1})
	same := true
	for q := range a.Procs {
		if a.Procs[q] != c.Procs[q] {
			same = false
		}
	}
	if same {
		t.Fatal("different scenarios produced identical platforms")
	}
}

func TestTrialSeedsDiffer(t *testing.T) {
	s := tinySweep(nil)
	pt := Point{5, 1, 0}
	if s.TrialSeed(pt, 0) == s.TrialSeed(pt, 1) {
		t.Fatal("trial seeds collide")
	}
	if s.TrialSeed(pt, 0) != s.TrialSeed(pt, 0) {
		t.Fatal("trial seed not deterministic")
	}
}

func TestHeuristicsDefault(t *testing.T) {
	s := tinySweep(nil)
	if got := len(s.heuristics()); got != len(sched.Names()) {
		t.Fatalf("default heuristics = %d, want all %d", got, len(sched.Names()))
	}
}

// TestBatchSweepMatchesSequential: a batched campaign yields exactly the
// sequential dispatch's instances in the same order, and every PointDone
// event carries the cell's sharing stats (which sequential dispatch
// leaves nil).
func TestBatchSweepMatchesSequential(t *testing.T) {
	base := tinySweep([]string{"IE", "Y-IE", "IP"})
	seq, err := Run(base, nil)
	if err != nil {
		t.Fatal(err)
	}
	batch := base
	batch.Advance = sim.AdvanceBatch
	var insts []InstanceResult
	points, withCache := 0, 0
	for ev, err := range Stream(context.Background(), batch, RunOptions{}) {
		if err != nil {
			t.Fatal(err)
		}
		switch e := ev.(type) {
		case InstanceDone:
			insts = append(insts, e.Instance)
		case PointDone:
			points++
			if e.Cache != nil {
				withCache++
				if e.Cache.MemoHits+e.Cache.MemoMisses == 0 {
					t.Fatalf("point %+v: empty memo stats %+v", e.Point, *e.Cache)
				}
			}
		}
	}
	if len(insts) != len(seq.Instances) {
		t.Fatalf("batch streamed %d instances, sequential %d", len(insts), len(seq.Instances))
	}
	// Events arrive in completion order; compare in canonical order, as
	// the RunWith family does.
	sortInstances(insts)
	for i := range insts {
		if insts[i] != seq.Instances[i] {
			t.Fatalf("instance %d: batch %+v != sequential %+v", i, insts[i], seq.Instances[i])
		}
	}
	if points == 0 || withCache != points {
		t.Fatalf("cache stats on %d of %d PointDone events", withCache, points)
	}
}

// TestTrialSeedExported: the exported derivation matches what runInstance
// uses — stable across the sweep's own parameters.
func TestTrialSeedExported(t *testing.T) {
	s := tinySweep(nil)
	pt := Point{Ncom: s.Ncoms[0], Wmin: s.Wmins[0], Scenario: 1}
	if s.TrialSeed(pt, 0) == s.TrialSeed(pt, 1) {
		t.Fatal("distinct trials share a seed")
	}
	if TrialStream(1, 2) == nil {
		t.Fatal("nil trial stream")
	}
}
