package exp

import (
	"encoding/json"
	"fmt"
	"os"
)

// ConvertJournal rewrites a journal (sweep or grid — the header decides)
// into the requested format at dst, streaming record by record. The
// header document is carried over verbatim, so the converted journal
// stamps the byte-identical campaign identity; entries are decoded and
// re-encoded, which for JSONL → binary → JSONL reproduces the original
// file byte for byte (records are canonical json.Marshal output in both
// directions). A torn tail in src is dropped, exactly as resume would
// drop it. dst must not exist.
func ConvertJournal(src, dst string, to Format) error {
	var srcFormat Format
	var err error
	var w recordAppender
	var buf []byte
	intern := map[string]string{}
	isGrid := false
	// scanRecords swallows an fn error on the final record (that is the
	// torn-tail contract, and a tail that fails to decode should indeed
	// be dropped) — but a destination write failure must surface even
	// there, so track it separately.
	var writeErr error
	err = scanRecords(src,
		func(format Format, headerRaw []byte) error {
			srcFormat = format
			// The kind marker distinguishes grid journals from sweep
			// journals; validate the header as whichever it claims to be.
			var probe struct {
				Kind string `json:"kind"`
			}
			if err := json.Unmarshal(headerRaw, &probe); err != nil {
				return fmt.Errorf("exp: convert %s: bad journal header: %w", src, err)
			}
			isGrid = probe.Kind == gridJournalKind
			if isGrid {
				if _, err := parseGridHeader(src, headerRaw); err != nil {
					return err
				}
			} else if _, err := parseJournalHeader(src, headerRaw); err != nil {
				return err
			}
			if to == FormatBinary {
				bw, err := CreateBinaryLog(dst, headerRaw)
				if err != nil {
					return err
				}
				w = bw
				return nil
			}
			f, err := os.OpenFile(dst, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
			if err != nil {
				return err
			}
			jw := &JSONLWriter{f: f}
			if err := jw.AppendRecord(headerRaw); err != nil {
				f.Close()
				os.Remove(dst)
				return err
			}
			w = jw
			return nil
		},
		func(payload []byte) error {
			if isGrid {
				inst, err := decodeGridEntry(srcFormat, payload, intern)
				if err != nil {
					return err
				}
				if to == FormatBinary {
					buf = appendBinaryGridEntry(buf[:0], inst)
				} else if buf, err = json.Marshal(inst); err != nil {
					return err
				}
			} else {
				e, err := decodeJournalEntry(srcFormat, payload, intern)
				if err != nil {
					return err
				}
				if to == FormatBinary {
					buf = appendBinaryEntry(buf[:0], e)
				} else if buf, err = json.Marshal(e); err != nil {
					return err
				}
			}
			if werr := w.AppendRecord(buf); werr != nil {
				writeErr = werr
				return werr
			}
			return nil
		})
	if err == nil {
		err = writeErr
	}
	if w != nil {
		if cerr := w.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		os.Remove(dst)
		return err
	}
	return nil
}
