package exp

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// codecSweep is a small campaign used across the codec tests: several
// heuristics (so coordinate groups span records) and enough cells that a
// torn tail lands mid-campaign.
func codecSweep() Sweep {
	s := tinySweep([]string{"IE", "Y-IE", "RANDOM"})
	s.Scenarios = 2
	s.Trials = 2
	return s
}

// runJournaled runs the sweep with a journal in the given format and
// returns the complete journal path and the in-memory result.
func runJournaled(t *testing.T, dir string, s Sweep, format Format) (string, *Result) {
	t.Helper()
	path := filepath.Join(dir, "sweep."+format.String())
	j, err := CreateJournalFormat(path, s, Shard{}, format)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWith(s, RunOptions{Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path, res
}

// TestBinaryJournalResultParity: the same campaign journaled under both
// formats loads back to identical instances and identical table bytes.
func TestBinaryJournalResultParity(t *testing.T) {
	s := codecSweep()
	dir := t.TempDir()
	jsonlPath, ref := runJournaled(t, dir, s, FormatJSONL)
	binPath, _ := runJournaled(t, dir, s, FormatBinary)

	if f, err := SniffFormat(binPath); err != nil || f != FormatBinary {
		t.Fatalf("SniffFormat(bin) = %v, %v", f, err)
	}
	if f, err := SniffFormat(jsonlPath); err != nil || f != FormatJSONL {
		t.Fatalf("SniffFormat(jsonl) = %v, %v", f, err)
	}

	fromJSONL, _, err := LoadJournal(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, _, err := LoadJournal(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromJSONL.Instances, fromBin.Instances) {
		t.Fatal("instances differ between formats")
	}
	if !reflect.DeepEqual(fromBin.Instances, ref.Instances) {
		t.Fatal("binary journal replay differs from the live run")
	}
	a, err := fromJSONL.Table(ReferenceHeuristic)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fromBin.Table(ReferenceHeuristic)
	if err != nil {
		t.Fatal(err)
	}
	if FormatTable(a) != FormatTable(b) {
		t.Fatal("table bytes differ between formats")
	}

	// The binary file should be substantially smaller.
	ji, _ := os.Stat(jsonlPath)
	bi, _ := os.Stat(binPath)
	if bi.Size() >= ji.Size() {
		t.Fatalf("binary journal (%d B) not smaller than JSONL (%d B)", bi.Size(), ji.Size())
	}
}

// TestConvertRoundTripByteIdentical: JSONL → binary → JSONL reproduces
// the original file byte for byte — entries re-marshal canonically and
// the header is carried verbatim.
func TestConvertRoundTripByteIdentical(t *testing.T) {
	s := codecSweep()
	dir := t.TempDir()
	jsonlPath, _ := runJournaled(t, dir, s, FormatJSONL)

	binPath := filepath.Join(dir, "converted.bin")
	if err := ConvertJournal(jsonlPath, binPath, FormatBinary); err != nil {
		t.Fatal(err)
	}
	backPath := filepath.Join(dir, "back.jsonl")
	if err := ConvertJournal(binPath, backPath, FormatJSONL); err != nil {
		t.Fatal(err)
	}
	orig, err := os.ReadFile(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	back, err := os.ReadFile(backPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, back) {
		t.Fatal("JSONL → binary → JSONL round trip is not byte-identical")
	}

	// binary → JSONL → binary is likewise stable.
	binAgain := filepath.Join(dir, "again.bin")
	if err := ConvertJournal(backPath, binAgain, FormatBinary); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(binPath)
	b2, _ := os.ReadFile(binAgain)
	if !bytes.Equal(b1, b2) {
		t.Fatal("binary journal not stable under a JSONL round trip")
	}

	// Refuses to clobber.
	if err := ConvertJournal(jsonlPath, binPath, FormatBinary); err == nil {
		t.Fatal("convert over an existing destination should fail")
	}
}

// interruptJournaled journals a prefix of the campaign (interrupting via
// a failing sink) and returns the journal path.
func interruptJournaled(t *testing.T, dir string, s Sweep, format Format) string {
	t.Helper()
	path := filepath.Join(dir, "partial."+format.String())
	j, err := CreateJournalFormat(path, s, Shard{}, format)
	if err != nil {
		t.Fatal(err)
	}
	interrupted := errors.New("interrupted")
	n := 0
	_, err = RunWith(s, RunOptions{Journal: j, Sink: func(InstanceResult) error {
		if n++; n >= 7 {
			return interrupted
		}
		return nil
	}})
	if !errors.Is(err, interrupted) {
		t.Fatalf("interrupted run returned %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestCrossFormatResumeParity is the acceptance path: a campaign is
// interrupted under one format, converted to the other, resumed there —
// and the tables must be byte-identical to a straight run's, in both
// directions.
func TestCrossFormatResumeParity(t *testing.T) {
	s := codecSweep()
	ref, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	refRows, err := ref.Table(ReferenceHeuristic)
	if err != nil {
		t.Fatal(err)
	}
	refTable := FormatTable(refRows)

	for _, dir := range []struct {
		name     string
		from, to Format
	}{
		{"jsonl-to-binary", FormatJSONL, FormatBinary},
		{"binary-to-jsonl", FormatBinary, FormatJSONL},
	} {
		t.Run(dir.name, func(t *testing.T) {
			tmp := t.TempDir()
			partial := interruptJournaled(t, tmp, s, dir.from)
			converted := filepath.Join(tmp, "converted."+dir.to.String())
			if err := ConvertJournal(partial, converted, dir.to); err != nil {
				t.Fatal(err)
			}
			res, err := Resume(converted, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Instances, ref.Instances) {
				t.Fatal("instances differ after cross-format resume")
			}
			rows, err := res.Table(ReferenceHeuristic)
			if err != nil {
				t.Fatal(err)
			}
			if got := FormatTable(rows); got != refTable {
				t.Fatalf("table differs after cross-format resume:\n--- straight\n%s--- resumed\n%s", refTable, got)
			}
		})
	}
}

// TestBinaryResumeTornTail: a binary journal torn mid-record (as a crash
// mid-write would leave it) reopens to the intact prefix and resumes to
// the bit-identical result.
func TestBinaryResumeTornTail(t *testing.T) {
	s := codecSweep()
	ref, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	tmp := t.TempDir()
	path := interruptJournaled(t, tmp, s, FormatBinary)

	// Tear: append a length prefix promising more bytes than follow.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{40, 'p', 'a', 'r', 't'}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	res, err := Resume(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Instances, ref.Instances) {
		t.Fatal("instances differ after torn-tail binary resume")
	}
}

// TestBinaryCorruptMiddleRejected mirrors the JSONL tamper policy: a
// CRC-damaged record with intact records after it silently ends the
// readable prefix at the damage (framing cannot resync), while a record
// that frames correctly but decodes to garbage mid-file is an error.
func TestBinaryCorruptMiddleRejected(t *testing.T) {
	s := codecSweep()
	tmp := t.TempDir()
	path, _ := runJournaled(t, tmp, s, FormatBinary)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte mid-file: the CRC catches it and the intact
	// prefix ends there — OpenJournal then truncates to that prefix.
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0xff
	badPath := filepath.Join(tmp, "crc-damaged.bin")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(badPath)
	if err != nil {
		t.Fatal(err)
	}
	full, _, err := LoadJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.DoneCount() >= len(full.Instances) {
		t.Fatalf("damaged journal still reports %d of %d instances", j.DoneCount(), len(full.Instances))
	}
	j.Close()

	// A CRC-valid record whose payload fails entry decoding, with records
	// after it, is corruption, not a tear. Splice in a well-framed garbage
	// record right after the header.
	recs, _, err := parseBinaryLog(path, data)
	if err != nil {
		t.Fatal(err)
	}
	headerEnd := recs[0].end
	garbage := []byte{0xde, 0xad}
	var frame []byte
	frame = binary.AppendUvarint(frame, uint64(len(garbage)))
	frame = append(frame, garbage...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(garbage))
	spliced := append(append(append([]byte(nil), data[:headerEnd]...), frame...), data[headerEnd:]...)
	splicedPath := filepath.Join(tmp, "spliced.bin")
	if err := os.WriteFile(splicedPath, spliced, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(splicedPath); err == nil {
		t.Fatal("mid-file garbage record should be rejected")
	}
}

// TestAggregateJournalParity: streaming aggregation over a journal (both
// formats) renders byte-identical tables, Figure 2, models and the
// robustness check — without materializing instances.
func TestAggregateJournalParity(t *testing.T) {
	s := codecSweep()
	dir := t.TempDir()
	jsonlPath, ref := runJournaled(t, dir, s, FormatJSONL)
	binPath, _ := runJournaled(t, dir, s, FormatBinary)
	refRows, err := ref.Table(ReferenceHeuristic)
	if err != nil {
		t.Fatal(err)
	}
	refDom := ref.RefFailureDominance(ReferenceHeuristic)

	for _, path := range []string{jsonlPath, binPath} {
		agg, err := AggregateJournal(path)
		if err != nil {
			t.Fatal(err)
		}
		if agg.Instances != nil {
			t.Fatal("aggregation-only result should hold no instances")
		}
		rows, err := agg.Table(ReferenceHeuristic)
		if err != nil {
			t.Fatal(err)
		}
		if FormatTable(rows) != FormatTable(refRows) {
			t.Fatalf("%s: aggregated table differs from materialized table", path)
		}
		if got := agg.RefFailureDominance(ReferenceHeuristic); got != refDom {
			t.Fatalf("%s: dominance %d, want %d", path, got, refDom)
		}
		if !reflect.DeepEqual(agg.Models(), ref.Models()) {
			t.Fatalf("%s: models %v, want %v", path, agg.Models(), ref.Models())
		}
		refFig, err := ref.Figure2(ReferenceHeuristic)
		if err != nil {
			t.Fatal(err)
		}
		aggFig, err := agg.Figure2(ReferenceHeuristic)
		if err != nil {
			t.Fatal(err)
		}
		if FormatFigure2(aggFig, nil) != FormatFigure2(refFig, nil) {
			t.Fatalf("%s: Figure 2 differs under aggregation", path)
		}
		// Only the streamed reference renders; anything else errors.
		if _, err := agg.Table("RANDOM"); err == nil {
			t.Fatal("aggregation-only result rendered a non-streamed reference")
		}
	}
}

// TestDiscardInstancesStreamingTables: a DiscardInstances run holds no
// instances yet renders the same table bytes as a collecting run.
func TestDiscardInstancesStreamingTables(t *testing.T) {
	s := codecSweep()
	ref, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	refRows, err := ref.Table(ReferenceHeuristic)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWith(s, RunOptions{DiscardInstances: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != nil {
		t.Fatalf("DiscardInstances run still holds %d instances", len(res.Instances))
	}
	rows, err := res.Table(ReferenceHeuristic)
	if err != nil {
		t.Fatal(err)
	}
	if FormatTable(rows) != FormatTable(refRows) {
		t.Fatal("streamed table differs from collected table")
	}
	if got, want := res.RefFailureDominance(ReferenceHeuristic), ref.RefFailureDominance(ReferenceHeuristic); got != want {
		t.Fatalf("dominance %d, want %d", got, want)
	}
}

// TestGridCrossFormatConvertResume: grid journals convert and resume
// across formats with byte-identical Table IV.
func TestGridCrossFormatConvertResume(t *testing.T) {
	g := gridTestSweep()
	ref, err := RunGridContext(t.Context(), g, GridRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	refTable := FormatTableIV(ref.TableIV())

	tmp := t.TempDir()
	binPath := filepath.Join(tmp, "grid.bin")
	j, err := CreateGridJournalFormat(binPath, &g, FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunGridContext(t.Context(), g, GridRunOptions{Journal: j}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Pure replay of the complete binary journal.
	res, err := ResumeGrid(t.Context(), binPath, GridRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatTableIV(res.TableIV()); got != refTable {
		t.Fatal("Table IV differs after binary grid replay")
	}

	// Convert to JSONL and replay again.
	jsonlPath := filepath.Join(tmp, "grid.jsonl")
	if err := ConvertJournal(binPath, jsonlPath, FormatJSONL); err != nil {
		t.Fatal(err)
	}
	res2, err := ResumeGrid(t.Context(), jsonlPath, GridRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatTableIV(res2.TableIV()); got != refTable {
		t.Fatal("Table IV differs after cross-format grid replay")
	}

	// Streaming grid aggregation agrees too.
	agg, err := AggregateGridJournal(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatTableIV(agg.Grid.TableIV()); got != refTable {
		t.Fatal("Table IV differs under streaming aggregation")
	}
}

// TestExportColumns: the columnar export's files are exactly rows × width
// bytes, the dictionaries decode back to the journal's strings, and both
// source formats export identical data files.
func TestExportColumns(t *testing.T) {
	s := codecSweep()
	tmp := t.TempDir()
	jsonlPath, ref := runJournaled(t, tmp, s, FormatJSONL)
	binPath, _ := runJournaled(t, tmp, s, FormatBinary)

	dirA := filepath.Join(tmp, "colsA")
	if err := ExportColumns(jsonlPath, dirA); err != nil {
		t.Fatal(err)
	}
	dirB := filepath.Join(tmp, "colsB")
	if err := ExportColumns(binPath, dirB); err != nil {
		t.Fatal(err)
	}

	manifest, err := os.ReadFile(filepath.Join(dirA, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"rows": ` + itoa(len(ref.Instances)), `"makespan.i64"`, `"dictionary"`} {
		if !strings.Contains(string(manifest), want) {
			t.Fatalf("manifest missing %s:\n%s", want, manifest)
		}
	}
	widths := map[string]int64{
		"ncom.i32": 4, "wmin.i32": 4, "scenario.i32": 4, "trial.i32": 4,
		"model.u32": 4, "heuristic.u32": 4, "makespan.i64": 8, "failed.u8": 1,
	}
	for file, width := range widths {
		a, err := os.ReadFile(filepath.Join(dirA, file))
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(a)) != width*int64(len(ref.Instances)) {
			t.Fatalf("%s: %d bytes, want %d", file, len(a), width*int64(len(ref.Instances)))
		}
		b, err := os.ReadFile(filepath.Join(dirB, file))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between source formats", file)
		}
	}
	// Spot-check the makespan column against the journal.
	mk, _ := os.ReadFile(filepath.Join(dirA, "makespan.i64"))
	loaded, _, err := LoadJournal(jsonlPath)
	if err != nil {
		t.Fatal(err)
	}
	sums := map[int64]int{}
	for _, inst := range loaded.Instances {
		sums[inst.Makespan]++
	}
	for i := 0; i < len(mk); i += 8 {
		v := int64(binary.LittleEndian.Uint64(mk[i : i+8]))
		if sums[v] == 0 {
			t.Fatalf("makespan column value %d not in journal", v)
		}
		sums[v]--
	}

	// Refuses to clobber an existing export.
	if err := ExportColumns(jsonlPath, dirA); err == nil {
		t.Fatal("re-export over an existing manifest should fail")
	}
	// Grid journals have no instance columns.
	g := gridTestSweep()
	gridPath := filepath.Join(tmp, "grid.jsonl")
	gj, err := CreateGridJournal(gridPath, &g)
	if err != nil {
		t.Fatal(err)
	}
	gj.Close()
	if err := ExportColumns(gridPath, filepath.Join(tmp, "colsG")); err == nil {
		t.Fatal("grid export should fail")
	}
}

func itoa(n int) string {
	return string(appendInt(nil, n))
}

func appendInt(b []byte, n int) []byte {
	if n >= 10 {
		b = appendInt(b, n/10)
	}
	return append(b, byte('0'+n%10))
}

// TestAggregateJournalAllocsBounded: steady-state aggregation memory is
// O(cells), so decoding 8× the trials must not cost 8× the allocations.
func TestAggregateJournalAllocsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation scaling check")
	}
	build := func(trials int) string {
		s := tinySweep([]string{"IE", "RANDOM"})
		s.Scenarios = 1
		s.Trials = trials
		path := filepath.Join(t.TempDir(), "alloc.bin")
		j, err := CreateJournalFormat(path, s, Shard{}, FormatBinary)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range s.Coords() {
			for _, h := range []string{"IE", "RANDOM"} {
				inst := InstanceResult{Point: c.Point, Trial: c.Trial, Model: c.Model,
					Heuristic: h, Makespan: int64(1000 + c.Trial)}
				if err := j.Append(inst); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	small := build(50)
	large := build(400)
	measure := func(path string) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := AggregateJournal(path); err != nil {
					b.Fatal(err)
				}
			}
		})
		return float64(r.AllocsPerOp())
	}
	smallAllocs := measure(small)
	largeAllocs := measure(large)
	// 8× the records; require well under 8× the allocations (per-record
	// state would scale linearly). The fixed per-call overhead dominates.
	if largeAllocs > 4*smallAllocs {
		t.Fatalf("allocations scale with records: %v for 50 trials, %v for 400", smallAllocs, largeAllocs)
	}
}

// FuzzJournalDecode: arbitrary bytes must never panic a reader, and the
// whole-file and streaming readers must agree on the record count
// whenever both accept the input.
func FuzzJournalDecode(f *testing.F) {
	s := tinySweep([]string{"IE", "RANDOM"})
	s.Scenarios = 1
	s.Trials = 1
	dir := f.TempDir()
	for _, format := range []Format{FormatJSONL, FormatBinary} {
		path := filepath.Join(dir, "seed."+format.String())
		j, err := CreateJournalFormat(path, s, Shard{}, format)
		if err != nil {
			f.Fatal(err)
		}
		for _, c := range s.Coords() {
			for _, h := range []string{"IE", "RANDOM"} {
				inst := InstanceResult{Point: c.Point, Trial: c.Trial, Model: c.Model,
					Heuristic: h, Makespan: 1234}
				if err := j.Append(inst); err != nil {
					f.Fatal(err)
				}
			}
		}
		if err := j.Close(); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)-3]) // torn tail
	}
	f.Add([]byte("TSBL\x01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.journal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		format, _, recs, _, wholeErr := readJournalRecords(path)
		intern := map[string]string{}
		wholeDecoded := 0
		if wholeErr == nil {
			for _, rec := range recs {
				if _, err := decodeJournalEntry(format, rec.payload, intern); err != nil {
					break
				}
				wholeDecoded++
			}
		}
		scanned := 0
		scanErr := scanRecords(path,
			func(Format, []byte) error { return nil },
			func(payload []byte) error {
				if _, err := decodeJournalEntry(format, payload, map[string]string{}); err != nil {
					return err
				}
				scanned++
				return nil
			})
		// Both readers accepting the input must agree on the decodable
		// record count (the scan drops a decode-failing tail record; the
		// whole-file count stops there too).
		if wholeErr == nil && scanErr == nil && scanned != wholeDecoded {
			t.Fatalf("whole-file reader decoded %d records, scanner %d", wholeDecoded, scanned)
		}
		// LoadJournal must not panic either (errors are fine).
		_, _, _ = LoadJournal(path)
	})
}
