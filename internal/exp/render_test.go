package exp

import (
	"context"
	"strings"
	"testing"
)

// TestRenderTableArtifact pins the shared artifact renderer's contract:
// the byte string cmd/tables prints and the daemon serves. The content
// itself is covered by the aggregation tests; here we check the
// artifact's framing, the m gate, and the error cases.
func TestRenderTableArtifact(t *testing.T) {
	if _, err := ArtifactM(5); err == nil || !strings.Contains(err.Error(), "no Table 5") {
		t.Errorf("ArtifactM(5) = %v, want unknown-table error", err)
	}
	if m, err := ArtifactM(4); err != nil || m != 0 {
		t.Errorf("ArtifactM(4) = %d, %v, want the unconstrained online table", m, err)
	}

	sweep := Sweep{
		M: 5, Ncoms: []int{5}, Wmins: []int{1}, Scenarios: 1, Trials: 1,
		P: 8, Iterations: 2, Cap: 50_000, Seed: 3,
		Heuristics: []string{"IE", "Y-IE", "RANDOM"},
	}
	res, err := RunWithContext(context.Background(), sweep, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}

	artifact, err := RenderTableArtifact(res, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(artifact, "\nTable I — results with m = 5 tasks (reference: IE)\n\n") {
		t.Errorf("Table I framing wrong:\n%q", artifact[:min(len(artifact), 80)])
	}
	if !strings.Contains(artifact, "robustness:") {
		t.Error("Table I artifact lacks the robustness line")
	}
	for _, h := range sweep.Heuristics {
		if !strings.Contains(artifact, h) {
			t.Errorf("artifact missing heuristic %s", h)
		}
	}
	// Rendering is pure: same result, same bytes.
	again, err := RenderTableArtifact(res, 1)
	if err != nil || again != artifact {
		t.Error("rendering is not deterministic over an identical result")
	}

	three, err := RenderTableArtifact(res, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(three, "Table III — results with m = 5 tasks per availability model") {
		t.Errorf("Table III framing wrong:\n%q", three[:min(len(three), 100)])
	}

	// An m = 5 campaign cannot render the m = 10 Table II.
	if _, err := RenderTableArtifact(res, 2); err == nil || !strings.Contains(err.Error(), "m=5") {
		t.Errorf("Table II over an m=5 result = %v, want m-mismatch error", err)
	}

	// A result missing the reference heuristic renders nothing.
	noRef := &Result{Sweep: sweep, Instances: nil}
	noRef.Sweep.Heuristics = []string{"Y-IE"}
	if _, err := RenderTableArtifact(noRef, 1); err == nil {
		t.Error("render without the reference heuristic should error")
	}
}
