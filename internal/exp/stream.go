package exp

import (
	"context"
	"errors"
	"iter"
	"runtime"
	"sync"

	"tightsched/internal/analytic"
	"tightsched/internal/avail"
	"tightsched/internal/sim"
)

// This file is the streamed campaign-event API: Stream runs a sweep's
// worker pool and delivers completions as a Go 1.23+ range-over-func
// iterator instead of a callback, which is what the RunWith family and
// the façade Session are built on. Three event kinds flow, all emitted
// from the consumer's goroutine in completion order:
//
//   - InstanceDone — one (model, point, trial, heuristic) result, already
//     journaled when a journal is attached;
//   - PointDone — every instance of one (model, point) cell has finished,
//     the granularity at which partial tables become meaningful;
//   - Progress — completion counters, emitted after each live instance
//     and once after journal replay.
//
// Breaking out of the loop (or cancelling the context) shuts the pool
// down without leaking goroutines and leaves any journal resumable.

// Event is one item of a campaign's event stream. The concrete types are
// InstanceDone, PointDone and Progress.
type Event interface{ sweepEvent() }

// InstanceDone carries one completed instance. Completed/Total count
// instances, including journal-replayed ones.
type InstanceDone struct {
	Instance InstanceResult
	// Replayed marks an instance recovered from the journal rather than
	// simulated in this run (resume skips recorded work).
	Replayed  bool
	Completed int
	Total     int
}

// PointDone signals that every (trial, heuristic) instance of one
// (model, point) cell has completed — the unit at which same-realization
// heuristic comparisons are complete.
type PointDone struct {
	Model           string
	Point           Point
	CompletedPoints int
	TotalPoints     int
	// Cache reports the cell's cross-instance cache effectiveness when it
	// ran as a lockstep batch (Sweep.Advance == sim.AdvanceBatch); nil
	// under the sequential dispatch, and nil for cells fully replayed
	// from a journal. When a batched cell is partially replayed the
	// counters cover only the live part.
	Cache *CacheStats
}

// CacheStats is the cross-instance sharing summary of one batched cell:
// the analytic set-statistics memo traffic (cross-trial SetKey sharing)
// and the shared greedy-build cache traffic (decision equivalence
// classes). Every decision miss is one equivalence-class representative
// actually built; the mean class size is (hits+misses)/misses.
type CacheStats struct {
	// MemoHits/MemoMisses count set-statistics memo lookups during the
	// cell; MemoEntries is the number of distinct memoized sets held by
	// the worker's platform afterwards.
	MemoHits    uint64
	MemoMisses  uint64
	MemoEntries int
	// DecisionHits/DecisionMisses count shared-build lookups;
	// DecisionClasses is the number of distinct decision classes held
	// when the cell finished.
	DecisionHits    uint64
	DecisionMisses  uint64
	DecisionClasses int
}

// newCacheStats converts the simulator's batch counters.
func newCacheStats(st sim.BatchStats) *CacheStats {
	return &CacheStats{
		MemoHits:        st.Memo.Hits,
		MemoMisses:      st.Memo.Misses,
		MemoEntries:     st.Memo.Entries,
		DecisionHits:    st.Decisions.Hits,
		DecisionMisses:  st.Decisions.Misses,
		DecisionClasses: st.Decisions.Classes,
	}
}

// Add accumulates another cell's counters (for campaign-wide summaries).
func (c *CacheStats) Add(o CacheStats) {
	c.MemoHits += o.MemoHits
	c.MemoMisses += o.MemoMisses
	if o.MemoEntries > c.MemoEntries {
		c.MemoEntries = o.MemoEntries
	}
	c.DecisionHits += o.DecisionHits
	c.DecisionMisses += o.DecisionMisses
	if o.DecisionClasses > c.DecisionClasses {
		c.DecisionClasses = o.DecisionClasses
	}
}

// Progress reports completion counters: it follows every live
// InstanceDone, plus one summary event after journal replay.
type Progress struct {
	Completed int
	Total     int
}

func (InstanceDone) sweepEvent() {}
func (PointDone) sweepEvent()    {}
func (Progress) sweepEvent()     {}

// Observer receives typed campaign events. RunWith-family calls invoke it
// from a single goroutine, in completion order; implementations need no
// internal locking.
type Observer interface {
	OnInstanceDone(InstanceDone)
	OnPointDone(PointDone)
	OnProgress(Progress)
}

// pointKey identifies one (model, point) cell of the grid.
type pointKey struct {
	Model string
	Point Point
}

// Stream executes the campaign and returns its event stream. Iteration
// drives the run: the worker pool simulates instances concurrently while
// events are yielded — journaled first, when opts.Journal is set — on the
// consumer's goroutine in completion order. The stream is single-use.
//
// Cancelling ctx stops the campaign at instance boundaries (and mid-run
// at macro-step boundaries); the stream then ends with the context's error.
// Breaking out of the loop early cancels the same way but yields no
// error, per the iterator contract. Either way no goroutines are leaked
// and an attached journal holds every completed instance, so a later
// Resume reproduces the uninterrupted result bit for bit.
//
// Only the execution fields of opts (Journal, Shard, Workers) apply
// here; the consumption fields (Progress, Sink, Observer,
// DiscardInstances) belong to the RunWith family, for which the stream
// itself is the delivery mechanism.
func Stream(ctx context.Context, sweep Sweep, opts RunOptions) iter.Seq2[Event, error] {
	return func(yield func(Event, error) bool) {
		if err := sweep.Validate(); err != nil {
			yield(nil, err)
			return
		}
		if err := opts.Shard.Validate(); err != nil {
			yield(nil, err)
			return
		}
		if opts.Journal != nil {
			if err := opts.Journal.matches(&sweep, opts.Shard); err != nil {
				yield(nil, err)
				return
			}
		}
		heuristics := sweep.heuristics()
		modelByName := map[string]avail.Model{}
		for _, m := range sweep.models() {
			modelByName[m.Name()] = m
		}

		// Under the batch core the dispatch unit widens from one
		// (coord, heuristic) instance to one (model, point) cell: every
		// live (trial, heuristic) pair of the cell runs as a single
		// lockstep batch on one worker, sharing availability walks and
		// decision builds. Journal records and events stay per-instance
		// either way.
		batch := sweep.Advance == sim.AdvanceBatch
		type job struct {
			c Coord
			h string
			// pairs holds a batched cell's live work; empty for a
			// sequential single-instance job.
			pairs []cellPair
		}
		var jobs []job
		var prior []InstanceResult
		liveCount := 0
		remaining := map[pointKey]int{}
		for idx, c := range sweep.Coords() {
			if !opts.Shard.Covers(idx) {
				continue
			}
			for _, h := range heuristics {
				remaining[pointKey{c.Model, c.Point}]++
				if opts.Journal != nil {
					if inst, ok := opts.Journal.Done(Key{c.Model, c.Point.Ncom, c.Point.Wmin, c.Point.Scenario, c.Trial, h}); ok {
						prior = append(prior, inst)
						continue
					}
				}
				liveCount++
				if batch {
					// Coords enumerate trials of a cell contiguously, so
					// the current cell is always the last job (if any).
					if n := len(jobs); n == 0 || jobs[n-1].c.Model != c.Model || jobs[n-1].c.Point != c.Point {
						jobs = append(jobs, job{c: Coord{Model: c.Model, Point: c.Point, Trial: -1}})
					}
					last := &jobs[len(jobs)-1]
					last.pairs = append(last.pairs, cellPair{trial: c.Trial, h: h})
					continue
				}
				jobs = append(jobs, job{c: c, h: h})
			}
		}
		total := liveCount + len(prior)
		totalPoints := len(remaining)
		completed, completedPoints := 0, 0

		// cellStats holds batched cells' cache counters until their
		// PointDone fires.
		cellStats := map[pointKey]*CacheStats{}

		// emitInstance yields the InstanceDone event (and the PointDone
		// it may complete) and reports whether the consumer wants more.
		emitInstance := func(inst InstanceResult, replayed bool) bool {
			completed++
			if !yield(InstanceDone{Instance: inst, Replayed: replayed, Completed: completed, Total: total}, nil) {
				return false
			}
			pk := pointKey{modelName(inst), inst.Point}
			remaining[pk]--
			if remaining[pk] == 0 {
				completedPoints++
				if !yield(PointDone{Model: pk.Model, Point: pk.Point,
					CompletedPoints: completedPoints, TotalPoints: totalPoints,
					Cache: cellStats[pk]}, nil) {
					return false
				}
				delete(cellStats, pk)
			}
			return true
		}

		// Journal replay first, in canonical order, then one summary
		// Progress event — resuming consumers see recorded work exactly
		// once without a per-instance progress storm. Replay honors
		// cancellation at instance boundaries like the live pool does, so
		// a cancelled campaign never masquerades as a completed one even
		// when everything is already journaled.
		sortInstances(prior)
		for _, inst := range prior {
			if err := ctx.Err(); err != nil {
				yield(nil, err)
				return
			}
			if !emitInstance(inst, true) {
				return
			}
		}
		if len(prior) > 0 {
			if !yield(Progress{Completed: completed, Total: total}, nil) {
				return
			}
		}
		if len(jobs) == 0 {
			return
		}

		ctx, cancel := context.WithCancel(ctx)
		defer cancel()

		workers := sweep.Workers
		if opts.Workers > 0 {
			workers = opts.Workers
		}
		if workers <= 0 {
			workers = runtime.NumCPU()
		}
		if workers > len(jobs) {
			workers = len(jobs)
		}

		// packet carries one completed instance to the collector; batched
		// cells attach their cache counters to every instance, and the
		// collector keeps the last seen per cell.
		type packet struct {
			inst  InstanceResult
			cache *CacheStats
		}

		jobCh := make(chan int)
		resCh := make(chan packet, workers)
		errCh := make(chan error, workers)

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				cache := analytic.NewPlatformCache()
				for idx := range jobCh {
					j := jobs[idx]
					// Instance boundary: a cancelled campaign starts no
					// new simulations.
					if ctx.Err() != nil {
						return
					}
					var packets []packet
					if len(j.pairs) > 0 {
						insts, cst, err := runCell(ctx, &sweep, modelByName[j.c.Model], j.c.Model, j.c.Point, j.pairs, cache)
						if err != nil {
							if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
								select {
								case errCh <- err:
								default:
								}
							}
							cancel()
							return
						}
						for _, inst := range insts {
							packets = append(packets, packet{inst: inst, cache: cst})
						}
					} else {
						res, err := runInstance(ctx, &sweep, modelByName[j.c.Model], j.c.Point, j.c.Trial, j.h, cache)
						if err != nil {
							// A run aborted by cancellation is not a campaign
							// failure; the stream reports the context's error
							// once, at the end.
							if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
								select {
								case errCh <- err:
								default:
								}
							}
							cancel()
							return
						}
						packets = []packet{{inst: InstanceResult{
							Point:     j.c.Point,
							Trial:     j.c.Trial,
							Model:     j.c.Model,
							Heuristic: j.h,
							Makespan:  res.Makespan,
							Failed:    res.Failed,
						}}}
					}
					for _, pk := range packets {
						select {
						case resCh <- pk:
						case <-ctx.Done():
							return
						}
					}
				}
			}()
		}
		go func() { // feeder
			defer close(jobCh)
			for idx := range jobs {
				select {
				case jobCh <- idx:
				case <-ctx.Done():
					return
				}
			}
		}()
		go func() { // closer: resCh ends exactly when the pool has exited
			wg.Wait()
			close(resCh)
		}()

		// shutdown stops the pool and blocks until every worker has
		// exited, so returning from the iterator never leaks goroutines.
		// Results still queued when the consumer quits are dropped
		// without journaling — a later Resume re-runs exactly those.
		shutdown := func() {
			cancel()
			for range resCh {
			}
		}

		// The iterator's caller is the collector: journal appends happen
		// here, before the event is yielded, so every instance a consumer
		// observes is already durable.
		for pk := range resCh {
			inst := pk.inst
			if pk.cache != nil {
				cellStats[pointKey{modelName(inst), inst.Point}] = pk.cache
			}
			if opts.Journal != nil {
				if err := opts.Journal.Append(inst); err != nil {
					shutdown()
					yield(nil, err)
					return
				}
			}
			if !emitInstance(inst, false) || !yield(Progress{Completed: completed, Total: total}, nil) {
				shutdown()
				return
			}
		}
		// Pool exited. Surface a worker error, or the cancellation that
		// cut the campaign short.
		select {
		case err := <-errCh:
			yield(nil, err)
			return
		default:
		}
		if err := ctx.Err(); err != nil && completed < total {
			yield(nil, err)
		}
	}
}
