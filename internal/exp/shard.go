package exp

import (
	"fmt"
	"reflect"
	"strconv"
	"strings"
)

// Shard names one deterministic slice of a campaign's instance grid:
// shard i of n owns every coordinate whose canonical index (Sweep.Coords
// order) is congruent to i mod n. The partition is round-robin, so shards
// are balanced to within one coordinate, and because each coordinate
// keeps its full heuristic fan-out, every shard journal is internally
// consistent for same-realization comparisons. The zero value (and 0/1)
// means the whole campaign. Indices are 0-based: valid shards of a 3-way
// split are 0/3, 1/3 and 2/3.
type Shard struct {
	Index int `json:"index"`
	Count int `json:"count"`
}

// ParseShard parses the command-line form "i/n" (0-based, i < n).
func ParseShard(s string) (Shard, error) {
	i, n, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("exp: shard %q is not of the form i/n", s)
	}
	idx, err1 := strconv.Atoi(strings.TrimSpace(i))
	cnt, err2 := strconv.Atoi(strings.TrimSpace(n))
	if err1 != nil || err2 != nil {
		return Shard{}, fmt.Errorf("exp: shard %q is not of the form i/n", s)
	}
	sh := Shard{Index: idx, Count: cnt}
	// Explicit command-line input never means "whole campaign": "0/0"
	// is a scripting bug (unset shard count), not the zero value, so it
	// must not slip through Validate's zero-value exemption.
	if cnt < 1 {
		return Shard{}, fmt.Errorf("exp: invalid shard %q (count must be >= 1)", s)
	}
	if err := sh.Validate(); err != nil {
		return Shard{}, err
	}
	return sh.normalize(), nil
}

// String renders the shard as "i/n".
func (sh Shard) String() string {
	n := sh.normalize()
	return fmt.Sprintf("%d/%d", n.Index, n.Count)
}

// Validate checks the shard coordinates (the zero value is valid: whole
// campaign).
func (sh Shard) Validate() error {
	if sh.Count == 0 && sh.Index == 0 {
		return nil
	}
	if sh.Count < 1 || sh.Index < 0 || sh.Index >= sh.Count {
		return fmt.Errorf("exp: invalid shard %d/%d (want 0-based index < count)", sh.Index, sh.Count)
	}
	return nil
}

// normalize maps the zero value onto the canonical whole-campaign 0/1.
func (sh Shard) normalize() Shard {
	if sh.Count == 0 {
		return Shard{Index: 0, Count: 1}
	}
	return sh
}

// Covers reports whether this shard owns the item at the given canonical
// index — coordinate index for sweep grids, trial index for any other
// deterministic per-index workload that wants the same disjoint
// round-robin split (e.g. cmd/offline's trial batches).
func (sh Shard) Covers(idx int) bool {
	if sh.Count <= 1 {
		return true
	}
	return idx%sh.Count == sh.Index
}

// Shard returns the (model, point, trial) coordinates owned by shard i of
// n — n disjoint, jointly exhaustive, deterministic slices of the grid,
// for splitting a campaign across machines or CI jobs. Recombine the
// shards' journals with MergeJournals.
func (s *Sweep) Shard(i, n int) ([]Coord, error) {
	sh := Shard{Index: i, Count: n}
	if err := sh.Validate(); err != nil {
		return nil, err
	}
	var out []Coord
	for idx, c := range s.Coords() {
		if sh.Covers(idx) {
			out = append(out, c)
		}
	}
	return out, nil
}

// Merge recombines partial Results of one campaign (typically loaded from
// shard journals) into a single Result with canonically ordered
// instances. All inputs must record the same campaign dimensions (the
// model axis lives in the instances themselves, so model-free
// journal-loaded Sweeps compare fine); duplicate keys are fine when the
// recorded outcomes agree (determinism guarantees they do for honest
// journals) and an error otherwise.
func Merge(results ...*Result) (*Result, error) {
	if len(results) == 0 {
		return nil, fmt.Errorf("exp: nothing to merge")
	}
	base := dimsOf(results[0].Sweep)
	byKey := map[Key]InstanceResult{}
	var merged []InstanceResult
	for i, r := range results {
		if spec := dimsOf(r.Sweep); !reflect.DeepEqual(spec, base) {
			return nil, fmt.Errorf("exp: merge input %d records a different campaign (spec %+v, want %+v)", i, spec, base)
		}
		for _, inst := range r.Instances {
			k := inst.Key()
			if prev, ok := byKey[k]; ok {
				if prev != inst {
					return nil, fmt.Errorf("exp: conflicting results for %+v: %+v vs %+v", k, prev, inst)
				}
				continue
			}
			byKey[k] = inst
			merged = append(merged, inst)
		}
	}
	sortInstances(merged)
	return &Result{Sweep: results[0].Sweep, Instances: merged}, nil
}

// dimsOf is a Sweep's identity with the model axis cleared — what Merge
// compares, since journal-loaded Sweeps cannot reconstruct custom models.
func dimsOf(s Sweep) SweepSpec {
	spec := s.Spec()
	spec.Models = nil
	return spec
}

// MergeJournals loads shard journals read-only, verifies they stamp the
// identical campaign, and merges them into one complete Result.
// Incomplete joint coverage of the instance grid (a missing shard, an
// interrupted shard that was never resumed) is an error naming the
// missing count; to aggregate partial coverage anyway, LoadJournal +
// Merge directly.
func MergeJournals(paths ...string) (*Result, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("exp: no journals to merge")
	}
	var baseSpec SweepSpec
	results := make([]*Result, 0, len(paths))
	for i, p := range paths {
		_, header, done, _, err := readJournal(p)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			baseSpec = header.Spec
		} else if !reflect.DeepEqual(header.Spec, baseSpec) {
			return nil, fmt.Errorf("exp: journal %s records a different campaign than %s", p, paths[0])
		}
		results = append(results, &Result{Sweep: header.Spec.sweepDims(), Instances: sortedInstances(done)})
	}
	merged, err := Merge(results...)
	if err != nil {
		return nil, err
	}
	expected := len(baseSpec.Models) * len(baseSpec.Ncoms) * len(baseSpec.Wmins) *
		baseSpec.Scenarios * baseSpec.Trials * len(baseSpec.Heuristics)
	if got := len(merged.Instances); got != expected {
		return nil, fmt.Errorf("exp: merged journals cover %d of %d instances (missing shard or unfinished run?)", got, expected)
	}
	return merged, nil
}
