package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"sync"

	"tightsched/internal/avail"
)

// Key uniquely identifies one (model, point, trial, heuristic) instance
// within a campaign — the coordinate a journal deduplicates on. Because
// every instance's seed derives deterministically from its coordinate
// (see Sweep.TrialSeed), re-running a key always reproduces the same
// InstanceResult, which is what makes resume exact.
type Key struct {
	Model     string
	Ncom      int
	Wmin      int
	Scenario  int
	Trial     int
	Heuristic string
}

// Key returns the instance's journal coordinate.
func (inst InstanceResult) Key() Key {
	return Key{modelName(inst), inst.Point.Ncom, inst.Point.Wmin,
		inst.Point.Scenario, inst.Trial, inst.Heuristic}
}

// SweepSpec is the JSON-serializable identity of a campaign: every field
// that determines the instance grid and its deterministic outcomes.
// Runtime knobs (Workers) are deliberately absent — they change speed,
// never results. Heuristics and Models are stored resolved, so a journal
// stays valid even if library defaults change later.
type SweepSpec struct {
	M            int      `json:"m"`
	Ncoms        []int    `json:"ncoms"`
	Wmins        []int    `json:"wmins"`
	Scenarios    int      `json:"scenarios"`
	Trials       int      `json:"trials"`
	P            int      `json:"p"`
	Iterations   int      `json:"iterations"`
	Cap          int64    `json:"cap"`
	Seed         uint64   `json:"seed"`
	Heuristics   []string `json:"heuristics"`
	Models       []string `json:"models"`
	InitialAllUp bool     `json:"initialAllUp,omitempty"`
}

// Spec returns the campaign's identity with heuristics and model names
// resolved.
func (s *Sweep) Spec() SweepSpec {
	models := make([]string, 0, len(s.models()))
	for _, m := range s.models() {
		models = append(models, m.Name())
	}
	return SweepSpec{
		M:            s.M,
		Ncoms:        append([]int(nil), s.Ncoms...),
		Wmins:        append([]int(nil), s.Wmins...),
		Scenarios:    s.Scenarios,
		Trials:       s.Trials,
		P:            s.P,
		Iterations:   s.Iterations,
		Cap:          s.Cap,
		Seed:         s.Seed,
		Heuristics:   append([]string(nil), s.heuristics()...),
		Models:       models,
		InitialAllUp: s.InitialAllUp,
	}
}

// Sweep reconstructs a runnable campaign from the spec. Models are
// resolved by name through the open registry (avail.Builtin), so any
// built-in or avail.Register'd model reconstructs headlessly; only a
// model constructed directly and never registered cannot — resume those
// with RunWith, passing the original Sweep alongside OpenJournal.
func (sp SweepSpec) Sweep() (Sweep, error) {
	s := sp.sweepDims()
	for _, name := range sp.Models {
		m, err := avail.Builtin(name)
		if err != nil {
			return Sweep{}, fmt.Errorf("exp: journal model %q is not registered; resume with RunWith and the original Sweep: %w", name, err)
		}
		s.Models = append(s.Models, m)
	}
	return s, nil
}

// sweepDims reconstructs everything but the model instances — enough for
// aggregation (which only reads recorded instances), not for re-running.
func (sp SweepSpec) sweepDims() Sweep {
	return Sweep{
		M:            sp.M,
		Ncoms:        append([]int(nil), sp.Ncoms...),
		Wmins:        append([]int(nil), sp.Wmins...),
		Scenarios:    sp.Scenarios,
		Trials:       sp.Trials,
		P:            sp.P,
		Iterations:   sp.Iterations,
		Cap:          sp.Cap,
		Seed:         sp.Seed,
		Heuristics:   append([]string(nil), sp.Heuristics...),
		InitialAllUp: sp.InitialAllUp,
	}
}

// journalHeader is the first line of every journal file.
type journalHeader struct {
	V     int       `json:"v"`
	Spec  SweepSpec `json:"spec"`
	Shard Shard     `json:"shard"`
}

// journalEntry is one completed instance, one line per instance.
type journalEntry struct {
	Model     string `json:"model"`
	Ncom      int    `json:"ncom"`
	Wmin      int    `json:"wmin"`
	Scenario  int    `json:"scenario"`
	Trial     int    `json:"trial"`
	Heuristic string `json:"heuristic"`
	Makespan  int64  `json:"makespan"`
	Failed    bool   `json:"failed,omitempty"`
}

func (e journalEntry) instance() InstanceResult {
	return InstanceResult{
		Point:     Point{Ncom: e.Ncom, Wmin: e.Wmin, Scenario: e.Scenario},
		Trial:     e.Trial,
		Model:     e.Model,
		Heuristic: e.Heuristic,
		Makespan:  e.Makespan,
		Failed:    e.Failed,
	}
}

func entryOf(inst InstanceResult) journalEntry {
	return journalEntry{
		Model:     modelName(inst),
		Ncom:      inst.Point.Ncom,
		Wmin:      inst.Point.Wmin,
		Scenario:  inst.Point.Scenario,
		Trial:     inst.Trial,
		Heuristic: inst.Heuristic,
		Makespan:  inst.Makespan,
		Failed:    inst.Failed,
	}
}

// Journal is an append-only record of a campaign's completed instances:
// a header record stamping the campaign spec (and shard), then one
// record per instance, in either the JSONL or the binary format
// (codec.go). Every Append is written and flushed immediately, so a
// crash loses at most the record being written — and OpenJournal
// tolerates exactly that torn tail. The journal file is the unit of
// resume (exp.Resume) and of cross-machine recombination (exp.Merge);
// readers sniff the format, so both formats resume and merge freely.
type Journal struct {
	mu     sync.Mutex
	w      recordAppender
	format Format
	path   string
	header journalHeader
	done   map[Key]InstanceResult
	buf    []byte // entry encode buffer, reused across appends
}

// CreateJournal starts a new JSONL journal for the sweep (shard is the
// slice stamp; the zero Shard means the whole campaign). It fails if the
// file already exists — open an existing journal with OpenJournal to
// resume.
func CreateJournal(path string, sweep Sweep, shard Shard) (*Journal, error) {
	return CreateJournalFormat(path, sweep, shard, FormatJSONL)
}

// CreateJournalFormat is CreateJournal with an explicit on-disk format.
func CreateJournalFormat(path string, sweep Sweep, shard Shard, format Format) (*Journal, error) {
	if err := sweep.Validate(); err != nil {
		return nil, err
	}
	if err := shard.Validate(); err != nil {
		return nil, err
	}
	header := journalHeader{V: 1, Spec: sweep.Spec(), Shard: shard.normalize()}
	w, err := createRecordLog(path, format, header)
	if err != nil {
		return nil, fmt.Errorf("exp: create journal: %w", err)
	}
	return &Journal{w: w, format: format, path: path, header: header, done: map[Key]InstanceResult{}}, nil
}

// decodeJournalEntry decodes one record payload in the given format.
func decodeJournalEntry(format Format, payload []byte, intern map[string]string) (journalEntry, error) {
	if format == FormatBinary {
		return decodeBinaryEntry(payload, intern)
	}
	var e journalEntry
	err := json.Unmarshal(payload, &e)
	return e, err
}

// parseJournalHeader validates a journal's raw header payload.
func parseJournalHeader(path string, raw []byte) (journalHeader, error) {
	var header journalHeader
	if err := json.Unmarshal(raw, &header); err != nil {
		return journalHeader{}, fmt.Errorf("exp: journal %s header: %w", path, err)
	}
	if header.V != 1 {
		return journalHeader{}, fmt.Errorf("exp: journal %s has unknown version %d", path, header.V)
	}
	header.Shard = header.Shard.normalize()
	return header, nil
}

// readJournal parses a journal file of either format without modifying
// it. A torn tail — the damage a crash can leave — is tolerated whatever
// its shape: a record cut short mid-write (dropped by the framing
// layer), or a final record that frames correctly but fails to parse (a
// zero-filled or garbled block from filesystem crash recovery). Either
// way the intact prefix ends before it, and validLen reports where, so
// an appender can truncate the tear away. A corrupt record before the
// tail is still an error — the journal is append-only, so damage there
// means the file was tampered with.
func readJournal(path string) (Format, journalHeader, map[Key]InstanceResult, int64, error) {
	format, headerRaw, records, validLen, err := readJournalRecords(path)
	if err != nil {
		return 0, journalHeader{}, nil, 0, fmt.Errorf("exp: open journal: %w", err)
	}
	header, err := parseJournalHeader(path, headerRaw)
	if err != nil {
		return 0, journalHeader{}, nil, 0, err
	}
	done := make(map[Key]InstanceResult, len(records))
	intern := map[string]string{}
	for i, rec := range records {
		e, err := decodeJournalEntry(format, rec.payload, intern)
		if err != nil {
			if i == len(records)-1 {
				// Torn tail: exclude the record from the intact prefix.
				// The instance it would have recorded is simply re-run on
				// resume, or covered by an overlapping journal on merge.
				if i == 0 {
					validLen = headerEnd(format, headerRaw)
				} else {
					validLen = records[i-1].end
				}
				break
			}
			return 0, journalHeader{}, nil, 0, fmt.Errorf("exp: journal %s record %d: %w", path, i+2, err)
		}
		inst := e.instance()
		done[inst.Key()] = inst
	}
	return format, header, done, validLen, nil
}

// headerEnd returns the file offset just past the header record.
func headerEnd(format Format, headerRaw []byte) int64 {
	if format == FormatBinary {
		n := int64(len(headerRaw))
		return int64(binHeaderLen) + int64(uvarintLen(uint64(n))) + n + 4
	}
	return int64(len(headerRaw)) + 1
}

// uvarintLen returns the encoded size of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// OpenJournal opens an existing journal for resuming: it sniffs the
// format, loads the header and every recorded instance, truncates a torn
// final record (the signature of a mid-write crash), and positions the
// file for appending. Read-only consumers (aggregation, merging) should
// use LoadJournal instead, which never writes.
func OpenJournal(path string) (*Journal, error) {
	format, header, done, validLen, err := readJournal(path)
	if err != nil {
		return nil, err
	}
	w, err := openRecordAppender(path, format, validLen)
	if err != nil {
		return nil, fmt.Errorf("exp: open journal for append: %w", err)
	}
	return &Journal{w: w, format: format, path: path, header: header, done: done}, nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Format returns the journal's on-disk format.
func (j *Journal) Format() Format { return j.format }

// Spec returns the campaign identity stamped in the header.
func (j *Journal) Spec() SweepSpec { return j.header.Spec }

// Shard returns the shard stamp ({0,1} for a whole-campaign journal).
func (j *Journal) Shard() Shard { return j.header.Shard }

// Done reports whether the key's instance is already journaled, and its
// recorded result.
func (j *Journal) Done(k Key) (InstanceResult, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	inst, ok := j.done[k]
	return inst, ok
}

// DoneCount returns the number of journaled instances.
func (j *Journal) DoneCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Instances returns the journaled results in canonical order.
func (j *Journal) Instances() []InstanceResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return sortedInstances(j.done)
}

// Append records one completed instance, immediately flushed to disk.
func (j *Journal) Append(inst InstanceResult) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	e := entryOf(inst)
	if j.format == FormatBinary {
		j.buf = appendBinaryEntry(j.buf[:0], e)
	} else {
		b, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("exp: %w", err)
		}
		j.buf = b
	}
	if err := j.w.AppendRecord(j.buf); err != nil {
		return fmt.Errorf("exp: %w", err)
	}
	j.done[inst.Key()] = inst
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.w.Close()
}

// matches verifies that the journal belongs to this sweep and shard, so a
// resume cannot silently mix incompatible campaigns in one file.
func (j *Journal) matches(s *Sweep, shard Shard) error {
	if spec := s.Spec(); !reflect.DeepEqual(spec, j.header.Spec) {
		return fmt.Errorf("exp: journal %s records a different campaign (spec %+v, want %+v)",
			j.path, j.header.Spec, spec)
	}
	if got, want := j.header.Shard, shard.normalize(); got != want {
		return fmt.Errorf("exp: journal %s records shard %s, run requested %s", j.path, got, want)
	}
	return nil
}

// Resume continues an interrupted journaled campaign from its file alone:
// the header reconstructs the sweep, recorded instances are trusted
// as-is, and only the missing (model, point, trial, heuristic) instances
// are re-run — each from its coordinate-derived seed, so the final Result
// is bit-identical to an uninterrupted run's. Models resolve by name
// through the open registry; only campaigns whose availability models
// were never registered must instead resume via RunWith with the
// original Sweep and OpenJournal.
func Resume(journalPath string, progress func(done, total int)) (*Result, error) {
	return ResumeWith(context.Background(), journalPath, RunOptions{Progress: progress})
}

// ResumeWith is Resume under a context with full consumption options:
// the journal and shard are read from the file (the Journal and Shard
// fields of opts are ignored), everything else — progress, sink,
// observer, instance discarding — applies as in RunWithContext. The
// journal is closed, flushed and resumable again when ResumeWith returns,
// whether the campaign completed or the context was cancelled.
func ResumeWith(ctx context.Context, journalPath string, opts RunOptions) (*Result, error) {
	j, err := OpenJournal(journalPath)
	if err != nil {
		return nil, err
	}
	defer j.Close()
	sweep, err := j.Spec().Sweep()
	if err != nil {
		return nil, err
	}
	opts.Journal = j
	opts.Shard = j.Shard()
	return RunWithContext(ctx, sweep, opts)
}

// LoadJournal reads a journal into a Result without running anything or
// writing to the file (safe on read-only artifacts) — the input to
// exp.Merge when recombining shard journals. The Result's Sweep carries
// the journaled dimensions (models stay name-only inside the instances).
func LoadJournal(path string) (*Result, Shard, error) {
	_, header, done, _, err := readJournal(path)
	if err != nil {
		return nil, Shard{}, err
	}
	return &Result{Sweep: header.Spec.sweepDims(), Instances: sortedInstances(done)}, header.Shard, nil
}

// sortedInstances flattens a key-indexed instance set into canonical
// order.
func sortedInstances(done map[Key]InstanceResult) []InstanceResult {
	out := make([]InstanceResult, 0, len(done))
	for _, inst := range done {
		out = append(out, inst)
	}
	sortInstances(out)
	return out
}
