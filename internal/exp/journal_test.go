package exp

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// journalSweep shrinks QuickSweep(10) — the Table II campaign — to test
// scale while keeping its shape: all three ncom values, several
// heuristics, multiple scenarios and trials.
func journalSweep() Sweep {
	s := QuickSweep(10)
	s.Wmins = []int{1, 2}
	s.Cap = 30_000
	s.Heuristics = []string{"IE", "Y-IE", "RANDOM", "IAY"}
	return s
}

// TestJournalResumeByteIdentical is the acceptance path: a journaled
// QuickSweep-style campaign is interrupted partway (with a torn final
// line, as a crash mid-write would leave), resumed from the journal
// alone, and must reproduce the uninterrupted run's Table II rows
// byte-for-byte.
func TestJournalResumeByteIdentical(t *testing.T) {
	s := journalSweep()

	// The uninterrupted reference run.
	ref, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	refRows, err := ref.Table(ReferenceHeuristic)
	if err != nil {
		t.Fatal(err)
	}
	refTable := FormatTable(refRows)

	// The interrupted run: a sink that fails after a third of the
	// instances simulates a crash; everything journaled so far survives.
	path := filepath.Join(t.TempDir(), "sweep.journal")
	j, err := CreateJournal(path, s, Shard{})
	if err != nil {
		t.Fatal(err)
	}
	limit := len(ref.Instances) / 3
	interrupted := errors.New("interrupted")
	n := 0
	_, err = RunWith(s, RunOptions{
		Journal: j,
		Sink: func(InstanceResult) error {
			n++
			if n >= limit {
				return interrupted
			}
			return nil
		},
	})
	if !errors.Is(err, interrupted) {
		t.Fatalf("interrupted run returned %v, want the sink's error", err)
	}
	journaled := j.DoneCount()
	if journaled < limit || journaled >= len(ref.Instances) {
		t.Fatalf("journal holds %d instances, want in [%d, %d)", journaled, limit, len(ref.Instances))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// A crash can also tear the line being written: append half a record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"model":"markov","ncom":5,"wm`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Resume from the journal alone and require bit-identical everything.
	var firstDone, lastDone, total int
	res, err := Resume(path, func(done, tot int) {
		if firstDone == 0 {
			firstDone = done
		}
		lastDone, total = done, tot
	})
	if err != nil {
		t.Fatal(err)
	}
	if firstDone < journaled {
		t.Fatalf("resume re-ran journaled instances: first progress %d, journal had %d", firstDone, journaled)
	}
	if lastDone != total || total != len(ref.Instances) {
		t.Fatalf("resume progress ended %d/%d, want %d/%d", lastDone, total, len(ref.Instances), len(ref.Instances))
	}
	if len(res.Instances) != len(ref.Instances) {
		t.Fatalf("resumed run has %d instances, want %d", len(res.Instances), len(ref.Instances))
	}
	for i := range res.Instances {
		if res.Instances[i] != ref.Instances[i] {
			t.Fatalf("instance %d differs after resume:\n%+v\n%+v", i, res.Instances[i], ref.Instances[i])
		}
	}
	rows, err := res.Table(ReferenceHeuristic)
	if err != nil {
		t.Fatal(err)
	}
	if got := FormatTable(rows); got != refTable {
		t.Fatalf("Table II rows differ after resume:\n--- uninterrupted\n%s--- resumed\n%s", refTable, got)
	}
}

// TestResumeOfCompleteJournalRunsNothing re-opens a finished campaign's
// journal: everything is already recorded, so resume is pure replay.
func TestResumeOfCompleteJournalRunsNothing(t *testing.T) {
	s := tinySweep([]string{"IE", "RANDOM"})
	path := filepath.Join(t.TempDir(), "done.journal")
	j, err := CreateJournal(path, s, Shard{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := RunWith(s, RunOptions{Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()

	var calls int
	var firstDone, total int
	res, err := Resume(path, func(done, tot int) {
		calls++
		firstDone, total = done, tot
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || firstDone != total {
		t.Fatalf("complete journal resume reported progress %d times, last %d/%d; want one full report", calls, firstDone, total)
	}
	if len(res.Instances) != len(full.Instances) {
		t.Fatalf("replayed %d instances, want %d", len(res.Instances), len(full.Instances))
	}
	for i := range res.Instances {
		if res.Instances[i] != full.Instances[i] {
			t.Fatalf("instance %d differs in replay", i)
		}
	}
}

// TestJournalSpecMismatch: a journal belongs to exactly one campaign.
func TestJournalSpecMismatch(t *testing.T) {
	s := tinySweep([]string{"IE", "RANDOM"})
	path := filepath.Join(t.TempDir(), "a.journal")
	j, err := CreateJournal(path, s, Shard{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()

	other := s
	other.Seed++
	if _, err := RunWith(other, RunOptions{Journal: j}); err == nil {
		t.Fatal("journal accepted a different campaign")
	}
	if _, err := RunWith(s, RunOptions{Journal: j, Shard: Shard{Index: 0, Count: 2}}); err == nil {
		t.Fatal("whole-campaign journal accepted a sharded run")
	}
}

// TestJournalCorruptMiddleRejected: damage before the tail is not a torn
// write and must not be silently dropped.
func TestJournalCorruptMiddleRejected(t *testing.T) {
	s := tinySweep([]string{"IE"})
	path := filepath.Join(t.TempDir(), "corrupt.journal")
	j, err := CreateJournal(path, s, Shard{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunWith(s, RunOptions{Journal: j}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	if len(lines) < 4 {
		t.Fatalf("journal too short to corrupt: %d lines", len(lines))
	}
	lines[2] = "NOT JSON\n"
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil {
		t.Fatal("corrupt middle line accepted")
	}
}

// TestMergeJournalsTolerateTornTail: a torn tail — however the crash
// left it — is forgiven in *any* input journal, not just the one being
// resumed. A shard journal torn mid-record merges cleanly as long as an
// overlapping journal (a requeued cluster lease, a re-run shard) covers
// the lost instance; the same tear is also resumable in place.
func TestMergeJournalsTolerateTornTail(t *testing.T) {
	s := tinySweep([]string{"IE", "RANDOM"})

	ref, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}

	runShard := func(dir string, name string, sh Shard) string {
		t.Helper()
		path := filepath.Join(dir, name)
		j, err := CreateJournal(path, s, sh)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunWith(s, RunOptions{Journal: j, Shard: sh}); err != nil {
			t.Fatal(err)
		}
		j.Close()
		return path
	}

	tear := map[string]func(t *testing.T, path string){
		// A write cut short: the final record loses its newline.
		"cut": func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, data[:len(data)-10], 0o644); err != nil {
				t.Fatal(err)
			}
		},
		// Filesystem crash recovery zero-fills the tail of the last
		// block: the final line keeps its newline but parses as garbage.
		"zero-filled": func(t *testing.T, path string) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			cut := strings.LastIndexByte(strings.TrimSuffix(string(data), "\n"), '\n') + 1
			torn := append([]byte(nil), data[:cut]...)
			for i := cut; i < len(data)-1; i++ {
				torn = append(torn, 0)
			}
			torn = append(torn, '\n')
			if err := os.WriteFile(path, torn, 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}

	for name, damage := range tear {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			a := runShard(dir, "a.journal", Shard{Index: 0, Count: 2})
			b := runShard(dir, "b.journal", Shard{Index: 1, Count: 2})
			// The overlapping journal a requeued lease would leave: the
			// same shard, run to completion elsewhere.
			b2 := runShard(dir, "b2.journal", Shard{Index: 1, Count: 2})
			damage(t, b)

			// The torn journal must load short, not fail.
			partial, _, err := LoadJournal(b)
			if err != nil {
				t.Fatalf("torn shard journal failed to load: %v", err)
			}
			full, _, err := LoadJournal(b2)
			if err != nil {
				t.Fatal(err)
			}
			if len(partial.Instances) != len(full.Instances)-1 {
				t.Fatalf("torn journal holds %d instances, want %d (one lost to the tear)",
					len(partial.Instances), len(full.Instances)-1)
			}

			// Merging with the overlap yields the complete campaign.
			merged, err := MergeJournals(a, b, b2)
			if err != nil {
				t.Fatalf("MergeJournals with a torn input: %v", err)
			}
			if len(merged.Instances) != len(ref.Instances) {
				t.Fatalf("merged %d instances, want %d", len(merged.Instances), len(ref.Instances))
			}
			for i := range merged.Instances {
				if merged.Instances[i] != ref.Instances[i] {
					t.Fatalf("instance %d differs after torn-tail merge", i)
				}
			}

			// The same tear is resumable in place: the lost instance is
			// re-run, bit-identically.
			res, err := Resume(b, nil)
			if err != nil {
				t.Fatalf("resume of torn shard: %v", err)
			}
			if len(res.Instances) != len(full.Instances) {
				t.Fatalf("resumed shard has %d instances, want %d", len(res.Instances), len(full.Instances))
			}
			for i := range res.Instances {
				if res.Instances[i] != full.Instances[i] {
					t.Fatalf("instance %d differs after torn-tail resume", i)
				}
			}
		})
	}
}

// TestCreateJournalRefusesExisting: resuming goes through OpenJournal;
// CreateJournal never clobbers history.
func TestCreateJournalRefusesExisting(t *testing.T) {
	s := tinySweep([]string{"IE"})
	path := filepath.Join(t.TempDir(), "x.journal")
	j, err := CreateJournal(path, s, Shard{})
	if err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := CreateJournal(path, s, Shard{}); err == nil {
		t.Fatal("CreateJournal overwrote an existing journal")
	}
}

// TestDiscardInstances: streaming consumers can bound memory; the sink
// still sees every instance.
func TestDiscardInstances(t *testing.T) {
	s := tinySweep([]string{"IE", "RANDOM"})
	seen := 0
	res, err := RunWith(s, RunOptions{
		DiscardInstances: true,
		Sink:             func(InstanceResult) error { seen++; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := s.InstanceCount() * 2; seen != want {
		t.Fatalf("sink saw %d instances, want %d", seen, want)
	}
	if res.Instances != nil {
		t.Fatalf("DiscardInstances kept %d instances", len(res.Instances))
	}
}

// TestSweepSpecRoundTrip: a built-in-model campaign reconstructs exactly.
func TestSweepSpecRoundTrip(t *testing.T) {
	s := tinySweep([]string{"IE", "Y-IE"})
	spec := s.Spec()
	back, err := spec.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Spec(); fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", spec) {
		t.Fatalf("spec round trip:\n%+v\n%+v", got, spec)
	}
	if spec.Models[0] != "markov" || len(spec.Models) != 1 {
		t.Fatalf("default model spec: %v", spec.Models)
	}
}
