package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"sync"

	"tightsched/internal/grid"
	"tightsched/internal/platform"
)

// GridSpec is a GridSweep's serializable identity — every parameter that
// affects results, and nothing that only affects execution (Workers).
// It is the journal header of grid campaigns and the stamped identity
// the daemon reports; arrival traces ride inline, so a journaled trace
// campaign resumes headlessly with no trace file around.
type GridSpec struct {
	Tiers       []platform.SpeedTier `json:"tiers"`
	Ncom        int                  `json:"ncom"`
	AppProcs    int                  `json:"appProcs"`
	M           int                  `json:"m"`
	Iterations  int                  `json:"iterations"`
	Horizon     int64                `json:"horizon"`
	Heuristic   string               `json:"heuristic"`
	Model       string               `json:"model"`
	Seed        uint64               `json:"seed"`
	Trials      int                  `json:"trials"`
	Arrivals    []grid.ArrivalSpec   `json:"arrivals"`
	Admissions  []string             `json:"admissions"`
	Preemptions []string             `json:"preemptions"`
}

// Spec returns the sweep's identity.
func (g *GridSweep) Spec() GridSpec {
	return GridSpec{
		Tiers:       g.Tiers,
		Ncom:        g.Ncom,
		AppProcs:    g.AppProcs,
		M:           g.M,
		Iterations:  g.Iterations,
		Horizon:     g.Horizon,
		Heuristic:   g.Heuristic,
		Model:       g.Model,
		Seed:        g.Seed,
		Trials:      g.Trials,
		Arrivals:    g.Arrivals,
		Admissions:  g.Admissions,
		Preemptions: g.Preemptions,
	}
}

// Sweep reconstructs the campaign a spec identifies.
func (sp GridSpec) Sweep() GridSweep {
	return GridSweep{
		Tiers:       sp.Tiers,
		Ncom:        sp.Ncom,
		AppProcs:    sp.AppProcs,
		M:           sp.M,
		Iterations:  sp.Iterations,
		Horizon:     sp.Horizon,
		Heuristic:   sp.Heuristic,
		Model:       sp.Model,
		Seed:        sp.Seed,
		Trials:      sp.Trials,
		Arrivals:    sp.Arrivals,
		Admissions:  sp.Admissions,
		Preemptions: sp.Preemptions,
	}
}

// gridHeader is a grid journal's first line. The kind marker keeps grid
// and sweep journals from being mistaken for one another.
type gridHeader struct {
	V    int      `json:"v"`
	Kind string   `json:"kind"`
	Spec GridSpec `json:"spec"`
}

const gridJournalKind = "grid"

// GridJournal is the append-only journal of an online campaign — the
// same crash-tolerant substrate as the sweep Journal (one header record,
// one GridInstance per record, flush per append, torn tails truncated on
// reopen, JSONL or binary framing), keyed by (arrival, admission,
// preemption, trial).
type GridJournal struct {
	mu     sync.Mutex
	w      recordAppender
	format Format
	path   string
	header gridHeader
	done   map[GridKey]GridInstance
	buf    []byte // entry encode buffer, reused across appends
}

// CreateGridJournal starts a new JSONL journal for the campaign. It
// refuses to clobber an existing file.
func CreateGridJournal(path string, g *GridSweep) (*GridJournal, error) {
	return CreateGridJournalFormat(path, g, FormatJSONL)
}

// CreateGridJournalFormat is CreateGridJournal with an explicit on-disk
// format.
func CreateGridJournalFormat(path string, g *GridSweep, format Format) (*GridJournal, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	header := gridHeader{V: 1, Kind: gridJournalKind, Spec: g.Spec()}
	w, err := createRecordLog(path, format, header)
	if err != nil {
		return nil, err
	}
	return &GridJournal{w: w, format: format, path: path, header: header, done: map[GridKey]GridInstance{}}, nil
}

// decodeGridEntry decodes one grid record payload in the given format.
func decodeGridEntry(format Format, payload []byte, intern map[string]string) (GridInstance, error) {
	if format == FormatBinary {
		return decodeBinaryGridEntry(payload, intern)
	}
	var inst GridInstance
	err := json.Unmarshal(payload, &inst)
	return inst, err
}

// parseGridHeader validates a grid journal's raw header payload.
func parseGridHeader(path string, raw []byte) (gridHeader, error) {
	var header gridHeader
	if err := json.Unmarshal(raw, &header); err != nil {
		return gridHeader{}, fmt.Errorf("%s: bad journal header: %w", path, err)
	}
	if header.V != 1 || header.Kind != gridJournalKind {
		return gridHeader{}, fmt.Errorf("%s: not a v1 grid journal (v=%d kind=%q)", path, header.V, header.Kind)
	}
	return header, nil
}

// readGridJournal loads a journal file of either format read-only:
// format, header, completed instances, and the intact prefix length for
// appenders. Torn tails are tolerated exactly as readJournal does.
func readGridJournal(path string) (Format, gridHeader, map[GridKey]GridInstance, int64, error) {
	format, raw, records, validLen, err := readJournalRecords(path)
	if err != nil {
		return 0, gridHeader{}, nil, 0, err
	}
	header, err := parseGridHeader(path, raw)
	if err != nil {
		return 0, gridHeader{}, nil, 0, err
	}
	done := map[GridKey]GridInstance{}
	intern := map[string]string{}
	for i, rec := range records {
		inst, err := decodeGridEntry(format, rec.payload, intern)
		if err != nil {
			if i == len(records)-1 {
				// Torn tail: drop the damaged final record, as the sweep
				// journal does.
				if i == 0 {
					validLen = headerEnd(format, raw)
				} else {
					validLen = records[i-1].end
				}
				break
			}
			return 0, gridHeader{}, nil, 0, fmt.Errorf("%s: bad journal record %d: %w", path, i+1, err)
		}
		done[inst.Key()] = inst
	}
	return format, header, done, validLen, nil
}

// OpenGridJournal reopens an existing journal for appending, dropping a
// crash-torn tail. The journal's spec must match the campaign exactly.
func OpenGridJournal(path string, g *GridSweep) (*GridJournal, error) {
	format, header, done, validLen, err := readGridJournal(path)
	if err != nil {
		return nil, err
	}
	j := &GridJournal{format: format, path: path, header: header, done: done}
	if err := j.matches(g); err != nil {
		return nil, err
	}
	w, err := openRecordAppender(path, format, validLen)
	if err != nil {
		return nil, err
	}
	j.w = w
	return j, nil
}

// matches verifies the journal belongs to the campaign.
func (j *GridJournal) matches(g *GridSweep) error {
	if !reflect.DeepEqual(j.header.Spec, g.Spec()) {
		return fmt.Errorf("%s: journal belongs to a different grid campaign", j.path)
	}
	return nil
}

// Append journals one completed instance.
func (j *GridJournal) Append(inst GridInstance) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.format == FormatBinary {
		j.buf = appendBinaryGridEntry(j.buf[:0], inst)
	} else {
		b, err := json.Marshal(inst)
		if err != nil {
			return err
		}
		j.buf = b
	}
	if err := j.w.AppendRecord(j.buf); err != nil {
		return err
	}
	j.done[inst.Key()] = inst
	return nil
}

// Done returns a copy of the journaled instances by key.
func (j *GridJournal) Done() map[GridKey]GridInstance {
	j.mu.Lock()
	defer j.mu.Unlock()
	done := make(map[GridKey]GridInstance, len(j.done))
	for k, v := range j.done {
		done[k] = v
	}
	return done
}

// Path returns the journal's file path.
func (j *GridJournal) Path() string { return j.path }

// Format returns the journal's on-disk format.
func (j *GridJournal) Format() Format { return j.format }

// Close closes the journal file.
func (j *GridJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.w == nil {
		return nil
	}
	err := j.w.Close()
	j.w = nil
	return err
}

// ResumeGrid completes a journaled online campaign: the sweep comes from
// the header, journaled instances replay, and only missing ones run.
// The result is bit-identical to an uninterrupted run (instances are
// deterministic and canonically sorted).
func ResumeGrid(ctx context.Context, path string, opt GridRunOptions) (*GridResult, error) {
	_, header, _, _, err := readGridJournal(path)
	if err != nil {
		return nil, err
	}
	g := header.Spec.Sweep()
	j, err := OpenGridJournal(path, &g)
	if err != nil {
		return nil, err
	}
	defer j.Close()
	opt.Journal = j
	return RunGridContext(ctx, g, opt)
}

// LoadGridJournal loads a journal read-only into a (possibly partial)
// result, without running anything.
func LoadGridJournal(path string) (*GridResult, error) {
	_, header, done, _, err := readGridJournal(path)
	if err != nil {
		return nil, err
	}
	instances := make([]GridInstance, 0, len(done))
	for _, inst := range done {
		instances = append(instances, inst)
	}
	sortGridInstances(instances)
	return &GridResult{Sweep: header.Spec.Sweep(), Instances: instances}, nil
}
