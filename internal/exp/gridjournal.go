package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"sync"

	"tightsched/internal/grid"
	"tightsched/internal/platform"
)

// GridSpec is a GridSweep's serializable identity — every parameter that
// affects results, and nothing that only affects execution (Workers).
// It is the journal header of grid campaigns and the stamped identity
// the daemon reports; arrival traces ride inline, so a journaled trace
// campaign resumes headlessly with no trace file around.
type GridSpec struct {
	Tiers       []platform.SpeedTier `json:"tiers"`
	Ncom        int                  `json:"ncom"`
	AppProcs    int                  `json:"appProcs"`
	M           int                  `json:"m"`
	Iterations  int                  `json:"iterations"`
	Horizon     int64                `json:"horizon"`
	Heuristic   string               `json:"heuristic"`
	Model       string               `json:"model"`
	Seed        uint64               `json:"seed"`
	Trials      int                  `json:"trials"`
	Arrivals    []grid.ArrivalSpec   `json:"arrivals"`
	Admissions  []string             `json:"admissions"`
	Preemptions []string             `json:"preemptions"`
}

// Spec returns the sweep's identity.
func (g *GridSweep) Spec() GridSpec {
	return GridSpec{
		Tiers:       g.Tiers,
		Ncom:        g.Ncom,
		AppProcs:    g.AppProcs,
		M:           g.M,
		Iterations:  g.Iterations,
		Horizon:     g.Horizon,
		Heuristic:   g.Heuristic,
		Model:       g.Model,
		Seed:        g.Seed,
		Trials:      g.Trials,
		Arrivals:    g.Arrivals,
		Admissions:  g.Admissions,
		Preemptions: g.Preemptions,
	}
}

// Sweep reconstructs the campaign a spec identifies.
func (sp GridSpec) Sweep() GridSweep {
	return GridSweep{
		Tiers:       sp.Tiers,
		Ncom:        sp.Ncom,
		AppProcs:    sp.AppProcs,
		M:           sp.M,
		Iterations:  sp.Iterations,
		Horizon:     sp.Horizon,
		Heuristic:   sp.Heuristic,
		Model:       sp.Model,
		Seed:        sp.Seed,
		Trials:      sp.Trials,
		Arrivals:    sp.Arrivals,
		Admissions:  sp.Admissions,
		Preemptions: sp.Preemptions,
	}
}

// gridHeader is a grid journal's first line. The kind marker keeps grid
// and sweep journals from being mistaken for one another.
type gridHeader struct {
	V    int      `json:"v"`
	Kind string   `json:"kind"`
	Spec GridSpec `json:"spec"`
}

const gridJournalKind = "grid"

// GridJournal is the append-only JSONL journal of an online campaign —
// the same crash-tolerant substrate as the sweep Journal (one header
// line, one GridInstance per line, flush per append, torn tails
// truncated on reopen), keyed by (arrival, admission, preemption,
// trial).
type GridJournal struct {
	mu     sync.Mutex
	w      *JSONLWriter
	path   string
	header gridHeader
	done   map[GridKey]GridInstance
}

// CreateGridJournal starts a new journal for the campaign. It refuses to
// clobber an existing file.
func CreateGridJournal(path string, g *GridSweep) (*GridJournal, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	header := gridHeader{V: 1, Kind: gridJournalKind, Spec: g.Spec()}
	w, err := CreateJSONL(path, header)
	if err != nil {
		return nil, err
	}
	return &GridJournal{w: w, path: path, header: header, done: map[GridKey]GridInstance{}}, nil
}

// readGridJournal loads a journal file read-only: header, completed
// instances, and the intact prefix length for appenders.
func readGridJournal(path string) (gridHeader, map[GridKey]GridInstance, int64, error) {
	raw, records, validLen, err := ReadJSONL(path)
	if err != nil {
		return gridHeader{}, nil, 0, err
	}
	var header gridHeader
	if err := json.Unmarshal(raw, &header); err != nil {
		return gridHeader{}, nil, 0, fmt.Errorf("%s: bad journal header: %w", path, err)
	}
	if header.V != 1 || header.Kind != gridJournalKind {
		return gridHeader{}, nil, 0, fmt.Errorf("%s: not a v1 grid journal (v=%d kind=%q)", path, header.V, header.Kind)
	}
	done := map[GridKey]GridInstance{}
	for i, rec := range records {
		var inst GridInstance
		if err := json.Unmarshal(rec, &inst); err != nil {
			if i == len(records)-1 {
				// Torn tail: drop the damaged final line, as the sweep
				// journal does.
				validLen -= int64(len(rec)) + 1
				break
			}
			return gridHeader{}, nil, 0, fmt.Errorf("%s: bad journal record %d: %w", path, i+1, err)
		}
		done[inst.Key()] = inst
	}
	return header, done, validLen, nil
}

// OpenGridJournal reopens an existing journal for appending, dropping a
// crash-torn tail. The journal's spec must match the campaign exactly.
func OpenGridJournal(path string, g *GridSweep) (*GridJournal, error) {
	header, done, validLen, err := readGridJournal(path)
	if err != nil {
		return nil, err
	}
	j := &GridJournal{path: path, header: header, done: done}
	if err := j.matches(g); err != nil {
		return nil, err
	}
	w, err := OpenJSONLAppend(path, validLen)
	if err != nil {
		return nil, err
	}
	j.w = w
	return j, nil
}

// matches verifies the journal belongs to the campaign.
func (j *GridJournal) matches(g *GridSweep) error {
	if !reflect.DeepEqual(j.header.Spec, g.Spec()) {
		return fmt.Errorf("%s: journal belongs to a different grid campaign", j.path)
	}
	return nil
}

// Append journals one completed instance.
func (j *GridJournal) Append(inst GridInstance) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.w.Append(inst); err != nil {
		return err
	}
	j.done[inst.Key()] = inst
	return nil
}

// Done returns a copy of the journaled instances by key.
func (j *GridJournal) Done() map[GridKey]GridInstance {
	j.mu.Lock()
	defer j.mu.Unlock()
	done := make(map[GridKey]GridInstance, len(j.done))
	for k, v := range j.done {
		done[k] = v
	}
	return done
}

// Path returns the journal's file path.
func (j *GridJournal) Path() string { return j.path }

// Close closes the journal file.
func (j *GridJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.w == nil {
		return nil
	}
	err := j.w.Close()
	j.w = nil
	return err
}

// ResumeGrid completes a journaled online campaign: the sweep comes from
// the header, journaled instances replay, and only missing ones run.
// The result is bit-identical to an uninterrupted run (instances are
// deterministic and canonically sorted).
func ResumeGrid(ctx context.Context, path string, opt GridRunOptions) (*GridResult, error) {
	header, _, _, err := readGridJournal(path)
	if err != nil {
		return nil, err
	}
	g := header.Spec.Sweep()
	j, err := OpenGridJournal(path, &g)
	if err != nil {
		return nil, err
	}
	defer j.Close()
	opt.Journal = j
	return RunGridContext(ctx, g, opt)
}

// LoadGridJournal loads a journal read-only into a (possibly partial)
// result, without running anything.
func LoadGridJournal(path string) (*GridResult, error) {
	header, done, _, err := readGridJournal(path)
	if err != nil {
		return nil, err
	}
	instances := make([]GridInstance, 0, len(done))
	for _, inst := range done {
		instances = append(instances, inst)
	}
	sortGridInstances(instances)
	return &GridResult{Sweep: header.Spec.Sweep(), Instances: instances}, nil
}
