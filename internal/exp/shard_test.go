package exp

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParseShard(t *testing.T) {
	sh, err := ParseShard("1/3")
	if err != nil {
		t.Fatal(err)
	}
	if sh != (Shard{Index: 1, Count: 3}) {
		t.Fatalf("parsed %+v", sh)
	}
	if sh.String() != "1/3" {
		t.Fatalf("String = %q", sh.String())
	}
	for _, bad := range []string{"", "3", "3/3", "-1/3", "a/b", "1/0", "0/0"} {
		if _, err := ParseShard(bad); err == nil {
			t.Fatalf("ParseShard(%q) accepted", bad)
		}
	}
	if (Shard{}).Validate() != nil {
		t.Fatal("zero shard should be valid (whole campaign)")
	}
	if (Shard{}).String() != "0/1" {
		t.Fatalf("zero shard renders %q", Shard{}.String())
	}
}

// TestShardPartition: n shards are disjoint and jointly exhaustive, in
// canonical order, balanced to within one coordinate.
func TestShardPartition(t *testing.T) {
	s := tinySweep([]string{"IE"})
	all := s.Coords()
	if len(all) != s.InstanceCount() {
		t.Fatalf("Coords has %d entries, want %d", len(all), s.InstanceCount())
	}
	const n = 3
	seen := map[Coord]int{}
	var sizes []int
	for i := 0; i < n; i++ {
		part, err := s.Shard(i, n)
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, len(part))
		for _, c := range part {
			seen[c]++
		}
	}
	if len(seen) != len(all) {
		t.Fatalf("shards cover %d coords, want %d", len(seen), len(all))
	}
	for c, k := range seen {
		if k != 1 {
			t.Fatalf("coord %+v owned by %d shards", c, k)
		}
	}
	for _, sz := range sizes {
		if sz < len(all)/n || sz > len(all)/n+1 {
			t.Fatalf("unbalanced shard sizes %v for %d coords", sizes, len(all))
		}
	}
	if _, err := s.Shard(3, 3); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
}

// TestShardedJournalsMergeToFullRun is the CI recipe: run each shard into
// its own journal (as n CI jobs would), merge the journals, and require
// the exact instances and tables of a single-machine run.
func TestShardedJournalsMergeToFullRun(t *testing.T) {
	s := tinySweep([]string{"IE", "Y-IE", "RANDOM"})
	full, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	fullRows, err := full.Table(ReferenceHeuristic)
	if err != nil {
		t.Fatal(err)
	}

	const n = 3
	dir := t.TempDir()
	var paths []string
	for i := 0; i < n; i++ {
		path := filepath.Join(dir, "shard.journal."+string(rune('0'+i)))
		sh := Shard{Index: i, Count: n}
		j, err := CreateJournal(path, s, sh)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunWith(s, RunOptions{Journal: j, Shard: sh, DiscardInstances: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Instances != nil {
			t.Fatal("shard run kept instances despite DiscardInstances")
		}
		j.Close()
		// Merging is read-only: it must work on write-protected journals
		// (e.g. CI artifacts) and never truncate or append to its inputs.
		if err := os.Chmod(path, 0o444); err != nil {
			t.Fatal(err)
		}
		paths = append(paths, path)
	}

	merged, err := MergeJournals(paths...)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Instances) != len(full.Instances) {
		t.Fatalf("merged %d instances, want %d", len(merged.Instances), len(full.Instances))
	}
	for i := range merged.Instances {
		if merged.Instances[i] != full.Instances[i] {
			t.Fatalf("instance %d differs after shard+merge:\n%+v\n%+v",
				i, merged.Instances[i], full.Instances[i])
		}
	}
	rows, err := merged.Table(ReferenceHeuristic)
	if err != nil {
		t.Fatal(err)
	}
	if FormatTable(rows) != FormatTable(fullRows) {
		t.Fatal("merged tables differ from the single-run tables")
	}

	// Dropping a shard must be caught, not silently under-aggregated.
	if _, err := MergeJournals(paths[:n-1]...); err == nil {
		t.Fatal("incomplete shard set merged without error")
	}
}

// TestMergeConflictRejected: identical keys with different outcomes mean
// someone journaled a different world.
func TestMergeConflictRejected(t *testing.T) {
	s := tinySweep([]string{"IE"})
	a, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := &Result{Sweep: a.Sweep, Instances: append([]InstanceResult(nil), a.Instances...)}
	b.Instances[0].Makespan++
	if _, err := Merge(a, b); err == nil {
		t.Fatal("conflicting duplicate merged without error")
	}
	// Agreeing duplicates dedupe fine.
	merged, err := Merge(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Instances) != len(a.Instances) {
		t.Fatalf("self-merge has %d instances, want %d", len(merged.Instances), len(a.Instances))
	}
}
