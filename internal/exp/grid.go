package exp

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"tightsched/internal/avail"
	"tightsched/internal/grid"
	"tightsched/internal/platform"
	"tightsched/internal/rng"
	"tightsched/internal/sched"
)

// This file is the online-grid campaign harness: the Table IV
// counterpart of sweep.go. A GridSweep's axes are arrival processes ×
// admission policies × preemption policies × trials; each instance is
// one full online simulation (grid.Simulate), keyed and journaled like
// sweep instances so grid campaigns shard, resume and re-render
// byte-identically.

// GridSweep describes an online multi-application campaign. The
// identity fields (everything but Workers) are stamped into journal
// headers via Spec; two sweeps with equal specs produce byte-identical
// results on any machine and worker count.
type GridSweep struct {
	// Tiers is the heterogeneous platform's speed profile; the platform
	// is regenerated per (arrival, trial) from the trial seed.
	Tiers []platform.SpeedTier
	// Ncom is each application's master communication capacity.
	Ncom int
	// AppProcs is the exclusive processor block per admitted
	// application.
	AppProcs int
	// M and Iterations shape every application (arrivals vary wmin).
	M, Iterations int
	// Horizon is the observation window in slots.
	Horizon int64
	// Heuristic schedules each admitted application (one of
	// sched.Names()).
	Heuristic string
	// Model is the ground-truth availability model's registry name
	// (avail.Names()); the online default is "diurnal".
	Model string
	// Seed is the campaign master seed.
	Seed uint64
	// Trials is the number of availability/arrival realizations per
	// policy combination.
	Trials int
	// Arrivals, Admissions and Preemptions are the campaign axes.
	Arrivals    []grid.ArrivalSpec
	Admissions  []string
	Preemptions []string

	// Workers bounds campaign parallelism (GOMAXPROCS when 0). Runtime
	// knob, absent from GridSpec.
	Workers int
}

// PaperOnlineSweep returns the full online campaign: both arrival kinds,
// all built-in policies, five trials over a 100k-slot horizon.
func PaperOnlineSweep() GridSweep {
	return GridSweep{
		Tiers:      []platform.SpeedTier{{Count: 4, Speed: 1}, {Count: 8, Speed: 2}, {Count: 8, Speed: 4}},
		Ncom:       6,
		AppProcs:   4,
		M:          5,
		Iterations: 5,
		Horizon:    100_000,
		Heuristic:  "IE",
		Model:      "diurnal",
		Seed:       20130522, // HCW 2013
		Trials:     5,
		Arrivals: []grid.ArrivalSpec{
			{Kind: grid.KindPoisson, MeanGap: 150, Apps: 30, WminLo: 1, WminHi: 3, DeadlineFactor: 15},
			{Kind: grid.KindTrace, Trace: QuickOnlineTrace()},
		},
		Admissions:  []string{"fcfs", "sjf", "edf"},
		Preemptions: []string{"none", "lowest-priority"},
	}
}

// QuickOnlineSweep returns a reduced online campaign preserving the
// sweep's shape (both arrival kinds, three admission and two preemption
// policies, heterogeneous tiers, the diurnal model) at a fraction of the
// cost — the grid counterpart of QuickSweep, and the campaign behind
// `cmd/tables -table 4` and the daemon's quick grid preset.
func QuickOnlineSweep() GridSweep {
	g := PaperOnlineSweep()
	g.Horizon = 20_000
	g.Trials = 2
	g.Tiers = []platform.SpeedTier{{Count: 4, Speed: 1}, {Count: 4, Speed: 2}, {Count: 4, Speed: 4}}
	g.Arrivals[0].MeanGap = 120
	g.Arrivals[0].Apps = 12
	return g
}

// QuickOnlineTrace is the recorded arrival log both online campaign
// presets replay: a morning burst of small jobs, two heavyweights, and a
// deadline-free backfill tail.
func QuickOnlineTrace() []grid.Arrival {
	return []grid.Arrival{
		{T: 0, App: "burst-0", Wmin: 1, Deadline: 700},
		{T: 40, App: "burst-1", Wmin: 1, Deadline: 700},
		{T: 80, App: "burst-2", Wmin: 2, Deadline: 1200},
		{T: 120, App: "burst-3", Wmin: 1, Deadline: 700},
		{T: 160, App: "burst-4", Wmin: 1, Deadline: 400},
		{T: 900, App: "heavy-0", Wmin: 3, Deadline: 4000},
		{T: 950, App: "heavy-1", Wmin: 3, Deadline: 4000},
		{T: 1000, App: "rush-0", Wmin: 1, Deadline: 500},
		{T: 2400, App: "backfill-0", Wmin: 2},
		{T: 2500, App: "backfill-1", Wmin: 1, Deadline: 900},
	}
}

// shape returns the sweep's per-application workload shape.
func (g *GridSweep) shape() grid.Shape {
	return grid.Shape{M: g.M, Iterations: g.Iterations, AppProcs: g.AppProcs, Ncom: g.Ncom}
}

// platformSize returns the tiered platform's processor count.
func (g *GridSweep) platformSize() int {
	p := 0
	for _, t := range g.Tiers {
		p += t.Count
	}
	return p
}

// Validate checks the campaign parameters, resolving every axis name
// through its registry so externally registered policies, heuristics and
// models are first-class.
func (g *GridSweep) Validate() error {
	if len(g.Tiers) == 0 {
		return fmt.Errorf("exp: grid sweep without speed tiers")
	}
	for _, t := range g.Tiers {
		if t.Count <= 0 || t.Speed <= 0 {
			return fmt.Errorf("exp: invalid speed tier %+v", t)
		}
	}
	if err := g.shape().Validate(); err != nil {
		return err
	}
	if g.AppProcs > g.platformSize() {
		return fmt.Errorf("exp: block of %d processors exceeds platform size %d", g.AppProcs, g.platformSize())
	}
	if g.Horizon <= 0 {
		return fmt.Errorf("exp: grid horizon %d, want positive", g.Horizon)
	}
	if g.Trials <= 0 {
		return fmt.Errorf("exp: grid trials %d, want positive", g.Trials)
	}
	if _, ok := sched.Lookup(g.Heuristic); !ok {
		return fmt.Errorf("exp: unknown heuristic %q", g.Heuristic)
	}
	if _, err := avail.Builtin(g.Model); err != nil {
		return err
	}
	if len(g.Arrivals) == 0 {
		return fmt.Errorf("exp: grid sweep without arrival processes")
	}
	seen := map[string]bool{}
	for _, a := range g.Arrivals {
		if err := a.Validate(); err != nil {
			return err
		}
		if seen[a.Name()] {
			return fmt.Errorf("exp: duplicate arrival process %q (label one)", a.Name())
		}
		seen[a.Name()] = true
	}
	if len(g.Admissions) == 0 || len(g.Preemptions) == 0 {
		return fmt.Errorf("exp: grid sweep without admission/preemption policies")
	}
	seenA := map[string]bool{}
	for _, name := range g.Admissions {
		if _, err := grid.Admission(name); err != nil {
			return err
		}
		if seenA[name] {
			return fmt.Errorf("exp: duplicate admission policy %q", name)
		}
		seenA[name] = true
	}
	seenP := map[string]bool{}
	for _, name := range g.Preemptions {
		if _, err := grid.Preemption(name); err != nil {
			return err
		}
		if seenP[name] {
			return fmt.Errorf("exp: duplicate preemption policy %q", name)
		}
		seenP[name] = true
	}
	return nil
}

// InstanceCount returns the campaign's total instance count.
func (g *GridSweep) InstanceCount() int {
	return len(g.Arrivals) * len(g.Admissions) * len(g.Preemptions) * g.Trials
}

// GridTrialSeed derives the seed of one (arrival, trial) realization
// from the master seed. It does not depend on the admission or
// preemption policy — every policy combination faces the same platform,
// availability walk and arrival stream, the online analogue of
// Sweep.TrialSeed's heuristic independence.
func (g *GridSweep) GridTrialSeed(arrival string, trial int) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(arrival); i++ {
		h ^= uint64(arrival[i])
		h *= 1099511628211
	}
	return rng.NewKeyed(g.Seed, 0x9d1d, h, uint64(trial)).Uint64()
}

// arrivalSpec resolves an arrival-axis label back to its spec.
func (g *GridSweep) arrivalSpec(name string) (grid.ArrivalSpec, error) {
	for _, a := range g.Arrivals {
		if a.Name() == name {
			return a, nil
		}
	}
	return grid.ArrivalSpec{}, fmt.Errorf("exp: unknown arrival process %q", name)
}

// gridPlatform deterministically regenerates the platform of one
// (arrival, trial) realization.
func (g *GridSweep) gridPlatform(trialSeed uint64) *platform.Platform {
	cfg := platform.TieredConfig{Tiers: g.Tiers, Ncom: g.Ncom, StayLo: 0.90, StayHi: 0.99}
	return platform.GenerateTiered(cfg, rng.NewKeyed(trialSeed, 0x91a7))
}

// GridKey identifies one grid instance inside a campaign — the
// journal's coordinate key.
type GridKey struct {
	Arrival    string `json:"arrival"`
	Admission  string `json:"admission"`
	Preemption string `json:"preemption"`
	Trial      int    `json:"trial"`
}

// GridInstance is one online simulation's aggregated outcome. Sums (not
// means) are stored so downstream aggregation in sorted-key order is
// exact and byte-deterministic.
type GridInstance struct {
	GridKey
	// Apps is the number of applications that entered the grid;
	// Completed of them finished inside the horizon; Missed violated
	// their deadline; Preempted counts evictions.
	Apps      int `json:"apps"`
	Completed int `json:"completed"`
	Missed    int `json:"missed"`
	Preempted int `json:"preempted"`
	// RespSum and SlowSum sum response slots and slowdowns over the
	// completed applications.
	RespSum int64   `json:"respSum"`
	SlowSum float64 `json:"slowSum"`
	// Makespan is the grid makespan: the last completion slot, or the
	// horizon when any application is unfinished.
	Makespan int64 `json:"makespan"`
}

// Key returns the instance's coordinate key.
func (i GridInstance) Key() GridKey { return i.GridKey }

// GridResult is a completed (or journal-loaded partial) grid campaign.
type GridResult struct {
	Sweep     GridSweep
	Instances []GridInstance
	// agg carries an aggregation-only result's streaming Table IV
	// accumulator (AggregateGridJournal); nil when Instances is the
	// source of truth.
	agg *tableIVAccumulator
}

// GridRunOptions are the execution knobs of RunGridContext; the zero
// value runs with GOMAXPROCS workers, no journal, no callbacks.
type GridRunOptions struct {
	// Workers overrides the sweep's worker count when positive.
	Workers int
	// Journal persists each instance as it completes; instances already
	// journaled are replayed, not re-run (resume is bit-identical —
	// instances are deterministic and canonically sorted).
	Journal *GridJournal
	// Progress is called after every completed (or replayed) instance.
	Progress func(completed, total int)
	// Telemetry receives live engine gauges (the daemon's /metrics).
	Telemetry grid.Telemetry
}

// RunGridContext executes the campaign on a bounded worker pool. Results
// are canonically sorted, so any worker count — and any resume split —
// produces identical bytes.
func RunGridContext(ctx context.Context, g GridSweep, opt GridRunOptions) (*GridResult, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	// One model instance for the whole campaign: Model implementations
	// are concurrency-safe and memoize their calibration fits, so every
	// instance shares the fitted believed matrices.
	model, err := avail.Builtin(g.Model)
	if err != nil {
		return nil, err
	}

	total := g.InstanceCount()
	instances := make([]GridInstance, 0, total)
	var done map[GridKey]GridInstance
	if opt.Journal != nil {
		if err := opt.Journal.matches(&g); err != nil {
			return nil, err
		}
		done = opt.Journal.Done()
	}
	var jobs []GridKey
	for _, a := range g.Arrivals {
		for _, adm := range g.Admissions {
			for _, pre := range g.Preemptions {
				for trial := 0; trial < g.Trials; trial++ {
					key := GridKey{Arrival: a.Name(), Admission: adm, Preemption: pre, Trial: trial}
					if inst, ok := done[key]; ok {
						instances = append(instances, inst)
						continue
					}
					jobs = append(jobs, key)
				}
			}
		}
	}
	if opt.Progress != nil {
		opt.Progress(len(instances), total)
	}

	workers := opt.Workers
	if workers <= 0 {
		workers = g.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	if len(jobs) > 0 {
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		jobCh := make(chan GridKey)
		type outcome struct {
			inst GridInstance
			err  error
		}
		resCh := make(chan outcome)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for key := range jobCh {
					inst, err := g.runInstance(ctx, key, model, opt.Telemetry)
					select {
					case resCh <- outcome{inst, err}:
					case <-ctx.Done():
						return
					}
				}
			}()
		}
		go func() {
			wg.Wait()
			close(resCh)
		}()
		go func() {
			defer close(jobCh)
			for _, key := range jobs {
				select {
				case jobCh <- key:
				case <-ctx.Done():
					return
				}
			}
		}()
		// Drain until the workers exit: cancelled workers drop their
		// outcomes, so the count of deliveries is not knowable up front.
		var firstErr error
		collected := 0
		for out := range resCh {
			collected++
			if out.err != nil {
				if firstErr == nil {
					firstErr = out.err
					cancel()
				}
				continue
			}
			if opt.Journal != nil {
				if err := opt.Journal.Append(out.inst); err != nil && firstErr == nil {
					firstErr = err
					cancel()
					continue
				}
			}
			instances = append(instances, out.inst)
			if opt.Progress != nil {
				opt.Progress(len(instances), total)
			}
		}
		if firstErr == nil && collected < len(jobs) {
			// Workers bailed out before delivering everything: the
			// caller's context died without any outcome carrying it.
			if firstErr = ctx.Err(); firstErr == nil {
				firstErr = context.Canceled
			}
		}
		if firstErr != nil {
			return nil, firstErr
		}
	}

	sortGridInstances(instances)
	return &GridResult{Sweep: g, Instances: instances}, nil
}

// runInstance executes one online simulation and aggregates its report.
func (g *GridSweep) runInstance(ctx context.Context, key GridKey, model avail.Model, tele grid.Telemetry) (GridInstance, error) {
	seed := g.GridTrialSeed(key.Arrival, key.Trial)
	spec, err := g.arrivalSpec(key.Arrival)
	if err != nil {
		return GridInstance{}, err
	}
	adm, err := grid.Admission(key.Admission)
	if err != nil {
		return GridInstance{}, err
	}
	pre, err := grid.Preemption(key.Preemption)
	if err != nil {
		return GridInstance{}, err
	}
	shape := g.shape()
	rep, err := grid.Simulate(ctx, grid.Scenario{
		Platform:   g.gridPlatform(seed),
		Model:      model,
		Shape:      shape,
		Horizon:    g.Horizon,
		Heuristic:  g.Heuristic,
		Seed:       seed,
		Arrivals:   spec.Materialize(rng.NewKeyed(seed, 0xa221), shape),
		Admission:  adm,
		Preemption: pre,
		Telemetry:  tele,
	})
	if err != nil {
		return GridInstance{}, err
	}
	inst := GridInstance{GridKey: key, Makespan: rep.Makespan}
	for _, a := range rep.Apps {
		inst.Apps++
		inst.Preempted += a.Preemptions
		if a.Missed {
			inst.Missed++
		}
		if a.Completed {
			inst.Completed++
			inst.RespSum += a.Response
			inst.SlowSum += a.Slowdown
		}
	}
	return inst, nil
}

// sortGridInstances orders instances canonically — the single order
// every worker count, resume split and journal replay converges to.
func sortGridInstances(instances []GridInstance) {
	sort.Slice(instances, func(i, j int) bool {
		a, b := instances[i], instances[j]
		if a.Arrival != b.Arrival {
			return a.Arrival < b.Arrival
		}
		if a.Admission != b.Admission {
			return a.Admission < b.Admission
		}
		if a.Preemption != b.Preemption {
			return a.Preemption < b.Preemption
		}
		return a.Trial < b.Trial
	})
}

// TableIVRow is one aggregated Table IV line: a policy combination's SLO
// metrics over an arrival process.
type TableIVRow struct {
	Arrival    string
	Admission  string
	Preemption string
	// Apps/Completed/Missed/Preempted sum over the combination's trials.
	Apps, Completed, Missed, Preempted int
	// MissPct is 100·Missed/Apps; MeanResponse and MeanSlowdown average
	// over completed applications; MeanMakespan averages the per-trial
	// grid makespans.
	MissPct      float64
	MeanResponse float64
	MeanSlowdown float64
	MeanMakespan float64
}

// TableIV aggregates the campaign into its Table IV rows, grouped by
// (arrival, admission, preemption) in the canonical instance order.
// Aggregation runs through the incremental combo accumulator
// (aggregate.go), which replays each combination's trials in sorted
// order over journaled integer sums, so the floats — and the rendered
// artifact — are bit-identical across worker counts, shards, resumes
// and streaming journal replays.
func (r *GridResult) TableIV() []TableIVRow {
	acc := r.agg
	if acc == nil {
		acc = newTableIVAccumulator()
		for _, in := range r.Instances {
			acc.add(in)
		}
	}
	return acc.rows()
}

// finishTableIVRow derives a row's mean metrics from its accumulated
// sums (trials is the number of instances folded into the row).
func finishTableIVRow(row *TableIVRow, respSum int64, slowSum float64, makespanSum int64, trials int) {
	if row.Apps > 0 {
		row.MissPct = 100 * float64(row.Missed) / float64(row.Apps)
	}
	if row.Completed > 0 {
		row.MeanResponse = float64(respSum) / float64(row.Completed)
		row.MeanSlowdown = slowSum / float64(row.Completed)
	} else {
		row.MeanSlowdown = math.NaN()
		row.MeanResponse = math.NaN()
	}
	if trials > 0 {
		row.MeanMakespan = float64(makespanSum) / float64(trials)
	}
}

// FormatTableIV renders Table IV rows in the experiment tables' fixed
// layout.
func FormatTableIV(rows []TableIVRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %-6s %-16s %5s %5s %6s %6s %9s %8s %10s\n",
		"arrival", "adm", "preempt", "apps", "done", "evict", "miss%", "resp", "slowdn", "makespan")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %-6s %-16s %5d %5d %6d %6.1f %9.2f %8.2f %10.0f\n",
			r.Arrival, r.Admission, r.Preemption, r.Apps, r.Completed, r.Preempted,
			r.MissPct, r.MeanResponse, r.MeanSlowdown, r.MeanMakespan)
	}
	return b.String()
}
