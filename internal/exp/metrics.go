package exp

import (
	"fmt"
	"sort"
	"strings"
)

// ReferenceHeuristic is the comparison baseline of Section VII: IE is the
// most robust heuristic (whenever it fails, everything fails), so all
// relative metrics are computed against it.
const ReferenceHeuristic = "IE"

// TableRow is one aggregated line of Table I / Table II.
type TableRow struct {
	Heuristic string
	// Fails counts instances (scenario × trial) the heuristic failed.
	Fails int
	// Diff is the mean over scenarios of the paper's relative difference
	//   (makespan_H − makespan_ref) / min(makespan_H, makespan_ref),
	// in percent, with per-scenario makespans averaged over succeeding
	// trials. Negative is better than the reference.
	Diff float64
	// Wins is the percentage of trials with makespan_H <= makespan_ref.
	Wins float64
	// Wins30 is the percentage of trials with
	// makespan_H <= 1.3 · makespan_ref.
	Wins30 float64
	// Stdv is the standard deviation of the per-scenario relative
	// difference (in the paper's units: 1.0 = 100%).
	Stdv float64
}

// scenarioKey groups instances of one scenario draw under one
// availability model: relative metrics always compare runs that saw the
// same ground truth.
type scenarioKey struct {
	Ncom, Wmin, Scenario int
	Model                string
}

// Table aggregates the campaign into rows sorted by %diff ascending (the
// paper's ordering: best heuristics first). ref names the reference
// heuristic, normally ReferenceHeuristic. With a multi-model campaign the
// per-scenario differences of every model pool into one row per
// heuristic; use TableForModel or TableIII to slice by model.
func (r *Result) Table(ref string) ([]TableRow, error) {
	return r.tableFiltered(ref, nil)
}

// TableForWmin aggregates only the instances with the given wmin; it is
// the slicing behind Figure 2.
func (r *Result) TableForWmin(ref string, wmin int) ([]TableRow, error) {
	return r.tableFiltered(ref, func(k scenarioKey) bool { return k.Wmin == wmin })
}

// TableForModel aggregates only the instances run under the named
// availability model (instances recorded before models existed count as
// "markov").
func (r *Result) TableForModel(ref, model string) ([]TableRow, error) {
	return r.tableFiltered(ref, func(k scenarioKey) bool { return k.Model == model })
}

// Models returns the distinct availability-model names in the results,
// sorted; instances recorded before models existed count as "markov".
// Aggregation-only results read the names off their streaming
// accumulators.
func (r *Result) Models() []string {
	if len(r.Instances) == 0 && r.agg != nil {
		st := r.aggState()
		st.mu.Lock()
		defer st.mu.Unlock()
		for _, acc := range st.byRef {
			return acc.models()
		}
	}
	seen := map[string]bool{}
	for _, inst := range r.Instances {
		seen[modelName(inst)] = true
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// modelName normalizes an instance's model ("markov" when empty, the
// pre-model-axis encoding).
func modelName(inst InstanceResult) string {
	if inst.Model == "" {
		return "markov"
	}
	return inst.Model
}

// tableFiltered renders table rows for ref over the scenario keys keep
// admits. The heavy lifting lives in the memoized per-ref accumulator
// (aggregate.go): one walk over Instances serves every table slicing,
// and aggregation-only results render from their streaming accumulators
// without any instance slice at all.
func (r *Result) tableFiltered(ref string, keep func(scenarioKey) bool) ([]TableRow, error) {
	acc, err := r.aggFor(ref)
	if err != nil {
		return nil, err
	}
	return acc.rows(keep)
}

// RefFailureDominance checks the paper's robustness observation: whenever
// the reference heuristic fails an instance, does every other heuristic
// fail it too? It returns the number of counterexample instances.
func (r *Result) RefFailureDominance(ref string) int {
	acc, err := r.aggFor(ref)
	if err != nil {
		return 0
	}
	acc.finish()
	return acc.dominance
}

// FormatTable renders rows in the paper's Table I/II layout.
func FormatTable(rows []TableRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %7s %9s %8s %9s %7s\n",
		"Heuristic", "#fails", "%diff", "%wins", "%wins30", "stdv")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %7d %9.2f %8.2f %9.2f %7.2f\n",
			r.Heuristic, r.Fails, r.Diff, r.Wins, r.Wins30, r.Stdv)
	}
	return b.String()
}

// ModelTable is one availability model's aggregated rows within a
// multi-model campaign.
type ModelTable struct {
	Model string
	Rows  []TableRow
}

// TableIII aggregates a multi-model campaign into one table per
// availability model — the cross-model comparison the paper's
// Section VII.B speculates about (how "wrong" do the Markov heuristics
// get when the Markov assumption is violated?). Within each model the
// metrics are the usual Table I/II quantities relative to ref.
func (r *Result) TableIII(ref string) ([]ModelTable, error) {
	var out []ModelTable
	for _, model := range r.Models() {
		rows, err := r.TableForModel(ref, model)
		if err != nil {
			return nil, fmt.Errorf("model %s: %w", model, err)
		}
		out = append(out, ModelTable{Model: model, Rows: rows})
	}
	return out, nil
}

// FormatTableIII renders per-model tables in the Table I/II layout.
func FormatTableIII(tables []ModelTable) string {
	var b strings.Builder
	for i, mt := range tables {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "availability model: %s\n", mt.Model)
		b.WriteString(FormatTable(mt.Rows))
	}
	return b.String()
}

// SeriesPoint is one (wmin, %diff) sample of a Figure 2 curve.
type SeriesPoint struct {
	Wmin int
	Diff float64 // relative distance to the reference (1.0 = 100%)
}

// Figure2 computes the %diff-versus-wmin curves of Figure 2 (one per
// heuristic, relative distance as a fraction like the paper's y-axis).
func (r *Result) Figure2(ref string) (map[string][]SeriesPoint, error) {
	wmins := append([]int(nil), r.Sweep.Wmins...)
	sort.Ints(wmins)
	series := map[string][]SeriesPoint{}
	for _, wmin := range wmins {
		rows, err := r.TableForWmin(ref, wmin)
		if err != nil {
			return nil, err
		}
		for _, row := range rows {
			series[row.Heuristic] = append(series[row.Heuristic],
				SeriesPoint{Wmin: wmin, Diff: row.Diff / 100})
		}
	}
	return series, nil
}

// FormatFigure2 renders the curves as aligned columns (one row per wmin),
// restricted to the named heuristics (all, alphabetically, when nil).
func FormatFigure2(series map[string][]SeriesPoint, names []string) string {
	if names == nil {
		for n := range series {
			names = append(names, n)
		}
		sort.Strings(names)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s", "wmin")
	for _, n := range names {
		fmt.Fprintf(&b, " %10s", n)
	}
	b.WriteByte('\n')
	if len(names) == 0 || len(series[names[0]]) == 0 {
		return b.String()
	}
	for i, pt := range series[names[0]] {
		fmt.Fprintf(&b, "%-6d", pt.Wmin)
		for _, n := range names {
			pts := series[n]
			if i < len(pts) {
				fmt.Fprintf(&b, " %10.3f", pts[i].Diff)
			} else {
				fmt.Fprintf(&b, " %10s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
