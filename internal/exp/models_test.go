package exp

import (
	"strings"
	"testing"

	"tightsched/internal/avail"
)

// cheapSemiMarkov keeps the calibration fit fast for tests.
func cheapSemiMarkov() *avail.SemiMarkovModel {
	m := avail.NewSemiMarkov(0.6)
	m.CalibrationSlots = 2_000
	return m
}

// TestSweepModelsAxisEndToEnd is the tentpole acceptance path: a campaign
// with Markov and semi-Markov ground truths runs through Run, slices per
// model, and renders a Table III.
func TestSweepModelsAxisEndToEnd(t *testing.T) {
	s := tinySweep([]string{"IE", "Y-IE", "RANDOM"})
	s.Models = []avail.Model{avail.MarkovModel{}, cheapSemiMarkov()}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.InstanceCount() != 2*1*2*2*2 {
		t.Fatalf("instance count %d", s.InstanceCount())
	}
	res, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Instances) != s.InstanceCount()*3 {
		t.Fatalf("%d instances", len(res.Instances))
	}
	counts := map[string]int{}
	for _, inst := range res.Instances {
		counts[inst.Model]++
	}
	if counts["markov"] != counts["semimarkov"] || counts["markov"] == 0 {
		t.Fatalf("per-model counts %v", counts)
	}
	models := res.Models()
	if len(models) != 2 || models[0] != "markov" || models[1] != "semimarkov" {
		t.Fatalf("models %v", models)
	}

	tables, err := res.TableIII(ReferenceHeuristic)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("%d model tables", len(tables))
	}
	for _, mt := range tables {
		if len(mt.Rows) != 3 {
			t.Fatalf("model %s has %d rows", mt.Model, len(mt.Rows))
		}
	}
	out := FormatTableIII(tables)
	if !strings.Contains(out, "availability model: semimarkov") || !strings.Contains(out, "RANDOM") {
		t.Fatalf("table III:\n%s", out)
	}

	// Per-model slices must partition the pooled aggregation's trials.
	markovRows, err := res.TableForModel(ReferenceHeuristic, "markov")
	if err != nil {
		t.Fatal(err)
	}
	if len(markovRows) != 3 {
		t.Fatalf("%d markov rows", len(markovRows))
	}
}

// TestSweepMarkovModelAxisMatchesImplicit requires the explicit
// single-model axis to reproduce the default campaign exactly.
func TestSweepMarkovModelAxisMatchesImplicit(t *testing.T) {
	s := tinySweep([]string{"IE", "RANDOM"})
	implicit, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Models = []avail.Model{avail.MarkovModel{}}
	explicit, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(implicit.Instances) != len(explicit.Instances) {
		t.Fatalf("instance counts differ: %d vs %d", len(implicit.Instances), len(explicit.Instances))
	}
	for i := range implicit.Instances {
		if implicit.Instances[i] != explicit.Instances[i] {
			t.Fatalf("instance %d: %+v != %+v", i, implicit.Instances[i], explicit.Instances[i])
		}
	}
}

// TestTableIIIOnLegacyInstances aggregates results whose instances
// predate the model axis (empty Model): they count as "markov"
// throughout, so TableIII must still produce a table.
func TestTableIIIOnLegacyInstances(t *testing.T) {
	res := &Result{Instances: []InstanceResult{
		{Point: Point{5, 1, 0}, Trial: 0, Heuristic: "IE", Makespan: 100},
		{Point: Point{5, 1, 0}, Trial: 0, Heuristic: "RANDOM", Makespan: 300},
	}}
	tables, err := res.TableIII(ReferenceHeuristic)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].Model != "markov" || len(tables[0].Rows) != 2 {
		t.Fatalf("tables: %+v", tables)
	}
}

// TestSweepModelPanicBecomesError runs a trace model that cannot cover
// the sweep's platforms: its size-mismatch panic must surface as an
// error from Run, not crash the worker pool.
func TestSweepModelPanicBecomesError(t *testing.T) {
	s := tinySweep([]string{"IE"})
	s.Scenarios = 1
	s.Trials = 1
	tm, err := avail.NewTraceModel("short", []string{"uu", "uu"})
	if err != nil {
		t.Fatal(err)
	}
	s.Models = []avail.Model{tm}
	if _, err := Run(s, nil); err == nil || !strings.Contains(err.Error(), "short") {
		t.Fatalf("err = %v, want model panic surfaced", err)
	}
}

func TestSweepModelValidation(t *testing.T) {
	s := tinySweep(nil)
	s.Models = []avail.Model{nil}
	if s.Validate() == nil {
		t.Fatal("nil model accepted")
	}
	s.Models = []avail.Model{avail.MarkovModel{}, avail.MarkovModel{}}
	if s.Validate() == nil {
		t.Fatal("duplicate model names accepted")
	}
}

// TestSweepTraceModel runs a replayed availability log through the
// harness: every processor permanently UP, so nothing can fail.
func TestSweepTraceModel(t *testing.T) {
	s := tinySweep([]string{"IE"})
	s.Scenarios = 1
	s.Trials = 1
	script := make([]string, s.P)
	for q := range script {
		script[q] = strings.Repeat("u", 4)
	}
	tm, err := avail.NewTraceModel("alwaysup", script)
	if err != nil {
		t.Fatal(err)
	}
	s.Models = []avail.Model{tm}
	res, err := Run(s, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range res.Instances {
		if inst.Failed {
			t.Fatalf("failed instance under always-up trace: %+v", inst)
		}
		if inst.Model != "alwaysup" {
			t.Fatalf("model %q", inst.Model)
		}
	}
}
