package exp

import (
	"fmt"
	"sort"
	"sync"

	"tightsched/internal/stats"
)

// This file holds the incremental table accumulators behind Tables I–IV:
// instances stream in (journal replay, DiscardInstances runs, or one
// memoized walk over Result.Instances) and tables render from O(cells)
// state — cells being (heuristic × scenario) for the offline tables and
// (policy combination) for Table IV — instead of re-walking a
// materialized instance slice per table.
//
// Byte parity with the slice-walking aggregation it replaced is held by
// construction:
//
//   - Win/fail/trial counters are integers, so resolving them per
//     coordinate group (one scenario draw × trial), whenever that group
//     happens to complete, is order-independent.
//   - Per-cell makespan sums are exact int64 totals. The old code summed
//     float64 values in canonical instance order; integer makespans sum
//     exactly in float64 until 2^53, so float64(sum) reproduces that
//     accumulation bit for bit (campaign caps are ~1e6 slots — fifty
//     orders of magnitude of headroom).
//   - The per-scenario relative differences are assembled at render time
//     in the same sorted scenario-key order the old walk used, so the
//     float reductions (mean, stdev) see identical operand sequences.
//
// Duplicate coordinates never reach an accumulator: journals deduplicate
// on Key at append time, and the run/merge paths generate each
// coordinate exactly once.

// coordKey is one coordinate group: a scenario draw and trial, across
// heuristics — the unit the relative metrics (wins, failure dominance)
// compare within.
type coordKey struct {
	scenarioKey
	trial int
}

// coordEntry is one heuristic's outcome inside an open coordinate group.
type coordEntry struct {
	makespan int64
	failed   bool
}

// aggCell is the per-(heuristic, scenario) accumulator cell.
type aggCell struct {
	sum    int64 // Σ makespan over succeeding trials (exact)
	n      int   // succeeding trials
	fails  int
	wins   int // trials with makespan ≤ ref's (resolved at group close)
	wins30 int // trials with makespan ≤ 1.3 · ref's
	trials int // trials where both this heuristic and ref recorded
}

// tableAccumulator aggregates instances incrementally for one reference
// heuristic. Groups close — and their relative counters resolve — as
// soon as every expected heuristic of a coordinate has arrived, so
// steady-state memory is O(cells) plus the handful of in-flight groups,
// not O(instances).
type tableAccumulator struct {
	ref string
	// expect is the number of heuristics per coordinate group (0 defers
	// every resolution to finish, for feeds of unknown width).
	expect int
	cells  map[string]map[scenarioKey]*aggCell
	open   map[coordKey]map[string]coordEntry
	// free recycles closed groups' maps: a well-ordered stream keeps only
	// a handful of groups in flight, so steady-state allocation — not
	// just live memory — stays O(cells) rather than O(instances).
	free      []map[string]coordEntry
	dominance int
	finished  bool
}

func newTableAccumulator(ref string, expect int) *tableAccumulator {
	return &tableAccumulator{
		ref:    ref,
		expect: expect,
		cells:  map[string]map[scenarioKey]*aggCell{},
		open:   map[coordKey]map[string]coordEntry{},
	}
}

// add feeds one instance, in any order.
func (a *tableAccumulator) add(inst InstanceResult) {
	key := scenarioKey{inst.Point.Ncom, inst.Point.Wmin, inst.Point.Scenario, modelName(inst)}
	byScen := a.cells[inst.Heuristic]
	if byScen == nil {
		byScen = map[scenarioKey]*aggCell{}
		a.cells[inst.Heuristic] = byScen
	}
	c := byScen[key]
	if c == nil {
		c = &aggCell{}
		byScen[key] = c
	}
	if inst.Failed {
		c.fails++
	} else {
		c.sum += inst.Makespan
		c.n++
	}
	ck := coordKey{key, inst.Trial}
	g := a.open[ck]
	if g == nil {
		if n := len(a.free); n > 0 {
			g = a.free[n-1]
			a.free = a.free[:n-1]
		} else {
			g = map[string]coordEntry{}
		}
		a.open[ck] = g
	}
	g[inst.Heuristic] = coordEntry{inst.Makespan, inst.Failed}
	if a.expect > 0 && len(g) == a.expect {
		a.closeGroup(ck, g)
		delete(a.open, ck)
		clear(g)
		a.free = append(a.free, g)
	}
}

// closeGroup resolves one coordinate group's relative counters. All
// counters are integers, so close order cannot perturb results. The
// comparisons run on capped makespans (failed instances record the cap),
// exactly as the paper's win percentages are defined.
func (a *tableAccumulator) closeGroup(ck coordKey, g map[string]coordEntry) {
	refE, refOK := g[a.ref]
	if !refOK {
		return // wins and dominance are relative to ref; nothing to resolve
	}
	refMk := float64(refE.makespan)
	for name, e := range g {
		c := a.cells[name][ck.scenarioKey]
		mk := float64(e.makespan)
		c.trials++
		if mk <= refMk {
			c.wins++
		}
		if mk <= 1.3*refMk {
			c.wins30++
		}
		if refE.failed && name != a.ref && !e.failed {
			a.dominance++
		}
	}
}

// finish resolves every still-open group (partial coverage: filtered
// feeds, interrupted shards). Idempotent.
func (a *tableAccumulator) finish() {
	if a.finished {
		return
	}
	a.finished = true
	for ck, g := range a.open {
		a.closeGroup(ck, g)
	}
	a.open = nil
	a.free = nil
}

// rows renders the accumulated cells into table rows, restricted to the
// scenario keys keep admits (all when nil). The scenario loop runs in
// sorted-key order so the float reductions are bit-identical however the
// instances arrived.
func (a *tableAccumulator) rows(keep func(scenarioKey) bool) ([]TableRow, error) {
	a.finish()
	refCells := a.cells[a.ref]
	refSeen := false
	for key := range refCells {
		if keep == nil || keep(key) {
			refSeen = true
			break
		}
	}
	if !refSeen {
		return nil, fmt.Errorf("exp: reference heuristic %q not in results", a.ref)
	}
	var rows []TableRow
	for name, byScen := range a.cells {
		keys := make([]scenarioKey, 0, len(byScen))
		for key := range byScen {
			if keep == nil || keep(key) {
				keys = append(keys, key)
			}
		}
		if len(keys) == 0 {
			continue
		}
		sort.Slice(keys, func(i, j int) bool {
			a, b := keys[i], keys[j]
			if a.Model != b.Model {
				return a.Model < b.Model
			}
			if a.Ncom != b.Ncom {
				return a.Ncom < b.Ncom
			}
			if a.Wmin != b.Wmin {
				return a.Wmin < b.Wmin
			}
			return a.Scenario < b.Scenario
		})
		row := TableRow{Heuristic: name}
		var diffs []float64
		wins, wins30, trials := 0, 0, 0
		for _, key := range keys {
			c := byScen[key]
			row.Fails += c.fails
			refC := refCells[key]
			if refC == nil {
				continue
			}
			wins += c.wins
			wins30 += c.wins30
			trials += c.trials
			// Per-scenario relative difference over succeeding trials.
			if c.n > 0 && refC.n > 0 {
				mH := float64(c.sum) / float64(c.n)
				mRef := float64(refC.sum) / float64(refC.n)
				den := mH
				if mRef < den {
					den = mRef
				}
				if den > 0 {
					diffs = append(diffs, (mH-mRef)/den)
				}
			}
		}
		if len(diffs) > 0 {
			row.Diff = 100 * stats.Mean(diffs)
			row.Stdv = stats.Stdev(diffs)
		}
		if trials > 0 {
			row.Wins = 100 * float64(wins) / float64(trials)
			row.Wins30 = 100 * float64(wins30) / float64(trials)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Diff != rows[j].Diff {
			return rows[i].Diff < rows[j].Diff
		}
		return rows[i].Heuristic < rows[j].Heuristic
	})
	return rows, nil
}

// models returns the distinct model names the accumulator has seen.
func (a *tableAccumulator) models() []string {
	seen := map[string]bool{}
	for _, byScen := range a.cells {
		for key := range byScen {
			seen[key.Model] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// resultAgg is a Result's streaming aggregation state, shared by value
// copies of the Result (they point at the same state). It only exists on
// aggregation-only Results (journal replay, DiscardInstances runs):
// Instances is nil and only the preseeded reference heuristics can be
// rendered. Results that carry Instances aggregate per call, exactly as
// the slice-walking code they replaced did.
type resultAgg struct {
	mu    sync.Mutex
	byRef map[string]*tableAccumulator
}

// resultAggInit guards the lazy creation of a Result's agg pointer, so
// concurrent table renders of one Result (the daemon's artifact
// handlers) stay race-free.
var resultAggInit sync.Mutex

func (r *Result) aggState() *resultAgg {
	resultAggInit.Lock()
	defer resultAggInit.Unlock()
	if r.agg == nil {
		r.agg = &resultAgg{byRef: map[string]*tableAccumulator{}}
	}
	return r.agg
}

// preseedAgg installs a streaming accumulator built outside the Result
// (journal replay, a DiscardInstances run), marking the Result
// aggregation-only.
func (r *Result) preseedAgg(ref string, acc *tableAccumulator) {
	st := r.aggState()
	st.mu.Lock()
	acc.finish()
	st.byRef[ref] = acc
	st.mu.Unlock()
}

// aggFor returns an accumulator for ref: the preseeded streaming one on
// aggregation-only Results, or a fresh walk over Instances otherwise.
func (r *Result) aggFor(ref string) (*tableAccumulator, error) {
	if st := r.agg; st != nil {
		st.mu.Lock()
		defer st.mu.Unlock()
		if acc := st.byRef[ref]; acc != nil {
			return acc, nil
		}
		refs := make([]string, 0, len(st.byRef))
		for name := range st.byRef {
			refs = append(refs, name)
		}
		sort.Strings(refs)
		return nil, fmt.Errorf("exp: aggregation-only result was streamed for reference %v, cannot aggregate for %q", refs, ref)
	}
	acc := newTableAccumulator(ref, 0)
	for _, inst := range r.Instances {
		acc.add(inst)
	}
	acc.finish()
	return acc, nil
}

// AggregateJournal replays a sweep journal (either format) into an
// aggregation-only Result: sweep dimensions from the header, nil
// Instances, and a streaming accumulator for ReferenceHeuristic in their
// place. Tables I–III, Figure 2 and the failure-dominance check render
// from it in O(cells) memory however many instances the journal holds.
func AggregateJournal(path string) (*Result, error) {
	var header journalHeader
	var format Format
	var acc *tableAccumulator
	intern := map[string]string{}
	err := scanRecords(path,
		func(f Format, raw []byte) error {
			format = f
			h, err := parseJournalHeader(path, raw)
			if err != nil {
				return err
			}
			header = h
			acc = newTableAccumulator(ReferenceHeuristic, len(h.Spec.Heuristics))
			return nil
		},
		func(payload []byte) error {
			e, err := decodeJournalEntry(format, payload, intern)
			if err != nil {
				return err
			}
			acc.add(e.instance())
			return nil
		})
	if err != nil {
		return nil, err
	}
	if acc == nil {
		return nil, fmt.Errorf("exp: journal %s: no header record", path)
	}
	r := &Result{Sweep: header.Spec.sweepDims()}
	r.preseedAgg(ReferenceHeuristic, acc)
	return r, nil
}

// ---- Table IV --------------------------------------------------------------

// gridCombo is one policy combination — Table IV's row key.
type gridCombo struct {
	arrival, admission, preemption string
}

// tableIVAccumulator groups grid instances by policy combination. Grid
// instances are already per-trial aggregates (a campaign has
// |combos| × trials of them), so buffering them per combo is small by
// construction; rows render by replaying each combo's trials in sorted
// order, reproducing the canonical-order float accumulation exactly.
type tableIVAccumulator struct {
	combos map[gridCombo][]GridInstance
}

func newTableIVAccumulator() *tableIVAccumulator {
	return &tableIVAccumulator{combos: map[gridCombo][]GridInstance{}}
}

// add feeds one grid instance, in any order.
func (a *tableIVAccumulator) add(in GridInstance) {
	k := gridCombo{in.Arrival, in.Admission, in.Preemption}
	a.combos[k] = append(a.combos[k], in)
}

// rows renders Table IV in canonical combo order.
func (a *tableIVAccumulator) rows() []TableIVRow {
	keys := make([]gridCombo, 0, len(a.combos))
	for k := range a.combos {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		x, y := keys[i], keys[j]
		if x.arrival != y.arrival {
			return x.arrival < y.arrival
		}
		if x.admission != y.admission {
			return x.admission < y.admission
		}
		return x.preemption < y.preemption
	})
	var rows []TableIVRow
	for _, k := range keys {
		insts := a.combos[k]
		sort.Slice(insts, func(i, j int) bool { return insts[i].Trial < insts[j].Trial })
		row := TableIVRow{Arrival: k.arrival, Admission: k.admission, Preemption: k.preemption}
		var respSum int64
		slowSum := 0.0
		var makespanSum int64
		for _, in := range insts {
			row.Apps += in.Apps
			row.Completed += in.Completed
			row.Missed += in.Missed
			row.Preempted += in.Preempted
			respSum += in.RespSum
			slowSum += in.SlowSum
			makespanSum += in.Makespan
		}
		finishTableIVRow(&row, respSum, slowSum, makespanSum, len(insts))
		rows = append(rows, row)
	}
	return rows
}

// AggregateGridJournal replays a grid journal (either format) into an
// aggregation-only Result whose Grid renders Table IV without holding a
// sorted instance slice.
func AggregateGridJournal(path string) (*Result, error) {
	var header gridHeader
	var format Format
	acc := newTableIVAccumulator()
	seenHeader := false
	intern := map[string]string{}
	err := scanRecords(path,
		func(f Format, raw []byte) error {
			format = f
			h, err := parseGridHeader(path, raw)
			if err != nil {
				return err
			}
			header = h
			seenHeader = true
			return nil
		},
		func(payload []byte) error {
			inst, err := decodeGridEntry(format, payload, intern)
			if err != nil {
				return err
			}
			acc.add(inst)
			return nil
		})
	if err != nil {
		return nil, err
	}
	if !seenHeader {
		return nil, fmt.Errorf("exp: journal %s: no header record", path)
	}
	return &Result{Grid: &GridResult{Sweep: header.Spec.Sweep(), agg: acc}}, nil
}
