package exp

import "sync"

// This file is the campaign-event fan-out: one running campaign, many
// concurrent consumers. The serve layer hangs every SSE connection of a
// campaign off one Broadcaster; the campaign's single-goroutine Observer
// publishes into it and each subscriber reads its own buffered channel.

// DefaultSubscriberBuffer is the per-subscriber event buffer when
// NewBroadcaster is given no explicit size. Campaign events are small and
// bursty (one InstanceDone + Progress pair per completed instance), so a
// few hundred events of slack absorbs normal consumer jitter.
const DefaultSubscriberBuffer = 256

// Broadcaster fans a campaign's typed event stream out to any number of
// concurrent subscribers. It implements Observer, so it plugs straight
// into the RunSweep/ResumeSweep observer option; Publish can also be fed
// by hand from a Stream consumer.
//
// Delivery never blocks the campaign: each subscriber owns a buffered
// channel, and one whose buffer is full (a stalled SSE connection, say)
// is dropped — its channel closes and Lagged reports true — instead of
// backpressuring the worker pool. Events are progress telemetry, not the
// system of record (the journal is); a dropped consumer re-syncs from
// campaign status and, if it needs every instance, from the journal.
type Broadcaster struct {
	mu     sync.Mutex
	subs   map[*Subscription]struct{}
	buffer int
	closed bool
}

// Subscription is one consumer's view of a Broadcaster: a receive
// channel that closes when the broadcaster closes, the subscriber
// cancels, or the subscriber lags behind.
type Subscription struct {
	b      *Broadcaster
	ch     chan Event
	done   bool // channel closed (guarded by b.mu)
	lagged bool // closed because the buffer overflowed (guarded by b.mu)
}

// NewBroadcaster returns a fan-out with the given per-subscriber buffer
// (DefaultSubscriberBuffer when n <= 0).
func NewBroadcaster(n int) *Broadcaster {
	if n <= 0 {
		n = DefaultSubscriberBuffer
	}
	return &Broadcaster{subs: map[*Subscription]struct{}{}, buffer: n}
}

// Subscribe attaches a new consumer. Subscribing to a closed broadcaster
// is not an error: the subscription's channel is already closed, so a
// consumer attaching to a finished campaign terminates immediately after
// rendering its snapshot.
func (b *Broadcaster) Subscribe() *Subscription {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := &Subscription{b: b, ch: make(chan Event, b.buffer)}
	if b.closed {
		close(s.ch)
		s.done = true
		return s
	}
	b.subs[s] = struct{}{}
	return s
}

// Events returns the subscription's receive channel. It closes when the
// broadcaster closes (campaign over), Cancel is called, or the
// subscriber lagged.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Lagged reports whether the subscription was dropped because its buffer
// overflowed (meaningful once Events is closed).
func (s *Subscription) Lagged() bool {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	return s.lagged
}

// Cancel detaches the subscriber and closes its channel. Safe to call
// more than once, and after the broadcaster has closed.
func (s *Subscription) Cancel() {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	delete(s.b.subs, s)
	if !s.done {
		close(s.ch)
		s.done = true
	}
}

// Publish delivers the event to every live subscriber without blocking:
// a subscriber with no buffer space left is dropped (channel closed,
// Lagged true). Publishing after Close is a no-op.
func (b *Broadcaster) Publish(ev Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	for s := range b.subs {
		select {
		case s.ch <- ev:
		default:
			delete(b.subs, s)
			close(s.ch)
			s.done = true
			s.lagged = true
		}
	}
}

// Close ends the stream: every live subscriber's channel closes after
// the events already buffered, and future Subscribe calls return
// already-closed subscriptions. Idempotent.
func (b *Broadcaster) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for s := range b.subs {
		delete(b.subs, s)
		close(s.ch)
		s.done = true
	}
}

// Observer plumbing: a Broadcaster slots directly into the campaign
// observer option.

func (b *Broadcaster) OnInstanceDone(ev InstanceDone) { b.Publish(ev) }
func (b *Broadcaster) OnPointDone(ev PointDone)       { b.Publish(ev) }
func (b *Broadcaster) OnProgress(ev Progress)         { b.Publish(ev) }
