package exp

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// This file is the binary sibling of the JSONL substrate (jsonl.go): an
// append-only record log with one write (and flush) per record, tolerant
// of exactly the damage a mid-write crash can cause. The frame layout is
//
//	file   := magic version record*
//	magic  := "TSBL" (4 bytes)
//	version:= 0x01   (1 byte)
//	record := uvarint(len(payload)) payload crc32
//	crc32  := 4-byte little-endian IEEE CRC of payload
//
// The first record is the journal header — the same JSON document a JSONL
// journal carries on its first line, so campaign identity (and the
// matches/merge checks built on it) is byte-equal across formats. Records
// after the header are compact binary encodings (codec.go).
//
// Torn-tail policy: length-prefixed framing cannot resynchronize past a
// damaged record, so the intact prefix ends at the first record whose
// frame is incomplete or whose CRC fails; validLen reports that offset
// and appenders truncate the rest away. The CRC is what distinguishes "a
// crash tore the tail" from "this record is fine" — a half-written or
// zero-filled frame virtually never checksums correctly.

// Magic and version of the binary journal container.
var binMagic = []byte{'T', 'S', 'B', 'L'}

const (
	binVersion   = 0x01
	binHeaderLen = 5 // magic + version byte

	// maxBinRecord bounds a single record's payload so a corrupt length
	// prefix cannot ask the reader to allocate gigabytes. Journal records
	// are tens of bytes; the JSON header with an inline arrival trace can
	// be large, so the cap is generous.
	maxBinRecord = 64 << 20
)

// IsBinaryLog reports whether the byte slice starts with the binary
// journal magic (any version).
func IsBinaryLog(data []byte) bool {
	return len(data) >= len(binMagic) && string(data[:len(binMagic)]) == string(binMagic)
}

// binRecord is one decoded frame: its payload and the file offset just
// past the frame, so entry-level readers can report where an intact
// prefix ends when a CRC-valid record fails to decode.
type binRecord struct {
	payload []byte
	end     int64
}

// parseBinaryLog walks the frames of a binary log held in memory. It
// returns every record of the intact prefix and the prefix length; a
// damaged frame (short, oversized, or CRC-failing) ends the prefix
// silently — that is the torn tail an appender truncates away. Only a
// damaged container header (magic/version) is an error.
func parseBinaryLog(path string, data []byte) (records []binRecord, validLen int64, err error) {
	if !IsBinaryLog(data) {
		return nil, 0, fmt.Errorf("%s: not a binary journal (bad magic)", path)
	}
	if len(data) < binHeaderLen {
		return nil, 0, fmt.Errorf("%s: truncated binary journal header", path)
	}
	if v := data[4]; v != binVersion {
		return nil, 0, fmt.Errorf("%s: unknown binary journal version %d", path, v)
	}
	off := int64(binHeaderLen)
	for int(off) < len(data) {
		n, w := binary.Uvarint(data[off:])
		if w <= 0 || n > maxBinRecord {
			break // torn or garbled length prefix
		}
		body := off + int64(w)
		end := body + int64(n) + 4
		if end > int64(len(data)) {
			break // frame runs past EOF: cut-short write
		}
		payload := data[body : body+int64(n)]
		sum := binary.LittleEndian.Uint32(data[body+int64(n) : end])
		if crc32.ChecksumIEEE(payload) != sum {
			break // damaged payload (zero-fill, bit rot): tear here
		}
		records = append(records, binRecord{payload: payload, end: end})
		off = end
	}
	return records, off, nil
}

// ReadBinaryLog reads a binary journal file without touching it: the
// header record's payload, the remaining records, and the byte length of
// the intact prefix. It mirrors ReadJSONL's contract.
func ReadBinaryLog(path string) (header []byte, records []binRecord, validLen int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, 0, err
	}
	recs, validLen, err := parseBinaryLog(path, data)
	if err != nil {
		return nil, nil, 0, err
	}
	if len(recs) == 0 {
		return nil, nil, 0, fmt.Errorf("%s: no header record", path)
	}
	return recs[0].payload, recs[1:], validLen, nil
}

// BinaryLogWriter appends CRC-framed records to a binary journal, one
// write syscall per record (the durability contract JSONLWriter set).
type BinaryLogWriter struct {
	f   *os.File
	buf []byte // frame assembly buffer, reused across appends
}

// CreateBinaryLog starts a new binary journal with the given header
// payload (the same JSON document a JSONL journal would carry). It
// refuses to clobber an existing file.
func CreateBinaryLog(path string, header []byte) (*BinaryLogWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	w := &BinaryLogWriter{f: f}
	if _, err := f.Write(append(append([]byte(nil), binMagic...), binVersion)); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if err := w.AppendRecord(header); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return w, nil
}

// OpenBinaryLogAppend opens an existing binary journal for appending,
// first truncating it to validLen (as reported by ReadBinaryLog) to drop
// a crash-torn tail.
func OpenBinaryLogAppend(path string, validLen int64) (*BinaryLogWriter, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(validLen); err != nil {
		f.Close()
		return nil, fmt.Errorf("truncate torn tail of %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return &BinaryLogWriter{f: f}, nil
}

// AppendRecord writes one framed record in a single syscall.
func (w *BinaryLogWriter) AppendRecord(payload []byte) error {
	w.buf = w.buf[:0]
	w.buf = binary.AppendUvarint(w.buf, uint64(len(payload)))
	w.buf = append(w.buf, payload...)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.ChecksumIEEE(payload))
	if _, err := w.f.Write(w.buf); err != nil {
		return fmt.Errorf("journal append: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (w *BinaryLogWriter) Close() error { return w.f.Close() }
