package offline

import (
	"fmt"
	"sort"

	"tightsched/internal/rng"
)

// Bipartite is a bipartite graph G = (V ∪ W, E) for the ENCD problem of
// Dawande et al., used in the paper's Theorem 4.1 reductions.
type Bipartite struct {
	// NV and NW are the sizes of the two vertex classes.
	NV, NW int
	// Edge[v][w] reports an edge between v ∈ V and w ∈ W.
	Edge [][]bool
}

// Validate checks the graph shape.
func (g *Bipartite) Validate() error {
	if g.NV <= 0 || g.NW <= 0 {
		return fmt.Errorf("offline: bipartite sides %d, %d", g.NV, g.NW)
	}
	if len(g.Edge) != g.NV {
		return fmt.Errorf("offline: %d edge rows, want %d", len(g.Edge), g.NV)
	}
	for v, row := range g.Edge {
		if len(row) != g.NW {
			return fmt.Errorf("offline: edge row %d has %d entries, want %d", v, len(row), g.NW)
		}
	}
	return nil
}

// RandomBipartite draws a bipartite graph with the given edge probability.
func RandomBipartite(nv, nw int, p float64, stream *rng.Stream) *Bipartite {
	g := &Bipartite{NV: nv, NW: nw, Edge: make([][]bool, nv)}
	for v := range g.Edge {
		g.Edge[v] = make([]bool, nw)
		for w := range g.Edge[v] {
			g.Edge[v][w] = stream.Bernoulli(p)
		}
	}
	return g
}

// SolveENCD answers the Exact Node Cardinality Decision problem: does G
// contain a bi-clique with exactly a nodes in V and b nodes in W? It
// enumerates a-subsets of V with neighborhood-intersection pruning and is
// exact (ENCD is NP-complete, so worst-case exponential). A witness
// (U1 ⊂ V, U2 ⊂ W) is returned when one exists.
func SolveENCD(g *Bipartite, a, b int) ([]int, []int, bool, error) {
	if err := g.Validate(); err != nil {
		return nil, nil, false, err
	}
	if a < 1 || a > g.NV || b < 1 || b > g.NW {
		return nil, nil, false, fmt.Errorf("offline: ENCD with a=%d, b=%d outside graph %dx%d", a, b, g.NV, g.NW)
	}
	// Neighborhood bitsets over W.
	nbr := make([]bitset, g.NV)
	for v := 0; v < g.NV; v++ {
		nbr[v] = newBitset(g.NW)
		for w := 0; w < g.NW; w++ {
			if g.Edge[v][w] {
				nbr[v].set(w)
			}
		}
	}
	order := make([]int, g.NV)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		return nbr[order[i]].count() > nbr[order[j]].count()
	})

	chosen := make([]int, 0, a)
	var rec func(idx int, common bitset) ([]int, []int, bool)
	rec = func(idx int, common bitset) ([]int, []int, bool) {
		if len(chosen) == a {
			u1 := append([]int(nil), chosen...)
			sort.Ints(u1)
			return u1, common.indices(b), true
		}
		for i := idx; i <= g.NV-(a-len(chosen)); i++ {
			v := order[i]
			next := common.and(nbr[v])
			if next.count() < b {
				continue
			}
			chosen = append(chosen, v)
			if u1, u2, ok := rec(i+1, next); ok {
				return u1, u2, ok
			}
			chosen = chosen[:len(chosen)-1]
		}
		return nil, nil, false
	}
	u1, u2, ok := rec(0, allSlots(g.NW))
	return u1, u2, ok, nil
}

// VerifyBiclique checks that (u1, u2) is a bi-clique of g with exactly the
// requested cardinalities.
func VerifyBiclique(g *Bipartite, u1, u2 []int, a, b int) error {
	if len(u1) != a || len(u2) != b {
		return fmt.Errorf("offline: biclique sizes (%d, %d), want (%d, %d)", len(u1), len(u2), a, b)
	}
	for _, v := range u1 {
		if v < 0 || v >= g.NV {
			return fmt.Errorf("offline: vertex %d outside V", v)
		}
		for _, w := range u2 {
			if w < 0 || w >= g.NW {
				return fmt.Errorf("offline: vertex %d outside W", w)
			}
			if !g.Edge[v][w] {
				return fmt.Errorf("offline: missing edge (%d, %d)", v, w)
			}
		}
	}
	return nil
}

// ReduceENCDToUnit builds the Theorem 4.1(i) instance: p = |V| processors,
// N = |W| slots, processor v UP at slot w iff (v, w) ∈ E, with m = a and
// w = b. The ENCD instance is satisfiable iff the returned off-line
// instance is (for SolveUnit).
func ReduceENCDToUnit(g *Bipartite, a, b int) (*Instance, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	up := make([][]bool, g.NV)
	for v := range up {
		up[v] = append([]bool(nil), g.Edge[v]...)
	}
	return &Instance{Up: up, M: a, W: b}, nil
}

// ReduceENCDToFlexible builds the Theorem 4.1(ii) instance: the same
// availability matrix extended with |W|+1 all-UP slots, with m = a and
// w = b + |W| + 1. Intuitively the padding makes splitting tasks onto
// fewer than a processors impossible: with fewer processors some worker
// runs two tasks, needing 2w > N slots.
func ReduceENCDToFlexible(g *Bipartite, a, b int) (*Instance, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	n := 2*g.NW + 1
	up := make([][]bool, g.NV)
	for v := range up {
		row := make([]bool, n)
		copy(row, g.Edge[v])
		for t := g.NW; t < n; t++ {
			row[t] = true
		}
		up[v] = row
	}
	return &Instance{Up: up, M: a, W: b + g.NW + 1}, nil
}
