package offline

import "math/bits"

// bitset is a fixed-capacity bit vector used to represent sets of
// time-slots. Instances in this package are small (the off-line problem is
// NP-hard; exact solving is only feasible for tens of slots), but the
// representation supports arbitrary lengths.
type bitset []uint64

func newBitset(n int) bitset {
	return make(bitset, (n+63)/64)
}

func (b bitset) set(i int) {
	b[i/64] |= 1 << (uint(i) % 64)
}

func (b bitset) get(i int) bool {
	return b[i/64]&(1<<(uint(i)%64)) != 0
}

// and intersects other into a fresh bitset.
func (b bitset) and(other bitset) bitset {
	out := make(bitset, len(b))
	for i := range b {
		out[i] = b[i] & other[i]
	}
	return out
}

// andInPlace intersects other into b.
func (b bitset) andInPlace(other bitset) {
	for i := range b {
		b[i] &= other[i]
	}
}

func (b bitset) clone() bitset {
	out := make(bitset, len(b))
	copy(out, b)
	return out
}

func (b bitset) count() int {
	total := 0
	for _, w := range b {
		total += bits.OnesCount64(w)
	}
	return total
}

// indices returns the positions of set bits, up to max (all when max < 0).
func (b bitset) indices(max int) []int {
	var out []int
	for wi, w := range b {
		for w != 0 {
			i := wi*64 + bits.TrailingZeros64(w)
			out = append(out, i)
			if max >= 0 && len(out) == max {
				return out
			}
			w &= w - 1
		}
	}
	return out
}
