// Package offline implements Section IV of the paper: the off-line
// scheduling problem with full knowledge of future processor states, its
// two variants OFFLINE-COUPLED(µ=1) and OFFLINE-COUPLED(µ=∞), exact
// solvers for them, a greedy baseline, and the NP-hardness reductions of
// Theorem 4.1 from ENCD (the Exact Node Cardinality Decision bi-clique
// problem), in both directions, so the reductions can be verified
// experimentally on random instances.
//
// The off-line problem with no communication and identical workers
// reduces to a combinatorial core: given the p×N availability matrix, do
// there exist m processors that are simultaneously UP during at least w
// (not necessarily consecutive) time-slots? With per-worker capacity µ=∞,
// the workload can instead be folded onto k < m workers, each taking
// ⌈m/k⌉ tasks and therefore needing ⌈m/k⌉·w slots.
package offline

import (
	"fmt"
	"sort"
)

// Instance is an off-line scheduling instance: full knowledge of which
// processors are UP at which time-slots (only UP matters for the
// communication-free, homogeneous variants of Section IV).
type Instance struct {
	// Up[q][t] reports that processor q is UP at slot t. All rows must
	// have equal length N.
	Up [][]bool
	// M is the number of tasks per iteration.
	M int
	// W is the per-task execution time w in slots.
	W int
}

// Validate checks the instance shape.
func (in *Instance) Validate() error {
	if len(in.Up) == 0 {
		return fmt.Errorf("offline: no processors")
	}
	n := len(in.Up[0])
	for q, row := range in.Up {
		if len(row) != n {
			return fmt.Errorf("offline: row %d has %d slots, want %d", q, len(row), n)
		}
	}
	if in.M <= 0 || in.M > len(in.Up) {
		return fmt.Errorf("offline: m=%d with p=%d processors", in.M, len(in.Up))
	}
	if in.W <= 0 {
		return fmt.Errorf("offline: w=%d, want positive", in.W)
	}
	return nil
}

// Slots returns N, the horizon length.
func (in *Instance) Slots() int {
	if len(in.Up) == 0 {
		return 0
	}
	return len(in.Up[0])
}

// rowBitsets converts availability rows to bitsets over slots.
func (in *Instance) rowBitsets() []bitset {
	n := in.Slots()
	rows := make([]bitset, len(in.Up))
	for q, row := range in.Up {
		b := newBitset(n)
		for t, up := range row {
			if up {
				b.set(t)
			}
		}
		rows[q] = b
	}
	return rows
}

// Solution is a witness for a satisfiable instance.
type Solution struct {
	// Procs are the enrolled processors (len = m for µ=1; k <= m for µ=∞).
	Procs []int
	// SlotsUsed are the time-slots during which all enrolled processors
	// are UP (len = the required duration).
	SlotsUsed []int
	// TasksPerProc is the common task count per enrolled processor
	// (1 for µ=1; ⌈m/k⌉ for µ=∞).
	TasksPerProc int
}

// SolveUnit answers OFFLINE-COUPLED(µ=1) exactly: do m processors exist
// that are simultaneously UP during at least w slots? It returns a witness
// when satisfiable. The search is a branch-and-bound over processor
// subsets, pruning on the intersection cardinality; worst-case exponential
// (the problem is NP-hard) but effective for the small instances exact
// solving is meant for.
func SolveUnit(in *Instance) (Solution, bool, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, false, err
	}
	return solveSubset(in.rowBitsets(), in.Slots(), in.M, in.W)
}

// solveSubset finds m rows whose bitwise intersection has at least w set
// bits. Rows are tried in decreasing cardinality order. n is the number of
// valid slot positions.
func solveSubset(rows []bitset, n, m, w int) (Solution, bool, error) {
	p := len(rows)
	order := make([]int, p)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return rows[order[a]].count() > rows[order[b]].count()
	})

	chosen := make([]int, 0, m)
	var rec func(idx int, inter bitset) (Solution, bool)
	rec = func(idx int, inter bitset) (Solution, bool) {
		if len(chosen) == m {
			slots := inter.indices(w)
			procs := append([]int(nil), chosen...)
			sort.Ints(procs)
			return Solution{Procs: procs, SlotsUsed: slots, TasksPerProc: 1}, true
		}
		for i := idx; i <= p-(m-len(chosen)); i++ {
			q := order[i]
			next := inter.and(rows[q])
			if next.count() < w {
				continue
			}
			chosen = append(chosen, q)
			if sol, ok := rec(i+1, next); ok {
				return sol, true
			}
			chosen = chosen[:len(chosen)-1]
		}
		return Solution{}, false
	}

	if p == 0 || m > p {
		return Solution{}, false, nil
	}
	sol, ok := rec(0, allSlots(n))
	return sol, ok, nil
}

// allSlots returns the bitset with exactly the first n bits set.
func allSlots(n int) bitset {
	b := newBitset(n)
	for i := 0; i < n; i++ {
		b.set(i)
	}
	return b
}

// SolveFlexible answers OFFLINE-COUPLED(µ=∞) exactly: does some k ≤ m
// admit k processors simultaneously UP during ⌈m/k⌉·w slots? Smaller k
// trades fewer simultaneous processors for a longer coupled computation.
func SolveFlexible(in *Instance) (Solution, bool, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, false, err
	}
	rows := in.rowBitsets()
	p := len(rows)
	for k := 1; k <= in.M && k <= p; k++ {
		perProc := (in.M + k - 1) / k // ⌈m/k⌉
		need := perProc * in.W
		if need > in.Slots() {
			continue
		}
		if sol, ok, err := solveSubset(rows, in.Slots(), k, need); err != nil {
			return Solution{}, false, err
		} else if ok {
			sol.TasksPerProc = perProc
			return sol, true, nil
		}
	}
	return Solution{}, false, nil
}

// GreedyUnit is a polynomial-time heuristic for OFFLINE-COUPLED(µ=1): it
// repeatedly enrolls the processor whose availability intersects best with
// the current common slots. It can miss solutions (the problem is NP-hard)
// but never reports a false positive.
func GreedyUnit(in *Instance) (Solution, bool, error) {
	if err := in.Validate(); err != nil {
		return Solution{}, false, err
	}
	rows := in.rowBitsets()
	p := len(rows)
	used := make([]bool, p)
	inter := allSlots(in.Slots())
	var procs []int
	for len(procs) < in.M {
		best, bestCount := -1, -1
		for q := 0; q < p; q++ {
			if used[q] {
				continue
			}
			if c := inter.and(rows[q]).count(); c > bestCount {
				best, bestCount = q, c
			}
		}
		if best < 0 || bestCount < in.W {
			return Solution{}, false, nil
		}
		used[best] = true
		procs = append(procs, best)
		inter.andInPlace(rows[best])
	}
	sort.Ints(procs)
	return Solution{Procs: procs, SlotsUsed: inter.indices(in.W), TasksPerProc: 1}, true, nil
}

// VerifyUnit checks a Solution against an instance for the µ=1 problem.
func VerifyUnit(in *Instance, sol Solution) error {
	if len(sol.Procs) != in.M {
		return fmt.Errorf("offline: %d processors, want %d", len(sol.Procs), in.M)
	}
	return verifyCommonSlots(in, sol, in.W)
}

// VerifyFlexible checks a Solution against an instance for the µ=∞
// problem: k processors, each with ⌈m/k⌉ tasks, sharing ⌈m/k⌉·w slots.
func VerifyFlexible(in *Instance, sol Solution) error {
	k := len(sol.Procs)
	if k == 0 || k > in.M {
		return fmt.Errorf("offline: %d processors for %d tasks", k, in.M)
	}
	perProc := (in.M + k - 1) / k
	if sol.TasksPerProc != perProc {
		return fmt.Errorf("offline: %d tasks per processor, want %d", sol.TasksPerProc, perProc)
	}
	return verifyCommonSlots(in, sol, perProc*in.W)
}

func verifyCommonSlots(in *Instance, sol Solution, need int) error {
	if len(sol.SlotsUsed) < need {
		return fmt.Errorf("offline: %d slots, need %d", len(sol.SlotsUsed), need)
	}
	seen := map[int]bool{}
	for _, t := range sol.SlotsUsed {
		if t < 0 || t >= in.Slots() {
			return fmt.Errorf("offline: slot %d out of range", t)
		}
		if seen[t] {
			return fmt.Errorf("offline: slot %d repeated", t)
		}
		seen[t] = true
		for _, q := range sol.Procs {
			if q < 0 || q >= len(in.Up) {
				return fmt.Errorf("offline: processor %d out of range", q)
			}
			if !in.Up[q][t] {
				return fmt.Errorf("offline: processor %d not UP at slot %d", q, t)
			}
		}
	}
	return nil
}
