package offline

import (
	"testing"

	"tightsched/internal/rng"
)

// naiveUnit answers OFFLINE-COUPLED(µ=1) by full enumeration of processor
// subsets, as a reference for the branch-and-bound solver.
func naiveUnit(in *Instance) bool {
	p := len(in.Up)
	n := in.Slots()
	var procs []int
	var rec func(start int) bool
	rec = func(start int) bool {
		if len(procs) == in.M {
			common := 0
			for t := 0; t < n; t++ {
				all := true
				for _, q := range procs {
					if !in.Up[q][t] {
						all = false
						break
					}
				}
				if all {
					common++
				}
			}
			return common >= in.W
		}
		for q := start; q < p; q++ {
			procs = append(procs, q)
			if rec(q + 1) {
				return true
			}
			procs = procs[:len(procs)-1]
		}
		return false
	}
	return rec(0)
}

// randomInstance draws a p×n availability matrix with UP probability pUp.
func randomInstance(stream *rng.Stream, p, n, m, w int, pUp float64) *Instance {
	up := make([][]bool, p)
	for q := range up {
		up[q] = make([]bool, n)
		for t := range up[q] {
			up[q][t] = stream.Bernoulli(pUp)
		}
	}
	return &Instance{Up: up, M: m, W: w}
}

func TestInstanceValidate(t *testing.T) {
	good := &Instance{Up: [][]bool{{true}, {false}}, M: 1, W: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Instance{
		{M: 1, W: 1}, // empty
		{Up: [][]bool{{true}, {true, false}}, M: 1, W: 1}, // ragged
		{Up: [][]bool{{true}}, M: 0, W: 1},                // m too small
		{Up: [][]bool{{true}}, M: 2, W: 1},                // m > p
		{Up: [][]bool{{true}}, M: 1, W: 0},                // w too small
	}
	for i, in := range bad {
		if in.Validate() == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestSolveUnitKnownInstances(t *testing.T) {
	// 3 processors, 4 slots. P0 and P2 share slots 0 and 2.
	in := &Instance{
		Up: [][]bool{
			{true, false, true, false},
			{false, true, false, true},
			{true, true, true, false},
		},
		M: 2, W: 2,
	}
	sol, ok, err := SolveUnit(in)
	if err != nil || !ok {
		t.Fatalf("satisfiable instance rejected: %v", err)
	}
	if err := VerifyUnit(in, sol); err != nil {
		t.Fatal(err)
	}
	// Needing 3 common slots among 2 processors is impossible here.
	in.W = 3
	if _, ok, _ := SolveUnit(in); ok {
		t.Fatal("unsatisfiable instance accepted")
	}
}

func TestSolveUnitMatchesNaive(t *testing.T) {
	stream := rng.New(7)
	for trial := 0; trial < 300; trial++ {
		p := stream.IntRange(2, 7)
		n := stream.IntRange(2, 12)
		m := stream.IntRange(1, p)
		w := stream.IntRange(1, n)
		in := randomInstance(stream, p, n, m, w, stream.Uniform(0.2, 0.9))
		sol, ok, err := SolveUnit(in)
		if err != nil {
			t.Fatal(err)
		}
		if want := naiveUnit(in); ok != want {
			t.Fatalf("trial %d: solver=%v naive=%v (p=%d n=%d m=%d w=%d)", trial, ok, want, p, n, m, w)
		}
		if ok {
			if err := VerifyUnit(in, sol); err != nil {
				t.Fatalf("trial %d: invalid witness: %v", trial, err)
			}
		}
	}
}

func TestSolveFlexibleFoldsTasks(t *testing.T) {
	// Only one processor is ever UP, but for 6 slots: with µ=∞ it can run
	// both tasks itself (2 tasks × w=3 = 6 slots); µ=1 needs 2 processors.
	in := &Instance{
		Up: [][]bool{
			{true, true, true, true, true, true},
			{false, false, false, false, false, false},
		},
		M: 2, W: 3,
	}
	if _, ok, _ := SolveUnit(in); ok {
		t.Fatal("µ=1 should fail with a single live processor")
	}
	sol, ok, err := SolveFlexible(in)
	if err != nil || !ok {
		t.Fatalf("µ=∞ should fold tasks: %v", err)
	}
	if len(sol.Procs) != 1 || sol.TasksPerProc != 2 {
		t.Fatalf("unexpected solution %+v", sol)
	}
	if err := VerifyFlexible(in, sol); err != nil {
		t.Fatal(err)
	}
}

func TestSolveFlexibleSubsumesUnit(t *testing.T) {
	// Whenever µ=1 succeeds, µ=∞ must too.
	stream := rng.New(8)
	for trial := 0; trial < 200; trial++ {
		p := stream.IntRange(2, 6)
		n := stream.IntRange(2, 10)
		m := stream.IntRange(1, p)
		w := stream.IntRange(1, 3)
		in := randomInstance(stream, p, n, m, w, stream.Uniform(0.3, 0.9))
		_, unitOK, _ := SolveUnit(in)
		sol, flexOK, _ := SolveFlexible(in)
		if unitOK && !flexOK {
			t.Fatalf("trial %d: µ=∞ weaker than µ=1", trial)
		}
		if flexOK {
			if err := VerifyFlexible(in, sol); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

func TestGreedySoundness(t *testing.T) {
	stream := rng.New(9)
	greedyHits, exactHits := 0, 0
	for trial := 0; trial < 200; trial++ {
		p := stream.IntRange(2, 7)
		n := stream.IntRange(2, 12)
		m := stream.IntRange(1, p)
		w := stream.IntRange(1, n/2+1)
		in := randomInstance(stream, p, n, m, w, stream.Uniform(0.3, 0.9))
		gsol, gok, err := GreedyUnit(in)
		if err != nil {
			t.Fatal(err)
		}
		_, eok, _ := SolveUnit(in)
		if gok {
			greedyHits++
			// Greedy may be incomplete but must never be unsound.
			if err := VerifyUnit(in, gsol); err != nil {
				t.Fatalf("trial %d: greedy produced invalid witness: %v", trial, err)
			}
			if !eok {
				t.Fatalf("trial %d: greedy found a solution the exact solver missed", trial)
			}
		}
		if eok {
			exactHits++
		}
	}
	if greedyHits == 0 || exactHits < greedyHits {
		t.Fatalf("degenerate test: greedy=%d exact=%d", greedyHits, exactHits)
	}
}

func TestVerifyUnitRejectsBadWitness(t *testing.T) {
	in := &Instance{
		Up: [][]bool{{true, true}, {true, false}},
		M:  2, W: 1,
	}
	bad := []Solution{
		{Procs: []int{0}, SlotsUsed: []int{0}},    // wrong proc count
		{Procs: []int{0, 1}, SlotsUsed: []int{}},  // too few slots
		{Procs: []int{0, 1}, SlotsUsed: []int{1}}, // P1 not UP at 1
		{Procs: []int{0, 1}, SlotsUsed: []int{5}}, // out of range
		{Procs: []int{0, 9}, SlotsUsed: []int{0}}, // bad proc index
	}
	for i, sol := range bad {
		if VerifyUnit(in, sol) == nil {
			t.Fatalf("bad witness %d accepted", i)
		}
	}
	dup := &Instance{Up: [][]bool{{true, true}}, M: 1, W: 2}
	if VerifyUnit(dup, Solution{Procs: []int{0}, SlotsUsed: []int{1, 1}}) == nil {
		t.Fatal("duplicate slots accepted")
	}
}

func TestBitset(t *testing.T) {
	b := newBitset(130)
	for _, i := range []int{0, 63, 64, 129} {
		b.set(i)
		if !b.get(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.count() != 4 {
		t.Fatalf("count = %d", b.count())
	}
	idx := b.indices(-1)
	if len(idx) != 4 || idx[0] != 0 || idx[3] != 129 {
		t.Fatalf("indices = %v", idx)
	}
	if got := b.indices(2); len(got) != 2 {
		t.Fatalf("capped indices = %v", got)
	}
	other := newBitset(130)
	other.set(63)
	other.set(100)
	inter := b.and(other)
	if inter.count() != 1 || !inter.get(63) {
		t.Fatalf("and: %v", inter.indices(-1))
	}
	c := b.clone()
	c.andInPlace(other)
	if c.count() != 1 || b.count() != 4 {
		t.Fatal("andInPlace/clone aliasing")
	}
}
