package offline

import (
	"testing"

	"tightsched/internal/rng"
)

// naiveENCD answers ENCD by full enumeration over subsets of V.
func naiveENCD(g *Bipartite, a, b int) bool {
	var chosen []int
	var rec func(start int) bool
	rec = func(start int) bool {
		if len(chosen) == a {
			common := 0
			for w := 0; w < g.NW; w++ {
				all := true
				for _, v := range chosen {
					if !g.Edge[v][w] {
						all = false
						break
					}
				}
				if all {
					common++
				}
			}
			return common >= b
		}
		for v := start; v < g.NV; v++ {
			chosen = append(chosen, v)
			if rec(v + 1) {
				return true
			}
			chosen = chosen[:len(chosen)-1]
		}
		return false
	}
	return rec(0)
}

func TestSolveENCDMatchesNaive(t *testing.T) {
	stream := rng.New(31)
	for trial := 0; trial < 300; trial++ {
		nv := stream.IntRange(2, 6)
		nw := stream.IntRange(2, 8)
		a := stream.IntRange(1, nv)
		b := stream.IntRange(1, nw)
		g := RandomBipartite(nv, nw, stream.Uniform(0.2, 0.9), stream)
		u1, u2, ok, err := SolveENCD(g, a, b)
		if err != nil {
			t.Fatal(err)
		}
		if want := naiveENCD(g, a, b); ok != want {
			t.Fatalf("trial %d: solver=%v naive=%v", trial, ok, want)
		}
		if ok {
			if err := VerifyBiclique(g, u1, u2, a, b); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
}

func TestSolveENCDValidation(t *testing.T) {
	g := RandomBipartite(3, 3, 0.5, rng.New(1))
	if _, _, _, err := SolveENCD(g, 0, 1); err == nil {
		t.Fatal("a=0 accepted")
	}
	if _, _, _, err := SolveENCD(g, 1, 4); err == nil {
		t.Fatal("b>|W| accepted")
	}
	if (&Bipartite{NV: 1, NW: 1}).Validate() == nil {
		t.Fatal("missing edge rows accepted")
	}
}

// TestReductionUnit is the experimental verification of Theorem 4.1(i):
// over random ENCD instances, the reduction to OFFLINE-COUPLED(µ=1)
// preserves satisfiability exactly.
func TestReductionUnit(t *testing.T) {
	stream := rng.New(32)
	sat, unsat := 0, 0
	for trial := 0; trial < 300; trial++ {
		nv := stream.IntRange(2, 6)
		nw := stream.IntRange(2, 8)
		a := stream.IntRange(1, nv)
		b := stream.IntRange(1, nw)
		g := RandomBipartite(nv, nw, stream.Uniform(0.2, 0.95), stream)
		_, _, encdOK, err := SolveENCD(g, a, b)
		if err != nil {
			t.Fatal(err)
		}
		in, err := ReduceENCDToUnit(g, a, b)
		if err != nil {
			t.Fatal(err)
		}
		_, schedOK, err := SolveUnit(in)
		if err != nil {
			t.Fatal(err)
		}
		if encdOK != schedOK {
			t.Fatalf("trial %d: ENCD=%v but reduced instance=%v", trial, encdOK, schedOK)
		}
		if encdOK {
			sat++
		} else {
			unsat++
		}
	}
	if sat == 0 || unsat == 0 {
		t.Fatalf("degenerate coverage: sat=%d unsat=%d", sat, unsat)
	}
}

// TestReductionFlexible verifies Theorem 4.1(ii): the padded reduction to
// OFFLINE-COUPLED(µ=∞) preserves satisfiability, the padding forcing
// exactly a processors to be used.
func TestReductionFlexible(t *testing.T) {
	stream := rng.New(33)
	sat, unsat := 0, 0
	for trial := 0; trial < 200; trial++ {
		nv := stream.IntRange(2, 5)
		nw := stream.IntRange(2, 6)
		a := stream.IntRange(1, nv)
		b := stream.IntRange(1, nw)
		g := RandomBipartite(nv, nw, stream.Uniform(0.2, 0.95), stream)
		_, _, encdOK, err := SolveENCD(g, a, b)
		if err != nil {
			t.Fatal(err)
		}
		in, err := ReduceENCDToFlexible(g, a, b)
		if err != nil {
			t.Fatal(err)
		}
		sol, schedOK, err := SolveFlexible(in)
		if err != nil {
			t.Fatal(err)
		}
		if encdOK != schedOK {
			t.Fatalf("trial %d: ENCD=%v but reduced µ=∞ instance=%v (a=%d b=%d)",
				trial, encdOK, schedOK, a, b)
		}
		if schedOK && len(sol.Procs) != a {
			t.Fatalf("trial %d: padding failed to force %d processors (got %d)",
				trial, a, len(sol.Procs))
		}
		if encdOK {
			sat++
		} else {
			unsat++
		}
	}
	if sat == 0 || unsat == 0 {
		t.Fatalf("degenerate coverage: sat=%d unsat=%d", sat, unsat)
	}
}

// TestReductionWitnessRoundTrip converts a witness of the reduced problem
// back to a bi-clique, closing the loop of the Theorem 4.1(i) proof.
func TestReductionWitnessRoundTrip(t *testing.T) {
	stream := rng.New(34)
	for trial := 0; trial < 100; trial++ {
		g := RandomBipartite(5, 7, 0.7, stream)
		a, b := 2, 3
		in, err := ReduceENCDToUnit(g, a, b)
		if err != nil {
			t.Fatal(err)
		}
		sol, ok, err := SolveUnit(in)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			continue
		}
		// Processors = U1, slots = U2.
		if err := VerifyBiclique(g, sol.Procs, sol.SlotsUsed[:b], a, b); err != nil {
			t.Fatalf("trial %d: witness does not map back to a biclique: %v", trial, err)
		}
	}
}

func BenchmarkSolveUnit(b *testing.B) {
	stream := rng.New(35)
	in := randomInstance(stream, 20, 40, 6, 8, 0.7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SolveUnit(in); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveENCD(b *testing.B) {
	stream := rng.New(36)
	g := RandomBipartite(14, 18, 0.6, stream)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := SolveENCD(g, 5, 6); err != nil {
			b.Fatal(err)
		}
	}
}
