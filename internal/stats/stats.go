// Package stats provides the small set of summary statistics used by the
// experiment harness: means, standard deviations, quantiles, and a compact
// Summary type for reporting distributions of makespans and relative
// differences.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (denominator n-1).
// It returns 0 for a single observation and NaN for an empty slice.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// Stdev returns the unbiased sample standard deviation of xs.
func Stdev(xs []float64) float64 {
	v := Variance(xs)
	if math.IsNaN(v) {
		return v
	}
	return math.Sqrt(v)
}

// Min returns the minimum of xs, or NaN if xs is empty.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN if xs is empty.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns NaN for empty input
// and panics for q outside [0,1].
func Quantile(xs []float64, q float64) float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted is Quantile over an already ascending-sorted sample; it
// performs no copy or sort, so one sorted copy can serve many quantiles.
func QuantileSorted(sorted []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: quantile %v outside [0,1]", q))
	}
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Summary is a compact description of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stdev  float64
	Min    float64
	Median float64
	Max    float64
}

// Summarize computes a Summary of xs. All fields of a summary over an empty
// sample are NaN except N. The order statistics (min, median, max) come
// from a single sorted copy instead of three independent scans; mean and
// standard deviation still accumulate in the original sample order, so
// their floating-point results are unchanged.
func Summarize(xs []float64) Summary {
	s := Summary{
		N:     len(xs),
		Mean:  Mean(xs),
		Stdev: Stdev(xs),
	}
	if len(xs) == 0 {
		s.Min, s.Median, s.Max = math.NaN(), math.NaN(), math.NaN()
		return s
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Median = QuantileSorted(sorted, 0.5)
	s.Max = sorted[len(sorted)-1]
	return s
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g",
		s.N, s.Mean, s.Stdev, s.Min, s.Median, s.Max)
}

// Welford accumulates a running mean and variance without storing samples.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations added.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (NaN when empty).
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Stdev returns the running unbiased sample standard deviation.
func (w *Welford) Stdev() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	if w.n == 1 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// Merge folds another accumulator into w (Chan et al.'s pairwise update),
// as if every observation added to o had been added to w. It lets
// parallel shards each keep a local Welford and combine at the end.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	na, nb := float64(w.n), float64(o.n)
	n := na + nb
	d := o.mean - w.mean
	w.mean += d * nb / n
	w.m2 += o.m2 + d*d*na*nb/n
	w.n += o.n
}
