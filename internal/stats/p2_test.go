package stats

import (
	"math"
	"sort"
	"testing"
)

// lcg is a tiny deterministic generator so the P² accuracy tests never
// depend on math/rand's sequence across Go versions.
type lcg uint64

func (l *lcg) next() float64 {
	*l = *l*6364136223846793005 + 1442695040888963407
	return float64(*l>>11) / float64(1<<53)
}

func TestQuantileSortedMatchesQuantile(t *testing.T) {
	r := lcg(1)
	xs := make([]float64, 257)
	for i := range xs {
		xs[i] = r.next() * 100
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.99, 1} {
		if got, want := QuantileSorted(sorted, q), Quantile(xs, q); got != want {
			t.Fatalf("QuantileSorted(%v) = %v, Quantile = %v", q, got, want)
		}
	}
	if !math.IsNaN(QuantileSorted(nil, 0.5)) {
		t.Fatal("empty QuantileSorted should be NaN")
	}
	if QuantileSorted([]float64{7}, 0.9) != 7 {
		t.Fatal("singleton QuantileSorted")
	}
}

func TestQuantileSortedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for q outside [0,1]")
		}
	}()
	QuantileSorted([]float64{1, 2}, 1.5)
}

func TestP2SmallSamplesExact(t *testing.T) {
	s := NewP2(0.5)
	if !math.IsNaN(s.Quantile()) {
		t.Fatal("empty P2 should be NaN")
	}
	for _, x := range []float64{5, 1, 3} {
		s.Add(x)
	}
	if s.N() != 3 {
		t.Fatalf("N = %d, want 3", s.N())
	}
	if got := s.Quantile(); got != 3 {
		t.Fatalf("median of {1,3,5} = %v, want 3", got)
	}
}

func TestP2Accuracy(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    float64
		gen  func(r *lcg) float64
	}{
		{"uniform-median", 0.5, func(r *lcg) float64 { return r.next() }},
		{"uniform-p95", 0.95, func(r *lcg) float64 { return r.next() }},
		{"exp-median", 0.5, func(r *lcg) float64 { return -math.Log(1 - r.next()) }},
		{"squared-p90", 0.9, func(r *lcg) float64 { u := r.next(); return u * u }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := lcg(42)
			s := NewP2(tc.p)
			const n = 50000
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = tc.gen(&r)
				s.Add(xs[i])
			}
			exact := Quantile(xs, tc.p)
			got := s.Quantile()
			spread := Quantile(xs, 0.75) - Quantile(xs, 0.25)
			if math.Abs(got-exact) > 0.05*spread {
				t.Fatalf("P2(%v) = %v, exact %v (iqr %v)", tc.p, got, exact, spread)
			}
		})
	}
}

func TestP2Monotone(t *testing.T) {
	// Ascending input keeps markers ordered and the estimate within range.
	s := NewP2(0.5)
	for i := 0; i < 1000; i++ {
		s.Add(float64(i))
	}
	got := s.Quantile()
	if got < 0 || got > 999 {
		t.Fatalf("median estimate %v outside data range", got)
	}
	if math.Abs(got-499.5) > 50 {
		t.Fatalf("median of 0..999 estimated at %v", got)
	}
}

func TestP2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for p outside (0,1)")
		}
	}()
	NewP2(1)
}

func TestWelfordMerge(t *testing.T) {
	r := lcg(7)
	xs := make([]float64, 1001)
	for i := range xs {
		xs[i] = r.next()*10 - 5
	}
	var whole Welford
	for _, x := range xs {
		whole.Add(x)
	}
	for _, cut := range []int{0, 1, 500, 1000, 1001} {
		var a, b Welford
		for _, x := range xs[:cut] {
			a.Add(x)
		}
		for _, x := range xs[cut:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.N() != whole.N() {
			t.Fatalf("cut %d: N = %d, want %d", cut, a.N(), whole.N())
		}
		if !almost(a.Mean(), whole.Mean(), 1e-9) {
			t.Fatalf("cut %d: mean %v, want %v", cut, a.Mean(), whole.Mean())
		}
		if !almost(a.Stdev(), whole.Stdev(), 1e-9) {
			t.Fatalf("cut %d: stdev %v, want %v", cut, a.Stdev(), whole.Stdev())
		}
	}
	// Merging into an empty accumulator copies.
	var empty Welford
	empty.Merge(whole)
	if empty.N() != whole.N() || empty.Mean() != whole.Mean() {
		t.Fatal("merge into empty should copy")
	}
}

func TestSummarizeSinglePassParity(t *testing.T) {
	r := lcg(13)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = r.next() * 1000
	}
	s := Summarize(xs)
	if s.Min != Min(xs) || s.Max != Max(xs) || s.Median != Median(xs) {
		t.Fatalf("order statistics diverge from direct scans: %+v", s)
	}
	if s.Mean != Mean(xs) || s.Stdev != Stdev(xs) {
		t.Fatalf("moments diverge from direct scans: %+v", s)
	}
}
