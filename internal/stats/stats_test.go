package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	if !almost(Mean([]float64{1, 2, 3, 4}), 2.5, 1e-12) {
		t.Fatal("mean of 1..4")
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("mean of empty should be NaN")
	}
	if !almost(Mean([]float64{-5}), -5, 0) {
		t.Fatal("mean of singleton")
	}
}

func TestVarianceAndStdev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 denominator: 32/7.
	if !almost(Variance(xs), 32.0/7.0, 1e-12) {
		t.Fatalf("variance = %v", Variance(xs))
	}
	if !almost(Stdev(xs), math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("stdev = %v", Stdev(xs))
	}
	if Variance([]float64{42}) != 0 {
		t.Fatal("variance of singleton should be 0")
	}
	if !math.IsNaN(Variance(nil)) {
		t.Fatal("variance of empty should be NaN")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min/max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("min/max of empty should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	// Interpolation between order statistics.
	if got := Quantile([]float64{0, 10}, 0.25); !almost(got, 2.5, 1e-12) {
		t.Fatalf("interpolated quantile = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("quantile of empty should be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 4}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 4 {
		t.Fatalf("Quantile mutated input: %v", xs)
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Quantile(q=2) did not panic")
		}
	}()
	Quantile([]float64{1}, 2)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.N != 3 || !almost(s.Mean, 2, 1e-12) || !almost(s.Median, 2, 1e-12) ||
		s.Min != 1 || s.Max != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty summary string")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	if err := quick.Check(func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var w Welford
		for i, r := range raw {
			xs[i] = float64(r) / 3.7
			w.Add(xs[i])
		}
		return almost(w.Mean(), Mean(xs), 1e-9) &&
			almost(w.Stdev(), Stdev(xs), 1e-9) &&
			w.N() == len(xs)
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordEmpty(t *testing.T) {
	var w Welford
	if !math.IsNaN(w.Mean()) || !math.IsNaN(w.Stdev()) {
		t.Fatal("empty Welford should report NaN")
	}
	w.Add(5)
	if w.Stdev() != 0 {
		t.Fatal("single-observation stdev should be 0")
	}
}

// Property: variance is translation-invariant and scales quadratically.
func TestVarianceProperties(t *testing.T) {
	if err := quick.Check(func(raw []uint8, shift uint8) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, len(raw))
		shifted := make([]float64, len(raw))
		scaled := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r)
			shifted[i] = xs[i] + float64(shift)
			scaled[i] = 3 * xs[i]
		}
		v := Variance(xs)
		return almost(Variance(shifted), v, 1e-6*(1+v)) &&
			almost(Variance(scaled), 9*v, 1e-6*(1+9*v))
	}, nil); err != nil {
		t.Fatal(err)
	}
}
