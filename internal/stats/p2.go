package stats

import (
	"fmt"
	"math"
	"sort"
)

// P2 is the P² streaming quantile estimator of Jain & Chlamtac (1985):
// five markers track the running minimum, maximum, target quantile and
// the two quantiles halfway to each extreme, adjusting their heights by
// piecewise-parabolic interpolation as observations arrive. Memory is
// O(1) regardless of stream length, which is what lets journal replay
// summarize millions of makespans without materializing them.
//
// The estimate is exact until five observations have been seen and an
// approximation afterwards; for smooth unimodal distributions the error
// is typically well under one percent of the interquartile range. The
// zero value is not ready to use — construct with NewP2.
type P2 struct {
	p float64
	n int
	// q are the marker heights, pos their current (1-based) positions in
	// the observation count, want the desired positions, and dWant the
	// per-observation desired-position increments.
	q     [5]float64
	pos   [5]float64
	want  [5]float64
	dWant [5]float64
}

// NewP2 returns a P² estimator for the p-quantile, 0 < p < 1.
func NewP2(p float64) *P2 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: P2 quantile %v outside (0,1)", p))
	}
	s := &P2{p: p}
	s.dWant = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return s
}

// Add incorporates one observation.
func (s *P2) Add(x float64) {
	if s.n < 5 {
		s.q[s.n] = x
		s.n++
		if s.n == 5 {
			sort.Float64s(s.q[:])
			for i := range s.pos {
				s.pos[i] = float64(i + 1)
			}
			s.want = [5]float64{1, 1 + 2*s.p, 1 + 4*s.p, 3 + 2*s.p, 5}
		}
		return
	}
	// Locate the cell k with q[k] <= x < q[k+1], extending the extremes.
	var k int
	switch {
	case x < s.q[0]:
		s.q[0] = x
		k = 0
	case x >= s.q[4]:
		s.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < s.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		s.pos[i]++
	}
	for i := range s.want {
		s.want[i] += s.dWant[i]
	}
	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := s.want[i] - s.pos[i]
		if (d >= 1 && s.pos[i+1]-s.pos[i] > 1) || (d <= -1 && s.pos[i-1]-s.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := s.parabolic(i, sign)
			if s.q[i-1] < h && h < s.q[i+1] {
				s.q[i] = h
			} else {
				s.q[i] = s.linear(i, sign)
			}
			s.pos[i] += sign
		}
	}
	s.n++
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i one position in direction d (±1).
func (s *P2) parabolic(i int, d float64) float64 {
	pi, pm, pp := s.pos[i], s.pos[i-1], s.pos[i+1]
	return s.q[i] + d/(pp-pm)*((pi-pm+d)*(s.q[i+1]-s.q[i])/(pp-pi)+
		(pp-pi-d)*(s.q[i]-s.q[i-1])/(pi-pm))
}

// linear is the fallback height prediction when the parabola would break
// marker monotonicity.
func (s *P2) linear(i int, d float64) float64 {
	j := i + int(d)
	return s.q[i] + d*(s.q[j]-s.q[i])/(s.pos[j]-s.pos[i])
}

// N returns the number of observations added.
func (s *P2) N() int { return s.n }

// Quantile returns the current estimate of the p-quantile: exact (by
// interpolation over the buffered sample) below five observations, the
// middle marker's height afterwards. NaN when empty.
func (s *P2) Quantile() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	if s.n < 5 {
		buf := make([]float64, s.n)
		copy(buf, s.q[:s.n])
		sort.Float64s(buf)
		return QuantileSorted(buf, s.p)
	}
	return s.q[2]
}
