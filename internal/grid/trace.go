package grid

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// ParseTrace parses a JSONL arrival trace: one {"t", "app", "wmin",
// "deadline"} object per line, blank lines and #-comments skipped. The
// returned entries are validated the way ArrivalSpec.Validate would
// (non-decreasing t, positive wmin), so a parsed trace drops straight
// into an ArrivalSpec.
func ParseTrace(data []byte) ([]Arrival, error) {
	var entries []Arrival
	sc := bufio.NewScanner(bytes.NewReader(data))
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 || raw[0] == '#' {
			continue
		}
		var e Arrival
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("grid: trace line %d: %w", line, err)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("grid: trace: %w", err)
	}
	spec := ArrivalSpec{Kind: KindTrace, Trace: entries}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return entries, nil
}

// LoadTrace reads and parses a JSONL arrival trace file.
func LoadTrace(path string) ([]Arrival, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseTrace(data)
}
