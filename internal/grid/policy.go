package grid

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// AdmissionPolicy orders the waiting queue: whenever processors free up,
// the pending application with the smallest Priority value is admitted
// first (ties broken by earlier arrival, then arrival index — the engine
// never consults anything else, so a policy IS its priority function).
type AdmissionPolicy interface {
	Name() string
	// Priority scores a pending application at slot now; smaller runs
	// first. Scores may depend on now (aging policies) but must be
	// deterministic.
	Priority(a Arrival, now int64) float64
}

// PreemptionPolicy decides whether an arriving application that found no
// free processor block may evict a running one. The victim restarts from
// scratch when readmitted — exactly the paper's semantics for an
// enrolled processor going DOWN, applied to the whole application.
type PreemptionPolicy interface {
	Name() string
	// Victim returns the index into running of the application to evict
	// for candidate, or -1 to keep the candidate waiting. prio scores
	// applications with the campaign's admission policy.
	Victim(candidate Arrival, running []Arrival, now int64, prio func(Arrival, int64) float64) int
}

// The built-in admission policies.

type fcfsPolicy struct{}

func (fcfsPolicy) Name() string                        { return "fcfs" }
func (fcfsPolicy) Priority(a Arrival, _ int64) float64 { return float64(a.T) }

type sjfPolicy struct{}

func (sjfPolicy) Name() string                        { return "sjf" }
func (sjfPolicy) Priority(a Arrival, _ int64) float64 { return float64(a.Wmin) }

type edfPolicy struct{}

func (edfPolicy) Name() string { return "edf" }
func (edfPolicy) Priority(a Arrival, _ int64) float64 {
	if a.Deadline == 0 {
		return math.Inf(1) // no deadline: yield to every deadline-bound app
	}
	return float64(a.T + a.Deadline)
}

// The built-in preemption policies.

type noPreempt struct{}

func (noPreempt) Name() string { return "none" }
func (noPreempt) Victim(Arrival, []Arrival, int64, func(Arrival, int64) float64) int {
	return -1
}

// lowestPriority evicts the running application with the worst (largest)
// admission priority, provided it is strictly worse than the candidate's
// — so a preemption always improves the running set and the engine's
// per-slot preemption loop terminates.
type lowestPriority struct{}

func (lowestPriority) Name() string { return "lowest-priority" }
func (lowestPriority) Victim(candidate Arrival, running []Arrival, now int64, prio func(Arrival, int64) float64) int {
	cand := prio(candidate, now)
	victim, worst := -1, cand
	for i, r := range running {
		if p := prio(r, now); p > worst {
			victim, worst = i, p
		}
	}
	return victim
}

// The policy registries, mirroring sched.Register: string-keyed tables
// the built-ins self-register into at init, open to external policies,
// resolvable by name from sweep axes, journal headers, daemon specs and
// the façade. Factories are invoked once at registration to verify the
// policy's Name matches the registered key.

// AdmissionFactory returns a fresh admission policy instance.
type AdmissionFactory func() AdmissionPolicy

// PreemptionFactory returns a fresh preemption policy instance.
type PreemptionFactory func() PreemptionPolicy

var policies = struct {
	sync.RWMutex
	admission  map[string]AdmissionFactory
	preemption map[string]PreemptionFactory
}{
	admission:  map[string]AdmissionFactory{},
	preemption: map[string]PreemptionFactory{},
}

// RegisterAdmission makes an admission policy resolvable by name.
func RegisterAdmission(name string, f AdmissionFactory) error {
	if err := checkRegistration(name, f == nil, func() string { return f().Name() }); err != nil {
		return err
	}
	policies.Lock()
	defer policies.Unlock()
	if _, dup := policies.admission[name]; dup {
		return fmt.Errorf("grid: admission policy %q already registered", name)
	}
	policies.admission[name] = f
	return nil
}

// RegisterPreemption makes a preemption policy resolvable by name.
func RegisterPreemption(name string, f PreemptionFactory) error {
	if err := checkRegistration(name, f == nil, func() string { return f().Name() }); err != nil {
		return err
	}
	policies.Lock()
	defer policies.Unlock()
	if _, dup := policies.preemption[name]; dup {
		return fmt.Errorf("grid: preemption policy %q already registered", name)
	}
	policies.preemption[name] = f
	return nil
}

func checkRegistration(name string, nilFactory bool, built func() string) error {
	if name == "" {
		return fmt.Errorf("grid: Register with empty policy name")
	}
	if nilFactory {
		return fmt.Errorf("grid: Register(%q) with nil factory", name)
	}
	if got := built(); got != name {
		return fmt.Errorf("grid: Register(%q) factory builds a policy named %q", name, got)
	}
	return nil
}

// MustRegisterAdmission is RegisterAdmission that panics on error.
func MustRegisterAdmission(name string, f AdmissionFactory) {
	if err := RegisterAdmission(name, f); err != nil {
		panic(err)
	}
}

// MustRegisterPreemption is RegisterPreemption that panics on error.
func MustRegisterPreemption(name string, f PreemptionFactory) {
	if err := RegisterPreemption(name, f); err != nil {
		panic(err)
	}
}

// Admission returns a fresh admission policy by name.
func Admission(name string) (AdmissionPolicy, error) {
	policies.RLock()
	f, ok := policies.admission[name]
	policies.RUnlock()
	if !ok {
		return nil, fmt.Errorf("grid: unknown admission policy %q (have %v)", name, AdmissionNames())
	}
	return f(), nil
}

// Preemption returns a fresh preemption policy by name.
func Preemption(name string) (PreemptionPolicy, error) {
	policies.RLock()
	f, ok := policies.preemption[name]
	policies.RUnlock()
	if !ok {
		return nil, fmt.Errorf("grid: unknown preemption policy %q (have %v)", name, PreemptionNames())
	}
	return f(), nil
}

// AdmissionNames returns every registered admission policy name, sorted.
// The slice is a fresh copy: callers may mutate it freely.
func AdmissionNames() []string {
	policies.RLock()
	defer policies.RUnlock()
	names := make([]string, 0, len(policies.admission))
	for name := range policies.admission {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PreemptionNames returns every registered preemption policy name,
// sorted. The slice is a fresh copy.
func PreemptionNames() []string {
	policies.RLock()
	defer policies.RUnlock()
	names := make([]string, 0, len(policies.preemption))
	for name := range policies.preemption {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func init() {
	MustRegisterAdmission("fcfs", func() AdmissionPolicy { return fcfsPolicy{} })
	MustRegisterAdmission("sjf", func() AdmissionPolicy { return sjfPolicy{} })
	MustRegisterAdmission("edf", func() AdmissionPolicy { return edfPolicy{} })
	MustRegisterPreemption("none", func() PreemptionPolicy { return noPreempt{} })
	MustRegisterPreemption("lowest-priority", func() PreemptionPolicy { return lowestPriority{} })
}
