package grid

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"tightsched/internal/markov"
	"tightsched/internal/platform"
)

// countingTelemetry records gauge deltas and the miss counter.
type countingTelemetry struct {
	queued, running int
	misses          int
}

func (c *countingTelemetry) GridQueued(d int)  { c.queued += d }
func (c *countingTelemetry) GridRunning(d int) { c.running += d }
func (c *countingTelemetry) GridDeadlineMiss() { c.misses++ }

// testScenario builds a stable 4-processor grid: very reliable hosts so
// the engine-level properties (admission, preemption, reporting) are
// not drowned in churn.
func testScenario(arrivals []Arrival, admission, preemption string) Scenario {
	adm, err := Admission(admission)
	if err != nil {
		panic(err)
	}
	pre, err := Preemption(preemption)
	if err != nil {
		panic(err)
	}
	return Scenario{
		Platform:   platform.Homogeneous(4, 1, platform.UnboundedCapacity, 6, markov.PerState(0.999, 0.999, 0.999)),
		Shape:      Shape{M: 5, Iterations: 5, AppProcs: 2, Ncom: 6},
		Horizon:    5_000,
		Heuristic:  "IE",
		Seed:       11,
		Arrivals:   arrivals,
		Admission:  adm,
		Preemption: pre,
	}
}

// TestSimulateCompletesAndReports: two applications on a platform with
// room for both run to completion; reports come back in arrival order
// with consistent response, slowdown and makespan.
func TestSimulateCompletesAndReports(t *testing.T) {
	sc := testScenario([]Arrival{
		{T: 0, App: "a0", Wmin: 1, Deadline: 4_000},
		{T: 10, App: "a1", Wmin: 1},
	}, "fcfs", "none")
	tele := &countingTelemetry{}
	sc.Telemetry = tele
	rep, err := Simulate(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Apps) != 2 {
		t.Fatalf("reported %d apps, want 2", len(rep.Apps))
	}
	var makespan int64
	for i, a := range rep.Apps {
		if a.App != sc.Arrivals[i].App {
			t.Errorf("report %d is %q, want arrival order", i, a.App)
		}
		if !a.Completed {
			t.Errorf("%s did not complete on a near-reliable platform", a.App)
		}
		if a.Missed {
			t.Errorf("%s missed a %d-slot deadline despite completing at %d", a.App, a.Deadline, a.Completion)
		}
		if a.Response != a.Completion-a.Arrival {
			t.Errorf("%s response %d != completion %d - arrival %d", a.App, a.Response, a.Completion, a.Arrival)
		}
		if want := float64(a.Response) / float64(a.Bound); a.Slowdown != want {
			t.Errorf("%s slowdown %v, want response/bound %v", a.App, a.Slowdown, want)
		}
		if a.Slowdown < 1 {
			t.Errorf("%s slowdown %v below 1; bound not a lower bound", a.App, a.Slowdown)
		}
		if a.Completion > makespan {
			makespan = a.Completion
		}
	}
	if rep.Makespan != makespan {
		t.Errorf("makespan %d, want last completion %d", rep.Makespan, makespan)
	}
	// Both apps found a free block immediately: admitted at arrival.
	if rep.Apps[0].Admit != 0 || rep.Apps[1].Admit != 10 {
		t.Errorf("admit slots = %d, %d; want 0, 10 (no queueing)", rep.Apps[0].Admit, rep.Apps[1].Admit)
	}
	if tele.queued != 0 || tele.running != 0 {
		t.Errorf("telemetry gauges did not drain: queued %d running %d", tele.queued, tele.running)
	}
	if tele.misses != 0 {
		t.Errorf("telemetry counted %d misses, report shows none", tele.misses)
	}
}

// TestSimulatePreemptionRequeues: with one block and SJF admission, a
// light application arriving behind a heavy one evicts it under
// lowest-priority preemption; the victim restarts and still finishes.
// Under "none" the same scenario leaves the heavy app untouched.
func TestSimulatePreemptionRequeues(t *testing.T) {
	arrivals := []Arrival{
		{T: 0, App: "heavy", Wmin: 3},
		{T: 20, App: "light", Wmin: 1, Deadline: 2_000},
	}
	sc := testScenario(arrivals, "sjf", "lowest-priority")
	sc.Shape.AppProcs = 4 // one block: the whole platform
	tele := &countingTelemetry{}
	sc.Telemetry = tele
	rep, err := Simulate(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	heavy, light := rep.Apps[0], rep.Apps[1]
	if heavy.Preemptions == 0 {
		t.Fatal("heavy app was never preempted by the lighter arrival")
	}
	if light.Admit != 20 {
		t.Errorf("light app admitted at %d, want 20 (immediately, via eviction)", light.Admit)
	}
	if !heavy.Completed || !light.Completed {
		t.Errorf("completion = heavy %v light %v, want both (horizon is generous)", heavy.Completed, light.Completed)
	}
	if heavy.Completion <= light.Completion {
		t.Errorf("heavy finished at %d before light at %d despite restarting", heavy.Completion, light.Completion)
	}
	if tele.queued != 0 || tele.running != 0 {
		t.Errorf("telemetry gauges did not drain: queued %d running %d", tele.queued, tele.running)
	}

	noPre := testScenario(arrivals, "sjf", "none")
	noPre.Shape.AppProcs = 4
	rep2, err := Simulate(context.Background(), noPre)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Apps[0].Preemptions != 0 {
		t.Errorf("none policy preempted %d times", rep2.Apps[0].Preemptions)
	}
	if rep2.Apps[1].Admit <= 20 {
		t.Errorf("light app admitted at %d under none, want queued until heavy finishes", rep2.Apps[1].Admit)
	}
}

// TestSimulateDeterministic: equal scenarios produce equal reports, and
// arrivals at or past the horizon never enter the grid.
func TestSimulateDeterministic(t *testing.T) {
	arrivals := []Arrival{
		{T: 0, App: "a0", Wmin: 2, Deadline: 600},
		{T: 30, App: "a1", Wmin: 1, Deadline: 400},
		{T: 5_000, App: "late", Wmin: 1}, // at the horizon: excluded
	}
	sc := testScenario(arrivals, "edf", "lowest-priority")
	a, err := Simulate(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(context.Background(), testScenario(arrivals, "edf", "lowest-priority"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("equal scenarios produced different reports")
	}
	for _, app := range a.Apps {
		if app.App == "late" {
			t.Fatal("arrival at the horizon entered the grid")
		}
	}
	if len(a.Apps) != 2 {
		t.Fatalf("reported %d apps, want 2", len(a.Apps))
	}
}

// TestSimulateValidation: every malformed scenario is rejected with a
// message naming the defect.
func TestSimulateValidation(t *testing.T) {
	ok := func() Scenario { return testScenario([]Arrival{{T: 0, App: "a", Wmin: 1}}, "fcfs", "none") }
	cases := []struct {
		name    string
		mutate  func(*Scenario)
		wantErr string
	}{
		{"no platform", func(s *Scenario) { s.Platform = nil }, "without platform"},
		{"oversized block", func(s *Scenario) { s.Shape.AppProcs = 64 }, "exceeds platform size"},
		{"bad shape", func(s *Scenario) { s.Shape.M = 0 }, "invalid shape"},
		{"bad horizon", func(s *Scenario) { s.Horizon = 0 }, "horizon"},
		{"no admission", func(s *Scenario) { s.Admission = nil }, "admission"},
		{"no preemption", func(s *Scenario) { s.Preemption = nil }, "admission/preemption"},
		{"unordered arrivals", func(s *Scenario) {
			s.Arrivals = []Arrival{{T: 10, App: "a", Wmin: 1}, {T: 0, App: "b", Wmin: 1}}
		}, "out of order"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc := ok()
			tc.mutate(&sc)
			_, err := Simulate(context.Background(), sc)
			if err == nil {
				t.Fatal("scenario accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestSimulateDeadlineMissTelemetry: an impossible deadline is reported
// missed and counted by the telemetry exactly once.
func TestSimulateDeadlineMissTelemetry(t *testing.T) {
	sc := testScenario([]Arrival{{T: 0, App: "doomed", Wmin: 1, Deadline: 3}}, "fcfs", "none")
	tele := &countingTelemetry{}
	sc.Telemetry = tele
	rep, err := Simulate(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Apps[0].Missed {
		t.Fatal("3-slot deadline not reported missed")
	}
	if tele.misses != 1 {
		t.Errorf("telemetry counted %d misses, want 1", tele.misses)
	}
}

// TestSimulateCancellation: the engine honors context cancellation.
func TestSimulateCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc := testScenario([]Arrival{{T: 0, App: "a", Wmin: 1}}, "fcfs", "none")
	if _, err := Simulate(ctx, sc); err == nil {
		t.Fatal("cancelled context accepted")
	}
}
