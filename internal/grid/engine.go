package grid

import (
	"context"
	"fmt"
	"slices"

	"tightsched/internal/app"
	"tightsched/internal/avail"
	"tightsched/internal/markov"
	"tightsched/internal/platform"
	"tightsched/internal/rng"
	"tightsched/internal/sim"
)

// Telemetry receives live grid gauges: the daemon's /metrics adapter
// implements it with atomics; the zero default is a no-op. Deltas (not
// absolutes) keep concurrent instances additive, and the engine undoes
// its remaining contributions when a simulation ends, so gauges return
// to their baseline.
type Telemetry interface {
	// GridQueued adjusts the waiting-queue depth.
	GridQueued(delta int)
	// GridRunning adjusts the number of admitted, running applications.
	GridRunning(delta int)
	// GridDeadlineMiss records one application missing its deadline.
	GridDeadlineMiss()
}

type noTelemetry struct{}

func (noTelemetry) GridQueued(int)    {}
func (noTelemetry) GridRunning(int)   {}
func (noTelemetry) GridDeadlineMiss() {}

// Scenario is one online grid simulation: a platform, one availability
// realization, a stream of applications, and the policies that arbitrate
// among them.
type Scenario struct {
	// Platform is the shared processor pool (heterogeneous speeds
	// welcome; see platform.GenerateTiered). Its Ncom is each admitted
	// application's master communication capacity.
	Platform *platform.Platform
	// Model is the ground-truth availability model; Platform.Model (or
	// the paper's Markov chains) when nil. Admitted applications
	// schedule against its fitted believed matrices, exactly as single
	// runs do.
	Model avail.Model
	// Shape is the per-application workload shape.
	Shape Shape
	// Horizon is the grid's observation window in slots: applications
	// still incomplete at the horizon are reported unfinished.
	Horizon int64
	// Heuristic schedules each admitted application's tasks (one of
	// sched.Names()).
	Heuristic string
	// Seed determines the availability realization, the per-application
	// run seeds, and nothing else; arrivals are materialized by the
	// caller (exp derives both from the same trial seed).
	Seed uint64
	// Arrivals is the application stream, non-decreasing in T. Arrivals
	// at or beyond Horizon never enter the grid and are not reported.
	Arrivals []Arrival
	// Admission orders the waiting queue; Preemption arbitrates between
	// arriving and running applications.
	Admission  AdmissionPolicy
	Preemption PreemptionPolicy
	// Telemetry receives live gauges (optional).
	Telemetry Telemetry
}

// AppReport is one application's outcome.
type AppReport struct {
	// App, Wmin, Arrival and Deadline echo the arrival record.
	App      string
	Wmin     int
	Arrival  int64
	Deadline int64
	// Admit is the slot of the application's final admission (-1 if it
	// never ran); Completion is the absolute completion slot (Horizon
	// when unfinished).
	Admit      int64
	Completion int64
	Completed  bool
	// Preemptions counts evictions; each restarts the application from
	// scratch.
	Preemptions int
	// Response is Completion - Arrival: queueing plus service (horizon-
	// truncated for unfinished applications).
	Response int64
	// Bound is Shape.Bound(Wmin), the crude service-time lower bound;
	// Slowdown is Response/Bound.
	Bound    int64
	Slowdown float64
	// Missed reports a violated deadline: completion after Arrival +
	// Deadline, or still unfinished at the horizon.
	Missed bool
}

// Report is a grid simulation's outcome: per-application reports in
// arrival order and the grid makespan (the last completion slot, or the
// horizon when any application is unfinished).
type Report struct {
	Apps     []AppReport
	Makespan int64
}

// Simulate runs one online grid scenario to its horizon. Everything —
// the availability walk, each admitted application's schedule, every
// policy decision — derives from the scenario alone, so equal scenarios
// produce equal reports on any machine.
func Simulate(ctx context.Context, sc Scenario) (Report, error) {
	if sc.Platform == nil {
		return Report{}, fmt.Errorf("grid: scenario without platform")
	}
	if err := sc.Platform.Validate(); err != nil {
		return Report{}, err
	}
	if err := sc.Shape.Validate(); err != nil {
		return Report{}, err
	}
	p := len(sc.Platform.Procs)
	if sc.Shape.AppProcs > p {
		return Report{}, fmt.Errorf("grid: block of %d processors exceeds platform size %d", sc.Shape.AppProcs, p)
	}
	if sc.Horizon <= 0 {
		return Report{}, fmt.Errorf("grid: horizon %d, want positive", sc.Horizon)
	}
	if sc.Admission == nil || sc.Preemption == nil {
		return Report{}, fmt.Errorf("grid: scenario without admission/preemption policy")
	}
	for i := 1; i < len(sc.Arrivals); i++ {
		if sc.Arrivals[i].T < sc.Arrivals[i-1].T {
			return Report{}, fmt.Errorf("grid: arrivals out of order at %d", i)
		}
	}

	e := &engine{sc: sc, tele: sc.Telemetry}
	if e.tele == nil {
		e.tele = noTelemetry{}
	}
	e.model = sc.Model
	if e.model == nil {
		e.model = sc.Platform.AvailModel()
	}
	e.walk = newWalk(e.model.Provider(sc.Platform.Matrices(), rng.NewKeyed(sc.Seed, 0x9a1c).Uint64(), false), p)
	e.free = make([]int, p)
	for q := range e.free {
		e.free[q] = q
	}
	for i := range sc.Arrivals {
		if sc.Arrivals[i].T < sc.Horizon {
			e.apps = append(e.apps, &appState{idx: i, arr: sc.Arrivals[i], admit: -1, bound: sc.Shape.Bound(sc.Arrivals[i].Wmin)})
		}
	}
	return e.run(ctx)
}

// appState tracks one application through the queue and its runs.
type appState struct {
	idx   int
	arr   Arrival
	bound int64
	// queue/run position.
	queued  bool
	running bool
	procs   []int
	// admit is the latest admission slot (-1 before the first).
	admit int64
	// completion/willComplete describe the scheduled run outcome:
	// absolute completion slot, and whether the run finishes its
	// iterations (false: it rides to the horizon incomplete).
	completion   int64
	willComplete bool
	preemptions  int
	report       AppReport
	done         bool
}

type engine struct {
	sc    Scenario
	model avail.Model
	tele  Telemetry
	walk  *walk
	free  []int // free processor indices, ascending
	apps  []*appState
	queue []*appState
	run_  []*appState // admitted, running applications
}

func (e *engine) run(ctx context.Context) (Report, error) {
	next := 0 // next un-enqueued arrival (apps is arrival-ordered)
	for {
		if err := ctx.Err(); err != nil {
			return Report{}, err
		}
		t := e.sc.Horizon
		if next < len(e.apps) && e.apps[next].arr.T < t {
			t = e.apps[next].arr.T
		}
		for _, a := range e.run_ {
			if a.completion < t {
				t = a.completion
			}
		}
		if t >= e.sc.Horizon {
			break
		}
		// Completions strictly precede arrivals within a slot: a block
		// freed at t is available to an application arriving at t.
		e.completeAt(t)
		for next < len(e.apps) && e.apps[next].arr.T == t {
			e.enqueue(e.apps[next])
			next++
		}
		if err := e.admit(ctx, t); err != nil {
			return Report{}, err
		}
		if err := e.preempt(ctx, t); err != nil {
			return Report{}, err
		}
	}
	// Horizon: finish runs scheduled to complete exactly at it, then
	// report everything still queued or running as unfinished.
	e.completeAt(e.sc.Horizon)
	for _, a := range slices.Clone(e.run_) {
		e.finish(a, e.sc.Horizon, false)
	}
	for _, a := range slices.Clone(e.queue) {
		e.dequeue(a)
		e.finish(a, e.sc.Horizon, false)
	}

	rep := Report{Apps: make([]AppReport, 0, len(e.apps))}
	for _, a := range e.apps {
		rep.Apps = append(rep.Apps, a.report)
		if c := a.report.Completion; c > rep.Makespan {
			rep.Makespan = c
		}
	}
	return rep, nil
}

// completeAt retires every running application whose scheduled
// completion is t, in arrival order.
func (e *engine) completeAt(t int64) {
	for _, a := range slices.Clone(e.run_) {
		if a.completion == t {
			e.finish(a, t, a.willComplete)
		}
	}
}

func (e *engine) enqueue(a *appState) {
	a.queued = true
	e.queue = append(e.queue, a)
	e.tele.GridQueued(1)
}

func (e *engine) dequeue(a *appState) {
	a.queued = false
	e.queue = slices.DeleteFunc(e.queue, func(x *appState) bool { return x == a })
	e.tele.GridQueued(-1)
}

// queueTop returns the waiting application the admission policy serves
// next: smallest priority, ties by arrival slot then arrival index.
func (e *engine) queueTop(now int64) *appState {
	var best *appState
	var bestPrio float64
	for _, a := range e.queue {
		p := e.sc.Admission.Priority(a.arr, now)
		if best == nil || p < bestPrio ||
			(p == bestPrio && (a.arr.T < best.arr.T || (a.arr.T == best.arr.T && a.idx < best.idx))) {
			best, bestPrio = a, p
		}
	}
	return best
}

// admit starts waiting applications while a full processor block is
// free, in admission-priority order.
func (e *engine) admit(ctx context.Context, now int64) error {
	for len(e.queue) > 0 && len(e.free) >= e.sc.Shape.AppProcs && now < e.sc.Horizon {
		a := e.queueTop(now)
		e.dequeue(a)
		if err := e.start(ctx, a, now); err != nil {
			return err
		}
	}
	return nil
}

// preempt lets the queue's best waiting application evict a running one
// when the policy finds a strictly lower-priority victim. The victim
// requeues (restarting from scratch on readmission) and the loop
// repeats: each round strictly improves the running set's priorities, so
// it terminates.
func (e *engine) preempt(ctx context.Context, now int64) error {
	for len(e.queue) > 0 && now < e.sc.Horizon {
		cand := e.queueTop(now)
		running := make([]Arrival, len(e.run_))
		for i, a := range e.run_ {
			running[i] = a.arr
		}
		vi := e.sc.Preemption.Victim(cand.arr, running, now, e.sc.Admission.Priority)
		if vi < 0 || vi >= len(e.run_) {
			return nil
		}
		victim := e.run_[vi]
		e.stop(victim)
		victim.preemptions++
		e.enqueue(victim)
		if err := e.admit(ctx, now); err != nil {
			return err
		}
	}
	return nil
}

// start admits a onto the lowest-indexed free block and simulates its
// run against the shared availability walk, scheduling its completion.
func (e *engine) start(ctx context.Context, a *appState, now int64) error {
	k := e.sc.Shape.AppProcs
	procs := slices.Clone(e.free[:k])
	e.free = slices.Clone(e.free[k:])
	sub := &platform.Platform{Procs: make([]platform.Processor, k), Ncom: e.sc.Platform.Ncom}
	for i, q := range procs {
		sub.Procs[i] = e.sc.Platform.Procs[q]
	}
	res, err := sim.RunContext(ctx, sim.Config{
		Platform:  sub,
		App:       app.Application{Tasks: e.sc.Shape.M, Tprog: 5 * a.arr.Wmin, Tdata: a.arr.Wmin, Iterations: e.sc.Shape.Iterations},
		Heuristic: e.sc.Heuristic,
		Seed:      rng.NewKeyed(e.sc.Seed, 0x0a44, uint64(a.idx), uint64(a.preemptions), uint64(now)).Uint64(),
		Cap:       e.sc.Horizon - now,
		Model:     e.model,
		Provider:  &window{walk: e.walk, procs: procs, offset: now},
	})
	if err != nil {
		return err
	}
	a.running = true
	a.procs = procs
	a.admit = now
	if res.Failed {
		a.completion, a.willComplete = e.sc.Horizon, false
	} else {
		a.completion, a.willComplete = now+res.Makespan, true
	}
	e.run_ = append(e.run_, a)
	e.tele.GridRunning(1)
	return nil
}

// stop removes a from the running set and returns its block to the free
// pool (kept ascending so the next grant is deterministic).
func (e *engine) stop(a *appState) {
	a.running = false
	e.run_ = slices.DeleteFunc(e.run_, func(x *appState) bool { return x == a })
	e.free = append(e.free, a.procs...)
	slices.Sort(e.free)
	a.procs = nil
	e.tele.GridRunning(-1)
}

// finish records a's final report at slot t. completed applications
// leave the running set; unfinished ones are horizon-truncated.
func (e *engine) finish(a *appState, t int64, completed bool) {
	if a.running {
		e.stop(a)
	}
	missed := a.arr.Deadline > 0 && (!completed || t > a.arr.T+a.arr.Deadline)
	a.done = true
	a.report = AppReport{
		App:         a.arr.App,
		Wmin:        a.arr.Wmin,
		Arrival:     a.arr.T,
		Deadline:    a.arr.Deadline,
		Admit:       a.admit,
		Completion:  t,
		Completed:   completed,
		Preemptions: a.preemptions,
		Response:    t - a.arr.T,
		Bound:       a.bound,
		Slowdown:    float64(t-a.arr.T) / float64(a.bound),
		Missed:      missed,
	}
	if missed {
		e.tele.GridDeadlineMiss()
	}
}

// walk is one trial's shared availability realization: the ground-truth
// provider walked once, slot by slot, with every vector cached so that
// application runs admitted at different slots on different blocks read
// the same history. States are one byte each; memory is horizon·p.
type walk struct {
	prov avail.StateProvider
	p    int
	hist []markov.State
	buf  []markov.State
}

func newWalk(prov avail.StateProvider, p int) *walk {
	return &walk{prov: prov, p: p, buf: make([]markov.State, p)}
}

func (w *walk) at(slot int64, procs []int, dst []markov.State) {
	for int64(len(w.hist))/int64(w.p) <= slot {
		w.prov.States(int64(len(w.hist))/int64(w.p), w.buf)
		w.hist = append(w.hist, w.buf...)
	}
	base := slot * int64(w.p)
	for i, q := range procs {
		dst[i] = w.hist[base+int64(q)]
	}
}

// window is a run's view of the shared walk: the engine's slot 0 is the
// admission slot, and only the granted block's processors are visible.
type window struct {
	walk   *walk
	procs  []int
	offset int64
}

func (v *window) States(slot int64, dst []markov.State) {
	v.walk.at(v.offset+slot, v.procs, dst)
}
