// Package grid is the online multi-application layer: where the paper
// (and every layer below) schedules ONE tightly-coupled application to
// completion, a grid serves a *stream* of applications arriving over
// time and competing for the same volatile processors. The package
// provides
//
//   - arrival processes — Poisson streams and recorded traces — that
//     materialize deterministically from a trial seed, so online
//     campaigns stay byte-identical across worker counts and resume;
//   - an admission + preemption policy registry mirroring sched.Register
//     (FCFS, SJF-by-wmin and deadline-aware EDF admission; no-preempt
//     and preempt-lowest-priority eviction ship built in);
//   - an online engine (Simulate) that carves exclusive processor
//     blocks out of one shared availability realization and runs each
//     admitted application through the existing sim engine;
//   - per-application SLO metrics (response, slowdown, deadline misses)
//     that exp aggregates into Table IV.
//
// The layers above consume it through exp.GridSweep / Session.RunOnline.
package grid

import (
	"fmt"
	"math"
	"slices"

	"tightsched/internal/rng"
)

// Arrival is one application's entry into the grid: when it arrives,
// how heavy its tasks are, and how long it is willing to wait.
type Arrival struct {
	// T is the arrival slot.
	T int64 `json:"t"`
	// App labels the application in reports.
	App string `json:"app"`
	// Wmin is the application's minimum per-task speed: tasks carry
	// Tprog = 5·Wmin program slots and Tdata = Wmin data slots, as in
	// the paper's scenarios.
	Wmin int `json:"wmin"`
	// Deadline is the SLO in slots after T; 0 means no deadline.
	Deadline int64 `json:"deadline"`
}

// Shape is the workload shape shared by every application in a grid
// scenario; arrivals vary only wmin and deadline.
type Shape struct {
	// M is the number of coupled tasks per iteration.
	M int
	// Iterations is the number of iterations per application.
	Iterations int
	// AppProcs is the exclusive processor block granted per application.
	AppProcs int
	// Ncom is the per-application master communication capacity.
	Ncom int
}

// Validate checks the shape parameters.
func (s Shape) Validate() error {
	if s.M <= 0 || s.Iterations <= 0 || s.AppProcs <= 0 || s.Ncom <= 0 {
		return fmt.Errorf("grid: invalid shape %+v, want all positive", s)
	}
	return nil
}

// Bound returns a crude lower bound on an application's service time in
// slots: the program download once, and per iteration the data messages
// at full port parallelism plus the coupled compute with tasks spread
// evenly over the block at the minimum conceivable speed. Real runs are
// slower (volatility, integral task splits, scheduling), so
// response/Bound is a pessimistic slowdown ≥ ~1; it is also the yard
// stick deadline factors multiply.
func (s Shape) Bound(wmin int) int64 {
	data := ceilDiv(s.M*wmin, s.Ncom)
	compute := wmin * ceilDiv(s.M, s.AppProcs)
	return int64(5*wmin) + int64(s.Iterations)*int64(data+compute)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Arrival process kinds.
const (
	KindPoisson = "poisson"
	KindTrace   = "trace"
)

// ArrivalSpec declares an arrival process. It is pure data — JSON-stable
// for journal headers and daemon specs — and materializes into a
// concrete arrival list from an rng stream, so the same spec and seed
// produce the same stream everywhere.
type ArrivalSpec struct {
	// Kind selects the process: KindPoisson or KindTrace.
	Kind string `json:"kind"`
	// Label names the process in tables and journal keys; defaults to
	// Kind. Sweeps with two processes of the same kind must label them.
	Label string `json:"label,omitempty"`

	// Poisson parameters: Apps arrivals with exponentially distributed
	// inter-arrival gaps of mean MeanGap slots; per-task speed uniform
	// on [WminLo, WminHi]; deadline = ceil(DeadlineFactor · Bound(wmin))
	// after arrival (0 disables deadlines).
	MeanGap        int64   `json:"meanGap,omitempty"`
	Apps           int     `json:"apps,omitempty"`
	WminLo         int     `json:"wminLo,omitempty"`
	WminHi         int     `json:"wminHi,omitempty"`
	DeadlineFactor float64 `json:"deadlineFactor,omitempty"`

	// Trace replays a recorded arrival log (the JSONL {t, app, wmin,
	// deadline} records of ParseTrace, or entries built directly).
	Trace []Arrival `json:"trace,omitempty"`
}

// Name returns the process's sweep-axis label.
func (a ArrivalSpec) Name() string {
	if a.Label != "" {
		return a.Label
	}
	return a.Kind
}

// Validate checks the spec.
func (a ArrivalSpec) Validate() error {
	switch a.Kind {
	case KindPoisson:
		if len(a.Trace) != 0 {
			return fmt.Errorf("grid: arrival %q: poisson spec carries trace entries", a.Name())
		}
		if a.MeanGap <= 0 {
			return fmt.Errorf("grid: arrival %q: meanGap %d, want positive", a.Name(), a.MeanGap)
		}
		if a.Apps <= 0 {
			return fmt.Errorf("grid: arrival %q: apps %d, want positive", a.Name(), a.Apps)
		}
		if a.WminLo <= 0 || a.WminHi < a.WminLo {
			return fmt.Errorf("grid: arrival %q: wmin range [%d, %d], want 0 < lo <= hi", a.Name(), a.WminLo, a.WminHi)
		}
		if a.DeadlineFactor < 0 {
			return fmt.Errorf("grid: arrival %q: deadlineFactor %g, want >= 0", a.Name(), a.DeadlineFactor)
		}
	case KindTrace:
		if len(a.Trace) == 0 {
			return fmt.Errorf("grid: arrival %q: trace spec has no entries", a.Name())
		}
		if a.MeanGap != 0 || a.Apps != 0 || a.WminLo != 0 || a.WminHi != 0 || a.DeadlineFactor != 0 {
			return fmt.Errorf("grid: arrival %q: trace spec carries poisson fields", a.Name())
		}
		prev := int64(0)
		for i, e := range a.Trace {
			if e.T < prev {
				return fmt.Errorf("grid: arrival %q: trace[%d] t=%d before trace[%d] t=%d", a.Name(), i, e.T, i-1, prev)
			}
			prev = e.T
			if e.App == "" {
				return fmt.Errorf("grid: arrival %q: trace[%d] has no app name", a.Name(), i)
			}
			if e.Wmin <= 0 {
				return fmt.Errorf("grid: arrival %q: trace[%d] wmin %d, want positive", a.Name(), i, e.Wmin)
			}
			if e.Deadline < 0 {
				return fmt.Errorf("grid: arrival %q: trace[%d] deadline %d, want >= 0", a.Name(), i, e.Deadline)
			}
		}
	case "":
		return fmt.Errorf("grid: arrival spec has no kind")
	default:
		return fmt.Errorf("grid: unknown arrival kind %q (choose %s or %s)", a.Kind, KindPoisson, KindTrace)
	}
	return nil
}

// Materialize turns the spec into a concrete arrival list. Poisson
// streams draw every gap, speed and deadline from stream (one seeded
// stream per trial keeps campaigns byte-deterministic across worker
// counts and resume); traces replay verbatim and consume nothing.
func (a ArrivalSpec) Materialize(stream *rng.Stream, shape Shape) []Arrival {
	if a.Kind == KindTrace {
		return slices.Clone(a.Trace)
	}
	arrivals := make([]Arrival, 0, a.Apps)
	t := int64(0)
	for i := 0; i < a.Apps; i++ {
		t += int64(math.Floor(-float64(a.MeanGap) * math.Log(1-stream.Float64())))
		wmin := stream.IntRange(a.WminLo, a.WminHi)
		var deadline int64
		if a.DeadlineFactor > 0 {
			deadline = int64(math.Ceil(a.DeadlineFactor * float64(shape.Bound(wmin))))
		}
		arrivals = append(arrivals, Arrival{
			T:        t,
			App:      fmt.Sprintf("%s-%03d", a.Name(), i),
			Wmin:     wmin,
			Deadline: deadline,
		})
	}
	return arrivals
}
