package grid

import (
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"

	"tightsched/internal/rng"
)

func testShape() Shape { return Shape{M: 5, Iterations: 5, AppProcs: 4, Ncom: 6} }

// TestAdmissionPriorities pins each built-in policy's ordering on a
// queue that separates them: FCFS by arrival slot, SJF by wmin, EDF by
// absolute deadline with deadline-free applications always last.
func TestAdmissionPriorities(t *testing.T) {
	queue := []Arrival{
		{T: 0, App: "early-heavy", Wmin: 3, Deadline: 5000},
		{T: 100, App: "light-lax", Wmin: 1, Deadline: 9000},
		{T: 200, App: "urgent", Wmin: 2, Deadline: 300},
		{T: 300, App: "no-deadline", Wmin: 1},
	}
	cases := []struct {
		policy string
		order  []string
	}{
		{"fcfs", []string{"early-heavy", "light-lax", "urgent", "no-deadline"}},
		{"sjf", []string{"light-lax", "no-deadline", "urgent", "early-heavy"}},
		{"edf", []string{"urgent", "early-heavy", "light-lax", "no-deadline"}},
	}
	for _, tc := range cases {
		t.Run(tc.policy, func(t *testing.T) {
			pol, err := Admission(tc.policy)
			if err != nil {
				t.Fatal(err)
			}
			sorted := append([]Arrival(nil), queue...)
			sort.SliceStable(sorted, func(i, j int) bool {
				pi, pj := pol.Priority(sorted[i], 400), pol.Priority(sorted[j], 400)
				if pi != pj {
					return pi < pj
				}
				return sorted[i].T < sorted[j].T // the engine's tie-break
			})
			var got []string
			for _, a := range sorted {
				got = append(got, a.App)
			}
			if !reflect.DeepEqual(got, tc.order) {
				t.Errorf("%s order = %v, want %v", tc.policy, got, tc.order)
			}
		})
	}
	edf, _ := Admission("edf")
	if p := edf.Priority(Arrival{T: 10, App: "free"}, 0); !math.IsInf(p, 1) {
		t.Errorf("edf priority of a deadline-free app = %v, want +Inf", p)
	}
}

// TestPreemptionVictimSelection: lowest-priority evicts the worst
// running application, and only when the candidate is strictly better —
// otherwise a preemption loop could thrash forever.
func TestPreemptionVictimSelection(t *testing.T) {
	pre, err := Preemption("lowest-priority")
	if err != nil {
		t.Fatal(err)
	}
	adm, _ := Admission("sjf")
	prio := adm.Priority
	running := []Arrival{
		{T: 0, App: "mid", Wmin: 2},
		{T: 10, App: "heavy", Wmin: 5},
		{T: 20, App: "light", Wmin: 1},
	}
	if v := pre.Victim(Arrival{T: 30, App: "cand", Wmin: 1}, running, 30, prio); v != 1 {
		t.Errorf("victim = %d, want 1 (the heaviest running app)", v)
	}
	// A candidate no better than every running app must wait.
	if v := pre.Victim(Arrival{T: 30, App: "cand", Wmin: 5}, running, 30, prio); v != -1 {
		t.Errorf("equal-priority candidate evicted %d, want -1", v)
	}

	none, err := Preemption("none")
	if err != nil {
		t.Fatal(err)
	}
	if v := none.Victim(Arrival{T: 30, App: "cand", Wmin: 1}, running, 30, prio); v != -1 {
		t.Errorf("none policy evicted %d, want -1", v)
	}
}

// TestPolicyRegistry: sorted listings, fresh instances, unknown names
// rejected with the available choices, and bad registrations refused.
func TestPolicyRegistry(t *testing.T) {
	adm, pre := AdmissionNames(), PreemptionNames()
	if !sort.StringsAreSorted(adm) || !sort.StringsAreSorted(pre) {
		t.Errorf("registry listings not sorted: %v, %v", adm, pre)
	}
	for _, want := range []string{"fcfs", "sjf", "edf"} {
		if !slicesContains(adm, want) {
			t.Errorf("admission registry %v missing built-in %q", adm, want)
		}
	}
	for _, want := range []string{"none", "lowest-priority"} {
		if !slicesContains(pre, want) {
			t.Errorf("preemption registry %v missing built-in %q", pre, want)
		}
	}
	if _, err := Admission("vip-first"); err == nil || !strings.Contains(err.Error(), "fcfs") {
		t.Errorf("unknown admission error %v should name the available policies", err)
	}
	if _, err := Preemption("chaos"); err == nil || !strings.Contains(err.Error(), "none") {
		t.Errorf("unknown preemption error %v should name the available policies", err)
	}
	if err := RegisterAdmission("fcfs", func() AdmissionPolicy { return fcfsPolicy{} }); err == nil {
		t.Error("duplicate registration accepted")
	}
	if err := RegisterAdmission("misnamed", func() AdmissionPolicy { return fcfsPolicy{} }); err == nil {
		t.Error("factory whose policy Name differs from the key accepted")
	}
}

func slicesContains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// TestPoissonMaterializeDeterministic: the same spec and stream key
// yield the same arrivals; a different trial key yields a different
// stream. This is the property grid campaigns' byte-determinism across
// worker counts and resume rests on.
func TestPoissonMaterializeDeterministic(t *testing.T) {
	spec := ArrivalSpec{Kind: KindPoisson, MeanGap: 120, Apps: 12, WminLo: 1, WminHi: 3, DeadlineFactor: 15}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	shape := testShape()
	a := spec.Materialize(rng.NewKeyed(7, 0xa221), shape)
	b := spec.Materialize(rng.NewKeyed(7, 0xa221), shape)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed materialized different arrival streams")
	}
	if len(a) != spec.Apps {
		t.Fatalf("materialized %d arrivals, want %d", len(a), spec.Apps)
	}
	for i, arr := range a {
		if i > 0 && arr.T < a[i-1].T {
			t.Fatalf("arrival %d at t=%d before its predecessor t=%d", i, arr.T, a[i-1].T)
		}
		if arr.Wmin < spec.WminLo || arr.Wmin > spec.WminHi {
			t.Fatalf("arrival %d wmin %d outside [%d, %d]", i, arr.Wmin, spec.WminLo, spec.WminHi)
		}
		if want := int64(math.Ceil(spec.DeadlineFactor * float64(shape.Bound(arr.Wmin)))); arr.Deadline != want {
			t.Fatalf("arrival %d deadline %d, want %d (factor x bound)", i, arr.Deadline, want)
		}
	}
	other := spec.Materialize(rng.NewKeyed(8, 0xa221), shape)
	if reflect.DeepEqual(a, other) {
		t.Fatal("different seeds materialized identical arrival streams")
	}

	// Traces replay verbatim, consume no randomness, and clone — the
	// caller may mutate the result without corrupting the spec.
	trace := ArrivalSpec{Kind: KindTrace, Trace: []Arrival{{T: 0, App: "a0", Wmin: 1}, {T: 5, App: "a1", Wmin: 2}}}
	got := trace.Materialize(rng.NewKeyed(7, 0xa221), shape)
	if !reflect.DeepEqual(got, trace.Trace) {
		t.Fatalf("trace materialized %+v, want the entries verbatim", got)
	}
	got[0].App = "mutated"
	if trace.Trace[0].App != "a0" {
		t.Error("materialized trace aliases the spec's entries")
	}
}

// TestArrivalSpecValidate covers the malformed-spec space: the sweep
// validator and the daemon's spec decoder both lean on these messages.
func TestArrivalSpecValidate(t *testing.T) {
	cases := []struct {
		name    string
		spec    ArrivalSpec
		wantErr string
	}{
		{"no kind", ArrivalSpec{}, "no kind"},
		{"unknown kind", ArrivalSpec{Kind: "burst"}, "unknown arrival kind"},
		{"poisson no gap", ArrivalSpec{Kind: KindPoisson, Apps: 5, WminLo: 1, WminHi: 2}, "meanGap"},
		{"poisson no apps", ArrivalSpec{Kind: KindPoisson, MeanGap: 100, WminLo: 1, WminHi: 2}, "apps"},
		{"poisson bad wmin range", ArrivalSpec{Kind: KindPoisson, MeanGap: 100, Apps: 5, WminLo: 3, WminHi: 1}, "wmin range"},
		{"poisson negative factor", ArrivalSpec{Kind: KindPoisson, MeanGap: 100, Apps: 5, WminLo: 1, WminHi: 2, DeadlineFactor: -1}, "deadlineFactor"},
		{"poisson with trace", ArrivalSpec{Kind: KindPoisson, MeanGap: 100, Apps: 5, WminLo: 1, WminHi: 2, Trace: []Arrival{{App: "x", Wmin: 1}}}, "carries trace entries"},
		{"trace empty", ArrivalSpec{Kind: KindTrace}, "no entries"},
		{"trace with poisson fields", ArrivalSpec{Kind: KindTrace, MeanGap: 9, Trace: []Arrival{{App: "x", Wmin: 1}}}, "poisson fields"},
		{"trace out of order", ArrivalSpec{Kind: KindTrace, Trace: []Arrival{{T: 10, App: "a", Wmin: 1}, {T: 5, App: "b", Wmin: 1}}}, "before"},
		{"trace unnamed app", ArrivalSpec{Kind: KindTrace, Trace: []Arrival{{T: 0, Wmin: 1}}}, "no app name"},
		{"trace bad wmin", ArrivalSpec{Kind: KindTrace, Trace: []Arrival{{T: 0, App: "a"}}}, "wmin"},
		{"trace negative deadline", ArrivalSpec{Kind: KindTrace, Trace: []Arrival{{T: 0, App: "a", Wmin: 1, Deadline: -5}}}, "deadline"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if err == nil {
				t.Fatal("spec accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestParseTrace: the JSONL reader skips blanks and comments, rejects
// unknown fields with the line number, and validates like ArrivalSpec.
func TestParseTrace(t *testing.T) {
	entries, err := ParseTrace([]byte(`
# morning burst
{"t": 0, "app": "a0", "wmin": 1, "deadline": 700}

{"t": 40, "app": "a1", "wmin": 2}
`))
	if err != nil {
		t.Fatal(err)
	}
	want := []Arrival{{T: 0, App: "a0", Wmin: 1, Deadline: 700}, {T: 40, App: "a1", Wmin: 2}}
	if !reflect.DeepEqual(entries, want) {
		t.Errorf("parsed %+v, want %+v", entries, want)
	}

	if _, err := ParseTrace([]byte("{\"t\": 0, \"app\": \"a0\", \"wmin\": 1}\n{\"t\": 5, \"priority\": 3}\n")); err == nil ||
		!strings.Contains(err.Error(), "line 2") {
		t.Errorf("unknown field error %v should carry the line number", err)
	}
	if _, err := ParseTrace([]byte(`{"t": 0, "app": "a0", "wmin": 0}`)); err == nil {
		t.Error("trace with non-positive wmin accepted")
	}
}

// TestShapeBound pins the crude service-time lower bound the slowdown
// metric divides by: the 5·wmin program download once, then per
// iteration ceil(m·wmin/ncom) data slots plus wmin·ceil(m/appProcs)
// compute slots.
func TestShapeBound(t *testing.T) {
	s := testShape() // m=5, iterations=5, appProcs=4, ncom=6
	// 5 + 5·(ceil(5/6) + 1·ceil(5/4)) = 5 + 5·3 = 20.
	if got := s.Bound(1); got != 20 {
		t.Errorf("Bound(1) = %d, want 20", got)
	}
	// 15 + 5·(ceil(15/6) + 3·ceil(5/4)) = 15 + 5·9 = 60.
	if got := s.Bound(3); got != 60 {
		t.Errorf("Bound(3) = %d, want 60", got)
	}
	if s.Bound(2) <= s.Bound(1) {
		t.Error("bound must grow with wmin")
	}
}
