package markov

import (
	"fmt"
	"math"

	"tightsched/internal/rng"
)

// This file implements the paper's stated future-work direction
// (Section VII.B): real desktop-grid availability is not memoryless —
// production traces suggest semi-Markov processes with approximately
// Weibull or Log-Normal holding times. The SemiMarkov process below
// generates such non-Markovian availability, and Fit estimates the best
// ("flawed") Markov matrix from an observed trace, so experiments can
// measure how the Markov-based heuristics behave when their model
// assumption is violated (see examples/nonmarkov and EXPERIMENTS.md).

// HoldingTime samples state-holding durations in whole slots (always >= 1).
type HoldingTime interface {
	Sample(stream *rng.Stream) int
}

// Geometric holding times make the semi-Markov process an ordinary Markov
// chain (each extra slot is retained with probability Stay); it exists so
// tests can confirm the semi-Markov machinery degenerates correctly.
type Geometric struct {
	Stay float64 // probability of holding for another slot
}

// Sample implements HoldingTime.
func (g Geometric) Sample(stream *rng.Stream) int {
	if g.Stay < 0 || g.Stay >= 1 {
		panic(fmt.Sprintf("markov: geometric stay %v outside [0,1)", g.Stay))
	}
	n := 1
	for stream.Float64() < g.Stay {
		n++
	}
	return n
}

// Weibull holding times with the given shape and scale, discretized by
// rounding up. Shape < 1 gives the heavy-tailed availability intervals
// observed in desktop grids (long periods become longer).
type Weibull struct {
	Shape, Scale float64
}

// Sample implements HoldingTime via inversion: T = scale·(−ln U)^(1/shape).
func (w Weibull) Sample(stream *rng.Stream) int {
	if w.Shape <= 0 || w.Scale <= 0 {
		panic(fmt.Sprintf("markov: weibull shape %v scale %v", w.Shape, w.Scale))
	}
	u := stream.Float64()
	for u == 0 {
		u = stream.Float64()
	}
	t := w.Scale * math.Pow(-math.Log(u), 1/w.Shape)
	n := int(math.Ceil(t))
	if n < 1 {
		n = 1
	}
	return n
}

// LogNormal holding times: T = exp(Mu + Sigma·Z), discretized.
type LogNormal struct {
	Mu, Sigma float64
}

// Sample implements HoldingTime via Box-Muller.
func (l LogNormal) Sample(stream *rng.Stream) int {
	if l.Sigma < 0 {
		panic(fmt.Sprintf("markov: lognormal sigma %v", l.Sigma))
	}
	u1 := stream.Float64()
	for u1 == 0 {
		u1 = stream.Float64()
	}
	u2 := stream.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	n := int(math.Ceil(math.Exp(l.Mu + l.Sigma*z)))
	if n < 1 {
		n = 1
	}
	return n
}

// SemiMarkov is a 3-state semi-Markov availability process: the process
// holds each state for a duration drawn from that state's HoldingTime,
// then jumps according to the embedded jump chain.
type SemiMarkov struct {
	// Jump[i][j] is the probability of jumping to state j when leaving
	// state i. Jump[i][i] must be 0 and rows must sum to 1.
	Jump [NumStates][NumStates]float64
	// Hold[i] samples how long the process stays in state i.
	Hold [NumStates]HoldingTime
}

// Validate checks the jump chain and holding-time distributions.
func (sm *SemiMarkov) Validate() error {
	for i := 0; i < NumStates; i++ {
		if sm.Hold[i] == nil {
			return fmt.Errorf("markov: semi-markov state %d has no holding time", i)
		}
		if sm.Jump[i][i] != 0 {
			return fmt.Errorf("markov: semi-markov self-jump in state %d", i)
		}
		sum := 0.0
		for j := 0; j < NumStates; j++ {
			p := sm.Jump[i][j]
			if p < 0 || p > 1 {
				return fmt.Errorf("markov: semi-markov jump [%d][%d] = %v", i, j, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			return fmt.Errorf("markov: semi-markov jump row %d sums to %v", i, sum)
		}
	}
	return nil
}

// SemiMarkovSampler drives a SemiMarkov process slot by slot.
type SemiMarkovSampler struct {
	proc      *SemiMarkov
	stream    *rng.Stream
	state     State
	remaining int // slots left in the current holding period
}

// NewSemiMarkovSampler starts a sampler in the given state with a fresh
// holding period.
func NewSemiMarkovSampler(proc *SemiMarkov, start State, stream *rng.Stream) *SemiMarkovSampler {
	if err := proc.Validate(); err != nil {
		panic(err)
	}
	return &SemiMarkovSampler{
		proc:      proc,
		stream:    stream,
		state:     start,
		remaining: proc.Hold[start].Sample(stream),
	}
}

// State returns the current state.
func (s *SemiMarkovSampler) State() State { return s.state }

// Step advances one slot and returns the new state.
func (s *SemiMarkovSampler) Step() State {
	s.remaining--
	if s.remaining <= 0 {
		u := s.stream.Float64()
		acc := 0.0
		next := s.state
		for j := 0; j < NumStates; j++ {
			acc += s.proc.Jump[s.state][j]
			if u < acc {
				next = State(j)
				break
			}
		}
		s.state = next
		s.remaining = s.proc.Hold[next].Sample(s.stream)
	}
	return s.state
}

// Fit estimates a (time-homogeneous Markov) transition matrix from an
// observed state trace by transition counting with additive smoothing.
// This is exactly the "flawed Markov model based on real-world processor
// availability traces" the paper proposes to build: the fitted matrix
// matches the trace's one-step statistics but not its holding-time
// distributions.
func Fit(trace []State, smoothing float64) (Matrix, error) {
	if len(trace) < 2 {
		return Matrix{}, fmt.Errorf("markov: trace too short to fit (%d states)", len(trace))
	}
	if smoothing < 0 {
		return Matrix{}, fmt.Errorf("markov: negative smoothing %v", smoothing)
	}
	var counts [NumStates][NumStates]float64
	for i := 0; i+1 < len(trace); i++ {
		a, b := trace[i], trace[i+1]
		if a >= NumStates || b >= NumStates {
			return Matrix{}, fmt.Errorf("markov: invalid state %d in trace", a)
		}
		counts[a][b]++
	}
	var m Matrix
	for i := 0; i < NumStates; i++ {
		total := 0.0
		for j := 0; j < NumStates; j++ {
			total += counts[i][j] + smoothing
		}
		if total == 0 {
			// State never observed: make it absorbing to stay stochastic.
			m[i][i] = 1
			continue
		}
		for j := 0; j < NumStates; j++ {
			m[i][j] = (counts[i][j] + smoothing) / total
		}
	}
	if err := m.Validate(); err != nil {
		return Matrix{}, err
	}
	return m, nil
}
