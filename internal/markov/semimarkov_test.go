package markov

import (
	"math"
	"testing"

	"tightsched/internal/rng"
)

// uniformJump is the embedded chain that leaves to either other state
// with probability 1/2.
func uniformJump() [NumStates][NumStates]float64 {
	var j [NumStates][NumStates]float64
	for i := 0; i < NumStates; i++ {
		for k := 0; k < NumStates; k++ {
			if i != k {
				j[i][k] = 0.5
			}
		}
	}
	return j
}

func TestGeometricHolding(t *testing.T) {
	stream := rng.New(1)
	g := Geometric{Stay: 0.8}
	sum := 0
	const n = 100000
	for i := 0; i < n; i++ {
		v := g.Sample(stream)
		if v < 1 {
			t.Fatalf("holding time %d < 1", v)
		}
		sum += v
	}
	mean := float64(sum) / n
	want := 1 / (1 - 0.8) // geometric mean = 1/(1-stay)
	if math.Abs(mean-want) > 0.1 {
		t.Fatalf("geometric mean %v, want %v", mean, want)
	}
}

func TestWeibullHolding(t *testing.T) {
	stream := rng.New(2)
	w := Weibull{Shape: 1, Scale: 10} // shape 1 = exponential, mean 10
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		v := w.Sample(stream)
		if v < 1 {
			t.Fatalf("holding time %d < 1", v)
		}
		sum += float64(v)
	}
	mean := sum / n
	// Discretization by ceiling adds ~0.5; accept [10, 11].
	if mean < 10 || mean > 11.2 {
		t.Fatalf("weibull(1,10) mean %v", mean)
	}
	// Heavy tail: shape 0.5 produces a larger coefficient of variation.
	heavy := Weibull{Shape: 0.5, Scale: 10}
	var vals []float64
	for i := 0; i < 20000; i++ {
		vals = append(vals, float64(heavy.Sample(stream)))
	}
	var m, s2 float64
	for _, v := range vals {
		m += v
	}
	m /= float64(len(vals))
	for _, v := range vals {
		s2 += (v - m) * (v - m)
	}
	s2 /= float64(len(vals))
	if cv := math.Sqrt(s2) / m; cv < 1.2 {
		t.Fatalf("weibull shape 0.5 not heavy-tailed: cv = %v", cv)
	}
}

func TestLogNormalHolding(t *testing.T) {
	stream := rng.New(3)
	l := LogNormal{Mu: 2, Sigma: 0.5}
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := l.Sample(stream)
		if v < 1 {
			t.Fatalf("holding time %d < 1", v)
		}
		sum += float64(v)
	}
	mean := sum / n
	want := math.Exp(2 + 0.25/2) // lognormal mean, before ceiling
	if mean < want || mean > want+1.2 {
		t.Fatalf("lognormal mean %v, want ~%v", mean, want)
	}
}

func TestHoldingPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"geometric stay=1": func() { Geometric{Stay: 1}.Sample(rng.New(1)) },
		"weibull shape=0":  func() { Weibull{Shape: 0, Scale: 1}.Sample(rng.New(1)) },
		"lognormal sigma<0": func() {
			LogNormal{Mu: 0, Sigma: -1}.Sample(rng.New(1))
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSemiMarkovValidate(t *testing.T) {
	good := &SemiMarkov{Jump: uniformJump()}
	for i := range good.Hold {
		good.Hold[i] = Geometric{Stay: 0.9}
	}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	selfJump := &SemiMarkov{Jump: uniformJump()}
	for i := range selfJump.Hold {
		selfJump.Hold[i] = Geometric{Stay: 0.9}
	}
	selfJump.Jump[0][0] = 0.5
	selfJump.Jump[0][1] = 0.25
	selfJump.Jump[0][2] = 0.25
	if selfJump.Validate() == nil {
		t.Fatal("self-jump accepted")
	}
	noHold := &SemiMarkov{Jump: uniformJump()}
	if noHold.Validate() == nil {
		t.Fatal("missing holding time accepted")
	}
}

// TestSemiMarkovGeometricIsMarkov: with geometric holding times the
// semi-Markov process is an ordinary Markov chain; its fitted matrix must
// match the analytic one.
func TestSemiMarkovGeometricIsMarkov(t *testing.T) {
	const stay = 0.9
	sm := &SemiMarkov{Jump: uniformJump()}
	for i := range sm.Hold {
		sm.Hold[i] = Geometric{Stay: stay}
	}
	sampler := NewSemiMarkovSampler(sm, Up, rng.New(4))
	trace := make([]State, 400000)
	for i := range trace {
		trace[i] = sampler.Step()
	}
	fitted, err := Fit(trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := Uniform(stay)
	for i := 0; i < NumStates; i++ {
		for j := 0; j < NumStates; j++ {
			if math.Abs(fitted[i][j]-want[i][j]) > 0.01 {
				t.Fatalf("fitted[%d][%d] = %v, want %v", i, j, fitted[i][j], want[i][j])
			}
		}
	}
}

// TestSemiMarkovHeavyTailIsNotMarkov: with heavy-tailed Weibull holding
// times, the conditional probability of staying UP grows with the time
// already spent UP — precisely the memory a Markov model cannot express.
func TestSemiMarkovHeavyTailIsNotMarkov(t *testing.T) {
	sm := &SemiMarkov{Jump: uniformJump()}
	for i := range sm.Hold {
		sm.Hold[i] = Weibull{Shape: 0.5, Scale: 20}
	}
	sampler := NewSemiMarkovSampler(sm, Up, rng.New(5))
	trace := make([]State, 500000)
	for i := range trace {
		trace[i] = sampler.Step()
	}
	// Estimate P(stay UP | UP for >= k slots) for short and long ages.
	stayAfter := func(minAge int) float64 {
		stays, total := 0, 0
		age := 0
		for i := 1; i < len(trace); i++ {
			if trace[i-1] == Up {
				age++
			} else {
				age = 0
				continue
			}
			if age >= minAge {
				total++
				if trace[i] == Up {
					stays++
				}
			}
		}
		return float64(stays) / float64(total)
	}
	young := stayAfter(1)
	old := stayAfter(30)
	if old <= young+0.01 {
		t.Fatalf("heavy-tailed process should show aging: P(stay|young)=%v P(stay|old)=%v", young, old)
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit([]State{Up}, 0); err == nil {
		t.Fatal("short trace accepted")
	}
	if _, err := Fit([]State{Up, Down}, -1); err == nil {
		t.Fatal("negative smoothing accepted")
	}
	if _, err := Fit([]State{Up, State(7)}, 0); err == nil {
		t.Fatal("invalid state accepted")
	}
	// A trace that never visits RECLAIMED/DOWN still yields a valid
	// stochastic matrix.
	m, err := Fit([]State{Up, Up, Up, Up}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m[Reclaimed][Reclaimed] != 1 || m[Down][Down] != 1 {
		t.Fatalf("unobserved states should be absorbing: %v", m)
	}
}

func TestFitSmoothing(t *testing.T) {
	trace := []State{Up, Up, Up, Down, Up, Up}
	m, err := Fit(trace, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With smoothing every transition has positive probability.
	for i := 0; i < NumStates; i++ {
		for j := 0; j < NumStates; j++ {
			if m[i][j] <= 0 {
				t.Fatalf("smoothed fit has zero entry [%d][%d]", i, j)
			}
		}
	}
}

func TestSemiMarkovSamplerRejectsInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid semi-markov accepted")
		}
	}()
	NewSemiMarkovSampler(&SemiMarkov{}, Up, rng.New(1))
}
