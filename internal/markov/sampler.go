package markov

import "tightsched/internal/rng"

// Sampler drives one availability chain forward in time, producing the
// state vector S_q of the paper slot by slot. It owns a private random
// stream so that trajectories are reproducible and independent of any
// scheduling decisions made while they are consumed.
type Sampler struct {
	matrix Matrix
	state  State
	stream *rng.Stream
	slot   int
}

// NewSampler returns a Sampler starting in the given state at slot 0.
// The caller keeps ownership of the stream; the sampler must be its only
// consumer for reproducibility.
func NewSampler(m Matrix, start State, stream *rng.Stream) *Sampler {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return &Sampler{matrix: m, state: start, stream: stream}
}

// State returns the current state (the state at the current slot).
func (s *Sampler) State() State { return s.state }

// Slot returns the index of the current slot.
func (s *Sampler) Slot() int { return s.slot }

// Step advances the chain by one slot and returns the new state.
func (s *Sampler) Step() State {
	s.state = s.matrix.Step(s.state, s.stream.Float64())
	s.slot++
	return s.state
}

// Trajectory samples a fresh trajectory of n states (the state at slots
// 0..n-1, the first being the start state) without disturbing the sampler.
func Trajectory(m Matrix, start State, stream *rng.Stream, n int) []State {
	out := make([]State, n)
	st := start
	for i := 0; i < n; i++ {
		out[i] = st
		st = m.Step(st, stream.Float64())
	}
	return out
}
