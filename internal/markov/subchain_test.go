package markov

import (
	"math"
	"testing"
	"testing/quick"

	"tightsched/internal/rng"
)

func TestSubChainClosedFormMatchesPower(t *testing.T) {
	s := rng.New(11)
	for trial := 0; trial < 100; trial++ {
		m := paperMatrix(s)
		sc := NewSubChain(m)
		for tt := 0; tt <= 200; tt += 7 {
			puuRef, surRef := sc.PowerRef(tt)
			if got := sc.PuuT(tt); math.Abs(got-puuRef) > 1e-9 {
				t.Fatalf("trial %d: PuuT(%d) = %v, ref %v (chain %v)", trial, tt, got, puuRef, sc)
			}
			if got := sc.SurviveT(tt); math.Abs(got-surRef) > 1e-9 {
				t.Fatalf("trial %d: SurviveT(%d) = %v, ref %v", trial, tt, got, surRef)
			}
		}
	}
}

func TestSubChainT0(t *testing.T) {
	sc := NewSubChain(Uniform(0.9))
	if sc.PuuT(0) != 1 || sc.SurviveT(0) != 1 || sc.SurviveReal(0) != 1 {
		t.Fatal("t=0 probabilities must be 1")
	}
}

func TestSubChainMonotoneSurvival(t *testing.T) {
	sc := NewSubChain(PerState(0.93, 0.9, 0.95))
	prev := 1.0
	for tt := 1; tt <= 300; tt++ {
		cur := sc.SurviveT(tt)
		if cur > prev+1e-12 {
			t.Fatalf("survival increased at t=%d: %v -> %v", tt, prev, cur)
		}
		prev = cur
	}
}

func TestSubChainProbabilityBounds(t *testing.T) {
	if err := quick.Check(func(seed uint32, texp uint16) bool {
		s := rng.New(uint64(seed))
		sc := NewSubChain(paperMatrix(s))
		tt := int(texp % 2000)
		p := sc.PuuT(tt)
		q := sc.SurviveT(tt)
		return p >= 0 && p <= 1 && q >= 0 && q <= 1 && p <= q+1e-12
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSubChainNoFailSurvivalIsOne(t *testing.T) {
	// A chain that cannot reach DOWN from live states keeps survival at 1.
	m := Matrix{
		{0.8, 0.2, 0},
		{0.3, 0.7, 0},
		{0, 0, 1},
	}
	sc := NewSubChain(m)
	for tt := 0; tt <= 100; tt += 10 {
		if got := sc.SurviveT(tt); math.Abs(got-1) > 1e-9 {
			t.Fatalf("SurviveT(%d) = %v, want 1", tt, got)
		}
	}
	if sc.Lambda1() < 1-1e-9 {
		t.Fatalf("dominant eigenvalue %v, want 1", sc.Lambda1())
	}
}

func TestSubChainDiagonal(t *testing.T) {
	// Diagonal restricted chain: PuuT(t) = a^t exactly (repeated eigenvalue
	// when a == d; distinct when a != d).
	m := Matrix{
		{0.9, 0, 0.1},
		{0, 0.9, 0.1},
		{0.1, 0.1, 0.8},
	}
	sc := NewSubChain(m)
	for tt := 0; tt <= 50; tt += 5 {
		want := math.Pow(0.9, float64(tt))
		if got := sc.PuuT(tt); math.Abs(got-want) > 1e-12 {
			t.Fatalf("diagonal PuuT(%d) = %v, want %v", tt, got, want)
		}
	}
}

func TestSubChainDefective(t *testing.T) {
	// M = [[a, b], [0, a]] with b > 0 is defective: repeated eigenvalue a,
	// one eigenvector. (M^t)[0][0] = a^t still; survival picks up the
	// t·a^(t-1)·b term.
	m := Matrix{
		{0.8, 0.1, 0.1},
		{0, 0.8, 0.2},
		{0.2, 0.2, 0.6},
	}
	sc := NewSubChain(m)
	for tt := 0; tt <= 60; tt++ {
		puuRef, surRef := sc.PowerRef(tt)
		if got := sc.PuuT(tt); math.Abs(got-puuRef) > 1e-9 {
			t.Fatalf("defective PuuT(%d) = %v, want %v", tt, got, puuRef)
		}
		if got := sc.SurviveT(tt); math.Abs(got-surRef) > 1e-9 {
			t.Fatalf("defective SurviveT(%d) = %v, want %v", tt, got, surRef)
		}
	}
}

func TestSurviveRealInterpolates(t *testing.T) {
	sc := NewSubChain(Uniform(0.94))
	for tt := 1; tt < 50; tt++ {
		lo := sc.SurviveT(tt + 1)
		hi := sc.SurviveT(tt)
		mid := sc.SurviveReal(float64(tt) + 0.5)
		if mid < lo-1e-9 || mid > hi+1e-9 {
			t.Fatalf("SurviveReal(%v.5) = %v outside [%v, %v]", tt, mid, lo, hi)
		}
	}
}

func TestSubChainMonteCarlo(t *testing.T) {
	// Cross-validate the closed form against direct chain simulation:
	// estimate P(UP at t, never DOWN in 1..t | UP at 0) empirically.
	m := PerState(0.9, 0.85, 0.9)
	sc := NewSubChain(m)
	stream := rng.New(123)
	const trials = 200000
	horizon := 12
	upCount := make([]int, horizon+1)
	surCount := make([]int, horizon+1)
	for tr := 0; tr < trials; tr++ {
		st := Up
		alive := true
		for tt := 1; tt <= horizon; tt++ {
			st = m.Step(st, stream.Float64())
			if st == Down {
				alive = false
			}
			if alive {
				surCount[tt]++
				if st == Up {
					upCount[tt]++
				}
			}
		}
	}
	for tt := 1; tt <= horizon; tt++ {
		gotUp := float64(upCount[tt]) / trials
		gotSur := float64(surCount[tt]) / trials
		if math.Abs(gotUp-sc.PuuT(tt)) > 0.005 {
			t.Fatalf("MC PuuT(%d) = %v, closed form %v", tt, gotUp, sc.PuuT(tt))
		}
		if math.Abs(gotSur-sc.SurviveT(tt)) > 0.005 {
			t.Fatalf("MC SurviveT(%d) = %v, closed form %v", tt, gotSur, sc.SurviveT(tt))
		}
	}
}

func TestSubChainNegativePanics(t *testing.T) {
	sc := NewSubChain(Uniform(0.9))
	for _, f := range []func(){
		func() { sc.PuuT(-1) },
		func() { sc.SurviveT(-1) },
		func() { sc.SurviveReal(-0.5) },
		func() { sc.PowerRef(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("negative time did not panic")
				}
			}()
			f()
		}()
	}
}

func TestSubChainString(t *testing.T) {
	if NewSubChain(Uniform(0.9)).String() == "" {
		t.Fatal("empty string")
	}
}

func BenchmarkPuuTClosedForm(b *testing.B) {
	sc := NewSubChain(Uniform(0.95))
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += sc.PuuT(i % 256)
	}
	_ = sink
}

func BenchmarkPuuTPowerRef(b *testing.B) {
	sc := NewSubChain(Uniform(0.95))
	var sink float64
	for i := 0; i < b.N; i++ {
		p, _ := sc.PowerRef(i % 256)
		sink += p
	}
	_ = sink
}
