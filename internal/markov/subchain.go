package markov

import (
	"fmt"
	"math"
)

// SubChain is the 2x2 restriction of a 3-state availability chain to the
// live states {UP, RECLAIMED}, i.e. the sub-stochastic matrix
//
//	M = | P(u,u)  P(u,r) |
//	    | P(r,u)  P(r,r) |
//
// Powers of M give the paper's two workhorse quantities for a processor
// that is UP at time 0:
//
//	PuuT(t)    = (M^t)[u][u]       probability of being UP at time t
//	                               without visiting DOWN in between,
//	SurviveT(t) = sum((M^t)[u][·])  probability of not visiting DOWN
//	                               during t slots.
//
// Because M is a real 2x2 matrix with non-negative off-diagonal product,
// its eigenvalues are real, and both quantities have the closed form
// a·λ1^t + b·λ2^t. SubChain precomputes the eigendecomposition so each
// evaluation is O(1); a degenerate (defective) matrix falls back to the
// λ^t·(a + b·t) form.
type SubChain struct {
	m [2][2]float64

	// Eigenvalues, lam1 >= lam2 in absolute value ordering by real size.
	lam1, lam2 float64
	defective  bool // lam1 == lam2 and M not diagonalizable

	// PuuT(t) = puuA*lam1^t + puuB*lam2^t (or (puuA + puuB*t)*lam1^t when
	// defective); likewise for SurviveT.
	puuA, puuB float64
	surA, surB float64
}

// eigTol decides when two eigenvalues are considered equal.
const eigTol = 1e-12

// NewSubChain builds the restricted live-state chain of m.
func NewSubChain(full Matrix) *SubChain {
	var s SubChain
	s.m[0][0] = full[Up][Up]
	s.m[0][1] = full[Up][Reclaimed]
	s.m[1][0] = full[Reclaimed][Up]
	s.m[1][1] = full[Reclaimed][Reclaimed]
	s.decompose()
	return &s
}

// decompose computes eigenvalues and the closed-form coefficients.
//
// For a 2x2 matrix M = [[a,b],[c,d]] with distinct eigenvalues λ1, λ2,
// Lagrange interpolation on the spectrum gives
//
//	M^t = λ1^t (M - λ2 I)/(λ1-λ2) + λ2^t (M - λ1 I)/(λ2-λ1)
//
// so (M^t)[0][0] = ((a-λ2) λ1^t - (a-λ1) λ2^t) / (λ1-λ2) and the first
// row sum is (((a+b)-λ2) λ1^t - ((a+b)-λ1) λ2^t) / (λ1-λ2).
func (s *SubChain) decompose() {
	a, b := s.m[0][0], s.m[0][1]
	c, d := s.m[1][0], s.m[1][1]
	tr := a + d
	// For real matrices with b*c >= 0 the discriminant is non-negative.
	disc := (a-d)*(a-d) + 4*b*c
	if disc < 0 {
		// Cannot happen for availability chains (b, c >= 0), but guard
		// against caller-constructed matrices.
		disc = 0
	}
	root := math.Sqrt(disc)
	s.lam1 = (tr + root) / 2
	s.lam2 = (tr - root) / 2

	if math.Abs(s.lam1-s.lam2) > eigTol {
		den := s.lam1 - s.lam2
		s.puuA = (a - s.lam2) / den
		s.puuB = -(a - s.lam1) / den
		row := a + b
		s.surA = (row - s.lam2) / den
		s.surB = -(row - s.lam1) / den
		return
	}
	// Repeated eigenvalue λ. If M == λI the chain is already diagonal;
	// otherwise M is defective and M^t = λ^t I + t λ^(t-1) (M - λI).
	lam := s.lam1
	if math.Abs(b) < eigTol && math.Abs(c) < eigTol && math.Abs(a-d) < eigTol {
		s.puuA, s.puuB = 1, 0
		s.surA, s.surB = 1, 0
		return
	}
	s.defective = true
	// (M^t)[0][0] = λ^t + t λ^(t-1) (a - λ); fold the 1/λ into the slope
	// when λ > 0. For λ == 0 powers beyond t=1 vanish.
	s.puuA = 1
	s.surA = 1
	if lam > eigTol {
		s.puuB = (a - lam) / lam
		s.surB = (a + b - lam) / lam
	}
}

// Lambda1 returns the dominant eigenvalue of the restricted chain. It is
// the geometric decay rate of both PuuT and SurviveT and drives the
// truncation horizon of the paper's series (Theorem 5.1).
func (s *SubChain) Lambda1() float64 { return s.lam1 }

// PuuSpectrum exposes the closed form PuuT(t) = a·λ1^t + b·λ2^t. When the
// restricted chain is defective (repeated eigenvalue, not diagonalizable)
// the two-term form does not hold — defective is true and callers must
// fall back to PuuT. The spectral set evaluator of internal/analytic
// expands products of these two-term forms into geometric series.
func (s *SubChain) PuuSpectrum() (a, b, lam1, lam2 float64, defective bool) {
	return s.puuA, s.puuB, s.lam1, s.lam2, s.defective
}

// PuuT returns P(q)_{u->t->u}: the probability that a processor UP at time
// 0 is UP at time t without having been DOWN in between. PuuT(0) = 1.
func (s *SubChain) PuuT(t int) float64 {
	if t < 0 {
		panic("markov: PuuT with negative t")
	}
	if t == 0 {
		return 1
	}
	return clampProb(s.eval(s.puuA, s.puuB, float64(t)))
}

// SurviveT returns the probability that a processor UP at time 0 has not
// been DOWN during slots 1..t. SurviveT(0) = 1.
func (s *SubChain) SurviveT(t int) float64 {
	if t < 0 {
		panic("markov: SurviveT with negative t")
	}
	if t == 0 {
		return 1
	}
	return clampProb(s.eval(s.surA, s.surB, float64(t)))
}

// SurviveReal evaluates the survival closed form at a non-negative real
// time, interpolating the discrete curve geometrically. The paper's
// communication-phase estimate plugs the (generally fractional) expected
// communication time into this survival function.
func (s *SubChain) SurviveReal(t float64) float64 {
	if t < 0 {
		panic("markov: SurviveReal with negative t")
	}
	if t == 0 {
		return 1
	}
	return clampProb(s.eval(s.surA, s.surB, t))
}

func (s *SubChain) eval(ca, cb, t float64) float64 {
	if s.defective {
		if s.lam1 <= eigTol {
			// Nilpotent: only the t=1 step can be non-zero, handled by
			// the explicit matrix entries.
			if t == 1 {
				return ca*s.lam1 + cb // degenerate; keep continuous
			}
			return 0
		}
		return math.Pow(s.lam1, t) * (ca + cb*t)
	}
	v := ca * powSigned(s.lam1, t)
	if cb != 0 {
		v += cb * powSigned(s.lam2, t)
	}
	return v
}

// powSigned computes lam^t for possibly negative lam at integral or real t.
// The restricted chain can have a negative subdominant eigenvalue; for
// integral t the sign alternates, while for fractional t we use the
// magnitude (the fractional evaluation is only used for smooth survival
// interpolation where the subdominant term is negligible).
func powSigned(lam, t float64) float64 {
	if lam >= 0 {
		return math.Pow(lam, t)
	}
	ti := math.Round(t)
	if math.Abs(t-ti) < 1e-9 {
		v := math.Pow(-lam, t)
		if int64(ti)&1 == 1 {
			return -v
		}
		return v
	}
	return math.Pow(-lam, t) // magnitude envelope for fractional t
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// PowerRef computes (M^t)[0][0] and the first-row sum of M^t by direct
// iteration. It exists to cross-validate the closed forms in tests and for
// callers that prefer exactness over speed.
func (s *SubChain) PowerRef(t int) (puu, survive float64) {
	if t < 0 {
		panic("markov: PowerRef with negative t")
	}
	// Row vector e_u * M^t.
	r0, r1 := 1.0, 0.0
	for i := 0; i < t; i++ {
		r0, r1 = r0*s.m[0][0]+r1*s.m[1][0], r0*s.m[0][1]+r1*s.m[1][1]
	}
	return r0, r0 + r1
}

// String formats the restricted chain for debugging.
func (s *SubChain) String() string {
	return fmt.Sprintf("SubChain[[%.4f %.4f][%.4f %.4f] λ=%.6f,%.6f]",
		s.m[0][0], s.m[0][1], s.m[1][0], s.m[1][1], s.lam1, s.lam2)
}
