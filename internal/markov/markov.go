// Package markov implements the 3-state processor availability model of
// Casanova, Dufossé, Robert and Vivien (HCW 2013, Section V).
//
// Each processor alternates between three states at discrete time-slots:
//
//	UP        — available and computing/communicating normally,
//	RECLAIMED — temporarily preempted by its owner; work is suspended but
//	            nothing is lost,
//	DOWN      — crashed; the program copy, task data and any in-flight
//	            computation on the processor are lost.
//
// Transitions happen independently for each processor at every time-slot
// according to a time-homogeneous stochastic matrix. The package provides
// the matrix type, validation, sampling, the stationary distribution, and
// the "no-DOWN" restricted sub-chain used throughout the paper's Section V
// analysis: the 2x2 matrix
//
//	M = | P(u,u)  P(u,r) |
//	    | P(r,u)  P(r,r) |
//
// whose powers give P(q)_{u->t->u}, the probability that a processor UP at
// time 0 is UP again at time t without having been DOWN in between, and the
// survival probability (not DOWN for t slots). Both quantities have closed
// forms through the eigendecomposition of M, which this package exposes so
// the analytic layer can evaluate them in O(1) per time point.
package markov

import (
	"fmt"
	"math"
)

// State is a processor availability state.
type State uint8

// The three availability states. The integer values index transition
// matrices, so they must remain 0, 1, 2.
const (
	Up State = iota
	Reclaimed
	Down

	// NumStates is the number of availability states.
	NumStates = 3
)

// String returns the paper's name for the state.
func (s State) String() string {
	switch s {
	case Up:
		return "UP"
	case Reclaimed:
		return "RECLAIMED"
	case Down:
		return "DOWN"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Matrix is a 3x3 row-stochastic transition matrix over (Up, Reclaimed,
// Down): Matrix[i][j] is the probability of moving from state i to state j
// in one time-slot.
type Matrix [NumStates][NumStates]float64

// probTol is the tolerance used when validating that rows sum to one.
const probTol = 1e-9

// Validate reports whether m is a well-formed transition matrix: all
// entries in [0,1] and each row summing to 1 within tolerance.
func (m Matrix) Validate() error {
	for i := 0; i < NumStates; i++ {
		sum := 0.0
		for j := 0; j < NumStates; j++ {
			p := m[i][j]
			if math.IsNaN(p) || p < -probTol || p > 1+probTol {
				return fmt.Errorf("markov: entry [%d][%d] = %v outside [0,1]", i, j, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("markov: row %d sums to %v, want 1", i, sum)
		}
	}
	return nil
}

// Uniform returns the matrix in which every state stays put with
// probability stay and moves to each other state with probability
// (1-stay)/2, for all three states. This is the shape used by the paper's
// experimental scenarios (with stay drawn uniformly in [0.90, 0.99]).
func Uniform(stay float64) Matrix {
	if stay < 0 || stay > 1 {
		panic(fmt.Sprintf("markov: stay probability %v outside [0,1]", stay))
	}
	move := (1 - stay) / 2
	var m Matrix
	for i := 0; i < NumStates; i++ {
		for j := 0; j < NumStates; j++ {
			if i == j {
				m[i][j] = stay
			} else {
				m[i][j] = move
			}
		}
	}
	return m
}

// PerState returns the matrix where state i stays put with probability
// stay[i] and moves to each of the two other states with probability
// (1-stay[i])/2. This matches the paper's scenario generator, which draws
// an independent self-loop probability for each state.
func PerState(stayUp, stayReclaimed, stayDown float64) Matrix {
	stays := [NumStates]float64{stayUp, stayReclaimed, stayDown}
	var m Matrix
	for i, s := range stays {
		if s < 0 || s > 1 {
			panic(fmt.Sprintf("markov: stay probability %v outside [0,1]", s))
		}
		for j := 0; j < NumStates; j++ {
			if i == j {
				m[i][j] = s
			} else {
				m[i][j] = (1 - s) / 2
			}
		}
	}
	return m
}

// AlwaysUp returns the degenerate matrix of a fully reliable, never
// reclaimed processor. Useful in tests and as a modelling extreme.
func AlwaysUp() Matrix {
	var m Matrix
	m[Up][Up] = 1
	m[Reclaimed][Up] = 1
	m[Down][Up] = 1
	return m
}

// Step samples the successor of state s using u, a uniform random value in
// [0,1).
func (m Matrix) Step(s State, u float64) State {
	acc := 0.0
	for j := 0; j < NumStates; j++ {
		acc += m[s][j]
		if u < acc {
			return State(j)
		}
	}
	// Guard against rounding: the row sums to 1 within tolerance, so a
	// draw past the accumulated mass belongs to the last state with
	// non-zero probability.
	for j := NumStates - 1; j >= 0; j-- {
		if m[s][j] > 0 {
			return State(j)
		}
	}
	return s
}

// CanFail reports whether the DOWN state is reachable in one step from UP
// or RECLAIMED. Under the paper's model a processor participating in a
// computation only occupies UP and RECLAIMED, so this is exactly the
// condition under which the probability P+ of eventual simultaneous
// availability is strictly below 1 (Theorem 5.1).
func (m Matrix) CanFail() bool {
	return m[Up][Down] > 0 || m[Reclaimed][Down] > 0
}

// Stationary returns the stationary distribution pi with pi = pi * M,
// computed by power iteration. The paper's chains are aperiodic and
// irreducible (all self-loops positive, all transitions positive), so the
// iteration converges geometrically. For reducible matrices the result is
// a stationary distribution reachable from the uniform start.
func (m Matrix) Stationary() [NumStates]float64 {
	pi := [NumStates]float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	for iter := 0; iter < 10000; iter++ {
		var next [NumStates]float64
		for i := 0; i < NumStates; i++ {
			for j := 0; j < NumStates; j++ {
				next[j] += pi[i] * m[i][j]
			}
		}
		diff := 0.0
		for j := 0; j < NumStates; j++ {
			diff += math.Abs(next[j] - pi[j])
		}
		pi = next
		if diff < 1e-14 {
			break
		}
	}
	return pi
}

// Power returns m^t computed by repeated squaring. t must be >= 0;
// Power(0) is the identity.
func (m Matrix) Power(t int) Matrix {
	if t < 0 {
		panic("markov: negative matrix power")
	}
	result := identity()
	base := m
	for t > 0 {
		if t&1 == 1 {
			result = result.Mul(base)
		}
		base = base.Mul(base)
		t >>= 1
	}
	return result
}

// Mul returns the matrix product m * o.
func (m Matrix) Mul(o Matrix) Matrix {
	var r Matrix
	for i := 0; i < NumStates; i++ {
		for j := 0; j < NumStates; j++ {
			sum := 0.0
			for k := 0; k < NumStates; k++ {
				sum += m[i][k] * o[k][j]
			}
			r[i][j] = sum
		}
	}
	return r
}

func identity() Matrix {
	var m Matrix
	for i := 0; i < NumStates; i++ {
		m[i][i] = 1
	}
	return m
}

// String formats the matrix for debugging.
func (m Matrix) String() string {
	return fmt.Sprintf("[u:%.4f,%.4f,%.4f | r:%.4f,%.4f,%.4f | d:%.4f,%.4f,%.4f]",
		m[0][0], m[0][1], m[0][2],
		m[1][0], m[1][1], m[1][2],
		m[2][0], m[2][1], m[2][2])
}
