package markov

import (
	"math"
	"testing"
	"testing/quick"

	"tightsched/internal/rng"
)

// paperMatrix draws a matrix from the paper's experimental distribution:
// each self-loop uniform in [0.90, 0.99], off-diagonals split evenly.
func paperMatrix(s *rng.Stream) Matrix {
	return PerState(s.Uniform(0.90, 0.99), s.Uniform(0.90, 0.99), s.Uniform(0.90, 0.99))
}

func TestStateString(t *testing.T) {
	if Up.String() != "UP" || Reclaimed.String() != "RECLAIMED" || Down.String() != "DOWN" {
		t.Fatal("state names")
	}
	if State(9).String() != "State(9)" {
		t.Fatal("unknown state name")
	}
}

func TestUniformValidates(t *testing.T) {
	m := Uniform(0.95)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m[Up][Up] != 0.95 || math.Abs(m[Up][Down]-0.025) > 1e-12 {
		t.Fatalf("unexpected entries: %v", m)
	}
}

func TestPerStateValidates(t *testing.T) {
	m := PerState(0.9, 0.95, 0.99)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m[Reclaimed][Reclaimed] != 0.95 {
		t.Fatal("reclaimed self-loop")
	}
	if math.Abs(m[Down][Up]-0.005) > 1e-12 {
		t.Fatal("down->up probability")
	}
}

func TestValidateRejectsBadMatrices(t *testing.T) {
	bad := Uniform(0.9)
	bad[0][0] = 0.5 // row no longer sums to 1
	if bad.Validate() == nil {
		t.Fatal("accepted row not summing to 1")
	}
	bad2 := Uniform(0.9)
	bad2[1][1] = -0.1
	bad2[1][0] = 1.1 - bad2[1][2]
	if bad2.Validate() == nil {
		t.Fatal("accepted negative entry")
	}
	var nan Matrix
	nan[0][0] = math.NaN()
	if nan.Validate() == nil {
		t.Fatal("accepted NaN entry")
	}
}

func TestUniformPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform(1.5) did not panic")
		}
	}()
	Uniform(1.5)
}

func TestAlwaysUp(t *testing.T) {
	m := AlwaysUp()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.CanFail() {
		t.Fatal("AlwaysUp should not be able to fail")
	}
	if m.Step(Down, 0.5) != Up {
		t.Fatal("AlwaysUp should recover immediately")
	}
}

func TestCanFail(t *testing.T) {
	if !Uniform(0.95).CanFail() {
		t.Fatal("uniform matrix can fail")
	}
	// Up <-> Reclaimed only.
	m := Matrix{
		{0.9, 0.1, 0},
		{0.5, 0.5, 0},
		{0, 0, 1},
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.CanFail() {
		t.Fatal("no path to DOWN from live states")
	}
}

func TestStepDistribution(t *testing.T) {
	m := PerState(0.9, 0.8, 0.7)
	s := rng.New(17)
	counts := map[State]int{}
	const n = 200000
	for i := 0; i < n; i++ {
		counts[m.Step(Up, s.Float64())]++
	}
	for j := 0; j < NumStates; j++ {
		got := float64(counts[State(j)]) / n
		if math.Abs(got-m[Up][j]) > 0.01 {
			t.Fatalf("Step to %v rate %v, want %v", State(j), got, m[Up][j])
		}
	}
}

func TestStepBoundaryDraw(t *testing.T) {
	m := Uniform(0.9)
	// A draw of exactly (almost) 1 must still land in a valid state.
	st := m.Step(Up, math.Nextafter(1, 0))
	if st > Down {
		t.Fatalf("boundary draw gave invalid state %v", st)
	}
}

func TestStationaryFixedPoint(t *testing.T) {
	s := rng.New(5)
	for trial := 0; trial < 50; trial++ {
		m := paperMatrix(s)
		pi := m.Stationary()
		sum := 0.0
		var image [NumStates]float64
		for i := 0; i < NumStates; i++ {
			sum += pi[i]
			for j := 0; j < NumStates; j++ {
				image[j] += pi[i] * m[i][j]
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("stationary does not sum to 1: %v", pi)
		}
		for j := 0; j < NumStates; j++ {
			if math.Abs(image[j]-pi[j]) > 1e-9 {
				t.Fatalf("pi not a fixed point: %v -> %v", pi, image)
			}
		}
	}
}

func TestStationarySymmetricUniform(t *testing.T) {
	// A symmetric per-state matrix with equal self-loops has the uniform
	// stationary distribution.
	pi := Uniform(0.9).Stationary()
	for _, p := range pi {
		if math.Abs(p-1.0/3) > 1e-9 {
			t.Fatalf("uniform chain stationary = %v", pi)
		}
	}
}

func TestPowerMatchesIteratedMul(t *testing.T) {
	m := PerState(0.93, 0.91, 0.96)
	direct := identity()
	for tt := 0; tt <= 12; tt++ {
		pow := m.Power(tt)
		for i := 0; i < NumStates; i++ {
			for j := 0; j < NumStates; j++ {
				if math.Abs(pow[i][j]-direct[i][j]) > 1e-12 {
					t.Fatalf("Power(%d)[%d][%d] = %v, want %v", tt, i, j, pow[i][j], direct[i][j])
				}
			}
		}
		direct = direct.Mul(m)
	}
}

func TestPowerRowsStochastic(t *testing.T) {
	if err := quick.Check(func(seed uint32, texp uint8) bool {
		s := rng.New(uint64(seed))
		m := paperMatrix(s)
		p := m.Power(int(texp % 64))
		return p.Validate() == nil
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPowerNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative power did not panic")
		}
	}()
	Uniform(0.9).Power(-1)
}

func TestSamplerReproducible(t *testing.T) {
	m := paperMatrix(rng.New(1))
	a := NewSampler(m, Up, rng.New(77))
	b := NewSampler(m, Up, rng.New(77))
	for i := 0; i < 500; i++ {
		if a.Step() != b.Step() {
			t.Fatalf("samplers with same seed diverged at slot %d", i)
		}
	}
	if a.Slot() != 500 {
		t.Fatalf("slot counter = %d", a.Slot())
	}
}

func TestSamplerEmpiricalStationary(t *testing.T) {
	m := PerState(0.95, 0.9, 0.85)
	pi := m.Stationary()
	sm := NewSampler(m, Up, rng.New(3))
	counts := [NumStates]int{}
	const burn, n = 1000, 400000
	for i := 0; i < burn; i++ {
		sm.Step()
	}
	for i := 0; i < n; i++ {
		counts[sm.Step()]++
	}
	for j := 0; j < NumStates; j++ {
		got := float64(counts[j]) / n
		if math.Abs(got-pi[j]) > 0.02 {
			t.Fatalf("empirical occupancy of %v = %v, stationary %v", State(j), got, pi[j])
		}
	}
}

func TestTrajectory(t *testing.T) {
	m := paperMatrix(rng.New(2))
	tr := Trajectory(m, Reclaimed, rng.New(4), 100)
	if len(tr) != 100 {
		t.Fatalf("trajectory length %d", len(tr))
	}
	if tr[0] != Reclaimed {
		t.Fatal("trajectory must start in the start state")
	}
	// Reproducible with the same stream seed.
	tr2 := Trajectory(m, Reclaimed, rng.New(4), 100)
	for i := range tr {
		if tr[i] != tr2[i] {
			t.Fatalf("trajectory not reproducible at slot %d", i)
		}
	}
}

func TestNewSamplerRejectsInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSampler accepted invalid matrix")
		}
	}()
	var bad Matrix
	NewSampler(bad, Up, rng.New(1))
}

func TestMatrixString(t *testing.T) {
	if Uniform(0.9).String() == "" {
		t.Fatal("empty string form")
	}
}
