package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// fakeClock records requested sleeps and returns instantly.
type fakeClock struct {
	slept []time.Duration
}

func (f *fakeClock) sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	f.slept = append(f.slept, d)
	return nil
}

func TestDelayGrowsExponentiallyToCap(t *testing.T) {
	p := Policy{Initial: 100 * time.Millisecond, Max: 1 * time.Second, Multiplier: 2, Jitter: 0}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1 * time.Second,
		1 * time.Second, // stays capped
	}
	for attempt, w := range want {
		if got := p.Delay(attempt, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
}

func TestDelayJitterSubtractsWithinBound(t *testing.T) {
	p := Policy{Initial: 1 * time.Second, Max: time.Minute, Multiplier: 2, Jitter: 0.5}
	// rnd = 1.0 (almost) takes the full jitter away; rnd = 0 takes none.
	if got := p.Delay(0, func() float64 { return 0 }); got != time.Second {
		t.Errorf("no-jitter draw: got %v, want 1s", got)
	}
	got := p.Delay(0, func() float64 { return 0.999 })
	if got <= 500*time.Millisecond || got >= time.Second {
		t.Errorf("full-jitter draw: got %v, want in (500ms, 1s)", got)
	}
	// Max stays a hard bound under jitter for every draw.
	for _, r := range []float64{0, 0.3, 0.99} {
		r := r
		if got := p.Delay(20, func() float64 { return r }); got > time.Minute {
			t.Errorf("jittered delay %v exceeds Max", got)
		}
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	clock := &fakeClock{}
	calls := 0
	err := DoWithSleep(context.Background(), Policy{Initial: 10 * time.Millisecond, Jitter: 0}, clock.sleep,
		func(context.Context) error {
			calls++
			if calls < 4 {
				return fmt.Errorf("transient %d", calls)
			}
			return nil
		})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 4 {
		t.Errorf("op ran %d times, want 4", calls)
	}
	// Three failures → three sleeps, doubling from Initial.
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}
	if len(clock.slept) != len(want) {
		t.Fatalf("slept %v, want %v", clock.slept, want)
	}
	for i, w := range want {
		if clock.slept[i] != w {
			t.Errorf("sleep %d = %v, want %v", i, clock.slept[i], w)
		}
	}
}

func TestDoStopsOnPermanentError(t *testing.T) {
	clock := &fakeClock{}
	permanent := errors.New("bad request")
	calls := 0
	err := DoWithSleep(context.Background(), Policy{}, clock.sleep, func(context.Context) error {
		calls++
		return Stop(permanent)
	})
	if !errors.Is(err, permanent) {
		t.Fatalf("Do = %v, want %v", err, permanent)
	}
	if calls != 1 || len(clock.slept) != 0 {
		t.Errorf("permanent error retried: %d calls, %d sleeps", calls, len(clock.slept))
	}
}

func TestDoStopNilIsSuccess(t *testing.T) {
	err := DoWithSleep(context.Background(), Policy{}, (&fakeClock{}).sleep, func(context.Context) error {
		return Stop(nil)
	})
	if err != nil {
		t.Fatalf("Stop(nil) should succeed, got %v", err)
	}
}

func TestDoMaxAttempts(t *testing.T) {
	clock := &fakeClock{}
	calls := 0
	last := errors.New("still down")
	err := DoWithSleep(context.Background(), Policy{MaxAttempts: 3}, clock.sleep, func(context.Context) error {
		calls++
		return last
	})
	if !errors.Is(err, last) {
		t.Fatalf("Do = %v, want last failure", err)
	}
	if calls != 3 {
		t.Errorf("op ran %d times, want 3", calls)
	}
	if len(clock.slept) != 2 {
		t.Errorf("slept %d times between 3 attempts, want 2", len(clock.slept))
	}
}

func TestDoCancelledContextCarriesLastError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	transient := errors.New("unreachable")
	calls := 0
	err := DoWithSleep(ctx, Policy{}, func(ctx context.Context, d time.Duration) error {
		cancel() // cancelled mid-backoff
		return ctx.Err()
	}, func(context.Context) error {
		calls++
		return transient
	})
	if !errors.Is(err, context.Canceled) || !errors.Is(err, transient) {
		t.Fatalf("Do = %v, want both Canceled and the transient failure", err)
	}
	if calls != 1 {
		t.Errorf("op ran %d times after cancellation, want 1", calls)
	}
}

func TestDoPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := DoWithSleep(ctx, Policy{}, (&fakeClock{}).sleep, func(context.Context) error {
		calls++
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want Canceled", err)
	}
	if calls != 0 {
		t.Errorf("op ran %d times under a dead context, want 0", calls)
	}
}

func TestDoRealSleepHonorsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := Do(ctx, Policy{Initial: time.Hour, Jitter: 0}, func(context.Context) error {
		return errors.New("always fails")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Do = %v, want Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, timer not interrupted", elapsed)
	}
}
