// Package retry is jittered exponential backoff with context
// cancellation: the client-side half of the cluster's robustness story.
// Worker heartbeats and result uploads retry through it while the
// coordinator is unreachable (restarting, partitioned), so a coordinator
// outage costs reconnection time, never work. The jitter decorrelates a
// fleet of workers that all lost the coordinator at the same instant —
// without it they would reconnect in lockstep and hammer the recovering
// process.
package retry

import (
	"context"
	"errors"
	"math/rand/v2"
	"time"
)

// Policy shapes a backoff schedule. The zero value is usable and means
// the defaults noted on each field.
type Policy struct {
	// Initial is the delay before the first retry (default 100ms).
	Initial time.Duration
	// Max caps the delay between attempts (default 5s).
	Max time.Duration
	// Multiplier grows the delay each attempt (default 2).
	Multiplier float64
	// Jitter is the fraction of each delay randomized away, in [0, 1]:
	// a delay d becomes d - U[0, Jitter·d] (default 0.25). Subtracting
	// (rather than adding) keeps Max a hard bound.
	Jitter float64
	// MaxAttempts bounds the number of operation attempts (0: retry
	// until the context is cancelled or the operation stops the loop).
	MaxAttempts int
}

func (p Policy) withDefaults() Policy {
	if p.Initial <= 0 {
		p.Initial = 100 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.25
	}
	return p
}

// Delay returns the backoff before retry number attempt (0-based: the
// delay after the first failure is Delay(0)). rnd supplies the jitter
// draw in [0, 1); pass nil for the shared math/rand source.
func (p Policy) Delay(attempt int, rnd func() float64) time.Duration {
	p = p.withDefaults()
	d := float64(p.Initial)
	for i := 0; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.Max) {
			break
		}
	}
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	if p.Jitter > 0 {
		if rnd == nil {
			rnd = rand.Float64
		}
		d -= rnd() * p.Jitter * d
	}
	return time.Duration(d)
}

// stop wraps an error the operation wants surfaced without further
// retries.
type stop struct{ err error }

func (s stop) Error() string { return s.err.Error() }
func (s stop) Unwrap() error { return s.err }

// Stop marks err permanent: Do returns it (unwrapped) immediately
// instead of retrying. A nil err stops with success.
func Stop(err error) error {
	if err == nil {
		return stop{err: errDone}
	}
	return stop{err: err}
}

var errDone = errors.New("retry: stopped")

// Do runs op until it succeeds, returns a Stop-wrapped error, exhausts
// MaxAttempts, or ctx is cancelled — whichever comes first — sleeping
// the policy's jittered backoff between attempts. The returned error is
// nil on success, the last operation error when attempts ran out, and
// ctx's error joined with the last operation error on cancellation (so
// the caller sees both why it stopped and what kept failing).
func Do(ctx context.Context, p Policy, op func(context.Context) error) error {
	return DoWithSleep(ctx, p, nil, op)
}

// DoWithSleep is Do with an injectable sleeper, the unit-test seam: a
// fake clock observes the exact delays without waiting them out. sleep
// must return ctx's error if cancelled mid-wait; nil selects the real
// timer-based sleep.
func DoWithSleep(ctx context.Context, p Policy, sleep func(context.Context, time.Duration) error, op func(context.Context) error) error {
	if sleep == nil {
		sleep = realSleep
	}
	p = p.withDefaults()
	var lastErr error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return joinCtx(err, lastErr)
		}
		err := op(ctx)
		if err == nil {
			return nil
		}
		var st stop
		if errors.As(err, &st) {
			if errors.Is(st.err, errDone) {
				return nil
			}
			return st.err
		}
		lastErr = err
		if p.MaxAttempts > 0 && attempt+1 >= p.MaxAttempts {
			return lastErr
		}
		if err := sleep(ctx, p.Delay(attempt, nil)); err != nil {
			return joinCtx(err, lastErr)
		}
	}
}

// joinCtx pairs a cancellation with the failure it interrupted; a bare
// cancellation (no attempt had failed yet) stays bare.
func joinCtx(ctxErr, lastErr error) error {
	if lastErr == nil {
		return ctxErr
	}
	return errors.Join(ctxErr, lastErr)
}

func realSleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
