package analytic

import "fmt"

// CommNeed describes the outstanding communication of one enrolled worker:
// the worker index and the number of slots of master communication it
// still needs (program download plus one data message per assigned task
// not yet held).
type CommNeed struct {
	Proc  int
	Slots int
}

// CommStats holds the Section V.B communication-phase estimates for a
// configuration.
type CommStats struct {
	// Expected is E_comm(S): the estimated duration of the communication
	// phase in slots.
	Expected float64
	// Success is P_comm(S): the estimated probability that no enrolled
	// worker goes DOWN during the communication phase.
	Success float64
}

// CommEstimate computes the Section V.B estimates:
//
//	E_comm(S) = max( max_q E^(Pq)(n_q), Σ_q n_q / n_com )
//	P_comm(S) = Π_q P_ND^(Pq)(E_comm)
//
// The max with the aggregate-bandwidth term Σ n_q / n_com is taken
// unconditionally: when |S| <= n_com it is dominated by the per-worker
// term (each E^(Pq)(n_q) >= n_q >= Σ/n_com), so this matches the paper's
// two-case definition while avoiding the case split.
//
// Workers with zero outstanding slots contribute nothing to the duration
// but still multiply into the success probability, since they too must
// avoid DOWN while the phase lasts. ncom must be positive.
//
// CommEstimate uses the renewal-form per-worker expectation; the paper's
// printed form is available through CommEstimateForm.
func (pl *Platform) CommEstimate(needs []CommNeed, ncom int) CommStats {
	return pl.CommEstimateForm(needs, ncom, false)
}

// CommEstimateForm is CommEstimate with an explicit choice of the
// per-worker expectation form: paperForm selects E^(Pq)(n) with the
// (P⁺)^{n−1} denominator as printed in the paper (see
// Proc.ExpectedCommPaper).
func (pl *Platform) CommEstimateForm(needs []CommNeed, ncom int, paperForm bool) CommStats {
	if ncom <= 0 {
		panic(fmt.Sprintf("analytic: CommEstimate with ncom=%d", ncom))
	}
	maxSingle := 0.0
	total := 0
	for _, n := range needs {
		if n.Proc < 0 || n.Proc >= len(pl.Procs) {
			panic(fmt.Sprintf("analytic: CommEstimate proc %d out of range", n.Proc))
		}
		if n.Slots < 0 {
			panic("analytic: negative communication need")
		}
		var e float64
		if paperForm {
			e = pl.Procs[n.Proc].ExpectedCommPaper(n.Slots)
		} else {
			e = pl.Procs[n.Proc].ExpectedComm(n.Slots)
		}
		if e > maxSingle {
			maxSingle = e
		}
		total += n.Slots
	}
	expected := maxSingle
	if agg := float64(total) / float64(ncom); agg > expected {
		expected = agg
	}
	success := 1.0
	for _, n := range needs {
		success *= pl.Procs[n.Proc].SurviveQ(expected)
	}
	return CommStats{Expected: expected, Success: success}
}
