package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"tightsched/internal/markov"
	"tightsched/internal/rng"
)

func paperMatrix(s *rng.Stream) markov.Matrix {
	return markov.PerState(s.Uniform(0.90, 0.99), s.Uniform(0.90, 0.99), s.Uniform(0.90, 0.99))
}

func paperPlatform(seed uint64, p int) *Platform {
	s := rng.New(seed)
	ms := make([]markov.Matrix, p)
	for i := range ms {
		ms[i] = paperMatrix(s)
	}
	return NewPlatform(ms, DefaultEps)
}

func TestProcPuuMatchesSubChain(t *testing.T) {
	s := rng.New(1)
	for trial := 0; trial < 30; trial++ {
		m := paperMatrix(s)
		proc := NewProc(m, DefaultEps)
		sc := markov.NewSubChain(m)
		for tt := 0; tt <= 300; tt += 13 {
			want := sc.PuuT(tt)
			if got := proc.Puu(tt); math.Abs(got-want) > 1e-9 {
				t.Fatalf("Puu(%d) = %v, want %v", tt, got, want)
			}
		}
	}
}

func TestSingletonIdentities(t *testing.T) {
	s := rng.New(2)
	for trial := 0; trial < 30; trial++ {
		p := NewProc(paperMatrix(s), DefaultEps)
		// P+ = Eu/(1+Eu)
		if got := p.Eu() / (1 + p.Eu()); math.Abs(got-p.Pplus()) > 1e-9 {
			t.Fatalf("P+ identity violated: %v vs %v", got, p.Pplus())
		}
		if p.Pplus() <= 0 || p.Pplus() >= 1 {
			t.Fatalf("singleton P+ = %v out of (0,1)", p.Pplus())
		}
		if p.Ec() <= 0 {
			t.Fatalf("Ec = %v, want positive", p.Ec())
		}
	}
}

// The convolution definition of P+ must agree with the closed identity
// P+ = Eu/(1+Eu): sum the first-return distribution directly.
func TestPplusConvolutionIdentity(t *testing.T) {
	s := rng.New(3)
	for trial := 0; trial < 10; trial++ {
		p := NewProc(paperMatrix(s), DefaultEps)
		mass := 0.0
		pplus := []float64{0}
		for tt := 1; tt <= 4000; tt++ {
			v := p.Puu(tt)
			for tp := 1; tp < tt; tp++ {
				v -= pplus[tp] * p.Puu(tt-tp)
			}
			pplus = append(pplus, v)
			mass += v
		}
		if math.Abs(mass-p.Pplus()) > 1e-6 {
			t.Fatalf("convolution P+ = %v, identity P+ = %v", mass, p.Pplus())
		}
	}
}

func TestSetEvalMatchesDirectProduct(t *testing.T) {
	pl := paperPlatform(4, 6)
	se := pl.NewSetEval()
	members := []int{0, 2, 5}
	for _, q := range members {
		se.Add(q)
	}
	got := se.Stats()

	// Direct evaluation of the truncated series with a generous horizon.
	eu, a := 0.0, 0.0
	for tt := 1; tt <= 5000; tt++ {
		v := 1.0
		for _, q := range members {
			v *= pl.Procs[q].Puu(tt)
		}
		eu += v
		a += float64(tt) * v
	}
	if math.Abs(got.Eu-eu) > 1e-6*(1+eu) {
		t.Fatalf("Eu = %v, direct %v", got.Eu, eu)
	}
	if math.Abs(got.A-a) > 1e-5*(1+a) {
		t.Fatalf("A = %v, direct %v", got.A, a)
	}
	wantP := eu / (1 + eu)
	if math.Abs(got.Pplus-wantP) > 1e-9 {
		t.Fatalf("Pplus = %v, want %v", got.Pplus, wantP)
	}
}

func TestCandidateStatsMatchesAdd(t *testing.T) {
	pl := paperPlatform(5, 8)
	se := pl.NewSetEval()
	se.Add(1)
	se.Add(3)
	cand := se.CandidateStats(6)
	se2 := pl.NewSetEval()
	for _, q := range []int{1, 3, 6} {
		se2.Add(q)
	}
	full := se2.Stats()
	if math.Abs(cand.Eu-full.Eu) > 1e-9*(1+full.Eu) ||
		math.Abs(cand.Pplus-full.Pplus) > 1e-9 ||
		math.Abs(cand.Ec-full.Ec) > 1e-9*(1+full.Ec) {
		t.Fatalf("candidate %v != direct %v", cand, full)
	}
}

func TestCandidateStatsOfMemberIsStats(t *testing.T) {
	pl := paperPlatform(6, 4)
	se := pl.NewSetEval()
	se.Add(0)
	se.Add(1)
	if se.CandidateStats(1) != se.Stats() {
		t.Fatal("CandidateStats of an existing member should equal Stats")
	}
}

func TestCandidateStatsEmptySetIsSingleton(t *testing.T) {
	pl := paperPlatform(7, 3)
	se := pl.NewSetEval()
	got := se.CandidateStats(2)
	p := pl.Procs[2]
	if got.Pplus != p.Pplus() || got.Ec != p.Ec() {
		t.Fatalf("empty-set candidate %v, singleton consts P+=%v Ec=%v", got, p.Pplus(), p.Ec())
	}
}

func TestAddingWorkerReducesPplus(t *testing.T) {
	// Adding any fallible worker can only decrease the probability that
	// everyone is simultaneously UP again before a failure.
	pl := paperPlatform(8, 10)
	se := pl.NewSetEval()
	se.Add(0)
	prev := se.Stats().Pplus
	for q := 1; q < 10; q++ {
		se.Add(q)
		cur := se.Stats().Pplus
		if cur > prev+1e-9 {
			t.Fatalf("P+ increased from %v to %v when adding worker %d", prev, cur, q)
		}
		prev = cur
	}
}

func TestExpectedCompletionMonotoneInW(t *testing.T) {
	pl := paperPlatform(9, 5)
	st := pl.StatsOf([]int{0, 1, 2})
	prev := 0.0
	for w := 1; w <= 50; w++ {
		e := st.ExpectedCompletion(w)
		if e <= prev {
			t.Fatalf("E(W=%d) = %v not increasing (prev %v)", w, e, prev)
		}
		if e < float64(w) {
			t.Fatalf("E(W=%d) = %v below W", w, e)
		}
		prev = e
	}
	if st.ExpectedCompletion(0) != 0 {
		t.Fatal("E(0) should be 0")
	}
	if st.ExpectedCompletion(1) != 1 {
		t.Fatal("E(1) should be 1")
	}
}

func TestProbSuccessBasics(t *testing.T) {
	pl := paperPlatform(10, 5)
	st := pl.StatsOf([]int{0, 1})
	if st.ProbSuccess(1) != 1 {
		t.Fatal("one compute slot with everyone UP now always succeeds")
	}
	prev := 1.0
	for w := 2; w <= 30; w++ {
		p := st.ProbSuccess(w)
		if p >= prev || p <= 0 {
			t.Fatalf("ProbSuccess(%d) = %v not strictly decreasing in (0,1)", w, p)
		}
		prev = p
	}
}

func TestNoFailSet(t *testing.T) {
	// Processors that never go DOWN: P+ = 1 and Ec equals the mean
	// recurrence gap; for chains that never leave UP, Ec = 1 and E(W) = W.
	ms := []markov.Matrix{markov.AlwaysUp(), markov.AlwaysUp()}
	pl := NewPlatform(ms, DefaultEps)
	st := pl.StatsOf([]int{0, 1})
	if st.Pplus != 1 {
		t.Fatalf("P+ = %v, want 1", st.Pplus)
	}
	if math.Abs(st.Ec-1) > 1e-6 {
		t.Fatalf("Ec = %v, want 1", st.Ec)
	}
	if e := st.ExpectedCompletion(7); math.Abs(e-7) > 1e-6 {
		t.Fatalf("E(7) = %v, want 7", e)
	}
	if st.ProbSuccess(100) != 1 {
		t.Fatal("no-fail set must always succeed")
	}
}

func TestNoFailReclaimedSet(t *testing.T) {
	// UP <-> RECLAIMED but never DOWN: P+ = 1 but Ec > 1.
	m := markov.Matrix{
		{0.8, 0.2, 0},
		{0.5, 0.5, 0},
		{0, 0, 1},
	}
	pl := NewPlatform([]markov.Matrix{m}, DefaultEps)
	st := pl.StatsOf([]int{0})
	if st.Pplus != 1 {
		t.Fatalf("P+ = %v, want 1", st.Pplus)
	}
	// Mean first-return-to-UP: 1·0.8 + (1 + 1/0.5)·0.2 = 0.8 + 0.6 = 1.4.
	if math.Abs(st.Ec-1.4) > 1e-6 {
		t.Fatalf("Ec = %v, want 1.4", st.Ec)
	}
}

func TestSetEvalPanics(t *testing.T) {
	pl := paperPlatform(11, 3)
	se := pl.NewSetEval()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Stats on empty set", func() { se.Stats() })
	mustPanic("Add out of range", func() { se.Add(99) })
	se.Add(1)
	mustPanic("Add duplicate", func() { se.Add(1) })
	mustPanic("CandidateStats out of range", func() { se.CandidateStats(-1) })
}

func TestPlatformEpsValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewPlatform with eps=0 did not panic")
		}
	}()
	NewPlatform([]markov.Matrix{markov.Uniform(0.9)}, 0)
}

func TestExpectedCommBasics(t *testing.T) {
	pl := paperPlatform(12, 3)
	p := pl.Procs[0]
	if p.ExpectedComm(0) != 0 || p.ExpectedComm(-3) != 0 {
		t.Fatal("no communication need costs 0 slots")
	}
	if p.ExpectedComm(1) != 1 {
		t.Fatal("a single slot of communication for an UP worker costs 1")
	}
	prev := 1.0
	for n := 2; n <= 40; n++ {
		e := p.ExpectedComm(n)
		if e <= prev || e < float64(n) {
			t.Fatalf("ExpectedComm(%d) = %v not increasing or below n", n, e)
		}
		prev = e
	}
}

func TestCommEstimate(t *testing.T) {
	pl := paperPlatform(13, 4)
	needs := []CommNeed{{Proc: 0, Slots: 10}, {Proc: 1, Slots: 4}, {Proc: 2, Slots: 0}}
	cs := pl.CommEstimate(needs, 2)
	// Aggregate lower bound: 14 slots over 2 channels = 7.
	if cs.Expected < 7 {
		t.Fatalf("E_comm = %v below aggregate bound 7", cs.Expected)
	}
	// Per-worker lower bound.
	if cs.Expected < pl.Procs[0].ExpectedComm(10) {
		t.Fatalf("E_comm = %v below slowest single worker", cs.Expected)
	}
	if cs.Success <= 0 || cs.Success >= 1 {
		t.Fatalf("P_comm = %v out of (0,1)", cs.Success)
	}

	// With ample bandwidth the estimate equals the slowest worker.
	cs2 := pl.CommEstimate(needs, 100)
	if math.Abs(cs2.Expected-pl.Procs[0].ExpectedComm(10)) > 1e-12 {
		t.Fatalf("E_comm with ample ncom = %v, want %v", cs2.Expected, pl.Procs[0].ExpectedComm(10))
	}
	// More bandwidth never hurts.
	if cs2.Expected > cs.Expected+1e-12 {
		t.Fatal("increasing ncom increased E_comm")
	}
	if cs2.Success < cs.Success-1e-12 {
		t.Fatal("increasing ncom decreased P_comm")
	}
}

func TestCommEstimateEmptyAndPanics(t *testing.T) {
	pl := paperPlatform(14, 2)
	cs := pl.CommEstimate(nil, 5)
	if cs.Expected != 0 || cs.Success != 1 {
		t.Fatalf("empty comm estimate = %+v", cs)
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("ncom=0", func() { pl.CommEstimate(nil, 0) })
	mustPanic("bad proc", func() { pl.CommEstimate([]CommNeed{{Proc: 9, Slots: 1}}, 1) })
	mustPanic("negative slots", func() { pl.CommEstimate([]CommNeed{{Proc: 0, Slots: -1}}, 1) })
}

// Property: for arbitrary paper-style platforms, set statistics stay in
// their mathematical ranges.
func TestSetStatsRangesProperty(t *testing.T) {
	if err := quick.Check(func(seed uint32, sizeRaw uint8) bool {
		size := int(sizeRaw%6) + 1
		pl := paperPlatform(uint64(seed), size)
		members := make([]int, size)
		for i := range members {
			members[i] = i
		}
		st := pl.StatsOf(members)
		return st.Pplus > 0 && st.Pplus < 1 &&
			st.Ec >= 0 && st.Eu > 0 &&
			st.ExpectedCompletion(5) >= 5 &&
			st.ProbSuccess(5) > 0 && st.ProbSuccess(5) <= 1
	}, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the truncation precision is honored — evaluating with a much
// finer eps changes Eu by less than the coarser eps.
func TestEpsilonControl(t *testing.T) {
	s := rng.New(15)
	for trial := 0; trial < 10; trial++ {
		m := paperMatrix(s)
		coarse := NewProc(m, 1e-4)
		fine := NewProc(m, 1e-12)
		if math.Abs(coarse.Eu()-fine.Eu()) > 1e-3 {
			t.Fatalf("Eu precision gap %v exceeds eps", math.Abs(coarse.Eu()-fine.Eu()))
		}
	}
}

func TestStringForms(t *testing.T) {
	pl := paperPlatform(16, 1)
	if pl.Procs[0].String() == "" || pl.StatsOf([]int{0}).String() == "" {
		t.Fatal("empty string forms")
	}
}
