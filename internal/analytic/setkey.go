package analytic

// SetKey is a comparable bitset over processor indices: the memo-table key
// for set statistics, which depend only on set membership (never on the
// order members were added). The first 64 processors live in an inline
// word — platforms at the paper's scale (p = 20) never touch the string
// part — and higher indices are packed into a canonical string so the key
// stays usable as a map key for platforms of any size.
type SetKey struct {
	lo   uint64
	rest string
}

// withBit returns the key with processor q's bit set.
func (k SetKey) withBit(q int) SetKey {
	if q < 64 {
		k.lo |= 1 << uint(q)
		return k
	}
	// Slow path: unpack, set, repack canonically. Platforms beyond 64
	// processors hit this once per candidate evaluation miss only.
	words := unpackWords(k.rest)
	wi := q/64 - 1
	for len(words) <= wi {
		words = append(words, 0)
	}
	words[wi] |= 1 << (uint(q) % 64)
	k.rest = packWords(words)
	return k
}

// keyOfMembers builds the key of an explicit member list.
func keyOfMembers(members []int) SetKey {
	var k SetKey
	for _, q := range members {
		k = k.withBit(q)
	}
	return k
}

// packWords encodes the high words little-endian, trimming trailing zero
// words so equal sets always produce equal keys.
func packWords(words []uint64) string {
	n := len(words)
	for n > 0 && words[n-1] == 0 {
		n--
	}
	if n == 0 {
		return ""
	}
	buf := make([]byte, 8*n)
	for i := 0; i < n; i++ {
		w := words[i]
		for b := 0; b < 8; b++ {
			buf[8*i+b] = byte(w >> (8 * uint(b)))
		}
	}
	return string(buf)
}

func unpackWords(s string) []uint64 {
	words := make([]uint64, len(s)/8)
	for i := range words {
		for b := 0; b < 8; b++ {
			words[i] |= uint64(s[8*i+b]) << (8 * uint(b))
		}
	}
	return words
}
