package analytic

import (
	"math"
	"testing"

	"tightsched/internal/markov"
	"tightsched/internal/rng"
)

// simulateSet runs the joint availability chain of a worker set forward
// from all-UP and reports, for one episode:
//
//	success  — whether the set accumulated w all-UP slots (the slot at
//	           time 0 counts as the first) before any member went DOWN,
//	duration — the number of slots from the first compute slot to the
//	           last, inclusive, when successful.
func simulateSet(ms []markov.Matrix, w int, stream *rng.Stream) (success bool, duration int) {
	states := make([]markov.State, len(ms))
	for i := range states {
		states[i] = markov.Up
	}
	done := 1 // slot 0 computes
	t := 0
	for done < w {
		t++
		allUp := true
		for i, m := range ms {
			states[i] = m.Step(states[i], stream.Float64())
			switch states[i] {
			case markov.Down:
				return false, 0
			case markov.Reclaimed:
				allUp = false
			}
		}
		if allUp {
			done++
		}
		if t > 5_000_000 {
			return false, 0 // defensive; unreachable for test chains
		}
	}
	return true, t + 1
}

// TestMonteCarloPplus validates P⁺(S) against direct simulation: P⁺ is
// the probability of reaching the second all-UP slot (w=2) before a
// failure.
func TestMonteCarloPplus(t *testing.T) {
	s := rng.New(21)
	for trial := 0; trial < 4; trial++ {
		ms := []markov.Matrix{paperMatrix(s), paperMatrix(s), paperMatrix(s)}
		pl := NewPlatform(ms, DefaultEps)
		st := pl.StatsOf([]int{0, 1, 2})

		stream := rng.New(uint64(1000 + trial))
		const episodes = 60000
		succ := 0
		for e := 0; e < episodes; e++ {
			ok, _ := simulateSet(ms, 2, stream)
			if ok {
				succ++
			}
		}
		got := float64(succ) / episodes
		if math.Abs(got-st.Pplus) > 0.01 {
			t.Fatalf("trial %d: MC P+ = %v, analytic %v", trial, got, st.Pplus)
		}
	}
}

// TestMonteCarloProbSuccess validates (P⁺)^{W−1} as the probability of
// completing a W-slot workload.
func TestMonteCarloProbSuccess(t *testing.T) {
	s := rng.New(22)
	ms := []markov.Matrix{paperMatrix(s), paperMatrix(s)}
	pl := NewPlatform(ms, DefaultEps)
	st := pl.StatsOf([]int{0, 1})
	const w = 6
	want := st.ProbSuccess(w)

	stream := rng.New(2001)
	const episodes = 60000
	succ := 0
	for e := 0; e < episodes; e++ {
		ok, _ := simulateSet(ms, w, stream)
		if ok {
			succ++
		}
	}
	got := float64(succ) / episodes
	if math.Abs(got-want) > 0.012 {
		t.Fatalf("MC success prob = %v, analytic %v", got, want)
	}
}

// TestMonteCarloExpectedCompletion is the reproduction ablation for the
// E(S)(W) closed form: the renewal form 1 + (W−1)·Ec/P⁺ must match the
// simulated conditional expectation; the formula as printed in the paper,
// 1 + (W−1)·Ec/(P⁺)^{W−1}, overestimates it for W > 2 whenever P⁺ < 1.
func TestMonteCarloExpectedCompletion(t *testing.T) {
	s := rng.New(23)
	ms := []markov.Matrix{paperMatrix(s), paperMatrix(s)}
	pl := NewPlatform(ms, DefaultEps)
	st := pl.StatsOf([]int{0, 1})

	for _, w := range []int{2, 5, 10} {
		stream := rng.New(uint64(3000 + w))
		sum, n := 0.0, 0
		for e := 0; e < 400000 && n < 30000; e++ {
			ok, d := simulateSet(ms, w, stream)
			if ok {
				sum += float64(d)
				n++
			}
		}
		if n < 1000 {
			t.Fatalf("W=%d: too few successful episodes (%d) to estimate", w, n)
		}
		mc := sum / float64(n)
		renewal := st.ExpectedCompletion(w)
		if math.Abs(mc-renewal)/renewal > 0.03 {
			t.Fatalf("W=%d: MC E = %v, renewal form %v (rel err > 3%%)", w, mc, renewal)
		}
		if w > 2 {
			paper := st.ExpectedCompletionPaper(w)
			if paper <= renewal {
				t.Fatalf("W=%d: paper form %v should exceed renewal form %v when P+<1",
					w, paper, renewal)
			}
		}
	}
}

// TestMonteCarloSingletonEc validates the singleton gap expectation:
// conditional expected gap Ec/P⁺ equals the mean simulated time between
// consecutive UP slots with no DOWN in between.
func TestMonteCarloSingletonEc(t *testing.T) {
	s := rng.New(24)
	m := paperMatrix(s)
	pl := NewPlatform([]markov.Matrix{m}, DefaultEps)
	p := pl.Procs[0]

	stream := rng.New(4001)
	sum, n := 0.0, 0
	for e := 0; e < 200000; e++ {
		st := markov.Up
		for t := 1; ; t++ {
			st = m.Step(st, stream.Float64())
			if st == markov.Down {
				break
			}
			if st == markov.Up {
				sum += float64(t)
				n++
				break
			}
			if t > 100000 {
				break
			}
		}
	}
	mc := sum / float64(n)
	want := p.Ec() / p.Pplus()
	if math.Abs(mc-want)/want > 0.02 {
		t.Fatalf("MC conditional gap = %v, analytic Ec/P+ = %v", mc, want)
	}
}
