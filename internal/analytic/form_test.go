package analytic

import (
	"math"
	"testing"
)

func TestExpectedCommPaperVsRenewal(t *testing.T) {
	pl := paperPlatform(50, 4)
	for _, p := range pl.Procs {
		if p.ExpectedCommPaper(0) != 0 || p.ExpectedCommPaper(-1) != 0 {
			t.Fatal("zero need should cost 0")
		}
		if p.ExpectedCommPaper(1) != 1 || p.ExpectedComm(1) != 1 {
			t.Fatal("single slot should cost 1")
		}
		// The paper form dominates the renewal form and the gap grows
		// with n (the (P⁺)^{n−1} denominator shrinks).
		prevGap := 0.0
		for n := 2; n <= 30; n++ {
			paper := p.ExpectedCommPaper(n)
			renewal := p.ExpectedComm(n)
			if paper < renewal {
				t.Fatalf("paper form %v below renewal %v at n=%d", paper, renewal, n)
			}
			gap := paper - renewal
			if gap < prevGap-1e-9 {
				t.Fatalf("gap shrank at n=%d: %v -> %v", n, prevGap, gap)
			}
			prevGap = gap
		}
	}
}

func TestCommEstimateFormConsistency(t *testing.T) {
	pl := paperPlatform(51, 4)
	needs := []CommNeed{{Proc: 0, Slots: 12}, {Proc: 1, Slots: 3}}
	renewal := pl.CommEstimateForm(needs, 2, false)
	paper := pl.CommEstimateForm(needs, 2, true)
	if def := pl.CommEstimate(needs, 2); def != renewal {
		t.Fatalf("CommEstimate default should be the renewal form: %+v vs %+v", def, renewal)
	}
	if paper.Expected < renewal.Expected {
		t.Fatalf("paper-form estimate %v below renewal %v", paper.Expected, renewal.Expected)
	}
	// Longer expected phases can only lower the survival probability.
	if paper.Success > renewal.Success+1e-12 {
		t.Fatalf("paper-form success %v above renewal %v", paper.Success, renewal.Success)
	}
}

func TestExpectedCompletionPaperDominates(t *testing.T) {
	pl := paperPlatform(52, 5)
	st := pl.StatsOf([]int{0, 1, 2})
	for w := 1; w <= 40; w++ {
		paper := st.ExpectedCompletionPaper(w)
		renewal := st.ExpectedCompletion(w)
		if paper < renewal-1e-9 {
			t.Fatalf("paper form below renewal at W=%d: %v vs %v", w, paper, renewal)
		}
	}
	// They agree exactly at W = 1 and W = 2.
	if st.ExpectedCompletionPaper(1) != st.ExpectedCompletion(1) {
		t.Fatal("forms must agree at W=1")
	}
	if math.Abs(st.ExpectedCompletionPaper(2)-st.ExpectedCompletion(2)) > 1e-12 {
		t.Fatal("forms must agree at W=2")
	}
}

func TestSurviveQMatchesSurviveReal(t *testing.T) {
	pl := paperPlatform(53, 3)
	for _, p := range pl.Procs {
		for i := 0; i < 400; i++ {
			tt := float64(i) * 0.25 // on-grid points are exact
			q := p.SurviveQ(tt)
			r := p.SurviveReal(tt)
			if math.Abs(q-r) > 1e-12 {
				t.Fatalf("on-grid SurviveQ(%v) = %v, real %v", tt, q, r)
			}
		}
		// Off-grid points are within the neighbouring grid values.
		for i := 1; i < 200; i++ {
			tt := float64(i)*0.25 + 0.11
			q := p.SurviveQ(tt)
			lo := p.SurviveReal(tt + 0.25)
			hi := p.SurviveReal(tt - 0.25)
			if q < lo-1e-12 || q > hi+1e-12 {
				t.Fatalf("SurviveQ(%v) = %v outside [%v, %v]", tt, q, lo, hi)
			}
		}
		if p.SurviveQ(0) != 1 || p.SurviveQ(-1) != 1 {
			t.Fatal("non-positive time should survive with probability 1")
		}
	}
}
