// Package analytic implements Section V of Casanova, Dufossé, Robert and
// Vivien (HCW 2013): ε-approximations, under the 3-state Markov
// availability model, of
//
//   - P⁺(S): the probability that a set S of workers, all UP now, will all
//     be UP simultaneously again before any of them goes DOWN;
//   - E(S)(W): the expected number of time-slots for S to complete a
//     workload of W coupled compute slots, conditioned on success;
//   - the coarse communication-phase estimates E_comm(S) and P_comm(S) of
//     Section V.B, which account for the master's bounded multi-port
//     bandwidth constraint n_com.
//
// The core identities (proof of Theorem 5.1) are, writing
// Puu_S(t) = Π_{q∈S} P(q)_{u-t->u}:
//
//	Eu(S) = Σ_{t>0} Puu_S(t)            expected number of all-UP slots
//	                                    before the first failure,
//	A(S)  = Σ_{t>0} t·Puu_S(t),
//	P⁺(S) = Eu / (1 + Eu)               (= 1 if no member can fail),
//	Ec(S) = A·(1 − P⁺) / (1 + Eu)       unconditioned expected gap length.
//
// Series are truncated with the paper's geometric tail bound driven by
// Λ = Π_q λ1(q), the product of the dominant eigenvalues of the members'
// restricted live-state chains.
//
// Reproduction note: the paper prints E(S)(W) = 1 + (W−1)·Ec/(P⁺)^{W−1}.
// A renewal argument (every all-UP slot is a regeneration point of the
// joint chain) gives E(S)(W) = 1 + (W−1)·Ec/P⁺, which is what Monte-Carlo
// simulation confirms (see montecarlo_test.go). SetStats exposes both as
// ExpectedCompletion (renewal form, used by the heuristics) and
// ExpectedCompletionPaper (as printed).
package analytic

import (
	"fmt"
	"math"

	"tightsched/internal/markov"
)

// DefaultEps is the default series-truncation precision ε.
const DefaultEps = 1e-9

// MaxHorizon caps series horizons to keep degenerate chains (Λ → 1) from
// looping unboundedly. With the paper's parameter ranges the bound-derived
// horizon is far below this cap.
const MaxHorizon = 1 << 16

// Proc holds the per-processor analytic state: the restricted live-state
// chain, its dominant eigenvalue, the single-processor series constants in
// closed form, and a lazily grown cache of Puu(t) values used by set-level
// series.
type Proc struct {
	sub     *markov.SubChain
	canFail bool
	lam1    float64

	// Restricted live-state matrix entries, for the Puu recurrence.
	m00, m01, m10, m11 float64

	// Single-processor series constants ({q} as a singleton set).
	eu, a, ec, pplus float64

	// puuCache[t] = Puu(t); grown on demand by the 2x2 recurrence.
	puuCache []float64
	r0, r1   float64 // row vector e_u · M^T at T = len(puuCache)-1

	// surviveCache[i] = SurviveReal(i/surviveGridStep), grown on demand.
	// Heuristics evaluate survival at fractional expected times inside
	// tight loops; the grid avoids a math.Pow per call.
	surviveCache []float64

	// commCache[n] and commPaperCache[n] memoize ExpectedComm(n) and
	// ExpectedCommPaper(n): communication needs are small integers that
	// recur every candidate evaluation, and the paper form costs a
	// math.Pow per call. Grown on demand up to commCacheLimit.
	commCache      []float64
	commPaperCache []float64
}

// commCacheLimit bounds the communication-expectation caches; needs
// beyond it (far past any paper-scale Tprog + m·Tdata) fall through to
// direct evaluation.
const commCacheLimit = 1 << 12

// surviveGridStep is the resolution (points per slot) of the quantized
// survival cache. A quarter-slot grid changes survival values by well
// under the noise the Section V.B communication estimate already carries.
const surviveGridStep = 4

// NewProc builds the analytic state of one processor with availability
// matrix m, truncating its singleton series at precision eps.
func NewProc(m markov.Matrix, eps float64) *Proc {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	if eps <= 0 {
		panic("analytic: eps must be positive")
	}
	sub := markov.NewSubChain(m)
	p := &Proc{
		sub:      sub,
		canFail:  m.CanFail(),
		lam1:     sub.Lambda1(),
		m00:      m[markov.Up][markov.Up],
		m01:      m[markov.Up][markov.Reclaimed],
		m10:      m[markov.Reclaimed][markov.Up],
		m11:      m[markov.Reclaimed][markov.Reclaimed],
		puuCache: []float64{1},
		r0:       1,
		r1:       0,
	}
	p.computeSingletonConstants(eps)
	return p
}

// computeSingletonConstants sums Eu({q}) and A({q}) numerically with the
// geometric tail bound, then derives P⁺ and Ec from the closed identities.
func (p *Proc) computeSingletonConstants(eps float64) {
	if !p.canFail {
		// Eu diverges; P⁺ = 1 and Ec is the mean first-return-to-UP time
		// of the live-state chain, computed by the convolution method.
		p.pplus = 1
		p.eu = math.Inf(1)
		p.a = math.Inf(1)
		p.ec = firstReturnMean(p.Puu, eps)
		return
	}
	lam := p.lam1
	eu, a := 0.0, 0.0
	lamPow := 1.0
	for t := 1; t <= MaxHorizon; t++ {
		v := p.Puu(t)
		eu += v
		a += float64(t) * v
		lamPow *= lam
		if seriesTailsBelow(lamPow, lam, t, eps) {
			break
		}
	}
	p.eu = eu
	p.a = a
	p.pplus = eu / (1 + eu)
	p.ec = a * (1 - p.pplus) / (1 + eu)
}

// seriesTailsBelow reports whether the geometric tail bounds for both
// Σ Puu(t) and Σ t·Puu(t) past time t are below eps, given lamPow = λ^t.
// The bounds are Σ_{s>t} λ^s = λ^{t+1}/(1-λ) and
// Σ_{s>t} s·λ^s = λ^{t+1}·((t+1) + λ/(1-λ))/(1-λ).
func seriesTailsBelow(lamPow, lam float64, t int, eps float64) bool {
	if lam >= 1 {
		return false
	}
	tailEu := lamPow * lam / (1 - lam)
	tailA := lamPow * lam * (float64(t+1) + lam/(1-lam)) / (1 - lam)
	return tailEu < eps && tailA < eps
}

// Puu returns P(q)_{u-t->u} from the cache, extending it as needed.
func (p *Proc) Puu(t int) float64 {
	for t >= len(p.puuCache) {
		p.r0, p.r1 = p.r0*p.m00+p.r1*p.m10, p.r0*p.m01+p.r1*p.m11
		p.puuCache = append(p.puuCache, p.r0)
	}
	return p.puuCache[t]
}

// firstReturnMean computes Σ t·P⁺(t) for a set that cannot fail, where
// P⁺(t) is the first time all members are simultaneously UP again,
// obtained by the renewal convolution
//
//	P⁺(t) = Puu_S(t) − Σ_{0<t'<t} P⁺(t')·Puu_S(t−t').
//
// puuSet(t) must return Puu_S(t). The loop stops once the remaining
// probability mass is below eps (assigning it to the cutoff time) or at
// MaxHorizon.
func firstReturnMean(puuSet func(int) float64, eps float64) float64 {
	pplus := make([]float64, 1, 64) // pplus[0] unused
	mass, mean := 0.0, 0.0
	for t := 1; t <= MaxHorizon; t++ {
		v := puuSet(t)
		for tp := 1; tp < t; tp++ {
			v -= pplus[tp] * puuSet(t-tp)
		}
		if v < 0 {
			v = 0
		}
		pplus = append(pplus, v)
		mass += v
		mean += float64(t) * v
		if 1-mass < eps {
			mean += (1 - mass) * float64(t)
			return mean
		}
	}
	return mean
}

// CanFail reports whether the processor can reach DOWN from a live state.
func (p *Proc) CanFail() bool { return p.canFail }

// Lambda1 returns the dominant eigenvalue of the restricted chain.
func (p *Proc) Lambda1() float64 { return p.lam1 }

// Pplus returns P⁺({q}): the probability the processor, UP now, is UP
// again later without going DOWN in between.
func (p *Proc) Pplus() float64 { return p.pplus }

// Ec returns the unconditioned expected gap length of the singleton set.
func (p *Proc) Ec() float64 { return p.ec }

// Eu returns Eu({q}) (infinite when the processor cannot fail).
func (p *Proc) Eu() float64 { return p.eu }

// SurviveReal returns the probability of not visiting DOWN during t slots
// (t may be fractional; see markov.SubChain.SurviveReal).
func (p *Proc) SurviveReal(t float64) float64 { return p.sub.SurviveReal(t) }

// SurviveQ returns SurviveReal(t) quantized to a quarter-slot grid, with
// the grid values cached. It is the fast path used inside the heuristics'
// candidate-scoring loops, where exact fractional evaluation would spend
// most of its time in math.Pow.
func (p *Proc) SurviveQ(t float64) float64 {
	if t <= 0 {
		return 1
	}
	idx := int(t*surviveGridStep + 0.5)
	const maxIdx = MaxHorizon * surviveGridStep
	if idx > maxIdx {
		idx = maxIdx
	}
	// The grid is sparse: unvisited indices hold NaN (SurviveReal is a
	// probability, so NaN is free as the not-yet-computed sentinel) and
	// each grid point pays its SurviveReal exactly once, on first use.
	// Filling densely instead would evaluate every quarter-slot point up
	// to the largest horizon ever asked — the heuristics ask at scattered
	// communication horizons, so almost all of that work would be wasted.
	for idx >= len(p.surviveCache) {
		p.surviveCache = append(p.surviveCache, math.NaN())
	}
	v := p.surviveCache[idx]
	if math.IsNaN(v) {
		v = p.sub.SurviveReal(float64(idx) / surviveGridStep)
		p.surviveCache[idx] = v
	}
	return v
}

// ExpectedComm returns E^(Pq)(n): the expected number of slots for this
// worker, UP now, to complete n slots of communication with the master,
// conditioned on not going DOWN (Section V.B with S = {Pq}), in the
// renewal form. Zero when n <= 0. Values are memoized per n.
func (p *Proc) ExpectedComm(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n < commCacheLimit {
		for n >= len(p.commCache) {
			k := len(p.commCache)
			p.commCache = append(p.commCache, 1+float64(k-1)*p.ec/p.pplus)
		}
		return p.commCache[n]
	}
	return 1 + float64(n-1)*p.ec/p.pplus
}

// ExpectedCommPaper is ExpectedComm with the paper's printed denominator
// (P⁺)^{n−1} (see SetStats.ExpectedCompletionPaper): the per-slot gap cost
// is divided by the probability that all n−1 remaining slots succeed, so
// the estimate grows rapidly for unreliable workers with large transfers.
// Values are memoized per n — the math.Pow is paid once per need size.
func (p *Proc) ExpectedCommPaper(n int) float64 {
	if n <= 0 {
		return 0
	}
	if n < commCacheLimit {
		for n >= len(p.commPaperCache) {
			k := len(p.commPaperCache)
			p.commPaperCache = append(p.commPaperCache,
				1+float64(k-1)*p.ec/math.Pow(p.pplus, float64(k-1)))
		}
		return p.commPaperCache[n]
	}
	return 1 + float64(n-1)*p.ec/math.Pow(p.pplus, float64(n-1))
}

func (p *Proc) String() string {
	return fmt.Sprintf("Proc[λ1=%.6f P+=%.6f Ec=%.4f canFail=%v]", p.lam1, p.pplus, p.ec, p.canFail)
}
