package analytic

import "math"

// spectralMargin is how close to 1 a term ratio may get before the
// closed-form geometric sum is abandoned for the series path: at
// |r| -> 1 the 1/(1-r) factors amplify rounding faster than the series'
// own truncation error grows.
const spectralMargin = 1e-9

// spectralStats evaluates the Theorem 5.1 sums of a set in closed form.
//
// Each member's restricted live-state chain is 2×2, so
// Puu_q(t) = a_q·λ1_q^t + b_q·λ2_q^t exactly (markov.SubChain.PuuSpectrum)
// and the set product expands into 2^|S| geometric terms:
//
//	Puu_S(t) = Π_q (a_q·λ1_q^t + b_q·λ2_q^t) = Σ_b C_b · r_b^t
//
// over eigenvalue selections b, with C_b = Π_q coef and r_b = Π_q λ.
// The sums then close exactly — no truncation horizon at all:
//
//	Eu(S) = Σ_b C_b · r_b/(1−r_b)
//	A(S)  = Σ_b C_b · r_b/(1−r_b)²
//
// in O(2^|S|) multiply-adds (the expansion is built member by member, so
// the total work is Σ_i 2^i < 2^{|S|+1}).
//
// It reports ok = false — fall back to the series — when a member chain
// is defective (no two-term form), when the set cannot fail (Eu diverges
// and Ec needs the convolution), or when a term ratio is too close to ±1.
// members must be in canonical (sorted) order so the products, and hence
// the returned floats, are a pure function of membership.
func (pl *Platform) spectralStats(members []int) (SetStats, bool) {
	canFail := false
	for _, q := range members {
		canFail = canFail || pl.Procs[q].CanFail()
	}
	if !canFail {
		return SetStats{}, false
	}

	n := 1 << len(members)
	if cap(pl.scoef) < n {
		pl.scoef = make([]float64, n)
		pl.sratio = make([]float64, n)
	}
	coefs, ratios := pl.scoef[:1], pl.sratio[:1]
	coefs[0], ratios[0] = 1, 1
	for _, q := range members {
		a, b, lam1, lam2, defective := pl.Procs[q].sub.PuuSpectrum()
		if defective {
			return SetStats{}, false
		}
		sz := len(coefs)
		coefs, ratios = coefs[:2*sz], ratios[:2*sz]
		for i := sz - 1; i >= 0; i-- {
			c, r := coefs[i], ratios[i]
			coefs[2*i], ratios[2*i] = c*a, r*lam1
			coefs[2*i+1], ratios[2*i+1] = c*b, r*lam2
		}
	}

	eu, aSum := 0.0, 0.0
	for i, c := range coefs {
		r := ratios[i]
		if math.Abs(r) >= 1-spectralMargin {
			return SetStats{}, false
		}
		g := r / (1 - r)
		eu += c * g
		aSum += c * g / (1 - r)
	}
	if !(eu > 0) || !(aSum > 0) {
		// Cancellation pathologies; the series path is the safe answer.
		return SetStats{}, false
	}
	pplus := eu / (1 + eu)
	return SetStats{
		Eu:    eu,
		A:     aSum,
		Pplus: pplus,
		Ec:    aSum * (1 - pplus) / (1 + eu),
	}, true
}
