package analytic

import (
	"math"

	"tightsched/internal/markov"
)

// Options tune a Platform's evaluation strategy beyond the series
// precision eps. The zero value is the default: set-statistics
// memoization on, spectral fast path off (the spectral path is exact up
// to floating-point rounding rather than bit-identical to the truncated
// series, so it is opt-in; see Spectral).
type Options struct {
	// DisableMemo turns off the membership-keyed SetStats memo table,
	// restoring the seed behavior of re-summing series on every
	// evaluation. Kept for differential testing and micro-benchmarks;
	// production paths should leave it off.
	DisableMemo bool
	// Spectral enables the closed-form fast path: each restricted
	// live-state chain is 2×2, so Puu_q(t) = a_q·λ1_q^t + b_q·λ2_q^t
	// exactly and Π_q Puu_q(t) expands into 2^|S| geometric series with
	// closed-form sums — exact in O(2^|S|) instead of O(|S|·T). Used for
	// sets of at most SpectralCutoff members; larger sets, sets with a
	// defective member chain, and sets that cannot fail fall back to the
	// truncated series. Spectral values agree with the series within the
	// truncation precision (validated in tests) but are not bit-identical
	// to it, so heuristic decisions may differ within eps.
	Spectral bool
	// SpectralCutoff caps the set size taking the spectral path
	// (DefaultSpectralCutoff when 0). The expansion holds 2^cutoff
	// coefficient/ratio pairs in scratch buffers.
	SpectralCutoff int
}

// DefaultSpectralCutoff is the largest set size routed through the
// spectral evaluator by default. At 12 the expansion is 4096 terms —
// cheaper than a fresh series pass at the paper's eigenvalue ranges —
// and the paper's configurations (at most m = 10 enrolled workers) sit
// comfortably below it.
const DefaultSpectralCutoff = 12

// memoLimit bounds the memo table. Long-lived platforms (a sweep worker
// reusing one platform across trials) could otherwise accumulate every
// set ever scored; on overflow the table is cleared and rebuilt, which is
// semantically invisible because memoized values are canonical (see
// computeStats) and therefore reproducible.
const memoLimit = 1 << 15

// spectralCutoff returns the effective spectral set-size cap.
func (o Options) spectralCutoff() int {
	if o.SpectralCutoff > 0 {
		return o.SpectralCutoff
	}
	return DefaultSpectralCutoff
}

// MemoStats counts set-statistics memo traffic on a Platform. A hit is a
// lookup that found a canonical entry; a miss is a lookup that forced a
// fresh series (or spectral) evaluation. Entries is the current table
// size, i.e. the number of distinct equivalence classes held (it drops
// back when the table clears on overflow, while the hit/miss totals keep
// accumulating). Counters are monotone over the platform's lifetime, so
// per-cell figures come from snapshot deltas.
type MemoStats struct {
	Hits   uint64
	Misses uint64
	// Entries is the number of distinct memoized sets currently held.
	Entries int
}

// MemoStats returns the platform's memo counters. All zero when the memo
// is disabled.
func (pl *Platform) MemoStats() MemoStats {
	return MemoStats{
		Hits:    pl.memoHits,
		Misses:  pl.memoMisses,
		Entries: len(pl.memoLo) + len(pl.memoHi),
	}
}

// Sub returns the counter delta s - prev (Entries stays absolute: it is a
// gauge, not a counter).
func (s MemoStats) Sub(prev MemoStats) MemoStats {
	return MemoStats{
		Hits:    s.Hits - prev.Hits,
		Misses:  s.Misses - prev.Misses,
		Entries: s.Entries,
	}
}

// memoLookup returns the memo entry for a key, or nil.
func (pl *Platform) memoLookup(k SetKey) *memoEntry {
	var e *memoEntry
	if k.rest == "" {
		e = pl.memoLo[k.lo]
	} else {
		e = pl.memoHi[k]
	}
	if e != nil {
		pl.memoHits++
	} else {
		pl.memoMisses++
	}
	return e
}

// memoStore records the canonical statistics of a key, clearing the table
// first if it is full, and returns the new entry.
func (pl *Platform) memoStore(k SetKey, st SetStats) *memoEntry {
	if len(pl.memoLo)+len(pl.memoHi) >= memoLimit {
		clear(pl.memoLo)
		clear(pl.memoHi)
	}
	e := &memoEntry{stats: st}
	if k.rest == "" {
		pl.memoLo[k.lo] = e
	} else {
		pl.memoHi[k] = e
	}
	return e
}

// computeStats is the canonical miss path of the memo table: it evaluates
// the membership (plus the optional extra candidate, ignored when
// negative) in sorted index order, independent of the order the caller
// discovered the set in, so a memoized value is a pure function of
// membership. That canonicality is what makes memo reuse safe across
// decision epochs, trials and (per-worker) runs: any two computations of
// the same set produce bit-identical floats.
func (pl *Platform) computeStats(members []int, extra int) SetStats {
	pl.scratchMembers = append(pl.scratchMembers[:0], members...)
	if extra >= 0 {
		pl.scratchMembers = append(pl.scratchMembers, extra)
	}
	sorted := pl.scratchMembers
	insertionSortInts(sorted)
	if pl.opts.Spectral && len(sorted) <= pl.opts.spectralCutoff() {
		if st, ok := pl.spectralStats(sorted); ok {
			return st
		}
	}
	if pl.canon == nil {
		pl.canon = pl.newSeriesSetEval()
	} else {
		pl.canon.Reset()
	}
	for _, q := range sorted {
		pl.canon.Add(q)
	}
	return pl.canon.statsSeries()
}

// insertionSortInts sorts in place. Member lists are tiny (at most the
// platform size, typically under a dozen) and usually already sorted, so
// insertion sort beats sort.Ints without allocating an interface.
func insertionSortInts(a []int) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// PlatformCache reuses analytic Platforms across simulation runs that
// share believed matrices — consecutive trials and heuristics of one
// sweep point see the identical matrix set, so one worker re-deriving
// eigendecompositions, series constants and the whole SetStats memo per
// run is pure waste. Like Platform itself, a cache must stay confined to
// a single goroutine: each worker of a pool owns one.
//
// Reuse is bit-transparent: memoized statistics are canonical, so a
// platform warmed by a previous run returns exactly the floats a cold
// platform would compute.
type PlatformCache struct {
	entries map[string]*Platform
}

// platformCacheLimit bounds the number of distinct matrix sets held. A
// sweep worker processes points in grid order, so consecutive jobs
// overwhelmingly share one matrix set; on overflow the cache is cleared.
const platformCacheLimit = 8

// NewPlatformCache returns an empty single-goroutine platform cache.
func NewPlatformCache() *PlatformCache {
	return &PlatformCache{entries: make(map[string]*Platform)}
}

// Get returns the cached platform for the matrix set, building (and
// caching) it on first sight. eps and opts are part of the identity.
func (c *PlatformCache) Get(ms []markov.Matrix, eps float64, opts Options) *Platform {
	key := matrixSetKey(ms, eps, opts)
	if pl, ok := c.entries[key]; ok {
		return pl
	}
	pl := NewPlatformWith(ms, eps, opts)
	if len(c.entries) >= platformCacheLimit {
		clear(c.entries)
	}
	c.entries[key] = pl
	return pl
}

// matrixSetKey serializes the full identity of a platform build: eps,
// options, and every matrix entry bit-for-bit.
func matrixSetKey(ms []markov.Matrix, eps float64, opts Options) string {
	buf := make([]byte, 0, 2+8+len(ms)*9*8)
	var flags byte
	if opts.DisableMemo {
		flags |= 1
	}
	if opts.Spectral {
		flags |= 2
	}
	buf = append(buf, flags, byte(opts.spectralCutoff()))
	buf = appendFloatBits(buf, eps)
	for _, m := range ms {
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				buf = appendFloatBits(buf, m[i][j])
			}
		}
	}
	return string(buf)
}

func appendFloatBits(buf []byte, v float64) []byte {
	bits := math.Float64bits(v)
	for b := 0; b < 8; b++ {
		buf = append(buf, byte(bits>>(8*uint(b))))
	}
	return buf
}
