package analytic

import (
	"fmt"
	"math"

	"tightsched/internal/markov"
)

// Platform bundles the analytic state of every processor of a simulated
// platform. A Platform (and everything reachable from it) must be confined
// to a single goroutine: the per-processor Puu caches grow lazily and are
// not synchronized. Construction is cheap, so each concurrent simulation
// builds its own.
type Platform struct {
	Procs []*Proc
	Eps   float64

	// horizons memoizes horizonFor by eigenvalue product. Products of the
	// per-processor eigenvalues recur bit-exactly across candidate
	// evaluations, so a plain map hits almost always.
	horizons map[float64]int
}

// NewPlatform builds per-processor analytic state for the given
// availability matrices with series precision eps (use DefaultEps).
func NewPlatform(ms []markov.Matrix, eps float64) *Platform {
	if eps <= 0 {
		panic("analytic: eps must be positive")
	}
	pl := &Platform{Procs: make([]*Proc, len(ms)), Eps: eps, horizons: make(map[float64]int)}
	for i, m := range ms {
		pl.Procs[i] = NewProc(m, eps)
	}
	return pl
}

// SetStats holds the Section V quantities of a worker set S.
type SetStats struct {
	// Eu is the expected number of simultaneous all-UP slots before the
	// first member failure (infinite if no member can fail).
	Eu float64
	// A is Σ t·Puu_S(t) (infinite if no member can fail).
	A float64
	// Pplus is P⁺(S), the probability all members are simultaneously UP
	// again before any goes DOWN.
	Pplus float64
	// Ec is the unconditioned expected gap length Σ t·P⁺(t).
	Ec float64
}

// ExpectedCompletion returns E(S)(W) in the renewal form
// 1 + (W−1)·Ec/P⁺: the expected number of slots for the set to accumulate
// W simultaneous compute slots, conditioned on no failure. W <= 0 yields 0.
func (s SetStats) ExpectedCompletion(w int) float64 {
	if w <= 0 {
		return 0
	}
	if s.Pplus <= 0 {
		return math.Inf(1)
	}
	return 1 + float64(w-1)*s.Ec/s.Pplus
}

// ExpectedCompletionPaper returns the formula exactly as printed in the
// paper, 1 + (W−1)·Ec/(P⁺)^{W−1}. Kept for the reproduction ablation; see
// the package comment and EXPERIMENTS.md.
func (s SetStats) ExpectedCompletionPaper(w int) float64 {
	if w <= 0 {
		return 0
	}
	if s.Pplus <= 0 {
		return math.Inf(1)
	}
	return 1 + float64(w-1)*s.Ec/math.Pow(s.Pplus, float64(w-1))
}

// ProbSuccess returns the probability that the set completes a workload of
// W compute slots without any member going DOWN: (P⁺)^{W−1}.
func (s SetStats) ProbSuccess(w int) float64 {
	if w <= 1 {
		return 1
	}
	return math.Pow(s.Pplus, float64(w-1))
}

func (s SetStats) String() string {
	return fmt.Sprintf("SetStats[Eu=%.4f A=%.4f P+=%.6f Ec=%.4f]", s.Eu, s.A, s.Pplus, s.Ec)
}

// SetEval incrementally evaluates worker sets. It is the workhorse of the
// incremental heuristics of Section VI: a configuration is built by adding
// one worker at a time, and at each step every UP worker is scored as a
// candidate. SetEval keeps the prefix products Π_{q∈S} Puu_q(t) so that
//
//   - Stats() for the current set is cached,
//   - CandidateStats(q) for q ∉ S costs one O(T) pass,
//   - Add(q) costs one O(T) pass.
//
// T is the truncation horizon derived from the paper's tail bound for the
// current Λ = Π λ1(q); it shrinks as members are added.
type SetEval struct {
	plat    *Platform
	members []int
	inSet   []bool
	lambda  float64 // Π λ1 over members

	// prod[i] = Π_{q∈S} Puu_q(i+1) for i = 0..horizon-1.
	prod []float64

	statsValid bool
	stats      SetStats
}

// NewSetEval returns an empty set evaluator over the platform.
func (pl *Platform) NewSetEval() *SetEval {
	return &SetEval{
		plat:   pl,
		inSet:  make([]bool, len(pl.Procs)),
		lambda: 1,
	}
}

// Reset empties the evaluator for reuse, keeping its buffers. It lets a
// heuristic rebuild configurations every slot without re-allocating.
func (se *SetEval) Reset() {
	for _, q := range se.members {
		se.inSet[q] = false
	}
	se.members = se.members[:0]
	se.prod = se.prod[:0]
	se.lambda = 1
	se.statsValid = false
}

// Size returns the number of members in the set.
func (se *SetEval) Size() int { return len(se.members) }

// Members returns the member indices (shared slice; do not mutate).
func (se *SetEval) Members() []int { return se.members }

// Contains reports whether processor q is in the set.
func (se *SetEval) Contains(q int) bool { return se.inSet[q] }

// horizonFor returns a truncation horizon satisfying the tail bound for a
// set with eigenvalue product lambda. The binding constraint is the A-tail
// Λ^{T+1}·((T+1) + Λ/(1−Λ))/(1−Λ) <= ε, whose fixed point
//
//	T+1 = ln(ε(1−Λ)/((T+1) + Λ/(1−Λ))) / ln Λ
//
// converges in a few iterations from the Eu-tail solution; the result is
// verified (and nudged up if the iteration undershot) against the exact
// bound. This runs once per candidate evaluation, so it must be O(1).
func (se *SetEval) horizonFor(lambda float64) int {
	if lambda >= 1 {
		return MaxHorizon
	}
	if lambda <= 0 {
		return 1
	}
	if h, ok := se.plat.horizons[lambda]; ok {
		return h
	}
	h := computeHorizon(lambda, se.plat.Eps)
	if se.plat.horizons != nil {
		se.plat.horizons[lambda] = h
	}
	return h
}

func computeHorizon(lambda, eps float64) int {
	lnLam := math.Log(lambda)
	c := lambda / (1 - lambda)
	t := math.Log(eps*(1-lambda))/lnLam - 1 // Eu-tail solution
	for i := 0; i < 4; i++ {
		arg := eps * (1 - lambda) / (t + 1 + c)
		if arg <= 0 {
			return MaxHorizon
		}
		t = math.Log(arg)/lnLam - 1
	}
	horizon := int(math.Ceil(t))
	if horizon < 1 {
		horizon = 1
	}
	for horizon < MaxHorizon &&
		!seriesTailsBelow(math.Pow(lambda, float64(horizon)), lambda, horizon, eps) {
		horizon++
	}
	if horizon > MaxHorizon {
		horizon = MaxHorizon
	}
	return horizon
}

// Add inserts processor q into the set. It panics if q is already a member
// or out of range.
func (se *SetEval) Add(q int) {
	if q < 0 || q >= len(se.plat.Procs) {
		panic(fmt.Sprintf("analytic: Add(%d) out of range", q))
	}
	if se.inSet[q] {
		panic(fmt.Sprintf("analytic: Add(%d) already a member", q))
	}
	proc := se.plat.Procs[q]
	newLambda := se.lambda * proc.Lambda1()
	horizon := se.horizonFor(newLambda)

	if len(se.members) == 0 {
		if cap(se.prod) >= horizon {
			se.prod = se.prod[:horizon]
		} else {
			se.prod = make([]float64, horizon)
		}
		for i := 0; i < horizon; i++ {
			se.prod[i] = proc.Puu(i + 1)
		}
	} else {
		if horizon > len(se.prod) {
			horizon = len(se.prod) // horizon never grows when adding members
		}
		se.prod = se.prod[:horizon]
		for i := 0; i < horizon; i++ {
			se.prod[i] *= proc.Puu(i + 1)
		}
	}
	se.members = append(se.members, q)
	se.inSet[q] = true
	se.lambda = newLambda
	se.statsValid = false
}

// Stats returns the Section V quantities of the current set. It panics on
// an empty set.
func (se *SetEval) Stats() SetStats {
	if len(se.members) == 0 {
		panic("analytic: Stats of empty set")
	}
	if !se.statsValid {
		se.stats = se.statsFromSums(se.sums(nil))
		se.statsValid = true
	}
	return se.stats
}

// CandidateStats returns the Section V quantities of S ∪ {q} without
// modifying the set. If q is already a member it is equivalent to Stats.
// An empty set with candidate q returns the singleton statistics of q.
func (se *SetEval) CandidateStats(q int) SetStats {
	if q < 0 || q >= len(se.plat.Procs) {
		panic(fmt.Sprintf("analytic: CandidateStats(%d) out of range", q))
	}
	if se.inSet[q] {
		return se.Stats()
	}
	proc := se.plat.Procs[q]
	if len(se.members) == 0 {
		// Singleton: closed-form constants are already cached on the proc.
		return SetStats{Eu: proc.eu, A: proc.a, Pplus: proc.pplus, Ec: proc.ec}
	}
	return se.statsFromSums(se.sums(proc))
}

// sums computes (Eu, A, canFail) over the current set, multiplied by the
// optional extra candidate processor.
func (se *SetEval) sums(extra *Proc) (eu, a float64, canFail bool) {
	for _, q := range se.members {
		canFail = canFail || se.plat.Procs[q].CanFail()
	}
	horizon := len(se.prod)
	if extra != nil {
		canFail = canFail || extra.CanFail()
		if h := se.horizonFor(se.lambda * extra.Lambda1()); h < horizon {
			horizon = h
		}
		extra.Puu(horizon) // ensure cache is grown once, not per index
		for i := 0; i < horizon; i++ {
			v := se.prod[i] * extra.puuCache[i+1]
			eu += v
			a += float64(i+1) * v
		}
		return eu, a, canFail
	}
	for i := 0; i < horizon; i++ {
		v := se.prod[i]
		eu += v
		a += float64(i+1) * v
	}
	return eu, a, canFail
}

// statsFromSums derives P⁺ and Ec from Eu and A via the Theorem 5.1
// identities, handling the cannot-fail case (P⁺ = 1, Ec by convolution).
func (se *SetEval) statsFromSums(eu, a float64, canFail bool) SetStats {
	if !canFail {
		return SetStats{
			Eu:    math.Inf(1),
			A:     math.Inf(1),
			Pplus: 1,
			Ec:    firstReturnMean(se.puuSetFunc(), se.plat.Eps),
		}
	}
	pplus := eu / (1 + eu)
	return SetStats{
		Eu:    eu,
		A:     a,
		Pplus: pplus,
		Ec:    a * (1 - pplus) / (1 + eu),
	}
}

// puuSetFunc returns Puu_S(t) as a function, for the convolution fallback.
// Values beyond the stored horizon are recomputed from the member caches.
func (se *SetEval) puuSetFunc() func(int) float64 {
	return func(t int) float64 {
		if t == 0 {
			return 1
		}
		if t <= len(se.prod) {
			return se.prod[t-1]
		}
		v := 1.0
		for _, q := range se.members {
			v *= se.plat.Procs[q].Puu(t)
		}
		return v
	}
}

// StatsOf is a convenience that evaluates a whole set at once.
func (pl *Platform) StatsOf(members []int) SetStats {
	se := pl.NewSetEval()
	for _, q := range members {
		se.Add(q)
	}
	return se.Stats()
}
