package analytic

import (
	"fmt"
	"math"

	"tightsched/internal/markov"
)

// Platform bundles the analytic state of every processor of a simulated
// platform. A Platform (and everything reachable from it) must be confined
// to a single goroutine: the per-processor Puu caches and the memo tables
// grow lazily and are not synchronized. Construction is cheap, so each
// concurrent simulation builds its own (or leases one from a
// PlatformCache).
type Platform struct {
	Procs []*Proc
	Eps   float64

	opts Options

	// horizons memoizes horizonFor by eigenvalue product. Products of the
	// per-processor eigenvalues recur bit-exactly across candidate
	// evaluations, so a plain map hits almost always.
	horizons map[float64]int

	// memoLo/memoHi map set membership to its canonical memo entry (nil
	// when Options.DisableMemo). Repeated scorings of the same set —
	// across candidate loops, decision epochs and cache-shared runs —
	// return the stored floats instead of re-summing series. Sets
	// confined to processors 0..63 (every platform at the paper's scale)
	// use the plain-uint64 table, whose hash is markedly cheaper than the
	// general SetKey's; see computeStats for the miss path.
	memoOn bool
	memoLo map[uint64]*memoEntry
	memoHi map[SetKey]*memoEntry
	// memoHits/memoMisses count memoLookup outcomes (see MemoStats):
	// cross-trial sharing in the batch engine is observable through them.
	memoHits   uint64
	memoMisses uint64

	// powPplus memoizes (P⁺)^k by (base bits, k): the heuristics
	// exponentiate the same few set statistics at the same few workloads
	// every slot, and math.Pow is the single hottest call of a memoized
	// decision. Values are the cached results of math.Pow itself, so hits
	// are bit-identical to recomputation.
	powPplus map[powKey]float64

	// Scratch state of the canonical miss path (computeStats) and the
	// spectral expansion.
	canon          *SetEval
	scratchMembers []int
	scoef, sratio  []float64
}

// powKey identifies one memoized exponentiation (P⁺ bit pattern, power).
type powKey struct {
	bits uint64
	k    int
}

// memoEntry is one memo-table value: the set's canonical statistics plus
// a small ring of memoized (P⁺)^k exponentiations. A set is scored at
// very few distinct workloads (its workload is fixed by the assignment
// shapes it appears in), so four inline slots cover the recurrences
// without per-entry allocation; misses pay one math.Pow and overwrite the
// oldest slot deterministically.
type memoEntry struct {
	stats   SetStats
	powW    [4]int // cached exponents k (0 marks an empty slot; k >= 1)
	powV    [4]float64
	powNext uint8 // ring insertion cursor
}

// powK returns stats.Pplus^k through the entry's power ring. Cached
// values are the stored results of math.Pow itself, so hits are
// bit-identical to recomputation.
func (e *memoEntry) powK(k int) float64 {
	if k <= 0 {
		return 1
	}
	for i := range e.powW {
		if e.powW[i] == k {
			return e.powV[i]
		}
	}
	v := math.Pow(e.stats.Pplus, float64(k))
	i := int(e.powNext) % len(e.powW)
	e.powW[i], e.powV[i] = k, v
	e.powNext++
	return v
}

// NewPlatform builds per-processor analytic state for the given
// availability matrices with series precision eps (use DefaultEps) and
// default Options (memoization on, spectral fast path off).
func NewPlatform(ms []markov.Matrix, eps float64) *Platform {
	return NewPlatformWith(ms, eps, Options{})
}

// NewPlatformWith is NewPlatform with explicit evaluation Options.
func NewPlatformWith(ms []markov.Matrix, eps float64, opts Options) *Platform {
	if eps <= 0 {
		panic("analytic: eps must be positive")
	}
	pl := &Platform{
		Procs:    make([]*Proc, len(ms)),
		Eps:      eps,
		opts:     opts,
		horizons: make(map[float64]int),
		powPplus: make(map[powKey]float64),
	}
	if !opts.DisableMemo {
		pl.memoOn = true
		pl.memoLo = make(map[uint64]*memoEntry)
		pl.memoHi = make(map[SetKey]*memoEntry)
	}
	for i, m := range ms {
		pl.Procs[i] = NewProc(m, eps)
	}
	return pl
}

// PowPplus returns pplus^k through the platform's exponentiation memo.
// k <= 0 yields 1 (matching math.Pow(x, 0) for the call sites' usage).
func (pl *Platform) PowPplus(pplus float64, k int) float64 {
	if k <= 0 {
		return 1
	}
	key := powKey{math.Float64bits(pplus), k}
	if v, ok := pl.powPplus[key]; ok {
		return v
	}
	v := math.Pow(pplus, float64(k))
	if len(pl.powPplus) >= memoLimit {
		clear(pl.powPplus)
	}
	pl.powPplus[key] = v
	return v
}

// SetStats holds the Section V quantities of a worker set S.
type SetStats struct {
	// Eu is the expected number of simultaneous all-UP slots before the
	// first member failure (infinite if no member can fail).
	Eu float64
	// A is Σ t·Puu_S(t) (infinite if no member can fail).
	A float64
	// Pplus is P⁺(S), the probability all members are simultaneously UP
	// again before any goes DOWN.
	Pplus float64
	// Ec is the unconditioned expected gap length Σ t·P⁺(t).
	Ec float64
}

// ExpectedCompletion returns E(S)(W) in the renewal form
// 1 + (W−1)·Ec/P⁺: the expected number of slots for the set to accumulate
// W simultaneous compute slots, conditioned on no failure. W <= 0 yields 0.
func (s SetStats) ExpectedCompletion(w int) float64 {
	if w <= 0 {
		return 0
	}
	if s.Pplus <= 0 {
		return math.Inf(1)
	}
	return 1 + float64(w-1)*s.Ec/s.Pplus
}

// ExpectedCompletionPaper returns the formula exactly as printed in the
// paper, 1 + (W−1)·Ec/(P⁺)^{W−1}. Kept for the reproduction ablation; see
// the package comment and EXPERIMENTS.md.
func (s SetStats) ExpectedCompletionPaper(w int) float64 {
	if w <= 0 {
		return 0
	}
	if s.Pplus <= 0 {
		return math.Inf(1)
	}
	return 1 + float64(w-1)*s.Ec/math.Pow(s.Pplus, float64(w-1))
}

// ProbSuccess returns the probability that the set completes a workload of
// W compute slots without any member going DOWN: (P⁺)^{W−1}.
func (s SetStats) ProbSuccess(w int) float64 {
	if w <= 1 {
		return 1
	}
	return math.Pow(s.Pplus, float64(w-1))
}

func (s SetStats) String() string {
	return fmt.Sprintf("SetStats[Eu=%.4f A=%.4f P+=%.6f Ec=%.4f]", s.Eu, s.A, s.Pplus, s.Ec)
}

// SetEval incrementally evaluates worker sets. It is the workhorse of the
// incremental heuristics of Section VI: a configuration is built by adding
// one worker at a time, and at each step every UP worker is scored as a
// candidate. In series mode (memoization off, and the canonical miss path)
// it keeps the prefix products Π_{q∈S} Puu_q(t) so that
//
//   - Stats() for the current set is cached,
//   - CandidateStats(q) for q ∉ S costs one O(T) pass,
//   - Add(q) costs one O(T) pass.
//
// T is the truncation horizon derived from the paper's tail bound for the
// current Λ = Π λ1(q); it shrinks as members are added. With the memo
// table on (the default), evaluators skip the product maintenance
// entirely — Add is O(1) bookkeeping and Stats/CandidateStats are memo
// lookups, with misses computed canonically by Platform.computeStats.
type SetEval struct {
	plat    *Platform
	members []int
	inSet   []bool
	lambda  float64 // Π λ1 over members
	key     SetKey  // membership bitset, the memo-table key
	series  bool    // maintain prefix products (memo off, or canon)

	// prod[i] = Π_{q∈S} Puu_q(i+1) for i = 0..horizon-1 (series mode).
	prod []float64

	statsValid bool
	stats      SetStats
	entry      *memoEntry // memo entry of the current set (memo mode)
}

// NewSetEval returns an empty set evaluator over the platform.
func (pl *Platform) NewSetEval() *SetEval {
	return &SetEval{
		plat:   pl,
		inSet:  make([]bool, len(pl.Procs)),
		lambda: 1,
		series: !pl.memoOn,
	}
}

// newSeriesSetEval returns an evaluator that maintains prefix products
// regardless of memoization — the canonical miss path runs on one.
func (pl *Platform) newSeriesSetEval() *SetEval {
	se := pl.NewSetEval()
	se.series = true
	return se
}

// Reset empties the evaluator for reuse, keeping its buffers. It lets a
// heuristic rebuild configurations every slot without re-allocating.
func (se *SetEval) Reset() {
	for _, q := range se.members {
		se.inSet[q] = false
	}
	se.members = se.members[:0]
	se.prod = se.prod[:0]
	se.lambda = 1
	se.key = SetKey{}
	se.statsValid = false
	se.entry = nil
}

// Size returns the number of members in the set.
func (se *SetEval) Size() int { return len(se.members) }

// Members returns the member indices (shared slice; do not mutate).
func (se *SetEval) Members() []int { return se.members }

// Contains reports whether processor q is in the set.
func (se *SetEval) Contains(q int) bool { return se.inSet[q] }

// horizonFor returns a truncation horizon satisfying the tail bound for a
// set with eigenvalue product lambda. The binding constraint is the A-tail
// Λ^{T+1}·((T+1) + Λ/(1−Λ))/(1−Λ) <= ε, whose fixed point
//
//	T+1 = ln(ε(1−Λ)/((T+1) + Λ/(1−Λ))) / ln Λ
//
// converges in a few iterations from the Eu-tail solution; the result is
// verified (and nudged up if the iteration undershot) against the exact
// bound. This runs once per candidate evaluation, so it must be O(1).
func (se *SetEval) horizonFor(lambda float64) int {
	if lambda >= 1 {
		return MaxHorizon
	}
	if lambda <= 0 {
		return 1
	}
	if h, ok := se.plat.horizons[lambda]; ok {
		return h
	}
	h := computeHorizon(lambda, se.plat.Eps)
	if se.plat.horizons != nil {
		se.plat.horizons[lambda] = h
	}
	return h
}

func computeHorizon(lambda, eps float64) int {
	lnLam := math.Log(lambda)
	c := lambda / (1 - lambda)
	t := math.Log(eps*(1-lambda))/lnLam - 1 // Eu-tail solution
	for i := 0; i < 4; i++ {
		arg := eps * (1 - lambda) / (t + 1 + c)
		if arg <= 0 {
			return MaxHorizon
		}
		t = math.Log(arg)/lnLam - 1
	}
	horizon := int(math.Ceil(t))
	if horizon < 1 {
		horizon = 1
	}
	for horizon < MaxHorizon &&
		!seriesTailsBelow(math.Pow(lambda, float64(horizon)), lambda, horizon, eps) {
		horizon++
	}
	if horizon > MaxHorizon {
		horizon = MaxHorizon
	}
	return horizon
}

// Add inserts processor q into the set. It panics if q is already a member
// or out of range.
func (se *SetEval) Add(q int) {
	if q < 0 || q >= len(se.plat.Procs) {
		panic(fmt.Sprintf("analytic: Add(%d) out of range", q))
	}
	if se.inSet[q] {
		panic(fmt.Sprintf("analytic: Add(%d) already a member", q))
	}
	proc := se.plat.Procs[q]
	newLambda := se.lambda * proc.Lambda1()
	if se.series {
		horizon := se.horizonFor(newLambda)
		if len(se.members) == 0 {
			if cap(se.prod) >= horizon {
				se.prod = se.prod[:horizon]
			} else {
				se.prod = make([]float64, horizon)
			}
			for i := 0; i < horizon; i++ {
				se.prod[i] = proc.Puu(i + 1)
			}
		} else {
			if horizon > len(se.prod) {
				horizon = len(se.prod) // horizon never grows when adding members
			}
			se.prod = se.prod[:horizon]
			for i := 0; i < horizon; i++ {
				se.prod[i] *= proc.Puu(i + 1)
			}
		}
	}
	se.members = append(se.members, q)
	se.inSet[q] = true
	se.lambda = newLambda
	se.key = se.key.withBit(q)
	se.statsValid = false
	se.entry = nil
}

// Stats returns the Section V quantities of the current set. It panics on
// an empty set. With memoization on (the default), repeated evaluations
// of the same membership — whatever order it was built in, here or in any
// other evaluator of the platform — return the stored canonical floats.
func (se *SetEval) Stats() SetStats {
	if len(se.members) == 0 {
		panic("analytic: Stats of empty set")
	}
	if se.statsValid {
		return se.stats
	}
	if se.plat.memoOn {
		e := se.plat.memoLookup(se.key)
		if e == nil {
			e = se.plat.memoStore(se.key, se.plat.computeStats(se.members, -1))
		}
		se.entry, se.stats, se.statsValid = e, e.stats, true
		return e.stats
	}
	if se.plat.opts.Spectral {
		// Memo off but spectral on: canonical evaluation without storing,
		// matching what Platform.StatsOf does for the same options.
		se.stats = se.plat.computeStats(se.members, -1)
	} else {
		se.stats = se.statsSeries()
	}
	se.statsValid = true
	return se.stats
}

// StatsPow returns Stats() together with (P⁺)^{w−1}, the exponentiation
// shared by the success-probability and expected-completion metrics, from
// the set's memoized power ring.
func (se *SetEval) StatsPow(w int) (SetStats, float64) {
	st := se.Stats()
	if w <= 1 {
		return st, 1
	}
	if se.entry != nil {
		return st, se.entry.powK(w - 1)
	}
	return st, math.Pow(st.Pplus, float64(w-1))
}

// statsSeries evaluates the current set by the truncated series over the
// incrementally maintained prefix products, bypassing the memo table.
// This is the seed evaluation path; computeStats builds on it for the
// canonical miss path.
func (se *SetEval) statsSeries() SetStats {
	return se.statsFromSums(se.sums(nil))
}

// CandidateStats returns the Section V quantities of S ∪ {q} without
// modifying the set. If q is already a member it is equivalent to Stats.
// An empty set with candidate q returns the singleton statistics of q.
func (se *SetEval) CandidateStats(q int) SetStats {
	st, _ := se.candidateStats(q)
	return st
}

// CandidateStatsPow is CandidateStats plus (P⁺)^{w−1} from the candidate
// set's memoized power ring — the single-map-lookup fast path of the
// heuristics' candidate-scoring loop.
func (se *SetEval) CandidateStatsPow(q, w int) (SetStats, float64) {
	st, e := se.candidateStats(q)
	if w <= 1 {
		return st, 1
	}
	if e != nil {
		return st, e.powK(w - 1)
	}
	return st, math.Pow(st.Pplus, float64(w-1))
}

// candidateStats returns the statistics of S ∪ {q} plus the memo entry
// backing them (nil in memo-off mode and for the proc-constant singleton
// path).
func (se *SetEval) candidateStats(q int) (SetStats, *memoEntry) {
	if q < 0 || q >= len(se.plat.Procs) {
		panic(fmt.Sprintf("analytic: CandidateStats(%d) out of range", q))
	}
	if se.inSet[q] {
		st := se.Stats()
		return st, se.entry
	}
	proc := se.plat.Procs[q]
	if len(se.members) == 0 {
		// Singleton: closed-form constants are already cached on the proc.
		return SetStats{Eu: proc.eu, A: proc.a, Pplus: proc.pplus, Ec: proc.ec}, nil
	}
	if se.plat.memoOn {
		key := se.key.withBit(q)
		e := se.plat.memoLookup(key)
		if e == nil {
			e = se.plat.memoStore(key, se.plat.computeStats(se.members, q))
		}
		return e.stats, e
	}
	if se.plat.opts.Spectral {
		return se.plat.computeStats(se.members, q), nil
	}
	return se.statsFromSums(se.sums(proc)), nil
}

// sums computes (Eu, A, canFail) over the current set, multiplied by the
// optional extra candidate processor.
func (se *SetEval) sums(extra *Proc) (eu, a float64, canFail bool) {
	for _, q := range se.members {
		canFail = canFail || se.plat.Procs[q].CanFail()
	}
	horizon := len(se.prod)
	if extra != nil {
		canFail = canFail || extra.CanFail()
		if h := se.horizonFor(se.lambda * extra.Lambda1()); h < horizon {
			horizon = h
		}
		extra.Puu(horizon) // ensure cache is grown once, not per index
		for i := 0; i < horizon; i++ {
			v := se.prod[i] * extra.puuCache[i+1]
			eu += v
			a += float64(i+1) * v
		}
		return eu, a, canFail
	}
	for i := 0; i < horizon; i++ {
		v := se.prod[i]
		eu += v
		a += float64(i+1) * v
	}
	return eu, a, canFail
}

// statsFromSums derives P⁺ and Ec from Eu and A via the Theorem 5.1
// identities, handling the cannot-fail case (P⁺ = 1, Ec by convolution).
func (se *SetEval) statsFromSums(eu, a float64, canFail bool) SetStats {
	if !canFail {
		return SetStats{
			Eu:    math.Inf(1),
			A:     math.Inf(1),
			Pplus: 1,
			Ec:    firstReturnMean(se.puuSetFunc(), se.plat.Eps),
		}
	}
	pplus := eu / (1 + eu)
	return SetStats{
		Eu:    eu,
		A:     a,
		Pplus: pplus,
		Ec:    a * (1 - pplus) / (1 + eu),
	}
}

// puuSetFunc returns Puu_S(t) as a function, for the convolution fallback.
// Values beyond the stored horizon are recomputed from the member caches.
func (se *SetEval) puuSetFunc() func(int) float64 {
	return func(t int) float64 {
		if t == 0 {
			return 1
		}
		if t <= len(se.prod) {
			return se.prod[t-1]
		}
		v := 1.0
		for _, q := range se.members {
			v *= se.plat.Procs[q].Puu(t)
		}
		return v
	}
}

// StatsOf evaluates a whole set at once, through the memo table when
// enabled: only the first evaluation of a membership pays for series (or
// spectral) work, and every later one — from any call site of the
// platform — returns the identical stored floats.
func (pl *Platform) StatsOf(members []int) SetStats {
	if len(members) == 0 {
		panic("analytic: Stats of empty set")
	}
	if pl.memoOn {
		key := keyOfMembers(members)
		if e := pl.memoLookup(key); e != nil {
			return e.stats
		}
		return pl.memoStore(key, pl.computeStats(members, -1)).stats
	}
	if pl.opts.Spectral {
		// Memo off but spectral on: evaluate canonically (spectral with
		// series fallback) without storing.
		return pl.computeStats(members, -1)
	}
	se := pl.NewSetEval()
	for _, q := range members {
		se.Add(q)
	}
	return se.statsSeries()
}
