package analytic

import (
	"math"
	"testing"

	"tightsched/internal/markov"
	"tightsched/internal/rng"
)

// randomValidMatrix draws an availability matrix from a wider space than
// the paper's (self-loops in [0.5, 0.999)), so the differential tests see
// eigenvalue ranges the sweeps never generate.
func randomValidMatrix(s *rng.Stream) markov.Matrix {
	return markov.PerState(s.Uniform(0.5, 0.999), s.Uniform(0.5, 0.999), s.Uniform(0.5, 0.999))
}

func randomMembers(s *rng.Stream, p, n int) []int {
	perm := make([]int, p)
	for i := range perm {
		perm[i] = i
	}
	for i := p - 1; i > 0; i-- {
		j := int(s.Uint64() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm[:n]
}

// TestMemoBitIdenticalToUncached is the differential property test of the
// memo table: for randomized valid matrices and random sets, StatsOf with
// memoization on must be bit-identical to the memo-disabled evaluation,
// and repeated (hit-path) evaluations must be bit-identical to the first.
func TestMemoBitIdenticalToUncached(t *testing.T) {
	s := rng.New(101)
	for trial := 0; trial < 40; trial++ {
		p := 3 + int(s.Uint64()%18)
		ms := make([]markov.Matrix, p)
		for i := range ms {
			ms[i] = randomValidMatrix(s)
		}
		cached := NewPlatform(ms, DefaultEps)
		uncached := NewPlatformWith(ms, DefaultEps, Options{DisableMemo: true})
		for set := 0; set < 10; set++ {
			n := 1 + int(s.Uint64()%uint64(p))
			members := randomMembers(s, p, n)
			insertionSortInts(members)
			got := cached.StatsOf(members)
			if again := cached.StatsOf(members); got != again {
				t.Fatalf("trial %d set %v: hit %v != miss %v", trial, members, again, got)
			}
			want := uncached.StatsOf(members)
			if got != want {
				t.Fatalf("trial %d set %v: cached %v != uncached %v", trial, members, got, want)
			}
		}
	}
}

// TestMemoCanonicalAcrossInsertionOrders verifies that a memoized value
// is a pure function of membership: evaluating the same set through
// SetEvals built in different insertion orders returns bit-identical
// stats (both resolve to the canonical sorted-order computation).
func TestMemoCanonicalAcrossInsertionOrders(t *testing.T) {
	s := rng.New(102)
	for trial := 0; trial < 30; trial++ {
		p := 4 + int(s.Uint64()%12)
		ms := make([]markov.Matrix, p)
		for i := range ms {
			ms[i] = randomValidMatrix(s)
		}
		pl := NewPlatform(ms, DefaultEps)
		n := 2 + int(s.Uint64()%uint64(p-1))
		order1 := randomMembers(s, p, n)
		order2 := append([]int(nil), order1...)
		for i, j := 0, len(order2)-1; i < j; i, j = i+1, j-1 {
			order2[i], order2[j] = order2[j], order2[i]
		}
		se1, se2 := pl.NewSetEval(), pl.NewSetEval()
		for _, q := range order1 {
			se1.Add(q)
		}
		for _, q := range order2 {
			se2.Add(q)
		}
		if a, b := se1.Stats(), se2.Stats(); a != b {
			t.Fatalf("trial %d: order %v gives %v, order %v gives %v", trial, order1, a, order2, b)
		}
		// A cold evaluator's CandidateStats must agree with membership too.
		se3 := pl.NewSetEval()
		for _, q := range order1[:n-1] {
			se3.Add(q)
		}
		if a, b := se3.CandidateStats(order1[n-1]), se1.Stats(); a != b {
			t.Fatalf("trial %d: CandidateStats %v != Stats %v", trial, a, b)
		}
	}
}

// TestSpectralAgreesWithSeries validates the closed-form fast path: over
// randomized valid matrices, the spectral evaluation must agree with the
// eps-truncated series within a tolerance a few orders above eps (the
// spectral sums are exact; the series carries truncation error).
func TestSpectralAgreesWithSeries(t *testing.T) {
	s := rng.New(103)
	const tol = 1e-6
	for trial := 0; trial < 60; trial++ {
		p := 2 + int(s.Uint64()%11)
		ms := make([]markov.Matrix, p)
		for i := range ms {
			ms[i] = randomValidMatrix(s)
		}
		spectral := NewPlatformWith(ms, DefaultEps, Options{Spectral: true})
		series := NewPlatformWith(ms, DefaultEps, Options{DisableMemo: true})
		for set := 0; set < 8; set++ {
			n := 1 + int(s.Uint64()%uint64(p))
			members := randomMembers(s, p, n)
			insertionSortInts(members)
			got := spectral.StatsOf(members)
			want := series.StatsOf(members)
			check := func(name string, g, w float64) {
				if math.IsInf(w, 1) {
					if !math.IsInf(g, 1) {
						t.Fatalf("trial %d set %v: %s = %v, want +Inf", trial, members, name, g)
					}
					return
				}
				if diff := math.Abs(g - w); diff > tol*(1+math.Abs(w)) {
					t.Fatalf("trial %d set %v: %s spectral %v vs series %v (diff %g)",
						trial, members, name, g, w, diff)
				}
			}
			check("Eu", got.Eu, want.Eu)
			check("A", got.A, want.A)
			check("Pplus", got.Pplus, want.Pplus)
			check("Ec", got.Ec, want.Ec)

			// Spectral without the memo must evaluate identically
			// (canonically), through StatsOf and SetEval alike.
			nomemo := NewPlatformWith(ms, DefaultEps, Options{Spectral: true, DisableMemo: true})
			if alt := nomemo.StatsOf(members); alt != got {
				t.Fatalf("trial %d set %v: memo-off spectral StatsOf %v != memo-on %v",
					trial, members, alt, got)
			}
			if n >= 2 { // n == 1 takes the singleton proc-constant fast path
				se := nomemo.NewSetEval()
				for _, q := range members[:n-1] {
					se.Add(q)
				}
				if alt := se.CandidateStats(members[n-1]); alt != got {
					t.Fatalf("trial %d set %v: memo-off spectral CandidateStats %v != StatsOf %v",
						trial, members, alt, got)
				}
			}
		}
	}
}

// TestSpectralCannotFailFallsBack pins the fallback: a set whose members
// cannot fail has no convergent spectral expansion and must take the
// series/convolution path, P⁺ = 1.
func TestSpectralCannotFailFallsBack(t *testing.T) {
	m := markov.Matrix{}
	m[markov.Up][markov.Up] = 0.9
	m[markov.Up][markov.Reclaimed] = 0.1
	m[markov.Reclaimed][markov.Up] = 0.2
	m[markov.Reclaimed][markov.Reclaimed] = 0.8
	m[markov.Down][markov.Down] = 1
	pl := NewPlatformWith([]markov.Matrix{m, m}, DefaultEps, Options{Spectral: true})
	st := pl.StatsOf([]int{0, 1})
	if st.Pplus != 1 || !math.IsInf(st.Eu, 1) {
		t.Fatalf("cannot-fail set: got %v, want P+=1, Eu=+Inf", st)
	}
	if st.Ec <= 0 || math.IsInf(st.Ec, 1) {
		t.Fatalf("cannot-fail set: Ec = %v, want finite positive", st.Ec)
	}
}

// TestPowCachesBitIdentical verifies both exponentiation memo layers
// (the platform PowPplus map and the per-entry power ring, including
// ring eviction) against direct math.Pow.
func TestPowCachesBitIdentical(t *testing.T) {
	pl := paperPlatform(7, 6)
	st := pl.StatsOf([]int{0, 2, 4})
	for pass := 0; pass < 2; pass++ {
		// 8 distinct exponents overflow the 4-slot ring, exercising
		// eviction on the second pass.
		for k := 1; k <= 8; k++ {
			want := math.Pow(st.Pplus, float64(k))
			if got := pl.PowPplus(st.Pplus, k); got != want {
				t.Fatalf("PowPplus(%d) = %v, want %v", k, got, want)
			}
			se := pl.NewSetEval()
			for _, q := range []int{0, 2, 4} {
				se.Add(q)
			}
			gotSt, gotPow := se.StatsPow(k + 1)
			if gotSt != st || gotPow != want {
				t.Fatalf("StatsPow(%d) = (%v, %v), want (%v, %v)", k+1, gotSt, gotPow, st, want)
			}
		}
	}
}

// TestPlatformCacheReuse pins the cross-run platform cache contract:
// identical matrix sets share one platform, different eps/options/sets do
// not, and a shared platform returns bit-identical statistics.
func TestPlatformCacheReuse(t *testing.T) {
	s := rng.New(104)
	ms := make([]markov.Matrix, 5)
	for i := range ms {
		ms[i] = paperMatrix(s)
	}
	c := NewPlatformCache()
	a := c.Get(ms, DefaultEps, Options{})
	if b := c.Get(ms, DefaultEps, Options{}); b != a {
		t.Fatal("identical matrix set did not reuse the platform")
	}
	if b := c.Get(ms, 1e-6, Options{}); b == a {
		t.Fatal("different eps reused the platform")
	}
	if b := c.Get(ms, DefaultEps, Options{Spectral: true}); b == a {
		t.Fatal("different options reused the platform")
	}
	ms2 := append([]markov.Matrix(nil), ms...)
	ms2[3] = paperMatrix(s)
	if b := c.Get(ms2, DefaultEps, Options{}); b == a {
		t.Fatal("different matrices reused the platform")
	}
	want := a.StatsOf([]int{0, 1, 4})
	if got := c.Get(ms, DefaultEps, Options{}).StatsOf([]int{0, 1, 4}); got != want {
		t.Fatalf("warmed platform returned %v, want %v", got, want)
	}
}

// TestSetKeyHighProcessors exercises the >64-processor key path: sets
// spanning the inline word and the packed string must memoize and match
// the uncached evaluation.
func TestSetKeyHighProcessors(t *testing.T) {
	s := rng.New(105)
	const p = 130
	ms := make([]markov.Matrix, p)
	for i := range ms {
		ms[i] = paperMatrix(s)
	}
	cached := NewPlatform(ms, DefaultEps)
	uncached := NewPlatformWith(ms, DefaultEps, Options{DisableMemo: true})
	members := []int{3, 70, 128}
	got := cached.StatsOf(members)
	if again := cached.StatsOf(members); got != again {
		t.Fatalf("high-proc hit %v != miss %v", again, got)
	}
	if want := uncached.StatsOf(members); got != want {
		t.Fatalf("high-proc cached %v != uncached %v", got, want)
	}
	k1 := keyOfMembers([]int{3, 70, 128})
	k2 := keyOfMembers([]int{128, 3, 70})
	if k1 != k2 {
		t.Fatal("key depends on member order")
	}
	if k3 := keyOfMembers([]int{3, 70}); k3 == k1 {
		t.Fatal("distinct sets share a key")
	}
}
