package tightsched

import (
	"context"
	"fmt"
	"iter"

	"tightsched/internal/avail"
	"tightsched/internal/core"
	"tightsched/internal/exp"
	"tightsched/internal/sched"
	"tightsched/internal/sim"
)

// This file is the context-aware Session API, the package's primary
// surface: every entry point takes a context.Context (checked at
// macro-step boundaries inside simulations — see WithTimeAdvance and
// WithMaxLeap — and at instance boundaries in campaign worker pools),
// configuration flows through functional options instead of positional
// structs, campaign progress is observable as a typed event stream, and
// the heuristic/model extension points are open string-keyed registries.
// The struct-options entry points at the bottom of tightsched.go remain
// as thin deprecated shims.
//
//	s := tightsched.NewSession(tightsched.WithCap(200_000))
//	res, err := s.Run(ctx, sc, "Y-IE", tightsched.WithSeed(7))
//	for ev, err := range s.Stream(ctx, sweep) { ... }

// Campaign event-stream types (see the exp package for semantics): a
// Stream yields SweepEvents; an Observer receives them from the RunSweep
// family.
type (
	// SweepEvent is one item of a campaign's event stream; the concrete
	// types are InstanceDone, PointDone and Progress.
	SweepEvent = exp.Event
	// InstanceDone carries one completed (and, if journaling, already
	// journaled) campaign instance.
	InstanceDone = exp.InstanceDone
	// PointDone signals that every instance of one (model, point) cell
	// has completed.
	PointDone = exp.PointDone
	// Progress reports campaign completion counters.
	Progress = exp.Progress
	// Observer receives typed campaign events from a single goroutine.
	Observer = exp.Observer
)

// Extension-point types: the open registries accept factories keyed by
// name, making new heuristics and availability models first-class
// citizens of Run, Compare, sweep axes and journal resume.
type (
	// HeuristicEnv is the per-run environment a heuristic factory builds
	// from: the platform, the application, and the Section V estimators
	// over the believed availability matrices.
	HeuristicEnv = sched.Env
	// HeuristicView is the per-slot snapshot a Heuristic decides on —
	// the parameter type of Heuristic.Decide, exported so policies can
	// be implemented outside the module.
	HeuristicView = sched.View
	// WorkerInfo is the per-worker retention state inside a
	// HeuristicView.
	WorkerInfo = sched.WorkerInfo
	// HeuristicFactory constructs a heuristic instance for one run.
	HeuristicFactory = sched.Factory
	// ModelFactory constructs a fresh availability model.
	ModelFactory = avail.Factory
)

// RegisterHeuristic makes a scheduling policy runnable by name everywhere
// a built-in is: Session.Run, Session.Compare, sweep heuristic axes, and
// the command-line tools. Registered names appear in Heuristics(). It
// errors on a duplicate or empty name and on a nil factory.
func RegisterHeuristic(name string, f HeuristicFactory) error {
	return sched.Register(name, f)
}

// RegisterModel makes an availability model resolvable by name everywhere
// a built-in is: ModelByName, sweep model axes, and — because journal
// headers record models by name — headless ResumeSweep of campaigns that
// used it. The factory's model must report the registered name; names
// appear in AvailabilityModels().
func RegisterModel(name string, f ModelFactory) error {
	return avail.Register(name, f)
}

// optionScope is a bitmask of the Session entry points an option
// actually configures — exactly those; an option that an entry point
// would silently ignore is excluded from its mask and rejected at the
// call.
type optionScope uint8

const (
	scopeSessionRun optionScope = 1 << iota
	scopeCompare
	scopeRunSweep
	scopeStream
	scopeResumeSweep
	scopeRunOnline
	scopeResumeOnline

	// scopeRun options configure single simulations (Run and Compare).
	scopeRun = scopeSessionRun | scopeCompare
	// scopeConsume options configure how campaign results are delivered;
	// Stream is excluded — its events are the delivery mechanism.
	scopeConsume = scopeRunSweep | scopeResumeSweep
	// scopeExec options configure campaign execution; ResumeSweep is
	// excluded from journal/shard selection — both come from the file.
	scopeExec = scopeRunSweep | scopeStream
	// scopeOnline options configure online grid campaigns (RunOnline and
	// ResumeOnline).
	scopeOnline = scopeRunOnline | scopeResumeOnline
)

// appliedOption records one applied option for scope checking.
type appliedOption struct {
	name  string
	scope optionScope
}

// sessionConfig is the resolved option set of a Session or one call.
type sessionConfig struct {
	run      core.Options
	workers  int
	journal  *exp.Journal
	shard    exp.Shard
	progress func(done, total int)
	sink     func(SweepInstance) error
	observer Observer
	discard  bool
	// Online grid overrides (RunOnline / ResumeOnline).
	arrivals      []OnlineArrival
	admissions    []string
	preemptions   []string
	gridJournal   *OnlineJournal
	gridTelemetry GridTelemetry
	// err records the first invalid option value (e.g. an out-of-range
	// WithTimeAdvance); check surfaces it before any entry point runs.
	err error
	// applied tracks per-call options so entry points can reject one
	// passed outside its scope instead of silently ignoring it.
	applied []appliedOption
}

// Option configures a Session or a single Session call. Options given at
// NewSession apply to every call made through the session, each where it
// is meaningful; options given per call override them and must apply to
// that call — each With* documents which entry points it configures, and
// passing one outside that set is an error, never a silent no-op.
// Broadly: simulation options (WithSeed, WithCap, WithModel, ...)
// configure Run and Compare; campaign options configure the
// RunSweep/Stream/ResumeSweep family, minus the combinations an entry
// point cannot honor (Stream delivers events itself, so it takes no
// consumption callbacks; ResumeSweep reads journal and shard from the
// file). Campaign scale (cap, seed, heuristics, models) lives on the
// Sweep value itself.
type Option func(*sessionConfig)

// scoped tags an option setter with its name and scope.
func scoped(name string, scope optionScope, set func(*sessionConfig)) Option {
	return func(c *sessionConfig) {
		set(c)
		c.applied = append(c.applied, appliedOption{name, scope})
	}
}

// WithSeed sets the seed driving the availability realization and any
// randomized decisions of a run — or, for Compare, the base seed the
// per-trial realizations derive from.
func WithSeed(seed uint64) Option {
	return scoped("WithSeed", scopeRun, func(c *sessionConfig) { c.run.Seed = seed })
}

// WithCap sets the failure limit in slots (DefaultCap when unset).
func WithCap(capSlots int64) Option {
	return scoped("WithCap", scopeRun, func(c *sessionConfig) { c.run.Cap = capSlots })
}

// WithInitialAllUp starts every processor UP instead of drawing initial
// states from the stationary distribution.
func WithInitialAllUp() Option {
	return scoped("WithInitialAllUp", scopeRun, func(c *sessionConfig) { c.run.InitialAllUp = true })
}

// WithModel selects the ground-truth availability model, overriding the
// platform's (the paper's Markov chains when neither is set).
func WithModel(m AvailabilityModel) Option {
	return scoped("WithModel", scopeRun, func(c *sessionConfig) { c.run.Model = m })
}

// WithAnalytic tunes the Section V evaluator (see AnalyticOptions).
func WithAnalytic(o AnalyticOptions) Option {
	return scoped("WithAnalytic", scopeRun, func(c *sessionConfig) { c.run.Analytic = o })
}

// WithTimeAdvance selects the simulator's time-advance core: the
// event-leap macro-step engine (AdvanceLeap, the default), the reference
// slot-stepped loop (AdvanceSlot), or the lockstep structure-of-arrays
// core (AdvanceBatch). All cores produce byte-identical results and
// traces — AdvanceSlot exists as the differential oracle and for
// per-slot instrumentation, AdvanceLeap is the fast path whose cost
// scales with availability transitions and phase events, and
// AdvanceBatch shares availability walks and decision builds across the
// instances of a batch (a single Run is a batch of one; the mode pays
// off in batched campaigns). Campaign entry points take the equivalent
// knob on the Sweep value (Sweep.Advance). An out-of-range value is
// rejected when the option is applied, never silently defaulted.
func WithTimeAdvance(a TimeAdvance) Option {
	return scoped("WithTimeAdvance", scopeRun, func(c *sessionConfig) {
		if err := a.Validate(); err != nil && c.err == nil {
			c.err = fmt.Errorf("tightsched: WithTimeAdvance: %w", err)
		}
		c.run.Advance = a
	})
}

// WithMaxLeap caps one leap macro-step in slots (DefaultMaxLeap when
// unset), bounding the worst-case cancellation latency of a run: contexts
// are polled at macro-step boundaries, so at most MaxLeap slots of bulk
// accounting run between polls. Ignored under AdvanceSlot.
func WithMaxLeap(n int64) Option {
	return scoped("WithMaxLeap", scopeRun, func(c *sessionConfig) { c.run.MaxLeap = n })
}

// WithRecorder captures a per-slot execution trace of a run. It applies
// to Session.Run only: a comparison runs many trials in parallel and has
// no single trace to capture.
func WithRecorder(r *Recorder) Option {
	return scoped("WithRecorder", scopeSessionRun, func(c *sessionConfig) { c.run.Recorder = r })
}

// WithCustomHeuristic runs the given heuristic instance instead of
// resolving a name. It applies to Session.Run only — Compare and sweeps
// take heuristics by name; prefer RegisterHeuristic, which covers those
// too. This hook remains for one-off policies.
func WithCustomHeuristic(h Heuristic) Option {
	return scoped("WithCustomHeuristic", scopeSessionRun, func(c *sessionConfig) { c.run.Custom = h })
}

// WithWorkers bounds the parallel simulations of a campaign (NumCPU when
// unset). It overrides the sweep's own Workers field when positive, and
// is the only way to bound a ResumeSweep or ResumeOnline, whose sweep is
// rebuilt from the journal spec.
func WithWorkers(n int) Option {
	return scoped("WithWorkers", scopeExec|scopeResumeSweep|scopeOnline, func(c *sessionConfig) { c.workers = n })
}

// WithJournal streams every completed campaign instance to the journal
// and skips instances it already holds (resume). It applies to RunSweep
// and Stream; ResumeSweep opens the journal from its path itself.
func WithJournal(j *SweepJournal) Option {
	return scoped("WithJournal", scopeExec, func(c *sessionConfig) { c.journal = j })
}

// WithShard restricts a campaign to one deterministic slice of its
// instance grid. It applies to RunSweep and Stream; ResumeSweep reads
// the shard stamp from the journal file.
func WithShard(sh SweepShard) Option {
	return scoped("WithShard", scopeExec, func(c *sessionConfig) { c.shard = sh })
}

// WithProgress registers a (completed, total) progress callback for
// RunSweep, ResumeSweep, RunOnline and ResumeOnline; on a Stream,
// consume the Progress events instead.
func WithProgress(f func(done, total int)) Option {
	return scoped("WithProgress", scopeConsume|scopeOnline, func(c *sessionConfig) { c.progress = f })
}

// WithObserver registers a typed campaign-event observer for RunSweep
// and ResumeSweep; on a Stream, the events themselves are the delivery.
func WithObserver(o Observer) Option {
	return scoped("WithObserver", scopeConsume, func(c *sessionConfig) { c.observer = o })
}

// WithSink registers a per-instance callback for RunSweep and
// ResumeSweep (post-journal, completion order); a non-nil error aborts
// the campaign, leaving the journal resumable. On a Stream, consume the
// InstanceDone events instead.
func WithSink(f func(SweepInstance) error) Option {
	return scoped("WithSink", scopeConsume, func(c *sessionConfig) { c.sink = f })
}

// WithDiscardInstances drops per-instance results after journal, sink
// and observer delivery in RunSweep and ResumeSweep, bounding memory for
// huge campaigns (a Stream collects nothing to discard). The result's
// Instances is nil, but Tables I–III, Figure 2 and the robustness check
// still render: instances fold into streaming accumulators as they
// complete, holding O(cells) state instead of the full campaign.
func WithDiscardInstances() Option {
	return scoped("WithDiscardInstances", scopeConsume, func(c *sessionConfig) { c.discard = true })
}

// WithArrivals replaces an online campaign's arrival axis for one
// RunOnline call — a Session-level way to point the preset campaigns at
// a recorded trace (LoadOnlineTrace) or a differently tuned Poisson
// stream without rebuilding the OnlineSweep by hand. ResumeOnline reads
// the arrival axis from the journal header.
func WithArrivals(specs ...OnlineArrival) Option {
	return scoped("WithArrivals", scopeRunOnline, func(c *sessionConfig) { c.arrivals = specs })
}

// WithAdmission replaces an online campaign's admission-policy axis for
// one RunOnline call. Names resolve through the open policy registry
// (AdmissionPolicies lists them); ResumeOnline reads the axis from the
// journal header.
func WithAdmission(names ...string) Option {
	return scoped("WithAdmission", scopeRunOnline, func(c *sessionConfig) { c.admissions = names })
}

// WithPreemption replaces an online campaign's preemption-policy axis
// for one RunOnline call. Names resolve through the open policy registry
// (PreemptionPolicies lists them); ResumeOnline reads the axis from the
// journal header.
func WithPreemption(names ...string) Option {
	return scoped("WithPreemption", scopeRunOnline, func(c *sessionConfig) { c.preemptions = names })
}

// WithOnlineJournal streams every completed online instance to the grid
// journal and skips instances it already holds. It applies to RunOnline;
// ResumeOnline opens the journal from its path itself.
func WithOnlineJournal(j *OnlineJournal) Option {
	return scoped("WithOnlineJournal", scopeRunOnline, func(c *sessionConfig) { c.gridJournal = j })
}

// WithGridTelemetry registers live gauge/counter callbacks (queue depth,
// running applications, deadline misses) invoked from inside the online
// event loops of RunOnline and ResumeOnline — the hook the service
// daemon's /metrics families hang off.
func WithGridTelemetry(t GridTelemetry) Option {
	return scoped("WithGridTelemetry", scopeOnline, func(c *sessionConfig) { c.gridTelemetry = t })
}

// ParseTimeAdvance maps the flag/spec spelling of a time-advance core
// ("leap", "slot", "batch") onto its TimeAdvance value — the single
// parser behind the -advance flags of cmd/tables and cmd/gridsim and the
// run.advance field of the service daemon's campaign specs, so every
// front door accepts exactly the same names.
func ParseTimeAdvance(name string) (TimeAdvance, error) {
	return sim.ParseTimeAdvance(name)
}

// SweepRuntime carries the runtime knobs a SweepSpec deliberately omits
// because they change speed, never results: the time-advance core, the
// macro-step bound, and the per-campaign worker count. The zero value is
// the default configuration (event-leap core, DefaultMaxLeap, NumCPU
// workers).
type SweepRuntime struct {
	// Advance selects the time-advance core (AdvanceLeap when zero).
	Advance TimeAdvance
	// MaxLeap caps one leap macro-step in slots (DefaultMaxLeap when 0),
	// bounding a run's worst-case cancellation latency.
	MaxLeap int64
	// Workers bounds the campaign's parallel simulations (NumCPU when 0).
	Workers int
}

// SweepFromSpec is the declarative bridge into the Session campaign
// family: it reconstructs a runnable Sweep from its serialized identity —
// the same SweepSpec contract stamped in journal headers and submitted to
// the service daemon — and applies the runtime knobs the spec omits,
// with the same validation rules as the functional options (an
// out-of-range Advance or negative MaxLeap is an error, never a silent
// default; models resolve by name through the open registry). The
// returned Sweep is validated and ready for Session.RunSweep or
// Session.Stream.
func SweepFromSpec(spec SweepSpec, rt SweepRuntime) (Sweep, error) {
	sweep, err := spec.Sweep()
	if err != nil {
		return Sweep{}, err
	}
	if err := rt.Advance.Validate(); err != nil {
		return Sweep{}, fmt.Errorf("tightsched: SweepFromSpec: %w", err)
	}
	if rt.MaxLeap < 0 {
		return Sweep{}, fmt.Errorf("tightsched: SweepFromSpec: negative max leap %d", rt.MaxLeap)
	}
	if rt.Workers < 0 {
		return Sweep{}, fmt.Errorf("tightsched: SweepFromSpec: negative workers %d", rt.Workers)
	}
	sweep.Advance = rt.Advance
	sweep.MaxLeap = rt.MaxLeap
	sweep.Workers = rt.Workers
	if err := sweep.Validate(); err != nil {
		return Sweep{}, err
	}
	return sweep, nil
}

// Event fan-out: one running campaign, many concurrent consumers (the
// service daemon's SSE connections hang off one broadcaster per
// campaign).
type (
	// SweepBroadcaster fans a campaign's event stream out to any number
	// of subscribers; it implements Observer, so it plugs into
	// WithObserver directly. Slow subscribers are dropped, never allowed
	// to backpressure the campaign — see exp.Broadcaster.
	SweepBroadcaster = exp.Broadcaster
	// SweepSubscription is one consumer's channel-backed view of a
	// SweepBroadcaster.
	SweepSubscription = exp.Subscription
)

// NewSweepBroadcaster returns a campaign-event fan-out with the given
// per-subscriber buffer (a sensible default when n <= 0).
func NewSweepBroadcaster(n int) *SweepBroadcaster { return exp.NewBroadcaster(n) }

// Session is the context-aware entry point to the library: simulation,
// comparison, estimation and campaign execution, configured by functional
// options. The zero value (or NewSession with no options) matches the
// paper's defaults. Sessions are cheap; construct one per configuration
// rather than mutating a shared one, and use one Session from multiple
// goroutines freely — all state is per-call.
type Session struct {
	base []Option
}

// NewSession returns a Session whose options apply to every call made
// through it.
func NewSession(opts ...Option) *Session {
	return &Session{base: opts}
}

// config resolves the session-level options plus per-call overrides.
// Session-level options may mix scopes freely (each applies where it is
// meaningful); only per-call options are tracked for scope checking.
func (s *Session) config(opts []Option) sessionConfig {
	var c sessionConfig
	for _, opt := range s.base {
		opt(&c)
	}
	c.applied = nil
	for _, opt := range opts {
		opt(&c)
	}
	return c
}

// check rejects per-call options passed outside the entry point's scope
// — a silently ignored option is a migration bug waiting to be shipped —
// and surfaces invalid option values recorded at application time.
func (c *sessionConfig) check(scope optionScope, call string) error {
	if c.err != nil {
		return c.err
	}
	for _, a := range c.applied {
		if a.scope&scope == 0 {
			return fmt.Errorf("tightsched: option %s does not apply to %s", a.name, call)
		}
	}
	return nil
}

// sweepOptions maps the resolved config onto the experiment harness; the
// WithWorkers override travels in the options so it also bounds resumes,
// whose sweep is rebuilt from the journal spec.
func (c *sessionConfig) sweepOptions() exp.RunOptions {
	return exp.RunOptions{
		Progress:         c.progress,
		Journal:          c.journal,
		Shard:            c.shard,
		Workers:          c.workers,
		Sink:             c.sink,
		Observer:         c.observer,
		DiscardInstances: c.discard,
	}
}

// Run simulates a scenario under the named heuristic. Cancelling ctx
// stops the simulation at the next macro-step boundary (at most
// WithMaxLeap slots away; every slot under AdvanceSlot), returning the
// partial Result together with the context's error.
func (s *Session) Run(ctx context.Context, sc Scenario, heuristic string, opts ...Option) (Result, error) {
	c := s.config(opts)
	if err := c.check(scopeSessionRun, "Session.Run"); err != nil {
		return Result{}, err
	}
	return core.RunContext(ctx, sc, heuristic, c.run)
}

// Compare runs several heuristics over shared availability realizations
// (trials realizations derived from the WithSeed base seed) and
// summarizes each. A cancelled context starts no further runs.
func (s *Session) Compare(ctx context.Context, sc Scenario, heuristics []string, trials int, opts ...Option) ([]HeuristicSummary, error) {
	c := s.config(opts)
	if err := c.check(scopeCompare, "Session.Compare"); err != nil {
		return nil, err
	}
	return core.CompareContext(ctx, sc, heuristics, trials, c.run.Seed, c.run)
}

// Estimate computes P⁺, success probability and conditional expected
// duration for a worker set executing w coupled compute slots.
func (s *Session) Estimate(ctx context.Context, sc Scenario, workers []int, w int) (SetEstimate, error) {
	if err := ctx.Err(); err != nil {
		return SetEstimate{}, err
	}
	return core.Estimate(sc, workers, w)
}

// RunSweep executes a campaign with the session's journal, shard,
// observer and progress options. Cancellation stops the worker pool at
// instance boundaries, journals every instance completed so far and
// returns the context's error; ResumeSweep then reproduces the
// uninterrupted result bit for bit.
func (s *Session) RunSweep(ctx context.Context, sweep Sweep, opts ...Option) (*SweepResult, error) {
	c := s.config(opts)
	if err := c.check(scopeRunSweep, "Session.RunSweep"); err != nil {
		return nil, err
	}
	return exp.RunWithContext(ctx, sweep, c.sweepOptions())
}

// Stream executes a campaign and returns its typed event stream
// (InstanceDone / PointDone / Progress), the primitive RunSweep is built
// on: iterate to drive the run, break or cancel ctx to stop it — either
// way the worker pool shuts down without goroutine leaks and an attached
// journal stays resumable. Only the execution options (WithJournal,
// WithShard, WithWorkers) apply; consumption options are subsumed by the
// stream itself.
func (s *Session) Stream(ctx context.Context, sweep Sweep, opts ...Option) iter.Seq2[SweepEvent, error] {
	c := s.config(opts)
	if err := c.check(scopeStream, "Session.Stream"); err != nil {
		return func(yield func(SweepEvent, error) bool) { yield(nil, err) }
	}
	return exp.Stream(ctx, sweep, c.sweepOptions())
}

// ResumeSweep continues an interrupted journaled campaign from its file
// alone, re-running only unrecorded instances; the result is bit-identical
// to an uninterrupted run's. The journal and shard come from the file
// (WithJournal/WithShard do not apply); consumption options do.
func (s *Session) ResumeSweep(ctx context.Context, journalPath string, opts ...Option) (*SweepResult, error) {
	c := s.config(opts)
	if err := c.check(scopeResumeSweep, "Session.ResumeSweep"); err != nil {
		return nil, err
	}
	return exp.ResumeWith(ctx, journalPath, c.sweepOptions())
}

// gridOptions maps the resolved config onto the online campaign harness.
func (c *sessionConfig) gridOptions() exp.GridRunOptions {
	return exp.GridRunOptions{
		Workers:   c.workers,
		Journal:   c.gridJournal,
		Progress:  c.progress,
		Telemetry: c.gridTelemetry,
	}
}

// RunOnline executes an online multi-application campaign — arrival
// streams feeding admission and preemption policies on a shared
// heterogeneous grid — and returns its per-instance SLO metrics as a
// SweepResult whose Grid field carries the online aggregation
// (SweepResult.Grid.TableIV, RenderTableArtifact table 4). The
// WithArrivals/WithAdmission/WithPreemption options override the
// corresponding campaign axes; WithOnlineJournal streams completed
// instances for crash-tolerant resume via ResumeOnline. Cancellation
// stops the worker pool at instance boundaries, journals everything
// completed so far, and returns the context's error.
func (s *Session) RunOnline(ctx context.Context, g OnlineSweep, opts ...Option) (*SweepResult, error) {
	c := s.config(opts)
	if err := c.check(scopeRunOnline, "Session.RunOnline"); err != nil {
		return nil, err
	}
	if c.arrivals != nil {
		g.Arrivals = c.arrivals
	}
	if c.admissions != nil {
		g.Admissions = c.admissions
	}
	if c.preemptions != nil {
		g.Preemptions = c.preemptions
	}
	gr, err := exp.RunGridContext(ctx, g, c.gridOptions())
	if err != nil {
		return nil, err
	}
	return &SweepResult{Grid: gr}, nil
}

// ResumeOnline continues an interrupted journaled online campaign from
// its file alone, re-running only unrecorded instances; the result is
// bit-identical to an uninterrupted run's. The campaign axes come from
// the journal header (WithArrivals/WithAdmission/WithPreemption and
// WithOnlineJournal do not apply); WithWorkers, WithProgress and
// WithGridTelemetry do.
func (s *Session) ResumeOnline(ctx context.Context, journalPath string, opts ...Option) (*SweepResult, error) {
	c := s.config(opts)
	if err := c.check(scopeResumeOnline, "Session.ResumeOnline"); err != nil {
		return nil, err
	}
	gr, err := exp.ResumeGrid(ctx, journalPath, c.gridOptions())
	if err != nil {
		return nil, err
	}
	return &SweepResult{Grid: gr}, nil
}
