module tightsched

go 1.24
