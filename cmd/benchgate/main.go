// Command benchgate is the CI performance-regression gate: it parses
// `go test -bench` output, writes the measurements as JSON (the BENCH
// artifact CI uploads per run), and compares them against a committed
// baseline, failing on allocation and wall-time regressions.
//
// Two thresholds, two natures: allocs/op is exact and machine-independent,
// so a shared-runner CI enforces it tightly (default +20%); ns/op is
// noisy on shared runners, so it gets a generous threshold (default +35%)
// combined with best-of-N input — when the bench run uses -count=N, the
// fastest repetition of each benchmark is kept, which filters scheduler
// noise without hiding real regressions. Benchmarks whose baseline is
// under -min-ns-gate (default 1µs) are never ns-gated: at that scale
// per-op timing is noise-dominated, and their allocation gate already
// catches the regressions that matter.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkDecideAllocations|BenchmarkStatsOf|BenchmarkSweepPoint' \
//	    -benchmem -benchtime 1000x -count 3 . | \
//	    go run ./cmd/benchgate -baseline ci/bench_baseline.json -out BENCH_123.json
//
//	# refresh the committed baseline after an intentional perf change:
//	go test -run '^$' -bench 'BenchmarkDecideAllocations|BenchmarkStatsOf|BenchmarkSweepPoint' \
//	    -benchmem -benchtime 1000x -count 3 . | \
//	    go run ./cmd/benchgate -write-baseline ci/bench_baseline.json
//
// Flags: -input reads a file instead of stdin, -gate restricts which
// benchmarks are enforced, -max-regress sets the allowed allocs/op growth
// in percent (default 20), and -max-ns-regress the allowed ns/op growth
// (default 35; 0 disables wall-time gating).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Measurement is one benchmark's parsed figures. NsPerOp is informational
// (machine-dependent); AllocsPerOp is the gated quantity.
type Measurement struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Report is the BENCH_<run>.json artifact schema (and the baseline's).
type Report struct {
	Go         string                 `json:"go"`
	Benchmarks map[string]Measurement `json:"benchmarks"`
}

func main() {
	var (
		input         = flag.String("input", "", "bench output file (default: stdin)")
		baseline      = flag.String("baseline", "", "committed baseline JSON to gate against")
		out           = flag.String("out", "", "write current measurements to this JSON file")
		writeBaseline = flag.String("write-baseline", "", "write current measurements as a new baseline and exit")
		gate          = flag.String("gate", "^(BenchmarkDecideAllocations/|BenchmarkStatsOf|BenchmarkSweepPoint)", "regexp of benchmark names to enforce")
		maxRegress    = flag.Float64("max-regress", 20, "allowed allocs/op growth over baseline, percent")
		maxNsRegress  = flag.Float64("max-ns-regress", 35, "allowed ns/op growth over baseline, percent (0 disables)")
		minNsGate     = flag.Float64("min-ns-gate", 1000, "skip ns/op gating below this baseline ns/op (sub-microsecond benches are timer-noise-dominated; they stay allocs-gated)")
	)
	flag.Parse()

	var r io.Reader = os.Stdin
	if *input != "" {
		f, err := os.Open(*input)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	report, err := parseBench(r)
	if err != nil {
		fatal(err)
	}
	if len(report.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines in input (did the bench run crash?)"))
	}

	if *writeBaseline != "" {
		if err := writeJSON(*writeBaseline, report); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: wrote baseline %s (%d benchmarks)\n", *writeBaseline, len(report.Benchmarks))
		return
	}
	if *out != "" {
		if err := writeJSON(*out, report); err != nil {
			fatal(err)
		}
		fmt.Printf("benchgate: wrote %s (%d benchmarks)\n", *out, len(report.Benchmarks))
	}
	if *baseline == "" {
		return
	}

	base, err := readJSON(*baseline)
	if err != nil {
		fatal(err)
	}
	gateRe, err := regexp.Compile(*gate)
	if err != nil {
		fatal(fmt.Errorf("bad -gate: %w", err))
	}

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	failures := 0
	for _, name := range names {
		if !gateRe.MatchString(name) {
			continue
		}
		want := base.Benchmarks[name]
		got, ok := report.Benchmarks[name]
		if !ok {
			fmt.Printf("FAIL %s: in baseline but not measured (renamed or deleted? refresh the baseline)\n", name)
			failures++
			continue
		}
		limit := want.AllocsPerOp * (1 + *maxRegress/100)
		switch {
		case got.AllocsPerOp > limit:
			fmt.Printf("FAIL %s: %.1f allocs/op, baseline %.1f (limit %.1f, +%.0f%%)\n",
				name, got.AllocsPerOp, want.AllocsPerOp, limit, *maxRegress)
			failures++
		case got.AllocsPerOp < want.AllocsPerOp:
			fmt.Printf("ok   %s: %.1f allocs/op, improved from baseline %.1f — consider refreshing the baseline\n",
				name, got.AllocsPerOp, want.AllocsPerOp)
		default:
			fmt.Printf("ok   %s: %.1f allocs/op (baseline %.1f)\n", name, got.AllocsPerOp, want.AllocsPerOp)
		}
		if *maxNsRegress > 0 && want.NsPerOp >= *minNsGate {
			nsLimit := want.NsPerOp * (1 + *maxNsRegress/100)
			if got.NsPerOp > nsLimit {
				fmt.Printf("FAIL %s: %.0f ns/op, baseline %.0f (limit %.0f, +%.0f%%)\n",
					name, got.NsPerOp, want.NsPerOp, nsLimit, *maxNsRegress)
				failures++
			} else {
				fmt.Printf("ok   %s: %.0f ns/op (baseline %.0f, limit %.0f)\n",
					name, got.NsPerOp, want.NsPerOp, nsLimit)
			}
		}
	}
	for name := range report.Benchmarks {
		if gateRe.MatchString(name) {
			if _, ok := base.Benchmarks[name]; !ok {
				fmt.Printf("note %s: not in baseline (new benchmark; refresh the baseline to gate it)\n", name)
			}
		}
	}
	if failures > 0 {
		fmt.Printf("benchgate: %d regression(s) beyond the allowed thresholds (allocs +%.0f%%, ns +%.0f%%)\n",
			failures, *maxRegress, *maxNsRegress)
		os.Exit(1)
	}
}

// benchLine matches the name column of a testing benchmark result line.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?$`)

// parseBench extracts measurements from `go test -bench` output. A result
// line is "name iterations value unit [value unit ...]"; the GOMAXPROCS
// suffix ("-8") is stripped from names so runs from machines with
// different core counts compare. Custom metrics (b.ReportMetric) are
// ignored; ns/op, B/op and allocs/op are kept. When the input holds
// several repetitions of one benchmark (go test -count=N), the fastest
// is kept — best-of-N is how the ns/op gate stays robust to shared-runner
// noise, which only ever slows a run down.
func parseBench(r io.Reader) (*Report, error) {
	report := &Report{Go: runtime.Version(), Benchmarks: map[string]Measurement{}}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		m := benchLine.FindStringSubmatch(fields[0])
		if m == nil {
			continue
		}
		name := m[1]
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		meas := Measurement{Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				meas.NsPerOp = v
			case "B/op":
				meas.BytesPerOp = v
			case "allocs/op":
				meas.AllocsPerOp = v
			}
		}
		if prev, ok := report.Benchmarks[name]; ok && prev.NsPerOp <= meas.NsPerOp {
			continue
		}
		report.Benchmarks[name] = meas
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return report, nil
}

func readJSON(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func writeJSON(path string, r *Report) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
