// Command journalconv converts campaign journals between the JSONL and
// binary encodings, in either direction. Sweep and online-grid journals
// both convert; the header decides which kind a file is, and the source
// encoding is sniffed from the file itself, so only the destination
// format is ever specified:
//
//	journalconv -to binary sweep.jsonl sweep.bin
//	journalconv -to jsonl sweep.bin sweep.jsonl
//
// The conversion is loss-free: the header document is carried over byte
// for byte (the campaign identity resume and merge match on), every
// record is decoded and re-encoded canonically, and a crash-torn tail is
// dropped exactly as resume would drop it. Converting JSONL → binary →
// JSONL reproduces the original file byte-identically. Resume, merge,
// table rendering and the daemon accept either encoding, so a campaign
// can be interrupted under one format and finished under the other.
package main

import (
	"flag"
	"fmt"
	"os"

	"tightsched/internal/exp"
)

func main() {
	to := flag.String("to", "", "destination format: jsonl | binary (required)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: journalconv -to jsonl|binary <src> <dst>\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *to == "" || flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	format, err := exp.ParseFormat(*to)
	if err != nil {
		fmt.Fprintln(os.Stderr, "journalconv:", err)
		os.Exit(2)
	}
	src, dst := flag.Arg(0), flag.Arg(1)
	if err := exp.ConvertJournal(src, dst, format); err != nil {
		fmt.Fprintln(os.Stderr, "journalconv:", err)
		os.Exit(1)
	}
}
