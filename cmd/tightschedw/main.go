// Command tightschedw is the cluster worker: it claims leased work
// units from a tightschedd coordinator, simulates them with the local
// engine, and streams completed instances back in batches.
//
// Usage:
//
//	tightschedw -coordinator http://host:8080 [-name NAME] [-parallel N]
//	            [-batch 64] [-poll 500ms] [-exit-idle 0]
//
// The worker is crash-tolerant by construction: it heartbeats its lease
// (a third of the TTL), retries claims, heartbeats and uploads with
// jittered exponential backoff while the coordinator is unreachable,
// and abandons a unit the moment the coordinator declares its lease
// gone — the unit is requeued to the fleet and every uploaded instance
// is already durable. kill -9 a worker at any point and the campaign
// still completes byte-identically.
//
// With -exit-idle set, the worker exits 0 after finding no work for
// that long — how scripted fleets drain when the campaign ends. Without
// it, the worker polls until SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"tightsched"
	"tightsched/internal/cli"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "http://127.0.0.1:8080", "tightschedd base URL")
		name        = flag.String("name", "", "worker name for lease bookkeeping (default host:pid)")
		parallel    = flag.Int("parallel", 0, "parallel simulations per leased unit (0 = GOMAXPROCS)")
		batch       = flag.Int("batch", 64, "completed instances per result upload")
		poll        = flag.Duration("poll", 500*time.Millisecond, "pause between claims when no unit is available")
		exitIdle    = flag.Duration("exit-idle", 0, "exit 0 after this long with no work (0 = poll forever)")
		quiet       = flag.Bool("q", false, "suppress per-lease log lines")
	)
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "tightschedw: "+format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}

	ctx, stop := cli.SignalContext(context.Background())
	defer stop()

	err := tightsched.RunClusterWorker(ctx, tightsched.ClusterWorkerOptions{
		Coordinator:   *coordinator,
		Name:          *name,
		Parallelism:   *parallel,
		UploadBatch:   *batch,
		IdlePoll:      *poll,
		ExitAfterIdle: *exitIdle,
		Logf:          logf,
	})
	if err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "tightschedw:", err)
		os.Exit(1)
	}
}
